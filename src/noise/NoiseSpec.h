//===- NoiseSpec.h - INI-style noise-model spec parser --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textual spec format behind `asdfc --noise model.ini`. A spec is a
/// tiny INI dialect — sections attach channels to gate kinds, qubits, or
/// readout; `#`/`;` start comments:
///
///   [gate:x]                  ; X and its controlled variants (CX,
///   depolarizing = 0.01       ; Toffoli) — applied target-first
///
///   [gate:*]                  ; gates without their own section
///   depolarizing = 0.001
///
///   [qubit:3]                 ; after every gate touching qubit 3
///   amplitude_damping = 0.02
///   phase_damping = 0.01      ; multiple lines compose in order
///
///   [readout]                 ; global readout error
///   p0to1 = 0.01
///   p1to0 = 0.03
///
///   [readout:5]               ; per-qubit override
///   p0to1 = 0.08
///
/// Channel keys: depolarizing, bit_flip, phase_flip, amplitude_damping,
/// phase_damping — each takes one probability/rate in [0, 1]. Gate names
/// are the lower-case gateKindName spellings (x, y, z, h, s, sdg, t, tdg,
/// p, rx, ry, rz, swap) or `*` for the default slot.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_NOISE_NOISESPEC_H
#define ASDF_NOISE_NOISESPEC_H

#include "noise/NoiseModel.h"

#include <string>

namespace asdf {

/// Parses \p Text into \p M (appending to whatever the model already
/// holds). On failure returns false and fills \p Error with a
/// "line N: ..." message; \p M may then be partially filled and should be
/// discarded.
bool parseNoiseSpec(const std::string &Text, NoiseModel &M,
                    std::string &Error);

/// Reads and parses the spec file at \p Path. False on I/O or parse
/// errors, with \p Error explaining which.
bool loadNoiseSpec(const std::string &Path, NoiseModel &M,
                   std::string &Error);

} // namespace asdf

#endif // ASDF_NOISE_NOISESPEC_H
