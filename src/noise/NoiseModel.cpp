//===- NoiseModel.cpp - Kraus channels and noise-model subsystem ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "noise/NoiseModel.h"

#include <cassert>
#include <cmath>

using namespace asdf;

using Cplx = std::complex<double>;

//===----------------------------------------------------------------------===//
// KrausChannel
//===----------------------------------------------------------------------===//

bool KrausChannel::isCPTP(double Tol) const {
  // Sum K' K over all operators and compare to the identity entrywise.
  Cplx Sum[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (const Mat2 &K : Ops)
    for (int I = 0; I < 2; ++I)
      for (int J = 0; J < 2; ++J)
        for (int L = 0; L < 2; ++L)
          Sum[I][J] += std::conj(K.M[L][I]) * K.M[L][J];
  return std::abs(Sum[0][0] - 1.0) <= Tol && std::abs(Sum[1][1] - 1.0) <= Tol &&
         std::abs(Sum[0][1]) <= Tol && std::abs(Sum[1][0]) <= Tol;
}

bool KrausChannel::pauliProbs(PauliProbs &P, double Tol) const {
  P = PauliProbs();
  P.PI = 0.0;
  for (const Mat2 &K : Ops) {
    double OffNorm = std::abs(K.M[0][1]) + std::abs(K.M[1][0]);
    double DiagNorm = std::abs(K.M[0][0]) + std::abs(K.M[1][1]);
    if (OffNorm <= Tol && DiagNorm <= Tol)
      continue; // Zero operator (e.g. bitFlip(0)): dead branch.
    if (OffNorm <= Tol) {
      // Diagonal: c*I (equal entries) or c*Z (opposite entries).
      if (std::abs(K.M[0][0] - K.M[1][1]) <= Tol)
        P.PI += std::norm(K.M[0][0]);
      else if (std::abs(K.M[0][0] + K.M[1][1]) <= Tol)
        P.PZ += std::norm(K.M[0][0]);
      else
        return false; // e.g. amplitude damping's diag(1, sqrt(1-g)).
      continue;
    }
    if (DiagNorm <= Tol) {
      // Antidiagonal: c*X (equal entries) or c*Y (M10 == -M01).
      if (std::abs(K.M[0][1] - K.M[1][0]) <= Tol)
        P.PX += std::norm(K.M[0][1]);
      else if (std::abs(K.M[0][1] + K.M[1][0]) <= Tol)
        P.PY += std::norm(K.M[0][1]);
      else
        return false;
      continue;
    }
    return false; // Mixed diagonal/antidiagonal support: not a Pauli.
  }
  return true;
}

namespace {

Mat2 scaled(double S, const Mat2 &U) {
  Mat2 R = U;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      R.M[I][J] *= S;
  return R;
}

std::string withParam(const char *Name, double P) {
  return std::string(Name) + "(" + std::to_string(P) + ")";
}

} // namespace

KrausChannel KrausChannel::depolarizing(double P) {
  assert(P >= 0.0 && P <= 1.0 && "depolarizing probability out of range");
  KrausChannel Ch;
  Ch.Name = withParam("depolarizing", P);
  Ch.Ops = {scaled(std::sqrt(1.0 - P), Mat2::identity()),
            scaled(std::sqrt(P / 3.0), gateMatrix2(GateKind::X, 0.0)),
            scaled(std::sqrt(P / 3.0), gateMatrix2(GateKind::Y, 0.0)),
            scaled(std::sqrt(P / 3.0), gateMatrix2(GateKind::Z, 0.0))};
  return Ch;
}

KrausChannel KrausChannel::bitFlip(double P) {
  assert(P >= 0.0 && P <= 1.0 && "bit-flip probability out of range");
  KrausChannel Ch;
  Ch.Name = withParam("bit_flip", P);
  Ch.Ops = {scaled(std::sqrt(1.0 - P), Mat2::identity()),
            scaled(std::sqrt(P), gateMatrix2(GateKind::X, 0.0))};
  return Ch;
}

KrausChannel KrausChannel::phaseFlip(double P) {
  assert(P >= 0.0 && P <= 1.0 && "phase-flip probability out of range");
  KrausChannel Ch;
  Ch.Name = withParam("phase_flip", P);
  Ch.Ops = {scaled(std::sqrt(1.0 - P), Mat2::identity()),
            scaled(std::sqrt(P), gateMatrix2(GateKind::Z, 0.0))};
  return Ch;
}

KrausChannel KrausChannel::amplitudeDamping(double Gamma) {
  assert(Gamma >= 0.0 && Gamma <= 1.0 && "damping rate out of range");
  KrausChannel Ch;
  Ch.Name = withParam("amplitude_damping", Gamma);
  Mat2 K0 = {{{1.0, 0.0}, {0.0, std::sqrt(1.0 - Gamma)}}};
  Mat2 K1 = {{{0.0, std::sqrt(Gamma)}, {0.0, 0.0}}};
  Ch.Ops = {K0, K1};
  return Ch;
}

KrausChannel KrausChannel::phaseDamping(double Lambda) {
  assert(Lambda >= 0.0 && Lambda <= 1.0 && "damping rate out of range");
  KrausChannel Ch;
  Ch.Name = withParam("phase_damping", Lambda);
  Mat2 K0 = {{{1.0, 0.0}, {0.0, std::sqrt(1.0 - Lambda)}}};
  Mat2 K1 = {{{0.0, 0.0}, {0.0, std::sqrt(Lambda)}}};
  Ch.Ops = {K0, K1};
  return Ch;
}

KrausChannel KrausChannel::kraus(std::vector<Mat2> Ops, std::string Name) {
  KrausChannel Ch;
  Ch.Name = std::move(Name);
  Ch.Ops = std::move(Ops);
  return Ch;
}

//===----------------------------------------------------------------------===//
// NoiseModel
//===----------------------------------------------------------------------===//

void NoiseModel::addGateChannel(GateKind G, KrausChannel Ch) {
  GateChannels[G].push_back(std::move(Ch));
}

void NoiseModel::addDefaultChannel(KrausChannel Ch) {
  DefaultChannels.push_back(std::move(Ch));
}

void NoiseModel::addQubitChannel(unsigned Q, KrausChannel Ch) {
  QubitChannels[Q].push_back(std::move(Ch));
}

void NoiseModel::setReadoutError(double P0to1, double P1to0) {
  GlobalReadout = {P0to1, P1to0};
}

void NoiseModel::setQubitReadoutError(unsigned Q, double P0to1,
                                      double P1to0) {
  QubitReadout[Q] = {P0to1, P1to0};
}

bool NoiseModel::hasGateNoise() const {
  return !GateChannels.empty() || !DefaultChannels.empty() ||
         !QubitChannels.empty();
}

bool NoiseModel::empty() const {
  if (hasGateNoise() || !GlobalReadout.trivial())
    return false;
  for (const auto &KV : QubitReadout)
    if (!KV.second.trivial())
      return false;
  return true;
}

bool NoiseModel::isPauliOnly() const {
  PauliProbs P;
  for (const auto &KV : GateChannels)
    for (const KrausChannel &Ch : KV.second)
      if (!Ch.pauliProbs(P))
        return false;
  for (const KrausChannel &Ch : DefaultChannels)
    if (!Ch.pauliProbs(P))
      return false;
  for (const auto &KV : QubitChannels)
    for (const KrausChannel &Ch : KV.second)
      if (!Ch.pauliProbs(P))
        return false;
  return true;
}

bool NoiseModel::affectsGate(const CircuitInstr &I) const {
  if (I.TheKind != CircuitInstr::Kind::Gate)
    return false;
  if (GateChannels.count(I.Gate) || !DefaultChannels.empty())
    return true;
  for (unsigned Q : I.Targets)
    if (QubitChannels.count(Q))
      return true;
  for (unsigned Q : I.Controls)
    if (QubitChannels.count(Q))
      return true;
  return false;
}

std::vector<NoiseOp> NoiseModel::noiseFor(const CircuitInstr &I) const {
  std::vector<NoiseOp> Ops;
  if (I.TheKind != CircuitInstr::Kind::Gate)
    return Ops;
  auto GateIt = GateChannels.find(I.Gate);
  const std::vector<KrausChannel> *Kind =
      GateIt != GateChannels.end() ? &GateIt->second : &DefaultChannels;
  auto AddQubit = [&](unsigned Q) {
    for (const KrausChannel &Ch : *Kind)
      Ops.push_back({Q, &Ch});
    auto QubitIt = QubitChannels.find(Q);
    if (QubitIt != QubitChannels.end())
      for (const KrausChannel &Ch : QubitIt->second)
        Ops.push_back({Q, &Ch});
  };
  for (unsigned Q : I.Targets)
    AddQubit(Q);
  for (unsigned Q : I.Controls)
    AddQubit(Q);
  return Ops;
}

const ReadoutError &NoiseModel::readoutFor(unsigned Q) const {
  auto It = QubitReadout.find(Q);
  return It != QubitReadout.end() ? It->second : GlobalReadout;
}

const ReadoutError *NoiseModel::qubitReadoutOverride(unsigned Q) const {
  auto It = QubitReadout.find(Q);
  return It != QubitReadout.end() ? &It->second : nullptr;
}

bool NoiseModel::validate(std::string &Error) const {
  auto CheckChannel = [&](const KrausChannel &Ch) {
    if (Ch.Ops.empty()) {
      Error = "channel '" + Ch.Name + "' has no Kraus operators";
      return false;
    }
    if (!Ch.isCPTP()) {
      Error = "channel '" + Ch.Name +
              "' is not trace-preserving (sum K'K != I)";
      return false;
    }
    return true;
  };
  for (const auto &KV : GateChannels)
    for (const KrausChannel &Ch : KV.second)
      if (!CheckChannel(Ch))
        return false;
  for (const KrausChannel &Ch : DefaultChannels)
    if (!CheckChannel(Ch))
      return false;
  for (const auto &KV : QubitChannels)
    for (const KrausChannel &Ch : KV.second)
      if (!CheckChannel(Ch))
        return false;
  auto CheckReadout = [&](const ReadoutError &E) {
    if (E.P0to1 < 0.0 || E.P0to1 > 1.0 || E.P1to0 < 0.0 || E.P1to0 > 1.0) {
      Error = "readout-error probabilities must lie in [0, 1]";
      return false;
    }
    return true;
  };
  if (!CheckReadout(GlobalReadout))
    return false;
  for (const auto &KV : QubitReadout)
    if (!CheckReadout(KV.second))
      return false;
  return true;
}

std::string NoiseModel::summary() const {
  size_t GateCount = 0;
  for (const auto &KV : GateChannels)
    GateCount += KV.second.size();
  size_t QubitCount = 0;
  for (const auto &KV : QubitChannels)
    QubitCount += KV.second.size();
  std::string S = std::to_string(GateCount) + " gate channel(s), " +
                  std::to_string(QubitCount) + " qubit channel(s), " +
                  std::to_string(DefaultChannels.size()) + " default, readout: ";
  if (!GlobalReadout.trivial())
    S += "global";
  else
    S += "none";
  if (!QubitReadout.empty())
    S += " + " + std::to_string(QubitReadout.size()) + " per-qubit";
  S += isPauliOnly() ? "; pauli-only" : "; general (Kraus)";
  return S;
}

//===----------------------------------------------------------------------===//
// Plans and sampling helpers
//===----------------------------------------------------------------------===//

NoisePlan asdf::planNoise(const NoiseModel &M, const Circuit &C) {
  NoisePlan Plan;
  Plan.PerInstr.resize(C.Instrs.size());
  Plan.FirstNoisyInstr = C.Instrs.size();
  for (size_t Idx = 0; Idx < C.Instrs.size(); ++Idx) {
    Plan.PerInstr[Idx] = M.noiseFor(C.Instrs[Idx]);
    if (!Plan.PerInstr[Idx].empty() && Plan.FirstNoisyInstr == C.Instrs.size())
      Plan.FirstNoisyInstr = Idx;
  }
  return Plan;
}

PauliNoisePlan asdf::planPauliNoise(const NoiseModel &M, const Circuit &C) {
  assert(M.isPauliOnly() && "Pauli plan of a non-Pauli model");
  PauliNoisePlan Plan;
  Plan.PerInstr.resize(C.Instrs.size());
  for (size_t Idx = 0; Idx < C.Instrs.size(); ++Idx) {
    for (const NoiseOp &Op : M.noiseFor(C.Instrs[Idx])) {
      PauliProbs P;
      bool IsPauli = Op.Channel->pauliProbs(P);
      assert(IsPauli);
      (void)IsPauli;
      PauliNoiseOp S;
      S.Qubit = Op.Qubit;
      S.CumX = P.PX;
      S.CumXY = P.PX + P.PY;
      S.CumXYZ = P.PX + P.PY + P.PZ;
      Plan.PerInstr[Idx].push_back(S);
    }
  }
  return Plan;
}

unsigned asdf::samplePauli(const PauliNoiseOp &Op, std::mt19937_64 &Rng) {
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  double U = Dist(Rng);
  if (U < Op.CumX)
    return 1;
  if (U < Op.CumXY)
    return 2;
  if (U < Op.CumXYZ)
    return 3;
  return 0;
}

bool asdf::applyReadoutError(const ReadoutError &E, bool Bit,
                             std::mt19937_64 &Rng, NoiseStats *Stats) {
  if (E.trivial())
    return Bit; // Consumes no randomness: jobs/fuse invariance is free.
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  bool Flip = Dist(Rng) < (Bit ? E.P1to0 : E.P0to1);
  if (Flip && Stats)
    Stats->ReadoutFlips.fetch_add(1, std::memory_order_relaxed);
  return Bit ^ Flip;
}
