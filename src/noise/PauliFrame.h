//===- PauliFrame.h - Pauli-frame sampling for noisy Clifford circuits ----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stabilizer engine's fast path for Pauli noise (Gidney, "Stim: a
/// fast stabilizer circuit simulator", Quantum 5, 497 — the frame
/// simulator idea, rebuilt on our CHP tableau). The ideal circuit runs
/// ONCE on the tableau as a reference; every noisy shot then tracks only a
/// Pauli *frame* F — the Pauli operator relating the shot's state to the
/// reference state — as one (x, z) bit pair per qubit:
///
///   - Clifford gates conjugate the frame in O(1) bit operations
///     (H swaps x/z, S folds x into z, CX spreads x forward / z backward);
///   - sampled noise Paulis multiply into the frame;
///   - a measurement of qubit q reads outcome ref_q XOR F.x(q);
///   - a measurement that was *random* in the reference multiplies the
///     frame, with probability 1/2, by the recorded stabilizer that
///     anticommuted with Z_q — the Pauli mapping one collapse branch onto
///     the other. That coin is exactly the fresh randomness of the
///     per-shot collapse, so sampled outcome vectors are distributed
///     identically to independent tableau runs (the noiseless outcome
///     distribution of a stabilizer circuit is uniform over an affine
///     subspace; the coins span it);
///   - reset clears the frame on its qubit (after the collapse coin).
///
/// One reference tableau run plus O(gates) bit-ops per shot replaces
/// O(n * gates) tableau work per shot: 500-qubit noisy Clifford sampling
/// at tens of thousands of shots per second. Feed-forward circuits cannot
/// use frames (the instruction sequence itself depends on per-shot bits);
/// the stabilizer backend falls back to per-shot tableau Monte-Carlo.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_NOISE_PAULIFRAME_H
#define ASDF_NOISE_PAULIFRAME_H

#include "noise/NoiseModel.h"
#include "qcirc/Circuit.h"
#include "sim/Backend.h" // ShotResult, deriveShotSeed

#include <cstdint>
#include <vector>

namespace asdf {

/// The ideal reference execution of a feed-forward-free Clifford circuit,
/// holding everything a per-shot frame replay needs: the reference
/// measurement outcomes and, for each random collapse, the anticommuting
/// stabilizer. Build once per batch; sampleShot is const and thread-safe.
class FrameReference {
public:
  /// Runs \p C once on the tableau with an RNG derived from \p Seed.
  /// \p C must be Clifford-only with no classically-conditioned
  /// instructions (asserted).
  FrameReference(const Circuit &C, uint64_t Seed);

  /// Samples one noisy shot: propagates a Pauli frame seeded from
  /// \p ShotSeed through the circuit, sampling \p Plan's Pauli noise and
  /// \p Model's readout errors along the way. Distribution-equivalent to
  /// an independent noisy tableau run with the same model.
  ShotResult sampleShot(const NoiseModel &Model, const PauliNoisePlan &Plan,
                        uint64_t ShotSeed, NoiseStats *Stats = nullptr) const;

private:
  /// One measure/reset of the reference run, in instruction order.
  struct Event {
    bool Random = false;
    bool RefOutcome = false;            ///< Measure only.
    std::vector<uint64_t> AntiX, AntiZ; ///< Random only.
  };

  const Circuit *C;
  unsigned Words; ///< 64-bit words per frame half.
  std::vector<Event> Events;
};

} // namespace asdf

#endif // ASDF_NOISE_PAULIFRAME_H
