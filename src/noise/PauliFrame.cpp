//===- PauliFrame.cpp - Pauli-frame sampling for noisy Clifford circuits --===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "noise/PauliFrame.h"

#include "sim/CircuitAnalysis.h"
#include "sim/StabilizerBackend.h"

#include <cassert>

using namespace asdf;

namespace {

std::mt19937_64 shotRng(uint64_t Seed) {
  // The engines' shared seeding convention (StatevectorBackend,
  // StabilizerBackend): every path that consumes per-shot randomness uses
  // the same generator family.
  return std::mt19937_64(Seed * 0x9E3779B97F4A7C15ull + 0xDEADBEEF);
}

/// One Pauli frame: x and z bit per qubit, packed 64 per word. Phases are
/// irrelevant — only measurement flips (x bits) are ever observed.
struct Frame {
  std::vector<uint64_t> X, Z;

  explicit Frame(unsigned Words) : X(Words, 0), Z(Words, 0) {}

  bool x(unsigned Q) const { return (X[Q >> 6] >> (Q & 63)) & 1; }
  bool z(unsigned Q) const { return (Z[Q >> 6] >> (Q & 63)) & 1; }
  void flipX(unsigned Q) { X[Q >> 6] ^= uint64_t(1) << (Q & 63); }
  void flipZ(unsigned Q) { Z[Q >> 6] ^= uint64_t(1) << (Q & 63); }
  void clear(unsigned Q) {
    uint64_t Mask = ~(uint64_t(1) << (Q & 63));
    X[Q >> 6] &= Mask;
    Z[Q >> 6] &= Mask;
  }
  void mulIn(const std::vector<uint64_t> &Ax, const std::vector<uint64_t> &Az) {
    for (size_t W = 0; W < X.size(); ++W) {
      X[W] ^= Ax[W];
      Z[W] ^= Az[W];
    }
  }

  // Clifford conjugations of the frame, O(1) bit operations each.
  void h(unsigned Q) {
    bool Xb = x(Q), Zb = z(Q);
    if (Xb != Zb) {
      flipX(Q);
      flipZ(Q);
    }
  }
  void s(unsigned Q) { // Sdg conjugates frames identically (phase-free).
    if (x(Q))
      flipZ(Q);
  }
  void cx(unsigned Ctl, unsigned Tgt) {
    if (Ctl == Tgt)
      return; // Degenerate no-op, matching the engines.
    if (x(Ctl))
      flipX(Tgt);
    if (z(Tgt))
      flipZ(Ctl);
  }
  void cz(unsigned A, unsigned B) {
    if (A == B)
      return;
    if (x(A))
      flipZ(B);
    if (x(B))
      flipZ(A);
  }
  void cy(unsigned Ctl, unsigned Tgt) { // CY = S_t CX S_t^dagger.
    s(Tgt);
    cx(Ctl, Tgt);
    s(Tgt);
  }
  void swapQubits(unsigned A, unsigned B) {
    if (A == B)
      return;
    bool Xa = x(A), Za = z(A), Xb = x(B), Zb = z(B);
    if (Xa != Xb) {
      flipX(A);
      flipX(B);
    }
    if (Za != Zb) {
      flipZ(A);
      flipZ(B);
    }
  }
};

/// Conjugates the frame through one (validated Clifford) gate, mirroring
/// applyCliffordInstr's gate set. Uncontrolled Paulis commute with every
/// Pauli up to phase: no-ops on the frame.
void propagate(Frame &F, const CircuitInstr &I) {
  unsigned Tgt = I.Targets.empty() ? 0 : I.Targets[0];
  bool Controlled = !I.Controls.empty();
  unsigned Ctl = Controlled ? I.Controls[0] : 0;
  unsigned Quarters = 0;
  switch (I.Gate) {
  case GateKind::X:
    if (Controlled)
      F.cx(Ctl, Tgt);
    return;
  case GateKind::Y:
    if (Controlled)
      F.cy(Ctl, Tgt);
    return;
  case GateKind::Z:
    if (Controlled)
      F.cz(Ctl, Tgt);
    return;
  case GateKind::H:
    F.h(Tgt);
    return;
  case GateKind::S:
  case GateKind::Sdg:
    F.s(Tgt);
    return;
  case GateKind::Swap:
    F.swapQubits(I.Targets[0], I.Targets[1]);
    return;
  case GateKind::P:
  case GateKind::RZ: {
    bool Ok = quarterTurns(I.Param, Quarters);
    assert(Ok && "non-Clifford phase reached the frame sampler");
    (void)Ok;
    if (Quarters == 0)
      return;
    if (Quarters == 2) {
      if (Controlled)
        F.cz(Ctl, Tgt);
      return; // Uncontrolled Z: frame no-op.
    }
    F.s(Tgt); // S and Sdg conjugate identically.
    return;
  }
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::RX:
  case GateKind::RY:
    break;
  }
  assert(false && "non-Clifford gate reached the frame sampler");
}

} // namespace

FrameReference::FrameReference(const Circuit &Circ, uint64_t Seed)
    : C(&Circ), Words((Circ.NumQubits + 63) / 64) {
  if (Words == 0)
    Words = 1;
  Tableau T(Circ.NumQubits);
  // The reference stream must never collide with a shot's stream (shots
  // use deriveShotSeed(Seed, S) for S < Shots): park it at index 2^64-1.
  std::mt19937_64 Rng = shotRng(deriveShotSeed(Seed, ~uint64_t(0)));
  for (const CircuitInstr &I : Circ.Instrs) {
    assert(I.CondBit < 0 && "frame sampling cannot replay feed-forward");
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      applyCliffordInstr(T, I);
      break;
    case CircuitInstr::Kind::Measure:
    case CircuitInstr::Kind::Reset: {
      MeasureRecord Rec;
      bool Outcome = T.measure(I.Targets[0], Rng, &Rec);
      if (I.TheKind == CircuitInstr::Kind::Reset && Outcome)
        T.x(I.Targets[0]);
      Event E;
      E.Random = Rec.Random;
      E.RefOutcome = Outcome;
      E.AntiX = std::move(Rec.AntiX);
      E.AntiZ = std::move(Rec.AntiZ);
      Events.push_back(std::move(E));
      break;
    }
    }
  }
}

ShotResult FrameReference::sampleShot(const NoiseModel &Model,
                                      const PauliNoisePlan &Plan,
                                      uint64_t ShotSeed,
                                      NoiseStats *Stats) const {
  std::mt19937_64 Rng = shotRng(ShotSeed);
  Frame F(Words);
  ShotResult R;
  R.Bits.assign(C->NumBits, false);
  size_t EventIdx = 0;
  for (size_t Idx = 0; Idx < C->Instrs.size(); ++Idx) {
    const CircuitInstr &I = C->Instrs[Idx];
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate: {
      propagate(F, I);
      for (const PauliNoiseOp &Op : Plan.PerInstr[Idx]) {
        unsigned P = samplePauli(Op, Rng);
        if (P == 1 || P == 2)
          F.flipX(Op.Qubit);
        if (P == 2 || P == 3)
          F.flipZ(Op.Qubit);
        if (Stats) {
          Stats->ChannelApps.fetch_add(1, std::memory_order_relaxed);
          if (P != 0)
            Stats->ErrorBranches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
    case CircuitInstr::Kind::Measure:
    case CircuitInstr::Kind::Reset: {
      const Event &E = Events[EventIdx++];
      // A random collapse in the reference is fresh randomness per shot:
      // flipping a fair coin on the recorded anticommuting stabilizer
      // moves this shot onto the other collapse branch — jointly flipping
      // every outcome that branch choice touches.
      if (E.Random && (Rng() & 1))
        F.mulIn(E.AntiX, E.AntiZ);
      unsigned Q = I.Targets[0];
      if (I.TheKind == CircuitInstr::Kind::Measure) {
        bool Outcome = E.RefOutcome ^ F.x(Q);
        Outcome =
            applyReadoutError(Model.readoutFor(Q), Outcome, Rng, Stats);
        R.Bits[static_cast<unsigned>(I.Cbit)] = Outcome;
      } else {
        // Reset forces |0> for every shot: the frame on Q dies with the
        // discarded state.
        F.clear(Q);
      }
      break;
    }
    }
  }
  return R;
}
