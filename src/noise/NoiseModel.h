//===- NoiseModel.h - Kraus channels and noise-model subsystem ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The noise-model subsystem: NISQ-realistic simulation for the execution
/// engines. A `NoiseModel` attaches single-qubit `KrausChannel`s to the
/// instruction stream — per gate kind, per qubit, or as a catch-all default
/// — plus classical readout error on measurement. The engines consume it
/// two ways:
///
///   - the dense statevector engine runs **quantum trajectories**: after
///     each noisy gate it samples one Kraus branch per attached channel
///     (branch k with probability ||K_k |psi>||^2) from the per-shot RNG
///     stream, so noisy multi-shot runs stay bit-identical across every
///     {jobs, fuse} configuration;
///   - the stabilizer engine requires a **Pauli-only** model (every Kraus
///     operator proportional to I/X/Y/Z) and either propagates sampled
///     Pauli frames through the Clifford circuit (PauliFrame.h) or, with
///     feed-forward, injects sampled Paulis into per-shot tableau runs —
///     polynomial either way, so 500-qubit noisy Clifford circuits stay
///     cheap.
///
/// Channel semantics, fixed and documented so every engine agrees: after a
/// gate instruction executes, for each qubit the instruction touches
/// (targets in order, then controls in order), the gate-kind channels (or
/// the default channels when the kind has none) apply first, then that
/// qubit's per-qubit channels, each in registration order. A
/// classically-conditioned gate that is skipped applies no noise.
/// Measurement readout error flips the *recorded* classical bit (the
/// collapsed state is untouched), so feed-forward conditions see the noisy
/// bit — exactly what hardware does. Reset is noise-free.
///
/// Models parse from a small INI spec (NoiseSpec.h, `asdfc --noise`) or
/// build programmatically via the add*/set* calls below.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_NOISE_NOISEMODEL_H
#define ASDF_NOISE_NOISEMODEL_H

#include "qcirc/Circuit.h"
#include "sim/Fusion.h" // Mat2, the currency of Kraus operators

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace asdf {

/// The probabilities of a Pauli channel: Kraus operators proportional to
/// I, X, Y, Z with |scale|^2 summing to one.
struct PauliProbs {
  double PI = 1.0, PX = 0.0, PY = 0.0, PZ = 0.0;
};

/// A single-qubit quantum channel in Kraus form: rho -> sum_k K_k rho K_k'.
/// Trace preservation (sum_k K_k' K_k == I) makes the trajectory branch
/// probabilities sum to one; `isCPTP` verifies it and the engines assume it.
struct KrausChannel {
  std::string Name;      ///< Human-readable, e.g. "depolarizing(0.01)".
  std::vector<Mat2> Ops; ///< The Kraus operators K_k.

  /// True if sum_k K_k' K_k == I within \p Tol (trace preservation; Kraus
  /// form is completely positive by construction).
  bool isCPTP(double Tol = 1e-9) const;

  /// True if every K_k is proportional to a single Pauli matrix; fills
  /// \p P with the summed branch probabilities. Pauli channels are what the
  /// stabilizer engine's frame/tableau paths can execute.
  bool pauliProbs(PauliProbs &P, double Tol = 1e-9) const;

  // Built-in channels. Probabilities/rates must lie in [0, 1].
  static KrausChannel depolarizing(double P);     ///< p/3 each of X, Y, Z.
  static KrausChannel bitFlip(double P);          ///< X with probability p.
  static KrausChannel phaseFlip(double P);        ///< Z with probability p.
  static KrausChannel amplitudeDamping(double Gamma); ///< |1> decays to |0>.
  static KrausChannel phaseDamping(double Lambda);    ///< Coherence decay.
  /// A general channel from explicit Kraus operators (validated by callers
  /// via isCPTP).
  static KrausChannel kraus(std::vector<Mat2> Ops, std::string Name);
};

/// Classical measurement error: the recorded bit flips 0->1 with P0to1 and
/// 1->0 with P1to0; the collapsed quantum state is untouched.
struct ReadoutError {
  double P0to1 = 0.0;
  double P1to0 = 0.0;

  bool trivial() const { return P0to1 <= 0.0 && P1to0 <= 0.0; }
};

/// Cross-thread diagnostics counters for a noisy run (asdfc
/// --trajectories). Incremented by every engine path.
struct NoiseStats {
  std::atomic<uint64_t> ChannelApps{0};   ///< Channel applications sampled.
  std::atomic<uint64_t> ErrorBranches{0}; ///< Non-first Kraus / non-I Pauli
                                          ///< branches taken.
  std::atomic<uint64_t> ReadoutFlips{0};  ///< Recorded bits flipped.
};

/// One channel application site: \p Channel acts on \p Qubit.
struct NoiseOp {
  unsigned Qubit = 0;
  const KrausChannel *Channel = nullptr;
};

/// A noise model: channels keyed by gate kind / qubit plus readout error.
/// Engines hold it by const pointer (RunOptions::Noise); it must outlive
/// the run.
class NoiseModel {
public:
  /// Appends \p Ch to the channels applied (to each touched qubit) after
  /// every gate of kind \p G.
  void addGateChannel(GateKind G, KrausChannel Ch);

  /// Appends \p Ch to the catch-all channels, applied after gates whose
  /// kind has no channel of its own.
  void addDefaultChannel(KrausChannel Ch);

  /// Appends \p Ch to the channels applied to qubit \p Q after every gate
  /// touching it (on top of the gate-kind/default channels).
  void addQubitChannel(unsigned Q, KrausChannel Ch);

  /// Sets the global readout error.
  void setReadoutError(double P0to1, double P1to0);

  /// Overrides the readout error for one qubit.
  void setQubitReadoutError(unsigned Q, double P0to1, double P1to0);

  /// True if the model perturbs nothing (no channels, trivial readout).
  bool empty() const;

  /// True if any gate-attached channel exists (as opposed to readout-only
  /// models, which leave the shared unconditional prefix reusable).
  bool hasGateNoise() const;

  /// True if every channel in the model is a Pauli channel — the condition
  /// for the stabilizer engine to execute the model exactly.
  bool isPauliOnly() const;

  /// True if executing \p I applies at least one channel.
  bool affectsGate(const CircuitInstr &I) const;

  /// The channel applications executing \p I triggers, in the documented
  /// order (per touched qubit: gate-kind-or-default channels, then
  /// per-qubit channels). Empty for non-gate and unaffected instructions.
  std::vector<NoiseOp> noiseFor(const CircuitInstr &I) const;

  /// The readout error for measurements of qubit \p Q (the per-qubit
  /// override if set, else the global error).
  const ReadoutError &readoutFor(unsigned Q) const;

  /// The global readout error, ignoring per-qubit overrides.
  const ReadoutError &globalReadoutError() const { return GlobalReadout; }

  /// The per-qubit override for \p Q, or null if none is set.
  const ReadoutError *qubitReadoutOverride(unsigned Q) const;

  /// Verifies every channel is CPTP and every probability is a
  /// probability. False fills \p Error with the first offender.
  bool validate(std::string &Error) const;

  /// One-line description for diagnostics, e.g.
  /// "2 gate channel(s), 1 qubit channel(s), default: 1, readout: global".
  std::string summary() const;

private:
  std::map<GateKind, std::vector<KrausChannel>> GateChannels;
  std::vector<KrausChannel> DefaultChannels;
  std::map<unsigned, std::vector<KrausChannel>> QubitChannels;
  ReadoutError GlobalReadout;
  std::map<unsigned, ReadoutError> QubitReadout;
};

/// The per-instruction channel applications of \p M over \p C, resolved
/// once per batch so per-shot execution never touches a map.
struct NoisePlan {
  /// Indexed by instruction; empty vectors for unaffected instructions.
  std::vector<std::vector<NoiseOp>> PerInstr;
  /// First instruction index with noise attached; C.Instrs.size() if none.
  /// The shared multi-shot prefix must end here: noisy gates consume
  /// per-shot randomness.
  size_t FirstNoisyInstr = 0;
};
NoisePlan planNoise(const NoiseModel &M, const Circuit &C);

/// One Pauli-sampling site of a Pauli-only model, with cumulative branch
/// thresholds: a uniform draw u picks X if u < CumX, else Y if u < CumXY,
/// else Z if u < CumXYZ, else I.
struct PauliNoiseOp {
  unsigned Qubit = 0;
  double CumX = 0.0, CumXY = 0.0, CumXYZ = 0.0;
};

/// The Pauli-sampling plan of a Pauli-only model over \p C (asserts
/// M.isPauliOnly()). Channel lists compose by sequential sampling, which
/// is exact for Pauli channels.
struct PauliNoisePlan {
  std::vector<std::vector<PauliNoiseOp>> PerInstr;
};
PauliNoisePlan planPauliNoise(const NoiseModel &M, const Circuit &C);

/// Samples one Pauli from \p Op: 0 = I, 1 = X, 2 = Y, 3 = Z. Consumes
/// exactly one uniform draw.
unsigned samplePauli(const PauliNoiseOp &Op, std::mt19937_64 &Rng);

/// Applies \p E to a recorded measurement bit: returns the possibly
/// flipped bit, consuming one uniform draw unless \p E is trivial.
bool applyReadoutError(const ReadoutError &E, bool Bit, std::mt19937_64 &Rng,
                       NoiseStats *Stats = nullptr);

} // namespace asdf

#endif // ASDF_NOISE_NOISEMODEL_H
