//===- NoiseSpec.cpp - INI-style noise-model spec parser ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "noise/NoiseSpec.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace asdf;

namespace {

std::string trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::string stripComment(const std::string &S) {
  size_t Pos = S.find_first_of("#;");
  return Pos == std::string::npos ? S : S.substr(0, Pos);
}

bool parseGateName(const std::string &Name, GateKind &G) {
  static const struct {
    const char *Name;
    GateKind Kind;
  } Table[] = {
      {"x", GateKind::X},   {"y", GateKind::Y},     {"z", GateKind::Z},
      {"h", GateKind::H},   {"s", GateKind::S},     {"sdg", GateKind::Sdg},
      {"t", GateKind::T},   {"tdg", GateKind::Tdg}, {"p", GateKind::P},
      {"rx", GateKind::RX}, {"ry", GateKind::RY},   {"rz", GateKind::RZ},
      {"swap", GateKind::Swap},
  };
  for (const auto &Entry : Table)
    if (Name == Entry.Name) {
      G = Entry.Kind;
      return true;
    }
  return false;
}

bool parseProb(const std::string &Value, double &P) {
  char *End = nullptr;
  P = std::strtod(Value.c_str(), &End);
  if (End == Value.c_str() || *End != '\0')
    return false;
  return P >= 0.0 && P <= 1.0;
}

bool makeChannel(const std::string &Key, double P, KrausChannel &Ch) {
  if (Key == "depolarizing")
    Ch = KrausChannel::depolarizing(P);
  else if (Key == "bit_flip")
    Ch = KrausChannel::bitFlip(P);
  else if (Key == "phase_flip")
    Ch = KrausChannel::phaseFlip(P);
  else if (Key == "amplitude_damping")
    Ch = KrausChannel::amplitudeDamping(P);
  else if (Key == "phase_damping")
    Ch = KrausChannel::phaseDamping(P);
  else
    return false;
  return true;
}

/// Where key=value lines of the current section land.
struct Section {
  enum class Kind { None, Gate, DefaultGate, Qubit, Readout, QubitReadout };
  Kind TheKind = Kind::None;
  GateKind Gate = GateKind::X;
  unsigned Qubit = 0;
};

bool parseQubitIndex(const std::string &S, unsigned &Q) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long V = std::strtoul(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0')
    return false;
  Q = static_cast<unsigned>(V);
  return true;
}

} // namespace

bool asdf::parseNoiseSpec(const std::string &Text, NoiseModel &M,
                          std::string &Error) {
  std::istringstream In(Text);
  std::string Raw;
  Section Sec;
  unsigned LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  };
  // Readout sections accumulate both probabilities before committing.
  // They are seeded from whatever the model already holds, so re-opening
  // a section (or an empty one) merges instead of silently zeroing the
  // other probability.
  double P0to1 = 0.0, P1to0 = 0.0;
  auto CommitReadout = [&] {
    if (Sec.TheKind == Section::Kind::Readout)
      M.setReadoutError(P0to1, P1to0);
    else if (Sec.TheKind == Section::Kind::QubitReadout)
      M.setQubitReadoutError(Sec.Qubit, P0to1, P1to0);
  };
  auto OpenReadout = [&](const ReadoutError *Existing) {
    P0to1 = Existing ? Existing->P0to1 : 0.0;
    P1to0 = Existing ? Existing->P1to0 : 0.0;
  };

  while (std::getline(In, Raw)) {
    ++LineNo;
    std::string Line = trim(stripComment(Raw));
    if (Line.empty())
      continue;

    if (Line.front() == '[') {
      if (Line.back() != ']')
        return Fail("unterminated section header");
      CommitReadout();
      std::string Header = trim(Line.substr(1, Line.size() - 2));
      size_t Colon = Header.find(':');
      std::string Kind = trim(Header.substr(0, Colon));
      std::string Arg =
          Colon == std::string::npos ? "" : trim(Header.substr(Colon + 1));
      if (Kind == "gate") {
        if (Arg == "*") {
          Sec.TheKind = Section::Kind::DefaultGate;
        } else if (parseGateName(Arg, Sec.Gate)) {
          Sec.TheKind = Section::Kind::Gate;
        } else {
          return Fail("unknown gate '" + Arg +
                      "' (expect x, y, z, h, s, sdg, t, tdg, p, rx, ry, rz, "
                      "swap, or *)");
        }
      } else if (Kind == "qubit") {
        if (!parseQubitIndex(Arg, Sec.Qubit))
          return Fail("bad qubit index '" + Arg + "'");
        Sec.TheKind = Section::Kind::Qubit;
      } else if (Kind == "readout") {
        if (Arg.empty()) {
          Sec.TheKind = Section::Kind::Readout;
          OpenReadout(&M.globalReadoutError());
        } else {
          if (!parseQubitIndex(Arg, Sec.Qubit))
            return Fail("bad qubit index '" + Arg + "'");
          Sec.TheKind = Section::Kind::QubitReadout;
          OpenReadout(M.qubitReadoutOverride(Sec.Qubit));
        }
      } else {
        return Fail("unknown section '" + Kind +
                    "' (expect gate, qubit, or readout)");
      }
      continue;
    }

    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return Fail("expected 'key = value'");
    std::string Key = trim(Line.substr(0, Eq));
    std::string Value = trim(Line.substr(Eq + 1));
    double P;
    if (!parseProb(Value, P))
      return Fail("'" + Value + "' is not a probability in [0, 1]");

    switch (Sec.TheKind) {
    case Section::Kind::None:
      return Fail("'" + Key + "' outside any section");
    case Section::Kind::Gate:
    case Section::Kind::DefaultGate:
    case Section::Kind::Qubit: {
      KrausChannel Ch;
      if (!makeChannel(Key, P, Ch))
        return Fail("unknown channel '" + Key +
                    "' (expect depolarizing, bit_flip, phase_flip, "
                    "amplitude_damping, or phase_damping)");
      if (Sec.TheKind == Section::Kind::Gate)
        M.addGateChannel(Sec.Gate, std::move(Ch));
      else if (Sec.TheKind == Section::Kind::DefaultGate)
        M.addDefaultChannel(std::move(Ch));
      else
        M.addQubitChannel(Sec.Qubit, std::move(Ch));
      break;
    }
    case Section::Kind::Readout:
    case Section::Kind::QubitReadout:
      if (Key == "p0to1")
        P0to1 = P;
      else if (Key == "p1to0")
        P1to0 = P;
      else
        return Fail("unknown readout key '" + Key +
                    "' (expect p0to1 or p1to0)");
      break;
    }
  }
  CommitReadout();
  return true;
}

bool asdf::loadNoiseSpec(const std::string &Path, NoiseModel &M,
                         std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!parseNoiseSpec(Buf.str(), M, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}
