//===- Pass.cpp - Staged pass manager for the Fig. 2 pipeline -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pass.h"

#include "ast/AST.h"
#include "ir/IR.h"
#include "qcirc/Circuit.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

using namespace asdf;

const char *asdf::pipelineStageName(PipelineStage S) {
  switch (S) {
  case PipelineStage::AST:
    return "ast";
  case PipelineStage::Qwerty:
    return "qwerty";
  case PipelineStage::QCirc:
    return "qcirc";
  case PipelineStage::Circuit:
    return "circuit";
  }
  return "?";
}

bool asdf::parsePipelineStage(const std::string &Name, PipelineStage &Out) {
  if (Name == "ast")
    Out = PipelineStage::AST;
  else if (Name == "qwerty")
    Out = PipelineStage::Qwerty;
  else if (Name == "qcirc")
    Out = PipelineStage::QCirc;
  else if (Name == "circuit")
    Out = PipelineStage::Circuit;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Unit statistics, printing, verification
//===----------------------------------------------------------------------===//

std::string UnitStats::str(PipelineStage S) const {
  std::ostringstream OS;
  switch (S) {
  case PipelineStage::AST:
    OS << Functions << " funcs, " << Ops << " stmts";
    break;
  case PipelineStage::Qwerty:
  case PipelineStage::QCirc:
    OS << Functions << " funcs, " << Ops << " ops";
    break;
  case PipelineStage::Circuit:
    OS << Ops << " instrs, " << Qubits << " qubits";
    break;
  }
  return OS.str();
}

UnitStats asdf::unitStats(const Program &P) {
  UnitStats S;
  S.Functions = P.Functions.size();
  for (const auto &F : P.Functions)
    S.Ops += F->Body.size();
  return S;
}

UnitStats asdf::unitStats(const Module &M) {
  UnitStats S;
  S.Functions = M.Functions.size();
  std::function<void(const Block &)> Count = [&](const Block &B) {
    for (const auto &O : B.Ops) {
      ++S.Ops;
      for (const auto &R : O->Regions)
        if (R)
          Count(*R);
    }
  };
  for (const auto &F : M.Functions)
    Count(F->Body);
  return S;
}

UnitStats asdf::unitStats(const Circuit &C) {
  UnitStats S;
  S.Ops = C.Instrs.size();
  S.Qubits = C.NumQubits;
  return S;
}

std::string asdf::unitPrint(const Program &P) { return P.str(); }
std::string asdf::unitPrint(const Module &M) { return M.str(); }
std::string asdf::unitPrint(const Circuit &C) { return C.str(); }

bool asdf::unitVerify(const Program &, DiagnosticEngine &) { return true; }

bool asdf::unitVerify(const Module &M, DiagnosticEngine &Diags) {
  return verifyModule(M, Diags);
}

bool asdf::unitVerify(const Circuit &C, DiagnosticEngine &Diags) {
  bool Ok = true;
  auto Fail = [&](const std::string &Msg) {
    Diags.error(SourceLoc(), Msg);
    Ok = false;
  };
  for (const CircuitInstr &I : C.Instrs) {
    for (unsigned Q : I.Controls)
      if (Q >= C.NumQubits)
        Fail("control index out of range: " + std::to_string(Q));
    for (unsigned Q : I.Targets)
      if (Q >= C.NumQubits)
        Fail("target index out of range: " + std::to_string(Q));
    if (I.TheKind == CircuitInstr::Kind::Measure &&
        (I.Cbit < 0 || static_cast<unsigned>(I.Cbit) >= C.NumBits))
      Fail("measure destination bit out of range");
    if (I.CondBit >= 0 && static_cast<unsigned>(I.CondBit) >= C.NumBits)
      Fail("condition bit out of range");
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Instrumentation output
//===----------------------------------------------------------------------===//

void PassContext::dump(const char *When, PipelineStage Stage,
                       const std::string &Name, const std::string &IR) {
  std::string Banner = std::string("// -----// IR Dump ") + When + " " +
                       Name + " (" + pipelineStageName(Stage) +
                       ") //----- //";
  if (PrintSink) {
    PrintSink(Banner, IR);
    return;
  }
  std::fprintf(stderr, "%s\n%s\n", Banner.c_str(), IR.c_str());
}

std::string PassContext::timingReport() const {
  double Total = 0.0;
  for (const PassTiming &T : Timings)
    Total += T.Seconds;
  std::ostringstream OS;
  OS << "===" << std::string(73, '-') << "===\n"
     << "  ... Pass execution timing report ...\n"
     << "===" << std::string(73, '-') << "===\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "  Total Execution Time: %.4f seconds\n\n",
                Total);
  OS << Buf;
  OS << "   ---Wall Time---   ---IR Size---      --- Name ---\n";
  for (const PassTiming &T : Timings) {
    double Pct = Total > 0 ? 100.0 * T.Seconds / Total : 0.0;
    std::snprintf(Buf, sizeof(Buf), "   %8.4f (%5.1f%%)  %s -> %s  %s:%s\n",
                  T.Seconds, Pct, T.Before.str(T.Stage).c_str(),
                  T.After.str(T.Stage).c_str(),
                  pipelineStageName(T.Stage), T.PassName.c_str());
    OS << Buf;
  }
  return OS.str();
}
