//===- CompileSession.cpp - One compilation: source, artifacts, diags -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compiler/CompileSession.h"

#include "ast/AST.h"
#include "ast/Parser.h"
#include "qcirc/Convert.h"
#include "qcirc/Flatten.h"
#include "qwerty/Lower.h"

#include <chrono>

using namespace asdf;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::unique_ptr<Pass<Program>> createPass(PassRegistry &R, PipelineStage S,
                                          const std::string &N, Program *) {
  return R.createProgramPass(S, N);
}
std::unique_ptr<Pass<Module>> createPass(PassRegistry &R, PipelineStage S,
                                         const std::string &N, Module *) {
  return R.createModulePass(S, N);
}
std::unique_ptr<Pass<Circuit>> createPass(PassRegistry &R, PipelineStage S,
                                          const std::string &N, Circuit *) {
  return R.createCircuitPass(S, N);
}

} // namespace

CompileSession::CompileSession(std::string Source, ProgramBindings Bindings,
                               SessionOptions Options)
    : Source(std::move(Source)), Bindings(std::move(Bindings)),
      Options(std::move(Options)), Ctx(Diags) {
  Ctx.Entry = this->Options.Entry;
  Ctx.Bindings = &this->Bindings;
  Ctx.CollectTimings = this->Options.CollectTimings;
  Ctx.VerifyEach = this->Options.VerifyEach;
  Ctx.PrintAfter = this->Options.PrintAfter;
  Ctx.PrintBefore = this->Options.PrintBefore;
  Ctx.PrintSink = this->Options.PrintSink;
}

void CompileSession::hashIdentity(ContentHasher &H,
                                  const std::string &Source,
                                  const std::string &Entry,
                                  const PipelinePlan &Plan,
                                  const ProgramBindings &Bindings) {
  // Every field is length-prefixed (ContentHasher::str) and preceded by a
  // tag, so adjacent fields can never alias. The plan hashes via its
  // canonical spec text: two spellings of the same pass list (a preset
  // name vs. the explicit stage:pass spec) are the same compilation.
  H.str("source");
  H.str(Source);
  H.str("entry");
  H.str(Entry);
  H.str("plan");
  H.str(Plan.str());
  H.str("dimvars");
  H.u64(Bindings.DimVars.size());
  for (const auto &[Name, Value] : Bindings.DimVars) {
    H.str(Name);
    H.i64(Value);
  }
  H.str("captures");
  H.u64(Bindings.Captures.size());
  for (const auto &[Func, Params] : Bindings.Captures) {
    H.str(Func);
    H.u64(Params.size());
    for (const auto &[Param, Capture] : Params) {
      H.str(Param);
      if (Capture.TheKind == CaptureValue::Kind::ClassicalFunc) {
        H.str("func");
        H.str(Capture.FuncName);
      } else {
        H.str("bits");
        H.u64(Capture.Bits.size());
        for (bool B : Capture.Bits)
          H.u64(B ? 1 : 0);
      }
    }
  }
}

std::array<uint64_t, 2> CompileSession::contentHash() const {
  ContentHasher H;
  hashIdentity(H, Source, Options.Entry, Options.Plan, Bindings);
  return H.digest();
}

template <typename UnitT>
bool CompileSession::runPassList(PipelineStage Stage,
                                 const std::vector<std::string> &Names,
                                 UnitT &U) {
  PassRegistry &Reg = PassRegistry::instance();
  PassManager<UnitT> PM(Stage);
  for (const std::string &Name : Names) {
    std::unique_ptr<Pass<UnitT>> P =
        createPass(Reg, Stage, Name, static_cast<UnitT *>(nullptr));
    if (!P) {
      Diags.error(SourceLoc(), "unknown pass '" + Name + "' in stage '" +
                                   pipelineStageName(Stage) + "'");
      Ctx.noteFailure(Stage, Name);
      return false;
    }
    PM.add(std::move(P));
  }
  return PM.run(U, Ctx);
}

bool CompileSession::fail() {
  Failed = true;
  std::string Where =
      Ctx.FailedPass.empty()
          ? std::string("compile")
          : std::string(pipelineStageName(Ctx.FailedStage)) + ":" +
                Ctx.FailedPass;
  ErrorMessage = Where + " failed for entry '" + Options.Entry + "':\n" +
                 Diags.str();
  return false;
}

bool CompileSession::runAstStage() {
  auto T0 = std::chrono::steady_clock::now();
  AST = parseProgram(Source, Diags);
  if (!Ctx.recordCreation(PipelineStage::AST, "parse", secondsSince(T0),
                          AST.get()))
    return fail();
  if (!runPassList(PipelineStage::AST, Options.Plan.Ast, *AST))
    return fail();
  return true;
}

bool CompileSession::runQwertyStage() {
  Ctx.dumpBeforeCreation(PipelineStage::Qwerty, "lower", *AST);
  auto T0 = std::chrono::steady_clock::now();
  QwertyIR = lowerToQwertyIR(*AST, Diags);
  if (!Ctx.recordCreation(PipelineStage::Qwerty, "lower", secondsSince(T0),
                          QwertyIR.get()))
    return fail();
  if (!runPassList(PipelineStage::Qwerty, Options.Plan.Qwerty, *QwertyIR))
    return fail();
  return true;
}

bool CompileSession::runQCircStage() {
  // Conversion is destructive in place; deep-clone so the Qwerty IR
  // artifact stays inspectable without recompiling the front half.
  QCircIR = cloneModule(*QwertyIR);
  bool Converted =
      Ctx.runInstrumented(PipelineStage::QCirc, "convert", *QCircIR, [&] {
        return convertToQCircuit(*QCircIR, *AST, Diags);
      });
  if (!Converted)
    return fail();
  if (!runPassList(PipelineStage::QCirc, Options.Plan.QCirc, *QCircIR))
    return fail();
  return true;
}

bool CompileSession::runCircuitStage() {
  Ctx.dumpBeforeCreation(PipelineStage::Circuit, "flatten", *QCircIR);
  auto T0 = std::chrono::steady_clock::now();
  std::optional<Circuit> C =
      flattenToCircuit(*QCircIR, Options.Entry, Diags);
  if (C)
    Flat = std::move(*C);
  else if (!Options.Plan.producesFlatCircuit())
    // Flatten is attempted regardless of the plan (a custom pipeline may
    // inline under another pass name); explain the likely cause when a
    // non-inlining plan was indeed the problem.
    Diags.note(SourceLoc(),
               "pipeline plan '" + Options.Plan.str() +
                   "' does not include the 'inline' pass, so call/callable "
                   "ops survive to flattening (only Qwerty IR / "
                   "unrestricted QIR can be emitted)");
  if (!Ctx.recordCreation(PipelineStage::Circuit, "flatten",
                          secondsSince(T0), Flat ? &*Flat : nullptr))
    return fail();
  if (!runPassList(PipelineStage::Circuit, Options.Plan.Circuit, *Flat))
    return fail();
  return true;
}

bool CompileSession::runTo(Phase Target) {
  // Cache check first: artifacts a completed stage produced stay
  // inspectable even after a *later* stage fails (the debugging flow the
  // header advertises).
  if (Done >= Target)
    return true;
  if (Failed)
    return false;
  if (Done < Phase::AST) {
    if (!runAstStage())
      return false;
    Done = Phase::AST;
  }
  if (Target == Phase::AST)
    return true;
  if (Done < Phase::Qwerty) {
    if (!runQwertyStage())
      return false;
    Done = Phase::Qwerty;
  }
  if (Target == Phase::Qwerty)
    return true;
  if (Done < Phase::QCirc) {
    if (!runQCircStage())
      return false;
    Done = Phase::QCirc;
  }
  if (Target == Phase::QCirc)
    return true;
  if (Done < Phase::Flat) {
    if (!runCircuitStage())
      return false;
    Done = Phase::Flat;
  }
  return true;
}

Program *CompileSession::ast() {
  return runTo(Phase::AST) ? AST.get() : nullptr;
}

Module *CompileSession::qwertyIR() {
  return runTo(Phase::Qwerty) ? QwertyIR.get() : nullptr;
}

Module *CompileSession::qcircIR() {
  return runTo(Phase::QCirc) ? QCircIR.get() : nullptr;
}

Circuit *CompileSession::flatCircuit() {
  return runTo(Phase::Flat) && Flat ? &*Flat : nullptr;
}

CompileSession::Artifacts CompileSession::takeArtifacts() {
  Artifacts A;
  A.AST = std::move(AST);
  A.QwertyIR = std::move(QwertyIR);
  A.QCircIR = std::move(QCircIR);
  A.Flat = std::move(Flat);
  return A;
}
