//===- CompileSession.cpp - One compilation: source, artifacts, diags -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compiler/CompileSession.h"

#include "ast/AST.h"
#include "ast/Lexer.h"
#include "ast/Parser.h"
#include "qcirc/Convert.h"
#include "qcirc/Flatten.h"
#include "qwerty/Lower.h"

#include <algorithm>
#include <cctype>
#include <chrono>

using namespace asdf;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::unique_ptr<Pass<Program>> createPass(PassRegistry &R, PipelineStage S,
                                          const std::string &N, Program *) {
  return R.createProgramPass(S, N);
}
std::unique_ptr<Pass<Module>> createPass(PassRegistry &R, PipelineStage S,
                                         const std::string &N, Module *) {
  return R.createModulePass(S, N);
}
std::unique_ptr<Pass<Circuit>> createPass(PassRegistry &R, PipelineStage S,
                                          const std::string &N, Circuit *) {
  return R.createCircuitPass(S, N);
}

} // namespace

CompileSession::CompileSession(std::string Source, ProgramBindings Bindings,
                               SessionOptions Options)
    : Source(std::move(Source)), Bindings(std::move(Bindings)),
      Options(std::move(Options)), Ctx(Diags) {
  Ctx.Entry = this->Options.Entry;
  Ctx.Bindings = &this->Bindings;
  Ctx.CollectTimings = this->Options.CollectTimings;
  Ctx.VerifyEach = this->Options.VerifyEach;
  Ctx.PrintAfter = this->Options.PrintAfter;
  Ctx.PrintBefore = this->Options.PrintBefore;
  Ctx.PrintSink = this->Options.PrintSink;
}

void CompileSession::hashIdentity(ContentHasher &H,
                                  const std::string &Source,
                                  const std::string &Entry,
                                  const PipelinePlan &Plan,
                                  const ProgramBindings &Bindings) {
  // Every field is length-prefixed (ContentHasher::str) and preceded by a
  // tag, so adjacent fields can never alias. The plan hashes via its
  // canonical spec text: two spellings of the same pass list (a preset
  // name vs. the explicit stage:pass spec) are the same compilation.
  H.str("source");
  H.str(Source);
  H.str("entry");
  H.str(Entry);
  H.str("plan");
  H.str(Plan.str());
  H.str("dimvars");
  H.u64(Bindings.DimVars.size());
  for (const auto &[Name, Value] : Bindings.DimVars) {
    H.str(Name);
    H.i64(Value);
  }
  H.str("captures");
  H.u64(Bindings.Captures.size());
  for (const auto &[Func, Params] : Bindings.Captures) {
    H.str(Func);
    H.u64(Params.size());
    for (const auto &[Param, Capture] : Params) {
      H.str(Param);
      if (Capture.TheKind == CaptureValue::Kind::ClassicalFunc) {
        H.str("func");
        H.str(Capture.FuncName);
      } else {
        H.str("bits");
        H.u64(Capture.Bits.size());
        for (bool B : Capture.Bits)
          H.u64(B ? 1 : 0);
      }
    }
  }
}

std::array<uint64_t, 2> CompileSession::contentHash() const {
  ContentHasher H;
  hashIdentity(H, Source, Options.Entry, Options.Plan, Bindings);
  return H.digest();
}

template <typename UnitT>
bool CompileSession::runPassList(PipelineStage Stage,
                                 const std::vector<std::string> &Names,
                                 UnitT &U) {
  PassRegistry &Reg = PassRegistry::instance();
  PassManager<UnitT> PM(Stage);
  for (const std::string &Name : Names) {
    std::unique_ptr<Pass<UnitT>> P =
        createPass(Reg, Stage, Name, static_cast<UnitT *>(nullptr));
    if (!P) {
      Diags.error(SourceLoc(), "unknown pass '" + Name + "' in stage '" +
                                   pipelineStageName(Stage) + "'");
      Ctx.noteFailure(Stage, Name);
      return false;
    }
    PM.add(std::move(P));
  }
  return PM.run(U, Ctx);
}

bool CompileSession::fail() {
  Failed = true;
  std::string Where =
      Ctx.FailedPass.empty()
          ? std::string("compile")
          : std::string(pipelineStageName(Ctx.FailedStage)) + ":" +
                Ctx.FailedPass;
  ErrorMessage = Where + " failed for entry '" + Options.Entry + "':\n" +
                 Diags.str();
  return false;
}

bool CompileSession::runAstStage() {
  auto T0 = std::chrono::steady_clock::now();
  AST = parseProgram(Source, Diags);
  if (!Ctx.recordCreation(PipelineStage::AST, "parse", secondsSince(T0),
                          AST.get()))
    return fail();
  if (!runPassList(PipelineStage::AST, Options.Plan.Ast, *AST))
    return fail();
  return true;
}

bool CompileSession::runQwertyStage() {
  Ctx.dumpBeforeCreation(PipelineStage::Qwerty, "lower", *AST);
  auto T0 = std::chrono::steady_clock::now();
  QwertyIR = lowerToQwertyIR(*AST, Diags);
  if (!Ctx.recordCreation(PipelineStage::Qwerty, "lower", secondsSince(T0),
                          QwertyIR.get()))
    return fail();
  if (!runPassList(PipelineStage::Qwerty, Options.Plan.Qwerty, *QwertyIR))
    return fail();
  return true;
}

bool CompileSession::runQCircStage() {
  // Conversion is destructive in place; deep-clone so the Qwerty IR
  // artifact stays inspectable without recompiling the front half.
  QCircIR = cloneModule(*QwertyIR);
  bool Converted =
      Ctx.runInstrumented(PipelineStage::QCirc, "convert", *QCircIR, [&] {
        return convertToQCircuit(*QCircIR, *AST, Diags);
      });
  if (!Converted)
    return fail();
  if (!runPassList(PipelineStage::QCirc, Options.Plan.QCirc, *QCircIR))
    return fail();
  return true;
}

bool CompileSession::runCircuitStage() {
  Ctx.dumpBeforeCreation(PipelineStage::Circuit, "flatten", *QCircIR);
  auto T0 = std::chrono::steady_clock::now();
  std::optional<Circuit> C =
      flattenToCircuit(*QCircIR, Options.Entry, Diags);
  if (C)
    Flat = std::move(*C);
  else if (!Options.Plan.producesFlatCircuit())
    // Flatten is attempted regardless of the plan (a custom pipeline may
    // inline under another pass name); explain the likely cause when a
    // non-inlining plan was indeed the problem.
    Diags.note(SourceLoc(),
               "pipeline plan '" + Options.Plan.str() +
                   "' does not include the 'inline' pass, so call/callable "
                   "ops survive to flattening (only Qwerty IR / "
                   "unrestricted QIR can be emitted)");
  if (!Ctx.recordCreation(PipelineStage::Circuit, "flatten",
                          secondsSince(T0), Flat ? &*Flat : nullptr))
    return fail();
  if (!runPassList(PipelineStage::Circuit, Options.Plan.Circuit, *Flat))
    return fail();
  return true;
}

bool CompileSession::runTo(Phase Target) {
  // Cache check first: artifacts a completed stage produced stay
  // inspectable even after a *later* stage fails (the debugging flow the
  // header advertises).
  if (Done >= Target)
    return true;
  if (Failed)
    return false;
  if (Done < Phase::AST) {
    if (!runAstStage())
      return false;
    Done = Phase::AST;
  }
  if (Target == Phase::AST)
    return true;
  if (Done < Phase::Qwerty) {
    if (!runQwertyStage())
      return false;
    Done = Phase::Qwerty;
  }
  if (Target == Phase::Qwerty)
    return true;
  if (Done < Phase::QCirc) {
    if (!runQCircStage())
      return false;
    Done = Phase::QCirc;
  }
  if (Target == Phase::QCirc)
    return true;
  if (Done < Phase::Flat) {
    if (!runCircuitStage())
      return false;
    Done = Phase::Flat;
  }
  return true;
}

Program *CompileSession::ast() {
  return runTo(Phase::AST) ? AST.get() : nullptr;
}

Module *CompileSession::qwertyIR() {
  return runTo(Phase::Qwerty) ? QwertyIR.get() : nullptr;
}

Module *CompileSession::qcircIR() {
  return runTo(Phase::QCirc) ? QCircIR.get() : nullptr;
}

Circuit *CompileSession::flatCircuit() {
  return runTo(Phase::Flat) && Flat ? &*Flat : nullptr;
}

CompileSession::Artifacts CompileSession::takeArtifacts() {
  Artifacts A;
  A.AST = std::move(AST);
  A.QwertyIR = std::move(QwertyIR);
  A.QCircIR = std::move(QCircIR);
  A.Flat = std::move(Flat);
  return A;
}

//===----------------------------------------------------------------------===//
// Parametric compilation
//===----------------------------------------------------------------------===//

const std::vector<std::string> *CompileSession::paramNames() {
  Circuit *C = flatCircuit();
  return C ? &C->ParamNames : nullptr;
}

namespace {

std::string joinParamNames(const std::vector<std::string> &Names) {
  std::string S;
  for (size_t I = 0; I < Names.size(); ++I) {
    if (I)
      S += ", ";
    S += "$" + Names[I];
  }
  return S;
}

} // namespace

std::optional<Circuit>
CompileSession::bindParams(const std::vector<double> &Values,
                           std::string *Err) {
  Circuit *C = flatCircuit();
  if (!C) {
    if (Err)
      *Err = ErrorMessage;
    return std::nullopt;
  }
  if (Values.size() != C->ParamNames.size()) {
    if (Err) {
      *Err = "cannot bind " + std::to_string(Values.size()) +
             " value(s) to " + std::to_string(C->ParamNames.size()) +
             " parameter(s)";
      if (!C->ParamNames.empty())
        *Err += " (" + joinParamNames(C->ParamNames) + ")";
    }
    return std::nullopt;
  }
  return bindCircuit(*C, Values);
}

std::optional<Circuit>
CompileSession::bindParams(const std::map<std::string, double> &Values,
                           std::string *Err) {
  Circuit *C = flatCircuit();
  if (!C) {
    if (Err)
      *Err = ErrorMessage;
    return std::nullopt;
  }
  for (const auto &[Name, Value] : Values) {
    (void)Value;
    if (std::find(C->ParamNames.begin(), C->ParamNames.end(), Name) ==
        C->ParamNames.end()) {
      if (Err) {
        *Err = "unknown parameter '$" + Name + "'";
        *Err += C->ParamNames.empty()
                    ? std::string("; the program declares no parameters")
                    : "; the program declares (" +
                          joinParamNames(C->ParamNames) + ")";
      }
      return std::nullopt;
    }
  }
  std::vector<double> Ordered;
  Ordered.reserve(C->ParamNames.size());
  for (const std::string &Name : C->ParamNames) {
    auto It = Values.find(Name);
    if (It == Values.end()) {
      if (Err)
        *Err = "missing value for parameter '$" + Name + "'";
      return std::nullopt;
    }
    Ordered.push_back(It->second);
  }
  return bindCircuit(*C, Ordered);
}

std::optional<ParameterizedSource>
asdf::parameterizeSource(const std::string &Source) {
  // A program that does not lex cannot be canonicalized; the caller hashes
  // the source verbatim instead. The diagnostics are deliberately
  // discarded — the real compile will re-report them with full context.
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  if (Diags.hadError())
    return std::nullopt;
  const std::vector<Token> &Toks = Lex.tokens();

  // Lifted names share the program's own parameter namespace; refuse
  // sources that already use the reserved prefix rather than risk capture.
  for (const Token &T : Toks)
    if (T.is(Token::Kind::Param) && T.Text.rfind("__a", 0) == 0)
      return std::nullopt;

  // Tokens carry line/column only; rebuild byte offsets from a line-start
  // table, then re-scan each literal's lexeme extent with the lexer's own
  // number syntax (digits, plus a '.' only when a digit follows — no
  // exponents or hex).
  std::vector<size_t> LineStarts{0};
  for (size_t I = 0; I < Source.size(); ++I)
    if (Source[I] == '\n')
      LineStarts.push_back(I + 1);
  auto byteOffset = [&](SourceLoc Loc) -> size_t {
    if (Loc.Line == 0 || Loc.Line > LineStarts.size())
      return std::string::npos;
    size_t Off = LineStarts[Loc.Line - 1] + (Loc.Col ? Loc.Col - 1 : 0);
    return Off <= Source.size() ? Off : std::string::npos;
  };
  auto literalEnd = [&](size_t Begin) {
    size_t I = Begin;
    while (I < Source.size()) {
      char C = Source[I];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++I;
        continue;
      }
      if (C == '.' && I + 1 < Source.size() &&
          std::isdigit(static_cast<unsigned char>(Source[I + 1]))) {
        I += 2;
        continue;
      }
      break;
    }
    return I;
  };

  // Match `.rotate(` [ `-` ] <float-or-integer> `)` over the token stream.
  // Anything else inside the parens (a parameter, a compound expression)
  // is left for the real front end to evaluate.
  struct Match {
    size_t Begin, End;
    double Value;
  };
  std::vector<Match> Matches;
  for (size_t I = 0; I + 4 < Toks.size(); ++I) {
    if (!Toks[I].is(Token::Kind::Dot) ||
        !Toks[I + 1].is(Token::Kind::Identifier) ||
        Toks[I + 1].Text != "rotate" || !Toks[I + 2].is(Token::Kind::LParen))
      continue;
    size_t J = I + 3;
    bool Neg = false;
    if (Toks[J].is(Token::Kind::Minus)) {
      Neg = true;
      ++J;
    }
    if (J + 1 >= Toks.size())
      continue;
    const Token &Lit = Toks[J];
    double Value;
    if (Lit.is(Token::Kind::Float))
      Value = Lit.FloatValue;
    else if (Lit.is(Token::Kind::Integer))
      Value = static_cast<double>(Lit.IntValue);
    else
      continue;
    if (!Toks[J + 1].is(Token::Kind::RParen))
      continue;
    size_t Begin = byteOffset(Neg ? Toks[J - 1].Loc : Lit.Loc);
    size_t LitBegin = byteOffset(Lit.Loc);
    if (Begin == std::string::npos || LitBegin == std::string::npos)
      return std::nullopt;
    Matches.push_back({Begin, literalEnd(LitBegin), Neg ? -Value : Value});
  }

  ParameterizedSource PS;
  if (Matches.empty()) {
    PS.Source = Source;
    return PS;
  }

  std::string Out;
  Out.reserve(Source.size());
  size_t Cursor = 0;
  for (size_t K = 0; K < Matches.size(); ++K) {
    const Match &M = Matches[K];
    if (M.Begin < Cursor || M.End > Source.size() || M.End <= M.Begin)
      return std::nullopt; // Extent reconstruction failed; hash verbatim.
    std::string Name = "__a" + std::to_string(K);
    Out.append(Source, Cursor, M.Begin - Cursor);
    Out += "$" + Name;
    Cursor = M.End;
    PS.LiftedNames.push_back(std::move(Name));
    PS.LiftedValues.push_back(M.Value);
  }
  Out.append(Source, Cursor, std::string::npos);
  PS.Source = std::move(Out);
  return PS;
}
