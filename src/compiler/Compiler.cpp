//===- Compiler.cpp - Deprecated two-method compiler shim -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"

#include "compiler/CompileSession.h"

using namespace asdf;

namespace {

SessionOptions sessionOptions(const CompileOptions &Options) {
  SessionOptions SO;
  SO.Entry = Options.Entry;
  SO.Plan = planFromOptions(Options);
  return SO;
}

/// Moves a session's artifacts into the legacy result struct. \p Deep
/// selects the full pipeline; otherwise only the front half runs.
CompileResult harvest(CompileSession &S, const CompileOptions &Options,
                      bool Deep) {
  CompileResult R;
  Module *QW = S.qwertyIR();
  if (Deep && QW) {
    S.qcircIR();
    if (Options.Inline)
      S.flatCircuit();
  }
  if (!S.ok()) {
    R.Ok = false;
    R.ErrorMessage = S.errorMessage();
    return R;
  }
  CompileSession::Artifacts A = S.takeArtifacts();
  R.AST = std::move(A.AST);
  R.QwertyIR = std::move(A.QwertyIR);
  R.QCircIR = std::move(A.QCircIR);
  if (A.Flat)
    R.FlatCircuit = std::move(*A.Flat);
  R.Ok = true;
  return R;
}

} // namespace

CompileResult QwertyCompiler::compileToQwertyIR(const std::string &Source,
                                                const ProgramBindings &
                                                    Bindings,
                                                const CompileOptions &
                                                    Options) {
  CompileSession S(Source, Bindings, sessionOptions(Options));
  CompileResult R = harvest(S, Options, /*Deep=*/false);
  return R;
}

CompileResult QwertyCompiler::compile(const std::string &Source,
                                      const ProgramBindings &Bindings,
                                      const CompileOptions &Options) {
  CompileSession S(Source, Bindings, sessionOptions(Options));
  CompileResult R = harvest(S, Options, /*Deep=*/true);
  return R;
}
