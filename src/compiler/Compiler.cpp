//===- Compiler.cpp - The Asdf compiler driver -----------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"

#include "ast/Canonicalize.h"
#include "ast/Parser.h"
#include "ast/TypeChecker.h"
#include "qcirc/Convert.h"
#include "qcirc/Flatten.h"
#include "qcirc/Peephole.h"
#include "qwerty/Lower.h"
#include "transform/Passes.h"

using namespace asdf;

CompileResult QwertyCompiler::compileToQwertyIR(const std::string &Source,
                                                const ProgramBindings &
                                                    Bindings,
                                                const CompileOptions &
                                                    Options) {
  CompileResult R;
  DiagnosticEngine Diags;
  auto Fail = [&](const std::string &Phase) {
    R.Ok = false;
    R.ErrorMessage = Phase + ":\n" + Diags.str();
    return std::move(R);
  };

  // §4: AST generation, expansion, type checking, canonicalization.
  std::unique_ptr<Program> Parsed = parseProgram(Source, Diags);
  if (!Parsed)
    return Fail("parse");
  R.AST = expandProgram(*Parsed, Bindings, Diags);
  if (!R.AST)
    return Fail("expand");
  if (!typeCheckProgram(*R.AST, Diags))
    return Fail("type check");
  if (Options.AstCanonicalize)
    canonicalizeProgram(*R.AST);

  // §5: lowering to Qwerty IR and the optimization pipeline.
  R.QwertyIR = lowerToQwertyIR(*R.AST, Diags);
  if (!R.QwertyIR)
    return Fail("lower to Qwerty IR");
  if (Options.Inline) {
    runQwertyOptPipeline(*R.QwertyIR, {Options.Entry});
  } else {
    runQwertyNoOptPipeline(*R.QwertyIR);
    // §6.2: generate the specializations the callable path will need.
    std::set<SpecKey> Specs =
        analyzeSpecializations(*R.QwertyIR, Options.Entry);
    if (!generateSpecializations(*R.QwertyIR, Specs))
      return Fail("specialization generation");
  }
  if (!verifyModule(*R.QwertyIR, Diags))
    return Fail("Qwerty IR verification");

  R.Ok = true;
  return R;
}

CompileResult QwertyCompiler::compile(const std::string &Source,
                                      const ProgramBindings &Bindings,
                                      const CompileOptions &Options) {
  CompileResult R = compileToQwertyIR(Source, Bindings, Options);
  if (!R.Ok)
    return R;
  DiagnosticEngine Diags;
  auto Fail = [&](const std::string &Phase) {
    R.Ok = false;
    R.ErrorMessage = Phase + ":\n" + Diags.str();
    return std::move(R);
  };

  // §6: clone the Qwerty IR into the QCircuit stage and convert.
  // (Conversion is destructive in place; keep QwertyIR for inspection by
  // re-running the front half.)
  CompileResult Front =
      compileToQwertyIR(Source, Bindings, Options);
  R.QCircIR = std::move(Front.QwertyIR);
  if (!convertToQCircuit(*R.QCircIR, *R.AST, Diags))
    return Fail("QCircuit conversion");
  canonicalizeIR(*R.QCircIR);
  if (Options.PeepholeOpt)
    peepholeOptimize(*R.QCircIR);
  if (Options.DecomposeMultiControl) {
    decomposeMultiControls(*R.QCircIR, McDecompose::Selinger);
    if (Options.PeepholeOpt)
      peepholeOptimize(*R.QCircIR);
  }

  // §7: reg2mem into a flat circuit (only meaningful when inlined).
  if (Options.Inline) {
    std::optional<Circuit> Flat =
        flattenToCircuit(*R.QCircIR, Options.Entry, Diags);
    if (!Flat)
      return Fail("flatten");
    R.FlatCircuit = std::move(*Flat);
  }
  R.Ok = true;
  return R;
}
