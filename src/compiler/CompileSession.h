//===- CompileSession.h - One compilation: source, artifacts, diagnostics -===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primary compilation API. A CompileSession owns one compilation of
/// one source program: the source text, the dimension/capture bindings, the
/// diagnostics engine, the pipeline plan, and a cache of every intermediate
/// artifact of Fig. 2. Artifact getters run exactly the pipeline prefix
/// they need and memoize it:
///
///   CompileSession S(Source, Bindings);
///   const Circuit *C = S.flatCircuit();   // runs parse .. flatten
///   if (!C) die(S.errorMessage());        // names the failing stage:pass
///   const Module *QW = S.qwertyIR();      // already cached — no recompile
///
/// Embedders (asdfc, the simulator harnesses, the resource estimator
/// sweeps, benches, tests) all drive compilation through sessions; the old
/// two-method QwertyCompiler survives only as a deprecated shim over this
/// class. Unlike the shim's historical behavior, a session never re-runs
/// the front half: the Qwerty IR is preserved by deep-cloning the module
/// before the destructive QCircuit conversion.
///
/// Instrumentation (per-pass wall time + IR statistics, dump-before/after,
/// inter-pass verification) is configured in SessionOptions and surfaced on
/// the CLI as --pass-timings, --print-before/--print-after, --verify-each.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_COMPILER_COMPILESESSION_H
#define ASDF_COMPILER_COMPILESESSION_H

#include "ast/Expand.h"
#include "compiler/Pass.h"
#include "compiler/PassRegistry.h"
#include "ir/IR.h"
#include "qcirc/Circuit.h"
#include "support/Hash.h"

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace asdf {

/// Configuration of one compilation session.
struct SessionOptions {
  /// Entry kernel name.
  std::string Entry = "kernel";
  /// Which passes run in each stage; see PassRegistry.h for presets.
  PipelinePlan Plan = presetPlan("default");
  /// Record per-pass wall time and IR statistics (timings(), timingReport()).
  bool CollectTimings = false;
  /// Verify the IR after every pass; failures name the offending pass.
  bool VerifyEach = false;
  /// Dump IR after/before passes: unset = off, "" = every pass, otherwise
  /// the named pass (stage transitions parse/lower/convert/flatten count;
  /// `parse` has no predecessor unit and thus no before-dump).
  std::optional<std::string> PrintAfter;
  std::optional<std::string> PrintBefore;
  /// Dump destination; defaults to stderr.
  std::function<void(const std::string &Banner, const std::string &IR)>
      PrintSink;
};

/// One compilation of one program, with cached artifacts.
class CompileSession {
public:
  CompileSession(std::string Source, ProgramBindings Bindings,
                 SessionOptions Options = SessionOptions());

  //===--- Artifact getters (run + cache; null on failure) ---===//

  /// The expanded, checked, canonicalized AST (§4).
  Program *ast();
  /// The Qwerty IR after the qwerty-stage pipeline (§5.4).
  Module *qwertyIR();
  /// The QCircuit IR after conversion + the qcirc-stage pipeline (§6).
  Module *qcircIR();
  /// The flat, reg2mem'd circuit (§7). Requires a plan that fully inlines
  /// (PipelinePlan::producesFlatCircuit).
  Circuit *flatCircuit();

  //===--- Parametric compilation ---===//

  /// The flat circuit's parameter names, in binding order (first
  /// occurrence in the source). Empty for a non-parametric program; null
  /// if compilation fails.
  const std::vector<std::string> *paramNames();

  /// Binds the flat circuit's parameters to \p Values (degrees, in
  /// paramNames() order) and returns the concrete, runnable circuit.
  /// Compilation runs (and caches) once; re-binding never recompiles.
  /// Returns nullopt on compile failure or arity mismatch, describing the
  /// problem in \p Err — a bind error does not poison the session, so the
  /// caller can bind again with corrected values.
  std::optional<Circuit> bindParams(const std::vector<double> &Values,
                                    std::string *Err = nullptr);
  /// As above, keyed by parameter name: every declared parameter must be
  /// given exactly once, and unknown names are rejected.
  std::optional<Circuit> bindParams(const std::map<std::string, double> &Values,
                                    std::string *Err = nullptr);

  //===--- Status and instrumentation ---===//

  bool ok() const { return !Failed; }
  /// On failure: which pass failed, on which stage, for which entry, plus
  /// every accumulated diagnostic (with source locations where known).
  const std::string &errorMessage() const { return ErrorMessage; }
  DiagnosticEngine &diagnostics() { return Diags; }
  const SessionOptions &options() const { return Options; }

  const std::vector<PassTiming> &timings() const { return Ctx.Timings; }
  std::string timingReport() const { return Ctx.timingReport(); }

  //===--- Content hashing (the service's cache-key hook) ---===//

  /// Streams the canonical byte encoding of one compilation's identity —
  /// source text, entry kernel, pipeline plan, and bindings — into \p H.
  /// The encoding is exact, not semantic: any byte difference in the
  /// source (even whitespace) and any field difference in the plan or
  /// bindings produces a different digest, while the same inputs hash
  /// identically in every process on every run (std::map iteration is
  /// sorted; no pointers or addresses are fed in). The artifact cache
  /// combines this with the build fingerprint and the artifact kind to
  /// form its key.
  static void hashIdentity(ContentHasher &H, const std::string &Source,
                           const std::string &Entry,
                           const PipelinePlan &Plan,
                           const ProgramBindings &Bindings);

  /// The digest of hashIdentity over this session's own inputs.
  std::array<uint64_t, 2> contentHash() const;

  /// Every artifact the session has materialized so far. Used by the
  /// deprecated QwertyCompiler shim to move results out; a session whose
  /// artifacts were taken must not run further stages.
  struct Artifacts {
    std::unique_ptr<Program> AST;
    std::unique_ptr<Module> QwertyIR;
    std::unique_ptr<Module> QCircIR;
    std::optional<Circuit> Flat;
  };
  Artifacts takeArtifacts();

private:
  /// Pipeline prefix already materialized, in stage order.
  enum class Phase { None, AST, Qwerty, QCirc, Flat };

  bool runTo(Phase Target);
  bool runAstStage();
  bool runQwertyStage();
  bool runQCircStage();
  bool runCircuitStage();
  bool fail();

  template <typename UnitT>
  bool runPassList(PipelineStage Stage,
                   const std::vector<std::string> &Names, UnitT &U);

  std::string Source;
  ProgramBindings Bindings;
  SessionOptions Options;

  DiagnosticEngine Diags;
  PassContext Ctx;

  Phase Done = Phase::None;
  bool Failed = false;
  std::string ErrorMessage;

  std::unique_ptr<Program> AST;
  std::unique_ptr<Module> QwertyIR;
  std::unique_ptr<Module> QCircIR;
  std::optional<Circuit> Flat;
};

/// The result of parameterizeSource: the canonicalized source text with
/// every literal `.rotate` angle lifted into a fresh parameter, plus the
/// lifted names and their original values (degrees, in lift order).
struct ParameterizedSource {
  std::string Source;
  std::vector<std::string> LiftedNames;  ///< "__a0", "__a1", ...
  std::vector<double> LiftedValues;      ///< Degrees, parallel to names.
};

/// Lifts every literal `.rotate(<float>)` angle in \p Source into a fresh
/// `$__aK` parameter, so two programs that differ only in their rotation
/// angle values canonicalize to the same source text — the structural
/// identity the service's bind-run cache keys on (compile the lifted
/// source once, re-bind per request). Only lone literal angles (with an
/// optional leading minus) are lifted; compound angle expressions are
/// left alone. Returns nullopt when the source does not lex or already
/// uses the reserved `$__a` parameter prefix; callers then fall back to
/// hashing the source verbatim.
std::optional<ParameterizedSource>
parameterizeSource(const std::string &Source);

} // namespace asdf

#endif // ASDF_COMPILER_COMPILESESSION_H
