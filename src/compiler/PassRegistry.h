//===- PassRegistry.h - Named pass registry and pipeline plans ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry the stage pipelines are built from: every pass of Fig. 2 is
/// registered under a (stage, name) key with a factory, and a
/// `PipelinePlan` names which passes run in each stage. Presets replace the
/// old CompileOptions boolean soup — the Table 1 ablations are named plans:
///
///   - `default`     — the full pipeline (§5.4 + §6.5),
///   - `no-opt`      — lambda lifting + specialization only; QIR callables
///                     survive (the "Asdf (No Opt)" row),
///   - `no-peephole` — full inlining, QCircuit peepholes off,
///   - `no-canon`    — AST canonicalization (§4.2) off.
///
/// Plans also parse from `--pipeline "stage:pass,...;stage:pass,..."` text,
/// so ablations beyond the presets need no recompile. Tests and tools can
/// register their own passes; the registry is process-global.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_COMPILER_PASSREGISTRY_H
#define ASDF_COMPILER_PASSREGISTRY_H

#include "compiler/Pass.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace asdf {

struct CompileOptions;

/// Which registered passes run in each stage, by name and in order.
struct PipelinePlan {
  std::vector<std::string> Ast;
  std::vector<std::string> Qwerty;
  std::vector<std::string> QCirc;
  std::vector<std::string> Circuit;

  std::vector<std::string> &stage(PipelineStage S);
  const std::vector<std::string> &stage(PipelineStage S) const;

  /// True if the Qwerty stage fully inlines, so the module can flatten to a
  /// circuit (§7). Plans without `inline` keep call/callable ops that only
  /// the QIR callables path can emit.
  bool producesFlatCircuit() const;

  /// Renders back to `--pipeline` spec text.
  std::string str() const;
};

/// Global registry of named passes, keyed by (stage, name).
class PassRegistry {
public:
  /// The singleton, with every built-in pass pre-registered.
  static PassRegistry &instance();

  using ProgramFactory = std::function<std::unique_ptr<Pass<Program>>()>;
  using ModuleFactory = std::function<std::unique_ptr<Pass<Module>>()>;
  using CircuitFactory = std::function<std::unique_ptr<Pass<Circuit>>()>;

  void registerPass(PipelineStage Stage, const std::string &Name,
                    const std::string &Desc, ProgramFactory F);
  void registerPass(PipelineStage Stage, const std::string &Name,
                    const std::string &Desc, ModuleFactory F);
  void registerPass(PipelineStage Stage, const std::string &Name,
                    const std::string &Desc, CircuitFactory F);

  /// Instantiates a registered pass; null if (stage, name) is unknown or
  /// the stage's unit type does not match the requested pass type.
  std::unique_ptr<Pass<Program>> createProgramPass(PipelineStage Stage,
                                                   const std::string &Name)
      const;
  std::unique_ptr<Pass<Module>> createModulePass(PipelineStage Stage,
                                                 const std::string &Name)
      const;
  std::unique_ptr<Pass<Circuit>> createCircuitPass(PipelineStage Stage,
                                                   const std::string &Name)
      const;

  bool hasPass(PipelineStage Stage, const std::string &Name) const;
  /// Registered pass names for a stage, in registration order.
  std::vector<std::string> passNames(PipelineStage Stage) const;
  /// One-line description, or "" if unknown.
  std::string describe(PipelineStage Stage, const std::string &Name) const;

private:
  PassRegistry();

  struct Entry {
    std::string Desc;
    ProgramFactory AsProgram; ///< Exactly one factory is set.
    ModuleFactory AsModule;
    CircuitFactory AsCircuit;
  };
  /// Per stage: name -> entry, plus registration order.
  std::map<PipelineStage, std::map<std::string, Entry>> Entries;
  std::map<PipelineStage, std::vector<std::string>> Order;

  const Entry *find(PipelineStage Stage, const std::string &Name) const;
  void record(PipelineStage Stage, const std::string &Name, Entry E);
};

/// True if \p Name is one of the built-in preset plans.
bool isPipelinePreset(const std::string &Name);

/// Names of the built-in presets, in documentation order.
std::vector<std::string> pipelinePresetNames();

/// The plan for a preset; \p Name must satisfy isPipelinePreset.
PipelinePlan presetPlan(const std::string &Name);

/// Maps the legacy CompileOptions booleans onto an equivalent plan — the
/// bridge the deprecated QwertyCompiler shim rides on.
PipelinePlan planFromOptions(const CompileOptions &Options);

/// Parses \p Text into \p Plan: either a preset name or a spec of the form
/// `stage:pass,pass;stage:pass,...` (stages: ast, qwerty, qcirc, circuit).
/// Stages not mentioned keep the `default` preset's passes; a mentioned
/// stage with an empty list runs nothing. Returns false and fills \p Error
/// (naming valid stages/passes/presets) on malformed input.
bool parsePipelinePlan(const std::string &Text, PipelinePlan &Plan,
                       std::string &Error);

} // namespace asdf

#endif // ASDF_COMPILER_PASSREGISTRY_H
