//===- asdfc.cpp - Command-line driver for the Asdf reproduction ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line compiler for .qw files:
///
///   asdfc program.qw --entry kernel --bind N=8
///         --capture f.secret=110101 --capture kernel.f=@f --emit qasm
///
/// Emission targets: qasm (OpenQASM 3), qir (Unrestricted Profile QIR),
/// qir-base (Base Profile QIR), qwerty-ir, circuit, run (simulate and print
/// the measured bits). --no-inline disables the §5.4 pipeline, leaving QIR
/// callables in place.
///
//===----------------------------------------------------------------------===//

#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/Compiler.h"
#include "estimate/ResourceEstimator.h"
#include "noise/NoiseSpec.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace asdf;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: asdfc <file.qw> [options]\n"
      "  --entry <name>          entry kernel (default: kernel)\n"
      "  --bind <Var>=<int>      bind a dimension variable\n"
      "  --capture <fn>.<param>=<bits>   bind a bit-string capture\n"
      "  --capture <fn>.<param>=@<name>  bind a classical-function capture\n"
      "  --emit qasm|qir|qir-base|qwerty-ir|circuit|run|estimate\n"
      "  --no-inline             disable the inlining pipeline (emit "
      "callables)\n"
      "  --no-peephole           disable QCircuit peepholes\n"
      "  --shots <n>             shots for --emit run (default 1)\n"
      "  --seed <n>              base RNG seed for --emit run (default 0)\n"
      "  --backend auto|sv|stab  simulation backend for --emit run\n"
      "                          (auto picks the stabilizer tableau for\n"
      "                          Clifford circuits, statevector otherwise)\n"
      "  --jobs <n>              shot-parallel worker threads for --emit\n"
      "                          run (default 0 = one per hardware core;\n"
      "                          results are identical for any value)\n"
      "  --no-fuse               disable the gate-fusion pass of the dense\n"
      "                          execution plan\n"
      "  --noise <file.ini>      noise model for --emit run (INI spec; see\n"
      "                          README \"Noisy simulation\"). Pauli-only\n"
      "                          models run on the stabilizer engine via\n"
      "                          Pauli frames; general Kraus models run as\n"
      "                          dense quantum trajectories\n"
      "  --trajectories          print noise/trajectory diagnostics (model\n"
      "                          summary, execution path, sampled error\n"
      "                          branches) to stderr\n");
}

bool splitEq(const std::string &Arg, std::string &Key, std::string &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos)
    return false;
  Key = Arg.substr(0, Eq);
  Value = Arg.substr(Eq + 1);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string Path = argv[1];
  std::string Emit = "qasm";
  unsigned Shots = 1;
  uint64_t Seed = 0;
  BackendKind Backend = BackendKind::Auto;
  RunOptions RunOpts;
  CompileOptions Opts;
  ProgramBindings Bindings;
  NoiseModel Noise;
  bool HasNoise = false;
  bool Trajectories = false;
  bool JobsExplicitZero = false;

  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--entry") {
      Opts.Entry = Next();
    } else if (Arg == "--bind") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value)) {
        usage();
        return 2;
      }
      Bindings.DimVars[Key] = std::atoll(Value.c_str());
    } else if (Arg == "--capture") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value)) {
        usage();
        return 2;
      }
      size_t Dot = Key.find('.');
      if (Dot == std::string::npos) {
        std::fprintf(stderr, "capture key must be <function>.<param>\n");
        return 2;
      }
      std::string Func = Key.substr(0, Dot);
      std::string Param = Key.substr(Dot + 1);
      if (!Value.empty() && Value[0] == '@')
        Bindings.Captures[Func][Param] =
            CaptureValue::classicalFunc(Value.substr(1));
      else
        Bindings.Captures[Func][Param] =
            CaptureValue::bitsFromString(Value);
    } else if (Arg == "--emit") {
      Emit = Next();
    } else if (Arg == "--no-inline") {
      Opts.Inline = false;
    } else if (Arg == "--no-peephole") {
      Opts.PeepholeOpt = false;
    } else if (Arg == "--shots") {
      Shots = std::atoi(Next());
    } else if (Arg == "--seed") {
      Seed = std::strtoull(Next(), nullptr, 0);
    } else if (Arg == "--jobs") {
      RunOpts.Jobs = std::atoi(Next());
      JobsExplicitZero = RunOpts.Jobs == 0;
    } else if (Arg == "--no-fuse") {
      RunOpts.Fuse = false;
    } else if (Arg == "--noise") {
      std::string Error;
      if (!loadNoiseSpec(Next(), Noise, Error)) {
        std::fprintf(stderr, "noise spec: %s\n", Error.c_str());
        return 1;
      }
      if (!Noise.validate(Error)) {
        std::fprintf(stderr, "noise spec: %s\n", Error.c_str());
        return 1;
      }
      HasNoise = true;
    } else if (Arg == "--trajectories") {
      Trajectories = true;
    } else if (Arg == "--backend") {
      std::string Name = Next();
      if (!parseBackendKind(Name, Backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", Name.c_str());
        usage();
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  QwertyCompiler Compiler;
  CompileResult R = Compiler.compile(Buf.str(), Bindings, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), R.ErrorMessage.c_str());
    return 1;
  }

  if (Emit == "qwerty-ir") {
    std::printf("%s", R.QwertyIR->str().c_str());
    return 0;
  }
  if (Emit == "qir") {
    QirCallableStats Stats;
    std::printf("%s", emitQirUnrestricted(*R.QCircIR, &Stats).c_str());
    std::fprintf(stderr, "; callable_create: %u, callable_invoke: %u\n",
                 Stats.Creates, Stats.Invokes);
    return 0;
  }
  if (!Opts.Inline) {
    std::fprintf(stderr,
                 "--no-inline supports only --emit qir/qwerty-ir\n");
    return 1;
  }
  if (Emit == "qasm") {
    std::printf("%s", emitOpenQasm3(R.FlatCircuit).c_str());
    return 0;
  }
  if (Emit == "qir-base") {
    std::optional<std::string> Qir = emitQirBaseProfile(R.FlatCircuit);
    if (!Qir) {
      std::fprintf(stderr, "circuit needs features outside the Base "
                           "Profile (dynamic conditions)\n");
      return 1;
    }
    std::printf("%s", Qir->c_str());
    return 0;
  }
  if (Emit == "circuit") {
    std::printf("%s", R.FlatCircuit.str().c_str());
    return 0;
  }
  if (Emit == "estimate") {
    ResourceEstimate Est = estimateResources(R.FlatCircuit);
    std::printf("%s\n", Est.str().c_str());
    return 0;
  }
  if (Emit == "run") {
    if (HasNoise && !Noise.empty())
      RunOpts.Noise = &Noise;
    NoiseStats Counters;
    if (Trajectories && RunOpts.Noise)
      RunOpts.NoiseCounters = &Counters;
    CircuitProfile Profile = analyzeCircuit(R.FlatCircuit);
    SimBackend &B = BackendRegistry::instance().select(
        R.FlatCircuit, Backend, &Profile, RunOpts.Noise);
    bool Supported = B.supports(R.FlatCircuit, Profile);
    bool IsSv = std::strcmp(B.name(), "sv") == 0;
    // Decide with the run's own options, computing the cap exactly once
    // so the note below can never contradict the rejection.
    unsigned DenseCap = StatevectorBackend::maxQubits(RunOpts);
    if (IsSv)
      Supported = R.FlatCircuit.NumQubits <= DenseCap;
    if (!Supported) {
      // The precise-diagnostic path: the same message whether the circuit
      // will run fused or not, including where the dense cap came from.
      std::fprintf(stderr,
                   "backend '%s' cannot simulate this circuit (%u qubits, "
                   "%s)\n",
                   B.name(), R.FlatCircuit.NumQubits,
                   Profile.CliffordOnly ? "Clifford" : "non-Clifford");
      if (IsSv) {
        std::fprintf(stderr,
                     "note: dense cap is %u qubits (%s); fusion %s changes "
                     "the cap: it never widens the state\n",
                     DenseCap,
                     RunOpts.MaxStateQubits ? "set by options"
                                            : "derived from available memory",
                     RunOpts.Fuse ? "does not" : "being off does not");
        if (Profile.CliffordOnly)
          std::fprintf(stderr,
                       "note: the circuit is Clifford; --backend stab runs "
                       "it at any width\n");
      }
      return 1;
    }
    if (RunOpts.Noise && !B.supportsNoise(*RunOpts.Noise)) {
      std::fprintf(stderr,
                   "backend '%s' cannot execute this noise model "
                   "(non-Pauli channels need dense trajectories)\n",
                   B.name());
      std::fprintf(stderr, "note: --backend sv runs any Kraus model; the "
                           "stabilizer engine needs a Pauli-only model\n");
      return 1;
    }
    if (JobsExplicitZero)
      std::fprintf(stderr,
                   "jobs: 0 means one worker per hardware core; using %u\n",
                   resolveJobCount(0, Shots));
    if (RunOpts.Fuse && IsSv) {
      FusedCircuit Plan = fuseCircuit(R.FlatCircuit, RunOpts.Noise);
      if (Plan.GatesFused > 0)
        std::fprintf(stderr, "fusion: %s\n", Plan.summary().c_str());
    }
    if (Trajectories && RunOpts.Noise) {
      NoisePlan Plan = planNoise(*RunOpts.Noise, R.FlatCircuit);
      size_t Sites = 0;
      for (const std::vector<NoiseOp> &Ops : Plan.PerInstr)
        Sites += Ops.size();
      const char *Path =
          IsSv ? "statevector-trajectory"
               : (Profile.HasFeedForward ? "tableau-monte-carlo"
                                         : "pauli-frame");
      std::fprintf(stderr, "noise: %s\n",
                   RunOpts.Noise->summary().c_str());
      std::fprintf(stderr,
                   "noise: %zu insertion site(s) over %zu instruction(s); "
                   "path: %s\n",
                   Sites, R.FlatCircuit.Instrs.size(), Path);
    }
    for (const ShotResult &Shot :
         B.runBatch(R.FlatCircuit, Shots, Seed, RunOpts)) {
      std::string Out;
      for (int Bit : R.FlatCircuit.OutputBits)
        Out.push_back(Bit == -2                ? '1'
                      : Bit == -3              ? '0'
                      : Shot.Bits[static_cast<unsigned>(Bit)] ? '1'
                                                              : '0');
      std::printf("%s\n", Out.c_str());
    }
    if (Trajectories && RunOpts.NoiseCounters)
      std::fprintf(
          stderr,
          "trajectories: %llu channel application(s), %llu error "
          "branch(es), %llu readout flip(s) over %u shot(s)\n",
          static_cast<unsigned long long>(Counters.ChannelApps.load()),
          static_cast<unsigned long long>(Counters.ErrorBranches.load()),
          static_cast<unsigned long long>(Counters.ReadoutFlips.load()),
          Shots);
    return 0;
  }
  std::fprintf(stderr, "unknown emit target '%s'\n", Emit.c_str());
  usage();
  return 2;
}
