//===- asdfc.cpp - Command-line driver for the Asdf reproduction ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line compiler for .qw files:
///
///   asdfc program.qw --entry kernel --bind N=8
///         --capture f.secret=110101 --capture kernel.f=@f --emit qasm
///
/// Emission targets: qasm (OpenQASM 3), qir (Unrestricted Profile QIR),
/// qir-base (Base Profile QIR), qwerty-ir, circuit, run (simulate and print
/// the measured bits), estimate.
///
/// The pipeline is selected with --pipeline (a preset name or a
/// "stage:pass,..." spec); --print-after/--print-before, --pass-timings,
/// and --verify-each expose the pass instrumentation. The legacy
/// --no-inline/--no-peephole flags remain as shorthands for the no-opt and
/// no-peephole presets.
///
//===----------------------------------------------------------------------===//

#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/CompileSession.h"
#include "estimate/ResourceEstimator.h"
#include "noise/NoiseSpec.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "support/BuildInfo.h"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace asdf;

namespace {

void usage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: asdfc <file.qw> [options]\n"
      "  -h, --help              print this help and exit\n"
      "  --version               print version, build identity (compiler,\n"
      "                          build type, native-arch, commit), and the\n"
      "                          build fingerprint that keys the asdfd\n"
      "                          artifact cache, then exit\n"
      "  --entry <name>          entry kernel (default: kernel)\n"
      "  --bind <Var>=<int>      bind a dimension variable\n"
      "  --capture <fn>.<param>=<bits>   bind a bit-string capture\n"
      "  --capture <fn>.<param>=@<name>  bind a classical-function capture\n"
      "  --emit qasm|qir|qir-base|qwerty-ir|circuit|run|estimate\n"
      "  --pipeline <plan>       pipeline preset (default, no-opt,\n"
      "                          no-peephole, no-canon) or an explicit\n"
      "                          \"stage:pass,...;stage:pass,...\" spec\n"
      "                          (stages: ast, qwerty, qcirc, circuit);\n"
      "                          see README \"Compilation pipeline\"\n"
      "  --print-after[=pass]    dump IR to stderr after every pass (or\n"
      "                          only the named pass/transition)\n"
      "  --print-before[=pass]   same, before passes\n"
      "  --pass-timings          report per-pass wall time and IR-size\n"
      "                          deltas to stderr after compiling\n"
      "  --verify-each           run the IR verifier after every pass and\n"
      "                          name the pass that broke the IR\n"
      "  --no-inline             shorthand for --pipeline no-opt (emit\n"
      "                          callables)\n"
      "  --no-peephole           shorthand for --pipeline no-peephole\n"
      "  --shots <n>             shots for --emit run (default 1)\n"
      "  --seed <n>              base RNG seed for --emit run (default 0)\n"
      "  --backend auto|sv|stab|mps  simulation backend for --emit run\n"
      "                          (auto consults the cost model: stabilizer\n"
      "                          tableau for Clifford circuits, statevector\n"
      "                          within the dense cap, MPS tensor network\n"
      "                          for wide low-entanglement circuits)\n"
      "  --mps-chi <n>           MPS bond-dimension cap (default 64; 0 =\n"
      "                          unlimited/exact). Larger chi is more\n"
      "                          accurate and slower; truncation is\n"
      "                          reported by --sim-stats\n"
      "  --explain-backend       print the backend auto-dispatch decision\n"
      "                          (chosen engine, cost model, per-backend\n"
      "                          verdicts) and exit without running\n"
      "  --jobs <n>              worker threads for --emit run (default 0 =\n"
      "                          one per hardware core; results are\n"
      "                          identical for any value)\n"
      "  --parallel auto|shot|amp  how the dense engine spends the workers:\n"
      "                          shot-parallel forks, amplitude-parallel\n"
      "                          kernels, or (default) a hybrid chosen\n"
      "                          from shots x qubits; results are\n"
      "                          bit-identical either way\n"
      "  --no-fuse               disable the gate-fusion pass of the dense\n"
      "                          execution plan\n"
      "  --fuse-k <n>            widest fused block in qubits (default 3 =\n"
      "                          8x8 matrices; 1 = per-wire runs only)\n"
      "  --sim-stats             print simulation counters (gate kernels,\n"
      "                          fused ops/blocks, amplitudes touched,\n"
      "                          amps/sec) to stderr after --emit run\n"
      "  --param <name>=<float>  bind a rotation parameter (degrees); repeat\n"
      "                          for each $-parameter the program declares.\n"
      "                          Binding happens after compilation, so\n"
      "                          re-binding never recompiles\n"
      "  --sweep <spec>          run a parameter sweep with --emit run:\n"
      "                          semicolon-separated points, each a comma-\n"
      "                          separated value list in declaration order\n"
      "                          (e.g. \"0,90;45,90;90,90\" for two\n"
      "                          parameters x three points). Compiles and\n"
      "                          fuses once, re-binds per point; per-point\n"
      "                          results are bit-identical to recompiling\n"
      "  --noise <file.ini>      noise model for --emit run (INI spec; see\n"
      "                          README \"Noisy simulation\"). Pauli-only\n"
      "                          models run on the stabilizer engine via\n"
      "                          Pauli frames; general Kraus models run as\n"
      "                          dense quantum trajectories\n"
      "  --trajectories          print noise/trajectory diagnostics (model\n"
      "                          summary, execution path, sampled error\n"
      "                          branches) to stderr\n"
      "  --trace <file.json>     record a Chrome trace-event JSON of this\n"
      "                          invocation (per-pass compile spans, fusion,\n"
      "                          per-worker kernel execution); load it in\n"
      "                          Perfetto or chrome://tracing\n"
      "  --metrics               print metrics (sim counters, run wall\n"
      "                          time) in Prometheus text format to stderr\n"
      "                          after the command finishes\n");
}

/// Exits with code 2 after a one-line diagnosis plus a usage pointer, the
/// convention for every command-line error.
[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "asdfc: %s\n", Message.c_str());
  std::fprintf(stderr, "run 'asdfc --help' for usage\n");
  std::exit(2);
}

bool splitEq(const std::string &Arg, std::string &Key, std::string &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos)
    return false;
  Key = Arg.substr(0, Eq);
  Value = Arg.substr(Eq + 1);
  return true;
}

/// Locale-independent double parse of the whole string (strtod honors
/// LC_NUMERIC, which would silently truncate "30.5" under a comma-decimal
/// locale).
bool parseDoubleArg(const std::string &S, double &Out) {
  // Tolerate surrounding whitespace: sweep specs read naturally as
  // "0; 45.5; 90". from_chars itself is locale-independent and exact.
  const char *B = S.c_str();
  const char *E = B + S.size();
  while (B != E && std::isspace(static_cast<unsigned char>(*B)))
    ++B;
  while (E != B && std::isspace(static_cast<unsigned char>(E[-1])))
    --E;
  if (B == E)
    return false;
  std::from_chars_result R = std::from_chars(B, E, Out);
  return R.ec == std::errc() && R.ptr == E;
}

bool validEmit(const std::string &E) {
  static const std::set<std::string> Valid = {
      "qasm", "qir", "qir-base", "qwerty-ir", "circuit", "run", "estimate"};
  return Valid.count(E) != 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "-h") == 0 ||
                    std::strcmp(argv[1], "--help") == 0)) {
    usage(stdout);
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "--version") == 0) {
    printVersion("asdfc");
    return 0;
  }
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  std::string Path = argv[1];
  if (!Path.empty() && Path[0] == '-')
    usageError("first argument must be the input .qw file (got option '" +
               Path + "')");
  std::string Emit = "qasm";
  unsigned Shots = 1;
  uint64_t Seed = 0;
  BackendKind Backend = BackendKind::Auto;
  RunOptions RunOpts;
  SessionOptions Opts;
  ProgramBindings Bindings;
  NoiseModel Noise;
  std::string PipelineArg;
  bool NoInline = false, NoPeephole = false;
  bool HasNoise = false;
  bool Trajectories = false;
  bool PassTimings = false;
  bool JobsExplicitZero = false;
  bool SimStatsRequested = false;
  std::map<std::string, double> ParamArgs;
  std::string SweepArg;
  bool HasSweep = false;
  std::string TracePath;
  bool MetricsRequested = false;
  bool ExplainBackend = false;

  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usageError("option '" + Arg + "' expects a value");
      return argv[++I];
    };
    if (Arg == "-h" || Arg == "--help") {
      usage(stdout);
      return 0;
    } else if (Arg == "--version") {
      printVersion("asdfc");
      return 0;
    } else if (Arg == "--entry") {
      Opts.Entry = Next();
    } else if (Arg == "--bind") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--bind expects <Var>=<int>");
      if (!Bindings.DimVars.emplace(Key, std::atoll(Value.c_str())).second)
        usageError("duplicate --bind for dimension variable '" + Key +
                   "' (each variable can be bound once)");
    } else if (Arg == "--capture") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--capture expects <function>.<param>=<value>");
      size_t Dot = Key.find('.');
      if (Dot == std::string::npos)
        usageError("capture key '" + Key + "' must be <function>.<param>");
      std::string Func = Key.substr(0, Dot);
      std::string Param = Key.substr(Dot + 1);
      if (Bindings.Captures[Func].count(Param))
        usageError("duplicate --capture for '" + Key +
                   "' (each parameter can be captured once)");
      if (!Value.empty() && Value[0] == '@')
        Bindings.Captures[Func][Param] =
            CaptureValue::classicalFunc(Value.substr(1));
      else
        Bindings.Captures[Func][Param] =
            CaptureValue::bitsFromString(Value);
    } else if (Arg == "--emit") {
      Emit = Next();
      if (!validEmit(Emit))
        usageError("unknown --emit value '" + Emit +
                   "' (expected qasm, qir, qir-base, qwerty-ir, circuit, "
                   "run, or estimate)");
    } else if (Arg == "--pipeline") {
      PipelineArg = Next();
    } else if (Arg == "--print-after" ||
               Arg.rfind("--print-after=", 0) == 0) {
      Opts.PrintAfter = Arg == "--print-after"
                            ? std::string()
                            : Arg.substr(std::strlen("--print-after="));
    } else if (Arg == "--print-before" ||
               Arg.rfind("--print-before=", 0) == 0) {
      Opts.PrintBefore = Arg == "--print-before"
                             ? std::string()
                             : Arg.substr(std::strlen("--print-before="));
    } else if (Arg == "--pass-timings") {
      PassTimings = true;
    } else if (Arg == "--verify-each") {
      Opts.VerifyEach = true;
    } else if (Arg == "--no-inline") {
      NoInline = true;
    } else if (Arg == "--no-peephole") {
      NoPeephole = true;
    } else if (Arg == "--shots") {
      Shots = std::atoi(Next());
    } else if (Arg == "--seed") {
      Seed = std::strtoull(Next(), nullptr, 0);
    } else if (Arg == "--jobs") {
      RunOpts.Jobs = std::atoi(Next());
      JobsExplicitZero = RunOpts.Jobs == 0;
    } else if (Arg == "--parallel") {
      std::string Mode = Next();
      if (Mode == "auto")
        RunOpts.Parallel = ParallelMode::Auto;
      else if (Mode == "shot")
        RunOpts.Parallel = ParallelMode::Shot;
      else if (Mode == "amp" || Mode == "amplitude")
        RunOpts.Parallel = ParallelMode::Amplitude;
      else
        usageError("unknown --parallel mode '" + Mode +
                   "' (expected auto, shot, or amp)");
    } else if (Arg == "--no-fuse") {
      RunOpts.Fuse = false;
    } else if (Arg == "--fuse-k") {
      int K = std::atoi(Next());
      if (K < 1 || K > static_cast<int>(MaxFuseQubits))
        usageError("--fuse-k expects a block width between 1 and " +
                   std::to_string(MaxFuseQubits) + " qubits");
      RunOpts.FuseMaxQubits = static_cast<unsigned>(K);
    } else if (Arg == "--sim-stats") {
      SimStatsRequested = true;
    } else if (Arg == "--param") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--param expects <name>=<float>");
      double D;
      if (!parseDoubleArg(Value, D))
        usageError("--param value '" + Value + "' is not a number");
      if (!ParamArgs.emplace(Key, D).second)
        usageError("duplicate --param for '" + Key +
                   "' (each parameter can be bound once)");
    } else if (Arg == "--sweep") {
      SweepArg = Next();
      HasSweep = true;
    } else if (Arg == "--noise") {
      std::string Error;
      if (!loadNoiseSpec(Next(), Noise, Error)) {
        std::fprintf(stderr, "noise spec: %s\n", Error.c_str());
        return 1;
      }
      if (!Noise.validate(Error)) {
        std::fprintf(stderr, "noise spec: %s\n", Error.c_str());
        return 1;
      }
      HasNoise = true;
    } else if (Arg == "--trajectories") {
      Trajectories = true;
    } else if (Arg == "--trace") {
      TracePath = Next();
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(std::strlen("--trace="));
    } else if (Arg == "--metrics") {
      MetricsRequested = true;
    } else if (Arg == "--backend") {
      std::string Name = Next();
      if (!parseBackendKind(Name, Backend))
        usageError("unknown backend '" + Name +
                   "' (expected auto, sv, stab, or mps)");
    } else if (Arg == "--mps-chi") {
      RunOpts.MpsChi = static_cast<unsigned>(std::atoi(Next()));
    } else if (Arg == "--explain-backend") {
      ExplainBackend = true;
    } else {
      usageError("unknown option '" + Arg + "'");
    }
  }

  // --explain-backend is a question about running, whatever --emit says:
  // route through the run path, which exits right after the decision.
  if (ExplainBackend)
    Emit = "run";

  // Tracing must be live before the first compiler pass runs so the
  // per-pass spans land in the export.
  if (!TracePath.empty())
    obs::enableTracing();

  // Resolve the pipeline plan: --pipeline text wins; the legacy shorthands
  // only modify the default plan, and combining them with an explicit
  // --pipeline would be ambiguous.
  if (!PipelineArg.empty() && (NoInline || NoPeephole))
    usageError("--pipeline cannot be combined with --no-inline/"
               "--no-peephole (encode the ablation in the plan instead)");
  if (!PipelineArg.empty()) {
    std::string Error;
    if (!parsePipelinePlan(PipelineArg, Opts.Plan, Error))
      usageError(Error);
  } else if (NoInline) {
    Opts.Plan.Qwerty = presetPlan("no-opt").Qwerty;
    if (NoPeephole)
      Opts.Plan.QCirc = presetPlan("no-peephole").QCirc;
  } else if (NoPeephole) {
    Opts.Plan.QCirc = presetPlan("no-peephole").QCirc;
  }
  Opts.CollectTimings = PassTimings;

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  CompileSession Session(Buf.str(), Bindings, Opts);
  SimStats SimCounters;
  double RunSecs = 0.0;
  // Reports the pass-timing table even when compilation fails partway:
  // the timings up to the failing pass are exactly what's useful then.
  // Likewise the trace and metrics dumps: a failing invocation's spans
  // are exactly the ones worth looking at.
  auto Finish = [&](int Code) {
    if (PassTimings)
      std::fprintf(stderr, "%s", Session.timingReport().c_str());
    if (MetricsRequested) {
      obs::MetricsRegistry &Reg = obs::MetricsRegistry::global();
      Reg.counterFn("asdfc_gate_kernels_total",
                    "Dense gate kernels applied",
                    [&SimCounters] { return SimCounters.GatesApplied; });
      Reg.counterFn("asdfc_fused_ops_total",
                    "Fused-block applications",
                    [&SimCounters] { return SimCounters.FusedOps; });
      Reg.counterFn("asdfc_fused_blocks_total", "Fused blocks built",
                    [&SimCounters] { return SimCounters.FusedBlocks; });
      Reg.counterFn(
          "asdfc_amplitudes_touched_total",
          "Statevector amplitudes visited by kernels",
          [&SimCounters] { return SimCounters.AmplitudesTouched; });
      Reg.counterFn("asdfc_shots_total", "Shots executed",
                    [&Shots] { return uint64_t(Shots); });
      Reg.gaugeFn("asdfc_run_seconds", "Wall seconds spent simulating",
                  [&RunSecs] { return RunSecs; });
      std::fputs(Reg.renderPrometheus().c_str(), stderr);
    }
    if (!TracePath.empty()) {
      if (obs::writeChromeTrace(TracePath))
        std::fprintf(stderr, "trace: wrote %s\n", TracePath.c_str());
      else
        std::fprintf(stderr, "trace: cannot write '%s'\n",
                     TracePath.c_str());
    }
    return Code;
  };
  auto CompileError = [&]() {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                 Session.errorMessage().c_str());
    return Finish(1);
  };

  if (Emit == "qwerty-ir") {
    Module *QW = Session.qwertyIR();
    if (!QW)
      return CompileError();
    std::printf("%s", QW->str().c_str());
    return Finish(0);
  }
  if (Emit == "qir") {
    Module *QC = Session.qcircIR();
    if (!QC)
      return CompileError();
    QirCallableStats Stats;
    std::printf("%s", emitQirUnrestricted(*QC, &Stats).c_str());
    std::fprintf(stderr, "; callable_create: %u, callable_invoke: %u\n",
                 Stats.Creates, Stats.Invokes);
    return Finish(0);
  }
  if (!Session.options().Plan.producesFlatCircuit()) {
    std::fprintf(stderr,
                 "a non-inlining pipeline supports only --emit "
                 "qir/qwerty-ir\n");
    return Finish(1);
  }
  Circuit *Flat = Session.flatCircuit();
  if (!Flat)
    return CompileError();

  // Parameter handling: --param binds the compiled circuit once (for any
  // flat-circuit emit target); --sweep re-binds per point inside the run.
  if (HasSweep && Emit != "run")
    usageError("--sweep requires --emit run");
  if (HasSweep && !ParamArgs.empty())
    usageError("--param cannot be combined with --sweep (the sweep spec "
               "carries the values)");
  const std::vector<std::string> &ParamNames = Flat->ParamNames;
  Circuit BoundStorage;
  if (!ParamArgs.empty()) {
    std::string Err;
    std::optional<Circuit> Bound = Session.bindParams(ParamArgs, &Err);
    if (!Bound) {
      std::fprintf(stderr, "%s: %s\n", Path.c_str(), Err.c_str());
      return Finish(1);
    }
    BoundStorage = std::move(*Bound);
  }
  const Circuit &FlatCircuit = ParamArgs.empty() ? *Flat : BoundStorage;
  if (Emit == "run" && !HasSweep && FlatCircuit.isParametric()) {
    std::string Names;
    for (size_t K = 0; K < ParamNames.size(); ++K)
      Names += (K ? ", $" : "$") + ParamNames[K];
    std::fprintf(stderr,
                 "cannot run with %zu unbound parameter(s) (%s); bind "
                 "each with --param or sweep with --sweep\n",
                 ParamNames.size(), Names.c_str());
    return Finish(1);
  }
  std::vector<std::vector<double>> SweepPoints;
  if (HasSweep) {
    if (ParamNames.empty()) {
      std::fprintf(stderr, "--sweep requires a parametric program, but "
                           "entry '%s' declares no $-parameters\n",
                   Session.options().Entry.c_str());
      return Finish(1);
    }
    size_t Pos = 0;
    while (Pos <= SweepArg.size()) {
      size_t Semi = SweepArg.find(';', Pos);
      std::string PointSpec = SweepArg.substr(
          Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
      std::vector<double> Point;
      size_t VPos = 0;
      while (VPos <= PointSpec.size() && !PointSpec.empty()) {
        size_t Comma = PointSpec.find(',', VPos);
        std::string Val = PointSpec.substr(
            VPos,
            Comma == std::string::npos ? std::string::npos : Comma - VPos);
        double D;
        if (!parseDoubleArg(Val, D))
          usageError("--sweep value '" + Val + "' is not a number");
        Point.push_back(D);
        if (Comma == std::string::npos)
          break;
        VPos = Comma + 1;
      }
      if (Point.size() != ParamNames.size())
        usageError("--sweep point " + std::to_string(SweepPoints.size()) +
                   " has " + std::to_string(Point.size()) + " value(s) but "
                   "the program declares " +
                   std::to_string(ParamNames.size()) + " parameter(s)");
      SweepPoints.push_back(std::move(Point));
      if (Semi == std::string::npos)
        break;
      Pos = Semi + 1;
    }
    if (SweepPoints.empty())
      usageError("--sweep expects at least one point");
  }

  if (Emit == "qasm") {
    std::printf("%s", emitOpenQasm3(FlatCircuit).c_str());
    return Finish(0);
  }
  if (Emit == "qir-base") {
    std::optional<std::string> Qir = emitQirBaseProfile(FlatCircuit);
    if (!Qir) {
      std::fprintf(stderr, "circuit needs features outside the Base "
                           "Profile (dynamic conditions or unbound "
                           "parameters)\n");
      return Finish(1);
    }
    std::printf("%s", Qir->c_str());
    return Finish(0);
  }
  if (Emit == "circuit") {
    std::printf("%s", FlatCircuit.str().c_str());
    return Finish(0);
  }
  if (Emit == "estimate") {
    ResourceEstimate Est = estimateResources(FlatCircuit);
    std::printf("%s\n", Est.str().c_str());
    return Finish(0);
  }
  // Emit == "run" (the only remaining target; validated at parse time).
  if (HasNoise && !Noise.empty())
    RunOpts.Noise = &Noise;
  NoiseStats Counters;
  if (Trajectories && RunOpts.Noise)
    RunOpts.NoiseCounters = &Counters;
  CircuitProfile Profile = analyzeCircuit(FlatCircuit);
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      FlatCircuit, Backend, RunOpts, &Profile, RunOpts.Noise);
  SimBackend &B = *Sel.Chosen;
  bool IsSv = std::strcmp(B.name(), "sv") == 0;
  bool IsMps = std::strcmp(B.name(), "mps") == 0;
  if (ExplainBackend) {
    std::printf("%s", Sel.describe().c_str());
    return Finish(0);
  }
  if (!Sel.Supported) {
    // Unified failure diagnostics: the decision, the cost-model summary,
    // and one verdict per registered backend saying why each was (or was
    // not) eligible — the same report --explain-backend prints.
    std::fprintf(stderr, "%s", Sel.describe().c_str());
    return Finish(1);
  }
  if (JobsExplicitZero)
    std::fprintf(stderr,
                 "jobs: 0 means one worker per hardware core; worker "
                 "budget %u (shot-parallel runs clamp to the %u shot(s))\n",
                 resolveJobCount(0), Shots);
  if (RunOpts.Fuse && IsSv) {
    FusedCircuit Plan =
        fuseCircuit(FlatCircuit, RunOpts.Noise, RunOpts.FuseMaxQubits);
    if (Plan.GatesFused > 0)
      std::fprintf(stderr, "fusion: %s\n", Plan.summary().c_str());
  }
  if (Trajectories && RunOpts.Noise) {
    NoisePlan Plan = planNoise(*RunOpts.Noise, FlatCircuit);
    size_t Sites = 0;
    for (const std::vector<NoiseOp> &Ops : Plan.PerInstr)
      Sites += Ops.size();
    const char *NoisePath =
        IsSv ? "statevector-trajectory"
             : (Profile.HasFeedForward ? "tableau-monte-carlo"
                                       : "pauli-frame");
    std::fprintf(stderr, "noise: %s\n", RunOpts.Noise->summary().c_str());
    std::fprintf(stderr,
                 "noise: %zu insertion site(s) over %zu instruction(s); "
                 "path: %s\n",
                 Sites, FlatCircuit.Instrs.size(), NoisePath);
  }
  if (SimStatsRequested || MetricsRequested)
    RunOpts.SimCounters = &SimCounters;
  auto RunStart = std::chrono::steady_clock::now();
  std::vector<ShotResult> Batch;
  std::vector<std::vector<ShotResult>> SweepResults;
  if (HasSweep)
    SweepResults = B.runSweep(FlatCircuit, SweepPoints, Shots, Seed, RunOpts);
  else
    Batch = B.runBatch(FlatCircuit, Shots, Seed, RunOpts);
  RunSecs = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - RunStart)
                .count();
  if (HasSweep) {
    for (size_t P = 0; P < SweepResults.size(); ++P) {
      std::string Header = "# point " + std::to_string(P);
      for (size_t K = 0; K < ParamNames.size(); ++K) {
        char Buf[64];
        std::to_chars_result R =
            std::to_chars(Buf, Buf + sizeof(Buf), SweepPoints[P][K]);
        Header += (K ? ", " : ": ") + ParamNames[K] + "=" +
                  std::string(Buf, R.ptr);
      }
      std::printf("%s\n", Header.c_str());
      for (const ShotResult &Shot : SweepResults[P])
        std::printf("%s\n", formatShotBits(FlatCircuit, Shot).c_str());
    }
  } else {
    for (const ShotResult &Shot : Batch)
      std::printf("%s\n", formatShotBits(FlatCircuit, Shot).c_str());
  }
  if (SimStatsRequested) {
    uint64_t Amps = SimCounters.AmplitudesTouched;
    std::fprintf(
        stderr,
        "sim-stats: %llu gate kernel(s), %llu fused op(s) (%llu block(s)), "
        "%llu amplitudes touched, %.3g amps/sec over %u shot(s)\n",
        static_cast<unsigned long long>(SimCounters.GatesApplied),
        static_cast<unsigned long long>(SimCounters.FusedOps),
        static_cast<unsigned long long>(SimCounters.FusedBlocks),
        static_cast<unsigned long long>(Amps),
        RunSecs > 0 ? double(Amps) / RunSecs : 0.0, Shots);
    if (IsMps)
      std::fprintf(
          stderr,
          "sim-stats: mps: %llu SVD(s), %llu truncation(s), discarded "
          "weight %.3g, max bond %llu (chi %u)\n",
          static_cast<unsigned long long>(SimCounters.MpsSvds),
          static_cast<unsigned long long>(SimCounters.MpsTruncations),
          SimCounters.MpsTruncationError,
          static_cast<unsigned long long>(SimCounters.MpsMaxBond),
          RunOpts.MpsChi);
    else if (!IsSv)
      std::fprintf(stderr, "sim-stats: note: the '%s' backend does not "
                           "report dense-engine counters\n",
                   B.name());
  }
  if (Trajectories && RunOpts.NoiseCounters)
    std::fprintf(
        stderr,
        "trajectories: %llu channel application(s), %llu error "
        "branch(es), %llu readout flip(s) over %u shot(s)\n",
        static_cast<unsigned long long>(Counters.ChannelApps.load()),
        static_cast<unsigned long long>(Counters.ErrorBranches.load()),
        static_cast<unsigned long long>(Counters.ReadoutFlips.load()),
        Shots);
  return Finish(0);
}
