//===- PassRegistry.cpp - Named pass registry and pipeline plans ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compiler/PassRegistry.h"

#include "ast/AST.h"
#include "ast/Canonicalize.h"
#include "ast/Expand.h"
#include "ast/TypeChecker.h"
#include "baselines/Baselines.h"
#include "compiler/Compiler.h"
#include "ir/IR.h"
#include "qcirc/Peephole.h"
#include "transform/Passes.h"

#include <algorithm>
#include <sstream>

using namespace asdf;

//===----------------------------------------------------------------------===//
// PipelinePlan
//===----------------------------------------------------------------------===//

std::vector<std::string> &PipelinePlan::stage(PipelineStage S) {
  switch (S) {
  case PipelineStage::AST:
    return Ast;
  case PipelineStage::Qwerty:
    return Qwerty;
  case PipelineStage::QCirc:
    return QCirc;
  case PipelineStage::Circuit:
    break;
  }
  return Circuit;
}

const std::vector<std::string> &PipelinePlan::stage(PipelineStage S) const {
  return const_cast<PipelinePlan *>(this)->stage(S);
}

bool PipelinePlan::producesFlatCircuit() const {
  return std::find(Qwerty.begin(), Qwerty.end(), "inline") != Qwerty.end();
}

std::string PipelinePlan::str() const {
  std::ostringstream OS;
  bool FirstStage = true;
  for (PipelineStage S :
       {PipelineStage::AST, PipelineStage::Qwerty, PipelineStage::QCirc,
        PipelineStage::Circuit}) {
    if (!FirstStage)
      OS << ";";
    FirstStage = false;
    OS << pipelineStageName(S) << ":";
    const std::vector<std::string> &Passes = stage(S);
    for (unsigned I = 0; I < Passes.size(); ++I)
      OS << (I ? "," : "") << Passes[I];
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Built-in passes
//===----------------------------------------------------------------------===//

namespace {

template <typename UnitT>
std::unique_ptr<Pass<UnitT>>
makePass(const char *Name, const char *Desc,
         typename LambdaPass<UnitT>::Fn Body) {
  return std::make_unique<LambdaPass<UnitT>>(Name, Desc, std::move(Body));
}

} // namespace

PassRegistry::PassRegistry() {
  // --- ast stage (§4) ---
  registerPass(
      PipelineStage::AST, "expand",
      "instantiate dimension variables, unroll, bind captures (§4.1)",
      ProgramFactory([] {
        return makePass<Program>(
            "expand", "", [](Program &P, PassContext &Ctx) {
              static const ProgramBindings Empty;
              const ProgramBindings &B =
                  Ctx.Bindings ? *Ctx.Bindings : Empty;
              std::unique_ptr<Program> Expanded =
                  expandProgram(P, B, Ctx.Diags);
              if (!Expanded)
                return false;
              P = std::move(*Expanded);
              return true;
            });
      }));
  registerPass(PipelineStage::AST, "typecheck",
               "linear type checking over the expanded AST (§4)",
               ProgramFactory([] {
                 return makePass<Program>(
                     "typecheck", "", [](Program &P, PassContext &Ctx) {
                       return typeCheckProgram(P, Ctx.Diags);
                     });
               }));
  registerPass(PipelineStage::AST, "canonicalize",
               "AST-level canonicalization rewrites (§4.2)",
               ProgramFactory([] {
                 return makePass<Program>("canonicalize", "",
                                          [](Program &P, PassContext &) {
                                            canonicalizeProgram(P);
                                            return true;
                                          });
               }));

  // --- qwerty stage (§5.4, §6.2) ---
  registerPass(PipelineStage::Qwerty, "lift-lambdas",
               "lift lambdas to module functions (§5.4 step 1)",
               ModuleFactory([] {
                 return makePass<Module>("lift-lambdas", "",
                                         [](Module &M, PassContext &) {
                                           liftLambdas(M);
                                           return true;
                                         });
               }));
  registerPass(PipelineStage::Qwerty, "canonicalize",
               "canonicalization patterns + DCE to fixpoint (§5.4 step 2)",
               ModuleFactory([] {
                 return makePass<Module>("canonicalize", "",
                                         [](Module &M, PassContext &) {
                                           canonicalizeIR(M);
                                           return true;
                                         });
               }));
  registerPass(
      PipelineStage::Qwerty, "inline",
      "canonicalize + inline direct calls to fixpoint, specializing "
      "adj/pred callees on demand (§5.4 step 3)",
      ModuleFactory([] {
        return makePass<Module>("inline", "", [](Module &M, PassContext &) {
          bool Changed = true;
          while (Changed) {
            Changed = canonicalizeIR(M);
            while (inlineOneCall(M)) {
              Changed = true;
              canonicalizeIR(M);
            }
          }
          return true;
        });
      }));
  registerPass(PipelineStage::Qwerty, "dce",
               "remove functions unreachable from the entry kernel",
               ModuleFactory([] {
                 return makePass<Module>("dce", "",
                                         [](Module &M, PassContext &Ctx) {
                                           removeDeadFunctions(M,
                                                               {Ctx.Entry});
                                           return true;
                                         });
               }));
  registerPass(
      PipelineStage::Qwerty, "specialize",
      "generate adjoint/controlled specializations for the QIR callables "
      "path (§6.2, Algorithm D5)",
      ModuleFactory([] {
        return makePass<Module>(
            "specialize", "", [](Module &M, PassContext &Ctx) {
              std::set<SpecKey> Specs =
                  analyzeSpecializations(M, Ctx.Entry);
              if (!generateSpecializations(M, Specs)) {
                Ctx.Diags.error(
                    SourceLoc(),
                    "cannot generate required function specializations "
                    "reachable from entry '" +
                        Ctx.Entry + "'");
                return false;
              }
              return true;
            });
      }));

  // --- verification, available in both Module stages ---
  for (PipelineStage S : {PipelineStage::Qwerty, PipelineStage::QCirc})
    registerPass(S, "verify",
                 "structural + linearity verification of the module",
                 ModuleFactory([] {
                   return makePass<Module>(
                       "verify", "", [](Module &M, PassContext &Ctx) {
                         return verifyModule(M, Ctx.Diags);
                       });
                 }));

  // --- qcirc stage (§6.5) ---
  registerPass(PipelineStage::QCirc, "canonicalize",
               "canonicalization patterns + DCE to fixpoint",
               ModuleFactory([] {
                 return makePass<Module>("canonicalize", "",
                                         [](Module &M, PassContext &) {
                                           canonicalizeIR(M);
                                           return true;
                                         });
               }));
  registerPass(PipelineStage::QCirc, "peephole",
               "QCircuit peephole optimizations (§6.5)",
               ModuleFactory([] {
                 return makePass<Module>("peephole", "",
                                         [](Module &M, PassContext &) {
                                           peepholeOptimize(M);
                                           return true;
                                         });
               }));
  registerPass(PipelineStage::QCirc, "decompose-mc",
               "decompose multi-controls via Selinger's controlled-iX "
               "scheme (§6.5)",
               ModuleFactory([] {
                 return makePass<Module>(
                     "decompose-mc", "", [](Module &M, PassContext &) {
                       decomposeMultiControls(M, McDecompose::Selinger);
                       return true;
                     });
               }));

  // --- circuit stage (§7, §8) ---
  registerPass(PipelineStage::Circuit, "transpile-o3",
               "gate-cancellation + rotation-merging cleanup (the §8.3 "
               "baseline transpiler pass)",
               CircuitFactory([] {
                 return makePass<Circuit>("transpile-o3", "",
                                          [](Circuit &C, PassContext &) {
                                            C = transpileO3(C);
                                            return true;
                                          });
               }));
  registerPass(PipelineStage::Circuit, "verify",
               "register/bit index bounds check of the flat circuit",
               CircuitFactory([] {
                 return makePass<Circuit>(
                     "verify", "", [](Circuit &C, PassContext &Ctx) {
                       return unitVerify(C, Ctx.Diags);
                     });
               }));
}

//===----------------------------------------------------------------------===//
// Registry mechanics
//===----------------------------------------------------------------------===//

PassRegistry &PassRegistry::instance() {
  static PassRegistry R;
  return R;
}

void PassRegistry::record(PipelineStage Stage, const std::string &Name,
                          Entry E) {
  auto [It, Inserted] = Entries[Stage].emplace(Name, std::move(E));
  if (!Inserted)
    It->second = std::move(E); // Re-registration wins (tests override).
  else
    Order[Stage].push_back(Name);
}

void PassRegistry::registerPass(PipelineStage Stage, const std::string &Name,
                                const std::string &Desc, ProgramFactory F) {
  Entry E;
  E.Desc = Desc;
  E.AsProgram = std::move(F);
  record(Stage, Name, std::move(E));
}

void PassRegistry::registerPass(PipelineStage Stage, const std::string &Name,
                                const std::string &Desc, ModuleFactory F) {
  Entry E;
  E.Desc = Desc;
  E.AsModule = std::move(F);
  record(Stage, Name, std::move(E));
}

void PassRegistry::registerPass(PipelineStage Stage, const std::string &Name,
                                const std::string &Desc, CircuitFactory F) {
  Entry E;
  E.Desc = Desc;
  E.AsCircuit = std::move(F);
  record(Stage, Name, std::move(E));
}

const PassRegistry::Entry *PassRegistry::find(PipelineStage Stage,
                                              const std::string &Name) const {
  auto SIt = Entries.find(Stage);
  if (SIt == Entries.end())
    return nullptr;
  auto It = SIt->second.find(Name);
  return It == SIt->second.end() ? nullptr : &It->second;
}

std::unique_ptr<Pass<Program>>
PassRegistry::createProgramPass(PipelineStage Stage,
                                const std::string &Name) const {
  const Entry *E = find(Stage, Name);
  return E && E->AsProgram ? E->AsProgram() : nullptr;
}

std::unique_ptr<Pass<Module>>
PassRegistry::createModulePass(PipelineStage Stage,
                               const std::string &Name) const {
  const Entry *E = find(Stage, Name);
  return E && E->AsModule ? E->AsModule() : nullptr;
}

std::unique_ptr<Pass<Circuit>>
PassRegistry::createCircuitPass(PipelineStage Stage,
                                const std::string &Name) const {
  const Entry *E = find(Stage, Name);
  return E && E->AsCircuit ? E->AsCircuit() : nullptr;
}

bool PassRegistry::hasPass(PipelineStage Stage,
                           const std::string &Name) const {
  return find(Stage, Name) != nullptr;
}

std::vector<std::string> PassRegistry::passNames(PipelineStage Stage) const {
  auto It = Order.find(Stage);
  return It == Order.end() ? std::vector<std::string>() : It->second;
}

std::string PassRegistry::describe(PipelineStage Stage,
                                   const std::string &Name) const {
  const Entry *E = find(Stage, Name);
  return E ? E->Desc : "";
}

//===----------------------------------------------------------------------===//
// Presets and plan parsing
//===----------------------------------------------------------------------===//

std::vector<std::string> asdf::pipelinePresetNames() {
  return {"default", "no-opt", "no-peephole", "no-canon"};
}

bool asdf::isPipelinePreset(const std::string &Name) {
  for (const std::string &P : pipelinePresetNames())
    if (P == Name)
      return true;
  return false;
}

PipelinePlan asdf::presetPlan(const std::string &Name) {
  PipelinePlan Plan;
  Plan.Ast = {"expand", "typecheck", "canonicalize"};
  Plan.Qwerty = {"lift-lambdas", "inline", "dce", "verify"};
  Plan.QCirc = {"canonicalize", "peephole", "decompose-mc", "peephole"};
  Plan.Circuit = {};
  if (Name == "no-opt")
    Plan.Qwerty = {"lift-lambdas", "specialize", "verify"};
  else if (Name == "no-peephole")
    Plan.QCirc = {"canonicalize", "decompose-mc"};
  else if (Name == "no-canon")
    Plan.Ast = {"expand", "typecheck"};
  return Plan;
}

PipelinePlan asdf::planFromOptions(const CompileOptions &Options) {
  PipelinePlan Plan = presetPlan("default");
  if (!Options.AstCanonicalize)
    Plan.Ast = presetPlan("no-canon").Ast;
  if (!Options.Inline)
    Plan.Qwerty = presetPlan("no-opt").Qwerty;
  Plan.QCirc = {"canonicalize"};
  if (Options.PeepholeOpt)
    Plan.QCirc.push_back("peephole");
  if (Options.DecomposeMultiControl) {
    Plan.QCirc.push_back("decompose-mc");
    if (Options.PeepholeOpt)
      Plan.QCirc.push_back("peephole");
  }
  return Plan;
}

namespace {

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  Out.push_back(Cur);
  return Out;
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string S;
  for (unsigned I = 0; I < Names.size(); ++I)
    S += (I ? ", " : "") + Names[I];
  return S;
}

} // namespace

bool asdf::parsePipelinePlan(const std::string &Text, PipelinePlan &Plan,
                             std::string &Error) {
  if (isPipelinePreset(Text)) {
    Plan = presetPlan(Text);
    return true;
  }
  if (Text.find(':') == std::string::npos) {
    Error = "unknown pipeline preset '" + Text +
            "' (presets: " + joinNames(pipelinePresetNames()) +
            "; or a spec like \"qwerty:lift-lambdas,inline,dce\")";
    return false;
  }
  Plan = presetPlan("default");
  PassRegistry &Reg = PassRegistry::instance();
  std::vector<bool> Seen(4, false);
  for (const std::string &Part : splitOn(Text, ';')) {
    if (Part.empty())
      continue;
    size_t Colon = Part.find(':');
    if (Colon == std::string::npos) {
      Error = "malformed pipeline stage '" + Part +
              "' (expected <stage>:<pass,...>)";
      return false;
    }
    std::string StageName = Part.substr(0, Colon);
    PipelineStage Stage;
    if (!parsePipelineStage(StageName, Stage)) {
      Error = "unknown pipeline stage '" + StageName +
              "' (stages: ast, qwerty, qcirc, circuit)";
      return false;
    }
    if (Seen[static_cast<unsigned>(Stage)]) {
      Error = "pipeline stage '" + StageName + "' specified twice";
      return false;
    }
    Seen[static_cast<unsigned>(Stage)] = true;
    std::vector<std::string> Passes;
    std::string Rest = Part.substr(Colon + 1);
    if (!Rest.empty()) {
      for (const std::string &Name : splitOn(Rest, ',')) {
        if (Name.empty()) {
          Error = "empty pass name in stage '" + StageName + "'";
          return false;
        }
        if (!Reg.hasPass(Stage, Name)) {
          Error = "unknown pass '" + Name + "' in stage '" + StageName +
                  "' (passes: " + joinNames(Reg.passNames(Stage)) + ")";
          return false;
        }
        Passes.push_back(Name);
      }
    }
    Plan.stage(Stage) = std::move(Passes);
  }
  return true;
}
