//===- Pass.h - Staged pass manager for the Fig. 2 pipeline ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MLIR-style pass infrastructure the compilation pipeline is built
/// from. The Fig. 2 pipeline has four staged unit types:
///
///   - **ast**: passes over the Qwerty `Program` (expand, typecheck,
///     canonicalize),
///   - **qwerty**: passes over the Qwerty-IR `Module` (§5.4: lift-lambdas,
///     inline, dce, specialize, verify),
///   - **qcirc**: passes over the QCircuit-IR `Module` (§6.5: canonicalize,
///     peephole, decompose-mc),
///   - **circuit**: passes over the flat `Circuit` (§7, e.g. transpile-o3).
///
/// A pass is a named unit with a uniform `run(Unit&, PassContext&)` entry
/// point. `PassContext` carries the diagnostics engine, the entry-kernel
/// name, and the instrumentation hooks: per-pass wall time and IR
/// statistics, dump-before/dump-after IR printing, and an optional
/// inter-pass verifier (`--verify-each`). `PassManager<Unit>` runs a list of
/// passes through the instrumentation uniformly; CompileSession funnels the
/// stage *transitions* (parse, lower, convert, flatten) through the same
/// hooks so they show up in timing reports and can be dump targets too.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_COMPILER_PASS_H
#define ASDF_COMPILER_PASS_H

#include "obs/Trace.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace asdf {

class Module;
struct Program;
struct Circuit;
struct ProgramBindings;

/// The four staged unit types of the Fig. 2 pipeline, in order.
enum class PipelineStage { AST, Qwerty, QCirc, Circuit };

const char *pipelineStageName(PipelineStage S);

/// Parses "ast"/"qwerty"/"qcirc"/"circuit"; false on anything else.
bool parsePipelineStage(const std::string &Name, PipelineStage &Out);

/// A size snapshot of a pipeline unit, taken before and after each pass so
/// instrumentation can report what the pass did to the IR.
struct UnitStats {
  uint64_t Functions = 0; ///< Module: functions; Program: function defs.
  uint64_t Ops = 0;       ///< Module: ops (recursive); Circuit: instrs;
                          ///< Program: statements across all functions.
  uint64_t Qubits = 0;    ///< Circuit only: register width.

  bool operator==(const UnitStats &O) const {
    return Functions == O.Functions && Ops == O.Ops && Qubits == O.Qubits;
  }
  bool operator!=(const UnitStats &O) const { return !(*this == O); }

  /// Renders e.g. "3 funcs, 120 ops" or "57 instrs, 9 qubits".
  std::string str(PipelineStage S) const;
};

UnitStats unitStats(const Program &P);
UnitStats unitStats(const Module &M);
UnitStats unitStats(const Circuit &C);

/// Prints a unit for --print-before/--print-after dumps.
std::string unitPrint(const Program &P);
std::string unitPrint(const Module &M);
std::string unitPrint(const Circuit &C);

/// Inter-pass verification (--verify-each). Modules run the full structural
/// verifier; circuits get an index-bounds check; programs have no invariant
/// checkable without re-running the type checker, so they always pass.
bool unitVerify(const Program &P, DiagnosticEngine &Diags);
bool unitVerify(const Module &M, DiagnosticEngine &Diags);
bool unitVerify(const Circuit &C, DiagnosticEngine &Diags);

/// One timed pass (or stage transition) execution.
struct PassTiming {
  PipelineStage Stage = PipelineStage::AST;
  std::string PassName;
  double Seconds = 0.0;
  UnitStats Before, After;

  bool changedIR() const { return Before != After; }
};

/// Shared state threaded through every pass of a compilation: diagnostics,
/// the entry-point name, the capture/dimension bindings (consumed by the
/// `expand` pass), and the instrumentation configuration.
class PassContext {
public:
  PassContext(DiagnosticEngine &Diags) : Diags(Diags) {}

  DiagnosticEngine &Diags;
  /// Entry kernel: the dce/specialize passes and flatten key off it.
  std::string Entry = "kernel";
  /// Dimension-variable and capture bindings for the `expand` pass.
  const ProgramBindings *Bindings = nullptr;

  //===--- Instrumentation configuration ---===//

  /// Record per-pass wall time and before/after IR statistics.
  bool CollectTimings = false;
  /// Run the unit verifier after every pass; a failure aborts compilation
  /// naming the pass that broke the IR.
  bool VerifyEach = false;
  /// Dump IR after passes: unset = off, "" = after every pass, otherwise
  /// only after the named pass. Stage transitions (parse, lower, convert,
  /// flatten) are valid names too.
  std::optional<std::string> PrintAfter;
  /// Same, before passes.
  std::optional<std::string> PrintBefore;
  /// Where dumps go: called with a banner line and the printed IR.
  /// Defaults to stderr.
  std::function<void(const std::string &Banner, const std::string &IR)>
      PrintSink;

  //===--- Instrumentation output ---===//

  std::vector<PassTiming> Timings;
  /// Set when a pass fails (or --verify-each fails after it): the offending
  /// pass and stage, for error messages that name the culprit.
  std::string FailedPass;
  PipelineStage FailedStage = PipelineStage::AST;

  /// Renders an MLIR-style pass-timing report from `Timings`.
  std::string timingReport() const;

  /// Runs \p Body as the named pass over \p U with full instrumentation:
  /// dump-before, timing, dump-after, and the inter-pass verifier. Returns
  /// false (recording FailedPass/FailedStage) if the body fails or the
  /// verifier rejects the unit afterwards.
  template <typename UnitT, typename Fn>
  bool runInstrumented(PipelineStage Stage, const std::string &Name, UnitT &U,
                       Fn Body) {
    if (wantsDump(PrintBefore, Name))
      dump("Before", Stage, Name, unitPrint(U));
    UnitStats Before;
    if (CollectTimings)
      Before = unitStats(U);
    auto T0 = std::chrono::steady_clock::now();
    bool Ok;
    {
      // "qwerty:inline"-style span per pass; formats nothing and costs
      // one relaxed load when tracing is off.
      obs::Span Sp(pipelineStageName(Stage), Name, "compile");
      Ok = Body();
    }
    if (CollectTimings) {
      double Secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
      Timings.push_back({Stage, Name, Secs, Before, unitStats(U)});
    }
    if (!Ok) {
      noteFailure(Stage, Name);
      return false;
    }
    if (wantsDump(PrintAfter, Name))
      dump("After", Stage, Name, unitPrint(U));
    if (VerifyEach && !unitVerify(U, Diags)) {
      Diags.note(SourceLoc(), "IR verification failed after pass '" + Name +
                                  "' (" + pipelineStageName(Stage) +
                                  " stage)");
      noteFailure(Stage, Name);
      return false;
    }
    return true;
  }

  /// Dump hook for the unit *feeding* a creation transition (the AST
  /// before `lower`, the QCirc module before `flatten`): honors
  /// print-before. `parse` has no predecessor unit and thus no
  /// before-dump.
  template <typename UnitT>
  void dumpBeforeCreation(PipelineStage Stage, const std::string &Name,
                          const UnitT &U) {
    if (wantsDump(PrintBefore, Name))
      dump("Before", Stage, Name, unitPrint(U));
  }

  /// Instruments a stage transition that *creates* its unit (parse, lower,
  /// flatten): records the timing with empty before-stats, honors
  /// print-after and the inter-pass verifier. Pass null \p U on failure.
  template <typename UnitT>
  bool recordCreation(PipelineStage Stage, const std::string &Name,
                      double Seconds, UnitT *U) {
    if (obs::traceEnabled()) {
      // The transition already ran; emit its span retroactively so parse/
      // lower/flatten appear alongside the instrumented passes.
      uint64_t DurNs = static_cast<uint64_t>(Seconds * 1e9);
      uint64_t Now = obs::nowNs();
      obs::emitSpan(Name.c_str(), "compile", Now > DurNs ? Now - DurNs : 0,
                    DurNs, obs::currentTraceId());
    }
    if (CollectTimings)
      Timings.push_back({Stage, Name, Seconds, UnitStats(),
                         U ? unitStats(*U) : UnitStats()});
    if (!U) {
      noteFailure(Stage, Name);
      return false;
    }
    if (wantsDump(PrintAfter, Name))
      dump("After", Stage, Name, unitPrint(*U));
    if (VerifyEach && !unitVerify(*U, Diags)) {
      Diags.note(SourceLoc(), "IR verification failed after pass '" + Name +
                                  "' (" + pipelineStageName(Stage) +
                                  " stage)");
      noteFailure(Stage, Name);
      return false;
    }
    return true;
  }

  void noteFailure(PipelineStage Stage, const std::string &Name) {
    // Keep the first (innermost) failure.
    if (FailedPass.empty()) {
      FailedPass = Name;
      FailedStage = Stage;
    }
  }

private:
  static bool wantsDump(const std::optional<std::string> &Sel,
                        const std::string &Name) {
    return Sel && (Sel->empty() || *Sel == Name);
  }
  void dump(const char *When, PipelineStage Stage, const std::string &Name,
            const std::string &IR);
};

/// One named transformation over a pipeline unit.
template <typename UnitT> class Pass {
public:
  virtual ~Pass() = default;
  virtual const char *name() const = 0;
  virtual const char *description() const { return ""; }
  /// Transforms \p U in place. Returns false on failure after reporting
  /// into Ctx.Diags.
  virtual bool run(UnitT &U, PassContext &Ctx) = 0;
};

/// Adapts a callable into a Pass so the registry can define passes inline.
template <typename UnitT> class LambdaPass : public Pass<UnitT> {
public:
  using Fn = std::function<bool(UnitT &, PassContext &)>;
  LambdaPass(std::string Name, std::string Desc, Fn Body)
      : Name(std::move(Name)), Desc(std::move(Desc)), Body(std::move(Body)) {}
  const char *name() const override { return Name.c_str(); }
  const char *description() const override { return Desc.c_str(); }
  bool run(UnitT &U, PassContext &Ctx) override { return Body(U, Ctx); }

private:
  std::string Name, Desc;
  Fn Body;
};

/// An ordered list of passes over one stage's unit type, run through the
/// context's instrumentation.
template <typename UnitT> class PassManager {
public:
  explicit PassManager(PipelineStage Stage) : Stage(Stage) {}

  void add(std::unique_ptr<Pass<UnitT>> P) {
    Passes.push_back(std::move(P));
  }
  const std::vector<std::unique_ptr<Pass<UnitT>>> &passes() const {
    return Passes;
  }
  PipelineStage stage() const { return Stage; }

  /// Runs every pass in order; stops at the first failure.
  bool run(UnitT &U, PassContext &Ctx) {
    for (auto &P : Passes)
      if (!Ctx.runInstrumented(Stage, P->name(), U,
                               [&] { return P->run(U, Ctx); }))
        return false;
    return true;
  }

private:
  PipelineStage Stage;
  std::vector<std::unique_ptr<Pass<UnitT>>> Passes;
};

} // namespace asdf

#endif // ASDF_COMPILER_PASS_H
