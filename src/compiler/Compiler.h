//===- Compiler.h - Deprecated two-method compiler shim -------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The legacy compilation entry points, kept as a thin shim over
/// CompileSession for older embedders. New code should construct a
/// CompileSession (compiler/CompileSession.h) directly: it exposes every
/// intermediate artifact with caching, pipeline plans instead of boolean
/// flags, and the pass instrumentation hooks. The boolean knobs below map
/// onto pipeline presets via planFromOptions (PassRegistry.h):
///
///   {Inline=0}          -> preset "no-opt"
///   {PeepholeOpt=0}     -> preset "no-peephole" (QCirc stage)
///   {AstCanonicalize=0} -> preset "no-canon"    (AST stage)
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_COMPILER_COMPILER_H
#define ASDF_COMPILER_COMPILER_H

#include "ast/Expand.h"
#include "ir/IR.h"
#include "qcirc/Circuit.h"

#include <memory>
#include <string>

namespace asdf {

/// Legacy compiler configuration. Each boolean selects between pipeline
/// presets; see planFromOptions.
struct CompileOptions {
  /// Entry kernel name.
  std::string Entry = "kernel";
  /// Run the optimization pipeline (§5.4). When false, only lambda lifting
  /// and specialization run, leaving call_indirect ops to lower to QIR
  /// callables (the "Asdf (No Opt)" configuration of Table 1).
  bool Inline = true;
  /// Run QCircuit-level peephole optimizations (§6.5).
  bool PeepholeOpt = true;
  /// Run the AST-level canonicalization rewrites (§4.2). Off only for the
  /// ablation measuring how much simpler they make the IR.
  bool AstCanonicalize = true;
  /// Decompose multi-controlled gates with Selinger's controlled-iX scheme
  /// (§6.5). When false, gates stay multi-controlled (for the transpiler
  /// baseline comparison, a naive decomposition can be applied instead).
  bool DecomposeMultiControl = true;
};

/// Result of a legacy compilation.
struct CompileResult {
  bool Ok = false;
  std::string ErrorMessage;

  std::unique_ptr<Program> AST;       ///< Expanded, checked, canonicalized.
  std::unique_ptr<Module> QwertyIR;   ///< After the §5.4 pipeline.
  std::unique_ptr<Module> QCircIR;    ///< After conversion + peepholes.
  Circuit FlatCircuit;                ///< reg2mem'd circuit (§7).
};

/// DEPRECATED: drive compilation through CompileSession instead. This shim
/// constructs a session per call and moves the artifacts out, so callers
/// lose the artifact cache and the instrumentation surface.
class QwertyCompiler {
public:
  QwertyCompiler() = default;

  /// Compiles \p Source with \p Bindings down to a flat circuit.
  CompileResult compile(const std::string &Source,
                        const ProgramBindings &Bindings,
                        const CompileOptions &Options = CompileOptions());

  /// Front half only: source to optimized Qwerty IR (used by tests and the
  /// Table 1 harness, which needs the IR-level callable structure).
  CompileResult compileToQwertyIR(const std::string &Source,
                                  const ProgramBindings &Bindings,
                                  const CompileOptions &Options =
                                      CompileOptions());
};

} // namespace asdf

#endif // ASDF_COMPILER_COMPILER_H
