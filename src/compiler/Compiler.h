//===- Compiler.h - The Asdf compiler driver ------------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level compilation pipeline (Fig. 2): DSL source -> Qwerty AST
/// (parse, expand, type check, canonicalize) -> Qwerty IR (lower, lift,
/// canonicalize, inline) -> QCircuit IR (dialect conversion, synthesis,
/// peepholes) -> flat circuit / OpenQASM 3 / QIR.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_COMPILER_COMPILER_H
#define ASDF_COMPILER_COMPILER_H

#include "ast/Expand.h"
#include "ir/IR.h"
#include "qcirc/Circuit.h"

#include <memory>
#include <string>

namespace asdf {

/// Compiler configuration.
struct CompileOptions {
  /// Entry kernel name.
  std::string Entry = "kernel";
  /// Run the optimization pipeline (§5.4). When false, only lambda lifting
  /// runs, leaving call_indirect ops to lower to QIR callables (the
  /// "Asdf (No Opt)" configuration of Table 1).
  bool Inline = true;
  /// Run QCircuit-level peephole optimizations (§6.5).
  bool PeepholeOpt = true;
  /// Run the AST-level canonicalization rewrites (§4.2). Off only for the
  /// ablation measuring how much simpler they make the IR.
  bool AstCanonicalize = true;
  /// Decompose multi-controlled gates with Selinger's controlled-iX scheme
  /// (§6.5). When false, gates stay multi-controlled (for the transpiler
  /// baseline comparison, a naive decomposition can be applied instead).
  bool DecomposeMultiControl = true;
};

/// Result of a compilation.
struct CompileResult {
  bool Ok = false;
  std::string ErrorMessage;

  std::unique_ptr<Program> AST;       ///< Expanded, checked, canonicalized.
  std::unique_ptr<Module> QwertyIR;   ///< After the §5.4 pipeline.
  std::unique_ptr<Module> QCircIR;    ///< After conversion + peepholes.
  Circuit FlatCircuit;                ///< reg2mem'd circuit (§7).
};

/// The compiler: drives every phase of Fig. 2.
class QwertyCompiler {
public:
  QwertyCompiler() = default;

  /// Compiles \p Source with \p Bindings down to a flat circuit.
  CompileResult compile(const std::string &Source,
                        const ProgramBindings &Bindings,
                        const CompileOptions &Options = CompileOptions());

  /// Front half only: source to optimized Qwerty IR (used by tests and the
  /// Table 1 harness, which needs the IR-level callable structure).
  CompileResult compileToQwertyIR(const std::string &Source,
                                  const ProgramBindings &Bindings,
                                  const CompileOptions &Options =
                                      CompileOptions());
};

} // namespace asdf

#endif // ASDF_COMPILER_COMPILER_H
