//===- Metrics.cpp - Counters, gauges, fixed-bucket histograms ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cmath>
#include <cstdio>

namespace asdf {
namespace obs {

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

const std::array<double, Histogram::NumFinite> &Histogram::bounds() {
  // 1-2-5 ladder, 1µs through 50s, capped with a 60s bucket (the
  // service's own timeout ceiling).
  static const std::array<double, NumFinite> B = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
      1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1,
      1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 60.0};
  return B;
}

void Histogram::observe(double Seconds) {
  const auto &B = bounds();
  size_t I = 0;
  while (I < NumFinite && Seconds > B[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  Cnt.fetch_add(1, std::memory_order_relaxed);
  // No atomic fetch_add for double pre-C++20-TS everywhere; CAS loop.
  double Old = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Old, Old + Seconds,
                                    std::memory_order_relaxed))
    ;
}

double Histogram::quantile(double Q) const {
  uint64_t N = count();
  if (N == 0)
    return 0.0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * N));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    Seen += bucketCount(I);
    if (Seen >= Rank)
      return I < NumFinite ? bounds()[I] : bounds()[NumFinite - 1];
  }
  return bounds()[NumFinite - 1];
}

json::Value Histogram::toJson() const {
  json::Value V = json::Value::object();
  json::Value B = json::Value::array();
  for (size_t I = 0; I < NumBuckets; ++I)
    B.push(json::Value::integer(bucketCount(I)));
  V.set("buckets", std::move(B));
  V.set("count", json::Value::integer(count()));
  V.set("sum", json::Value::number(sum()));
  V.set("p50", json::Value::number(quantile(0.50)));
  V.set("p90", json::Value::number(quantile(0.90)));
  V.set("p99", json::Value::number(quantile(0.99)));
  return V;
}

bool Histogram::fromJson(const json::Value &V, Histogram &Out) {
  if (!V.isObject())
    return false;
  const json::Value *B = V.get("buckets");
  const json::Value *Cnt = V.get("count");
  const json::Value *Sum = V.get("sum");
  if (!B || !B->isArray() || B->elements().size() != NumBuckets || !Cnt ||
      !Sum)
    return false;
  uint64_t Total = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    uint64_t C = B->elements()[I].asU64();
    Out.Buckets[I].store(C, std::memory_order_relaxed);
    Total += C;
  }
  if (Total != Cnt->asU64())
    return false;
  Out.Cnt.store(Total, std::memory_order_relaxed);
  Out.Sum.store(Sum->asDouble(), std::memory_order_relaxed);
  return true;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry::Entry *MetricsRegistry::find(const std::string &Name) {
  for (auto &E : Entries)
    if (E->Name == Name)
      return E.get();
  return nullptr;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name))
    return *E->C;
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->K = Kind::Counter;
  E->C = std::make_unique<Counter>();
  Counter &Ref = *E->C;
  Entries.push_back(std::move(E));
  return Ref;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name))
    return *E->G;
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->K = Kind::Gauge;
  E->G = std::make_unique<Gauge>();
  Gauge &Ref = *E->G;
  Entries.push_back(std::move(E));
  return Ref;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name))
    return *E->H;
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->K = Kind::Histogram;
  E->H = std::make_unique<obs::Histogram>();
  obs::Histogram &Ref = *E->H;
  Entries.push_back(std::move(E));
  return Ref;
}

void MetricsRegistry::counterFn(const std::string &Name,
                                const std::string &Help,
                                std::function<uint64_t()> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name)) {
    E->CFn = std::move(Fn);
    return;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->K = Kind::CounterFn;
  E->CFn = std::move(Fn);
  Entries.push_back(std::move(E));
}

void MetricsRegistry::gaugeFn(const std::string &Name,
                              const std::string &Help,
                              std::function<double()> Fn) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *E = find(Name)) {
    E->GFn = std::move(Fn);
    return;
  }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->K = Kind::GaugeFn;
  E->GFn = std::move(Fn);
  Entries.push_back(std::move(E));
}

namespace {

/// Shortest %g form that still distinguishes every bucket bound.
std::string formatDouble(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  // Trim to the shortest representation that round-trips.
  for (int Prec = 1; Prec < 17; ++Prec) {
    char Short[64];
    std::snprintf(Short, sizeof(Short), "%.*g", Prec, D);
    double Back = 0.0;
    std::sscanf(Short, "%lf", &Back);
    if (Back == D)
      return Short;
  }
  return Buf;
}

} // namespace

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  Out.reserve(4096);
  auto Line = [&Out](const std::string &S) {
    Out += S;
    Out += '\n';
  };
  for (const auto &E : Entries) {
    Line("# HELP " + E->Name + " " + E->Help);
    switch (E->K) {
    case Kind::Counter:
    case Kind::CounterFn: {
      Line("# TYPE " + E->Name + " counter");
      uint64_t V = E->K == Kind::Counter ? E->C->value() : E->CFn();
      Line(E->Name + " " + std::to_string(V));
      break;
    }
    case Kind::Gauge:
    case Kind::GaugeFn: {
      Line("# TYPE " + E->Name + " gauge");
      double V = E->K == Kind::Gauge ? E->G->value() : E->GFn();
      Line(E->Name + " " + formatDouble(V));
      break;
    }
    case Kind::Histogram: {
      Line("# TYPE " + E->Name + " histogram");
      uint64_t Cum = 0;
      for (size_t I = 0; I < obs::Histogram::NumFinite; ++I) {
        Cum += E->H->bucketCount(I);
        Line(E->Name + "_bucket{le=\"" +
             formatDouble(obs::Histogram::bounds()[I]) + "\"} " +
             std::to_string(Cum));
      }
      Cum += E->H->bucketCount(obs::Histogram::NumFinite);
      Line(E->Name + "_bucket{le=\"+Inf\"} " + std::to_string(Cum));
      Line(E->Name + "_sum " + formatDouble(E->H->sum()));
      Line(E->Name + "_count " + std::to_string(E->H->count()));
      break;
    }
    }
  }
  return Out;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

} // namespace obs
} // namespace asdf
