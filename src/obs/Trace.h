//===- Trace.h - RAII spans over lock-free per-thread rings ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-dependency tracing spine (docs/observability.md). The model:
///
///   - `Span` is an RAII complete-event recorder: construction stamps the
///     start, destruction stamps the duration and appends one fixed-size
///     event to the calling thread's ring buffer. When tracing is disabled
///     (the default) every operation early-outs on one relaxed atomic
///     load; no allocation, no clock read, no ring traffic.
///   - Each thread owns a single-producer ring. The owner writes the slot
///     and release-stores the head; the exporter acquire-loads heads at a
///     quiescent point (workers joined, daemon drained). Full rings drop
///     new events rather than overwrite — an exporter never races a
///     writer over slot memory.
///   - A 64-bit trace id rides in thread-local storage (`TraceContext`)
///     and stamps every span, correlating one request's spans across the
///     wire decoder, queue worker, compiler passes, and simulator worker
///     threads. Id 0 means "unattributed".
///
/// `exportChromeTrace` renders everything recorded so far as Chrome
/// trace-event JSON, loadable in Perfetto or chrome://tracing.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_OBS_TRACE_H
#define ASDF_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace asdf {
namespace obs {

namespace detail {
extern std::atomic<bool> TracingEnabled;
} // namespace detail

/// One relaxed load; the gate every trace operation checks first.
inline bool traceEnabled() {
  return detail::TracingEnabled.load(std::memory_order_relaxed);
}

void enableTracing();
void disableTracing();

/// Drops every recorded event (and the drop counters). Only safe at a
/// quiescent point — tests call it between cases after joining workers.
void clearTrace();

/// Monotonic nanoseconds since a process-wide origin (first call).
uint64_t nowNs();

/// The calling thread's current trace id (0 = unattributed).
uint64_t currentTraceId();

/// RAII trace-id scope: sets the thread's current id, restores the
/// previous one on destruction. Cheap enough to use unconditionally.
class TraceContext {
public:
  explicit TraceContext(uint64_t Id);
  ~TraceContext();
  TraceContext(const TraceContext &) = delete;
  TraceContext &operator=(const TraceContext &) = delete;

private:
  uint64_t Saved;
};

/// Appends one complete event retroactively — for spans whose bounds are
/// only known after the fact (wire decode learns its trace id from the
/// parsed request; queue wait learns its duration at pickup).
void emitSpan(const char *Name, const char *Cat, uint64_t StartNs,
              uint64_t DurNs, uint64_t TraceId);

/// RAII span: stamps [construction, destruction) as one complete event on
/// the calling thread, tagged with the thread's current trace id. Name
/// and category must either outlive the span or fit the fixed buffer —
/// both ctors copy into member arrays, so any lifetime works.
class Span {
public:
  Span(const char *Name, const char *Cat);
  /// Two-part name ("prefix:name") formatted into the fixed buffer only
  /// when tracing is enabled — callers with dynamic names (pass names)
  /// pay no allocation on the disabled path.
  Span(const char *Prefix, const std::string &Name, const char *Cat);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  char NameBuf[48];
  char CatBuf[16];
  uint64_t StartNs = 0;
  bool Active = false;
};

/// Renders all recorded events as a Chrome trace-event JSON document.
/// Call only at a quiescent point (no threads mid-span).
std::string exportChromeTrace();

/// Writes exportChromeTrace() to \p Path; false on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// Events discarded because a thread's ring filled (diagnostic).
uint64_t droppedSpanCount();

} // namespace obs
} // namespace asdf

#endif // ASDF_OBS_TRACE_H
