//===- Metrics.h - Counters, gauges, fixed-bucket histograms --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability spine (docs/observability.md):
/// a `MetricsRegistry` of named counters, gauges, and latency histograms,
/// rendered in Prometheus text exposition format. Design points:
///
///   - Histograms use one fixed 1-2-5 bucket ladder (1µs .. 60s plus an
///     overflow bucket). Fixed buckets make quantiles deterministic: a
///     quantile is the upper bound of the bucket containing the ranked
///     sample, so two parties that share the bucket counts compute the
///     byte-identical p50/p99. That property is what lets benches assert
///     their client-side math agrees with the daemon's `stats` op.
///   - Counters/histograms are lock-free (atomics); the registry itself
///     locks only on registration and render.
///   - `counterFn`/`gaugeFn` register read-time callbacks, absorbing
///     pre-existing counters (cache, queue, SimStats) without moving
///     their storage.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_OBS_METRICS_H
#define ASDF_OBS_METRICS_H

#include "support/Json.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace asdf {
namespace obs {

/// Monotonic event counter.
class Counter {
public:
  void inc(uint64_t N = 1) { Val.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Val.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Val{0};
};

/// Point-in-time value (queue depth, bytes resident).
class Gauge {
public:
  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  double value() const { return Val.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Val{0.0};
};

/// Fixed-bucket latency histogram over seconds. Bounds are a 1-2-5
/// decimal ladder from 1µs to 50s capped with 60s; observations above
/// the last finite bound land in the overflow bucket.
class Histogram {
public:
  /// Finite upper bounds in seconds, ascending.
  static constexpr size_t NumFinite = 25;
  /// NumFinite + 1: the last bucket is +Inf (overflow).
  static constexpr size_t NumBuckets = NumFinite + 1;
  static const std::array<double, NumFinite> &bounds();

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  void observe(double Seconds);

  uint64_t count() const { return Cnt.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Quantile estimate: the upper bound of the bucket containing the
  /// sample of rank ceil(q * count). Deterministic given the bucket
  /// counts — overflow maps to the largest finite bound, empty to 0.
  double quantile(double Q) const;

  /// {buckets: [..], count, sum, p50, p90, p99} — the `stats` op's wire
  /// form, re-loadable with fromJson for client-side re-derivation.
  json::Value toJson() const;

  /// Rebuilds a histogram from toJson() output; false on shape mismatch
  /// (wrong bucket count / missing fields).
  static bool fromJson(const json::Value &V, Histogram &Out);

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Cnt{0};
  std::atomic<double> Sum{0.0};
};

/// Named metric registry rendering Prometheus text exposition format.
/// Registration dedups by name (same name returns the existing metric).
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name, const std::string &Help);
  Gauge &gauge(const std::string &Name, const std::string &Help);
  Histogram &histogram(const std::string &Name, const std::string &Help);
  /// Counter/gauge whose value is read from \p Fn at render time —
  /// absorbs counters that already live elsewhere.
  void counterFn(const std::string &Name, const std::string &Help,
                 std::function<uint64_t()> Fn);
  void gaugeFn(const std::string &Name, const std::string &Help,
               std::function<double()> Fn);

  /// Full exposition: # HELP / # TYPE / samples, histogram `_bucket`
  /// lines cumulative with `le` labels plus `_sum` and `_count`.
  std::string renderPrometheus() const;

  /// Process-wide registry for CLI tools; the service owns its own.
  static MetricsRegistry &global();

private:
  enum class Kind { Counter, Gauge, Histogram, CounterFn, GaugeFn };
  struct Entry {
    std::string Name, Help;
    Kind K;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<obs::Histogram> H;
    std::function<uint64_t()> CFn;
    std::function<double()> GFn;
  };

  Entry *find(const std::string &Name);

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Entry>> Entries;
};

} // namespace obs
} // namespace asdf

#endif // ASDF_OBS_METRICS_H
