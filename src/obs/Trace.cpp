//===- Trace.cpp - RAII spans over lock-free per-thread rings -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace asdf {
namespace obs {

namespace detail {
std::atomic<bool> TracingEnabled{false};
} // namespace detail

namespace {

struct Event {
  char Name[48];
  char Cat[16];
  uint64_t StartNs;
  uint64_t DurNs;
  uint64_t TraceId;
  uint32_t Tid;
};

/// Single-producer ring: the owning thread writes Slots[Head % Capacity]
/// then release-stores Head; the exporter acquire-loads Head and reads
/// only completed slots. Full ring drops (Head never laps the exporter's
/// view because slots past Capacity are simply not written).
struct Ring {
  static constexpr size_t Capacity = 8192;
  Event Slots[Capacity];
  std::atomic<uint64_t> Head{0};
  std::atomic<uint64_t> Dropped{0};
  uint32_t Tid = 0;

  void push(const Event &E) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H >= Capacity) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slots[H] = E;
    Head.store(H + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex Mu;
  std::vector<std::shared_ptr<Ring>> Rings;
  std::atomic<uint32_t> NextTid{0};
};

Registry &registry() {
  static Registry R;
  return R;
}

/// The calling thread's ring; registered globally on first use and kept
/// alive by the registry's shared_ptr after the thread exits.
Ring &myRing() {
  thread_local std::shared_ptr<Ring> TL = [] {
    auto R = std::make_shared<Ring>();
    Registry &G = registry();
    R->Tid = G.NextTid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(G.Mu);
    G.Rings.push_back(R);
    return R;
  }();
  return *TL;
}

uint64_t originNs() {
  static const uint64_t Origin =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return Origin;
}

thread_local uint64_t CurrentTraceId = 0;

void copyInto(char *Dst, size_t Cap, const char *Src) {
  size_t Len = std::strlen(Src);
  if (Len >= Cap)
    Len = Cap - 1;
  std::memcpy(Dst, Src, Len);
  Dst[Len] = '\0';
}

} // namespace

void enableTracing() {
  originNs(); // Pin the clock origin before any span reads it.
  detail::TracingEnabled.store(true, std::memory_order_relaxed);
}

void disableTracing() {
  detail::TracingEnabled.store(false, std::memory_order_relaxed);
}

void clearTrace() {
  Registry &G = registry();
  std::lock_guard<std::mutex> Lock(G.Mu);
  for (auto &R : G.Rings) {
    R->Head.store(0, std::memory_order_release);
    R->Dropped.store(0, std::memory_order_relaxed);
  }
}

uint64_t nowNs() {
  uint64_t Now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  return Now - originNs();
}

uint64_t currentTraceId() { return CurrentTraceId; }

TraceContext::TraceContext(uint64_t Id) : Saved(CurrentTraceId) {
  CurrentTraceId = Id;
}

TraceContext::~TraceContext() { CurrentTraceId = Saved; }

void emitSpan(const char *Name, const char *Cat, uint64_t StartNs,
              uint64_t DurNs, uint64_t TraceId) {
  if (!traceEnabled())
    return;
  Event E;
  copyInto(E.Name, sizeof(E.Name), Name);
  copyInto(E.Cat, sizeof(E.Cat), Cat);
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  E.TraceId = TraceId;
  Ring &R = myRing();
  E.Tid = R.Tid;
  R.push(E);
}

Span::Span(const char *Name, const char *Cat) {
  if (!traceEnabled())
    return;
  Active = true;
  copyInto(NameBuf, sizeof(NameBuf), Name);
  copyInto(CatBuf, sizeof(CatBuf), Cat);
  StartNs = nowNs();
}

Span::Span(const char *Prefix, const std::string &Name, const char *Cat) {
  if (!traceEnabled())
    return;
  Active = true;
  std::snprintf(NameBuf, sizeof(NameBuf), "%s:%s", Prefix, Name.c_str());
  copyInto(CatBuf, sizeof(CatBuf), Cat);
  StartNs = nowNs();
}

Span::~Span() {
  if (!Active)
    return;
  emitSpan(NameBuf, CatBuf, StartNs, nowNs() - StartNs, CurrentTraceId);
}

std::string exportChromeTrace() {
  std::vector<Event> All;
  {
    Registry &G = registry();
    std::lock_guard<std::mutex> Lock(G.Mu);
    for (auto &R : G.Rings) {
      uint64_t H = R->Head.load(std::memory_order_acquire);
      for (uint64_t I = 0; I < H; ++I)
        All.push_back(R->Slots[I]);
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const Event &A, const Event &B) {
                     return A.StartNs < B.StartNs;
                   });
  json::Value Doc = json::Value::object();
  json::Value Events = json::Value::array();
  for (const Event &E : All) {
    json::Value Ev = json::Value::object();
    Ev.set("name", json::Value::str(E.Name));
    Ev.set("cat", json::Value::str(E.Cat));
    Ev.set("ph", json::Value::str("X"));
    // Chrome wants microseconds; keep sub-µs precision as a fraction.
    Ev.set("ts", json::Value::number(static_cast<double>(E.StartNs) / 1e3));
    Ev.set("dur", json::Value::number(static_cast<double>(E.DurNs) / 1e3));
    Ev.set("pid", json::Value::integer(static_cast<uint64_t>(1)));
    Ev.set("tid", json::Value::integer(static_cast<uint64_t>(E.Tid)));
    json::Value Args = json::Value::object();
    Args.set("trace", json::Value::integer(E.TraceId));
    Ev.set("args", std::move(Args));
    Events.push(std::move(Ev));
  }
  Doc.set("traceEvents", std::move(Events));
  return Doc.write();
}

bool writeChromeTrace(const std::string &Path) {
  std::string Body = exportChromeTrace();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), F);
  bool Ok = Written == Body.size() && std::fputc('\n', F) != EOF;
  return std::fclose(F) == 0 && Ok;
}

uint64_t droppedSpanCount() {
  Registry &G = registry();
  std::lock_guard<std::mutex> Lock(G.Mu);
  uint64_t Total = 0;
  for (auto &R : G.Rings)
    Total += R->Dropped.load(std::memory_order_relaxed);
  return Total;
}

} // namespace obs
} // namespace asdf
