//===- BitUtils.h - Bit-twiddling helpers ---------------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers for manipulating eigenbit strings, which are stored as a
/// 128-bit integer with the *leftmost* qubit in the most significant used
/// bit. 128 bits covers the paper's largest benchmark (128-bit oracle
/// inputs, e.g. the Grover diffuser literal {'p'[128]}).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_BITUTILS_H
#define ASDF_SUPPORT_BITUTILS_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace asdf {

/// The eigenbit storage type.
using EigenBits = unsigned __int128;

/// Maximum dimension of a single basis literal vector.
inline constexpr unsigned MaxLiteralDim = 128;

/// Extracts the topmost (leftmost) \p PrefixLen bits of a \p Dim-bit string.
inline EigenBits bitPrefix(EigenBits Bits, unsigned Dim, unsigned PrefixLen) {
  assert(PrefixLen <= Dim && Dim <= MaxLiteralDim && "bad prefix request");
  if (PrefixLen == 0)
    return 0;
  return Bits >> (Dim - PrefixLen);
}

/// Extracts the bottom (rightmost) \p SuffixLen bits of a bit string.
inline EigenBits bitSuffix(EigenBits Bits, unsigned SuffixLen) {
  assert(SuffixLen <= MaxLiteralDim && "bad suffix request");
  if (SuffixLen == 0)
    return 0;
  if (SuffixLen == MaxLiteralDim)
    return Bits;
  return Bits & ((EigenBits(1) << SuffixLen) - 1);
}

/// Concatenates two bit strings: \p Hi becomes the leftmost bits.
inline EigenBits bitConcat(EigenBits Hi, EigenBits Lo, unsigned LoDim) {
  assert(LoDim < MaxLiteralDim || Hi == 0);
  if (LoDim >= MaxLiteralDim)
    return Lo;
  return (Hi << LoDim) | Lo;
}

/// Reads bit \p Pos of a \p Dim-bit string, with position 0 the leftmost.
inline bool bitAt(EigenBits Bits, unsigned Dim, unsigned Pos) {
  assert(Pos < Dim && "bit position out of range");
  return (Bits >> (Dim - 1 - Pos)) & 1;
}

/// Sets bit \p Pos (leftmost = 0) of a \p Dim-bit string to \p Val.
inline EigenBits setBitAt(EigenBits Bits, unsigned Dim, unsigned Pos,
                          bool Val) {
  assert(Pos < Dim && "bit position out of range");
  EigenBits Mask = EigenBits(1) << (Dim - 1 - Pos);
  return Val ? (Bits | Mask) : (Bits & ~Mask);
}

/// Renders a \p Dim-bit string as '0'/'1' characters, leftmost bit first.
inline std::string bitsToString(EigenBits Bits, unsigned Dim) {
  std::string S;
  S.reserve(Dim);
  for (unsigned I = 0; I < Dim; ++I)
    S.push_back(bitAt(Bits, Dim, I) ? '1' : '0');
  return S;
}

/// Inserts a 0 bit into \p X at the position of the single-bit mask \p M:
/// every bit of \p X at or above M's position shifts up one place. The
/// workhorse of strided state-vector kernels — enumerating J over
/// [0, 2^(n-1)) and inserting a zero at the target bit visits exactly the
/// lower index of every amplitude pair, with no branches.
inline uint64_t insertZeroBit(uint64_t X, uint64_t M) {
  return ((X & ~(M - 1)) << 1) | (X & (M - 1));
}

/// Inserts 0 bits at each of \p K single-bit positions in \p Masks, which
/// must be sorted ascending (insertions at ascending positions never
/// disturb one another). Enumerating J over [0, 2^(n-K)) yields every index
/// whose pinned bits are clear, each exactly once and in increasing order.
inline uint64_t insertZeroBits(uint64_t X, const uint64_t *Masks,
                               unsigned K) {
  for (unsigned I = 0; I < K; ++I)
    X = insertZeroBit(X, Masks[I]);
  return X;
}

/// True if \p N is a power of two (and nonzero).
inline bool isPowerOf2(uint64_t N) { return N != 0 && std::has_single_bit(N); }

/// log2 of a power of two.
inline unsigned log2Exact(uint64_t N) {
  assert(isPowerOf2(N) && "log2Exact of non-power-of-2");
  return static_cast<unsigned>(std::countr_zero(N));
}

} // namespace asdf

#endif // ASDF_SUPPORT_BITUTILS_H
