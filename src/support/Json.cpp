//===- Json.cpp - Minimal JSON value, parser, and writer ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace asdf {
namespace json {

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

const std::string &Value::emptyString() {
  static const std::string Empty;
  return Empty;
}

Value Value::boolean(bool B) {
  Value V;
  V.TheKind = Kind::Bool;
  V.BoolVal = B;
  return V;
}

Value Value::number(double D) {
  Value V;
  V.TheKind = Kind::Number;
  // Locale-independent shortest round-trip formatting. The snprintf
  // "%.17g" this replaces obeyed LC_NUMERIC, so a comma-decimal locale
  // (e.g. de_DE) wrote "3,5" — corrupting every angle and timing field on
  // the wire. to_chars always writes '.' and parses back bit-exactly.
  char Buf[32];
  std::to_chars_result R = std::to_chars(Buf, Buf + sizeof(Buf), D);
  V.NumText.assign(Buf, R.ptr);
  return V;
}

Value Value::integer(uint64_t U) {
  Value V;
  V.TheKind = Kind::Number;
  V.NumText = std::to_string(U);
  return V;
}

Value Value::integer(int64_t I) {
  Value V;
  V.TheKind = Kind::Number;
  V.NumText = std::to_string(I);
  return V;
}

Value Value::str(std::string S) {
  Value V;
  V.TheKind = Kind::String;
  V.StrVal = std::move(S);
  return V;
}

Value Value::array() {
  Value V;
  V.TheKind = Kind::Array;
  return V;
}

Value Value::object() {
  Value V;
  V.TheKind = Kind::Object;
  return V;
}

bool Value::asBool(bool Default) const {
  return TheKind == Kind::Bool ? BoolVal : Default;
}

double Value::asDouble(double Default) const {
  if (TheKind != Kind::Number)
    return Default;
  // Locale-independent: strtod under a comma-decimal locale stops at the
  // '.' of "3.5" and returns 3.0, silently truncating every fractional
  // number read off the wire.
  double D = 0.0;
  const char *B = NumText.c_str();
  std::from_chars_result R = std::from_chars(B, B + NumText.size(), D);
  if (R.ec != std::errc())
    return Default;
  return D;
}

uint64_t Value::asU64(uint64_t Default) const {
  if (TheKind != Kind::Number || NumText.empty() || NumText[0] == '-')
    return Default;
  return std::strtoull(NumText.c_str(), nullptr, 10);
}

int64_t Value::asI64(int64_t Default) const {
  if (TheKind != Kind::Number)
    return Default;
  return std::strtoll(NumText.c_str(), nullptr, 10);
}

const std::string &Value::asString(const std::string &Default) const {
  return TheKind == Kind::String ? StrVal : Default;
}

const Value *Value::get(const std::string &Key) const {
  if (TheKind != Kind::Object)
    return nullptr;
  // Scan from the back: on duplicate keys the last occurrence wins, the
  // usual JSON-in-practice convention.
  for (auto It = Members.rbegin(); It != Members.rend(); ++It)
    if (It->first == Key)
      return &It->second;
  return nullptr;
}

void Value::set(const std::string &Key, Value V) {
  if (TheKind != Kind::Object)
    return;
  for (auto &[K, Existing] : Members)
    if (K == Key) {
      Existing = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

void Value::push(Value V) {
  if (TheKind == Kind::Array)
    Elements.push_back(std::move(V));
}

static void writeEscaped(const std::string &S, std::string &Out) {
  Out.push_back('"');
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
}

static void writeValue(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    break;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Value::Kind::Number:
    // NumText is either parser-validated JSON number syntax or produced by
    // our own formatters; Value::write() returns it verbatim.
    Out += V.write();
    break;
  case Value::Kind::String:
    writeEscaped(V.asString(), Out);
    break;
  case Value::Kind::Array: {
    Out.push_back('[');
    bool First = true;
    for (const Value &E : V.elements()) {
      if (!First)
        Out.push_back(',');
      First = false;
      writeValue(E, Out);
    }
    Out.push_back(']');
    break;
  }
  case Value::Kind::Object: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[K, M] : V.members()) {
      if (!First)
        Out.push_back(',');
      First = false;
      writeEscaped(K, Out);
      Out.push_back(':');
      writeValue(M, Out);
    }
    Out.push_back('}');
    break;
  }
  }
}

std::string Value::write() const {
  if (TheKind == Kind::Number)
    return NumText;
  std::string Out;
  writeValue(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  bool run(Value &Out, std::string &Error) {
    skipWs();
    if (!parseValue(Out))
      return fail(Error);
    skipWs();
    if (Pos != Text.size()) {
      Err = "trailing characters after JSON value";
      return fail(Error);
    }
    return true;
  }

private:
  bool fail(std::string &Error) {
    if (Err.empty())
      return true;
    Error = Err + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool error(const char *Message) {
    if (Err.empty())
      Err = Message;
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = std::char_traits<char>::length(Lit);
    if (Text.compare(Pos, N, Lit) != 0)
      return error("invalid literal");
    Pos += N;
    return true;
  }

  bool parseValue(Value &Out) {
    if (Pos >= Text.size())
      return error("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::str(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = Value::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value::boolean(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value::null();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Out = Value::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return error("expected object key string");
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return error("expected ':' after object key");
      ++Pos;
      skipWs();
      Value Member;
      if (!parseValue(Member))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (Pos >= Text.size())
        return error("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return error("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    Out = Value::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      Value Element;
      if (!parseValue(Element))
        return false;
      Out.Elements.push_back(std::move(Element));
      skipWs();
      if (Pos >= Text.size())
        return error("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return error("expected ',' or ']' in array");
    }
  }

  static void appendUtf8(unsigned Code, std::string &Out) {
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (Code >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return error("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return error("invalid \\u escape digit");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (true) {
      if (Pos >= Text.size())
        return error("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return error("raw control character in string");
      if (C != '\\') {
        Out.push_back(static_cast<char>(C));
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return error("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        unsigned Code;
        if (!parseHex4(Code))
          return false;
        // Combine surrogate pairs; a lone surrogate becomes U+FFFD.
        if (Code >= 0xD800 && Code <= 0xDBFF &&
            Text.compare(Pos, 2, "\\u") == 0) {
          size_t Save = Pos;
          Pos += 2;
          unsigned Low;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          else
            Pos = Save, Code = 0xFFFD;
        } else if (Code >= 0xD800 && Code <= 0xDFFF) {
          Code = 0xFFFD;
        }
        appendUtf8(Code, Out);
        break;
      }
      default:
        return error("unknown escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(
                                  Text[Pos])))
      return error("invalid number");
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
        return error("invalid number fraction");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
        return error("invalid number exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    Value V;
    V.TheKind = Value::Kind::Number;
    V.NumText = Text.substr(Start, Pos - Start);
    Out = std::move(V);
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

bool parse(const std::string &Text, Value &Out, std::string &Error) {
  return Parser(Text).run(Out, Error);
}

} // namespace json
} // namespace asdf
