//===- FaultInject.cpp - Deterministic fault-injection points -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#ifdef ASDF_FAULT_INJECTION

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace asdf;

namespace {

struct PointState {
  uint64_t Skip = 0;      ///< Evaluations to let pass before failing.
  uint64_t Remaining = 0; ///< Failures still to inject.
  uint64_t Evaluated = 0;
  uint64_t Fired = 0;
};

std::mutex M;
std::map<std::string, PointState> Points;

bool parseCount(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

} // namespace

bool fault::arm(const std::string &Spec, std::string &Error) {
  std::map<std::string, PointState> Fresh;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      Error = "fault spec item '" + Item + "' is not <point>=<count>[@skip]";
      return false;
    }
    std::string Name = Item.substr(0, Eq);
    std::string Counts = Item.substr(Eq + 1);
    PointState P;
    size_t At = Counts.find('@');
    if (!parseCount(At == std::string::npos ? Counts : Counts.substr(0, At),
                    P.Remaining) ||
        (At != std::string::npos &&
         !parseCount(Counts.substr(At + 1), P.Skip))) {
      Error = "fault spec item '" + Item + "' has a non-numeric count";
      return false;
    }
    Fresh[Name] = P;
  }
  std::lock_guard<std::mutex> Lock(M);
  // Re-arming preserves nothing: counters restart with the new spec, so a
  // test's assertions only see its own arming.
  Points = std::move(Fresh);
  return true;
}

void fault::armFromEnv() {
  const char *Env = std::getenv("ASDF_FAULTS");
  if (!Env || !*Env)
    return;
  std::string Error;
  if (!arm(Env, Error)) {
    std::fprintf(stderr, "fault-injection: bad ASDF_FAULTS: %s\n",
                 Error.c_str());
    std::abort(); // A mistyped fault must fail the test, not skip it.
  }
}

void fault::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Points.clear();
}

bool fault::shouldFail(const char *Point) {
  std::lock_guard<std::mutex> Lock(M);
  PointState &P = Points[Point];
  ++P.Evaluated;
  if (P.Skip > 0) {
    --P.Skip;
    return false;
  }
  if (P.Remaining == 0)
    return false;
  --P.Remaining;
  ++P.Fired;
  return true;
}

uint64_t fault::fired(const char *Point) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Points.find(Point);
  return It == Points.end() ? 0 : It->second.Fired;
}

uint64_t fault::evaluated(const char *Point) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Points.find(Point);
  return It == Points.end() ? 0 : It->second.Evaluated;
}

#endif // ASDF_FAULT_INJECTION
