//===- Diagnostics.cpp - Source locations and error reporting ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace asdf;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  std::ostringstream OS;
  OS << Line << ':' << Col;
  return OS.str();
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": ";
  switch (Level) {
  case DiagLevel::Error:
    OS << "error: ";
    break;
  case DiagLevel::Warning:
    OS << "warning: ";
    break;
  case DiagLevel::Note:
    OS << "note: ";
    break;
  }
  OS << Message;
  return OS.str();
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << '\n';
  return OS.str();
}
