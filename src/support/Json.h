//===- Json.h - Minimal JSON value, parser, and writer --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON layer of the asdfd wire protocol (docs/protocol.md): a small
/// value type plus a strict parser and a compact single-line writer. Two
/// properties matter for the service and are guaranteed here:
///
///   - Numbers keep their source text. A JSON double cannot represent a
///     64-bit seed exactly, so `asU64` re-parses the original digits and
///     `Value::integer` writes them back verbatim — seeds round-trip
///     bit-exactly through the protocol.
///   - The writer emits no raw newlines (control characters are escaped),
///     so any serialized value is a valid NDJSON line.
///
/// Object keys preserve insertion order; duplicate keys in parsed input
/// keep the last occurrence (lookup scans from the back).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_JSON_H
#define ASDF_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace asdf {
namespace json {

class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  static Value null() { return Value(); }
  static Value boolean(bool B);
  static Value number(double D);
  /// Integer-valued numbers written (and kept) as exact digit strings.
  static Value integer(uint64_t V);
  static Value integer(int64_t V);
  static Value str(std::string S);
  static Value array();
  static Value object();

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isObject() const { return TheKind == Kind::Object; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isString() const { return TheKind == Kind::String; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isBool() const { return TheKind == Kind::Bool; }

  //===--- Typed accessors (return the default on kind mismatch) ---===//

  bool asBool(bool Default = false) const;
  double asDouble(double Default = 0.0) const;
  /// Exact for any uint64 the peer wrote with Value::integer; parses the
  /// preserved digit text, not the double.
  uint64_t asU64(uint64_t Default = 0) const;
  int64_t asI64(int64_t Default = 0) const;
  const std::string &asString(const std::string &Default = emptyString())
      const;

  //===--- Object/array access ---===//

  /// Object member lookup; null if absent or not an object.
  const Value *get(const std::string &Key) const;
  /// Sets (or replaces) an object member. No-op unless isObject().
  void set(const std::string &Key, Value V);
  /// Appends an array element. No-op unless isArray().
  void push(Value V);

  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  const std::vector<Value> &elements() const { return Elements; }

  /// Serializes compactly on one line (NDJSON-safe: all control characters
  /// escaped).
  std::string write() const;

private:
  static const std::string &emptyString();

  Kind TheKind = Kind::Null;
  bool BoolVal = false;
  /// Number payload: the exact source/emitted text.
  std::string NumText;
  std::string StrVal;
  std::vector<Value> Elements;
  std::vector<std::pair<std::string, Value>> Members;

  friend class Parser;
};

/// Parses \p Text (one complete JSON value, surrounding whitespace OK).
/// Returns false and fills \p Error (with a byte offset) on malformed
/// input, including trailing garbage.
bool parse(const std::string &Text, Value &Out, std::string &Error);

} // namespace json
} // namespace asdf

#endif // ASDF_SUPPORT_JSON_H
