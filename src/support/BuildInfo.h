//===- BuildInfo.h - Build identity and fingerprint -----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identity of this build of the toolchain: version, compiler, build type,
/// whether ASDF_NATIVE_ARCH tuned the code for this machine, and the git
/// commit when known at configure time. Surfaced by `--version` on asdfc,
/// asdfd, and asdf-cli, and — critically — folded into the artifact-cache
/// key as `buildFingerprint()`, so cached artifacts never cross
/// incompatible builds: a daemon rebuilt with a different compiler, flags,
/// or source revision computes different keys and repopulates its cache
/// instead of serving stale artifacts.
///
/// The fields are baked in as compile definitions on BuildInfo.cpp only
/// (see CMakeLists.txt), so changing them recompiles one translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_BUILDINFO_H
#define ASDF_SUPPORT_BUILDINFO_H

#include <string>

namespace asdf {

/// Toolchain release version (advanced with the PR sequence).
#define ASDF_VERSION_STRING "0.6.0"

struct BuildInfo {
  std::string Version;    ///< ASDF_VERSION_STRING.
  std::string Compiler;   ///< e.g. "GNU 13.2.0".
  std::string BuildType;  ///< e.g. "Release".
  bool NativeArch;        ///< ASDF_NATIVE_ARCH was ON and supported.
  bool Sanitized;         ///< ASDF_SANITIZE build.
  std::string Commit;     ///< Short git commit at configure time, or
                          ///< "unknown" outside a git checkout.

  /// Human-readable multi-line description (the --version body).
  std::string str() const;
};

/// The identity of this binary's build.
const BuildInfo &buildInfo();

/// Stable one-line encoding of every BuildInfo field, the string hashed
/// into artifact-cache keys. Two binaries share a fingerprint exactly when
/// every identity field matches.
const std::string &buildFingerprint();

/// Prints `<tool> <version>` plus the BuildInfo body and the fingerprint
/// to stdout — the shared `--version` implementation of the three CLIs.
void printVersion(const char *Tool);

} // namespace asdf

#endif // ASDF_SUPPORT_BUILDINFO_H
