//===- Diagnostics.h - Source locations and error reporting --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting without exceptions. The frontend and type checker report
/// problems into a DiagnosticEngine; callers check `hadError()` after each
/// phase. Messages follow the LLVM style: start lowercase, no trailing
/// period.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_DIAGNOSTICS_H
#define ASDF_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace asdf {

/// A position in Qwerty DSL source text. Line and column are 1-based;
/// (0, 0) means "unknown location" (e.g. compiler-generated nodes).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  SourceLoc() = default;
  SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a diagnostic.
enum class DiagLevel { Error, Warning, Note };

/// One reported problem.
struct Diagnostic {
  DiagLevel Level;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced by a compilation phase.
///
/// This engine never throws and never exits; library code records errors and
/// returns a failure indicator (null pointer / false), and tools decide how
/// to surface the accumulated messages.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagLevel::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagLevel::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagLevel::Note, Loc, std::move(Message)});
  }

  bool hadError() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace asdf

#endif // ASDF_SUPPORT_DIAGNOSTICS_H
