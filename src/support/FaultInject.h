//===- FaultInject.h - Deterministic fault-injection points ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault points for testing the service's recovery paths. A fault
/// point is a call to `fault::shouldFail("name")` at the place where a
/// real failure could happen (a disk write, a wire write, a compile
/// allocation); tests arm points by name and count so the Nth disk write
/// fails deterministically, with no timing or /dev/fault dependence.
///
/// The whole harness is compile-gated by ASDF_FAULT_INJECTION: in normal
/// builds every function is an inline no-op (`shouldFail` is a constant
/// false the optimizer deletes), so production binaries carry no fault
/// plumbing. CI builds one configuration with the gate ON and runs the
/// recovery suites against it.
///
/// Arming sources, in priority order:
///  - programmatic: `fault::arm("disk.write=1")` from a test;
///  - environment:  ASDF_FAULTS="disk.write=1,wire.torn-write=2@1"
///    (read once by `armFromEnv()`, which asdfd calls at startup — the
///    only way to arm a *spawned* daemon);
///  - wire: the test-only request field "fault" (docs/protocol.md),
///    accepted only by fault-injection builds.
///
/// Spec grammar: comma-separated `point=N` (the next N evaluations of
/// `point` fail) or `point=N@S` (skip S evaluations first, then fail N).
///
/// Points currently wired in (grep for the literal to find the site):
///   disk.write        DiskCache::put: the artifact write fails cleanly.
///   disk.torn-write   DiskCache::put: the file is truncated mid-payload
///                     (a torn write a crash could leave behind).
///   disk.read-corrupt DiskCache::get: a payload byte flips on read, as
///                     if the medium rotted under the checksum.
///   wire.torn-write   Server response write: half the line is sent, then
///                     the connection drops.
///   worker.stall      JobQueue worker: 150 ms stall before the job runs.
///   compile.bad-alloc Service compile: the compiler throws bad_alloc.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_FAULTINJECT_H
#define ASDF_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <string>

namespace asdf {
namespace fault {

#ifdef ASDF_FAULT_INJECTION

inline constexpr bool Compiled = true;

/// Replaces the current arming with \p Spec (see the grammar above; the
/// empty string disarms everything). False + \p Error on a malformed spec.
bool arm(const std::string &Spec, std::string &Error);

/// Arms from $ASDF_FAULTS if set (malformed values abort loudly: a test
/// that mistypes a fault name must not silently pass). Called by asdfd at
/// startup.
void armFromEnv();

/// Disarms every point and zeroes all counters.
void reset();

/// True if the named point should fail this evaluation. Every evaluation
/// is counted, armed or not, so tests can assert a path was exercised.
bool shouldFail(const char *Point);

/// How many evaluations of \p Point actually failed.
uint64_t fired(const char *Point);

/// How many times \p Point was evaluated.
uint64_t evaluated(const char *Point);

#else

inline constexpr bool Compiled = false;

inline bool arm(const std::string &, std::string &Error) {
  Error = "fault injection is not compiled into this build "
          "(configure with -DASDF_FAULT_INJECTION=ON)";
  return false;
}
inline void armFromEnv() {}
inline void reset() {}
inline bool shouldFail(const char *) { return false; }
inline uint64_t fired(const char *) { return 0; }
inline uint64_t evaluated(const char *) { return 0; }

#endif // ASDF_FAULT_INJECTION

} // namespace fault
} // namespace asdf

#endif // ASDF_SUPPORT_FAULTINJECT_H
