//===- BuildInfo.cpp - Build identity and fingerprint ---------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

#include "support/Hash.h"

#include <cstdio>

// CMake defines these on this translation unit only; the fallbacks keep
// ad-hoc builds (e.g. a bare `g++` invocation in a test harness) working.
#ifndef ASDF_BUILD_COMPILER
#define ASDF_BUILD_COMPILER "unknown"
#endif
#ifndef ASDF_BUILD_TYPE
#define ASDF_BUILD_TYPE "unknown"
#endif
#ifndef ASDF_BUILD_NATIVE_ARCH
#define ASDF_BUILD_NATIVE_ARCH 0
#endif
#ifndef ASDF_BUILD_SANITIZE
#define ASDF_BUILD_SANITIZE 0
#endif
#ifndef ASDF_BUILD_COMMIT
#define ASDF_BUILD_COMMIT "unknown"
#endif

namespace asdf {

const BuildInfo &buildInfo() {
  static const BuildInfo Info = [] {
    BuildInfo I;
    I.Version = ASDF_VERSION_STRING;
    I.Compiler = ASDF_BUILD_COMPILER;
    I.BuildType = ASDF_BUILD_TYPE;
    I.NativeArch = ASDF_BUILD_NATIVE_ARCH != 0;
    I.Sanitized = ASDF_BUILD_SANITIZE != 0;
    I.Commit = ASDF_BUILD_COMMIT;
    return I;
  }();
  return Info;
}

std::string BuildInfo::str() const {
  std::string S;
  S += "build: " + Compiler + ", " + BuildType;
  S += NativeArch ? ", native-arch=on" : ", native-arch=off";
  if (Sanitized)
    S += ", sanitize=on";
  S += ", commit " + Commit;
  return S;
}

const std::string &buildFingerprint() {
  static const std::string Fingerprint = [] {
    const BuildInfo &I = buildInfo();
    // A readable canonical encoding rather than a hash: the cache key
    // hashes it anyway, and a readable fingerprint is directly
    // comparable in --version output and stats payloads.
    std::string S = "asdf-" + I.Version + ";" + I.Compiler + ";" +
                    I.BuildType + ";native=" +
                    (I.NativeArch ? "1" : "0") + ";sanitize=" +
                    (I.Sanitized ? "1" : "0") + ";commit=" + I.Commit;
    return S;
  }();
  return Fingerprint;
}

void printVersion(const char *Tool) {
  std::printf("%s %s\n%s\nfingerprint: %s\n", Tool, ASDF_VERSION_STRING,
              buildInfo().str().c_str(), buildFingerprint().c_str());
}

} // namespace asdf
