//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's hand-rolled RTTI helpers. A class
/// hierarchy opts in by providing a `static bool classof(const Base *)`
/// predicate on each derived class (usually testing a Kind discriminator).
/// RTTI and exceptions are disabled by convention in this codebase, matching
/// the LLVM coding standards.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_CASTING_H
#define ASDF_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace asdf {

/// Returns true if \p Val is an instance of \p To (or any of the listed
/// types, checked left to right).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename Second, typename... Rest, typename From>
std::enable_if_t<sizeof...(Rest) != 0 || !std::is_same_v<Second, void>, bool>
isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null argument (returning null).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace asdf

#endif // ASDF_SUPPORT_CASTING_H
