//===- Hash.h - Stable streaming content hashing --------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit streaming content hasher for cache keys: two independent
/// FNV-1a 64 streams finished through the splitmix64 mixer. The hash is a
/// pure function of the bytes fed in — no pointers, no iteration order of
/// unordered containers, no ASLR — so the same logical content produces
/// the same key in every process on every run, which is exactly the
/// contract the service's content-addressed artifact cache needs.
///
/// Fields are fed length-prefixed (`str`) so that concatenation is
/// unambiguous: ("ab", "c") and ("a", "bc") hash differently. This is a
/// fast cache hash, not a cryptographic one; 128 bits makes accidental
/// collisions astronomically unlikely, and the cache is an optimization
/// layer, not a trust boundary.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SUPPORT_HASH_H
#define ASDF_SUPPORT_HASH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace asdf {

class ContentHasher {
public:
  /// Feeds \p N raw bytes. Prefer the typed feeders below, which make the
  /// encoding self-delimiting.
  void bytes(const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < N; ++I) {
      Lo = (Lo ^ P[I]) * 0x100000001b3ULL;
      Hi = (Hi ^ P[I]) * 0x100000001b3ULL;
    }
  }

  /// Feeds a 64-bit value as 8 little-endian bytes (host-order independent).
  void u64(uint64_t V) {
    unsigned char B[8];
    for (int I = 0; I < 8; ++I)
      B[I] = static_cast<unsigned char>(V >> (8 * I));
    bytes(B, 8);
  }

  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  /// Feeds a string length-prefixed, so field boundaries are unambiguous.
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  /// The 128-bit digest. Each stream runs through the splitmix64 finalizer
  /// (FNV's low bits mix weakly), then the streams are cross-mixed so the
  /// halves are not trivially correlated.
  std::array<uint64_t, 2> digest() const {
    uint64_t A = mix(Lo);
    uint64_t B = mix(Hi ^ A);
    return {mix(A ^ (B >> 32)), B};
  }

private:
  static uint64_t mix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  // Two distinct FNV-1a offset bases; the second is the first advanced by
  // one step over the byte 0x5c so the streams never coincide.
  uint64_t Lo = 0xcbf29ce484222325ULL;
  uint64_t Hi = 0xaf63bd4c8601b7dfULL;
};

} // namespace asdf

#endif // ASDF_SUPPORT_HASH_H
