//===- Fusion.cpp - Gate fusion for the dense execution plan --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Fusion.h"

#include "noise/NoiseModel.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace asdf;

using Cplx = std::complex<double>;

Mat2 asdf::matmul(const Mat2 &A, const Mat2 &B) {
  Mat2 R;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      R.M[I][J] = A.M[I][0] * B.M[0][J] + A.M[I][1] * B.M[1][J];
  return R;
}

Mat2 asdf::gateMatrix2(GateKind G, double Theta) {
  const double S2 = 1.0 / std::sqrt(2.0);
  const Cplx I(0.0, 1.0);
  switch (G) {
  case GateKind::X:
    return {{{0, 1}, {1, 0}}};
  case GateKind::Y:
    return {{{0, -I}, {I, 0}}};
  case GateKind::Z:
    return {{{1, 0}, {0, -1}}};
  case GateKind::H:
    return {{{S2, S2}, {S2, -S2}}};
  case GateKind::S:
    return {{{1, 0}, {0, I}}};
  case GateKind::Sdg:
    return {{{1, 0}, {0, -I}}};
  case GateKind::T:
    return {{{1, 0}, {0, std::exp(I * (M_PI / 4.0))}}};
  case GateKind::Tdg:
    return {{{1, 0}, {0, std::exp(-I * (M_PI / 4.0))}}};
  case GateKind::P:
    return {{{1, 0}, {0, std::exp(I * Theta)}}};
  case GateKind::RX:
    return {{{std::cos(Theta / 2), -I * std::sin(Theta / 2)},
             {-I * std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RY:
    return {{{std::cos(Theta / 2), -std::sin(Theta / 2)},
             {std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RZ:
    return {{{std::exp(-I * (Theta / 2)), 0},
             {0, std::exp(I * (Theta / 2))}}};
  case GateKind::Swap:
    break;
  }
  assert(false && "no 2x2 matrix for this gate");
  return Mat2::identity();
}

namespace {

/// The phases a diagonal gate puts on |0> and |1> of its target (applied
/// only where every control reads 1). False for non-diagonal gates.
bool diagonalPhases(GateKind G, double Theta, Cplx &P0, Cplx &P1) {
  const Cplx I(0.0, 1.0);
  P0 = Cplx(1.0, 0.0);
  switch (G) {
  case GateKind::Z:
    P1 = Cplx(-1.0, 0.0);
    return true;
  case GateKind::S:
    P1 = I;
    return true;
  case GateKind::Sdg:
    P1 = -I;
    return true;
  case GateKind::T:
    P1 = std::exp(I * (M_PI / 4.0));
    return true;
  case GateKind::Tdg:
    P1 = std::exp(-I * (M_PI / 4.0));
    return true;
  case GateKind::P:
    P1 = std::exp(I * Theta);
    return true;
  case GateKind::RZ:
    P0 = std::exp(-I * (Theta / 2));
    P1 = std::exp(I * (Theta / 2));
    return true;
  default:
    return false;
  }
}

} // namespace

std::vector<Cplx> asdf::blockMatmul(const std::vector<Cplx> &A,
                                    const std::vector<Cplx> &B,
                                    unsigned Dim) {
  assert(A.size() == size_t(Dim) * Dim && B.size() == size_t(Dim) * Dim);
  std::vector<Cplx> R(size_t(Dim) * Dim, Cplx(0.0, 0.0));
  for (unsigned I = 0; I < Dim; ++I)
    for (unsigned K = 0; K < Dim; ++K) {
      Cplx AIK = A[size_t(I) * Dim + K];
      if (AIK == Cplx(0.0, 0.0))
        continue;
      for (unsigned J = 0; J < Dim; ++J)
        R[size_t(I) * Dim + J] += AIK * B[size_t(K) * Dim + J];
    }
  return R;
}

std::vector<Cplx>
asdf::gateBlockMatrix(const CircuitInstr &I,
                      const std::vector<unsigned> &Support) {
  assert(I.TheKind == CircuitInstr::Kind::Gate && "gate instructions only");
  const unsigned M = Support.size();
  assert(M <= MaxFuseQubits && "support too wide for a block matrix");
  const unsigned Dim = 1u << M;
  // Local bit of Support[j]: MSB-first, matching the global convention.
  auto LocalBit = [&](unsigned Q) -> unsigned {
    for (unsigned J = 0; J < M; ++J)
      if (Support[J] == Q)
        return 1u << (M - 1 - J);
    assert(false && "qubit not in support");
    return 0;
  };
  unsigned CtlMask = 0;
  for (unsigned C : I.Controls)
    CtlMask |= LocalBit(C);

  std::vector<Cplx> R(size_t(Dim) * Dim, Cplx(0.0, 0.0));
  if (I.Gate == GateKind::Swap) {
    assert(I.Targets.size() == 2);
    unsigned BitA = LocalBit(I.Targets[0]), BitB = LocalBit(I.Targets[1]);
    for (unsigned Col = 0; Col < Dim; ++Col) {
      unsigned Row = Col;
      if ((Col & CtlMask) == CtlMask) {
        Row = Col & ~(BitA | BitB);
        if (Col & BitA)
          Row |= BitB;
        if (Col & BitB)
          Row |= BitA;
      }
      R[size_t(Row) * Dim + Col] = Cplx(1.0, 0.0);
    }
    return R;
  }

  assert(I.Targets.size() == 1);
  unsigned Bit = LocalBit(I.Targets[0]);
  Mat2 U = gateMatrix2(I.Gate, I.Param);
  for (unsigned Col = 0; Col < Dim; ++Col) {
    if ((Col & CtlMask) != CtlMask) {
      R[size_t(Col) * Dim + Col] = Cplx(1.0, 0.0);
      continue;
    }
    unsigned Tv = (Col & Bit) ? 1 : 0;
    R[size_t(Col & ~Bit) * Dim + Col] = U.M[0][Tv];
    R[size_t(Col | Bit) * Dim + Col] = U.M[1][Tv];
  }
  return R;
}

namespace {

/// Expands matrix \p U over qubit set \p From into qubit set \p To
/// (From subset of To, both sorted ascending): identity tensors in on the
/// extra qubits, respecting the MSB-first local basis convention.
std::vector<Cplx> embedBlockMatrix(const std::vector<Cplx> &U,
                                   const std::vector<unsigned> &From,
                                   const std::vector<unsigned> &To) {
  const unsigned MF = From.size(), MT = To.size();
  const unsigned DimF = 1u << MF, DimT = 1u << MT;
  if (From == To)
    return U;
  // For each To basis index, precompute its From sub-index and the
  // spectator remainder (the bits outside From, packed in order).
  std::vector<unsigned> SubIdx(DimT), RestIdx(DimT);
  std::vector<int> FromPos(MT, -1);
  for (unsigned J = 0, F = 0; J < MT; ++J) {
    if (F < MF && To[J] == From[F])
      FromPos[J] = static_cast<int>(F++);
  }
  for (unsigned B = 0; B < DimT; ++B) {
    unsigned Sub = 0, Rest = 0;
    for (unsigned J = 0; J < MT; ++J) {
      unsigned BitVal = (B >> (MT - 1 - J)) & 1;
      if (FromPos[J] >= 0)
        Sub = (Sub << 1) | BitVal;
      else
        Rest = (Rest << 1) | BitVal;
    }
    SubIdx[B] = Sub;
    RestIdx[B] = Rest;
  }
  std::vector<Cplx> R(size_t(DimT) * DimT, Cplx(0.0, 0.0));
  for (unsigned Row = 0; Row < DimT; ++Row)
    for (unsigned Col = 0; Col < DimT; ++Col)
      if (RestIdx[Row] == RestIdx[Col])
        R[size_t(Row) * DimT + Col] =
            U[size_t(SubIdx[Row]) * DimF + SubIdx[Col]];
  return R;
}

bool isDiagonalBlock(const std::vector<Cplx> &U, unsigned Dim) {
  for (unsigned Row = 0; Row < Dim; ++Row)
    for (unsigned Col = 0; Col < Dim; ++Col)
      if (Row != Col && U[size_t(Row) * Dim + Col] != Cplx(0.0, 0.0))
        return false;
  return true;
}

} // namespace

std::string FusedCircuit::summary() const {
  std::string S = std::to_string(GatesIn) + " gates -> " +
                  std::to_string(Ops.size()) + " ops (" +
                  std::to_string(GatesFused) + " fused";
  if (BlocksFormed)
    S += ", " + std::to_string(BlocksFormed) + " blocks <= " +
         std::to_string(WidestBlock) + "q";
  S += ", " + std::to_string(SweepsCoalesced) + " sweep entries coalesced)";
  return S;
}

bool asdf::isFusionBarrier(const CircuitInstr &I) {
  return I.TheKind != CircuitInstr::Kind::Gate || I.CondBit >= 0;
}

FusedCircuit asdf::fuseCircuit(const Circuit &C, const NoiseModel *Noise,
                               unsigned MaxBlockQubits,
                               FusionRecipe *Recipe) {
  obs::Span Sp("fuse", "fusion");
  FusedCircuit FC;
  FC.Source = &C;
  const unsigned N = C.NumQubits;
  const unsigned MaxK =
      MaxBlockQubits < 1 ? 1
      : MaxBlockQubits > MaxFuseQubits ? MaxFuseQubits
                                       : MaxBlockQubits;
  auto QubitBit = [&](unsigned Q) { return uint64_t(1) << (N - 1 - Q); };
  if (Recipe) {
    *Recipe = FusionRecipe();
    Recipe->NumInstrs = C.Instrs.size();
  }

  /// An open accumulation of adjacent gates over one (disjoint) support.
  struct OpenBlock {
    std::vector<unsigned> Qubits; ///< Sorted ascending.
    std::vector<Cplx> U;          ///< 2^m x 2^m, MSB-first local basis.
    unsigned Count = 0;           ///< Gates absorbed.
    size_t OnlyInstr = 0;         ///< Source index, meaningful at Count 1.
    int Node = -1;                ///< Recipe node, when recording.
  };
  std::vector<OpenBlock> Open;
  bool PrefixOpen = true;

  // Recording hooks: a new recipe node per block construction, an event
  // per plan emission. All no-ops when Recipe is null.
  auto recordNode = [&](size_t Idx, const std::vector<unsigned> &Qubits,
                        std::vector<int> Children, bool Direct,
                        const std::vector<Cplx> &U) -> int {
    if (!Recipe)
      return -1;
    FusionRecipe::Node Nd;
    Nd.InstrIndex = Idx;
    Nd.Qubits = Qubits;
    Nd.Direct = Direct;
    Nd.Symbolic = C.Instrs[Idx].isSymbolic();
    for (int Ch : Children)
      if (Recipe->Nodes[Ch].Symbolic)
        Nd.Symbolic = true;
    Nd.Children = std::move(Children);
    Nd.CachedU = U;
    Recipe->Nodes.push_back(std::move(Nd));
    return static_cast<int>(Recipe->Nodes.size() - 1);
  };
  auto recordEvent = [&](FusionRecipe::Event E) {
    if (Recipe)
      Recipe->Events.push_back(E);
  };
  auto recordPrefix = [&] {
    if (Recipe)
      Recipe->PrefixEvents = Recipe->Events.size();
  };

  auto emitInstr = [&](size_t Idx) {
    FusedOp Op;
    Op.TheKind = FusedOp::Kind::Instr;
    Op.InstrIndex = Idx;
    FC.Ops.push_back(std::move(Op));
    recordEvent({FusionRecipe::Event::Kind::Instr, Idx, -1, 0, 0});
  };

  // Diagonal ops commute, so an entry landing directly after another
  // diagonal op merges into it: one memory pass applies both.
  auto emitDiagEntry = [&](DiagEntry E) {
    if (!FC.Ops.empty() && FC.Ops.back().TheKind == FusedOp::Kind::Diag) {
      FC.Ops.back().Diag.push_back(E);
      ++FC.SweepsCoalesced;
      return;
    }
    FusedOp Op;
    Op.TheKind = FusedOp::Kind::Diag;
    Op.Diag.push_back(E);
    FC.Ops.push_back(std::move(Op));
  };

  auto flushBlock = [&](OpenBlock &B) {
    if (B.Count == 0)
      return;
    if (B.Count == 1) {
      // A lone gate keeps its specialized engine kernel (and bit-exact
      // arithmetic): pass it through instead of wrapping it in a matrix.
      emitInstr(B.OnlyInstr);
      return;
    }
    // The Diag-vs-Unitary choice below depends on angle values, so the
    // recipe records only the flush itself; rebind re-decides from the
    // rebuilt matrix, exactly as this code does.
    recordEvent({FusionRecipe::Event::Kind::Run, 0, B.Node, 0, 0});
    FC.GatesFused += B.Count;
    if (B.Qubits.size() == 1) {
      // A run that never grew past one wire keeps the cheap 2x2 kernels.
      Mat2 U2{{{B.U[0], B.U[1]}, {B.U[2], B.U[3]}}};
      if (U2.isDiagonal()) {
        emitDiagEntry({0, QubitBit(B.Qubits[0]), U2.M[0][0], U2.M[1][1]});
        return;
      }
      FusedOp Op;
      Op.TheKind = FusedOp::Kind::Unitary;
      Op.Target = B.Qubits[0];
      Op.U = U2;
      FC.Ops.push_back(std::move(Op));
      return;
    }
    ++FC.BlocksFormed;
    if (B.Qubits.size() > FC.WidestBlock)
      FC.WidestBlock = B.Qubits.size();
    FusedOp Op;
    Op.TheKind = FusedOp::Kind::Block;
    Op.Qubits = std::move(B.Qubits);
    Op.BlockU = std::move(B.U);
    FC.Ops.push_back(std::move(Op));
  };
  // Flushes (in creation order — open supports are pairwise disjoint, so
  // any order is exact) every open block whose support intersects \p Qs,
  // or every block when \p Qs is null.
  auto flushTouching = [&](const std::vector<unsigned> *Qs) {
    std::vector<OpenBlock> Kept;
    Kept.reserve(Open.size());
    for (OpenBlock &B : Open) {
      bool Touches = Qs == nullptr;
      if (Qs)
        for (unsigned Q : *Qs)
          if (std::find(B.Qubits.begin(), B.Qubits.end(), Q) !=
              B.Qubits.end()) {
            Touches = true;
            break;
          }
      if (Touches)
        flushBlock(B);
      else
        Kept.push_back(std::move(B));
    }
    Open = std::move(Kept);
  };
  auto flushAll = [&] { flushTouching(nullptr); };

  for (size_t Idx = 0; Idx < C.Instrs.size(); ++Idx) {
    const CircuitInstr &I = C.Instrs[Idx];

    // Measurement, reset, and feed-forward are full barriers: randomness
    // and classical control must see exactly the state the unfused program
    // would have at this point. They also close the shared prefix.
    if (isFusionBarrier(I)) {
      flushAll();
      if (PrefixOpen) {
        FC.UnconditionalPrefixOps = FC.Ops.size();
        recordPrefix();
        PrefixOpen = false;
      }
      if (I.TheKind == CircuitInstr::Kind::Gate)
        ++FC.GatesIn;
      emitInstr(Idx);
      continue;
    }

    ++FC.GatesIn;

    // Channel barrier: trajectory sampling right after a noisy gate must
    // see the exact unfused state in program order, and it consumes
    // per-shot randomness — so the gate passes through unfused and closes
    // the shared prefix.
    if (Noise && Noise->affectsGate(I)) {
      flushAll();
      if (PrefixOpen) {
        FC.UnconditionalPrefixOps = FC.Ops.size();
        recordPrefix();
        PrefixOpen = false;
      }
      emitInstr(Idx);
      continue;
    }

    // The gate's support: targets plus controls, sorted and deduplicated
    // (duplicate controls OR into one mask bit in the engines, and they
    // collapse the same way in a block matrix — only a control landing ON
    // a target is special).
    std::vector<unsigned> S = I.Targets;
    S.insert(S.end(), I.Controls.begin(), I.Controls.end());
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());

    bool CtlOnTarget = false;
    for (unsigned T : I.Targets)
      for (unsigned Ctl : I.Controls)
        if (Ctl == T)
          CtlOnTarget = true;
    if (I.Gate != GateKind::Swap && CtlOnTarget) {
      // Degenerate control == target has always been a no-op in the
      // engines; the plan drops it outright.
      ++FC.GatesFused;
      continue;
    }
    if (I.Gate == GateKind::Swap &&
        (CtlOnTarget || I.Targets[0] == I.Targets[1])) {
      // A swap sharing a control with a target (or swapping a qubit with
      // itself) has engine-specific semantics; pass it through rather
      // than modeling it as a matrix.
      flushTouching(&S);
      emitInstr(Idx);
      continue;
    }

    Cplx P0, P1;
    bool IsDiag = I.Targets.size() == 1 &&
                  diagonalPhases(I.Gate, I.Param, P0, P1);

    // Which open blocks does this gate touch, and how wide would the
    // merged support be?
    std::vector<unsigned> Union = S;
    bool AnyOverlap = false;
    for (const OpenBlock &B : Open) {
      bool Touches = false;
      for (unsigned Q : B.Qubits)
        if (std::find(S.begin(), S.end(), Q) != S.end()) {
          Touches = true;
          break;
        }
      if (!Touches)
        continue;
      AnyOverlap = true;
      for (unsigned Q : B.Qubits)
        if (std::find(Union.begin(), Union.end(), Q) == Union.end())
          Union.push_back(Q);
    }
    std::sort(Union.begin(), Union.end());

    // A controlled diagonal landing on untouched wires is cheapest as a
    // coalesced sweep entry — no gather/scatter, any control count.
    if (IsDiag && !I.Controls.empty() && !AnyOverlap) {
      uint64_t CtlMask = 0;
      for (unsigned Ctl : I.Controls)
        CtlMask |= QubitBit(Ctl);
      ++FC.GatesFused;
      recordEvent({FusionRecipe::Event::Kind::DiagGate, Idx, -1, CtlMask,
                   QubitBit(I.Targets[0])});
      emitDiagEntry({CtlMask, QubitBit(I.Targets[0]), P0, P1});
      continue;
    }

    if (Union.size() > MaxK) {
      // Merging would blow the block budget: flush what it touches, then
      // place the gate on its own.
      flushTouching(&S);
      if (S.size() > MaxK) {
        // Support too wide for any block. Wide diagonals still coalesce
        // into a sweep entry; everything else passes through.
        if (IsDiag) {
          uint64_t CtlMask = 0;
          for (unsigned Ctl : I.Controls)
            CtlMask |= QubitBit(Ctl);
          ++FC.GatesFused;
          recordEvent({FusionRecipe::Event::Kind::DiagGate, Idx, -1, CtlMask,
                       QubitBit(I.Targets[0])});
          emitDiagEntry({CtlMask, QubitBit(I.Targets[0]), P0, P1});
        } else {
          emitInstr(Idx);
        }
        continue;
      }
      OpenBlock B;
      B.Qubits = S;
      B.U = gateBlockMatrix(I, S);
      B.Count = 1;
      B.OnlyInstr = Idx;
      B.Node = recordNode(Idx, S, {}, /*Direct=*/true, B.U);
      Open.push_back(std::move(B));
      continue;
    }

    // Merge the touched blocks (disjoint supports commute, so any
    // multiplication order is exact) and fold the gate in on top.
    OpenBlock Merged;
    Merged.Qubits = Union;
    const unsigned Dim = 1u << Union.size();
    Merged.U.assign(size_t(Dim) * Dim, Cplx(0.0, 0.0));
    for (unsigned D = 0; D < Dim; ++D)
      Merged.U[size_t(D) * Dim + D] = Cplx(1.0, 0.0);
    std::vector<OpenBlock> Kept;
    std::vector<int> FoldedNodes;
    Kept.reserve(Open.size());
    for (OpenBlock &B : Open) {
      bool Touches = false;
      for (unsigned Q : B.Qubits)
        if (std::find(S.begin(), S.end(), Q) != S.end()) {
          Touches = true;
          break;
        }
      if (!Touches) {
        Kept.push_back(std::move(B));
        continue;
      }
      Merged.U = blockMatmul(embedBlockMatrix(B.U, B.Qubits, Union),
                             Merged.U, Dim);
      Merged.Count += B.Count;
      FoldedNodes.push_back(B.Node);
    }
    Merged.U = blockMatmul(gateBlockMatrix(I, Union), Merged.U, Dim);
    if (++Merged.Count == 1)
      Merged.OnlyInstr = Idx;
    Merged.Node = recordNode(Idx, Union, std::move(FoldedNodes),
                             /*Direct=*/false, Merged.U);
    Open = std::move(Kept);
    Open.push_back(std::move(Merged));
  }

  flushAll();
  if (PrefixOpen) {
    FC.UnconditionalPrefixOps = FC.Ops.size();
    recordPrefix();
  }
  if (Recipe) {
    Recipe->GatesIn = FC.GatesIn;
    Recipe->GatesFused = FC.GatesFused;
    Recipe->BlocksFormed = FC.BlocksFormed;
    Recipe->WidestBlock = FC.WidestBlock;
    Recipe->Valid = true;
  }
  return FC;
}

FusedCircuit asdf::rebindFusedCircuit(const FusionRecipe &R,
                                      const Circuit &Bound) {
  obs::Span Sp("rebind", "fusion");
  assert(R.Valid && "recipe was never recorded");
  assert(R.NumInstrs == Bound.Instrs.size() &&
         "recipe recorded from a different circuit");
  FusedCircuit FC;
  FC.Source = &Bound;
  FC.GatesIn = R.GatesIn;
  FC.GatesFused = R.GatesFused;
  FC.BlocksFormed = R.BlocksFormed;
  FC.WidestBlock = R.WidestBlock;
  const unsigned N = Bound.NumQubits;
  auto QubitBit = [&](unsigned Q) { return uint64_t(1) << (N - 1 - Q); };

  // Re-materialize the block matrices bottom-up (children always precede
  // parents in the node list). Non-symbolic subtrees keep the recorded
  // matrix: their gates' angles are the same on every bind, so the
  // recording run already computed the exact value. Symbolic subtrees
  // replay the identical construction fuseCircuit used — identity seed,
  // children in fold order, gate on top — so every entry rounds exactly
  // as a fresh fuse of the bound circuit would.
  std::vector<std::vector<Cplx>> Computed(R.Nodes.size());
  std::vector<const std::vector<Cplx> *> NodeU(R.Nodes.size());
  for (size_t Ni = 0; Ni < R.Nodes.size(); ++Ni) {
    const FusionRecipe::Node &Nd = R.Nodes[Ni];
    if (!Nd.Symbolic) {
      NodeU[Ni] = &Nd.CachedU;
      continue;
    }
    const CircuitInstr &Gate = Bound.Instrs[Nd.InstrIndex];
    if (Nd.Direct) {
      Computed[Ni] = gateBlockMatrix(Gate, Nd.Qubits);
    } else {
      const unsigned Dim = 1u << Nd.Qubits.size();
      std::vector<Cplx> U(size_t(Dim) * Dim, Cplx(0.0, 0.0));
      for (unsigned D = 0; D < Dim; ++D)
        U[size_t(D) * Dim + D] = Cplx(1.0, 0.0);
      for (int Ch : Nd.Children)
        U = blockMatmul(
            embedBlockMatrix(*NodeU[Ch], R.Nodes[Ch].Qubits, Nd.Qubits), U,
            Dim);
      U = blockMatmul(gateBlockMatrix(Gate, Nd.Qubits), U, Dim);
      Computed[Ni] = std::move(U);
    }
    NodeU[Ni] = &Computed[Ni];
  }

  // Replay the emission log with the same coalescing rules fuseCircuit
  // applies, re-deciding the angle-dependent Diag-vs-Unitary flushes from
  // the rebuilt matrices.
  auto emitDiagEntry = [&](DiagEntry E) {
    if (!FC.Ops.empty() && FC.Ops.back().TheKind == FusedOp::Kind::Diag) {
      FC.Ops.back().Diag.push_back(E);
      ++FC.SweepsCoalesced;
      return;
    }
    FusedOp Op;
    Op.TheKind = FusedOp::Kind::Diag;
    Op.Diag.push_back(E);
    FC.Ops.push_back(std::move(Op));
  };
  for (size_t Ei = 0; Ei < R.Events.size(); ++Ei) {
    if (Ei == R.PrefixEvents)
      FC.UnconditionalPrefixOps = FC.Ops.size();
    const FusionRecipe::Event &E = R.Events[Ei];
    switch (E.TheKind) {
    case FusionRecipe::Event::Kind::Instr: {
      FusedOp Op;
      Op.TheKind = FusedOp::Kind::Instr;
      Op.InstrIndex = E.InstrIndex;
      FC.Ops.push_back(std::move(Op));
      break;
    }
    case FusionRecipe::Event::Kind::DiagGate: {
      const CircuitInstr &I = Bound.Instrs[E.InstrIndex];
      Cplx P0, P1;
      bool IsDiag = diagonalPhases(I.Gate, I.Param, P0, P1);
      assert(IsDiag && "recorded diagonal gate is not diagonal");
      (void)IsDiag;
      emitDiagEntry({E.CtlMask, E.TargetBit, P0, P1});
      break;
    }
    case FusionRecipe::Event::Kind::Run: {
      const FusionRecipe::Node &Nd = R.Nodes[E.Node];
      const std::vector<Cplx> &U = *NodeU[E.Node];
      if (Nd.Qubits.size() == 1) {
        Mat2 U2{{{U[0], U[1]}, {U[2], U[3]}}};
        if (U2.isDiagonal()) {
          emitDiagEntry({0, QubitBit(Nd.Qubits[0]), U2.M[0][0], U2.M[1][1]});
          break;
        }
        FusedOp Op;
        Op.TheKind = FusedOp::Kind::Unitary;
        Op.Target = Nd.Qubits[0];
        Op.U = U2;
        FC.Ops.push_back(std::move(Op));
        break;
      }
      FusedOp Op;
      Op.TheKind = FusedOp::Kind::Block;
      Op.Qubits = Nd.Qubits;
      Op.BlockU = U;
      FC.Ops.push_back(std::move(Op));
      break;
    }
    }
  }
  if (R.PrefixEvents == R.Events.size())
    FC.UnconditionalPrefixOps = FC.Ops.size();
  return FC;
}
