//===- Fusion.cpp - Gate fusion for the dense execution plan --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Fusion.h"

#include "noise/NoiseModel.h"

#include <cassert>
#include <cmath>

using namespace asdf;

using Cplx = std::complex<double>;

Mat2 asdf::matmul(const Mat2 &A, const Mat2 &B) {
  Mat2 R;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      R.M[I][J] = A.M[I][0] * B.M[0][J] + A.M[I][1] * B.M[1][J];
  return R;
}

Mat2 asdf::gateMatrix2(GateKind G, double Theta) {
  const double S2 = 1.0 / std::sqrt(2.0);
  const Cplx I(0.0, 1.0);
  switch (G) {
  case GateKind::X:
    return {{{0, 1}, {1, 0}}};
  case GateKind::Y:
    return {{{0, -I}, {I, 0}}};
  case GateKind::Z:
    return {{{1, 0}, {0, -1}}};
  case GateKind::H:
    return {{{S2, S2}, {S2, -S2}}};
  case GateKind::S:
    return {{{1, 0}, {0, I}}};
  case GateKind::Sdg:
    return {{{1, 0}, {0, -I}}};
  case GateKind::T:
    return {{{1, 0}, {0, std::exp(I * (M_PI / 4.0))}}};
  case GateKind::Tdg:
    return {{{1, 0}, {0, std::exp(-I * (M_PI / 4.0))}}};
  case GateKind::P:
    return {{{1, 0}, {0, std::exp(I * Theta)}}};
  case GateKind::RX:
    return {{{std::cos(Theta / 2), -I * std::sin(Theta / 2)},
             {-I * std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RY:
    return {{{std::cos(Theta / 2), -std::sin(Theta / 2)},
             {std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RZ:
    return {{{std::exp(-I * (Theta / 2)), 0},
             {0, std::exp(I * (Theta / 2))}}};
  case GateKind::Swap:
    break;
  }
  assert(false && "no 2x2 matrix for this gate");
  return Mat2::identity();
}

namespace {

/// The phases a diagonal gate puts on |0> and |1> of its target (applied
/// only where every control reads 1). False for non-diagonal gates.
bool diagonalPhases(GateKind G, double Theta, Cplx &P0, Cplx &P1) {
  const Cplx I(0.0, 1.0);
  P0 = Cplx(1.0, 0.0);
  switch (G) {
  case GateKind::Z:
    P1 = Cplx(-1.0, 0.0);
    return true;
  case GateKind::S:
    P1 = I;
    return true;
  case GateKind::Sdg:
    P1 = -I;
    return true;
  case GateKind::T:
    P1 = std::exp(I * (M_PI / 4.0));
    return true;
  case GateKind::Tdg:
    P1 = std::exp(-I * (M_PI / 4.0));
    return true;
  case GateKind::P:
    P1 = std::exp(I * Theta);
    return true;
  case GateKind::RZ:
    P0 = std::exp(-I * (Theta / 2));
    P1 = std::exp(I * (Theta / 2));
    return true;
  default:
    return false;
  }
}

} // namespace

std::string FusedCircuit::summary() const {
  return std::to_string(GatesIn) + " gates -> " + std::to_string(Ops.size()) +
         " ops (" + std::to_string(GatesFused) + " fused, " +
         std::to_string(SweepsCoalesced) + " sweep entries coalesced)";
}

bool asdf::isFusionBarrier(const CircuitInstr &I) {
  return I.TheKind != CircuitInstr::Kind::Gate || I.CondBit >= 0;
}

FusedCircuit asdf::fuseCircuit(const Circuit &C, const NoiseModel *Noise) {
  FusedCircuit FC;
  FC.Source = &C;
  const unsigned N = C.NumQubits;
  auto QubitBit = [&](unsigned Q) { return uint64_t(1) << (N - 1 - Q); };

  /// The open run of uncontrolled single-qubit gates on one wire.
  struct PendingRun {
    Mat2 U = Mat2::identity();
    unsigned Count = 0;
    size_t OnlyInstr = 0; ///< Source index, meaningful when Count == 1.
  };
  std::vector<PendingRun> Pending(N);
  bool PrefixOpen = true;

  auto emitInstr = [&](size_t Idx) {
    FusedOp Op;
    Op.TheKind = FusedOp::Kind::Instr;
    Op.InstrIndex = Idx;
    FC.Ops.push_back(std::move(Op));
  };

  // Diagonal ops commute, so an entry landing directly after another
  // diagonal op merges into it: one memory pass applies both.
  auto emitDiagEntry = [&](DiagEntry E) {
    if (!FC.Ops.empty() && FC.Ops.back().TheKind == FusedOp::Kind::Diag) {
      FC.Ops.back().Diag.push_back(E);
      ++FC.SweepsCoalesced;
      return;
    }
    FusedOp Op;
    Op.TheKind = FusedOp::Kind::Diag;
    Op.Diag.push_back(E);
    FC.Ops.push_back(std::move(Op));
  };

  auto flush = [&](unsigned Q) {
    PendingRun &P = Pending[Q];
    if (P.Count == 0)
      return;
    if (P.Count == 1) {
      // A lone gate keeps its specialized engine kernel (and bit-exact
      // arithmetic): pass it through instead of wrapping it in a matrix.
      emitInstr(P.OnlyInstr);
    } else if (P.U.isDiagonal()) {
      FC.GatesFused += P.Count;
      emitDiagEntry({0, QubitBit(Q), P.U.M[0][0], P.U.M[1][1]});
    } else {
      FC.GatesFused += P.Count;
      FusedOp Op;
      Op.TheKind = FusedOp::Kind::Unitary;
      Op.Target = Q;
      Op.U = P.U;
      FC.Ops.push_back(std::move(Op));
    }
    P = PendingRun();
  };
  auto flushAll = [&] {
    for (unsigned Q = 0; Q < N; ++Q)
      flush(Q);
  };

  for (size_t Idx = 0; Idx < C.Instrs.size(); ++Idx) {
    const CircuitInstr &I = C.Instrs[Idx];

    // Measurement, reset, and feed-forward are full barriers: randomness
    // and classical control must see exactly the state the unfused program
    // would have at this point. They also close the shared prefix.
    if (isFusionBarrier(I)) {
      flushAll();
      if (PrefixOpen) {
        FC.UnconditionalPrefixOps = FC.Ops.size();
        PrefixOpen = false;
      }
      if (I.TheKind == CircuitInstr::Kind::Gate)
        ++FC.GatesIn;
      emitInstr(Idx);
      continue;
    }

    ++FC.GatesIn;

    // Channel barrier: trajectory sampling right after a noisy gate must
    // see the exact unfused state in program order, and it consumes
    // per-shot randomness — so the gate passes through unfused and closes
    // the shared prefix.
    if (Noise && Noise->affectsGate(I)) {
      flushAll();
      if (PrefixOpen) {
        FC.UnconditionalPrefixOps = FC.Ops.size();
        PrefixOpen = false;
      }
      emitInstr(Idx);
      continue;
    }

    if (I.Gate == GateKind::Swap) {
      for (unsigned T : I.Targets)
        flush(T);
      for (unsigned Ctl : I.Controls)
        flush(Ctl);
      emitInstr(Idx);
      continue;
    }

    assert(I.Targets.size() == 1 && "non-swap gates have one target");
    unsigned T = I.Targets[0];

    if (I.Controls.empty()) {
      PendingRun &P = Pending[T];
      P.U = matmul(gateMatrix2(I.Gate, I.Param), P.U);
      if (++P.Count == 1)
        P.OnlyInstr = Idx;
      continue;
    }

    uint64_t CtlMask = 0;
    for (unsigned Ctl : I.Controls)
      CtlMask |= QubitBit(Ctl);
    if (CtlMask & QubitBit(T)) {
      // Degenerate control == target has always been a no-op in the
      // engines; the plan drops it outright.
      ++FC.GatesFused;
      continue;
    }

    flush(T);
    for (unsigned Ctl : I.Controls)
      flush(Ctl);

    Cplx P0, P1;
    if (diagonalPhases(I.Gate, I.Param, P0, P1)) {
      ++FC.GatesFused;
      emitDiagEntry({CtlMask, QubitBit(T), P0, P1});
      continue;
    }
    emitInstr(Idx); // Controlled non-diagonal (CX, CH, CRY...): pass through.
  }

  flushAll();
  if (PrefixOpen)
    FC.UnconditionalPrefixOps = FC.Ops.size();
  return FC;
}
