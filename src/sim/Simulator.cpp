//===- Simulator.cpp - Circuit execution facade ----------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <cassert>
#include <cmath>

using namespace asdf;

ShotResult asdf::simulate(const Circuit &C, uint64_t Seed,
                          BackendKind Backend) {
  return BackendRegistry::instance().select(C, Backend).run(C, Seed);
}

std::map<std::string, unsigned> asdf::runShots(const Circuit &C,
                                               unsigned Shots, uint64_t Seed,
                                               BackendKind Backend,
                                               const RunOptions &Opts) {
  return BackendRegistry::instance()
      .select(C, Backend, nullptr, Opts.Noise)
      .runShots(C, Shots, Seed, Opts);
}

std::string asdf::formatShotBits(const Circuit &C, const ShotResult &Shot) {
  std::string Out;
  Out.reserve(C.OutputBits.size());
  for (int Bit : C.OutputBits)
    Out.push_back(Bit == -2                ? '1'
                  : Bit == -3              ? '0'
                  : Shot.Bits[static_cast<unsigned>(Bit)] ? '1'
                                                          : '0');
  return Out;
}

double asdf::tvDistance(const std::map<std::string, unsigned> &A,
                        const std::map<std::string, unsigned> &B,
                        unsigned Shots) {
  std::map<std::string, char> Union;
  for (const auto &KV : A)
    Union[KV.first] = 0;
  for (const auto &KV : B)
    Union[KV.first] = 0;
  double Tv = 0.0;
  for (const auto &KV : Union) {
    auto Ia = A.find(KV.first), Ib = B.find(KV.first);
    double Fa = Ia == A.end() ? 0.0 : double(Ia->second) / Shots;
    double Fb = Ib == B.end() ? 0.0 : double(Ib->second) / Shots;
    Tv += std::abs(Fa - Fb);
  }
  return Tv / 2.0;
}

std::vector<std::vector<Amplitude>> asdf::circuitUnitary(const Circuit &C) {
  assert(C.NumQubits <= 10 && "unitary extraction limited to 10 qubits");
  uint64_t Dim = uint64_t(1) << C.NumQubits;
  std::vector<std::vector<Amplitude>> U(Dim, std::vector<Amplitude>(Dim));
  for (uint64_t K = 0; K < Dim; ++K) {
    StateVector SV(C.NumQubits);
    SV.setBasisState(K);
    for (const CircuitInstr &I : C.Instrs) {
      assert(I.TheKind == CircuitInstr::Kind::Gate && I.CondBit < 0 &&
             "unitary extraction requires a measurement-free circuit");
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    }
    for (uint64_t R = 0; R < Dim; ++R)
      U[R][K] = SV.amplitudes()[R];
  }
  return U;
}

bool asdf::unitariesEquivalent(const std::vector<std::vector<Amplitude>> &A,
                               const std::vector<std::vector<Amplitude>> &B,
                               double Tol) {
  if (A.size() != B.size())
    return false;
  uint64_t Dim = A.size();
  // Find a reference entry with significant magnitude to fix the phase.
  Amplitude Phase(0.0, 0.0);
  for (uint64_t R = 0; R < Dim && std::abs(Phase) < 0.5; ++R)
    for (uint64_t C = 0; C < Dim; ++C)
      if (std::abs(B[R][C]) > 0.5 && std::abs(A[R][C]) > 1e-12) {
        Phase = A[R][C] / B[R][C];
        break;
      }
  if (std::abs(Phase) < 1e-12)
    Phase = Amplitude(1.0, 0.0);
  Phase /= std::abs(Phase);
  for (uint64_t R = 0; R < Dim; ++R)
    for (uint64_t C = 0; C < Dim; ++C)
      if (std::abs(A[R][C] - Phase * B[R][C]) > Tol)
        return false;
  return true;
}
