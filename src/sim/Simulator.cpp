//===- Simulator.cpp - Dense state-vector simulator ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <cassert>
#include <cmath>

using namespace asdf;

StateVector::StateVector(unsigned NumQubits) : NumQubits(NumQubits) {
  assert(NumQubits <= 26 && "state vector too large");
  Amp.assign(uint64_t(1) << NumQubits, Amplitude(0.0, 0.0));
  Amp[0] = Amplitude(1.0, 0.0);
}

void StateVector::setBasisState(uint64_t Index) {
  std::fill(Amp.begin(), Amp.end(), Amplitude(0.0, 0.0));
  Amp[Index] = Amplitude(1.0, 0.0);
}

namespace {

/// 2x2 gate matrices.
struct Mat2 {
  Amplitude M[2][2];
};

Mat2 gateMatrix(GateKind G, double Theta) {
  const double S2 = 1.0 / std::sqrt(2.0);
  const Amplitude I(0.0, 1.0);
  switch (G) {
  case GateKind::X:
    return {{{0, 1}, {1, 0}}};
  case GateKind::Y:
    return {{{0, -I}, {I, 0}}};
  case GateKind::Z:
    return {{{1, 0}, {0, -1}}};
  case GateKind::H:
    return {{{S2, S2}, {S2, -S2}}};
  case GateKind::S:
    return {{{1, 0}, {0, I}}};
  case GateKind::Sdg:
    return {{{1, 0}, {0, -I}}};
  case GateKind::T:
    return {{{1, 0}, {0, std::exp(I * (M_PI / 4.0))}}};
  case GateKind::Tdg:
    return {{{1, 0}, {0, std::exp(-I * (M_PI / 4.0))}}};
  case GateKind::P:
    return {{{1, 0}, {0, std::exp(I * Theta)}}};
  case GateKind::RX:
    return {{{std::cos(Theta / 2), -I * std::sin(Theta / 2)},
             {-I * std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RY:
    return {{{std::cos(Theta / 2), -std::sin(Theta / 2)},
             {std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RZ:
    return {{{std::exp(-I * (Theta / 2)), 0},
             {0, std::exp(I * (Theta / 2))}}};
  case GateKind::Swap:
    break;
  }
  assert(false && "no 2x2 matrix for this gate");
  return {{{1, 0}, {0, 1}}};
}

} // namespace

void StateVector::apply(GateKind G, const std::vector<unsigned> &Controls,
                        const std::vector<unsigned> &Targets, double Param) {
  uint64_t CtlMask = 0;
  for (unsigned C : Controls)
    CtlMask |= qubitBit(C);

  if (G == GateKind::Swap) {
    assert(Targets.size() == 2);
    uint64_t BitA = qubitBit(Targets[0]);
    uint64_t BitB = qubitBit(Targets[1]);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if ((Idx & CtlMask) != CtlMask)
        continue;
      bool A = Idx & BitA, Bb = Idx & BitB;
      if (A && !Bb) {
        uint64_t Other = (Idx & ~BitA) | BitB;
        std::swap(Amp[Idx], Amp[Other]);
      }
    }
    return;
  }

  assert(Targets.size() == 1);
  Mat2 M = gateMatrix(G, Param);
  uint64_t Bit = qubitBit(Targets[0]);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue; // Handle each pair once, from the 0 side.
    if (((Idx & CtlMask) != CtlMask) ||
        (((Idx | Bit) & CtlMask) != CtlMask))
      continue;
    uint64_t Idx1 = Idx | Bit;
    Amplitude A0 = Amp[Idx], A1 = Amp[Idx1];
    Amp[Idx] = M.M[0][0] * A0 + M.M[0][1] * A1;
    Amp[Idx1] = M.M[1][0] * A0 + M.M[1][1] * A1;
  }
}

double StateVector::probOne(unsigned Q) const {
  uint64_t Bit = qubitBit(Q);
  double P = 0.0;
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    if (Idx & Bit)
      P += std::norm(Amp[Idx]);
  return P;
}

bool StateVector::measure(unsigned Q, std::mt19937_64 &Rng) {
  double P1 = probOne(Q);
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  bool One = Dist(Rng) < P1;
  uint64_t Bit = qubitBit(Q);
  double Norm = std::sqrt(One ? P1 : 1.0 - P1);
  if (Norm < 1e-300)
    Norm = 1.0;
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    bool IsOne = Idx & Bit;
    if (IsOne == One)
      Amp[Idx] /= Norm;
    else
      Amp[Idx] = Amplitude(0.0, 0.0);
  }
  return One;
}

void StateVector::reset(unsigned Q, std::mt19937_64 &Rng) {
  if (measure(Q, Rng))
    apply(GateKind::X, {}, {Q}, 0.0);
}

double StateVector::overlap(const StateVector &Other) const {
  assert(Amp.size() == Other.Amp.size());
  Amplitude Dot(0.0, 0.0);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    Dot += std::conj(Other.Amp[Idx]) * Amp[Idx];
  return std::abs(Dot);
}

std::string ShotResult::str() const {
  std::string S;
  for (bool B : Bits)
    S.push_back(B ? '1' : '0');
  return S;
}

ShotResult asdf::simulate(const Circuit &C, uint64_t Seed) {
  StateVector SV(C.NumQubits);
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ull + 0xDEADBEEF);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  for (const CircuitInstr &I : C.Instrs) {
    if (I.CondBit >= 0 &&
        R.Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
      continue;
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
      break;
    case CircuitInstr::Kind::Measure:
      R.Bits[static_cast<unsigned>(I.Cbit)] = SV.measure(I.Targets[0], Rng);
      break;
    case CircuitInstr::Kind::Reset:
      SV.reset(I.Targets[0], Rng);
      break;
    }
  }
  return R;
}

std::map<std::string, unsigned> asdf::runShots(const Circuit &C,
                                               unsigned Shots,
                                               uint64_t Seed) {
  std::map<std::string, unsigned> Counts;
  for (unsigned S = 0; S < Shots; ++S)
    ++Counts[simulate(C, Seed + S).str()];
  return Counts;
}

std::vector<std::vector<Amplitude>> asdf::circuitUnitary(const Circuit &C) {
  assert(C.NumQubits <= 10 && "unitary extraction limited to 10 qubits");
  uint64_t Dim = uint64_t(1) << C.NumQubits;
  std::vector<std::vector<Amplitude>> U(Dim, std::vector<Amplitude>(Dim));
  std::mt19937_64 Rng(1);
  for (uint64_t K = 0; K < Dim; ++K) {
    StateVector SV(C.NumQubits);
    SV.setBasisState(K);
    for (const CircuitInstr &I : C.Instrs) {
      assert(I.TheKind == CircuitInstr::Kind::Gate && I.CondBit < 0 &&
             "unitary extraction requires a measurement-free circuit");
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    }
    for (uint64_t R = 0; R < Dim; ++R)
      U[R][K] = SV.amplitudes()[R];
  }
  return U;
}

bool asdf::unitariesEquivalent(const std::vector<std::vector<Amplitude>> &A,
                               const std::vector<std::vector<Amplitude>> &B,
                               double Tol) {
  if (A.size() != B.size())
    return false;
  uint64_t Dim = A.size();
  // Find a reference entry with significant magnitude to fix the phase.
  Amplitude Phase(0.0, 0.0);
  for (uint64_t R = 0; R < Dim && std::abs(Phase) < 0.5; ++R)
    for (uint64_t C = 0; C < Dim; ++C)
      if (std::abs(B[R][C]) > 0.5 && std::abs(A[R][C]) > 1e-12) {
        Phase = A[R][C] / B[R][C];
        break;
      }
  if (std::abs(Phase) < 1e-12)
    Phase = Amplitude(1.0, 0.0);
  Phase /= std::abs(Phase);
  for (uint64_t R = 0; R < Dim; ++R)
    for (uint64_t C = 0; C < Dim; ++C)
      if (std::abs(A[R][C] - Phase * B[R][C]) > Tol)
        return false;
  return true;
}
