//===- CircuitAnalysis.h - Circuit classification for dispatch ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cheap single-pass classification of flat circuits that drives backend
/// auto-dispatch and multi-shot amortization:
///
///   - Clifford-only circuits run on the stabilizer tableau;
///   - the length of the measurement-free unconditional prefix lets the
///     dense engine simulate that prefix once and fork it per shot;
///   - feed-forward (classically conditioned instructions) distinguishes
///     dynamic circuits from static prepare-and-measure ones.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_CIRCUITANALYSIS_H
#define ASDF_SIM_CIRCUITANALYSIS_H

#include "qcirc/Circuit.h"

#include <cstddef>

namespace asdf {

/// What one pass over the instruction list learned about a circuit.
struct CircuitProfile {
  /// Every gate is Clifford (X/Y/Z/H/S/Sdg/Swap, CX/CY/CZ, and P/RZ at
  /// multiples of pi/2 with suitable control counts).
  bool CliffordOnly = true;
  bool HasMeasure = false;
  bool HasReset = false;
  /// Any instruction is classically conditioned (CondBit >= 0).
  bool HasFeedForward = false;
  /// Largest control count on any gate.
  unsigned MaxControls = 0;
  /// Number of leading instructions that are unconditional gates — the
  /// deterministic prefix shared by every shot.
  size_t UnconditionalGatePrefix = 0;

  bool measureFree() const { return !HasMeasure && !HasReset; }
};

/// Classifies \p C in one pass.
CircuitProfile analyzeCircuit(const Circuit &C);

/// True if one instruction is a Clifford-group operation the tableau engine
/// executes exactly. Gate instructions only; measure/reset always qualify.
bool isCliffordInstr(const CircuitInstr &I);

/// If \p Theta is a multiple of pi/2 (within \p Tol), returns true and sets
/// \p QuarterTurns to the multiple mod 4 (0..3). The tableau engine maps
/// P/RZ at quarter turns onto I/S/Z/Sdg.
bool quarterTurns(double Theta, unsigned &QuarterTurns, double Tol = 1e-12);

} // namespace asdf

#endif // ASDF_SIM_CIRCUITANALYSIS_H
