//===- CircuitAnalysis.h - Circuit classification for dispatch ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cheap single-pass classification of flat circuits that drives backend
/// auto-dispatch and multi-shot amortization:
///
///   - Clifford-only circuits run on the stabilizer tableau;
///   - the length of the measurement-free unconditional prefix lets the
///     dense engine simulate that prefix once and fork it per shot;
///   - feed-forward (classically conditioned instructions) distinguishes
///     dynamic circuits from static prepare-and-measure ones.
///
/// On top of the boolean profile sits the `CostModel`: a one-pass estimate
/// of how expensive each engine would find the circuit — non-Clifford gate
/// count, entangling-gate connectivity, and (the MPS dispatch signal) an
/// upper bound on the Schmidt rank across every left/right bisection,
/// derived from how many entangling gates straddle each cut. It is what
/// lets `--backend auto` route a 100-qubit GHZ ladder to the tensor
/// network while refusing a 100-qubit random dense circuit.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_CIRCUITANALYSIS_H
#define ASDF_SIM_CIRCUITANALYSIS_H

#include "qcirc/Circuit.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace asdf {

/// What one pass over the instruction list learned about a circuit.
struct CircuitProfile {
  /// Every gate is Clifford (X/Y/Z/H/S/Sdg/Swap, CX/CY/CZ, and P/RZ at
  /// multiples of pi/2 with suitable control counts).
  bool CliffordOnly = true;
  bool HasMeasure = false;
  bool HasReset = false;
  /// Any instruction is classically conditioned (CondBit >= 0).
  bool HasFeedForward = false;
  /// Largest control count on any gate.
  unsigned MaxControls = 0;
  /// Largest total qubit support (controls + targets) on any gate — the
  /// width of the block the MPS engine must contract to apply it.
  unsigned MaxGateQubits = 0;
  /// Number of leading instructions that are unconditional gates — the
  /// deterministic prefix shared by every shot.
  size_t UnconditionalGatePrefix = 0;

  bool measureFree() const { return !HasMeasure && !HasReset; }
};

/// Classifies \p C in one pass.
CircuitProfile analyzeCircuit(const Circuit &C);

/// The dispatch cost model: what each engine would pay to run the circuit.
/// The entanglement estimate is an upper bound: a two-qubit gate straddling
/// a left/right bisection can at most double the Schmidt rank across it, so
/// the rank across cut k is bounded by 2^(entangling gates crossing k),
/// and by the dimension 2^min(k+1, n-1-k) of the smaller side. The bound is
/// loose for circuits that disentangle (it never shrinks), which errs on
/// the safe side: auto-dispatch only routes to the MPS engine when even the
/// worst case fits the bond cap.
struct CostModel {
  unsigned NumQubits = 0;
  bool CliffordOnly = true;
  bool HasFeedForward = false;
  /// Gates outside the Clifford group (T-count proxy; includes rotations
  /// at generic angles and multi-controlled gates).
  uint64_t NonCliffordGates = 0;
  /// Gates whose support touches >= 2 distinct qubits.
  uint64_t EntanglingGates = 0;
  /// Widest site distance any single gate spans (max - min over its
  /// support) — the swap-routing distance the MPS engine must bridge.
  unsigned MaxGateSpan = 0;
  /// Entangling gates straddling the busiest left/right bisection.
  unsigned MaxCutCrossings = 0;
  /// log2 of the estimated maximum Schmidt rank over all bisections.
  unsigned EstimatedLogBond = 0;

  /// The estimated maximum bond dimension an exact MPS run would need
  /// (saturates instead of overflowing).
  uint64_t estimatedMaxBond() const {
    return EstimatedLogBond >= 63 ? UINT64_MAX : (uint64_t(1) << EstimatedLogBond);
  }

  /// One-line summary for --explain-backend and diagnostics.
  std::string summary() const;
};

/// Estimates \p C's cost model in one pass over the instructions. Pass
/// \p P if the circuit is already profiled to skip re-deriving the
/// Clifford/feed-forward bits.
CostModel estimateCost(const Circuit &C, const CircuitProfile *P = nullptr);

/// True if one instruction is a Clifford-group operation the tableau engine
/// executes exactly. Gate instructions only; measure/reset always qualify.
bool isCliffordInstr(const CircuitInstr &I);

/// If \p Theta is a multiple of pi/2 (within \p Tol), returns true and sets
/// \p QuarterTurns to the multiple mod 4 (0..3). The tableau engine maps
/// P/RZ at quarter turns onto I/S/Z/Sdg.
bool quarterTurns(double Theta, unsigned &QuarterTurns, double Tol = 1e-12);

} // namespace asdf

#endif // ASDF_SIM_CIRCUITANALYSIS_H
