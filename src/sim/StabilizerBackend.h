//===- StabilizerBackend.h - CHP tableau engine ---------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aaronson-Gottesman CHP simulation ("Improved Simulation of Stabilizer
/// Circuits", PRA 70, 052328): the state of an n-qubit Clifford circuit is
/// the stabilizer group of the state, held as a 2n x 2n binary tableau
/// of destabilizer/stabilizer generator rows plus sign bits. Every Clifford
/// gate is an O(n) column update and measurement is O(n^2) worst case, so
/// thousand-qubit Clifford circuits (GHZ ladders, teleportation networks,
/// syndrome extraction) run in milliseconds where dense amplitudes would
/// need 2^n doubles.
///
/// Rows are packed 64 qubits per word; the row-product sign is computed
/// word-parallel with popcounts rather than per-bit (the hot loop of the
/// original chp.c).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_STABILIZERBACKEND_H
#define ASDF_SIM_STABILIZERBACKEND_H

#include "sim/Backend.h"

#include <random>

namespace asdf {

class NoiseModel;
struct NoiseStats;
struct PauliNoisePlan;

/// What one measurement did, recorded for the Pauli-frame sampler
/// (noise/PauliFrame.h): whether the outcome was random and, if so, the
/// stabilizer that anticommuted with the measured Z — the Pauli that maps
/// the post-measurement state of one outcome onto the other's.
struct MeasureRecord {
  bool Random = false;
  /// The anticommuting stabilizer, packed 64 qubits per word (random
  /// outcomes only; sign omitted — frames track Paulis up to phase).
  std::vector<uint64_t> AntiX, AntiZ;
};

/// The destabilizer/stabilizer tableau of an n-qubit stabilizer state,
/// starting at |0...0>.
class Tableau {
public:
  explicit Tableau(unsigned NumQubits);

  unsigned numQubits() const { return N; }

  // Clifford generators (CHP primitives).
  void h(unsigned Q);
  void s(unsigned Q);
  void cx(unsigned Ctl, unsigned Tgt);

  // Derived Cliffords.
  void sdg(unsigned Q);
  void x(unsigned Q);
  void y(unsigned Q);
  void z(unsigned Q);
  void cy(unsigned Ctl, unsigned Tgt);
  void cz(unsigned A, unsigned B);
  void swapQubits(unsigned A, unsigned B);

  /// Measures qubit \p Q in the computational basis, collapsing the state.
  /// \p Rng decides random outcomes (when some stabilizer anticommutes with
  /// Z_Q); deterministic outcomes consume no randomness. \p Rec, if given,
  /// receives what the frame sampler needs to replay this collapse.
  bool measure(unsigned Q, std::mt19937_64 &Rng, MeasureRecord *Rec = nullptr);

  /// True if measuring \p Q would give a deterministic outcome; sets
  /// \p Outcome without collapsing anything.
  bool isDeterministic(unsigned Q, bool &Outcome) const;

  /// Resets qubit \p Q to |0> (measure and correct).
  void reset(unsigned Q, std::mt19937_64 &Rng);

private:
  unsigned N;     ///< Qubit count.
  unsigned Words; ///< 64-bit words per row.
  /// Row-major bit matrices, 2N rows: rows [0,N) are destabilizers,
  /// [N,2N) stabilizers.
  std::vector<uint64_t> X, Z;
  std::vector<uint8_t> R; ///< Sign bit per row (1 == negative).

  uint64_t *xRow(unsigned I) { return &X[size_t(I) * Words]; }
  uint64_t *zRow(unsigned I) { return &Z[size_t(I) * Words]; }
  const uint64_t *xRow(unsigned I) const { return &X[size_t(I) * Words]; }
  const uint64_t *zRow(unsigned I) const { return &Z[size_t(I) * Words]; }
  bool xBit(unsigned I, unsigned Q) const {
    return (xRow(I)[Q >> 6] >> (Q & 63)) & 1;
  }
  bool zBit(unsigned I, unsigned Q) const {
    return (zRow(I)[Q >> 6] >> (Q & 63)) & 1;
  }

  /// Row H *= row I as Pauli group elements, sign included.
  void rowMult(unsigned H, unsigned I);
  /// Row H = row I.
  void rowCopy(unsigned H, unsigned I);
  /// Row H = +Z_Q (post-measurement stabilizer).
  void rowSetZ(unsigned H, unsigned Q);
};

/// The tableau engine as a SimBackend ("stab"). Supports Clifford circuits
/// — gates classified by isCliffordInstr — with measurement, reset, and
/// classical feed-forward, at any width. Noise models must be Pauli-only;
/// they run through two polynomial paths:
///
///   - no feed-forward: the ideal circuit runs once as a tableau reference
///     and every shot propagates a sampled Pauli frame through it
///     (noise/PauliFrame.h) — O(gates) bit operations per shot;
///   - feed-forward: each shot is an independent tableau run with sampled
///     Paulis injected after noisy gates (O(n) sign updates each).
class StabilizerBackend : public SimBackend {
public:
  const char *name() const override { return "stab"; }
  bool supports(const Circuit &C, const CircuitProfile &P) const override;
  ShotResult run(const Circuit &C, uint64_t Seed) const override;
  /// Pauli-only models only (supportsNoise); the tableau Monte-Carlo path.
  ShotResult runNoisy(const Circuit &C, uint64_t Seed,
                      const NoiseModel &Noise,
                      NoiseStats *Stats = nullptr) const override;
  /// Dispatches noisy batches onto the Pauli-frame fast path (Clifford, no
  /// feed-forward) or the per-shot tableau Monte-Carlo path.
  std::vector<ShotResult> runBatch(const Circuit &C, unsigned Shots,
                                   uint64_t Seed,
                                   const RunOptions &Opts) const override;
  using SimBackend::runBatch;
  /// True exactly for Pauli-only models.
  bool supportsNoise(const NoiseModel &Noise) const override;
};

/// Applies one (already validated Clifford) gate instruction to \p T.
/// Shared by the backend's execution loops and the Pauli-frame reference
/// run (noise/PauliFrame.cpp), so gate semantics can never diverge.
void applyCliffordInstr(Tableau &T, const CircuitInstr &I);

} // namespace asdf

#endif // ASDF_SIM_STABILIZERBACKEND_H
