//===- StabilizerBackend.h - CHP tableau engine ---------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aaronson-Gottesman CHP simulation ("Improved Simulation of Stabilizer
/// Circuits", PRA 70, 052328): the state of an n-qubit Clifford circuit is
/// the stabilizer group of the state, held as a 2n x 2n binary tableau
/// of destabilizer/stabilizer generator rows plus sign bits. Every Clifford
/// gate is an O(n) column update and measurement is O(n^2) worst case, so
/// thousand-qubit Clifford circuits (GHZ ladders, teleportation networks,
/// syndrome extraction) run in milliseconds where dense amplitudes would
/// need 2^n doubles.
///
/// Rows are packed 64 qubits per word; the row-product sign is computed
/// word-parallel with popcounts rather than per-bit (the hot loop of the
/// original chp.c).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_STABILIZERBACKEND_H
#define ASDF_SIM_STABILIZERBACKEND_H

#include "sim/Backend.h"

#include <random>

namespace asdf {

/// The destabilizer/stabilizer tableau of an n-qubit stabilizer state,
/// starting at |0...0>.
class Tableau {
public:
  explicit Tableau(unsigned NumQubits);

  unsigned numQubits() const { return N; }

  // Clifford generators (CHP primitives).
  void h(unsigned Q);
  void s(unsigned Q);
  void cx(unsigned Ctl, unsigned Tgt);

  // Derived Cliffords.
  void sdg(unsigned Q);
  void x(unsigned Q);
  void y(unsigned Q);
  void z(unsigned Q);
  void cy(unsigned Ctl, unsigned Tgt);
  void cz(unsigned A, unsigned B);
  void swapQubits(unsigned A, unsigned B);

  /// Measures qubit \p Q in the computational basis, collapsing the state.
  /// \p Rng decides random outcomes (when some stabilizer anticommutes with
  /// Z_Q); deterministic outcomes consume no randomness.
  bool measure(unsigned Q, std::mt19937_64 &Rng);

  /// True if measuring \p Q would give a deterministic outcome; sets
  /// \p Outcome without collapsing anything.
  bool isDeterministic(unsigned Q, bool &Outcome) const;

  /// Resets qubit \p Q to |0> (measure and correct).
  void reset(unsigned Q, std::mt19937_64 &Rng);

private:
  unsigned N;     ///< Qubit count.
  unsigned Words; ///< 64-bit words per row.
  /// Row-major bit matrices, 2N rows: rows [0,N) are destabilizers,
  /// [N,2N) stabilizers.
  std::vector<uint64_t> X, Z;
  std::vector<uint8_t> R; ///< Sign bit per row (1 == negative).

  uint64_t *xRow(unsigned I) { return &X[size_t(I) * Words]; }
  uint64_t *zRow(unsigned I) { return &Z[size_t(I) * Words]; }
  const uint64_t *xRow(unsigned I) const { return &X[size_t(I) * Words]; }
  const uint64_t *zRow(unsigned I) const { return &Z[size_t(I) * Words]; }
  bool xBit(unsigned I, unsigned Q) const {
    return (xRow(I)[Q >> 6] >> (Q & 63)) & 1;
  }
  bool zBit(unsigned I, unsigned Q) const {
    return (zRow(I)[Q >> 6] >> (Q & 63)) & 1;
  }

  /// Row H *= row I as Pauli group elements, sign included.
  void rowMult(unsigned H, unsigned I);
  /// Row H = row I.
  void rowCopy(unsigned H, unsigned I);
  /// Row H = +Z_Q (post-measurement stabilizer).
  void rowSetZ(unsigned H, unsigned Q);
};

/// The tableau engine as a SimBackend ("stab"). Supports Clifford circuits
/// — gates classified by isCliffordInstr — with measurement, reset, and
/// classical feed-forward, at any width.
class StabilizerBackend : public SimBackend {
public:
  const char *name() const override { return "stab"; }
  bool supports(const Circuit &C, const CircuitProfile &P) const override;
  ShotResult run(const Circuit &C, uint64_t Seed) const override;
};

} // namespace asdf

#endif // ASDF_SIM_STABILIZERBACKEND_H
