//===- StatevectorBackend.cpp - Dense state-vector engine -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StatevectorBackend.h"

#include "noise/NoiseModel.h"
#include "sim/CircuitAnalysis.h"

#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

using namespace asdf;

StateVector::StateVector(unsigned NumQubits) : NumQubits(NumQubits) {
  assert(NumQubits <= StatevectorBackend::HardMaxQubits &&
         "state vector too large");
  Amp.assign(uint64_t(1) << NumQubits, Amplitude(0.0, 0.0));
  Amp[0] = Amplitude(1.0, 0.0);
}

void StateVector::setBasisState(uint64_t Index) {
  std::fill(Amp.begin(), Amp.end(), Amplitude(0.0, 0.0));
  Amp[Index] = Amplitude(1.0, 0.0);
}

namespace {

/// The phase a diagonal gate puts on |1> (it puts 1 on |0>), or nullopt if
/// the gate is not diagonal-with-unit-top-left.
bool diagonalPhase(GateKind G, double Theta, Amplitude &Phase) {
  const Amplitude I(0.0, 1.0);
  switch (G) {
  case GateKind::Z:
    Phase = Amplitude(-1.0, 0.0);
    return true;
  case GateKind::S:
    Phase = I;
    return true;
  case GateKind::Sdg:
    Phase = -I;
    return true;
  case GateKind::T:
    Phase = std::exp(I * (M_PI / 4.0));
    return true;
  case GateKind::Tdg:
    Phase = std::exp(-I * (M_PI / 4.0));
    return true;
  case GateKind::P:
    Phase = std::exp(I * Theta);
    return true;
  default:
    return false;
  }
}

} // namespace

void StateVector::phaseSweep(uint64_t Mask, Amplitude Phase) {
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    if ((Idx & Mask) == Mask)
      Amp[Idx] *= Phase;
}

void StateVector::pairSwap(uint64_t CtlMask, uint64_t Bit) {
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue; // Handle each pair once, from the 0 side.
    if ((Idx & CtlMask) != CtlMask)
      continue;
    std::swap(Amp[Idx], Amp[Idx | Bit]);
  }
}

void StateVector::apply(GateKind G, const std::vector<unsigned> &Controls,
                        const std::vector<unsigned> &Targets, double Param) {
  uint64_t CtlMask = 0;
  for (unsigned C : Controls)
    CtlMask |= qubitBit(C);

  if (G == GateKind::Swap) {
    assert(Targets.size() == 2);
    uint64_t BitA = qubitBit(Targets[0]);
    uint64_t BitB = qubitBit(Targets[1]);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if ((Idx & CtlMask) != CtlMask)
        continue;
      bool A = Idx & BitA, Bb = Idx & BitB;
      if (A && !Bb) {
        uint64_t Other = (Idx & ~BitA) | BitB;
        std::swap(Amp[Idx], Amp[Other]);
      }
    }
    return;
  }

  assert(Targets.size() == 1);
  uint64_t Bit = qubitBit(Targets[0]);
  if (CtlMask & Bit)
    return; // Degenerate control == target: no pair has the control set and
            // the target clear, so this was always a no-op.

  // Diagonal gates collapse to a single masked phase sweep at any control
  // count: the phase lands exactly where all controls and the target read 1.
  Amplitude Phase;
  if (diagonalPhase(G, Param, Phase)) {
    phaseSweep(CtlMask | Bit, Phase);
    return;
  }

  // X at any control count is a pure pair permutation (X, CX, Toffoli...).
  if (G == GateKind::X) {
    pairSwap(CtlMask, Bit);
    return;
  }

  // Y: permutation plus a fixed +-i twist.
  if (G == GateKind::Y) {
    const Amplitude I(0.0, 1.0);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if (Idx & Bit)
        continue;
      if ((Idx & CtlMask) != CtlMask)
        continue;
      uint64_t Idx1 = Idx | Bit;
      Amplitude A0 = Amp[Idx];
      Amp[Idx] = -I * Amp[Idx1];
      Amp[Idx1] = I * A0;
    }
    return;
  }

  // H: real butterfly, no complex matrix products.
  if (G == GateKind::H) {
    const double S2 = 1.0 / std::sqrt(2.0);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if (Idx & Bit)
        continue;
      if ((Idx & CtlMask) != CtlMask)
        continue;
      uint64_t Idx1 = Idx | Bit;
      Amplitude A0 = Amp[Idx], A1 = Amp[Idx1];
      Amp[Idx] = S2 * (A0 + A1);
      Amp[Idx1] = S2 * (A0 - A1);
    }
    return;
  }

  // Uncontrolled RZ: one diagonal sweep over the whole state.
  if (G == GateKind::RZ && CtlMask == 0) {
    const Amplitude I(0.0, 1.0);
    Amplitude P0 = std::exp(-I * (Param / 2)), P1 = std::exp(I * (Param / 2));
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
      Amp[Idx] *= (Idx & Bit) ? P1 : P0;
    return;
  }

  // Generic controlled-2x2 fallback (RX/RY, controlled rotations).
  Mat2 M = gateMatrix2(G, Param);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue; // Handle each pair once, from the 0 side.
    if ((Idx & CtlMask) != CtlMask)
      continue;
    uint64_t Idx1 = Idx | Bit;
    Amplitude A0 = Amp[Idx], A1 = Amp[Idx1];
    Amp[Idx] = M.M[0][0] * A0 + M.M[0][1] * A1;
    Amp[Idx1] = M.M[1][0] * A0 + M.M[1][1] * A1;
  }
}

void StateVector::applyMatrix2(unsigned Q, const Mat2 &U) {
  uint64_t Bit = qubitBit(Q);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue; // Handle each pair once, from the 0 side.
    uint64_t Idx1 = Idx | Bit;
    Amplitude A0 = Amp[Idx], A1 = Amp[Idx1];
    Amp[Idx] = U.M[0][0] * A0 + U.M[0][1] * A1;
    Amp[Idx1] = U.M[1][0] * A0 + U.M[1][1] * A1;
  }
}

void StateVector::applyDiagSweep(const std::vector<DiagEntry> &Entries) {
  // One pass over the amplitudes no matter how many phases were coalesced:
  // the sweep is memory-bound at scale, so k merged entries cost ~1/k of k
  // separate sweeps.
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    Amplitude F(1.0, 0.0);
    bool Touched = false;
    for (const DiagEntry &E : Entries) {
      if ((Idx & E.CtlMask) != E.CtlMask)
        continue;
      F *= (Idx & E.TargetBit) ? E.Phase1 : E.Phase0;
      Touched = true;
    }
    if (Touched)
      Amp[Idx] *= F;
  }
}

void StateVector::applyChannel(unsigned Q, const KrausChannel &Ch,
                               std::mt19937_64 &Rng, NoiseStats *Stats) {
  // One pass accumulates every branch's probability ||K_k |psi>||^2 —
  // trace preservation (checked at model load) makes them sum to one.
  size_t NumOps = Ch.Ops.size();
  double P[8];
  std::vector<double> PBig;
  double *Probs = P;
  if (NumOps > 8) {
    PBig.assign(NumOps, 0.0);
    Probs = PBig.data();
  } else {
    std::fill(P, P + NumOps, 0.0);
  }
  uint64_t Bit = qubitBit(Q);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue;
    Amplitude A0 = Amp[Idx], A1 = Amp[Idx | Bit];
    for (size_t K = 0; K < NumOps; ++K) {
      const Mat2 &M = Ch.Ops[K];
      Probs[K] += std::norm(M.M[0][0] * A0 + M.M[0][1] * A1) +
                  std::norm(M.M[1][0] * A0 + M.M[1][1] * A1);
    }
  }
  double Total = 0.0;
  for (size_t K = 0; K < NumOps; ++K)
    Total += Probs[K];
  // Exactly one uniform draw per application, scaled into the realized
  // total so floating-point drift can never leave the draw unclaimed.
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  double U = Dist(Rng) * Total;
  size_t Pick = 0;
  bool Found = false;
  double Cum = 0.0;
  for (size_t K = 0; K < NumOps; ++K) {
    if (Probs[K] <= 0.0)
      continue; // A dead branch (zero operator, or annihilated state).
    Pick = K;   // Last live branch absorbs any rounding remainder.
    Found = true;
    Cum += Probs[K];
    if (U < Cum)
      break;
  }
  assert(Found && "channel annihilated the state");
  if (!Found)
    return;
  if (Stats) {
    Stats->ChannelApps.fetch_add(1, std::memory_order_relaxed);
    if (Pick != 0)
      Stats->ErrorBranches.fetch_add(1, std::memory_order_relaxed);
  }
  double Norm = 1.0 / std::sqrt(Probs[Pick]);
  Mat2 U2 = Ch.Ops[Pick];
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      U2.M[I][J] *= Norm;
  applyMatrix2(Q, U2);
}

double StateVector::probOne(unsigned Q) const {
  uint64_t Bit = qubitBit(Q);
  double P = 0.0;
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    if (Idx & Bit)
      P += std::norm(Amp[Idx]);
  return P;
}

bool StateVector::measure(unsigned Q, std::mt19937_64 &Rng) {
  double P1 = probOne(Q);
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  bool One = Dist(Rng) < P1;
  uint64_t Bit = qubitBit(Q);
  double Norm = std::sqrt(One ? P1 : 1.0 - P1);
  if (Norm < 1e-300)
    Norm = 1.0;
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    bool IsOne = Idx & Bit;
    if (IsOne == One)
      Amp[Idx] /= Norm;
    else
      Amp[Idx] = Amplitude(0.0, 0.0);
  }
  return One;
}

void StateVector::reset(unsigned Q, std::mt19937_64 &Rng) {
  if (measure(Q, Rng))
    apply(GateKind::X, {}, {Q}, 0.0);
}

double StateVector::overlap(const StateVector &Other) const {
  assert(Amp.size() == Other.Amp.size());
  Amplitude Dot(0.0, 0.0);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    Dot += std::conj(Other.Amp[Idx]) * Amp[Idx];
  return std::abs(Dot);
}

namespace {

std::mt19937_64 shotRng(uint64_t Seed) {
  return std::mt19937_64(Seed * 0x9E3779B97F4A7C15ull + 0xDEADBEEF);
}

/// The per-run noise hookup of the trajectory executor: the resolved
/// channel plan plus the model (for readout errors) and the optional
/// diagnostics counters. Null context means ideal execution.
struct TrajectoryContext {
  const NoisePlan *Plan = nullptr;
  const NoiseModel *Model = nullptr;
  NoiseStats *Stats = nullptr;
};

/// Executes one instruction on \p SV (honoring its classical condition),
/// recording bits into \p R. Shared by the fused and unfused paths so
/// instruction semantics can never diverge between them. \p Noise, if
/// given, makes this a trajectory step: one sampled Kraus branch per
/// channel attached to instruction \p Idx, and readout error on the
/// recorded measurement bit (the collapsed state is untouched, and
/// feed-forward reads the noisy bit). A condition-skipped gate applies no
/// noise and consumes no randomness.
void executeInstr(const CircuitInstr &I, size_t Idx, StateVector &SV,
                  ShotResult &R, std::mt19937_64 &Rng,
                  const TrajectoryContext *Noise) {
  if (I.CondBit >= 0 &&
      R.Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
    return;
  switch (I.TheKind) {
  case CircuitInstr::Kind::Gate:
    SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    if (Noise)
      for (const NoiseOp &Op : Noise->Plan->PerInstr[Idx])
        SV.applyChannel(Op.Qubit, *Op.Channel, Rng, Noise->Stats);
    break;
  case CircuitInstr::Kind::Measure: {
    bool Outcome = SV.measure(I.Targets[0], Rng);
    if (Noise)
      Outcome = applyReadoutError(Noise->Model->readoutFor(I.Targets[0]),
                                  Outcome, Rng, Noise->Stats);
    R.Bits[static_cast<unsigned>(I.Cbit)] = Outcome;
    break;
  }
  case CircuitInstr::Kind::Reset:
    SV.reset(I.Targets[0], Rng);
    break;
  }
}

/// Executes instructions [Start, end) on \p SV, recording bits into \p R.
void execute(const Circuit &C, size_t Start, StateVector &SV, ShotResult &R,
             std::mt19937_64 &Rng, const TrajectoryContext *Noise = nullptr) {
  for (size_t N = Start; N < C.Instrs.size(); ++N)
    executeInstr(C.Instrs[N], N, SV, R, Rng, Noise);
}

/// Executes fused ops [Begin, End) on \p SV, recording bits into \p R.
void executeFused(const FusedCircuit &FC, size_t Begin, size_t End,
                  StateVector &SV, ShotResult &R, std::mt19937_64 &Rng,
                  const TrajectoryContext *Noise = nullptr) {
  const Circuit &C = *FC.Source;
  for (size_t N = Begin; N < End; ++N) {
    const FusedOp &Op = FC.Ops[N];
    switch (Op.TheKind) {
    case FusedOp::Kind::Unitary:
      SV.applyMatrix2(Op.Target, Op.U);
      break;
    case FusedOp::Kind::Diag:
      SV.applyDiagSweep(Op.Diag);
      break;
    case FusedOp::Kind::Instr:
      executeInstr(C.Instrs[Op.InstrIndex], Op.InstrIndex, SV, R, Rng,
                   Noise);
      break;
    }
  }
}

/// Available physical memory in bytes, or 0 if the OS won't say. Prefers
/// /proc/meminfo's MemAvailable (free + reclaimable page cache — what an
/// allocation can actually get) over _SC_AVPHYS_PAGES, which counts only
/// truly-free pages and collapses under a warm page cache.
uint64_t availablePhysicalMemory() {
  if (std::ifstream Meminfo{"/proc/meminfo"}) {
    std::string Key;
    uint64_t KiB;
    while (Meminfo >> Key >> KiB) {
      if (Key == "MemAvailable:")
        return KiB * 1024;
      Meminfo.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    }
  }
#if defined(_SC_AVPHYS_PAGES) && defined(_SC_PAGESIZE)
  long Pages = sysconf(_SC_AVPHYS_PAGES);
  long PageSize = sysconf(_SC_PAGESIZE);
  if (Pages > 0 && PageSize > 0)
    return uint64_t(Pages) * uint64_t(PageSize);
#endif
  return 0;
}

} // namespace

unsigned StatevectorBackend::maxQubits(const RunOptions &Opts) {
  if (Opts.MaxStateQubits)
    return Opts.MaxStateQubits < HardMaxQubits ? Opts.MaxStateQubits
                                               : HardMaxQubits;
  uint64_t Avail = availablePhysicalMemory();
  if (Avail == 0)
    return 26; // No answer from the OS: the historical fixed cap.
  // The shared prefix state plus one per-shot fork must fit in half of
  // available memory (one state within a quarter), leaving the rest to
  // the process and the OS. runBatch shrinks its worker count to match
  // (fewer forks near the cap), so admitting a circuit here never commits
  // the runner to more memory than this budget.
  uint64_t Budget = Avail / 4;
  unsigned Cap = 0;
  while (Cap < HardMaxQubits &&
         (uint64_t(sizeof(Amplitude)) << (Cap + 1)) <= Budget)
    ++Cap;
  return Cap;
}

bool StatevectorBackend::supports(const Circuit &C,
                                  const CircuitProfile &) const {
  return C.NumQubits <= maxQubits();
}

ShotResult StatevectorBackend::run(const Circuit &C, uint64_t Seed) const {
  StateVector SV(C.NumQubits);
  std::mt19937_64 Rng = shotRng(Seed);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  execute(C, 0, SV, R, Rng);
  return R;
}

bool StatevectorBackend::supportsNoise(const NoiseModel &) const {
  return true;
}

ShotResult StatevectorBackend::runNoisy(const Circuit &C, uint64_t Seed,
                                        const NoiseModel &Noise,
                                        NoiseStats *Stats) const {
  NoisePlan Plan = planNoise(Noise, C);
  TrajectoryContext Ctx{&Plan, &Noise, Stats};
  StateVector SV(C.NumQubits);
  std::mt19937_64 Rng = shotRng(Seed);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  execute(C, 0, SV, R, Rng, &Ctx);
  return R;
}

std::vector<ShotResult>
StatevectorBackend::runBatch(const Circuit &C, unsigned Shots, uint64_t Seed,
                             const RunOptions &Opts) const {
  if (Shots == 0)
    return {};

  // Resolve the noise plan once per batch; per-shot trajectory execution
  // then never touches a map.
  const NoiseModel *Noise =
      Opts.Noise && !Opts.Noise->empty() ? Opts.Noise : nullptr;
  NoisePlan Plan;
  TrajectoryContext Ctx;
  const TrajectoryContext *Traj = nullptr;
  if (Noise) {
    Plan = planNoise(*Noise, C);
    Ctx = {&Plan, Noise, Opts.NoiseCounters};
    Traj = &Ctx;
  }

  // Build the execution plan: fused ops or the raw instruction stream,
  // each with its unconditional-prefix boundary. Noisy gates consume
  // per-shot randomness, so the shared prefix ends at the first of them
  // (fuseCircuit's channel barriers do the same at op granularity).
  FusedCircuit FC;
  size_t Prefix;
  if (Opts.Fuse) {
    FC = fuseCircuit(C, Noise);
    Prefix = FC.UnconditionalPrefixOps;
  } else {
    Prefix = analyzeCircuit(C).UnconditionalGatePrefix;
    if (Noise && Plan.FirstNoisyInstr < Prefix)
      Prefix = Plan.FirstNoisyInstr;
  }

  // The unconditional prefix is identical for every shot and consumes no
  // randomness (and reads no bits): simulate it once on the shared state.
  StateVector Shared(C.NumQubits);
  {
    ShotResult Scratch;
    Scratch.Bits.assign(C.NumBits, false);
    std::mt19937_64 Unused = shotRng(0);
    if (Opts.Fuse)
      executeFused(FC, 0, Prefix, Shared, Scratch, Unused);
    else
      for (size_t N = 0; N < Prefix; ++N)
        executeInstr(C.Instrs[N], N, Shared, Scratch, Unused, nullptr);
  }

  // Runs the post-prefix remainder of shot S on \p SV. Shot S always uses
  // deriveShotSeed(Seed, S) and lands at Results[S], so the outcome is
  // independent of worker count and matches the serial path.
  auto runRest = [&](StateVector &SV, unsigned S) {
    std::mt19937_64 Rng = shotRng(deriveShotSeed(Seed, S));
    ShotResult R;
    R.Bits.assign(C.NumBits, false);
    if (Opts.Fuse)
      executeFused(FC, Prefix, FC.Ops.size(), SV, R, Rng, Traj);
    else
      execute(C, Prefix, SV, R, Rng, Traj);
    return R;
  };

  std::vector<ShotResult> Results(Shots);
  if (Shots == 1) {
    // Single shot: finish directly on the shared state, no fork.
    Results[0] = runRest(Shared, 0);
    return Results;
  }

  unsigned Jobs = resolveJobCount(Opts.Jobs, Shots);
  if (uint64_t Avail = availablePhysicalMemory()) {
    // Each in-flight shot forks the shared state, so near the qubit cap
    // shrink the worker count until shared + forks fit in half of
    // available memory — the budget maxQubits admitted the circuit under.
    uint64_t StateBytes = uint64_t(sizeof(Amplitude)) << C.NumQubits;
    uint64_t MaxStates = (Avail / 2) / StateBytes;
    if (MaxStates <= Jobs) // Shared + Jobs forks would not fit.
      Jobs = MaxStates > 1 ? static_cast<unsigned>(MaxStates - 1) : 1;
  }
  parallelShotLoop(Jobs, Shots, [&](unsigned S) {
    StateVector SV = Shared;
    Results[S] = runRest(SV, S);
  });
  return Results;
}
