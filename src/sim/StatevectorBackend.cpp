//===- StatevectorBackend.cpp - Dense state-vector engine -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StatevectorBackend.h"

#include "noise/NoiseModel.h"
#include "sim/CircuitAnalysis.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

using namespace asdf;

namespace {

/// Below this many pairs (or groups) a kernel runs serial: waking the
/// worker pool costs more than the sweep itself.
constexpr uint64_t KernelMinChunk = uint64_t(1) << 13;

/// Fixed reduction granularity, in pairs: probability sums accumulate per
/// chunk and combine in chunk order, so the rounding — and therefore every
/// sampled measurement — is identical for any worker count, including the
/// serial reference.
constexpr uint64_t ReduceChunk = uint64_t(1) << 16;

/// Unpacks the set bits of \p Mask into \p Out, sorted ascending.
unsigned collectBits(uint64_t Mask, uint64_t *Out) {
  unsigned K = 0;
  while (Mask) {
    uint64_t B = Mask & (~Mask + 1);
    Out[K++] = B;
    Mask ^= B;
  }
  return K;
}

/// Visits pair indices [PBegin, PEnd) of the single uncontrolled target
/// \p Bit as maximal contiguous runs: Body(I0, Run) covers low-half
/// indices I0 .. I0+Run-1, with the high halves at +Bit — two
/// unit-stride streams the compiler can vectorize.
template <class Fn>
void forPairRuns(uint64_t PBegin, uint64_t PEnd, uint64_t Bit, Fn &&Body) {
  while (PBegin < PEnd) {
    uint64_t Run = Bit - (PBegin & (Bit - 1));
    if (Run > PEnd - PBegin)
      Run = PEnd - PBegin;
    Body(insertZeroBit(PBegin, Bit), Run);
    PBegin += Run;
  }
}

/// Dense fixed-dimension block apply over groups [B, E): compile-time
/// loop bounds and split re/im matrix planes let the compiler unroll and
/// vectorize the 2^m x 2^m multiply that dominates rotation-dense blocks.
template <unsigned Dim>
void applyBlockDense(Amplitude *A, const double *__restrict Ur,
                     const double *__restrict Ui, const uint64_t *Pinned,
                     const uint64_t *Offset, unsigned M, uint64_t B,
                     uint64_t E) {
  for (uint64_t G = B; G < E; ++G) {
    uint64_t Base = insertZeroBits(G, Pinned, M);
    double Vr[Dim], Vi[Dim];
    for (unsigned S = 0; S < Dim; ++S) {
      Amplitude V = A[Base | Offset[S]];
      Vr[S] = V.real();
      Vi[S] = V.imag();
    }
    double Wr[Dim], Wi[Dim];
    for (unsigned R = 0; R < Dim; ++R) {
      double Ar = 0.0, Ai = 0.0;
      const double *__restrict RowR = Ur + size_t(R) * Dim;
      const double *__restrict RowI = Ui + size_t(R) * Dim;
      for (unsigned S = 0; S < Dim; ++S) {
        Ar += RowR[S] * Vr[S] - RowI[S] * Vi[S];
        Ai += RowR[S] * Vi[S] + RowI[S] * Vr[S];
      }
      Wr[R] = Ar;
      Wi[R] = Ai;
    }
    for (unsigned S = 0; S < Dim; ++S)
      A[Base | Offset[S]] = Amplitude(Wr[S], Wi[S]);
  }
}

} // namespace

StateVector::StateVector(unsigned NumQubits) : NumQubits(NumQubits) {
  assert(NumQubits <= StatevectorBackend::HardMaxQubits &&
         "state vector too large");
  Amp.assign(uint64_t(1) << NumQubits, Amplitude(0.0, 0.0));
  Amp[0] = Amplitude(1.0, 0.0);
}

void StateVector::setBasisState(uint64_t Index) {
  std::fill(Amp.begin(), Amp.end(), Amplitude(0.0, 0.0));
  Amp[Index] = Amplitude(1.0, 0.0);
}

namespace {

/// The phase a diagonal gate puts on |1> (it puts 1 on |0>), or nullopt if
/// the gate is not diagonal-with-unit-top-left.
bool diagonalPhase(GateKind G, double Theta, Amplitude &Phase) {
  const Amplitude I(0.0, 1.0);
  switch (G) {
  case GateKind::Z:
    Phase = Amplitude(-1.0, 0.0);
    return true;
  case GateKind::S:
    Phase = I;
    return true;
  case GateKind::Sdg:
    Phase = -I;
    return true;
  case GateKind::T:
    Phase = std::exp(I * (M_PI / 4.0));
    return true;
  case GateKind::Tdg:
    Phase = std::exp(-I * (M_PI / 4.0));
    return true;
  case GateKind::P:
    Phase = std::exp(I * Theta);
    return true;
  default:
    return false;
  }
}

} // namespace

void StateVector::bumpStats(uint64_t Touched, bool Fused, bool Block) const {
  if (!Stats)
    return;
  // Plain increments: each engine instance owns (or exclusively borrows)
  // its SimStats; parallel shot runners merge per-worker copies at join.
  ++(Fused ? Stats->FusedOps : Stats->GatesApplied);
  if (Block)
    ++Stats->FusedBlocks;
  Stats->AmplitudesTouched += Touched;
}

void StateVector::phaseSweep(uint64_t Mask, Amplitude Phase) {
  // Strided: enumerate exactly the 2^(n-k) indices with every Mask bit
  // set by bit insertion — no filtered full scan.
  uint64_t Pinned[64];
  unsigned K = collectBits(Mask, Pinned);
  uint64_t Num = Amp.size() >> K;
  Amplitude *A = Amp.data();
  parallelIndexLoop(ParJobs, Num, KernelMinChunk,
                    [&](uint64_t B, uint64_t E) {
                      for (uint64_t J = B; J < E; ++J)
                        A[insertZeroBits(J, Pinned, K) | Mask] *= Phase;
                    });
}

void StateVector::pairSwap(uint64_t CtlMask, uint64_t Bit) {
  uint64_t Pinned[64];
  unsigned K = collectBits(CtlMask | Bit, Pinned);
  uint64_t Num = Amp.size() >> K;
  Amplitude *A = Amp.data();
  if (CtlMask == 0) {
    parallelIndexLoop(
        ParJobs, Num, KernelMinChunk, [&](uint64_t B, uint64_t E) {
          forPairRuns(B, E, Bit, [&](uint64_t I0, uint64_t Run) {
            Amplitude *__restrict P0 = A + I0;
            Amplitude *__restrict P1 = A + (I0 + Bit);
            for (uint64_t X = 0; X < Run; ++X)
              std::swap(P0[X], P1[X]);
          });
        });
    return;
  }
  parallelIndexLoop(ParJobs, Num, KernelMinChunk,
                    [&](uint64_t B, uint64_t E) {
                      for (uint64_t J = B; J < E; ++J) {
                        uint64_t I0 =
                            insertZeroBits(J, Pinned, K) | CtlMask;
                        std::swap(A[I0], A[I0 | Bit]);
                      }
                    });
}

void StateVector::matrix2Kernel(uint64_t CtlMask, uint64_t Bit,
                                const Mat2 &U) {
  uint64_t Pinned[64];
  unsigned K = collectBits(CtlMask | Bit, Pinned);
  uint64_t Num = Amp.size() >> K;
  Amplitude *A = Amp.data();
  const Amplitude U00 = U.M[0][0], U01 = U.M[0][1];
  const Amplitude U10 = U.M[1][0], U11 = U.M[1][1];
  if (CtlMask == 0) {
    parallelIndexLoop(
        ParJobs, Num, KernelMinChunk, [&](uint64_t B, uint64_t E) {
          forPairRuns(B, E, Bit, [&](uint64_t I0, uint64_t Run) {
            Amplitude *__restrict P0 = A + I0;
            Amplitude *__restrict P1 = A + (I0 + Bit);
            for (uint64_t X = 0; X < Run; ++X) {
              Amplitude A0 = P0[X], A1 = P1[X];
              P0[X] = U00 * A0 + U01 * A1;
              P1[X] = U10 * A0 + U11 * A1;
            }
          });
        });
    return;
  }
  parallelIndexLoop(ParJobs, Num, KernelMinChunk,
                    [&](uint64_t B, uint64_t E) {
                      for (uint64_t J = B; J < E; ++J) {
                        uint64_t I0 =
                            insertZeroBits(J, Pinned, K) | CtlMask;
                        uint64_t I1 = I0 | Bit;
                        Amplitude A0 = A[I0], A1 = A[I1];
                        A[I0] = U00 * A0 + U01 * A1;
                        A[I1] = U10 * A0 + U11 * A1;
                      }
                    });
}

void StateVector::apply(GateKind G, const std::vector<unsigned> &Controls,
                        const std::vector<unsigned> &Targets, double Param) {
  uint64_t CtlMask = 0;
  for (unsigned C : Controls)
    CtlMask |= qubitBit(C);

  if (G == GateKind::Swap) {
    assert(Targets.size() == 2);
    uint64_t BitA = qubitBit(Targets[0]);
    uint64_t BitB = qubitBit(Targets[1]);
    if (CtlMask & (BitA | BitB)) {
      // Degenerate control-overlaps-target swap: keep the historical
      // filtered-loop semantics verbatim (too rare to deserve a kernel).
      for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
        if ((Idx & CtlMask) != CtlMask)
          continue;
        bool A = Idx & BitA, Bb = Idx & BitB;
        if (A && !Bb)
          std::swap(Amp[Idx], Amp[(Idx & ~BitA) | BitB]);
      }
      bumpStats(Amp.size(), false);
      return;
    }
    // Strided: pin the controls high, target A high, target B low — every
    // (|..1..0..>, |..0..1..>) pair enumerated exactly once.
    uint64_t Pinned[64];
    unsigned K = collectBits(CtlMask | BitA | BitB, Pinned);
    uint64_t Num = Amp.size() >> K;
    Amplitude *A = Amp.data();
    parallelIndexLoop(ParJobs, Num, KernelMinChunk,
                      [&](uint64_t B, uint64_t E) {
                        for (uint64_t J = B; J < E; ++J) {
                          uint64_t I = insertZeroBits(J, Pinned, K) |
                                       CtlMask | BitA;
                          std::swap(A[I], A[(I & ~BitA) | BitB]);
                        }
                      });
    bumpStats(2 * Num, false);
    return;
  }

  assert(Targets.size() == 1);
  uint64_t Bit = qubitBit(Targets[0]);
  if (CtlMask & Bit)
    return; // Degenerate control == target: no pair has the control set and
            // the target clear, so this was always a no-op.

  uint64_t NumPairs = Amp.size() >> (1 + std::popcount(CtlMask));

  // Diagonal gates collapse to a single strided phase sweep at any control
  // count: the phase lands exactly where all controls and the target read 1.
  Amplitude Phase;
  if (diagonalPhase(G, Param, Phase)) {
    phaseSweep(CtlMask | Bit, Phase);
    bumpStats(NumPairs, false);
    return;
  }

  // X at any control count is a pure pair permutation (X, CX, Toffoli...).
  if (G == GateKind::X) {
    pairSwap(CtlMask, Bit);
    bumpStats(2 * NumPairs, false);
    return;
  }

  // Y: permutation plus a fixed +-i twist.
  if (G == GateKind::Y) {
    const Amplitude I(0.0, 1.0);
    Amplitude *A = Amp.data();
    if (CtlMask == 0) {
      parallelIndexLoop(
          ParJobs, NumPairs, KernelMinChunk, [&](uint64_t B, uint64_t E) {
            forPairRuns(B, E, Bit, [&](uint64_t I0, uint64_t Run) {
              double *__restrict P0 = reinterpret_cast<double *>(A + I0);
              double *__restrict P1 =
                  reinterpret_cast<double *>(A + (I0 + Bit));
              for (uint64_t X = 0; X < Run; ++X) {
                double Re0 = P0[2 * X], Im0 = P0[2 * X + 1];
                double Re1 = P1[2 * X], Im1 = P1[2 * X + 1];
                P0[2 * X] = Im1;      // -i * A1
                P0[2 * X + 1] = -Re1;
                P1[2 * X] = -Im0;     // i * A0
                P1[2 * X + 1] = Re0;
              }
            });
          });
    } else {
      uint64_t Pinned[64];
      unsigned K = collectBits(CtlMask | Bit, Pinned);
      parallelIndexLoop(ParJobs, NumPairs, KernelMinChunk,
                        [&](uint64_t B, uint64_t E) {
                          for (uint64_t J = B; J < E; ++J) {
                            uint64_t I0 =
                                insertZeroBits(J, Pinned, K) | CtlMask;
                            uint64_t I1 = I0 | Bit;
                            Amplitude A0 = A[I0];
                            A[I0] = -I * A[I1];
                            A[I1] = I * A0;
                          }
                        });
    }
    bumpStats(2 * NumPairs, false);
    return;
  }

  // H: real butterfly over restrict-qualified re/im data — contiguous,
  // auto-vectorizable, no complex matrix products.
  if (G == GateKind::H && CtlMask == 0) {
    const double S2 = 1.0 / std::sqrt(2.0);
    Amplitude *A = Amp.data();
    parallelIndexLoop(
        ParJobs, NumPairs, KernelMinChunk, [&](uint64_t B, uint64_t E) {
          forPairRuns(B, E, Bit, [&](uint64_t I0, uint64_t Run) {
            double *__restrict P0 = reinterpret_cast<double *>(A + I0);
            double *__restrict P1 =
                reinterpret_cast<double *>(A + (I0 + Bit));
            for (uint64_t X = 0; X < 2 * Run; ++X) {
              double A0 = P0[X], A1 = P1[X];
              P0[X] = S2 * (A0 + A1);
              P1[X] = S2 * (A0 - A1);
            }
          });
        });
    bumpStats(2 * NumPairs, false);
    return;
  }
  if (G == GateKind::H) {
    const double S2 = 1.0 / std::sqrt(2.0);
    uint64_t Pinned[64];
    unsigned K = collectBits(CtlMask | Bit, Pinned);
    Amplitude *A = Amp.data();
    parallelIndexLoop(ParJobs, NumPairs, KernelMinChunk,
                      [&](uint64_t B, uint64_t E) {
                        for (uint64_t J = B; J < E; ++J) {
                          uint64_t I0 =
                              insertZeroBits(J, Pinned, K) | CtlMask;
                          uint64_t I1 = I0 | Bit;
                          Amplitude A0 = A[I0], A1 = A[I1];
                          A[I0] = S2 * (A0 + A1);
                          A[I1] = S2 * (A0 - A1);
                        }
                      });
    bumpStats(2 * NumPairs, false);
    return;
  }

  // Uncontrolled RZ: a contiguous diagonal sweep over the whole state.
  if (G == GateKind::RZ && CtlMask == 0) {
    const Amplitude I(0.0, 1.0);
    Amplitude P0 = std::exp(-I * (Param / 2)), P1 = std::exp(I * (Param / 2));
    Amplitude *A = Amp.data();
    parallelIndexLoop(
        ParJobs, NumPairs, KernelMinChunk, [&](uint64_t B, uint64_t E) {
          forPairRuns(B, E, Bit, [&](uint64_t I0, uint64_t Run) {
            Amplitude *__restrict Lo = A + I0;
            Amplitude *__restrict Hi = A + (I0 + Bit);
            for (uint64_t X = 0; X < Run; ++X) {
              Lo[X] *= P0;
              Hi[X] *= P1;
            }
          });
        });
    bumpStats(2 * NumPairs, false);
    return;
  }

  // Generic controlled-2x2 fallback (RX/RY, controlled rotations).
  matrix2Kernel(CtlMask, Bit, gateMatrix2(G, Param));
  bumpStats(2 * NumPairs, false);
}

void StateVector::applyMatrix2(unsigned Q, const Mat2 &U) {
  matrix2Kernel(0, qubitBit(Q), U);
  bumpStats(Amp.size(), true);
}

void StateVector::applyBlock(const std::vector<unsigned> &Qubits,
                             const std::vector<Amplitude> &U) {
  const unsigned M = static_cast<unsigned>(Qubits.size());
  assert(M >= 1 && M <= MaxFuseQubits && "block support out of range");
  const unsigned Dim = 1u << M;
  assert(U.size() == size_t(Dim) * Dim && "block matrix size mismatch");

  // Qubits[0] owns the local MSB; Offset[s] is the global-bit pattern of
  // local basis state s.
  uint64_t Bits[MaxFuseQubits], Pinned[MaxFuseQubits];
  for (unsigned J = 0; J < M; ++J)
    Bits[J] = qubitBit(Qubits[J]);
  std::copy(Bits, Bits + M, Pinned);
  std::sort(Pinned, Pinned + M);
  uint64_t Offset[64];
  for (unsigned S = 0; S < Dim; ++S) {
    uint64_t O = 0;
    for (unsigned J = 0; J < M; ++J)
      if ((S >> (M - 1 - J)) & 1)
        O |= Bits[J];
    Offset[S] = O;
  }

  // Row-wise nonzero lists: permutation-heavy blocks (CX ladders) touch
  // one or two columns per row, so skipping structural zeros matters.
  std::vector<unsigned> NzCol;
  std::vector<Amplitude> NzVal;
  unsigned NzBegin[65];
  NzCol.reserve(size_t(Dim) * Dim);
  NzVal.reserve(size_t(Dim) * Dim);
  for (unsigned R = 0; R < Dim; ++R) {
    NzBegin[R] = static_cast<unsigned>(NzCol.size());
    for (unsigned Cc = 0; Cc < Dim; ++Cc) {
      Amplitude V = U[size_t(R) * Dim + Cc];
      if (V != Amplitude(0.0, 0.0)) {
        NzCol.push_back(Cc);
        NzVal.push_back(V);
      }
    }
  }
  NzBegin[Dim] = static_cast<unsigned>(NzCol.size());

  uint64_t NumGroups = Amp.size() >> M;
  Amplitude *A = Amp.data();

  // Dense blocks (rotation products) go through the vectorized
  // fixed-dimension multiply; sparse ones (permutation-heavy CX ladders)
  // keep the nonzero walk, which skips most of the 4^m products.
  bool Sparse = NzCol.size() <= size_t(Dim) * Dim / 4;
  if (!Sparse) {
    std::vector<double> Planes(2 * size_t(Dim) * Dim);
    double *Ur = Planes.data(), *Ui = Planes.data() + size_t(Dim) * Dim;
    for (size_t I = 0; I < size_t(Dim) * Dim; ++I) {
      Ur[I] = U[I].real();
      Ui[I] = U[I].imag();
    }
    parallelIndexLoop(
        ParJobs, NumGroups, KernelMinChunk >> (M - 1),
        [&](uint64_t B, uint64_t E) {
          switch (M) {
          case 1:
            applyBlockDense<2>(A, Ur, Ui, Pinned, Offset, M, B, E);
            break;
          case 2:
            applyBlockDense<4>(A, Ur, Ui, Pinned, Offset, M, B, E);
            break;
          case 3:
            applyBlockDense<8>(A, Ur, Ui, Pinned, Offset, M, B, E);
            break;
          case 4:
            applyBlockDense<16>(A, Ur, Ui, Pinned, Offset, M, B, E);
            break;
          case 5:
            applyBlockDense<32>(A, Ur, Ui, Pinned, Offset, M, B, E);
            break;
          default:
            applyBlockDense<64>(A, Ur, Ui, Pinned, Offset, M, B, E);
            break;
          }
        });
    bumpStats(Amp.size(), true, true);
    return;
  }

  parallelIndexLoop(
      ParJobs, NumGroups, KernelMinChunk >> (M - 1),
      [&](uint64_t B, uint64_t E) {
        Amplitude V[64], W[64];
        for (uint64_t G = B; G < E; ++G) {
          uint64_t Base = insertZeroBits(G, Pinned, M);
          for (unsigned S = 0; S < Dim; ++S)
            V[S] = A[Base | Offset[S]];
          for (unsigned R = 0; R < Dim; ++R) {
            Amplitude Acc(0.0, 0.0);
            for (unsigned Z = NzBegin[R]; Z < NzBegin[R + 1]; ++Z)
              Acc += NzVal[Z] * V[NzCol[Z]];
            W[R] = Acc;
          }
          for (unsigned S = 0; S < Dim; ++S)
            A[Base | Offset[S]] = W[S];
        }
      });
  bumpStats(Amp.size(), true, true);
}

void StateVector::applyDiagSweep(const std::vector<DiagEntry> &Entries) {
  Amplitude *A = Amp.data();
  if (Entries.size() == 1) {
    // A lone entry touches only the 2^(n-c) amplitudes its controls
    // select: strided enumeration, both target halves, branch-free.
    const DiagEntry &D = Entries[0];
    assert(D.TargetBit && "diag entry without a target bit");
    uint64_t Pinned[64];
    unsigned K = collectBits(D.CtlMask | D.TargetBit, Pinned);
    uint64_t Num = Amp.size() >> K;
    const Amplitude P0 = D.Phase0, P1 = D.Phase1;
    parallelIndexLoop(ParJobs, Num, KernelMinChunk,
                      [&](uint64_t B, uint64_t E) {
                        for (uint64_t J = B; J < E; ++J) {
                          uint64_t I0 =
                              insertZeroBits(J, Pinned, K) | D.CtlMask;
                          A[I0] *= P0;
                          A[I0 | D.TargetBit] *= P1;
                        }
                      });
    bumpStats(2 * Num, true);
    return;
  }
  // Coalesced entries: one pass over the amplitudes no matter how many
  // phases were merged — the sweep is memory-bound at scale, so k merged
  // entries cost ~1/k of k separate sweeps. Each index is independent, so
  // the pass splits freely across workers.
  parallelIndexLoop(
      ParJobs, Amp.size(), 2 * KernelMinChunk, [&](uint64_t B, uint64_t E) {
        for (uint64_t Idx = B; Idx < E; ++Idx) {
          Amplitude F(1.0, 0.0);
          bool Touched = false;
          for (const DiagEntry &D : Entries) {
            if ((Idx & D.CtlMask) != D.CtlMask)
              continue;
            F *= (Idx & D.TargetBit) ? D.Phase1 : D.Phase0;
            Touched = true;
          }
          if (Touched)
            A[Idx] *= F;
        }
      });
  bumpStats(Amp.size(), true);
}

void StateVector::applyChannel(unsigned Q, const KrausChannel &Ch,
                               std::mt19937_64 &Rng, NoiseStats *NStats) {
  // One pass accumulates every branch's probability ||K_k |psi>||^2 —
  // trace preservation (checked at model load) makes them sum to one.
  // Fixed-chunk partial sums combined in chunk order keep the result
  // bit-identical for any worker count.
  size_t NumOps = Ch.Ops.size();
  uint64_t Bit = qubitBit(Q);
  uint64_t NumPairs = Amp.size() >> 1;
  uint64_t NumChunks = (NumPairs + ReduceChunk - 1) / ReduceChunk;
  // Stack fast path for the common shape — a handful of Kraus ops on a
  // small state means one chunk — so trajectory runs on little circuits
  // (thousands of noisy gates per second) never pay two heap
  // allocations per channel application.
  double ProbsBuf[8], PartialBuf[64];
  std::vector<double> ProbsVec, PartialVec;
  double *Probs = ProbsBuf, *Partial = PartialBuf;
  if (NumOps > 8) {
    ProbsVec.assign(NumOps, 0.0);
    Probs = ProbsVec.data();
  } else {
    std::fill(ProbsBuf, ProbsBuf + NumOps, 0.0);
  }
  if (NumChunks * NumOps > 64) {
    PartialVec.assign(NumChunks * NumOps, 0.0);
    Partial = PartialVec.data();
  } else {
    std::fill(PartialBuf, PartialBuf + NumChunks * NumOps, 0.0);
  }
  const Amplitude *A = Amp.data();
  parallelIndexLoop(
      ParJobs, NumChunks, 1, [&](uint64_t CB, uint64_t CE) {
        for (uint64_t C = CB; C < CE; ++C) {
          uint64_t PB = C * ReduceChunk;
          uint64_t PE = PB + ReduceChunk < NumPairs ? PB + ReduceChunk
                                                    : NumPairs;
          double *Acc = Partial + C * NumOps;
          forPairRuns(PB, PE, Bit, [&](uint64_t I0, uint64_t Run) {
            for (uint64_t X = 0; X < Run; ++X) {
              Amplitude A0 = A[I0 + X], A1 = A[I0 + X + Bit];
              for (size_t K = 0; K < NumOps; ++K) {
                const Mat2 &M = Ch.Ops[K];
                Acc[K] += std::norm(M.M[0][0] * A0 + M.M[0][1] * A1) +
                          std::norm(M.M[1][0] * A0 + M.M[1][1] * A1);
              }
            }
          });
        }
      });
  for (uint64_t C = 0; C < NumChunks; ++C)
    for (size_t K = 0; K < NumOps; ++K)
      Probs[K] += Partial[C * NumOps + K];
  double Total = 0.0;
  for (size_t K = 0; K < NumOps; ++K)
    Total += Probs[K];
  // Exactly one uniform draw per application, scaled into the realized
  // total so floating-point drift can never leave the draw unclaimed.
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  double U = Dist(Rng) * Total;
  size_t Pick = 0;
  bool Found = false;
  double Cum = 0.0;
  for (size_t K = 0; K < NumOps; ++K) {
    if (Probs[K] <= 0.0)
      continue; // A dead branch (zero operator, or annihilated state).
    Pick = K;   // Last live branch absorbs any rounding remainder.
    Found = true;
    Cum += Probs[K];
    if (U < Cum)
      break;
  }
  assert(Found && "channel annihilated the state");
  if (!Found)
    return;
  if (NStats) {
    NStats->ChannelApps.fetch_add(1, std::memory_order_relaxed);
    if (Pick != 0)
      NStats->ErrorBranches.fetch_add(1, std::memory_order_relaxed);
  }
  double Norm = 1.0 / std::sqrt(Probs[Pick]);
  Mat2 U2 = Ch.Ops[Pick];
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      U2.M[I][J] *= Norm;
  matrix2Kernel(0, Bit, U2);
  bumpStats(2 * Amp.size(), false); // probability pass + branch apply
}

double StateVector::reduceOneProb(uint64_t Bit) const {
  // Fixed-chunk partial sums, combined in chunk order: the probability —
  // and therefore every sampled measurement — rounds identically for any
  // worker count, including the serial reference.
  uint64_t NumPairs = Amp.size() >> 1;
  if (NumPairs == 0)
    return 0.0;
  uint64_t NumChunks = (NumPairs + ReduceChunk - 1) / ReduceChunk;
  std::vector<double> Partial(NumChunks, 0.0);
  const Amplitude *A = Amp.data();
  parallelIndexLoop(
      ParJobs, NumChunks, 1, [&](uint64_t CB, uint64_t CE) {
        for (uint64_t C = CB; C < CE; ++C) {
          uint64_t PB = C * ReduceChunk;
          uint64_t PE = PB + ReduceChunk < NumPairs ? PB + ReduceChunk
                                                    : NumPairs;
          double S = 0.0;
          forPairRuns(PB, PE, Bit, [&](uint64_t I0, uint64_t Run) {
            const Amplitude *__restrict P1 = A + (I0 + Bit);
            for (uint64_t X = 0; X < Run; ++X)
              S += std::norm(P1[X]);
          });
          Partial[C] = S;
        }
      });
  double P = 0.0;
  for (uint64_t C = 0; C < NumChunks; ++C)
    P += Partial[C];
  return P;
}

double StateVector::probOne(unsigned Q) const {
  return reduceOneProb(qubitBit(Q));
}

bool StateVector::measure(unsigned Q, std::mt19937_64 &Rng) {
  double P1 = probOne(Q);
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  bool One = Dist(Rng) < P1;
  uint64_t Bit = qubitBit(Q);
  double Norm = std::sqrt(One ? P1 : 1.0 - P1);
  if (Norm < 1e-300)
    Norm = 1.0;
  // Collapse: scale the kept half, zero the other — two unit-stride
  // streams per pair run, no per-index branch.
  uint64_t KeepOff = One ? Bit : 0, ZeroOff = Bit ^ KeepOff;
  uint64_t NumPairs = Amp.size() >> 1;
  Amplitude *A = Amp.data();
  parallelIndexLoop(
      ParJobs, NumPairs, KernelMinChunk, [&](uint64_t B, uint64_t E) {
        forPairRuns(B, E, Bit, [&](uint64_t I0, uint64_t Run) {
          Amplitude *__restrict Keep = A + (I0 + KeepOff);
          Amplitude *__restrict Zero = A + (I0 + ZeroOff);
          for (uint64_t X = 0; X < Run; ++X) {
            Keep[X] /= Norm;
            Zero[X] = Amplitude(0.0, 0.0);
          }
        });
      });
  bumpStats(2 * Amp.size(), false); // probability pass + collapse pass
  return One;
}

void StateVector::reset(unsigned Q, std::mt19937_64 &Rng) {
  if (measure(Q, Rng))
    apply(GateKind::X, {}, {Q}, 0.0);
}

double StateVector::overlap(const StateVector &Other) const {
  assert(Amp.size() == Other.Amp.size());
  Amplitude Dot(0.0, 0.0);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    Dot += std::conj(Other.Amp[Idx]) * Amp[Idx];
  return std::abs(Dot);
}

namespace {

std::mt19937_64 shotRng(uint64_t Seed) {
  return std::mt19937_64(Seed * 0x9E3779B97F4A7C15ull + 0xDEADBEEF);
}

/// The per-run noise hookup of the trajectory executor: the resolved
/// channel plan plus the model (for readout errors) and the optional
/// diagnostics counters. Null context means ideal execution.
struct TrajectoryContext {
  const NoisePlan *Plan = nullptr;
  const NoiseModel *Model = nullptr;
  NoiseStats *Stats = nullptr;
};

/// Executes one instruction on \p SV (honoring its classical condition),
/// recording bits into \p R. Shared by the fused and unfused paths so
/// instruction semantics can never diverge between them. \p Noise, if
/// given, makes this a trajectory step: one sampled Kraus branch per
/// channel attached to instruction \p Idx, and readout error on the
/// recorded measurement bit (the collapsed state is untouched, and
/// feed-forward reads the noisy bit). A condition-skipped gate applies no
/// noise and consumes no randomness.
void executeInstr(const CircuitInstr &I, size_t Idx, StateVector &SV,
                  ShotResult &R, std::mt19937_64 &Rng,
                  const TrajectoryContext *Noise) {
  if (I.CondBit >= 0 &&
      R.Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
    return;
  switch (I.TheKind) {
  case CircuitInstr::Kind::Gate:
    SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
    if (Noise)
      for (const NoiseOp &Op : Noise->Plan->PerInstr[Idx])
        SV.applyChannel(Op.Qubit, *Op.Channel, Rng, Noise->Stats);
    break;
  case CircuitInstr::Kind::Measure: {
    bool Outcome = SV.measure(I.Targets[0], Rng);
    if (Noise)
      Outcome = applyReadoutError(Noise->Model->readoutFor(I.Targets[0]),
                                  Outcome, Rng, Noise->Stats);
    R.Bits[static_cast<unsigned>(I.Cbit)] = Outcome;
    break;
  }
  case CircuitInstr::Kind::Reset:
    SV.reset(I.Targets[0], Rng);
    break;
  }
}

/// Executes instructions [Start, end) on \p SV, recording bits into \p R.
void execute(const Circuit &C, size_t Start, StateVector &SV, ShotResult &R,
             std::mt19937_64 &Rng, const TrajectoryContext *Noise = nullptr) {
  for (size_t N = Start; N < C.Instrs.size(); ++N)
    executeInstr(C.Instrs[N], N, SV, R, Rng, Noise);
}

/// Executes fused ops [Begin, End) on \p SV, recording bits into \p R.
void executeFused(const FusedCircuit &FC, size_t Begin, size_t End,
                  StateVector &SV, ShotResult &R, std::mt19937_64 &Rng,
                  const TrajectoryContext *Noise = nullptr) {
  const Circuit &C = *FC.Source;
  for (size_t N = Begin; N < End; ++N) {
    const FusedOp &Op = FC.Ops[N];
    switch (Op.TheKind) {
    case FusedOp::Kind::Unitary:
      SV.applyMatrix2(Op.Target, Op.U);
      break;
    case FusedOp::Kind::Diag:
      SV.applyDiagSweep(Op.Diag);
      break;
    case FusedOp::Kind::Block:
      SV.applyBlock(Op.Qubits, Op.BlockU);
      break;
    case FusedOp::Kind::Instr:
      executeInstr(C.Instrs[Op.InstrIndex], Op.InstrIndex, SV, R, Rng,
                   Noise);
      break;
    }
  }
}

/// Available physical memory in bytes, or 0 if the OS won't say. Prefers
/// /proc/meminfo's MemAvailable (free + reclaimable page cache — what an
/// allocation can actually get) over _SC_AVPHYS_PAGES, which counts only
/// truly-free pages and collapses under a warm page cache.
uint64_t availablePhysicalMemory() {
  if (std::ifstream Meminfo{"/proc/meminfo"}) {
    std::string Key;
    uint64_t KiB;
    while (Meminfo >> Key >> KiB) {
      if (Key == "MemAvailable:")
        return KiB * 1024;
      Meminfo.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    }
  }
#if defined(_SC_AVPHYS_PAGES) && defined(_SC_PAGESIZE)
  long Pages = sysconf(_SC_AVPHYS_PAGES);
  long PageSize = sysconf(_SC_PAGESIZE);
  if (Pages > 0 && PageSize > 0)
    return uint64_t(Pages) * uint64_t(PageSize);
#endif
  return 0;
}

} // namespace

unsigned StatevectorBackend::maxQubits(const RunOptions &Opts) {
  if (Opts.MaxStateQubits)
    return Opts.MaxStateQubits < HardMaxQubits ? Opts.MaxStateQubits
                                               : HardMaxQubits;
  uint64_t Avail = availablePhysicalMemory();
  if (Avail == 0)
    return 26; // No answer from the OS: the historical fixed cap.
  // The shared prefix state plus one per-shot fork must fit in half of
  // available memory (one state within a quarter), leaving the rest to
  // the process and the OS. runBatch shrinks its worker count to match
  // (fewer forks near the cap), so admitting a circuit here never commits
  // the runner to more memory than this budget.
  uint64_t Budget = Avail / 4;
  unsigned Cap = 0;
  while (Cap < HardMaxQubits &&
         (uint64_t(sizeof(Amplitude)) << (Cap + 1)) <= Budget)
    ++Cap;
  return Cap;
}

bool StatevectorBackend::supports(const Circuit &C,
                                  const CircuitProfile &) const {
  return C.NumQubits <= maxQubits();
}

ShotResult StatevectorBackend::run(const Circuit &C, uint64_t Seed) const {
  assert(!C.isParametric() && "bind parameters before running");
  StateVector SV(C.NumQubits);
  std::mt19937_64 Rng = shotRng(Seed);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  execute(C, 0, SV, R, Rng);
  return R;
}

bool StatevectorBackend::supportsNoise(const NoiseModel &) const {
  return true;
}

ShotResult StatevectorBackend::runNoisy(const Circuit &C, uint64_t Seed,
                                        const NoiseModel &Noise,
                                        NoiseStats *Stats) const {
  assert(!C.isParametric() && "bind parameters before running");
  NoisePlan Plan = planNoise(Noise, C);
  TrajectoryContext Ctx{&Plan, &Noise, Stats};
  StateVector SV(C.NumQubits);
  std::mt19937_64 Rng = shotRng(Seed);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  execute(C, 0, SV, R, Rng, &Ctx);
  return R;
}

namespace {

/// The batch core behind runBatch and runSweep: executes \p Shots shots
/// of \p C under the prebuilt execution plan — fused ops \p FC (null for
/// the unfused instruction stream) with unconditional-prefix boundary
/// \p Prefix — honoring the RunOptions worker budget and deadline.
/// Factoring the plan out of the shot loop is what lets runSweep build
/// one plan per sweep point (re-materialized from a recorded recipe)
/// without re-fusing from scratch, while keeping every scheduling
/// decision, RNG stream, and kernel sequence identical to runBatch.
std::vector<ShotResult> runPlannedBatch(const Circuit &C,
                                        const FusedCircuit *FC, size_t Prefix,
                                        unsigned Shots, uint64_t Seed,
                                        const RunOptions &Opts,
                                        const TrajectoryContext *Traj) {
  if (Shots == 0)
    return {};

  // Decide where the worker budget goes (ParallelMode). The budget is
  // resolved against the machine alone — amplitude-level parallelism can
  // use every worker even for a single shot, which is exactly the
  // low-shot/large-n regime the hybrid exists for. The shared prefix is
  // one state, so it always runs amplitude-parallel; the per-shot
  // remainder goes shot-parallel only when there are enough shots to keep
  // every worker busy. Either way the results are bit-identical: kernels
  // are per-amplitude independent and reductions use fixed chunk order.
  unsigned Workers = resolveJobCount(Opts.Jobs);
  bool ShotParallelRest;
  switch (Opts.Parallel) {
  case ParallelMode::Shot:
    ShotParallelRest = true;
    break;
  case ParallelMode::Amplitude:
    ShotParallelRest = false;
    break;
  case ParallelMode::Auto:
  default:
    // Shot-parallel when there are enough shots to keep every worker
    // busy — and also when the state is too small for the kernels to
    // split profitably (below KernelMinChunk pairs they run serial, so
    // amplitude mode would leave the workers idle).
    ShotParallelRest = Shots >= 2 * Workers ||
                       (uint64_t(1) << C.NumQubits) < 2 * KernelMinChunk;
    break;
  }
  unsigned PrefixAmpJobs = Opts.Parallel == ParallelMode::Shot ? 1 : Workers;
  unsigned RestAmpJobs = ShotParallelRest ? 1 : Workers;

  // The unconditional prefix is identical for every shot and consumes no
  // randomness (and reads no bits): simulate it once on the shared state.
  StateVector Shared(C.NumQubits);
  Shared.setStats(Opts.SimCounters);
  Shared.setParallelJobs(PrefixAmpJobs);
  {
    ShotResult Scratch;
    Scratch.Bits.assign(C.NumBits, false);
    std::mt19937_64 Unused = shotRng(0);
    if (FC)
      executeFused(*FC, 0, Prefix, Shared, Scratch, Unused);
    else
      for (size_t N = 0; N < Prefix; ++N)
        executeInstr(C.Instrs[N], N, Shared, Scratch, Unused, nullptr);
  }

  // Runs the post-prefix remainder of shot S on \p SV. Shot S always uses
  // deriveShotSeed(Seed, S) and lands at Results[S], so the outcome is
  // independent of worker count and matches the serial path. The shot
  // boundary is also the cooperative deadline check: an expired deadline
  // abandons the batch here (and propagates out of the worker pool)
  // rather than mid-kernel.
  auto runRest = [&](StateVector &SV, unsigned S, SimStats *Stats) {
    if (Opts.deadlineExpired())
      throw DeadlineExceeded();
    SV.setParallelJobs(RestAmpJobs);
    SV.setStats(Stats);
    std::mt19937_64 Rng = shotRng(deriveShotSeed(Seed, S));
    ShotResult R;
    R.Bits.assign(C.NumBits, false);
    if (FC)
      executeFused(*FC, Prefix, FC->Ops.size(), SV, R, Rng, Traj);
    else
      execute(C, Prefix, SV, R, Rng, Traj);
    return R;
  };

  std::vector<ShotResult> Results(Shots);
  if (Shots == 1) {
    // Single shot: finish directly on the shared state, no fork.
    Results[0] = runRest(Shared, 0, Opts.SimCounters);
    return Results;
  }

  if (!ShotParallelRest) {
    // Amplitude-parallel remainder: shots run one after another, each
    // kernel's index range split across the workers. One fork buffer,
    // refilled per shot — no per-shot allocation.
    StateVector SV = Shared;
    for (unsigned S = 0; S < Shots; ++S) {
      if (S > 0)
        SV = Shared;
      Results[S] = runRest(SV, S, Opts.SimCounters);
    }
    return Results;
  }

  unsigned Jobs = resolveJobCount(Opts.Jobs, Shots);
  if (uint64_t Avail = availablePhysicalMemory()) {
    // Each in-flight shot forks the shared state, so near the qubit cap
    // shrink the worker count until shared + forks fit in half of
    // available memory — the budget maxQubits admitted the circuit under.
    uint64_t StateBytes = uint64_t(sizeof(Amplitude)) << C.NumQubits;
    uint64_t MaxStates = (Avail / 2) / StateBytes;
    if (MaxStates <= Jobs) // Shared + Jobs forks would not fit.
      Jobs = MaxStates > 1 ? static_cast<unsigned>(MaxStates - 1) : 1;
  }
  // Per-worker fork buffers, hoisted out of the shot loop: each shot
  // copy-assigns the shared prefix state into its worker's buffer instead
  // of allocating (and then freeing) a fresh fork per shot.
  std::vector<StateVector> WorkerState(Jobs, Shared);
  // SimStats fields are plain (not atomic), so concurrent shots may not
  // share Opts.SimCounters: each worker accumulates into its own copy,
  // merged once after the pool joins.
  std::vector<SimStats> WorkerStats(Jobs);
  parallelShotLoop(Jobs, Shots, [&](unsigned W, unsigned S) {
    WorkerState[W] = Shared;
    Results[S] = runRest(WorkerState[W], S,
                         Opts.SimCounters ? &WorkerStats[W] : nullptr);
  });
  if (Opts.SimCounters)
    for (const SimStats &WS : WorkerStats)
      Opts.SimCounters->merge(WS);
  return Results;
}

} // namespace

std::vector<ShotResult>
StatevectorBackend::runBatch(const Circuit &C, unsigned Shots, uint64_t Seed,
                             const RunOptions &Opts) const {
  assert(!C.isParametric() && "bind parameters before running");
  if (Shots == 0)
    return {};

  // Resolve the noise plan once per batch; per-shot trajectory execution
  // then never touches a map.
  const NoiseModel *Noise =
      Opts.Noise && !Opts.Noise->empty() ? Opts.Noise : nullptr;
  NoisePlan Plan;
  TrajectoryContext Ctx;
  const TrajectoryContext *Traj = nullptr;
  if (Noise) {
    Plan = planNoise(*Noise, C);
    Ctx = {&Plan, Noise, Opts.NoiseCounters};
    Traj = &Ctx;
  }

  // Build the execution plan: fused ops or the raw instruction stream,
  // each with its unconditional-prefix boundary. Noisy gates consume
  // per-shot randomness, so the shared prefix ends at the first of them
  // (fuseCircuit's channel barriers do the same at op granularity).
  FusedCircuit FC;
  size_t Prefix;
  if (Opts.Fuse) {
    FC = fuseCircuit(C, Noise, Opts.FuseMaxQubits);
    Prefix = FC.UnconditionalPrefixOps;
  } else {
    Prefix = analyzeCircuit(C).UnconditionalGatePrefix;
    if (Noise && Plan.FirstNoisyInstr < Prefix)
      Prefix = Plan.FirstNoisyInstr;
  }

  return runPlannedBatch(C, Opts.Fuse ? &FC : nullptr, Prefix, Shots, Seed,
                         Opts, Traj);
}

std::vector<std::vector<ShotResult>>
StatevectorBackend::runSweep(const Circuit &C,
                             const std::vector<std::vector<double>> &Points,
                             unsigned Shots, uint64_t Seed,
                             const RunOptions &Opts) const {
  // Without fusion there is no plan to amortize: take the reference
  // bind-and-run loop.
  if (!Opts.Fuse)
    return SimBackend::runSweep(C, Points, Shots, Seed, Opts);

  const NoiseModel *Noise =
      Opts.Noise && !Opts.Noise->empty() ? Opts.Noise : nullptr;

  // Fuse the circuit structure once, recording the recipe. The template
  // plan itself is discarded — its symbolic-derived matrices are
  // placeholders — but every structural decision and every concrete-only
  // matrix is now fixed for the whole sweep.
  FusionRecipe Recipe;
  fuseCircuit(C, Noise, Opts.FuseMaxQubits, &Recipe);

  // One deep copy of the circuit serves the whole sweep: per point, only
  // the symbolic instructions' concrete Param slots are rewritten —
  // through CircuitInstr::boundParam, the same expression bindCircuit
  // evaluates, so every angle rounds identically to a fresh bind.
  Circuit Bound = C;
  Bound.ParamNames.clear();
  std::vector<size_t> SymbolicAt;
  for (size_t I = 0; I < C.Instrs.size(); ++I)
    if (C.Instrs[I].TheKind == CircuitInstr::Kind::Gate &&
        C.Instrs[I].isSymbolic())
      SymbolicAt.push_back(I);
  for (size_t I : SymbolicAt) {
    Bound.Instrs[I].ParamIdx = -1;
    Bound.Instrs[I].ParamScale = 1.0;
    Bound.Instrs[I].ParamOfs = 0.0;
  }

  std::vector<std::vector<ShotResult>> Results(Points.size());
  for (size_t P = 0; P < Points.size(); ++P) {
    if (Opts.deadlineExpired())
      throw DeadlineExceeded();
    for (size_t I : SymbolicAt)
      Bound.Instrs[I].Param = C.Instrs[I].boundParam(Points[P]);
    FusedCircuit FC = rebindFusedCircuit(Recipe, Bound);
    NoisePlan Plan;
    TrajectoryContext Ctx;
    const TrajectoryContext *Traj = nullptr;
    if (Noise) {
      Plan = planNoise(*Noise, Bound);
      Ctx = {&Plan, Noise, Opts.NoiseCounters};
      Traj = &Ctx;
    }
    Results[P] = runPlannedBatch(Bound, &FC, FC.UnconditionalPrefixOps,
                                 Shots, deriveSweepPointSeed(Seed, P), Opts,
                                 Traj);
  }
  return Results;
}
