//===- StatevectorBackend.cpp - Dense state-vector engine -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StatevectorBackend.h"

#include "sim/CircuitAnalysis.h"

#include <cassert>
#include <cmath>

using namespace asdf;

StateVector::StateVector(unsigned NumQubits) : NumQubits(NumQubits) {
  assert(NumQubits <= StatevectorBackend::MaxQubits &&
         "state vector too large");
  Amp.assign(uint64_t(1) << NumQubits, Amplitude(0.0, 0.0));
  Amp[0] = Amplitude(1.0, 0.0);
}

void StateVector::setBasisState(uint64_t Index) {
  std::fill(Amp.begin(), Amp.end(), Amplitude(0.0, 0.0));
  Amp[Index] = Amplitude(1.0, 0.0);
}

namespace {

/// 2x2 gate matrices for the generic fallback path.
struct Mat2 {
  Amplitude M[2][2];
};

Mat2 gateMatrix(GateKind G, double Theta) {
  const double S2 = 1.0 / std::sqrt(2.0);
  const Amplitude I(0.0, 1.0);
  switch (G) {
  case GateKind::X:
    return {{{0, 1}, {1, 0}}};
  case GateKind::Y:
    return {{{0, -I}, {I, 0}}};
  case GateKind::Z:
    return {{{1, 0}, {0, -1}}};
  case GateKind::H:
    return {{{S2, S2}, {S2, -S2}}};
  case GateKind::S:
    return {{{1, 0}, {0, I}}};
  case GateKind::Sdg:
    return {{{1, 0}, {0, -I}}};
  case GateKind::T:
    return {{{1, 0}, {0, std::exp(I * (M_PI / 4.0))}}};
  case GateKind::Tdg:
    return {{{1, 0}, {0, std::exp(-I * (M_PI / 4.0))}}};
  case GateKind::P:
    return {{{1, 0}, {0, std::exp(I * Theta)}}};
  case GateKind::RX:
    return {{{std::cos(Theta / 2), -I * std::sin(Theta / 2)},
             {-I * std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RY:
    return {{{std::cos(Theta / 2), -std::sin(Theta / 2)},
             {std::sin(Theta / 2), std::cos(Theta / 2)}}};
  case GateKind::RZ:
    return {{{std::exp(-I * (Theta / 2)), 0},
             {0, std::exp(I * (Theta / 2))}}};
  case GateKind::Swap:
    break;
  }
  assert(false && "no 2x2 matrix for this gate");
  return {{{1, 0}, {0, 1}}};
}

/// The phase a diagonal gate puts on |1> (it puts 1 on |0>), or nullopt if
/// the gate is not diagonal-with-unit-top-left.
bool diagonalPhase(GateKind G, double Theta, Amplitude &Phase) {
  const Amplitude I(0.0, 1.0);
  switch (G) {
  case GateKind::Z:
    Phase = Amplitude(-1.0, 0.0);
    return true;
  case GateKind::S:
    Phase = I;
    return true;
  case GateKind::Sdg:
    Phase = -I;
    return true;
  case GateKind::T:
    Phase = std::exp(I * (M_PI / 4.0));
    return true;
  case GateKind::Tdg:
    Phase = std::exp(-I * (M_PI / 4.0));
    return true;
  case GateKind::P:
    Phase = std::exp(I * Theta);
    return true;
  default:
    return false;
  }
}

} // namespace

void StateVector::phaseSweep(uint64_t Mask, Amplitude Phase) {
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    if ((Idx & Mask) == Mask)
      Amp[Idx] *= Phase;
}

void StateVector::pairSwap(uint64_t CtlMask, uint64_t Bit) {
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue; // Handle each pair once, from the 0 side.
    if ((Idx & CtlMask) != CtlMask)
      continue;
    std::swap(Amp[Idx], Amp[Idx | Bit]);
  }
}

void StateVector::apply(GateKind G, const std::vector<unsigned> &Controls,
                        const std::vector<unsigned> &Targets, double Param) {
  uint64_t CtlMask = 0;
  for (unsigned C : Controls)
    CtlMask |= qubitBit(C);

  if (G == GateKind::Swap) {
    assert(Targets.size() == 2);
    uint64_t BitA = qubitBit(Targets[0]);
    uint64_t BitB = qubitBit(Targets[1]);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if ((Idx & CtlMask) != CtlMask)
        continue;
      bool A = Idx & BitA, Bb = Idx & BitB;
      if (A && !Bb) {
        uint64_t Other = (Idx & ~BitA) | BitB;
        std::swap(Amp[Idx], Amp[Other]);
      }
    }
    return;
  }

  assert(Targets.size() == 1);
  uint64_t Bit = qubitBit(Targets[0]);
  if (CtlMask & Bit)
    return; // Degenerate control == target: no pair has the control set and
            // the target clear, so this was always a no-op.

  // Diagonal gates collapse to a single masked phase sweep at any control
  // count: the phase lands exactly where all controls and the target read 1.
  Amplitude Phase;
  if (diagonalPhase(G, Param, Phase)) {
    phaseSweep(CtlMask | Bit, Phase);
    return;
  }

  // X at any control count is a pure pair permutation (X, CX, Toffoli...).
  if (G == GateKind::X) {
    pairSwap(CtlMask, Bit);
    return;
  }

  // Y: permutation plus a fixed +-i twist.
  if (G == GateKind::Y) {
    const Amplitude I(0.0, 1.0);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if (Idx & Bit)
        continue;
      if ((Idx & CtlMask) != CtlMask)
        continue;
      uint64_t Idx1 = Idx | Bit;
      Amplitude A0 = Amp[Idx];
      Amp[Idx] = -I * Amp[Idx1];
      Amp[Idx1] = I * A0;
    }
    return;
  }

  // H: real butterfly, no complex matrix products.
  if (G == GateKind::H) {
    const double S2 = 1.0 / std::sqrt(2.0);
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
      if (Idx & Bit)
        continue;
      if ((Idx & CtlMask) != CtlMask)
        continue;
      uint64_t Idx1 = Idx | Bit;
      Amplitude A0 = Amp[Idx], A1 = Amp[Idx1];
      Amp[Idx] = S2 * (A0 + A1);
      Amp[Idx1] = S2 * (A0 - A1);
    }
    return;
  }

  // Uncontrolled RZ: one diagonal sweep over the whole state.
  if (G == GateKind::RZ && CtlMask == 0) {
    const Amplitude I(0.0, 1.0);
    Amplitude P0 = std::exp(-I * (Param / 2)), P1 = std::exp(I * (Param / 2));
    for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
      Amp[Idx] *= (Idx & Bit) ? P1 : P0;
    return;
  }

  // Generic controlled-2x2 fallback (RX/RY, controlled rotations).
  Mat2 M = gateMatrix(G, Param);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    if (Idx & Bit)
      continue; // Handle each pair once, from the 0 side.
    if ((Idx & CtlMask) != CtlMask)
      continue;
    uint64_t Idx1 = Idx | Bit;
    Amplitude A0 = Amp[Idx], A1 = Amp[Idx1];
    Amp[Idx] = M.M[0][0] * A0 + M.M[0][1] * A1;
    Amp[Idx1] = M.M[1][0] * A0 + M.M[1][1] * A1;
  }
}

double StateVector::probOne(unsigned Q) const {
  uint64_t Bit = qubitBit(Q);
  double P = 0.0;
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    if (Idx & Bit)
      P += std::norm(Amp[Idx]);
  return P;
}

bool StateVector::measure(unsigned Q, std::mt19937_64 &Rng) {
  double P1 = probOne(Q);
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  bool One = Dist(Rng) < P1;
  uint64_t Bit = qubitBit(Q);
  double Norm = std::sqrt(One ? P1 : 1.0 - P1);
  if (Norm < 1e-300)
    Norm = 1.0;
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx) {
    bool IsOne = Idx & Bit;
    if (IsOne == One)
      Amp[Idx] /= Norm;
    else
      Amp[Idx] = Amplitude(0.0, 0.0);
  }
  return One;
}

void StateVector::reset(unsigned Q, std::mt19937_64 &Rng) {
  if (measure(Q, Rng))
    apply(GateKind::X, {}, {Q}, 0.0);
}

double StateVector::overlap(const StateVector &Other) const {
  assert(Amp.size() == Other.Amp.size());
  Amplitude Dot(0.0, 0.0);
  for (uint64_t Idx = 0; Idx < Amp.size(); ++Idx)
    Dot += std::conj(Other.Amp[Idx]) * Amp[Idx];
  return std::abs(Dot);
}

namespace {

std::mt19937_64 shotRng(uint64_t Seed) {
  return std::mt19937_64(Seed * 0x9E3779B97F4A7C15ull + 0xDEADBEEF);
}

/// Executes instructions [Start, end) on \p SV, recording bits into \p R.
void execute(const Circuit &C, size_t Start, StateVector &SV, ShotResult &R,
             std::mt19937_64 &Rng) {
  for (size_t N = Start; N < C.Instrs.size(); ++N) {
    const CircuitInstr &I = C.Instrs[N];
    if (I.CondBit >= 0 &&
        R.Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
      continue;
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      SV.apply(I.Gate, I.Controls, I.Targets, I.Param);
      break;
    case CircuitInstr::Kind::Measure:
      R.Bits[static_cast<unsigned>(I.Cbit)] = SV.measure(I.Targets[0], Rng);
      break;
    case CircuitInstr::Kind::Reset:
      SV.reset(I.Targets[0], Rng);
      break;
    }
  }
}

} // namespace

bool StatevectorBackend::supports(const Circuit &C,
                                  const CircuitProfile &) const {
  return C.NumQubits <= MaxQubits;
}

ShotResult StatevectorBackend::run(const Circuit &C, uint64_t Seed) const {
  StateVector SV(C.NumQubits);
  std::mt19937_64 Rng = shotRng(Seed);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  execute(C, 0, SV, R, Rng);
  return R;
}

std::vector<ShotResult> StatevectorBackend::runBatch(const Circuit &C,
                                                     unsigned Shots,
                                                     uint64_t Seed) const {
  size_t Prefix = analyzeCircuit(C).UnconditionalGatePrefix;
  if (Shots <= 1 || Prefix == 0)
    return SimBackend::runBatch(C, Shots, Seed);

  // The unconditional gate prefix is identical for every shot and consumes
  // no randomness: simulate it once, fork the state per shot. Results match
  // run(C, deriveShotSeed(Seed, S)) exactly.
  StateVector Shared(C.NumQubits);
  for (size_t N = 0; N < Prefix; ++N)
    Shared.apply(C.Instrs[N].Gate, C.Instrs[N].Controls, C.Instrs[N].Targets,
                 C.Instrs[N].Param);
  std::vector<ShotResult> Results;
  Results.reserve(Shots);
  for (unsigned S = 0; S < Shots; ++S) {
    StateVector SV = Shared;
    std::mt19937_64 Rng = shotRng(deriveShotSeed(Seed, S));
    ShotResult R;
    R.Bits.assign(C.NumBits, false);
    execute(C, Prefix, SV, R, Rng);
    Results.push_back(std::move(R));
  }
  return Results;
}
