//===- Fusion.h - Gate fusion for the dense execution plan ----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gate-fusion pass of the dense execution plan. A flat circuit applies
/// every gate as its own sweep over all 2^n amplitudes, so rotation-dense
/// circuits (Grover diffusers, QFT tails) are bound by memory passes, not
/// arithmetic. `fuseCircuit` rewrites the instruction stream into a
/// `FusedCircuit` of coarser ops the statevector engine consumes:
///
///   - **multi-qubit block fusion** (qsim-style): adjacent gates whose
///     combined support stays within k qubits (k = 3 by default, 8x8
///     matrices; RunOptions::FuseMaxQubits) greedily accumulate into one
///     `FusedOp::Block` applied in a single gather/scatter sweep — CX
///     ladders interleaved with rotation runs collapse into a handful of
///     block sweeps. Open blocks on disjoint supports accumulate
///     independently (adjacent up to commuting instructions on other
///     wires) and merge when a spanning gate arrives. A block that never
///     grew past one wire flushes as a fused 2x2 unitary (or a diagonal
///     entry when the product stayed diagonal), so k = 1 reproduces the
///     per-wire run fusion of earlier revisions;
///   - **diagonal coalescing**: consecutive diagonal ops — controlled
///     phases (CZ/CP/CCZ/CRZ...) on wires with no open block and fused
///     runs that stayed diagonal (S·T·RZ chains) — merge into a single
///     phase sweep that applies every entry in one pass over the state.
///     Diagonal gates landing on an open block's support are absorbed into
///     the block instead, so H·S·H sandwiches still fuse;
///   - everything else (gates whose support exceeds k, measurement, reset,
///     classically-conditioned instructions) passes through by reference
///     into the original instruction. A gate that ends up alone in its
///     block also passes through, keeping the engine's specialized
///     bit-exact kernels for lone gates.
///
/// Fusion is exact: the fused stream applies the same operator product in
/// the same order (up to commuting disjoint-wire reorderings), and
/// measurements/resets/feed-forward act as full barriers, so per-shot RNG
/// consumption is identical to the unfused path. Amplitudes may differ from
/// unfused execution only by floating-point rounding of the pre-multiplied
/// matrices.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_FUSION_H
#define ASDF_SIM_FUSION_H

#include "qcirc/Circuit.h"

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace asdf {

class NoiseModel;

/// One 2x2 complex matrix (row-major), the currency of single-qubit fusion.
struct Mat2 {
  std::complex<double> M[2][2];

  static Mat2 identity() { return {{{1, 0}, {0, 1}}}; }

  /// True if both off-diagonal entries are exactly zero — guaranteed for
  /// products of diagonal factors (0*x + y*0 stays 0 in IEEE arithmetic).
  bool isDiagonal() const {
    return std::abs(M[0][1]) == 0.0 && std::abs(M[1][0]) == 0.0;
  }
};

/// Matrix product A*B ("apply B first, then A", matching gate order).
Mat2 matmul(const Mat2 &A, const Mat2 &B);

/// The 2x2 matrix of an uncontrolled single-qubit gate. Asserts on Swap.
Mat2 gateMatrix2(GateKind G, double Theta);

/// One entry of a coalesced diagonal sweep, in basis-index space: indices
/// with all CtlMask bits set pick up Phase0 or Phase1 depending on the
/// target bit; all other indices are untouched.
struct DiagEntry {
  uint64_t CtlMask = 0;
  uint64_t TargetBit = 0;
  std::complex<double> Phase0{1.0, 0.0};
  std::complex<double> Phase1{1.0, 0.0};
};

/// Hard ceiling on FuseMaxQubits: 64x64 block matrices. Past this the
/// gather/scatter working set and the O(4^k) arithmetic per amplitude stop
/// paying for the saved memory passes.
inline constexpr unsigned MaxFuseQubits = 6;

/// One op of the fused execution plan.
struct FusedOp {
  enum class Kind {
    Unitary, ///< Fused 2x2 on Target.
    Diag,    ///< Coalesced diagonal sweep (one memory pass, many entries).
    Block,   ///< Fused multi-qubit block: 2^m x 2^m unitary on Qubits.
    Instr,   ///< Pass-through: Source->Instrs[InstrIndex].
  };

  Kind TheKind = Kind::Instr;
  unsigned Target = 0;          ///< Unitary only.
  Mat2 U = Mat2::identity();    ///< Unitary only.
  std::vector<DiagEntry> Diag;  ///< Diag only.
  size_t InstrIndex = 0;        ///< Instr only.
  /// Block only: the support, sorted ascending by qubit number. Qubits[0]
  /// owns the most significant bit of the local 2^m basis index, matching
  /// the global eigenbit convention.
  std::vector<unsigned> Qubits;
  /// Block only: row-major 2^m x 2^m matrix over the local basis.
  std::vector<std::complex<double>> BlockU;
};

/// The fused execution plan for one circuit. Holds a pointer into the
/// source circuit for pass-through instructions; the source must outlive
/// the plan.
struct FusedCircuit {
  const Circuit *Source = nullptr;
  std::vector<FusedOp> Ops;
  /// Ops before the first measurement/reset/conditional instruction — the
  /// deterministic prefix shared by every shot (mirrors
  /// CircuitProfile::UnconditionalGatePrefix at op granularity).
  size_t UnconditionalPrefixOps = 0;

  // Plan statistics, for diagnostics and the --emit run stderr summary.
  size_t GatesIn = 0;       ///< Gate instructions consumed.
  size_t GatesFused = 0;    ///< Gates folded into Unitary/Diag/Block ops.
  size_t SweepsCoalesced = 0; ///< Diagonal ops merged into a neighbor.
  size_t BlocksFormed = 0;  ///< Multi-qubit Block ops emitted.
  size_t WidestBlock = 0;   ///< Largest Block support (qubits) emitted.

  /// "123 gates -> 41 ops (96 fused, 7 blocks <= 3q, 12 sweeps coalesced)"
  std::string summary() const;
};

/// True if \p I is a full fusion barrier: measurement, reset, and
/// feed-forward must see exactly the state (and consume exactly the
/// randomness) the unfused program would have at that point. Reusable by
/// anything that must not reorder across these points — the noise
/// subsystem's insertion planning uses it too.
bool isFusionBarrier(const CircuitInstr &I);

/// The structural record of one fuseCircuit run, the compile-once half of
/// parametric execution. Every grouping decision fuseCircuit makes — which
/// gates merge into which blocks, in which order, where flushes and
/// barriers land — depends only on instruction kinds and supports, never
/// on angle values. A recipe captures those decisions as matrix-product
/// trees (`Nodes`) plus an ordered emission log (`Events`), so
/// `rebindFusedCircuit` can rebuild the plan for a re-bound circuit by
/// recomputing only the angle-dependent matrices — through the very same
/// gateBlockMatrix/embedBlockMatrix/blockMatmul call sequence, so the
/// rebuilt plan is bit-identical to running fuseCircuit afresh on the
/// bound circuit. Subtrees that touch no symbolic parameter keep their
/// recorded matrix and are never recomputed.
struct FusionRecipe {
  /// How one open block's matrix was built: a gate folded on top of zero
  /// or more previously open blocks (the children, in fold order).
  struct Node {
    size_t InstrIndex = 0;        ///< The gate folded on top.
    std::vector<unsigned> Qubits; ///< Support, sorted; Qubits[0] = MSB.
    std::vector<int> Children;    ///< Prior nodes folded first, in order.
    /// True for the budget-overflow path that seeds a block directly from
    /// gateBlockMatrix; false for the identity-seeded merge fold. The two
    /// construction paths round -0.0 differently, so replay must match.
    bool Direct = false;
    bool Symbolic = false;        ///< Subtree reads a symbolic parameter.
    /// Matrix from the recording run; exact for every non-symbolic
    /// subtree (concrete angles never change across binds).
    std::vector<std::complex<double>> CachedU;
  };

  /// One plan-emission decision, replayed in order on rebind.
  struct Event {
    enum class Kind {
      Instr,    ///< Pass-through of source instruction InstrIndex.
      DiagGate, ///< Controlled/wide diagonal gate -> one sweep entry.
      Run,      ///< Flushed block: Diag or Unitary or Block, decided by
                ///< the rebuilt matrix exactly as flushBlock decides.
    };
    Kind TheKind = Kind::Instr;
    size_t InstrIndex = 0;         ///< Instr/DiagGate source instruction.
    int Node = -1;                 ///< Run: recipe node to materialize.
    uint64_t CtlMask = 0;          ///< DiagGate entry placement.
    uint64_t TargetBit = 0;        ///< DiagGate entry placement.
  };

  std::vector<Node> Nodes;
  std::vector<Event> Events;
  size_t PrefixEvents = 0; ///< Events before the prefix-closing barrier.
  size_t NumInstrs = 0;    ///< Source instruction count (validation).
  bool Valid = false;      ///< Set once a fuseCircuit run populated this.

  // Structural plan statistics, copied into every rebuilt plan.
  size_t GatesIn = 0;
  size_t GatesFused = 0;
  size_t BlocksFormed = 0;
  size_t WidestBlock = 0;
};

/// Builds the fused execution plan for \p C. Never fails; a circuit with
/// nothing to fuse comes back as pure pass-through ops. A non-null
/// \p Noise adds channel barriers: a gate with noise attached passes
/// through unfused (trajectory sampling right after it must see the exact
/// unfused state, in program order) and closes the shared unconditional
/// prefix, since it consumes per-shot randomness. \p MaxBlockQubits is the
/// block-fusion budget k (clamped to [1, MaxFuseQubits]): the widest
/// combined support a Block op may accumulate; 1 disables multi-qubit
/// blocks, reproducing per-wire 2x2 run fusion. A non-null \p Recipe
/// additionally records the structural decisions of this run so
/// rebindFusedCircuit can re-materialize the plan for a re-bound circuit;
/// when \p C is parametric, the returned plan itself is a template —
/// matrices derived from symbolic angles are placeholders — and must not
/// be executed, only rebound.
FusedCircuit fuseCircuit(const Circuit &C, const NoiseModel *Noise = nullptr,
                         unsigned MaxBlockQubits = 3,
                         FusionRecipe *Recipe = nullptr);

/// Rebuilds the fused plan recorded in \p R for \p Bound — the same
/// circuit structure the recipe was recorded from, with parameters bound
/// to concrete values (bindCircuit). Only matrices whose product tree
/// touches a symbolic parameter are recomputed, through the same
/// floating-point operation sequence fuseCircuit uses, so the result is
/// bit-identical to fuseCircuit(Bound) with the recording run's noise
/// model and block budget. The returned plan points into \p Bound, which
/// must outlive it.
FusedCircuit rebindFusedCircuit(const FusionRecipe &R, const Circuit &Bound);

/// The full 2^m x 2^m unitary of gate instruction \p I over the qubit set
/// \p Support, which must be sorted ascending and contain every control
/// and target of \p I (it may be wider; extra qubits tensor in as
/// identity). Controls fold in as identity rows/columns where any control
/// bit reads 0. Local basis convention matches FusedOp::Qubits:
/// Support[0] is the most significant local bit. Exposed for the
/// block-fusion property tests.
std::vector<std::complex<double>>
gateBlockMatrix(const CircuitInstr &I, const std::vector<unsigned> &Support);

/// Row-major product A*B of two Dim x Dim matrices ("apply B first").
std::vector<std::complex<double>>
blockMatmul(const std::vector<std::complex<double>> &A,
            const std::vector<std::complex<double>> &B, unsigned Dim);

} // namespace asdf

#endif // ASDF_SIM_FUSION_H
