//===- StatevectorBackend.h - Dense state-vector engine -------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense amplitude engine — the stand-in for qir-runner (§7) — behind
/// the SimBackend interface. Exact for every gate kind at any control
/// count, memory-bound at 2^n amplitudes; the qubit cap derives from
/// available physical memory (override via RunOptions::MaxStateQubits).
///
/// Every kernel is a branch-free strided sweep (QuEST-style): instead of
/// filtering all 2^n indices with an `(Idx & Mask) == Mask` test, the
/// kernels enumerate exactly the 2^(n-c-1) relevant pair indices by bit
/// insertion over the target/control bits, so uncontrolled diagonal/X/H/
/// phase kernels become contiguous, auto-vectorizable runs over
/// restrict-qualified re/im data. Hot Clifford gates bypass the generic
/// controlled-2x2 path with specialized kernels: diagonal gates
/// (Z/S/Sdg/T/Tdg/P/RZ) become a strided phase sweep at any control count,
/// X becomes a pair permutation, and Y a permutation with a fixed +-i
/// twist. Fused multi-qubit blocks (Fusion.h) apply a 2^k x 2^k matrix in
/// one gather/scatter sweep.
///
/// Multi-shot runs fuse the circuit, simulate the unconditional gate
/// prefix once, fork the state per shot, and run the shots on a
/// work-stealing thread pool — all without changing per-shot RNG
/// consumption, so every (jobs, fuse) combination replays the same
/// outcomes. In the low-shot/large-n regime the engine instead (or in
/// hybrid, additionally) splits each kernel's index range across the
/// workers (`setParallelJobs`); all probability reductions use a fixed
/// chunked summation order, so amplitude-parallel execution is
/// bit-identical across worker counts — and bit-identical to the serial
/// reference.
///
/// Convention: qubit 0 is the leftmost qubit and occupies the most
/// significant bit of a basis-state index, matching the eigenbit convention
/// of the basis library.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_STATEVECTORBACKEND_H
#define ASDF_SIM_STATEVECTORBACKEND_H

#include "sim/Backend.h"
#include "sim/Fusion.h"

#include <complex>
#include <random>

namespace asdf {

struct KrausChannel;
class NoiseModel;
struct NoiseStats;

using Amplitude = std::complex<double>;

/// A dense quantum state over a fixed number of qubits.
class StateVector {
public:
  explicit StateVector(unsigned NumQubits);

  unsigned numQubits() const { return NumQubits; }
  const std::vector<Amplitude> &amplitudes() const { return Amp; }
  std::vector<Amplitude> &amplitudes() { return Amp; }

  /// Sets the state to the computational basis state |index>.
  void setBasisState(uint64_t Index);

  /// Applies one gate (with controls).
  void apply(GateKind G, const std::vector<unsigned> &Controls,
             const std::vector<unsigned> &Targets, double Param);

  /// Applies a (fused) 2x2 unitary to qubit \p Q.
  void applyMatrix2(unsigned Q, const Mat2 &U);

  /// Applies a fused multi-qubit block: the 2^m x 2^m row-major unitary
  /// \p U over \p Qubits (sorted ascending, Qubits[0] = local MSB,
  /// matching FusedOp::Qubits) in one gather/scatter sweep.
  void applyBlock(const std::vector<unsigned> &Qubits,
                  const std::vector<Amplitude> &U);

  /// Applies a coalesced diagonal sweep: one pass over the amplitudes,
  /// multiplying in every matching entry's phase.
  void applyDiagSweep(const std::vector<DiagEntry> &Entries);

  /// Splits every subsequent kernel's index range across \p Jobs workers
  /// (amplitude-level parallelism). 1 restores serial kernels. Any value
  /// produces bit-identical amplitudes: per-amplitude updates are
  /// independent and reductions use a fixed chunked summation order.
  void setParallelJobs(unsigned Jobs) { ParJobs = Jobs < 1 ? 1 : Jobs; }

  /// Attaches per-run simulation counters (null detaches). Non-owning;
  /// fields are plain, so concurrently-running shots must each attach
  /// their own instance and merge() at the join.
  void setStats(SimStats *S) { Stats = S; }

  /// Quantum-trajectory step: samples one Kraus branch of \p Ch on qubit
  /// \p Q — branch k with probability ||K_k |psi>||^2 — and applies
  /// K_k / sqrt(p_k). Consumes exactly one uniform draw, so RNG
  /// consumption is identical on every execution plan.
  void applyChannel(unsigned Q, const KrausChannel &Ch, std::mt19937_64 &Rng,
                    NoiseStats *NStats = nullptr);

  /// Measures qubit \p Q; collapses the state. \p Rng drives sampling.
  bool measure(unsigned Q, std::mt19937_64 &Rng);

  /// Resets qubit \p Q to |0> (measure and correct).
  void reset(unsigned Q, std::mt19937_64 &Rng);

  /// Probability that qubit \p Q reads 1.
  double probOne(unsigned Q) const;

  /// Inner-product magnitude |<other|this>|.
  double overlap(const StateVector &Other) const;

private:
  unsigned NumQubits;
  std::vector<Amplitude> Amp;
  unsigned ParJobs = 1;      ///< Amplitude-parallel worker count.
  SimStats *Stats = nullptr; ///< Optional per-run counters.

  uint64_t qubitBit(unsigned Q) const {
    return uint64_t(1) << (NumQubits - 1 - Q);
  }

  /// Strided kernel: Amp[i] *= Phase for the 2^(n-k) indices with all k
  /// Mask bits set — no index filtering.
  void phaseSweep(uint64_t Mask, Amplitude Phase);
  /// Strided kernel: swap the target pair wherever all controls are set.
  void pairSwap(uint64_t CtlMask, uint64_t Bit);
  /// Strided kernel: generic controlled 2x2 (the fallback all specialized
  /// kernels reduce to).
  void matrix2Kernel(uint64_t CtlMask, uint64_t Bit, const Mat2 &U);
  /// Deterministic chunked sum of per-pair contributions of the target
  /// bit's upper half (used by probOne and the channel-probability pass):
  /// fixed chunk boundaries and a serial chunk-order accumulation make the
  /// result independent of ParJobs.
  double reduceOneProb(uint64_t Bit) const;

  void bumpStats(uint64_t Touched, bool Fused, bool Block = false) const;
};

/// The dense engine as a SimBackend ("sv").
class StatevectorBackend : public SimBackend {
public:
  const char *name() const override { return "sv"; }
  bool supports(const Circuit &C, const CircuitProfile &P) const override;
  /// The serial, unfused reference path: the differential tests pin every
  /// optimized configuration against this.
  ShotResult run(const Circuit &C, uint64_t Seed) const override;
  /// The serial, unfused noisy reference: one quantum trajectory, sampling
  /// a Kraus branch per attached channel after each gate and readout error
  /// after each measurement, all from the shot's RNG stream.
  ShotResult runNoisy(const Circuit &C, uint64_t Seed,
                      const NoiseModel &Noise,
                      NoiseStats *Stats = nullptr) const override;
  /// The execution-plan path: fuses the circuit (unless Opts.Fuse is off;
  /// Opts.FuseMaxQubits bounds block width), simulates the unconditional
  /// prefix once (amplitude-parallel), then spends the Opts.Jobs worker
  /// budget per Opts.Parallel — shot-parallel per-worker forks when shots
  /// are plentiful, amplitude-parallel kernels in the low-shot/large-n
  /// regime, chosen automatically in hybrid mode. With Opts.Noise, runs
  /// quantum trajectories: noisy gates act as fusion barriers and close
  /// the shared prefix. Every {jobs, fuse-k, parallel-mode} combination
  /// returns bit-identical per-shot results.
  std::vector<ShotResult> runBatch(const Circuit &C, unsigned Shots,
                                   uint64_t Seed,
                                   const RunOptions &Opts) const override;
  using SimBackend::runBatch;
  /// The parametric fast path: fuses the circuit structure once
  /// (recording a FusionRecipe), then per point binds the parameters and
  /// re-materializes only the angle-dependent matrices before running the
  /// batch core — bit-identical to recompiling the plan per point, for
  /// every {jobs, fuse-k, parallel-mode} combination. Falls back to the
  /// reference bind-and-run loop when fusion is disabled.
  std::vector<std::vector<ShotResult>>
  runSweep(const Circuit &C, const std::vector<std::vector<double>> &Points,
           unsigned Shots, uint64_t Seed,
           const RunOptions &Opts) const override;
  /// The dense engine executes any Kraus model.
  bool supportsNoise(const NoiseModel &Noise) const override;

  /// Absolute cap regardless of memory: 2^30 amplitudes (16 GiB) keeps
  /// index arithmetic and allocation sizes comfortably in range.
  static constexpr unsigned HardMaxQubits = 30;

  /// Widest circuit the dense engine accepts under \p Opts:
  /// Opts.MaxStateQubits if set, otherwise derived from available physical
  /// memory (the shared state plus one per-shot fork within half of it —
  /// one state per quarter; runBatch shrinks its worker count to stay
  /// inside the same budget), falling back to 26 when the OS won't say.
  /// Never exceeds HardMaxQubits.
  static unsigned maxQubits(const RunOptions &Opts = RunOptions());
};

} // namespace asdf

#endif // ASDF_SIM_STATEVECTORBACKEND_H
