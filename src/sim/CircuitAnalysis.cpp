//===- CircuitAnalysis.cpp - Circuit classification for dispatch ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"

#include <cmath>

using namespace asdf;

bool asdf::quarterTurns(double Theta, unsigned &QuarterTurns, double Tol) {
  double Quarters = Theta / (M_PI / 2.0);
  double Rounded = std::round(Quarters);
  if (std::abs(Quarters - Rounded) > Tol)
    return false;
  long long K = static_cast<long long>(Rounded) % 4;
  if (K < 0)
    K += 4;
  QuarterTurns = static_cast<unsigned>(K);
  return true;
}

bool asdf::isCliffordInstr(const CircuitInstr &I) {
  if (I.TheKind != CircuitInstr::Kind::Gate)
    return true; // Measure and reset are native tableau operations.
  if (I.isSymbolic())
    return false; // A symbolic angle has no fixed value to classify; the
                  // tableau engine must never claim a parametric circuit.
  size_t NumControls = I.Controls.size();
  unsigned Quarters;
  switch (I.Gate) {
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
    // Pauli gates stay Clifford with one control (CX/CY/CZ); two or more
    // controls (Toffoli and up) leave the group.
    return NumControls <= 1;
  case GateKind::H:
  case GateKind::S:
  case GateKind::Sdg:
  case GateKind::Swap:
    return NumControls == 0;
  case GateKind::P:
    if (!quarterTurns(I.Param, Quarters))
      return false;
    // P(0) is the identity at any control count; P(pi) == Z is Clifford
    // with up to one control (CZ); P(+-pi/2) == S/Sdg only uncontrolled
    // (CS is not Clifford).
    if (Quarters == 0)
      return true;
    if (Quarters == 2)
      return NumControls <= 1;
    return NumControls == 0;
  case GateKind::RZ:
    // RZ(k*pi/2) equals P(k*pi/2) up to global phase — but only when
    // uncontrolled, where the global phase is unobservable.
    return NumControls == 0 && quarterTurns(I.Param, Quarters);
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::RX:
  case GateKind::RY:
    return false;
  }
  return false;
}

CircuitProfile asdf::analyzeCircuit(const Circuit &C) {
  CircuitProfile P;
  bool InPrefix = true;
  for (const CircuitInstr &I : C.Instrs) {
    if (I.CondBit >= 0)
      P.HasFeedForward = true;
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      if (I.Controls.size() > P.MaxControls)
        P.MaxControls = static_cast<unsigned>(I.Controls.size());
      if (!isCliffordInstr(I))
        P.CliffordOnly = false;
      if (InPrefix && I.CondBit < 0) {
        ++P.UnconditionalGatePrefix;
        continue;
      }
      break;
    case CircuitInstr::Kind::Measure:
      P.HasMeasure = true;
      break;
    case CircuitInstr::Kind::Reset:
      P.HasReset = true;
      break;
    }
    InPrefix = false;
  }
  return P;
}
