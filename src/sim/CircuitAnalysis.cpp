//===- CircuitAnalysis.cpp - Circuit classification for dispatch ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CircuitAnalysis.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace asdf;

bool asdf::quarterTurns(double Theta, unsigned &QuarterTurns, double Tol) {
  double Quarters = Theta / (M_PI / 2.0);
  double Rounded = std::round(Quarters);
  if (std::abs(Quarters - Rounded) > Tol)
    return false;
  long long K = static_cast<long long>(Rounded) % 4;
  if (K < 0)
    K += 4;
  QuarterTurns = static_cast<unsigned>(K);
  return true;
}

bool asdf::isCliffordInstr(const CircuitInstr &I) {
  if (I.TheKind != CircuitInstr::Kind::Gate)
    return true; // Measure and reset are native tableau operations.
  if (I.isSymbolic())
    return false; // A symbolic angle has no fixed value to classify; the
                  // tableau engine must never claim a parametric circuit.
  size_t NumControls = I.Controls.size();
  unsigned Quarters;
  switch (I.Gate) {
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
    // Pauli gates stay Clifford with one control (CX/CY/CZ); two or more
    // controls (Toffoli and up) leave the group.
    return NumControls <= 1;
  case GateKind::H:
  case GateKind::S:
  case GateKind::Sdg:
  case GateKind::Swap:
    return NumControls == 0;
  case GateKind::P:
    if (!quarterTurns(I.Param, Quarters))
      return false;
    // P(0) is the identity at any control count; P(pi) == Z is Clifford
    // with up to one control (CZ); P(+-pi/2) == S/Sdg only uncontrolled
    // (CS is not Clifford).
    if (Quarters == 0)
      return true;
    if (Quarters == 2)
      return NumControls <= 1;
    return NumControls == 0;
  case GateKind::RZ:
    // RZ(k*pi/2) equals P(k*pi/2) up to global phase — but only when
    // uncontrolled, where the global phase is unobservable.
    return NumControls == 0 && quarterTurns(I.Param, Quarters);
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::RX:
  case GateKind::RY:
    return false;
  }
  return false;
}

CircuitProfile asdf::analyzeCircuit(const Circuit &C) {
  CircuitProfile P;
  bool InPrefix = true;
  for (const CircuitInstr &I : C.Instrs) {
    if (I.CondBit >= 0)
      P.HasFeedForward = true;
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      if (I.Controls.size() > P.MaxControls)
        P.MaxControls = static_cast<unsigned>(I.Controls.size());
      if (I.Controls.size() + I.Targets.size() > P.MaxGateQubits)
        P.MaxGateQubits =
            static_cast<unsigned>(I.Controls.size() + I.Targets.size());
      if (!isCliffordInstr(I))
        P.CliffordOnly = false;
      if (InPrefix && I.CondBit < 0) {
        ++P.UnconditionalGatePrefix;
        continue;
      }
      break;
    case CircuitInstr::Kind::Measure:
      P.HasMeasure = true;
      break;
    case CircuitInstr::Kind::Reset:
      P.HasReset = true;
      break;
    }
    InPrefix = false;
  }
  return P;
}

std::string CostModel::summary() const {
  std::string S = std::to_string(NumQubits) + " qubit(s), " +
                  std::to_string(EntanglingGates) + " entangling gate(s), " +
                  (CliffordOnly
                       ? std::string("Clifford-only")
                       : std::to_string(NonCliffordGates) +
                             " non-Clifford gate(s)") +
                  (HasFeedForward ? ", feed-forward" : "") +
                  ", max gate span " + std::to_string(MaxGateSpan) +
                  ", max cut crossings " + std::to_string(MaxCutCrossings) +
                  ", estimated max bond ";
  if (EstimatedLogBond >= 63)
    S += ">= 2^63";
  else
    S += std::to_string(estimatedMaxBond());
  return S;
}

CostModel asdf::estimateCost(const Circuit &C, const CircuitProfile *P) {
  CircuitProfile Local;
  if (!P) {
    Local = analyzeCircuit(C);
    P = &Local;
  }
  CostModel M;
  M.NumQubits = C.NumQubits;
  M.CliffordOnly = P->CliffordOnly;
  M.HasFeedForward = P->HasFeedForward;
  // One counter per left/right bisection: cut k separates sites [0, k]
  // from [k+1, n). Every entangling gate straddling the cut can at most
  // double the Schmidt rank across it.
  std::vector<unsigned> Crossings(C.NumQubits > 1 ? C.NumQubits - 1 : 0, 0);
  for (const CircuitInstr &I : C.Instrs) {
    if (I.TheKind != CircuitInstr::Kind::Gate)
      continue;
    if (!isCliffordInstr(I))
      ++M.NonCliffordGates;
    unsigned Lo = ~0u, Hi = 0;
    // Distinct-support width: a degenerate gate (control == target, the
    // dense engine's no-op convention) never entangles anything.
    unsigned Distinct = 0;
    auto Visit = [&](unsigned Q) {
      if (Q < Lo)
        Lo = Q;
      if (Q > Hi)
        Hi = Q;
    };
    for (unsigned Q : I.Controls)
      Visit(Q);
    for (unsigned Q : I.Targets)
      Visit(Q);
    if (Lo == ~0u)
      continue;
    Distinct = Hi - Lo + 1; // Upper bound is all we need: span matters.
    if (Hi <= Lo || Distinct < 2)
      continue;
    ++M.EntanglingGates;
    if (Hi - Lo > M.MaxGateSpan)
      M.MaxGateSpan = Hi - Lo;
    for (unsigned K = Lo; K < Hi && K < Crossings.size(); ++K)
      if (Crossings[K] < 64) // Saturate: past 2^63 the bound is "huge".
        ++Crossings[K];
  }
  for (size_t K = 0; K < Crossings.size(); ++K) {
    // The rank across cut K is also bounded by the smaller side's Hilbert
    // dimension, 2^min(K+1, n-1-K).
    unsigned Side = static_cast<unsigned>(
        std::min<size_t>(K + 1, C.NumQubits - 1 - K));
    unsigned LogBond = std::min(Crossings[K], std::min(Side, 63u));
    if (LogBond > M.EstimatedLogBond)
      M.EstimatedLogBond = LogBond;
    if (Crossings[K] > M.MaxCutCrossings)
      M.MaxCutCrossings = Crossings[K];
  }
  return M;
}
