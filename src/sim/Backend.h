//===- Backend.h - Pluggable simulation-backend interface -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation-backend subsystem. A `SimBackend` executes flat circuits
/// (§7) and reports which circuits it can run exactly; the `BackendRegistry`
/// owns the built-in engines and auto-dispatches each circuit to the fastest
/// backend that supports it:
///
///   - `StatevectorBackend` — dense amplitudes, any gate set, <= 26 qubits;
///   - `StabilizerBackend`  — CHP tableau, Clifford + measure + reset +
///     feed-forward, thousands of qubits.
///
/// Shots are made independent-but-reproducible by deriving every shot's RNG
/// seed from the base seed and the shot index with a splitmix64 hash, so the
/// same (circuit, seed, shots) triple replays identically on any backend
/// while no two shots share a stream.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_BACKEND_H
#define ASDF_SIM_BACKEND_H

#include "qcirc/Circuit.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace asdf {

struct CircuitProfile;

/// Which backend `simulate`/`runShots` should use.
enum class BackendKind {
  Auto,        ///< Fastest backend that supports the circuit.
  Statevector, ///< Force the dense engine.
  Stabilizer,  ///< Force the tableau engine.
};

/// Parses "auto"/"sv"/"stab" (also "statevector"/"stabilizer"). Returns
/// false on unknown names.
bool parseBackendKind(const std::string &Name, BackendKind &Kind);

/// Derives the RNG seed for shot \p Shot of a run with base seed \p Seed.
/// splitmix64 finalizer: statistically independent streams per shot, yet
/// fully determined by (Seed, Shot).
uint64_t deriveShotSeed(uint64_t Seed, uint64_t Shot);

/// The classical outcome of one circuit execution.
struct ShotResult {
  std::vector<bool> Bits; ///< Indexed by classical bit number.

  std::string str() const;
};

/// Abstract interface every simulation engine implements.
class SimBackend {
public:
  virtual ~SimBackend() = default;

  /// Short stable identifier ("sv", "stab") used by --backend and tests.
  virtual const char *name() const = 0;

  /// True if this backend executes \p C exactly. \p P is the precomputed
  /// classification of \p C (see CircuitAnalysis.h).
  virtual bool supports(const Circuit &C, const CircuitProfile &P) const = 0;

  /// Executes \p C once from |0...0>, honoring measurements, resets, and
  /// classical conditions. \p Seed fully determines the outcome.
  virtual ShotResult run(const Circuit &C, uint64_t Seed) const = 0;

  /// Executes \p C \p Shots times, returning outcomes in shot order; shot
  /// S uses seed deriveShotSeed(\p Seed, S). The default loops run();
  /// backends override it to amortize work across shots.
  virtual std::vector<ShotResult> runBatch(const Circuit &C, unsigned Shots,
                                           uint64_t Seed) const;

  /// Aggregates runBatch into outcome frequencies keyed by the classical
  /// bit string (bit 0 first).
  std::map<std::string, unsigned> runShots(const Circuit &C, unsigned Shots,
                                           uint64_t Seed) const;
};

/// Owns the engines and picks one per circuit.
class BackendRegistry {
public:
  /// The process-wide registry, with the built-in backends registered.
  static BackendRegistry &instance();

  /// Registers \p B under B->name(), replacing any same-named backend.
  void registerBackend(std::unique_ptr<SimBackend> B);

  /// Finds a backend by name(); null if absent.
  SimBackend *lookup(const std::string &Name) const;

  /// Resolves \p Kind for \p C. Auto prefers the stabilizer engine whenever
  /// it supports the circuit (tableau updates are polynomial where dense
  /// amplitudes are exponential); otherwise the dense engine. A forced kind
  /// returns that backend even if it does not support \p C — callers that
  /// care check supports() first. Pass \p Profile if the circuit is already
  /// analyzed; otherwise Auto analyzes it internally.
  SimBackend &select(const Circuit &C, BackendKind Kind,
                     const CircuitProfile *Profile = nullptr) const;

  /// Registered backend names, registration order.
  std::vector<std::string> names() const;

private:
  BackendRegistry();
  std::vector<std::unique_ptr<SimBackend>> Backends;
};

} // namespace asdf

#endif // ASDF_SIM_BACKEND_H
