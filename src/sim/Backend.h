//===- Backend.h - Pluggable simulation-backend interface -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation-backend subsystem. A `SimBackend` executes flat circuits
/// (§7) and reports which circuits it can run exactly; the `BackendRegistry`
/// owns the built-in engines and auto-dispatches each circuit to the fastest
/// backend that supports it:
///
///   - `StatevectorBackend` — dense amplitudes, any gate set, <= 26 qubits;
///   - `StabilizerBackend`  — CHP tableau, Clifford + measure + reset +
///     feed-forward, thousands of qubits;
///   - `MPSBackend`         — matrix-product-state tensor network, any gate
///     set at hundreds of qubits when entanglement stays low (bond
///     dimension capped by RunOptions::MpsChi).
///
/// Auto-dispatch consults the cost model (CircuitAnalysis.h): Clifford
/// circuits take the tableau, circuits inside the dense cap take the
/// statevector, and wider circuits whose estimated entanglement fits the
/// bond cap take the MPS engine. `selectWithReasons` exposes the decision
/// and the per-backend rejection reasons (asdfc --explain-backend).
///
/// Shots are made independent-but-reproducible by deriving every shot's RNG
/// seed from the base seed and the shot index with a splitmix64 hash, so the
/// same (circuit, seed, shots) triple replays identically on any backend
/// while no two shots share a stream. That contract is what lets multi-shot
/// runs execute shot-parallel (`RunOptions::Jobs` workers over a
/// work-stealing shot queue) with results still written in shot-index
/// order, bit-identical to the serial path.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_BACKEND_H
#define ASDF_SIM_BACKEND_H

#include "qcirc/Circuit.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace asdf {

struct CircuitProfile;
class NoiseModel;
struct NoiseStats;

/// Which backend `simulate`/`runShots` should use.
enum class BackendKind {
  Auto,        ///< Fastest backend that supports the circuit.
  Statevector, ///< Force the dense engine.
  Stabilizer,  ///< Force the tableau engine.
  MPS,         ///< Force the matrix-product-state engine.
};

/// Parses "auto"/"sv"/"stab"/"mps" (also "statevector"/"stabilizer").
/// Returns false on unknown names.
bool parseBackendKind(const std::string &Name, BackendKind &Kind);

/// Derives the RNG seed for shot \p Shot of a run with base seed \p Seed.
/// splitmix64 finalizer: statistically independent streams per shot, yet
/// fully determined by (Seed, Shot).
uint64_t deriveShotSeed(uint64_t Seed, uint64_t Shot);

/// Derives the base seed for point \p Point of a parameter sweep with base
/// seed \p Seed: the sweep-level analogue of deriveShotSeed, salted so
/// point P's shot streams never collide with the plain runs of \p Seed.
/// Shot S of point P then uses deriveShotSeed(deriveSweepPointSeed(Seed,
/// P), S) — which is also the contract a recompile-per-point reference
/// must follow to reproduce runSweep bit-for-bit.
uint64_t deriveSweepPointSeed(uint64_t Seed, uint64_t Point);

/// Thrown by runBatch/runSweep when RunOptions::Deadline passes mid-run.
/// The cooperative cancellation point sits between shots (and between
/// sweep points), never inside a kernel, so a throw leaves no partially
/// applied gate behind — the run's results are simply abandoned.
class DeadlineExceeded : public std::runtime_error {
public:
  DeadlineExceeded() : std::runtime_error("run deadline exceeded") {}
};

/// Where the dense engine spends its worker threads.
enum class ParallelMode {
  /// Pick from shots x qubits: the shared prefix always runs
  /// amplitude-parallel; the per-shot remainder runs shot-parallel when
  /// there are enough shots to keep every worker busy, amplitude-parallel
  /// otherwise (the low-shot/large-n regime).
  Auto,
  /// Shot-parallel only: one serial engine per in-flight shot.
  Shot,
  /// Amplitude-parallel only: shots run one after another, each kernel's
  /// index range split across the workers.
  Amplitude,
};

/// Lightweight counters for one dense run (RunOptions::SimCounters, asdfc
/// --sim-stats, bench JSON). Plain fields bumped once per kernel
/// application, never per amplitude — parallel runners give each worker
/// its own instance and merge() at the join, so no site ever shares a
/// mutable SimStats across threads.
struct SimStats {
  /// Raw gate/measure/reset kernels applied (pass-through instructions and
  /// the unfused path).
  uint64_t GatesApplied = 0;
  /// Fused ops applied (2x2 runs, diagonal sweeps, multi-qubit blocks).
  uint64_t FusedOps = 0;
  /// Of those, multi-qubit block applications (gather/scatter sweeps).
  uint64_t FusedBlocks = 0;
  /// Amplitudes read-modify-written across all kernels, the currency of
  /// the memory-bound engine (amps/sec = this over wall time).
  uint64_t AmplitudesTouched = 0;
  /// MPS engine: SVDs run while applying gates and moving the
  /// orthogonality center.
  uint64_t MpsSvds = 0;
  /// MPS engine: SVDs that discarded singular values to honor the chi cap
  /// (zero means the run was exact up to floating-point rounding).
  uint64_t MpsTruncations = 0;
  /// MPS engine: accumulated discarded squared Schmidt weight across
  /// truncating SVDs — a (loose) upper-bound proxy for the infidelity the
  /// chi cap introduced.
  double MpsTruncationError = 0.0;
  /// MPS engine: largest bond dimension any site pair reached.
  uint64_t MpsMaxBond = 0;

  /// Folds a worker's counts into this instance (caller serializes).
  void merge(const SimStats &Other) {
    GatesApplied += Other.GatesApplied;
    FusedOps += Other.FusedOps;
    FusedBlocks += Other.FusedBlocks;
    AmplitudesTouched += Other.AmplitudesTouched;
    MpsSvds += Other.MpsSvds;
    MpsTruncations += Other.MpsTruncations;
    MpsTruncationError += Other.MpsTruncationError;
    if (Other.MpsMaxBond > MpsMaxBond)
      MpsMaxBond = Other.MpsMaxBond;
  }
};

/// Execution-plan knobs threaded through runShots/runBatch. The defaults
/// are the fast path: gate fusion on, one worker per hardware core. Every
/// combination returns bit-identical per-shot results up to floating-point
/// rounding of fused matrices — shot S always runs with
/// deriveShotSeed(Seed, S) and lands at result index S, regardless of
/// scheduling, and the dense kernels' reductions use a fixed chunked
/// summation order, so even amplitude-parallel execution is bit-identical
/// across worker counts.
struct RunOptions {
  /// Worker threads for multi-shot runs. 0 means one per hardware core;
  /// 1 forces the serial path.
  unsigned Jobs = 0;
  /// Run the gate-fusion pass before dense execution (Fusion.h).
  bool Fuse = true;
  /// Largest combined support (in qubits) a fused multi-qubit block may
  /// accumulate: k=3 means up to 8x8 matrices applied in one
  /// gather/scatter sweep. 1 restricts fusion to per-wire 2x2 runs and
  /// diagonal coalescing (the pre-block behavior). Clamped to
  /// [1, MaxFuseQubits].
  unsigned FuseMaxQubits = 3;
  /// How the dense engine parallelizes (see ParallelMode).
  ParallelMode Parallel = ParallelMode::Auto;
  /// Optional cross-thread simulation counters for the run (asdfc
  /// --sim-stats, bench JSON). Non-owning; dense engine only.
  SimStats *SimCounters = nullptr;
  /// Override input to StatevectorBackend::maxQubits, the dense-cap
  /// policy consulted by support checks (e.g. the asdfc driver) before a
  /// run; 0 derives the cap from available physical memory. This is a
  /// policy knob for those pre-run checks, not a limit enforced inside
  /// runBatch itself — a forced backend runs whatever it is handed, per
  /// the BackendRegistry::select contract.
  unsigned MaxStateQubits = 0;
  /// MPS bond-dimension cap (chi): every SVD the tensor-network engine
  /// runs keeps at most this many singular values, truncating (and
  /// renormalizing) the rest while accumulating the discarded weight in
  /// SimStats::MpsTruncationError. 0 means unlimited — exact, but memory
  /// and time grow exponentially with entanglement. The default matches
  /// MPSBackend::run(), so runBatch stays bit-identical to per-shot run()
  /// calls at default options. Ignored by the dense and tableau engines.
  unsigned MpsChi = 64;
  /// Noise model for the run (noise/NoiseModel.h); null or empty means
  /// ideal execution. Non-owning — the model must outlive the run. Noisy
  /// shots keep the determinism contract: shot S samples all noise from
  /// the deriveShotSeed(Seed, S) stream, so per-shot bits are still
  /// independent of Jobs and Fuse. Callers must route the model only to a
  /// backend whose supportsNoise accepts it (auto-dispatch does).
  const NoiseModel *Noise = nullptr;
  /// Optional cross-thread diagnostics counters for the noisy run (asdfc
  /// --trajectories). Non-owning.
  NoiseStats *NoiseCounters = nullptr;
  /// Cooperative deadline: a default-constructed (epoch) time_point means
  /// none. The shot runners check it between shot chunks and runSweep
  /// between points; past the deadline the run throws DeadlineExceeded
  /// instead of finishing. Checks sit outside the kernels, so a run in a
  /// long amplitude sweep finishes that sweep first — the deadline bounds
  /// wasted work, not kernel latency.
  std::chrono::steady_clock::time_point Deadline{};

  /// True if a deadline is set and has passed.
  bool deadlineExpired() const {
    return Deadline.time_since_epoch().count() != 0 &&
           std::chrono::steady_clock::now() >= Deadline;
  }
};

/// Resolves RunOptions::Jobs against the machine alone: 0 becomes
/// std::thread::hardware_concurrency, explicit requests are capped at 4x
/// the core count (oversubscribing a CPU-bound sweep further only risks
/// thread-creation failure). The worker budget for amplitude-parallel
/// kernels, where the shot count does not bound useful parallelism.
unsigned resolveJobCount(unsigned RequestedJobs);

/// As above, additionally clamped to [1, Shots] (minimum 1 even for zero
/// shots): the resolution for shot-parallel loops, where a worker beyond
/// the shot count could only idle.
unsigned resolveJobCount(unsigned RequestedJobs, unsigned Shots);

/// Runs \p Body(Begin, End) over disjoint subranges covering [0,
/// \p NumItems) on up to \p Jobs worker threads, claiming chunks of at
/// least \p MinChunk items from a shared work queue (idle workers steal
/// the next chunk as they finish — no static partition, so uneven chunk
/// costs balance out). The generalization of the shot loop that the dense
/// engine's amplitude-parallel kernels split their index ranges over.
/// \p Body must be safe to call concurrently for disjoint ranges. The
/// worker count is clamped to the number of chunks, so no idle thread is
/// ever spawned; Jobs <= 1 or a single chunk degenerates to one
/// Body(0, NumItems) call on this thread. If \p Body throws, the queue
/// drains, every worker joins, and the first exception is rethrown here —
/// same observable behavior as the serial loop. Thread-creation failure
/// degrades to fewer workers, never an error.
void parallelIndexLoop(unsigned Jobs, uint64_t NumItems, uint64_t MinChunk,
                       const std::function<void(uint64_t, uint64_t)> &Body);

/// Runs \p Body(Worker, S) for every S in [0, Shots) on \p Jobs worker
/// threads over the chunked work queue of parallelIndexLoop. Worker ids
/// are dense in [0, Jobs), so callers can hoist per-worker scratch (e.g.
/// a forked state per worker instead of per shot) out of the loop. The
/// worker count is clamped to Shots — requesting more workers than work
/// items never spawns idle threads.
void parallelShotLoop(unsigned Jobs, unsigned Shots,
                      const std::function<void(unsigned, unsigned)> &Body);

/// Worker-agnostic convenience overload: runs \p Body(S) for every shot.
void parallelShotLoop(unsigned Jobs, unsigned Shots,
                      const std::function<void(unsigned)> &Body);

/// The classical outcome of one circuit execution.
struct ShotResult {
  std::vector<bool> Bits; ///< Indexed by classical bit number.

  std::string str() const;
};

/// Abstract interface every simulation engine implements.
class SimBackend {
public:
  virtual ~SimBackend() = default;

  /// Short stable identifier ("sv", "stab") used by --backend and tests.
  virtual const char *name() const = 0;

  /// True if this backend executes \p C exactly. \p P is the precomputed
  /// classification of \p C (see CircuitAnalysis.h).
  virtual bool supports(const Circuit &C, const CircuitProfile &P) const = 0;

  /// Executes \p C once from |0...0>, honoring measurements, resets, and
  /// classical conditions. \p Seed fully determines the outcome. Must be
  /// safe to call concurrently (the shot-parallel runner does).
  virtual ShotResult run(const Circuit &C, uint64_t Seed) const = 0;

  /// Executes one noisy trajectory of \p C (quantum-trajectory Kraus
  /// sampling on the dense engine, Pauli injection on the tableau). The
  /// base implementation ignores \p Noise and runs ideally — callers must
  /// check supportsNoise first; the registry's auto-dispatch does.
  virtual ShotResult runNoisy(const Circuit &C, uint64_t Seed,
                              const NoiseModel &Noise,
                              NoiseStats *Stats = nullptr) const;

  /// True if this backend executes \p Noise exactly (the dense engine
  /// takes any Kraus model, the tableau only Pauli-only models). The base
  /// implementation refuses every model.
  virtual bool supportsNoise(const NoiseModel &Noise) const;

  /// Executes \p C \p Shots times, returning outcomes in shot order; shot
  /// S uses seed deriveShotSeed(\p Seed, S), so the result is independent
  /// of \p Opts (jobs, fusion) up to floating-point rounding of fused
  /// matrices. The default fans run() out over a shot-parallel work queue;
  /// backends override it to amortize work across shots.
  virtual std::vector<ShotResult> runBatch(const Circuit &C, unsigned Shots,
                                           uint64_t Seed,
                                           const RunOptions &Opts) const;
  std::vector<ShotResult> runBatch(const Circuit &C, unsigned Shots,
                                   uint64_t Seed) const {
    return runBatch(C, Shots, Seed, RunOptions());
  }

  /// Executes the parametric circuit \p C once per parameter point:
  /// Results[P] holds the \p Shots outcomes of \p C bound to \p Points[P]
  /// (one value per C.ParamNames entry, bindCircuit order), run with base
  /// seed deriveSweepPointSeed(\p Seed, P). The contract is bit-identity:
  /// Results[P] == runBatch(bindCircuit(C, Points[P]), Shots,
  /// deriveSweepPointSeed(Seed, P), Opts) for every point, on every
  /// backend and execution plan. The default implementation is exactly
  /// that loop; backends override it to reuse work across points (the
  /// dense engine fuses the circuit structure once and re-materializes
  /// only angle-dependent matrices per point). A non-parametric \p C is
  /// allowed — each point must then be an empty value list.
  virtual std::vector<std::vector<ShotResult>>
  runSweep(const Circuit &C, const std::vector<std::vector<double>> &Points,
           unsigned Shots, uint64_t Seed, const RunOptions &Opts) const;

  /// Aggregates runBatch into outcome frequencies keyed by the classical
  /// bit string (bit 0 first).
  std::map<std::string, unsigned>
  runShots(const Circuit &C, unsigned Shots, uint64_t Seed,
           const RunOptions &Opts = RunOptions()) const;
};

/// One registered backend's verdict in a selection decision: whether
/// auto-dispatch may hand it the circuit, and the reason either way.
struct BackendVerdict {
  std::string Name;
  /// True if auto-dispatch may choose this backend for the circuit (it
  /// executes the circuit exactly, noise model included).
  bool Eligible = false;
  /// Human-readable reason — why it qualifies, or why it was rejected
  /// (unsupported feature, qubit cap, entanglement estimate over chi).
  std::string Why;
};

/// The full outcome of one dispatch decision: the chosen engine, the
/// cost-model reasoning behind it, and every registered backend's verdict.
/// Produced by BackendRegistry::selectWithReasons; rendered by
/// `asdfc --explain-backend` and by the unsupported-circuit diagnostics of
/// the driver and the service.
struct BackendSelection {
  /// The resolved engine; never null (a forced kind returns its backend,
  /// Auto falls back to the first registered engine when nothing is
  /// eligible so the caller still has a name to report).
  SimBackend *Chosen = nullptr;
  /// True if Chosen can actually execute the circuit. A forced MPS run
  /// over the entanglement estimate stays supported (it truncates); a
  /// forced dense run over the qubit cap does not.
  bool Supported = false;
  /// Why Chosen was picked ("Clifford-only circuit: ...", "forced by
  /// --backend sv", ...).
  std::string Reason;
  /// One-line cost-model summary (CostModel::summary()).
  std::string CostSummary;
  /// Per-backend verdicts, registration order.
  std::vector<BackendVerdict> Verdicts;

  /// Multi-line human-readable report (--explain-backend).
  std::string describe() const;
  /// Single-line rejection summary ("sv: ...; stab: ...; mps: ...") for
  /// wire-protocol error payloads and one-line diagnostics.
  std::string rejectionSummary() const;
};

/// Owns the engines and picks one per circuit.
class BackendRegistry {
public:
  /// The process-wide registry, with the built-in backends registered.
  static BackendRegistry &instance();

  /// Registers \p B under B->name(), replacing any same-named backend.
  void registerBackend(std::unique_ptr<SimBackend> B);

  /// Finds a backend by name(); null if absent.
  SimBackend *lookup(const std::string &Name) const;

  /// Resolves \p Kind for \p C. Auto consults the cost model: the
  /// stabilizer engine whenever it is exact for the circuit (tableau
  /// updates are polynomial where dense amplitudes are exponential) AND
  /// can execute \p Noise (Pauli-only models; null means ideal); else the
  /// dense engine when the circuit fits the memory-derived qubit cap; else
  /// the MPS engine when the estimated entanglement fits the bond cap.
  /// A forced kind returns that backend even if it does not support \p C
  /// or \p Noise — callers that care check supports()/supportsNoise()
  /// first, or use selectWithReasons. Pass \p Profile if the circuit is
  /// already analyzed; otherwise Auto analyzes it internally.
  SimBackend &select(const Circuit &C, BackendKind Kind,
                     const CircuitProfile *Profile = nullptr,
                     const NoiseModel *Noise = nullptr) const;

  /// As select(), but returns the whole decision: the chosen backend, the
  /// cost-model reasoning, and one verdict per registered backend stating
  /// why it was or was not eligible. \p Opts supplies the policy knobs the
  /// verdicts depend on (dense cap override, MPS chi).
  BackendSelection selectWithReasons(const Circuit &C, BackendKind Kind,
                                     const RunOptions &Opts = RunOptions(),
                                     const CircuitProfile *Profile = nullptr,
                                     const NoiseModel *Noise = nullptr) const;

  /// Registered backend names, registration order.
  std::vector<std::string> names() const;

private:
  BackendRegistry();
  std::vector<std::unique_ptr<SimBackend>> Backends;
};

} // namespace asdf

#endif // ASDF_SIM_BACKEND_H
