//===- MPSState.h - Matrix-product-state tensor network ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A matrix-product-state (MPS) representation of an n-qubit pure state:
/// one rank-3 tensor A[i] of shape (Dl, 2, Dr) per site, with the state's
/// amplitude for basis string s0 s1 ... s_{n-1} given by the matrix product
/// A[0]^{s0} A[1]^{s1} ... A[n-1]^{s_{n-1}} (each A[i]^{s} a Dl x Dr
/// matrix; the boundary bonds are 1-dimensional). Memory is O(n * chi^2)
/// where chi bounds the bond dimensions — polynomial in n for
/// lowly-entangled states where the dense 2^n vector is unreachable.
///
/// The state is kept in **mixed-canonical form** around an orthogonality
/// center: every site left of the center is left-orthogonal, every site
/// right of it right-orthogonal. That invariant is what makes the two core
/// operations local and optimal:
///
///   - a two-site (or m-site) gate contracts the neighboring tensors,
///     applies the unitary, and splits the result back with an SVD; with
///     the environment orthonormal, discarding the smallest singular
///     values is the *optimal* rank-chi truncation of the state, and the
///     discarded squared weight is tracked as the truncation error;
///   - measuring a qubit reads its reduced density matrix off the center
///     tensor alone (the environments contract to identity), then
///     collapses by zeroing the other physical component and rescaling.
///
/// Long-range gates route via adjacent SWAP gates (applied as ordinary
/// two-site unitaries, truncated like any other); multi-qubit gates
/// (Toffoli, multi-controlled phases) contract their whole support into
/// one block tensor, apply the 2^m x 2^m matrix from gateBlockMatrix, and
/// re-split site by site.
///
/// The SVD is a dependency-free one-sided (Hestenes) Jacobi — adequate for
/// the (2*chi) x (2*chi) matrices gate application produces, numerically
/// robust, and deterministic across runs on one platform.
///
/// Convention: site i holds qubit i; qubit 0 is the leftmost site and the
/// most significant bit of a basis-state index, matching the dense
/// engine's eigenbit convention.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_MPS_MPSSTATE_H
#define ASDF_SIM_MPS_MPSSTATE_H

#include "sim/Backend.h"

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

namespace asdf {

/// An n-qubit pure state as a matrix product, initialized to |0...0>.
class MPSState {
public:
  using Cplx = std::complex<double>;

  /// \p Chi caps every bond dimension (0 = unlimited / exact).
  explicit MPSState(unsigned NumQubits, unsigned Chi = 0);

  unsigned numQubits() const { return static_cast<unsigned>(Sites.size()); }
  unsigned chi() const { return Chi; }

  /// Attaches per-run simulation counters (null detaches). Non-owning;
  /// concurrently-running shots must each attach their own instance.
  void setStats(SimStats *S) { Stats = S; }

  /// Largest bond dimension reached so far (including transient growth
  /// before truncation never counts — this is the post-truncation max).
  unsigned maxBond() const { return MaxBond; }

  /// Accumulated discarded squared Schmidt weight across truncating SVDs.
  double truncationError() const { return TruncErr; }

  /// Applies one gate instruction (any GateKind, any control count, any
  /// qubit distance). Classical conditions are the caller's business; a
  /// degenerate gate whose controls and targets overlap is a no-op, as on
  /// the dense engine.
  void apply(const CircuitInstr &I);

  /// Measures qubit \p Q in the computational basis, collapses the state,
  /// and returns the outcome. Consumes exactly one uniform draw from
  /// \p Rng (the dense engine's convention, so RNG consumption is
  /// identical across execution plans).
  bool measure(unsigned Q, std::mt19937_64 &Rng);

  /// Resets qubit \p Q to |0> (measure, then flip on a 1 outcome).
  void reset(unsigned Q, std::mt19937_64 &Rng);

  /// Probability that qubit \p Q reads 1 (moves the orthogonality center;
  /// does not collapse).
  double probOne(unsigned Q);

  /// The amplitude of computational basis state \p Index (qubit 0 = MSB).
  Cplx amplitude(uint64_t Index) const;

  /// The full dense state (2^n amplitudes, basis index order). Intended
  /// for differential tests at small n.
  std::vector<Cplx> statevector() const;

private:
  /// One site tensor, shape (Dl, 2, Dr), entry (l, s, r) at
  /// T[(l * 2 + s) * Dr + r].
  struct Site {
    unsigned Dl = 1, Dr = 1;
    std::vector<Cplx> T;
  };

  std::vector<Site> Sites;
  unsigned Chi;          ///< Bond cap (0 = unlimited).
  unsigned Center = 0;   ///< Orthogonality center site.
  unsigned MaxBond = 1;  ///< High-water bond dimension.
  double TruncErr = 0.0; ///< Accumulated discarded weight.
  SimStats *Stats = nullptr;

  void moveCenter(unsigned To);
  void moveCenterRight(); ///< Center -> Center + 1 (exact split).
  void moveCenterLeft();  ///< Center -> Center - 1 (exact split).

  /// Applies an uncontrolled single-qubit 2x2 matrix in place (no SVD,
  /// bond dimensions unchanged, orthogonality preserved).
  void applySingle(unsigned Q, const Cplx U[2][2]);

  /// Applies a 2^m x 2^m unitary to the m contiguous sites
  /// [First, First + m): contract, multiply, re-split with truncation.
  /// Leaves the center at First + m - 1.
  void applyBlockAt(unsigned First, unsigned M, const std::vector<Cplx> &U);

  /// Swaps the qubits at sites \p I and I + 1 (a routed SWAP, applied as
  /// an ordinary two-site unitary).
  void swapAdjacent(unsigned I);

  /// SVDs the Rows x Cols matrix \p Theta as U * diag(S) * Vh and keeps K
  /// columns: numerically-zero singular values always drop (keeping bonds
  /// minimal on exact splits); when \p Truncate, at most chi survive, the
  /// kept values renormalize to preserve the norm, and the discarded
  /// squared weight is accounted. U comes back Rows x K, Vh K x Cols,
  /// both row-major. Returns K >= 1.
  unsigned truncatedSVD(const std::vector<Cplx> &Theta, unsigned Rows,
                        unsigned Cols, std::vector<Cplx> &U,
                        std::vector<double> &S, std::vector<Cplx> &Vh,
                        bool Truncate);

  void noteBond(unsigned D) {
    if (D > MaxBond)
      MaxBond = D;
    if (Stats && D > Stats->MpsMaxBond)
      Stats->MpsMaxBond = D;
  }
};

} // namespace asdf

#endif // ASDF_SIM_MPS_MPSSTATE_H
