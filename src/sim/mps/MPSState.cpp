//===- MPSState.cpp - Matrix-product-state tensor network -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/mps/MPSState.h"

#include "obs/Trace.h"
#include "sim/Fusion.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace asdf;

using Cplx = MPSState::Cplx;

namespace {

/// Relative floor below which a singular value is numerically zero: these
/// drop on every split (center moves included), keeping bond dimensions
/// minimal without counting as chi truncation.
constexpr double SingularFloor = 1e-13;

/// One-sided (Hestenes) Jacobi SVD of the Rows x Cols row-major matrix
/// \p A with Cols <= Rows: on return A's columns are mutually orthogonal
/// with norms \p S (unsorted), and \p V accumulates the applied column
/// rotations from identity, so A_in = A_out * V^H ... i.e. with
/// U = A_out / diag(S): A_in = U * diag(S) * V^H. Dependency-free and
/// deterministic: rotation order is a fixed cyclic sweep.
void jacobiColumns(std::vector<Cplx> &A, unsigned Rows, unsigned Cols,
                   std::vector<double> &S, std::vector<Cplx> &V) {
  assert(Cols <= Rows && "tall or square input required");
  V.assign(size_t(Cols) * Cols, Cplx(0.0, 0.0));
  for (unsigned J = 0; J < Cols; ++J)
    V[size_t(J) * Cols + J] = Cplx(1.0, 0.0);

  auto Col = [&](std::vector<Cplx> &M, unsigned Stride, unsigned J,
                 unsigned K) -> Cplx & { return M[size_t(K) * Stride + J]; };

  const unsigned MaxSweeps = 64;
  for (unsigned Sweep = 0; Sweep < MaxSweeps; ++Sweep) {
    bool Rotated = false;
    for (unsigned P = 0; P + 1 < Cols; ++P) {
      for (unsigned Q = P + 1; Q < Cols; ++Q) {
        // Gram entries of the column pair.
        double Ap = 0.0, Aq = 0.0;
        Cplx C(0.0, 0.0);
        for (unsigned K = 0; K < Rows; ++K) {
          Cplx Xp = Col(A, Cols, P, K), Xq = Col(A, Cols, Q, K);
          Ap += std::norm(Xp);
          Aq += std::norm(Xq);
          C += std::conj(Xp) * Xq;
        }
        double AbsC = std::abs(C);
        if (AbsC <= 1e-15 * std::sqrt(Ap * Aq) || AbsC == 0.0)
          continue;
        Rotated = true;
        // Phase-rotate column q so the cross term becomes real positive,
        // then a real Jacobi rotation zeroes it.
        Cplx Ph = C / AbsC;
        Cplx PhC = std::conj(Ph);
        double Zeta = (Aq - Ap) / (2.0 * AbsC);
        double T = (Zeta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(Zeta) + std::sqrt(1.0 + Zeta * Zeta));
        double Cs = 1.0 / std::sqrt(1.0 + T * T);
        double Sn = Cs * T;
        for (unsigned K = 0; K < Rows; ++K) {
          Cplx Xp = Col(A, Cols, P, K), Xq = PhC * Col(A, Cols, Q, K);
          Col(A, Cols, P, K) = Cs * Xp - Sn * Xq;
          Col(A, Cols, Q, K) = Sn * Xp + Cs * Xq;
        }
        for (unsigned K = 0; K < Cols; ++K) {
          Cplx Xp = Col(V, Cols, P, K), Xq = PhC * Col(V, Cols, Q, K);
          Col(V, Cols, P, K) = Cs * Xp - Sn * Xq;
          Col(V, Cols, Q, K) = Sn * Xp + Cs * Xq;
        }
      }
    }
    if (!Rotated)
      break;
  }

  S.resize(Cols);
  for (unsigned J = 0; J < Cols; ++J) {
    double Sum = 0.0;
    for (unsigned K = 0; K < Rows; ++K)
      Sum += std::norm(Col(A, Cols, J, K));
    S[J] = std::sqrt(Sum);
  }
}

/// Full SVD of the Rows x Cols row-major matrix \p M: fills \p U
/// (Rows x R), \p S (descending), \p Vh (R x Cols) with R = min(Rows,
/// Cols) and M = U * diag(S) * Vh. A wide input runs Jacobi on M^H and
/// swaps the factor roles.
void svd(const std::vector<Cplx> &M, unsigned Rows, unsigned Cols,
         std::vector<Cplx> &U, std::vector<double> &S,
         std::vector<Cplx> &Vh) {
  unsigned R = std::min(Rows, Cols);
  std::vector<Cplx> Work;
  std::vector<Cplx> Acc; // Rotation accumulator (the non-column factor).
  std::vector<double> Sw;
  bool Wide = Cols > Rows;
  if (!Wide) {
    Work = M;
    jacobiColumns(Work, Rows, Cols, Sw, Acc);
  } else {
    // Work = M^H (Cols x Rows, now tall): M^H = U2 diag(S) V2^H gives
    // M = V2 diag(S) U2^H, so U = V2 and V^H = U2^H.
    Work.assign(size_t(Cols) * Rows, Cplx(0.0, 0.0));
    for (unsigned I = 0; I < Rows; ++I)
      for (unsigned J = 0; J < Cols; ++J)
        Work[size_t(J) * Rows + I] = std::conj(M[size_t(I) * Cols + J]);
    jacobiColumns(Work, Cols, Rows, Sw, Acc);
  }

  // Sort singular values descending.
  std::vector<unsigned> Perm(R);
  std::iota(Perm.begin(), Perm.end(), 0);
  std::stable_sort(Perm.begin(), Perm.end(),
                   [&](unsigned A, unsigned B) { return Sw[A] > Sw[B]; });

  S.resize(R);
  U.assign(size_t(Rows) * R, Cplx(0.0, 0.0));
  Vh.assign(size_t(R) * Cols, Cplx(0.0, 0.0));
  for (unsigned J = 0; J < R; ++J) {
    unsigned P = Perm[J];
    double Sv = Sw[P];
    S[J] = Sv;
    double Inv = Sv > 0.0 ? 1.0 / Sv : 0.0;
    if (!Wide) {
      // U column j = normalized Work column p; V^H row j = Acc column p
      // conjugated.
      for (unsigned K = 0; K < Rows; ++K)
        U[size_t(K) * R + J] = Work[size_t(K) * Cols + P] * Inv;
      for (unsigned K = 0; K < Cols; ++K)
        Vh[size_t(J) * Cols + K] = std::conj(Acc[size_t(K) * Cols + P]);
    } else {
      // U column j = Acc column p; V^H row j = (normalized Work column
      // p)^H.
      for (unsigned K = 0; K < Rows; ++K)
        U[size_t(K) * R + J] = Acc[size_t(K) * Rows + P];
      for (unsigned K = 0; K < Cols; ++K)
        Vh[size_t(J) * Cols + K] =
            std::conj(Work[size_t(K) * Rows + P]) * Inv;
    }
  }
}

/// Row-major product C = A (RxK) * B (KxC).
std::vector<Cplx> matmulRect(const std::vector<Cplx> &A, unsigned Rows,
                             unsigned Inner, const std::vector<Cplx> &B,
                             unsigned Cols) {
  std::vector<Cplx> C(size_t(Rows) * Cols, Cplx(0.0, 0.0));
  for (unsigned I = 0; I < Rows; ++I)
    for (unsigned K = 0; K < Inner; ++K) {
      Cplx A_ik = A[size_t(I) * Inner + K];
      if (A_ik == Cplx(0.0, 0.0))
        continue;
      const Cplx *BRow = &B[size_t(K) * Cols];
      Cplx *CRow = &C[size_t(I) * Cols];
      for (unsigned J = 0; J < Cols; ++J)
        CRow[J] += A_ik * BRow[J];
    }
  return C;
}

} // namespace

MPSState::MPSState(unsigned NumQubits, unsigned ChiCap) : Chi(ChiCap) {
  assert(NumQubits > 0 && "empty register");
  Sites.resize(NumQubits);
  for (Site &A : Sites) {
    A.Dl = A.Dr = 1;
    A.T = {Cplx(1.0, 0.0), Cplx(0.0, 0.0)}; // |0>
  }
}

unsigned MPSState::truncatedSVD(const std::vector<Cplx> &Theta, unsigned Rows,
                                unsigned Cols, std::vector<Cplx> &U,
                                std::vector<double> &S, std::vector<Cplx> &Vh,
                                bool Truncate) {
  obs::Span Sp("mps.svd", "sim");
  if (Stats)
    ++Stats->MpsSvds;
  svd(Theta, Rows, Cols, U, S, Vh);
  unsigned R = static_cast<unsigned>(S.size());

  double WTotal = 0.0;
  for (double Sv : S)
    WTotal += Sv * Sv;

  // Numerically-zero values drop unconditionally (exact up to rounding).
  unsigned NonZero = R;
  while (NonZero > 1 && S[NonZero - 1] <= S[0] * SingularFloor)
    --NonZero;

  unsigned K = NonZero;
  bool Truncated = false;
  if (Truncate && Chi > 0 && K > Chi) {
    K = Chi;
    Truncated = true;
  }

  if (K < R) {
    // Trim U to its first K columns and Vh to its first K rows (rows are
    // contiguous, so Vh just shrinks).
    std::vector<Cplx> Ut(size_t(Rows) * K);
    for (unsigned I = 0; I < Rows; ++I)
      for (unsigned J = 0; J < K; ++J)
        Ut[size_t(I) * K + J] = U[size_t(I) * R + J];
    U = std::move(Ut);
    Vh.resize(size_t(K) * Cols);
    S.resize(K);
  }

  if (Truncated) {
    double WKept = 0.0;
    for (double Sv : S)
      WKept += Sv * Sv;
    if (WKept > 0.0 && WTotal > 0.0) {
      double Discarded = 1.0 - WKept / WTotal;
      TruncErr += Discarded;
      if (Stats) {
        ++Stats->MpsTruncations;
        Stats->MpsTruncationError += Discarded;
      }
      // Renormalize so the state keeps unit norm despite the cut.
      double Scale = std::sqrt(WTotal / WKept);
      for (double &Sv : S)
        Sv *= Scale;
    }
  }
  return K;
}

void MPSState::moveCenterRight() {
  assert(Center + 1 < Sites.size());
  Site &A = Sites[Center];
  // A is already laid out as the (Dl*2) x Dr matrix of the split.
  std::vector<Cplx> U, Vh;
  std::vector<double> S;
  unsigned K = truncatedSVD(A.T, A.Dl * 2, A.Dr, U, S, Vh,
                            /*Truncate=*/false);
  unsigned OldDr = A.Dr;
  A.T = std::move(U);
  A.Dr = K;
  // Absorb diag(S) * Vh into the right neighbor, viewed as the
  // OldDr x (2 * Dr) matrix of its (l, s, r) layout.
  for (unsigned I = 0; I < K; ++I)
    for (unsigned J = 0; J < OldDr; ++J)
      Vh[size_t(I) * OldDr + J] *= S[I];
  Site &B = Sites[Center + 1];
  B.T = matmulRect(Vh, K, OldDr, B.T, 2 * B.Dr);
  B.Dl = K;
  ++Center;
}

void MPSState::moveCenterLeft() {
  assert(Center > 0);
  Site &A = Sites[Center];
  // View A as the Dl x (2*Dr) matrix of its layout.
  std::vector<Cplx> U, Vh;
  std::vector<double> S;
  unsigned K = truncatedSVD(A.T, A.Dl, 2 * A.Dr, U, S, Vh,
                            /*Truncate=*/false);
  unsigned OldDl = A.Dl;
  A.T = std::move(Vh);
  A.Dl = K;
  // Absorb U * diag(S) into the left neighbor, viewed as (Dl*2) x Dr.
  for (unsigned I = 0; I < OldDl; ++I)
    for (unsigned J = 0; J < K; ++J)
      U[size_t(I) * K + J] *= S[J];
  Site &B = Sites[Center - 1];
  B.T = matmulRect(B.T, B.Dl * 2, OldDl, U, K);
  B.Dr = K;
  --Center;
}

void MPSState::moveCenter(unsigned To) {
  while (Center < To)
    moveCenterRight();
  while (Center > To)
    moveCenterLeft();
}

void MPSState::applySingle(unsigned Q, const Cplx U[2][2]) {
  // A unitary on the physical leg preserves both orthogonality
  // conditions, so no center move and no SVD.
  Site &A = Sites[Q];
  for (unsigned L = 0; L < A.Dl; ++L)
    for (unsigned R = 0; R < A.Dr; ++R) {
      Cplx X0 = A.T[(size_t(L) * 2 + 0) * A.Dr + R];
      Cplx X1 = A.T[(size_t(L) * 2 + 1) * A.Dr + R];
      A.T[(size_t(L) * 2 + 0) * A.Dr + R] = U[0][0] * X0 + U[0][1] * X1;
      A.T[(size_t(L) * 2 + 1) * A.Dr + R] = U[1][0] * X0 + U[1][1] * X1;
    }
}

void MPSState::applyBlockAt(unsigned First, unsigned M,
                            const std::vector<Cplx> &U) {
  assert(First + M <= Sites.size());
  if (M == 1) {
    Cplx U2[2][2] = {{U[0], U[1]}, {U[2], U[3]}};
    applySingle(First, U2);
    return;
  }
  // The center must sit inside the window for truncation to be optimal
  // (orthonormal environments on both flanks).
  if (Center < First)
    moveCenter(First);
  else if (Center > First + M - 1)
    moveCenter(First + M - 1);

  // Contract the window into one (Dl0, 2^M, DrLast) block. Physical
  // index p is MSB-first: site First owns the top bit, matching
  // gateBlockMatrix's Support[0]-is-MSB convention for an ascending
  // support.
  unsigned Dl0 = Sites[First].Dl;
  unsigned Phys = 2;
  std::vector<Cplx> Block = Sites[First].T; // (Dl0, 2, Dr) layout.
  unsigned Dc = Sites[First].Dr;
  for (unsigned I = 1; I < M; ++I) {
    const Site &Next = Sites[First + I];
    assert(Next.Dl == Dc);
    unsigned NewPhys = Phys * 2;
    std::vector<Cplx> Merged(size_t(Dl0) * NewPhys * Next.Dr,
                             Cplx(0.0, 0.0));
    for (unsigned L = 0; L < Dl0; ++L)
      for (unsigned P = 0; P < Phys; ++P)
        for (unsigned C = 0; C < Dc; ++C) {
          Cplx X = Block[(size_t(L) * Phys + P) * Dc + C];
          if (X == Cplx(0.0, 0.0))
            continue;
          const Cplx *N0 = &Next.T[(size_t(C) * 2 + 0) * Next.Dr];
          const Cplx *N1 = &Next.T[(size_t(C) * 2 + 1) * Next.Dr];
          Cplx *Out0 = &Merged[(size_t(L) * NewPhys + P * 2 + 0) * Next.Dr];
          Cplx *Out1 = &Merged[(size_t(L) * NewPhys + P * 2 + 1) * Next.Dr];
          for (unsigned R = 0; R < Next.Dr; ++R) {
            Out0[R] += X * N0[R];
            Out1[R] += X * N1[R];
          }
        }
    Block = std::move(Merged);
    Phys = NewPhys;
    Dc = Next.Dr;
  }
  unsigned DrLast = Dc;

  // Apply the unitary on the physical index.
  assert(U.size() == size_t(Phys) * Phys);
  std::vector<Cplx> Applied(Block.size(), Cplx(0.0, 0.0));
  for (unsigned L = 0; L < Dl0; ++L)
    for (unsigned P = 0; P < Phys; ++P) {
      Cplx *Out = &Applied[(size_t(L) * Phys + P) * DrLast];
      const Cplx *URow = &U[size_t(P) * Phys];
      for (unsigned Pp = 0; Pp < Phys; ++Pp) {
        Cplx W = URow[Pp];
        if (W == Cplx(0.0, 0.0))
          continue;
        const Cplx *In = &Block[(size_t(L) * Phys + Pp) * DrLast];
        for (unsigned R = 0; R < DrLast; ++R)
          Out[R] += W * In[R];
      }
    }
  Block = std::move(Applied);

  // Re-split left to right; every interior cut truncates to chi. The
  // remaining block keeps shape (DlCur, RemPhys, DrLast).
  unsigned DlCur = Dl0;
  unsigned RemPhys = Phys;
  for (unsigned I = 0; I + 1 < M; ++I) {
    unsigned Rows = DlCur * 2;
    unsigned Cols = (RemPhys / 2) * DrLast;
    std::vector<Cplx> USplit, Vh;
    std::vector<double> S;
    unsigned K =
        truncatedSVD(Block, Rows, Cols, USplit, S, Vh, /*Truncate=*/true);
    Site &A = Sites[First + I];
    A.Dl = DlCur;
    A.Dr = K;
    A.T = std::move(USplit);
    noteBond(K);
    for (unsigned Ri = 0; Ri < K; ++Ri)
      for (unsigned Cj = 0; Cj < Cols; ++Cj)
        Vh[size_t(Ri) * Cols + Cj] *= S[Ri];
    Block = std::move(Vh);
    DlCur = K;
    RemPhys /= 2;
  }
  Site &Last = Sites[First + M - 1];
  Last.Dl = DlCur;
  Last.Dr = DrLast;
  Last.T = std::move(Block);
  Center = First + M - 1;
}

void MPSState::swapAdjacent(unsigned I) {
  static const std::vector<Cplx> SwapU = {
      {1, 0}, {0, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {1, 0}, {0, 0}, //
      {0, 0}, {1, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {0, 0}, {1, 0}, //
  };
  applyBlockAt(I, 2, SwapU);
}

void MPSState::apply(const CircuitInstr &I) {
  assert(I.TheKind == CircuitInstr::Kind::Gate && "gate instructions only");
  assert(!I.isSymbolic() && "bind parameters before running");
  obs::Span Sp("mps.gate", "sim");

  // Collect the sorted distinct support; a duplicated qubit (control ==
  // target) is the dense engine's documented no-op.
  std::vector<unsigned> Support;
  Support.reserve(I.Controls.size() + I.Targets.size());
  Support.insert(Support.end(), I.Controls.begin(), I.Controls.end());
  Support.insert(Support.end(), I.Targets.begin(), I.Targets.end());
  std::sort(Support.begin(), Support.end());
  if (std::adjacent_find(Support.begin(), Support.end()) != Support.end())
    return;
  assert(!Support.empty());
  assert(Support.back() < Sites.size());

  if (Support.size() == 1 && I.Gate != GateKind::Swap) {
    Mat2 U = gateMatrix2(I.Gate, I.Param);
    applySingle(Support[0], U.M);
    return;
  }

  unsigned M = static_cast<unsigned>(Support.size());
  unsigned Base = Support[0];
  if (Support.back() - Base + 1 == M) {
    // Contiguous support: one block application.
    applyBlockAt(Base, M, gateBlockMatrix(I, Support));
    return;
  }

  // Long-range gate: route the support together with adjacent swaps,
  // apply the block, then replay the swaps in reverse. Gathering the
  // i-th support qubit leftward to Base + i only crosses sites left of
  // the (i+1)-th support qubit, so later support positions stay put.
  std::vector<unsigned> Route;
  for (unsigned Idx = 1; Idx < M; ++Idx)
    for (unsigned Pos = Support[Idx]; Pos > Base + Idx; --Pos) {
      swapAdjacent(Pos - 1);
      Route.push_back(Pos - 1);
    }
  // After routing, site Base + i holds original qubit Support[i], so the
  // block's local ordering matches the sorted support exactly.
  std::vector<unsigned> Window(M);
  for (unsigned Idx = 0; Idx < M; ++Idx)
    Window[Idx] = Base + Idx;
  CircuitInstr Local = I;
  // Remap controls/targets onto the gathered window for gateBlockMatrix.
  auto Remap = [&](std::vector<unsigned> &Qs) {
    for (unsigned &Q : Qs) {
      auto It = std::lower_bound(Support.begin(), Support.end(), Q);
      Q = Base + static_cast<unsigned>(It - Support.begin());
    }
  };
  Remap(Local.Controls);
  Remap(Local.Targets);
  applyBlockAt(Base, M, gateBlockMatrix(Local, Window));
  for (auto It = Route.rbegin(); It != Route.rend(); ++It)
    swapAdjacent(*It);
}

double MPSState::probOne(unsigned Q) {
  moveCenter(Q);
  const Site &A = Sites[Q];
  double W0 = 0.0, W1 = 0.0;
  for (unsigned L = 0; L < A.Dl; ++L)
    for (unsigned R = 0; R < A.Dr; ++R) {
      W0 += std::norm(A.T[(size_t(L) * 2 + 0) * A.Dr + R]);
      W1 += std::norm(A.T[(size_t(L) * 2 + 1) * A.Dr + R]);
    }
  double Total = W0 + W1;
  return Total > 0.0 ? W1 / Total : 0.0;
}

bool MPSState::measure(unsigned Q, std::mt19937_64 &Rng) {
  obs::Span Sp("mps.measure", "sim");
  double P1 = probOne(Q); // Moves the center to Q.
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  bool One = Dist(Rng) < P1;
  // Collapse the center tensor: zero the dead physical component, rescale
  // the kept one so the state norm is unchanged.
  Site &A = Sites[Q];
  unsigned Keep = One ? 1 : 0;
  double Norm = std::sqrt(One ? P1 : 1.0 - P1);
  double Scale = Norm >= 1e-300 ? 1.0 / Norm : 1.0;
  for (unsigned L = 0; L < A.Dl; ++L)
    for (unsigned R = 0; R < A.Dr; ++R) {
      A.T[(size_t(L) * 2 + Keep) * A.Dr + R] *= Scale;
      A.T[(size_t(L) * 2 + (1 - Keep)) * A.Dr + R] = Cplx(0.0, 0.0);
    }
  return One;
}

void MPSState::reset(unsigned Q, std::mt19937_64 &Rng) {
  if (measure(Q, Rng)) {
    static const Cplx X[2][2] = {{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};
    applySingle(Q, X);
  }
}

Cplx MPSState::amplitude(uint64_t Index) const {
  unsigned N = numQubits();
  // Row vector through the matrix product; qubit 0 is the MSB.
  std::vector<Cplx> Vec = {Cplx(1.0, 0.0)};
  for (unsigned I = 0; I < N; ++I) {
    unsigned S = static_cast<unsigned>((Index >> (N - 1 - I)) & 1);
    const Site &A = Sites[I];
    std::vector<Cplx> Next(A.Dr, Cplx(0.0, 0.0));
    for (unsigned L = 0; L < A.Dl; ++L) {
      Cplx X = Vec[L];
      if (X == Cplx(0.0, 0.0))
        continue;
      const Cplx *Row = &A.T[(size_t(L) * 2 + S) * A.Dr];
      for (unsigned R = 0; R < A.Dr; ++R)
        Next[R] += X * Row[R];
    }
    Vec = std::move(Next);
  }
  return Vec[0];
}

std::vector<Cplx> MPSState::statevector() const {
  unsigned N = numQubits();
  assert(N <= 24 && "dense expansion is for small test circuits");
  // Expand left to right: Partial holds, for every assignment of the
  // first I qubits, the row vector over bond I — one pass instead of a
  // per-amplitude walk.
  std::vector<std::vector<Cplx>> Partial = {{Cplx(1.0, 0.0)}};
  for (unsigned I = 0; I < N; ++I) {
    const Site &A = Sites[I];
    std::vector<std::vector<Cplx>> Next(Partial.size() * 2);
    for (size_t P = 0; P < Partial.size(); ++P)
      for (unsigned S = 0; S < 2; ++S) {
        std::vector<Cplx> V(A.Dr, Cplx(0.0, 0.0));
        for (unsigned L = 0; L < A.Dl; ++L) {
          Cplx X = Partial[P][L];
          if (X == Cplx(0.0, 0.0))
            continue;
          const Cplx *Row = &A.T[(size_t(L) * 2 + S) * A.Dr];
          for (unsigned R = 0; R < A.Dr; ++R)
            V[R] += X * Row[R];
        }
        Next[P * 2 + S] = std::move(V);
      }
    Partial = std::move(Next);
  }
  std::vector<Cplx> Out(Partial.size());
  for (size_t I = 0; I < Partial.size(); ++I)
    Out[I] = Partial[I][0];
  return Out;
}
