//===- MPSBackend.h - Matrix-product-state engine -------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tensor-network engine as a SimBackend ("mps"): simulates any gate
/// set — measurement, reset, and classical feed-forward included — on an
/// MPSState (MPSState.h) whose bond dimensions are capped at
/// RunOptions::MpsChi. Memory and time scale as O(n * chi^2) per gate
/// instead of O(2^n), so circuits of hundreds of qubits run exactly as
/// long as their entanglement stays within the cap; past it the engine
/// truncates (optimal rank-chi projection per SVD) and reports the
/// accumulated discarded weight in SimStats::MpsTruncationError.
///
/// Auto-dispatch routes a circuit here only when the cost model's
/// entanglement bound fits the cap (BackendRegistry::selectWithReasons);
/// forcing --backend mps past the bound is allowed and gives approximate
/// amplitudes — the truncation counters say how approximate.
///
/// The determinism contract holds: shot S of any batch runs with
/// deriveShotSeed(Seed, S), the unconditional gate prefix consumes no
/// randomness (so sharing it across shots is invisible), and results are
/// independent of RunOptions::Jobs.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_MPS_MPSBACKEND_H
#define ASDF_SIM_MPS_MPSBACKEND_H

#include "sim/Backend.h"

namespace asdf {

/// The matrix-product-state engine ("mps").
class MPSBackend : public SimBackend {
public:
  /// Bond cap used by the optionless run() entry point; must match the
  /// RunOptions::MpsChi default so runBatch at default options is
  /// bit-identical to per-shot run() calls.
  static constexpr unsigned DefaultChi = 64;

  /// Widest gate support (controls + targets) the engine applies as one
  /// contracted block. Wider gates would cost O(4^m) in the block matrix
  /// alone; supports() refuses them.
  static constexpr unsigned MaxGateSites = 8;

  const char *name() const override { return "mps"; }
  bool supports(const Circuit &C, const CircuitProfile &P) const override;
  ShotResult run(const Circuit &C, uint64_t Seed) const override;
  /// Shot-parallel batch with the shared-prefix amortization: the leading
  /// unconditional gates run once and every shot forks the resulting
  /// tensors (cheap — O(n * chi^2), not O(2^n)).
  std::vector<ShotResult> runBatch(const Circuit &C, unsigned Shots,
                                   uint64_t Seed,
                                   const RunOptions &Opts) const override;
  using SimBackend::runBatch;
};

} // namespace asdf

#endif // ASDF_SIM_MPS_MPSBACKEND_H
