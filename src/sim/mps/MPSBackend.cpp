//===- MPSBackend.cpp - Matrix-product-state engine -----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/mps/MPSBackend.h"

#include "sim/CircuitAnalysis.h"
#include "sim/mps/MPSState.h"

#include <cassert>

using namespace asdf;

namespace {

/// The per-shot RNG stream: same construction as the other engines, with
/// an engine-specific salt so an MPS shot never replays a dense shot's
/// stream for the same (seed, shot) pair.
std::mt19937_64 mpsRng(uint64_t Seed) {
  return std::mt19937_64(Seed * 0x9E3779B97F4A7C15ull + 0xC0FFEE123ull);
}

/// Executes instructions [Start, end) of \p C on \p State, recording
/// measurement bits into \p R and honoring classical conditions.
void execute(const Circuit &C, size_t Start, MPSState &State, ShotResult &R,
             std::mt19937_64 &Rng) {
  for (size_t N = Start; N < C.Instrs.size(); ++N) {
    const CircuitInstr &I = C.Instrs[N];
    if (I.CondBit >= 0 &&
        R.Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
      continue;
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      State.apply(I);
      break;
    case CircuitInstr::Kind::Measure:
      R.Bits[static_cast<unsigned>(I.Cbit)] =
          State.measure(I.Targets[0], Rng);
      break;
    case CircuitInstr::Kind::Reset:
      State.reset(I.Targets[0], Rng);
      break;
    }
  }
}

} // namespace

bool MPSBackend::supports(const Circuit &C, const CircuitProfile &P) const {
  // Any width, any gate set, feed-forward included — but every gate must
  // fit one contracted block. Parametric circuits pass (like the dense
  // engine): runSweep binds them before execution; run()/runBatch assert.
  return P.MaxGateQubits <= MaxGateSites && C.NumQubits >= 1;
}

ShotResult MPSBackend::run(const Circuit &C, uint64_t Seed) const {
  assert(!C.isParametric() && "bind parameters before running");
  MPSState State(C.NumQubits, DefaultChi);
  std::mt19937_64 Rng = mpsRng(Seed);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  execute(C, 0, State, R, Rng);
  return R;
}

std::vector<ShotResult> MPSBackend::runBatch(const Circuit &C, unsigned Shots,
                                             uint64_t Seed,
                                             const RunOptions &Opts) const {
  assert(!C.isParametric() && "bind parameters before running");
  if (Shots == 0)
    return {};

  // The unconditional gate prefix is identical for every shot and
  // consumes no randomness: run it once and fork the tensors per shot.
  size_t Prefix = analyzeCircuit(C).UnconditionalGatePrefix;
  MPSState Shared(C.NumQubits, Opts.MpsChi);
  Shared.setStats(Opts.SimCounters);
  for (size_t N = 0; N < Prefix; ++N)
    Shared.apply(C.Instrs[N]); // Unconditional gates by construction.
  Shared.setStats(nullptr);

  auto runRest = [&](MPSState &State, unsigned S, SimStats *Stats) {
    if (Opts.deadlineExpired())
      throw DeadlineExceeded();
    State.setStats(Stats);
    std::mt19937_64 Rng = mpsRng(deriveShotSeed(Seed, S));
    ShotResult R;
    R.Bits.assign(C.NumBits, false);
    execute(C, Prefix, State, R, Rng);
    return R;
  };

  std::vector<ShotResult> Results(Shots);
  if (Shots == 1) {
    Results[0] = runRest(Shared, 0, Opts.SimCounters);
    return Results;
  }

  unsigned Jobs = resolveJobCount(Opts.Jobs, Shots);
  if (Jobs <= 1) {
    MPSState State = Shared;
    for (unsigned S = 0; S < Shots; ++S) {
      if (S > 0)
        State = Shared;
      Results[S] = runRest(State, S, Opts.SimCounters);
    }
    return Results;
  }

  // SimStats fields are plain, so concurrent shots may not share
  // Opts.SimCounters: each worker accumulates into its own copy, merged
  // after the pool joins.
  std::vector<MPSState> WorkerState(Jobs, Shared);
  std::vector<SimStats> WorkerStats(Jobs);
  parallelShotLoop(Jobs, Shots, [&](unsigned W, unsigned S) {
    WorkerState[W] = Shared;
    Results[S] = runRest(WorkerState[W], S,
                         Opts.SimCounters ? &WorkerStats[W] : nullptr);
  });
  if (Opts.SimCounters)
    for (const SimStats &WS : WorkerStats)
      Opts.SimCounters->merge(WS);
  return Results;
}
