//===- Backend.cpp - Pluggable simulation-backend interface ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Backend.h"

#include "noise/NoiseModel.h"
#include "obs/Trace.h"
#include "sim/CircuitAnalysis.h"
#include "sim/StabilizerBackend.h"
#include "sim/StatevectorBackend.h"
#include "sim/mps/MPSBackend.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <system_error>
#include <thread>

using namespace asdf;

std::string ShotResult::str() const {
  std::string S;
  for (bool B : Bits)
    S.push_back(B ? '1' : '0');
  return S;
}

uint64_t asdf::deriveShotSeed(uint64_t Seed, uint64_t Shot) {
  // splitmix64 finalizer over a golden-ratio stride: adjacent shots land in
  // statistically independent streams, and shot S of run (C, Seed) replays
  // bit-for-bit on every backend and platform.
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ull * (Shot + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

uint64_t asdf::deriveSweepPointSeed(uint64_t Seed, uint64_t Point) {
  // Same finalizer under a distinct salt, so the shot streams of sweep
  // point P never collide with the plain shot streams of the same base
  // seed (deriveShotSeed(Seed, S) vs deriveShotSeed(thisResult, S)).
  uint64_t Z =
      (Seed ^ 0xC2B2AE3D27D4EB4Full) + 0x9E3779B97F4A7C15ull * (Point + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

bool asdf::parseBackendKind(const std::string &Name, BackendKind &Kind) {
  if (Name == "auto") {
    Kind = BackendKind::Auto;
    return true;
  }
  if (Name == "sv" || Name == "statevector") {
    Kind = BackendKind::Statevector;
    return true;
  }
  if (Name == "stab" || Name == "stabilizer") {
    Kind = BackendKind::Stabilizer;
    return true;
  }
  if (Name == "mps") {
    Kind = BackendKind::MPS;
    return true;
  }
  return false;
}

unsigned asdf::resolveJobCount(unsigned RequestedJobs) {
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores == 0)
    Cores = 1;
  unsigned Jobs = RequestedJobs == 0 ? Cores : RequestedJobs;
  // Oversubscription past a few threads per core never helps a CPU-bound
  // sweep, and an absurd request (--jobs 50000, or -1 wrapped unsigned)
  // must not exhaust thread-creation resources.
  unsigned MaxJobs = Cores * 4;
  if (Jobs > MaxJobs)
    Jobs = MaxJobs;
  return Jobs < 1 ? 1 : Jobs;
}

unsigned asdf::resolveJobCount(unsigned RequestedJobs, unsigned Shots) {
  unsigned Jobs = resolveJobCount(RequestedJobs);
  if (Shots < Jobs)
    Jobs = Shots;
  return Jobs < 1 ? 1 : Jobs;
}

namespace {

/// The shared chunked self-scheduling queue behind parallelIndexLoop and
/// parallelShotLoop: workers grab the next chunk of indices as they go
/// idle, so stragglers (shots whose feed-forward takes a longer path,
/// index ranges crossing a slow page) never serialize the run. Chunks keep
/// the atomic off the fast path while staying small enough to balance.
/// Body receives (Worker, Begin, End) with dense worker ids in [0, Jobs).
void parallelChunkLoop(
    unsigned Jobs, uint64_t NumItems, uint64_t Chunk,
    const std::function<void(unsigned, uint64_t, uint64_t)> &Body) {
  if (Chunk < 1)
    Chunk = 1;
  // Clamp the worker count to the actual number of chunks: requesting 8
  // workers for 3 work items must spawn at most 3, never 5 idle threads.
  uint64_t NumChunks = (NumItems + Chunk - 1) / Chunk;
  if (NumChunks < Jobs)
    Jobs = static_cast<unsigned>(NumChunks);
  if (Jobs <= 1 || NumItems <= Chunk) {
    if (NumItems > 0)
      Body(0, 0, NumItems);
    return;
  }
  std::atomic<uint64_t> Next{0};
  std::atomic<bool> Failed{false};
  std::exception_ptr FirstError;
  std::mutex ErrorLock;
  // Workers inherit the spawning request's trace id so their sim.worker
  // spans correlate with the rest of the request in the exported trace.
  const uint64_t ParentTrace = obs::currentTraceId();
  auto Worker = [&](unsigned W) {
    obs::TraceContext TC(ParentTrace);
    obs::Span Sp("sim.worker", "sim");
    try {
      while (!Failed.load(std::memory_order_relaxed)) {
        uint64_t Begin = Next.fetch_add(Chunk, std::memory_order_relaxed);
        if (Begin >= NumItems)
          return;
        uint64_t End = Begin + Chunk < NumItems ? Begin + Chunk : NumItems;
        Body(W, Begin, End);
      }
    } catch (...) {
      // Park the first exception (e.g. a state fork's bad_alloc) and stop
      // the queue; the caller sees it rethrown, as the serial loop would.
      std::lock_guard<std::mutex> Guard(ErrorLock);
      if (!FirstError)
        FirstError = std::current_exception();
      Failed.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Jobs - 1);
  for (unsigned T = 1; T < Jobs; ++T) {
    try {
      Threads.emplace_back(Worker, T);
    } catch (const std::system_error &) {
      break; // Thread resources exhausted: run with what we got.
    }
  }
  Worker(0); // This thread is worker 0.
  for (std::thread &T : Threads)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

} // namespace

void asdf::parallelIndexLoop(
    unsigned Jobs, uint64_t NumItems, uint64_t MinChunk,
    const std::function<void(uint64_t, uint64_t)> &Body) {
  if (MinChunk < 1)
    MinChunk = 1;
  // Aim for ~8 chunks per worker for balance, but never below the
  // caller's floor: a tiny chunk of a memory-bound sweep costs more in
  // queue traffic than it recovers in balance.
  uint64_t Chunk = Jobs > 1 ? NumItems / (uint64_t(Jobs) * 8) : NumItems;
  if (Chunk < MinChunk)
    Chunk = MinChunk;
  parallelChunkLoop(Jobs, NumItems, Chunk,
                    [&](unsigned, uint64_t Begin, uint64_t End) {
                      Body(Begin, End);
                    });
}

void asdf::parallelShotLoop(
    unsigned Jobs, unsigned Shots,
    const std::function<void(unsigned, unsigned)> &Body) {
  uint64_t Chunk = Jobs > 1 ? Shots / (uint64_t(Jobs) * 8) : Shots;
  parallelChunkLoop(Jobs, Shots, Chunk,
                    [&](unsigned W, uint64_t Begin, uint64_t End) {
                      for (uint64_t S = Begin; S < End; ++S)
                        Body(W, static_cast<unsigned>(S));
                    });
}

void asdf::parallelShotLoop(unsigned Jobs, unsigned Shots,
                            const std::function<void(unsigned)> &Body) {
  parallelShotLoop(Jobs, Shots,
                   [&](unsigned, unsigned S) { Body(S); });
}

ShotResult SimBackend::runNoisy(const Circuit &C, uint64_t Seed,
                                const NoiseModel &, NoiseStats *) const {
  return run(C, Seed);
}

bool SimBackend::supportsNoise(const NoiseModel &) const { return false; }

std::vector<ShotResult> SimBackend::runBatch(const Circuit &C, unsigned Shots,
                                             uint64_t Seed,
                                             const RunOptions &Opts) const {
  const NoiseModel *Noise =
      Opts.Noise && !Opts.Noise->empty() ? Opts.Noise : nullptr;
  std::vector<ShotResult> Results(Shots);
  parallelShotLoop(resolveJobCount(Opts.Jobs, Shots), Shots, [&](unsigned S) {
    if (Opts.deadlineExpired())
      throw DeadlineExceeded();
    Results[S] = Noise ? runNoisy(C, deriveShotSeed(Seed, S), *Noise,
                                  Opts.NoiseCounters)
                       : run(C, deriveShotSeed(Seed, S));
  });
  return Results;
}

std::vector<std::vector<ShotResult>>
SimBackend::runSweep(const Circuit &C,
                     const std::vector<std::vector<double>> &Points,
                     unsigned Shots, uint64_t Seed,
                     const RunOptions &Opts) const {
  // The reference semantics: bind, then run, per point. Overrides must
  // reproduce this bit-for-bit.
  std::vector<std::vector<ShotResult>> Results(Points.size());
  for (size_t P = 0; P < Points.size(); ++P) {
    if (Opts.deadlineExpired())
      throw DeadlineExceeded();
    Circuit Bound = bindCircuit(C, Points[P]);
    Results[P] = runBatch(Bound, Shots, deriveSweepPointSeed(Seed, P), Opts);
  }
  return Results;
}

std::map<std::string, unsigned>
SimBackend::runShots(const Circuit &C, unsigned Shots, uint64_t Seed,
                     const RunOptions &Opts) const {
  std::map<std::string, unsigned> Counts;
  for (const ShotResult &R : runBatch(C, Shots, Seed, Opts))
    ++Counts[R.str()];
  return Counts;
}

BackendRegistry::BackendRegistry() {
  registerBackend(std::make_unique<StatevectorBackend>());
  registerBackend(std::make_unique<StabilizerBackend>());
  registerBackend(std::make_unique<MPSBackend>());
}

BackendRegistry &BackendRegistry::instance() {
  static BackendRegistry Registry;
  return Registry;
}

void BackendRegistry::registerBackend(std::unique_ptr<SimBackend> B) {
  for (std::unique_ptr<SimBackend> &Existing : Backends)
    if (std::string(Existing->name()) == B->name()) {
      Existing = std::move(B);
      return;
    }
  Backends.push_back(std::move(B));
}

SimBackend *BackendRegistry::lookup(const std::string &Name) const {
  for (const std::unique_ptr<SimBackend> &B : Backends)
    if (Name == B->name())
      return B.get();
  return nullptr;
}

std::string BackendSelection::describe() const {
  std::string S = "backend: " + std::string(Chosen ? Chosen->name() : "none");
  if (!Supported)
    S += " (cannot run this circuit)";
  S += "\nreason: " + Reason + "\ncost model: " + CostSummary +
       "\ncandidates:\n";
  for (const BackendVerdict &V : Verdicts)
    S += "  " + V.Name + ": " + (V.Eligible ? "eligible" : "rejected") +
         ": " + V.Why + "\n";
  return S;
}

std::string BackendSelection::rejectionSummary() const {
  std::string S;
  for (const BackendVerdict &V : Verdicts) {
    if (!S.empty())
      S += "; ";
    S += V.Name + ": " +
         (V.Eligible ? "eligible: " + V.Why : V.Why);
  }
  return S;
}

SimBackend &BackendRegistry::select(const Circuit &C, BackendKind Kind,
                                    const CircuitProfile *Profile,
                                    const NoiseModel *Noise) const {
  return *selectWithReasons(C, Kind, RunOptions(), Profile, Noise).Chosen;
}

BackendSelection
BackendRegistry::selectWithReasons(const Circuit &C, BackendKind Kind,
                                   const RunOptions &Opts,
                                   const CircuitProfile *Profile,
                                   const NoiseModel *Noise) const {
  assert(!Backends.empty() && "built-in backends missing");
  CircuitProfile P = Profile ? *Profile : analyzeCircuit(C);
  CostModel Cost = estimateCost(C, &P);
  if (Noise && Noise->empty())
    Noise = nullptr;
  // The bond cap the entanglement estimate is measured against: the run's
  // chi, or the default chi when the run asked for unlimited (chi 0 always
  // "fits", but auto-dispatch must not volunteer an exponential run).
  unsigned ChiBar = Opts.MpsChi ? Opts.MpsChi : RunOptions().MpsChi;

  BackendSelection Sel;
  Sel.CostSummary = Cost.summary();

  // One verdict per registered backend: can auto-dispatch hand it this
  // circuit, and why (not). Built-in names get precise reasons; test- or
  // plugin-registered engines get the generic supports() verdict.
  for (const std::unique_ptr<SimBackend> &B : Backends) {
    BackendVerdict V;
    V.Name = B->name();
    bool NoiseOk = !Noise || B->supportsNoise(*Noise);
    if (V.Name == "sv") {
      unsigned Cap = StatevectorBackend::maxQubits(Opts);
      V.Eligible = C.NumQubits <= Cap && NoiseOk;
      if (!NoiseOk)
        V.Why = "cannot execute the noise model";
      else if (V.Eligible)
        V.Why = "fits the dense cap (" + std::to_string(C.NumQubits) +
                " <= " + std::to_string(Cap) + " qubits)";
      else
        V.Why = std::to_string(C.NumQubits) +
                " qubits exceed the dense cap (" + std::to_string(Cap) +
                (Opts.MaxStateQubits ? ", set by options)"
                                     : ", derived from available memory)");
    } else if (V.Name == "stab") {
      bool Ok = B->supports(C, P);
      V.Eligible = Ok && NoiseOk;
      if (!Ok)
        V.Why = P.CliffordOnly
                    ? "circuit is outside the tableau gate set"
                    : "circuit is not Clifford-only (" +
                          std::to_string(Cost.NonCliffordGates) +
                          " non-Clifford gate(s))";
      else if (!NoiseOk)
        V.Why = "noise model has non-Pauli channels (needs dense "
                "trajectories)";
      else
        V.Why = "Clifford-only circuit: polynomial tableau updates at any "
                "width";
    } else if (V.Name == "mps") {
      bool Ok = B->supports(C, P);
      bool BondOk = Cost.estimatedMaxBond() <= ChiBar;
      V.Eligible = Ok && BondOk && !Noise;
      if (!Ok)
        V.Why = "gate support exceeds " +
                std::to_string(MPSBackend::MaxGateSites) +
                " sites (widest gate touches " +
                std::to_string(P.MaxGateQubits) + ")";
      else if (Noise)
        V.Why = "noise models need dense trajectories or Pauli frames";
      else if (!BondOk)
        V.Why = "estimated max bond " +
                (Cost.EstimatedLogBond >= 63
                     ? ">= 2^63"
                     : std::to_string(Cost.estimatedMaxBond())) +
                " exceeds chi " + std::to_string(ChiBar) +
                " (force with --backend mps for approximate simulation)";
      else
        V.Why = "estimated max bond " +
                std::to_string(Cost.estimatedMaxBond()) + " fits chi " +
                std::to_string(ChiBar);
    } else {
      V.Eligible = B->supports(C, P) && NoiseOk;
      V.Why = V.Eligible ? "supports the circuit"
                         : "does not support the circuit";
    }
    Sel.Verdicts.push_back(std::move(V));
  }

  auto VerdictFor = [&](const char *Name) -> const BackendVerdict * {
    for (const BackendVerdict &V : Sel.Verdicts)
      if (V.Name == Name)
        return &V;
    return nullptr;
  };

  // Forced kinds resolve directly; Supported reflects executability, not
  // auto-eligibility — a forced MPS run past the entanglement estimate
  // still executes (it truncates to chi), a forced dense run past the cap
  // does not (the state cannot be allocated).
  auto Forced = [&](const char *Name) -> BackendSelection & {
    SimBackend *B = lookup(Name);
    assert(B && "built-in backend missing");
    Sel.Chosen = B;
    const BackendVerdict *V = VerdictFor(Name);
    Sel.Reason = "forced by --backend " + std::string(Name);
    Sel.Supported = V && V->Eligible;
    if (std::string(Name) == "mps" && V && !V->Eligible) {
      // Re-derive executability without the exactness conditions: past
      // the entanglement estimate the engine still runs (truncating to
      // chi) — but a noise model would be silently ignored, so that
      // stays unsupported.
      bool CanRun = B->supports(C, P) && !Noise;
      Sel.Supported = CanRun;
      if (CanRun)
        Sel.Reason += "; " + V->Why;
    }
    return Sel;
  };
  switch (Kind) {
  case BackendKind::Statevector:
    return Forced("sv");
  case BackendKind::Stabilizer:
    return Forced("stab");
  case BackendKind::MPS:
    return Forced("mps");
  case BackendKind::Auto:
    break;
  }

  // Auto: polynomial tableau first, the dense engine for anything that
  // fits in memory, the tensor network for wide-but-lowly-entangled
  // circuits — in that order, each only when exact.
  for (const char *Name : {"stab", "sv", "mps"}) {
    const BackendVerdict *V = VerdictFor(Name);
    if (V && V->Eligible) {
      Sel.Chosen = lookup(Name);
      Sel.Supported = true;
      Sel.Reason = V->Why;
      return Sel;
    }
  }
  // Plugin backends (tests register these) are considered after the
  // built-ins, in registration order.
  for (const BackendVerdict &V : Sel.Verdicts)
    if (V.Eligible) {
      Sel.Chosen = lookup(V.Name);
      Sel.Supported = true;
      Sel.Reason = V.Why;
      return Sel;
    }
  Sel.Chosen = Backends.front().get();
  Sel.Supported = false;
  Sel.Reason = "no registered backend supports this circuit";
  return Sel;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> Names;
  for (const std::unique_ptr<SimBackend> &B : Backends)
    Names.push_back(B->name());
  return Names;
}
