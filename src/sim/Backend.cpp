//===- Backend.cpp - Pluggable simulation-backend interface ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Backend.h"

#include "sim/CircuitAnalysis.h"
#include "sim/StabilizerBackend.h"
#include "sim/StatevectorBackend.h"

#include <cassert>

using namespace asdf;

std::string ShotResult::str() const {
  std::string S;
  for (bool B : Bits)
    S.push_back(B ? '1' : '0');
  return S;
}

uint64_t asdf::deriveShotSeed(uint64_t Seed, uint64_t Shot) {
  // splitmix64 finalizer over a golden-ratio stride: adjacent shots land in
  // statistically independent streams, and shot S of run (C, Seed) replays
  // bit-for-bit on every backend and platform.
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ull * (Shot + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

bool asdf::parseBackendKind(const std::string &Name, BackendKind &Kind) {
  if (Name == "auto") {
    Kind = BackendKind::Auto;
    return true;
  }
  if (Name == "sv" || Name == "statevector") {
    Kind = BackendKind::Statevector;
    return true;
  }
  if (Name == "stab" || Name == "stabilizer") {
    Kind = BackendKind::Stabilizer;
    return true;
  }
  return false;
}

std::vector<ShotResult> SimBackend::runBatch(const Circuit &C,
                                             unsigned Shots,
                                             uint64_t Seed) const {
  std::vector<ShotResult> Results;
  Results.reserve(Shots);
  for (unsigned S = 0; S < Shots; ++S)
    Results.push_back(run(C, deriveShotSeed(Seed, S)));
  return Results;
}

std::map<std::string, unsigned>
SimBackend::runShots(const Circuit &C, unsigned Shots, uint64_t Seed) const {
  std::map<std::string, unsigned> Counts;
  for (const ShotResult &R : runBatch(C, Shots, Seed))
    ++Counts[R.str()];
  return Counts;
}

BackendRegistry::BackendRegistry() {
  registerBackend(std::make_unique<StatevectorBackend>());
  registerBackend(std::make_unique<StabilizerBackend>());
}

BackendRegistry &BackendRegistry::instance() {
  static BackendRegistry Registry;
  return Registry;
}

void BackendRegistry::registerBackend(std::unique_ptr<SimBackend> B) {
  for (std::unique_ptr<SimBackend> &Existing : Backends)
    if (std::string(Existing->name()) == B->name()) {
      Existing = std::move(B);
      return;
    }
  Backends.push_back(std::move(B));
}

SimBackend *BackendRegistry::lookup(const std::string &Name) const {
  for (const std::unique_ptr<SimBackend> &B : Backends)
    if (Name == B->name())
      return B.get();
  return nullptr;
}

SimBackend &BackendRegistry::select(const Circuit &C, BackendKind Kind,
                                    const CircuitProfile *Profile) const {
  SimBackend *Sv = lookup("sv");
  SimBackend *Stab = lookup("stab");
  assert(Sv && Stab && "built-in backends missing");
  switch (Kind) {
  case BackendKind::Statevector:
    return *Sv;
  case BackendKind::Stabilizer:
    return *Stab;
  case BackendKind::Auto:
    break;
  }
  CircuitProfile P = Profile ? *Profile : analyzeCircuit(C);
  // Tableau updates are polynomial where dense amplitudes are exponential:
  // take the stabilizer engine whenever it is exact for this circuit.
  if (Stab->supports(C, P))
    return *Stab;
  return *Sv;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> Names;
  for (const std::unique_ptr<SimBackend> &B : Backends)
    Names.push_back(B->name());
  return Names;
}
