//===- Simulator.h - Circuit execution facade ------------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The convenience entry points for executing flat circuits — the stand-in
/// for qir-runner (§7) — over the pluggable backend subsystem (Backend.h).
/// `simulate` and `runShots` auto-dispatch by default: Clifford circuits run
/// on the CHP stabilizer tableau (thousands of qubits), everything else on
/// the dense statevector engine. Tests and examples that poke amplitudes
/// directly keep using `StateVector` (StatevectorBackend.h, re-exported
/// here).
///
/// Convention: qubit 0 is the leftmost qubit and occupies the most
/// significant bit of a basis-state index, matching the eigenbit convention
/// of the basis library.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_SIMULATOR_H
#define ASDF_SIM_SIMULATOR_H

#include "sim/Backend.h"
#include "sim/StatevectorBackend.h"

#include <complex>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace asdf {

/// Executes \p C once from |0...0>, honoring measurements, resets, and
/// classical conditions, on the backend selected by \p Backend.
ShotResult simulate(const Circuit &C, uint64_t Seed = 0,
                    BackendKind Backend = BackendKind::Auto);

/// Executes \p C \p Shots times, returning outcome frequencies keyed by the
/// classical bit string (bit 0 first). Each shot's seed derives from
/// (\p Seed, shot index) via deriveShotSeed, so shots are independent yet
/// the whole run replays deterministically — including under the
/// shot-parallel, gate-fused execution plan selected by \p Opts.
std::map<std::string, unsigned>
runShots(const Circuit &C, unsigned Shots, uint64_t Seed = 0,
         BackendKind Backend = BackendKind::Auto,
         const RunOptions &Opts = RunOptions());

/// Renders one shot's classical outcome as the entry function's returned
/// bit string: one character per OutputBits entry, with the constant
/// pseudo-bits (-2 = literal '1', -3 = literal '0') folded in. This is
/// exactly one stdout line of `asdfc --emit run`, and the daemon's run
/// responses use the same function — the bit-for-bit comparability of the
/// two paths is part of the service's determinism contract.
std::string formatShotBits(const Circuit &C, const ShotResult &Shot);

/// Total-variation distance between two outcome-frequency maps (as
/// returned by runShots), each over \p Shots samples: half the L1
/// distance of the empirical distributions, in [0, 1]. The common currency
/// of the cross-engine distribution parity checks in tests and benches.
double tvDistance(const std::map<std::string, unsigned> &A,
                  const std::map<std::string, unsigned> &B, unsigned Shots);

/// Computes the full unitary of a measurement-free circuit by simulating
/// every basis input. Requires C.NumQubits <= 10. Column k is U|k>.
std::vector<std::vector<Amplitude>> circuitUnitary(const Circuit &C);

/// True if two unitaries agree up to a global phase.
bool unitariesEquivalent(const std::vector<std::vector<Amplitude>> &A,
                         const std::vector<std::vector<Amplitude>> &B,
                         double Tol = 1e-9);

} // namespace asdf

#endif // ASDF_SIM_SIMULATOR_H
