//===- Simulator.h - Dense state-vector simulator --------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense state-vector simulator executing flat circuits — the stand-in
/// for qir-runner (§7). Used by tests to verify that synthesized circuits
/// implement their specified semantics (basis translations, oracles,
/// adjoints, predication) and by the examples to run algorithms end to end.
///
/// Convention: qubit 0 is the leftmost qubit and occupies the most
/// significant bit of a basis-state index, matching the eigenbit convention
/// of the basis library.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SIM_SIMULATOR_H
#define ASDF_SIM_SIMULATOR_H

#include "qcirc/Circuit.h"

#include <complex>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace asdf {

using Amplitude = std::complex<double>;

/// A dense quantum state over a fixed number of qubits.
class StateVector {
public:
  explicit StateVector(unsigned NumQubits);

  unsigned numQubits() const { return NumQubits; }
  const std::vector<Amplitude> &amplitudes() const { return Amp; }
  std::vector<Amplitude> &amplitudes() { return Amp; }

  /// Sets the state to the computational basis state |index>.
  void setBasisState(uint64_t Index);

  /// Applies one gate (with controls).
  void apply(GateKind G, const std::vector<unsigned> &Controls,
             const std::vector<unsigned> &Targets, double Param);

  /// Measures qubit \p Q; collapses the state. \p Rng drives sampling.
  bool measure(unsigned Q, std::mt19937_64 &Rng);

  /// Resets qubit \p Q to |0> (measure and correct).
  void reset(unsigned Q, std::mt19937_64 &Rng);

  /// Probability that qubit \p Q reads 1.
  double probOne(unsigned Q) const;

  /// Inner-product magnitude |<other|this>|.
  double overlap(const StateVector &Other) const;

private:
  unsigned NumQubits;
  std::vector<Amplitude> Amp;

  uint64_t qubitBit(unsigned Q) const {
    return uint64_t(1) << (NumQubits - 1 - Q);
  }
};

/// The classical outcome of one circuit execution.
struct ShotResult {
  std::vector<bool> Bits; ///< Indexed by classical bit number.

  std::string str() const;
};

/// Executes \p C once from |0...0>, honoring measurements, resets, and
/// classical conditions.
ShotResult simulate(const Circuit &C, uint64_t Seed = 0);

/// Executes \p C \p Shots times, returning outcome frequencies keyed by the
/// classical bit string (bit 0 first).
std::map<std::string, unsigned> runShots(const Circuit &C, unsigned Shots,
                                         uint64_t Seed = 0);

/// Computes the full unitary of a measurement-free circuit by simulating
/// every basis input. Requires C.NumQubits <= 10. Column k is U|k>.
std::vector<std::vector<Amplitude>> circuitUnitary(const Circuit &C);

/// True if two unitaries agree up to a global phase.
bool unitariesEquivalent(const std::vector<std::vector<Amplitude>> &A,
                         const std::vector<std::vector<Amplitude>> &B,
                         double Tol = 1e-9);

} // namespace asdf

#endif // ASDF_SIM_SIMULATOR_H
