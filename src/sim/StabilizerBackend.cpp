//===- StabilizerBackend.cpp - CHP tableau engine -------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/StabilizerBackend.h"

#include "noise/NoiseModel.h"
#include "noise/PauliFrame.h"
#include "sim/CircuitAnalysis.h"

#include <cassert>

using namespace asdf;

Tableau::Tableau(unsigned NumQubits)
    : N(NumQubits), Words((NumQubits + 63) / 64) {
  if (Words == 0)
    Words = 1;
  size_t Rows = 2 * size_t(N);
  X.assign(Rows * Words, 0);
  Z.assign(Rows * Words, 0);
  R.assign(Rows, 0);
  // |0...0> is stabilized by {Z_i}; the matching destabilizers are {X_i}.
  for (unsigned I = 0; I < N; ++I) {
    xRow(I)[I >> 6] |= uint64_t(1) << (I & 63);
    zRow(N + I)[I >> 6] |= uint64_t(1) << (I & 63);
  }
}

//===----------------------------------------------------------------------===//
// Row algebra
//===----------------------------------------------------------------------===//

namespace {

/// Power-of-i exponent (signed) of the qubit-wise sign corrections in the
/// Pauli product rowH * rowI, computed word-parallel. Encoding per qubit:
/// X=(x=1,z=0), Y=(1,1), Z=(0,1). The cyclic products XY=iZ, YZ=iX, ZX=iY
/// contribute +1; their transposes contribute -1.
int productPhase(const uint64_t *Xh, const uint64_t *Zh, const uint64_t *Xi,
                 const uint64_t *Zi, unsigned Words) {
  int E = 0;
  for (unsigned W = 0; W < Words; ++W) {
    uint64_t Xa = Xh[W], Za = Zh[W], Xb = Xi[W], Zb = Zi[W];
    uint64_t Plus = (Xa & ~Za & Xb & Zb)    // X * Y = iZ
                    | (Xa & Za & ~Xb & Zb)  // Y * Z = iX
                    | (~Xa & Za & Xb & ~Zb); // Z * X = iY
    uint64_t Minus = (Xa & ~Za & ~Xb & Zb)  // X * Z = -iY
                     | (Xa & Za & Xb & ~Zb) // Y * X = -iZ
                     | (~Xa & Za & Xb & Zb); // Z * Y = -iX
    E += __builtin_popcountll(Plus) - __builtin_popcountll(Minus);
  }
  return E;
}

} // namespace

void Tableau::rowMult(unsigned H, unsigned I) {
  int Total =
      productPhase(xRow(H), zRow(H), xRow(I), zRow(I), Words) + 2 * R[H] +
      2 * R[I];
  Total %= 4;
  if (Total < 0)
    Total += 4;
  // Stabilizer-row products always land on 0 or 2 (commuting rows).
  // Destabilizer rows may anticommute with the multiplier (odd Total);
  // their signs are never observed, so rounding down is safe (AG §III).
  R[H] = Total >> 1;
  uint64_t *XhW = xRow(H), *ZhW = zRow(H);
  const uint64_t *XiW = xRow(I), *ZiW = zRow(I);
  for (unsigned W = 0; W < Words; ++W) {
    XhW[W] ^= XiW[W];
    ZhW[W] ^= ZiW[W];
  }
}

void Tableau::rowCopy(unsigned H, unsigned I) {
  std::copy(xRow(I), xRow(I) + Words, xRow(H));
  std::copy(zRow(I), zRow(I) + Words, zRow(H));
  R[H] = R[I];
}

void Tableau::rowSetZ(unsigned H, unsigned Q) {
  std::fill(xRow(H), xRow(H) + Words, 0);
  std::fill(zRow(H), zRow(H) + Words, 0);
  zRow(H)[Q >> 6] |= uint64_t(1) << (Q & 63);
  R[H] = 0;
}

//===----------------------------------------------------------------------===//
// Clifford gates (column updates over all generator rows)
//===----------------------------------------------------------------------===//

void Tableau::h(unsigned Q) {
  unsigned W = Q >> 6, Sh = Q & 63;
  uint64_t B = uint64_t(1) << Sh;
  for (unsigned I = 0; I < 2 * N; ++I) {
    uint64_t &Xw = xRow(I)[W], &Zw = zRow(I)[W];
    R[I] ^= ((Xw & Zw) >> Sh) & 1;
    uint64_t Xb = Xw & B, Zb = Zw & B;
    Xw = (Xw & ~B) | Zb;
    Zw = (Zw & ~B) | Xb;
  }
}

void Tableau::s(unsigned Q) {
  unsigned W = Q >> 6, Sh = Q & 63;
  uint64_t B = uint64_t(1) << Sh;
  for (unsigned I = 0; I < 2 * N; ++I) {
    uint64_t &Xw = xRow(I)[W], &Zw = zRow(I)[W];
    R[I] ^= ((Xw & Zw) >> Sh) & 1;
    Zw ^= Xw & B;
  }
}

void Tableau::cx(unsigned Ctl, unsigned Tgt) {
  if (Ctl == Tgt)
    return; // Degenerate: matches the dense engine's no-op on ill-formed
            // control == target input.
  unsigned Wc = Ctl >> 6, Sc = Ctl & 63, Wt = Tgt >> 6, St = Tgt & 63;
  for (unsigned I = 0; I < 2 * N; ++I) {
    uint64_t Xc = (xRow(I)[Wc] >> Sc) & 1, Zc = (zRow(I)[Wc] >> Sc) & 1;
    uint64_t Xt = (xRow(I)[Wt] >> St) & 1, Zt = (zRow(I)[Wt] >> St) & 1;
    R[I] ^= Xc & Zt & (Xt ^ Zc ^ 1);
    xRow(I)[Wt] ^= Xc << St;
    zRow(I)[Wc] ^= Zt << Sc;
  }
}

void Tableau::sdg(unsigned Q) {
  // S-dagger == Z * S as diagonal operators.
  s(Q);
  z(Q);
}

void Tableau::x(unsigned Q) {
  // Conjugation by X flips the sign of rows containing Z or Y on Q.
  unsigned W = Q >> 6, Sh = Q & 63;
  for (unsigned I = 0; I < 2 * N; ++I)
    R[I] ^= (zRow(I)[W] >> Sh) & 1;
}

void Tableau::z(unsigned Q) {
  unsigned W = Q >> 6, Sh = Q & 63;
  for (unsigned I = 0; I < 2 * N; ++I)
    R[I] ^= (xRow(I)[W] >> Sh) & 1;
}

void Tableau::y(unsigned Q) {
  // Y flips the sign of rows with exactly one of X/Z on Q (Y = iXZ commutes
  // with itself).
  unsigned W = Q >> 6, Sh = Q & 63;
  for (unsigned I = 0; I < 2 * N; ++I)
    R[I] ^= ((xRow(I)[W] ^ zRow(I)[W]) >> Sh) & 1;
}

void Tableau::cy(unsigned Ctl, unsigned Tgt) {
  // CY = S_t CX S_t^dagger.
  sdg(Tgt);
  cx(Ctl, Tgt);
  s(Tgt);
}

void Tableau::cz(unsigned A, unsigned B) {
  h(B);
  cx(A, B);
  h(B);
}

void Tableau::swapQubits(unsigned A, unsigned B) {
  if (A == B)
    return;
  cx(A, B);
  cx(B, A);
  cx(A, B);
}

//===----------------------------------------------------------------------===//
// Measurement
//===----------------------------------------------------------------------===//

bool Tableau::isDeterministic(unsigned Q, bool &Outcome) const {
  for (unsigned P = N; P < 2 * N; ++P)
    if (xBit(P, Q))
      return false;
  // Z_Q commutes with every stabilizer, so it is (up to sign) a product of
  // stabilizer generators — exactly those whose destabilizer partner
  // anticommutes with Z_Q. Accumulate the product's sign in local scratch.
  std::vector<uint64_t> Xs(Words, 0), Zs(Words, 0);
  int Sign = 0;
  for (unsigned I = 0; I < N; ++I) {
    if (!xBit(I, Q))
      continue;
    int Total = productPhase(Xs.data(), Zs.data(), xRow(N + I), zRow(N + I),
                             Words) +
                2 * Sign + 2 * R[N + I];
    Total %= 4;
    if (Total < 0)
      Total += 4;
    Sign = Total == 2;
    for (unsigned W = 0; W < Words; ++W) {
      Xs[W] ^= xRow(N + I)[W];
      Zs[W] ^= zRow(N + I)[W];
    }
  }
  Outcome = Sign;
  return true;
}

bool Tableau::measure(unsigned Q, std::mt19937_64 &Rng, MeasureRecord *Rec) {
  bool Outcome;
  if (isDeterministic(Q, Outcome)) {
    if (Rec)
      Rec->Random = false;
    return Outcome;
  }

  // Random outcome: some stabilizer generator P anticommutes with Z_Q.
  // Every other generator anticommuting with Z_Q is repaired by
  // multiplying in row P; row P's destabilizer becomes the old row P, and
  // row P becomes +-Z_Q.
  unsigned P = N;
  while (!xBit(P, Q))
    ++P;
  if (Rec) {
    // Row P is the Pauli mapping one collapse branch's post-measurement
    // state onto the other's: exactly what the frame sampler replays.
    Rec->Random = true;
    Rec->AntiX.assign(xRow(P), xRow(P) + Words);
    Rec->AntiZ.assign(zRow(P), zRow(P) + Words);
  }
  for (unsigned I = 0; I < 2 * N; ++I)
    if (I != P && xBit(I, Q))
      rowMult(I, P);
  rowCopy(P - N, P);
  Outcome = Rng() & 1;
  rowSetZ(P, Q);
  R[P] = Outcome;
  return Outcome;
}

void Tableau::reset(unsigned Q, std::mt19937_64 &Rng) {
  if (measure(Q, Rng))
    x(Q);
}

//===----------------------------------------------------------------------===//
// Backend
//===----------------------------------------------------------------------===//

bool StabilizerBackend::supports(const Circuit &,
                                 const CircuitProfile &P) const {
  return P.CliffordOnly;
}

void asdf::applyCliffordInstr(Tableau &T, const CircuitInstr &I) {
  unsigned Tgt = I.Targets.empty() ? 0 : I.Targets[0];
  bool Controlled = !I.Controls.empty();
  unsigned Ctl = Controlled ? I.Controls[0] : 0;
  unsigned Quarters = 0;
  switch (I.Gate) {
  case GateKind::X:
    Controlled ? T.cx(Ctl, Tgt) : T.x(Tgt);
    return;
  case GateKind::Y:
    Controlled ? T.cy(Ctl, Tgt) : T.y(Tgt);
    return;
  case GateKind::Z:
    Controlled ? T.cz(Ctl, Tgt) : T.z(Tgt);
    return;
  case GateKind::H:
    T.h(Tgt);
    return;
  case GateKind::S:
    T.s(Tgt);
    return;
  case GateKind::Sdg:
    T.sdg(Tgt);
    return;
  case GateKind::Swap:
    T.swapQubits(I.Targets[0], I.Targets[1]);
    return;
  case GateKind::P:
  case GateKind::RZ: {
    // Quarter-turn phases map onto I/S/Z/Sdg (RZ differs from P only by a
    // global phase, unobservable uncontrolled).
    bool Ok = quarterTurns(I.Param, Quarters);
    assert(Ok && "non-Clifford phase reached the tableau engine");
    (void)Ok;
    switch (Quarters) {
    case 0:
      return;
    case 1:
      T.s(Tgt);
      return;
    case 2:
      Controlled ? T.cz(Ctl, Tgt) : T.z(Tgt);
      return;
    default:
      T.sdg(Tgt);
      return;
    }
  }
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::RX:
  case GateKind::RY:
    break;
  }
  assert(false && "non-Clifford gate reached the tableau engine");
}

namespace {

/// One tableau execution of \p C, optionally a noisy one: with \p Plan,
/// every executed gate is followed by sampled Paulis (O(n) sign updates
/// each) and every measurement by readout error on the recorded bit.
/// Shared by run() and the Monte-Carlo noisy path so semantics can never
/// diverge.
ShotResult runTableau(const Circuit &C, uint64_t Seed,
                      const PauliNoisePlan *Plan, const NoiseModel *Noise,
                      NoiseStats *Stats) {
  Tableau T(C.NumQubits);
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ull + 0xDEADBEEF);
  ShotResult R;
  R.Bits.assign(C.NumBits, false);
  for (size_t Idx = 0; Idx < C.Instrs.size(); ++Idx) {
    const CircuitInstr &I = C.Instrs[Idx];
    if (I.CondBit >= 0 &&
        R.Bits[static_cast<unsigned>(I.CondBit)] != I.CondVal)
      continue;
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      applyCliffordInstr(T, I);
      if (Plan)
        for (const PauliNoiseOp &Op : Plan->PerInstr[Idx]) {
          unsigned P = samplePauli(Op, Rng);
          if (P == 1)
            T.x(Op.Qubit);
          else if (P == 2)
            T.y(Op.Qubit);
          else if (P == 3)
            T.z(Op.Qubit);
          if (Stats) {
            Stats->ChannelApps.fetch_add(1, std::memory_order_relaxed);
            if (P != 0)
              Stats->ErrorBranches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      break;
    case CircuitInstr::Kind::Measure: {
      bool Outcome = T.measure(I.Targets[0], Rng);
      if (Noise)
        Outcome = applyReadoutError(Noise->readoutFor(I.Targets[0]), Outcome,
                                    Rng, Stats);
      R.Bits[static_cast<unsigned>(I.Cbit)] = Outcome;
      break;
    }
    case CircuitInstr::Kind::Reset:
      T.reset(I.Targets[0], Rng);
      break;
    }
  }
  return R;
}

} // namespace

ShotResult StabilizerBackend::run(const Circuit &C, uint64_t Seed) const {
  assert(!C.isParametric() && "bind parameters before running");
  return runTableau(C, Seed, nullptr, nullptr, nullptr);
}

bool StabilizerBackend::supportsNoise(const NoiseModel &Noise) const {
  return Noise.isPauliOnly();
}

ShotResult StabilizerBackend::runNoisy(const Circuit &C, uint64_t Seed,
                                       const NoiseModel &Noise,
                                       NoiseStats *Stats) const {
  assert(Noise.isPauliOnly() &&
         "non-Pauli noise model reached the tableau engine");
  PauliNoisePlan Plan = planPauliNoise(Noise, C);
  return runTableau(C, Seed, &Plan, &Noise, Stats);
}

std::vector<ShotResult>
StabilizerBackend::runBatch(const Circuit &C, unsigned Shots, uint64_t Seed,
                            const RunOptions &Opts) const {
  const NoiseModel *Noise =
      Opts.Noise && !Opts.Noise->empty() ? Opts.Noise : nullptr;
  if (!Noise)
    return SimBackend::runBatch(C, Shots, Seed, Opts);
  assert(Noise->isPauliOnly() &&
         "non-Pauli noise model reached the tableau engine");

  PauliNoisePlan Plan = planPauliNoise(*Noise, C);
  std::vector<ShotResult> Results(Shots);
  CircuitProfile P = analyzeCircuit(C);
  if (!P.HasFeedForward) {
    // Pauli-frame fast path: one ideal tableau reference, then O(gates)
    // bit operations per shot. Shot S still samples everything from the
    // deriveShotSeed(Seed, S) stream, so results are jobs-invariant.
    FrameReference Ref(C, Seed);
    parallelShotLoop(resolveJobCount(Opts.Jobs, Shots), Shots,
                     [&](unsigned S) {
                       Results[S] = Ref.sampleShot(*Noise, Plan,
                                                   deriveShotSeed(Seed, S),
                                                   Opts.NoiseCounters);
                     });
    return Results;
  }
  // Feed-forward: the instruction sequence itself depends on per-shot
  // bits, which frames cannot replay — fall back to independent noisy
  // tableau runs (still polynomial).
  parallelShotLoop(resolveJobCount(Opts.Jobs, Shots), Shots, [&](unsigned S) {
    Results[S] = runTableau(C, deriveShotSeed(Seed, S), &Plan, Noise,
                            Opts.NoiseCounters);
  });
  return Results;
}
