//===- AST.h - Typed Qwerty abstract syntax tree --------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed Qwerty AST (§4). The original Asdf extracts this AST from
/// Python decorator bodies; our frontend parses an equivalent textual DSL
/// (see DESIGN.md). Nodes use LLVM-style Kind discriminators with
/// isa/cast/dyn_cast.
///
/// The surface syntax accepted by the parser:
///
/// \code
///   classical f[N](secret: bit[N], x: bit[N]) -> bit {
///       return (secret & x).xor_reduce()
///   }
///   qpu kernel[N](f: cfunc[N, 1]) -> bit[N] {
///       return 'p'[N] | f.sign | pm[N] >> std[N] | std[N].measure
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_AST_H
#define ASDF_AST_AST_H

#include "ast/Type.h"
#include "basis/Basis.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace asdf {

//===----------------------------------------------------------------------===//
// Dimension expressions
//===----------------------------------------------------------------------===//

/// An integer expression over dimension variables, e.g. the N in bit[N] or
/// 'p'[N], or N-1 in a loop bound. Expansion (§4) substitutes constants for
/// variables and folds these to integers.
class DimExpr {
public:
  enum class Kind { Const, Var, Add, Sub, Mul };

  static std::unique_ptr<DimExpr> constant(int64_t Value) {
    auto E = std::make_unique<DimExpr>();
    E->TheKind = Kind::Const;
    E->Value = Value;
    return E;
  }
  static std::unique_ptr<DimExpr> var(std::string Name) {
    auto E = std::make_unique<DimExpr>();
    E->TheKind = Kind::Var;
    E->Name = std::move(Name);
    return E;
  }
  static std::unique_ptr<DimExpr> binary(Kind K, std::unique_ptr<DimExpr> L,
                                         std::unique_ptr<DimExpr> R) {
    auto E = std::make_unique<DimExpr>();
    E->TheKind = K;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }

  Kind kind() const { return TheKind; }
  int64_t constValue() const {
    assert(TheKind == Kind::Const);
    return Value;
  }
  const std::string &varName() const {
    assert(TheKind == Kind::Var);
    return Name;
  }

  /// Evaluates with the given variable bindings; returns false if an unbound
  /// variable is encountered.
  bool evaluate(const std::map<std::string, int64_t> &Bindings,
                int64_t &Result) const;

  std::unique_ptr<DimExpr> clone() const;
  std::string str() const;

  Kind TheKind = Kind::Const;
  int64_t Value = 0;
  std::string Name;
  std::unique_ptr<DimExpr> Lhs, Rhs;
};

//===----------------------------------------------------------------------===//
// Type annotations (pre-expansion types with dimension expressions)
//===----------------------------------------------------------------------===//

/// A parsed type annotation; dims are DimExprs until expansion resolves them.
struct TypeAnnot {
  enum class Kind { Qubit, Bit, CFunc, RevFunc };
  Kind TheKind = Kind::Bit;
  std::unique_ptr<DimExpr> Dim;  ///< qubit/bit/rev_func dim, cfunc input dim.
  std::unique_ptr<DimExpr> Dim2; ///< cfunc output dim.

  TypeAnnot clone() const;
  /// Resolves to a concrete Type, or Type::invalid() on unbound variables.
  Type resolve(const std::map<std::string, int64_t> &Bindings,
               DiagnosticEngine &Diags, SourceLoc Loc) const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all Qwerty expressions. After type checking, every node
/// carries its Type.
class Expr {
public:
  enum class Kind {
    // Quantum values and bases.
    QubitLiteral,     ///< 'p0' (optionally phased), state prep or basis vector
    BuiltinBasis,     ///< std, pm, ij, fourier[N]
    BasisLiteral,     ///< {'01','10'}
    Tensor,           ///< e1 + e2
    Broadcast,        ///< e[N]
    BasisTranslation, ///< b1 >> b2
    Pipe,             ///< v | f
    Adjoint,          ///< ~f
    Predicated,       ///< b & f
    Measure,          ///< b.measure
    Project,          ///< b.project (measure, keep qubits) -- unused sugar
    Flip,             ///< b.flip
    Rotate,           ///< b.rotate(theta): rotation about each basis axis
    EmbedXor,         ///< f.xor for classical f
    EmbedSign,        ///< f.sign for classical f
    Identity,         ///< id
    Discard,          ///< discard
    Variable,         ///< name reference
    Conditional,      ///< e1 if c else e2
    BitLiteral,       ///< bit[N] constant (e.g. a capture)
    FloatLiteral,     ///< angle literal (degrees in surface syntax)
    FloatBinary,      ///< +,-,*,/ on angles (constant folded in §4.2)
    FloatParam,       ///< $name: symbolic angle parameter (degrees)
    // Classical-function-body expressions.
    ClassicalBinary, ///< e1 & e2, e1 ^ e2, e1 | e2 on bit[N]
    ClassicalNot,    ///< ~e on bit[N]
    ClassicalReduce, ///< e.xor_reduce() / e.and_reduce() / e.or_reduce()
    ClassicalRepeat, ///< e.repeat(N): broadcast bit -> bit[N]
  };

  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Resolved type; invalid until type checking runs.
  Type Ty;

  /// Deep copy (used by expansion and canonicalization).
  virtual std::unique_ptr<Expr> clone() const = 0;
  virtual std::string str() const = 0;

protected:
  explicit Expr(Kind K) : TheKind(K) {}
  Expr(const Expr &) = default;

private:
  Kind TheKind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A qubit literal such as '10', 'pm', or -'p'@45. Each symbol is one
/// qubit. Used both as a state-preparation value and as a basis vector
/// inside basis literals.
class QubitLiteralExpr : public Expr {
public:
  QubitLiteralExpr() : Expr(Kind::QubitLiteral) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::QubitLiteral;
  }

  std::vector<QubitSymbol> Symbols;
  double PhaseDegrees = 0.0;
  bool HasPhase = false;
  /// Phase expression before constant folding ('1'@(360/2**k) in QFT-style
  /// code); null once folded into PhaseDegrees.
  ExprPtr PhaseExpr;

  unsigned dim() const { return Symbols.size(); }
  /// True if every symbol shares one primitive basis (required for use as a
  /// basis vector).
  bool uniformPrim() const;
  /// Converts to a BasisVector; requires uniformPrim().
  BasisVector toBasisVector() const;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// A built-in basis: std, pm, ij, or fourier, of some dimension.
class BuiltinBasisExpr : public Expr {
public:
  BuiltinBasisExpr() : Expr(Kind::BuiltinBasis) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::BuiltinBasis;
  }

  PrimitiveBasis Prim = PrimitiveBasis::Std;
  unsigned Dim = 1;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// A basis literal {bv1, ..., bvm}.
class BasisLiteralExpr : public Expr {
public:
  BasisLiteralExpr() : Expr(Kind::BasisLiteral) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::BasisLiteral;
  }

  std::vector<ExprPtr> Vectors; ///< QubitLiteralExprs.

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Tensor product e1 + e2 (of states, bases, or functions).
class TensorExpr : public Expr {
public:
  TensorExpr() : Expr(Kind::Tensor) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Tensor; }

  ExprPtr Lhs, Rhs;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Broadcast e[N]: N-fold tensor product of e.
class BroadcastExpr : public Expr {
public:
  BroadcastExpr() : Expr(Kind::Broadcast) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Broadcast; }

  ExprPtr Operand;
  std::unique_ptr<DimExpr> Factor;
  /// Phase applied to the broadcast result as a whole: -'p'[N] is
  /// -('p'[N]), one factor of -1, not N of them.
  double OuterPhaseDegrees = 0.0;
  bool HasOuterPhase = false;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// A basis translation b1 >> b2 — the core computational primitive (§2.2).
/// As in the paper, this is a *function value* of type
/// qubit[N] rev-> qubit[N].
class BasisTranslationExpr : public Expr {
public:
  BasisTranslationExpr() : Expr(Kind::BasisTranslation) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::BasisTranslation;
  }

  ExprPtr InBasis, OutBasis;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// The pipe v | f: applies function value f to v.
class PipeExpr : public Expr {
public:
  PipeExpr() : Expr(Kind::Pipe) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Pipe; }

  ExprPtr Value, Func;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// ~f: the adjoint (reverse) of a reversible function value.
class AdjointExpr : public Expr {
public:
  AdjointExpr() : Expr(Kind::Adjoint) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Adjoint; }

  ExprPtr Func;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// b & f: run f only within span(b) of the extra (dim b) qubits.
class PredicatedExpr : public Expr {
public:
  PredicatedExpr() : Expr(Kind::Predicated) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Predicated; }

  ExprPtr PredBasis, Func;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// b.measure: a function value qubit[N] -> bit[N] measuring in basis b.
class MeasureExpr : public Expr {
public:
  MeasureExpr() : Expr(Kind::Measure) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Measure; }

  ExprPtr BasisOperand;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// b.rotate(theta): a function value qubit[N] -> qubit[N] rotating each
/// qubit by theta (degrees) about the axis of its basis element — RZ for
/// std, RX for pm, RY for ij. The angle may be a literal, a dimvar
/// expression, or a linear expression over one `$param` placeholder.
class RotateExpr : public Expr {
public:
  RotateExpr() : Expr(Kind::Rotate) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Rotate; }

  ExprPtr BasisOperand;
  ExprPtr Angle;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// b.flip: sugar for swapping the two vectors of a two-vector basis, e.g.
/// std.flip == std >> {'1','0'} (an X gate when b is std).
class FlipExpr : public Expr {
public:
  FlipExpr() : Expr(Kind::Flip) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Flip; }

  ExprPtr BasisOperand;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// f.xor: the Bennett embedding U_f|x>|y> = |x>|y ^ f(x)> of a classical
/// function (§6.4).
class EmbedXorExpr : public Expr {
public:
  EmbedXorExpr() : Expr(Kind::EmbedXor) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::EmbedXor; }

  ExprPtr Func; ///< A Variable naming a classical function.

  ExprPtr clone() const override;
  std::string str() const override;
};

/// f.sign: the phase oracle U'_f|x> = (-1)^f(x)|x> (§6.4).
class EmbedSignExpr : public Expr {
public:
  EmbedSignExpr() : Expr(Kind::EmbedSign) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::EmbedSign; }

  ExprPtr Func;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// id: the identity function on qubits (usually broadcast, id[N]).
class IdentityExpr : public Expr {
public:
  IdentityExpr() : Expr(Kind::Identity) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Identity; }

  unsigned Dim = 1;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// discard: function qubit[N] -> unit that resets and frees its input.
class DiscardExpr : public Expr {
public:
  DiscardExpr() : Expr(Kind::Discard) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Discard; }

  unsigned Dim = 1;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// A reference to a local variable, parameter, or global function.
class VariableExpr : public Expr {
public:
  VariableExpr() : Expr(Kind::Variable) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Variable; }

  std::string Name;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Python-style conditional expression: (e1 if cond else e2). The condition
/// must be classical (bit), since reversible functions reject classical
/// control flow (§4).
class ConditionalExpr : public Expr {
public:
  ConditionalExpr() : Expr(Kind::Conditional) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::Conditional;
  }

  ExprPtr ThenExpr, Cond, ElseExpr;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// A classical bit string constant, e.g. a bound capture value.
class BitLiteralExpr : public Expr {
public:
  BitLiteralExpr() : Expr(Kind::BitLiteral) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::BitLiteral; }

  std::vector<bool> Bits; ///< Bits[0] is the leftmost bit.

  ExprPtr clone() const override;
  std::string str() const override;
};

/// A floating-point (angle) literal, in degrees.
class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr() : Expr(Kind::FloatLiteral) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatLiteral;
  }

  double Value = 0.0;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// $name: a symbolic angle parameter bound at run time. Expansion folds
/// linear arithmetic over one parameter into the (Scale, Offset)
/// coefficients here; lowering turns them into symbolic GateParams.
class FloatParamExpr : public Expr {
public:
  FloatParamExpr() : Expr(Kind::FloatParam) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatParam;
  }

  std::string Name;
  /// Index into Program::FloatParams (first-occurrence order).
  int Index = -1;
  /// Folded linear coefficients, in degrees: Scale * value + Offset.
  double Scale = 1.0;
  double Offset = 0.0;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Arithmetic on angles; folded by canonicalization (§4.2).
class FloatBinaryExpr : public Expr {
public:
  enum class OpKind { Add, Sub, Mul, Div };

  FloatBinaryExpr() : Expr(Kind::FloatBinary) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatBinary;
  }

  OpKind Op = OpKind::Add;
  ExprPtr Lhs, Rhs;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Bitwise binary operation in a \@classical function body.
class ClassicalBinaryExpr : public Expr {
public:
  enum class OpKind { And, Or, Xor };

  ClassicalBinaryExpr() : Expr(Kind::ClassicalBinary) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::ClassicalBinary;
  }

  OpKind Op = OpKind::And;
  ExprPtr Lhs, Rhs;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Bitwise complement in a \@classical function body.
class ClassicalNotExpr : public Expr {
public:
  ClassicalNotExpr() : Expr(Kind::ClassicalNot) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::ClassicalNot;
  }

  ExprPtr Operand;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// Reduction of a bit[N] to bit: xor_reduce / and_reduce / or_reduce.
class ClassicalReduceExpr : public Expr {
public:
  enum class OpKind { Xor, And, Or };

  ClassicalReduceExpr() : Expr(Kind::ClassicalReduce) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::ClassicalReduce;
  }

  OpKind Op = OpKind::Xor;
  ExprPtr Operand;

  ExprPtr clone() const override;
  std::string str() const override;
};

/// e.repeat(N): broadcasts a single bit to bit[N].
class ClassicalRepeatExpr : public Expr {
public:
  ClassicalRepeatExpr() : Expr(Kind::ClassicalRepeat) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::ClassicalRepeat;
  }

  ExprPtr Operand;
  std::unique_ptr<DimExpr> Factor;

  ExprPtr clone() const override;
  std::string str() const override;
};

//===----------------------------------------------------------------------===//
// Statements and functions
//===----------------------------------------------------------------------===//

/// A statement in a kernel body.
class Stmt {
public:
  enum class Kind { Assign, Return };

  virtual ~Stmt() = default;
  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  virtual std::unique_ptr<Stmt> clone() const = 0;
  virtual std::string str() const = 0;

protected:
  explicit Stmt(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// `a, b = expr`: evaluates expr and splits the resulting qubit/bit tuple
/// evenly across the named variables.
class AssignStmt : public Stmt {
public:
  AssignStmt() : Stmt(Kind::Assign) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

  std::vector<std::string> Names;
  ExprPtr Value;

  StmtPtr clone() const override;
  std::string str() const override;
};

/// `return expr`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt() : Stmt(Kind::Return) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

  ExprPtr Value;

  StmtPtr clone() const override;
  std::string str() const override;
};

/// A function parameter.
struct Param {
  std::string Name;
  TypeAnnot Annot;
  SourceLoc Loc;
  /// Resolved by expansion.
  Type Ty;
};

/// A `qpu` kernel or `classical` function definition.
struct FunctionDef {
  enum class Kind { Qpu, Classical };

  Kind TheKind = Kind::Qpu;
  std::string Name;
  std::vector<std::string> DimVars;
  std::vector<Param> Params;
  TypeAnnot ReturnAnnot;
  Type ReturnTy; ///< Resolved by expansion.
  std::vector<StmtPtr> Body;
  SourceLoc Loc;

  bool isQpu() const { return TheKind == Kind::Qpu; }
  bool isClassical() const { return TheKind == Kind::Classical; }

  std::unique_ptr<FunctionDef> clone() const;
  std::string str() const;
};

/// A parsed Qwerty program: an ordered list of function definitions.
struct Program {
  std::vector<std::unique_ptr<FunctionDef>> Functions;
  /// Float-parameter names ($name) in first-occurrence order;
  /// FloatParamExpr::Index indexes here.
  std::vector<std::string> FloatParams;

  FunctionDef *lookup(const std::string &Name) const;
  std::string str() const;
};

} // namespace asdf

#endif // ASDF_AST_AST_H
