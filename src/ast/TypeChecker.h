//===- TypeChecker.h - Qwerty AST type checking (§4) ----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking for the expanded Qwerty AST (§4): linear types for qubits
/// (every quantum value used exactly once), validation of basis literals
/// (distinct eigenbits, equal dimensions, uniform primitive basis), span
/// equivalence checking of basis translations (§4.1), and reversibility
/// inference for kernels used as function values.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_TYPECHECKER_H
#define ASDF_AST_TYPECHECKER_H

#include "ast/AST.h"
#include "basis/Basis.h"

namespace asdf {

/// Type checks an expanded program in definition order, filling in the Ty
/// field of every expression. Returns false (with diagnostics) on any error.
bool typeCheckProgram(Program &Prog, DiagnosticEngine &Diags);

/// Evaluates a *checked* basis-typed expression to its canon-form Basis
/// value (§2.2). Asserts on non-basis nodes; call only after type checking
/// succeeds.
Basis evalBasis(const Expr &E);

/// True if the checked function body contains no irreversible constructs
/// (measurement, discard, classical conditionals) and so can be adjointed
/// or predicated when used as a function value.
bool isReversibleFunction(const FunctionDef &F, const Program &Prog);

} // namespace asdf

#endif // ASDF_AST_TYPECHECKER_H
