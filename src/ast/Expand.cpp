//===- Expand.cpp - Dimension variable inference and AST expansion --------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Expand.h"

using namespace asdf;

namespace {

/// A linear angle expression over at most one `$param`, in degrees:
/// Scale * value + Offset. Index < 0 means fully constant (value Offset).
struct LinAngle {
  double Scale = 0.0;
  double Offset = 0.0;
  int Index = -1;
  std::string Name;

  bool isSymbolic() const { return Index >= 0; }
};

class Expander {
public:
  Expander(const Program &Prog, const ProgramBindings &Bindings,
           DiagnosticEngine &Diags)
      : Prog(Prog), Bindings(Bindings), Diags(Diags) {}

  std::unique_ptr<Program> run();

private:
  const Program &Prog;
  const ProgramBindings &Bindings;
  DiagnosticEngine &Diags;
  std::map<std::string, int64_t> DimVars;

  bool inferDimVars();
  std::unique_ptr<FunctionDef> expandFunction(const FunctionDef &F);
  ExprPtr expandExpr(const Expr &E,
                     const std::map<std::string, CaptureValue> &Captures);
  bool foldPhase(QubitLiteralExpr &QL);
  bool evalFloat(const Expr &E, double &Result);
  bool evalAngle(const Expr &E, LinAngle &Out);
};

bool Expander::inferDimVars() {
  DimVars = Bindings.DimVars;
  // Inference (§4): a bit[V] parameter bound to an L-bit capture determines
  // V = L, mirroring how Asdf infers N from the captured secret bitstring in
  // Fig. 1.
  for (const auto &F : Prog.Functions) {
    auto CapIt = Bindings.Captures.find(F->Name);
    if (CapIt == Bindings.Captures.end())
      continue;
    for (const Param &P : F->Params) {
      auto It = CapIt->second.find(P.Name);
      if (It == CapIt->second.end() ||
          It->second.TheKind != CaptureValue::Kind::Bits)
        continue;
      const std::unique_ptr<DimExpr> &D = P.Annot.Dim;
      if (!D || D->kind() != DimExpr::Kind::Var)
        continue;
      int64_t Inferred = static_cast<int64_t>(It->second.Bits.size());
      auto [ExistingIt, Inserted] = DimVars.insert({D->varName(), Inferred});
      if (!Inserted && ExistingIt->second != Inferred) {
        Diags.error(P.Loc, "conflicting inference for dimension variable '" +
                               D->varName() + "': " +
                               std::to_string(ExistingIt->second) + " vs " +
                               std::to_string(Inferred));
        return false;
      }
    }
  }
  return true;
}

std::unique_ptr<Program> Expander::run() {
  if (!inferDimVars())
    return nullptr;
  auto Out = std::make_unique<Program>();
  Out->FloatParams = Prog.FloatParams;
  for (const auto &F : Prog.Functions) {
    std::unique_ptr<FunctionDef> NewF = expandFunction(*F);
    if (!NewF)
      return nullptr;
    Out->Functions.push_back(std::move(NewF));
  }
  return Out;
}

std::unique_ptr<FunctionDef> Expander::expandFunction(const FunctionDef &F) {
  auto NewF = std::make_unique<FunctionDef>();
  NewF->TheKind = F.TheKind;
  NewF->Name = F.Name;
  NewF->Loc = F.Loc;

  std::map<std::string, CaptureValue> Captures;
  if (auto It = Bindings.Captures.find(F.Name); It != Bindings.Captures.end())
    Captures = It->second;

  // Captured parameters are removed from the signature; their values are
  // spliced into the body.
  for (const Param &P : F.Params) {
    if (Captures.count(P.Name))
      continue;
    Param NewP;
    NewP.Name = P.Name;
    NewP.Annot = P.Annot.clone();
    NewP.Loc = P.Loc;
    NewP.Ty = P.Annot.resolve(DimVars, Diags, P.Loc);
    if (NewP.Ty.isInvalid())
      return nullptr;
    NewF->Params.push_back(std::move(NewP));
  }
  if (F.ReturnAnnot.Dim) {
    NewF->ReturnAnnot = F.ReturnAnnot.clone();
    NewF->ReturnTy = F.ReturnAnnot.resolve(DimVars, Diags, F.Loc);
    if (NewF->ReturnTy.isInvalid())
      return nullptr;
  }

  for (const StmtPtr &S : F.Body) {
    if (const auto *Ret = dyn_cast<ReturnStmt>(S.get())) {
      auto NewS = std::make_unique<ReturnStmt>();
      NewS->setLoc(Ret->loc());
      NewS->Value = expandExpr(*Ret->Value, Captures);
      if (!NewS->Value)
        return nullptr;
      NewF->Body.push_back(std::move(NewS));
      continue;
    }
    const auto *Assign = cast<AssignStmt>(S.get());
    auto NewS = std::make_unique<AssignStmt>();
    NewS->setLoc(Assign->loc());
    NewS->Names = Assign->Names;
    NewS->Value = expandExpr(*Assign->Value, Captures);
    if (!NewS->Value)
      return nullptr;
    NewF->Body.push_back(std::move(NewS));
  }
  return NewF;
}

bool Expander::evalFloat(const Expr &E, double &Result) {
  if (const auto *FL = dyn_cast<FloatLiteralExpr>(&E)) {
    Result = FL->Value;
    return true;
  }
  if (const auto *Var = dyn_cast<VariableExpr>(&E)) {
    auto It = DimVars.find(Var->Name);
    if (It == DimVars.end()) {
      Diags.error(E.loc(), "unknown dimension variable '" + Var->Name +
                               "' in phase expression");
      return false;
    }
    Result = static_cast<double>(It->second);
    return true;
  }
  if (const auto *Bin = dyn_cast<FloatBinaryExpr>(&E)) {
    double L, R;
    if (!evalFloat(*Bin->Lhs, L) || !evalFloat(*Bin->Rhs, R))
      return false;
    switch (Bin->Op) {
    case FloatBinaryExpr::OpKind::Add:
      Result = L + R;
      return true;
    case FloatBinaryExpr::OpKind::Sub:
      Result = L - R;
      return true;
    case FloatBinaryExpr::OpKind::Mul:
      Result = L * R;
      return true;
    case FloatBinaryExpr::OpKind::Div:
      if (R == 0.0) {
        Diags.error(E.loc(), "division by zero in phase expression");
        return false;
      }
      Result = L / R;
      return true;
    }
  }
  if (isa<FloatParamExpr>(&E)) {
    Diags.error(E.loc(), "'$' parameters may only appear inside .rotate "
                         "angles");
    return false;
  }
  Diags.error(E.loc(), "cannot evaluate phase expression at compile time");
  return false;
}

bool Expander::evalAngle(const Expr &E, LinAngle &Out) {
  if (const auto *FL = dyn_cast<FloatLiteralExpr>(&E)) {
    Out = LinAngle();
    Out.Offset = FL->Value;
    return true;
  }
  if (isa<VariableExpr>(&E)) {
    double V = 0.0;
    if (!evalFloat(E, V))
      return false;
    Out = LinAngle();
    Out.Offset = V;
    return true;
  }
  if (const auto *P = dyn_cast<FloatParamExpr>(&E)) {
    Out.Scale = P->Scale;
    Out.Offset = P->Offset;
    Out.Index = P->Index;
    Out.Name = P->Name;
    return true;
  }
  if (const auto *Bin = dyn_cast<FloatBinaryExpr>(&E)) {
    LinAngle L, R;
    if (!evalAngle(*Bin->Lhs, L) || !evalAngle(*Bin->Rhs, R))
      return false;
    switch (Bin->Op) {
    case FloatBinaryExpr::OpKind::Add:
    case FloatBinaryExpr::OpKind::Sub: {
      if (L.isSymbolic() && R.isSymbolic() && L.Index != R.Index) {
        Diags.error(E.loc(), "angle expression mixes parameters '$" +
                                 L.Name + "' and '$" + R.Name + "'");
        return false;
      }
      bool Sub = Bin->Op == FloatBinaryExpr::OpKind::Sub;
      Out.Index = L.isSymbolic() ? L.Index : R.Index;
      Out.Name = L.isSymbolic() ? L.Name : R.Name;
      Out.Scale = Sub ? L.Scale - R.Scale : L.Scale + R.Scale;
      Out.Offset = Sub ? L.Offset - R.Offset : L.Offset + R.Offset;
      return true;
    }
    case FloatBinaryExpr::OpKind::Mul: {
      if (L.isSymbolic() && R.isSymbolic()) {
        Diags.error(E.loc(),
                    "angle expression is not linear in parameter '$" +
                        L.Name + "'");
        return false;
      }
      // Keep the operand order of the source expression so constant
      // subterms fold exactly as the non-parametric path folds them.
      if (R.isSymbolic()) {
        Out.Index = R.Index;
        Out.Name = R.Name;
        Out.Scale = L.Offset * R.Scale;
        Out.Offset = L.Offset * R.Offset;
      } else {
        Out.Index = L.Index;
        Out.Name = L.Name;
        Out.Scale = L.Scale * R.Offset;
        Out.Offset = L.Offset * R.Offset;
      }
      return true;
    }
    case FloatBinaryExpr::OpKind::Div: {
      if (R.isSymbolic()) {
        Diags.error(E.loc(), "cannot divide by parameter '$" + R.Name +
                                 "' in an angle expression");
        return false;
      }
      if (R.Offset == 0.0) {
        Diags.error(E.loc(), "division by zero in angle expression");
        return false;
      }
      Out.Index = L.Index;
      Out.Name = L.Name;
      Out.Scale = L.Scale / R.Offset;
      Out.Offset = L.Offset / R.Offset;
      return true;
    }
    }
  }
  Diags.error(E.loc(), "cannot evaluate angle expression at compile time");
  return false;
}

bool Expander::foldPhase(QubitLiteralExpr &QL) {
  if (!QL.PhaseExpr)
    return true;
  double Value = 0.0;
  if (!evalFloat(*QL.PhaseExpr, Value))
    return false;
  QL.PhaseDegrees += Value;
  QL.HasPhase = true;
  QL.PhaseExpr.reset();
  return true;
}

ExprPtr Expander::expandExpr(
    const Expr &E, const std::map<std::string, CaptureValue> &Captures) {
  switch (E.kind()) {
  case Expr::Kind::QubitLiteral: {
    ExprPtr C = E.clone();
    if (!foldPhase(*cast<QubitLiteralExpr>(C.get())))
      return nullptr;
    return C;
  }
  case Expr::Kind::BuiltinBasis:
  case Expr::Kind::Identity:
  case Expr::Kind::Discard:
  case Expr::Kind::BitLiteral:
  case Expr::Kind::FloatLiteral:
    return E.clone();

  case Expr::Kind::Variable: {
    const auto *Var = cast<VariableExpr>(&E);
    auto It = Captures.find(Var->Name);
    if (It == Captures.end())
      return E.clone();
    // Splice the capture value in.
    if (It->second.TheKind == CaptureValue::Kind::Bits) {
      auto Lit = std::make_unique<BitLiteralExpr>();
      Lit->Bits = It->second.Bits;
      Lit->setLoc(E.loc());
      return Lit;
    }
    auto Ref = std::make_unique<VariableExpr>();
    Ref->Name = It->second.FuncName;
    Ref->setLoc(E.loc());
    return Ref;
  }

  case Expr::Kind::Broadcast: {
    const auto *B = cast<BroadcastExpr>(&E);
    int64_t Factor = 0;
    if (!B->Factor->evaluate(DimVars, Factor)) {
      Diags.error(E.loc(), "cannot resolve dimension expression '" +
                               B->Factor->str() + "'");
      return nullptr;
    }
    if (Factor <= 0) {
      Diags.error(E.loc(), "broadcast factor must be positive");
      return nullptr;
    }
    ExprPtr Inner = expandExpr(*B->Operand, Captures);
    if (!Inner)
      return nullptr;
    // Collapse broadcasts of primitive values directly; expand everything
    // else into an explicit tensor chain (the paper's expr + expr + ...).
    if (auto *BB = dyn_cast<BuiltinBasisExpr>(Inner.get())) {
      BB->Dim *= static_cast<unsigned>(Factor);
      return Inner;
    }
    if (auto *Id = dyn_cast<IdentityExpr>(Inner.get())) {
      Id->Dim *= static_cast<unsigned>(Factor);
      return Inner;
    }
    if (auto *Disc = dyn_cast<DiscardExpr>(Inner.get())) {
      Disc->Dim *= static_cast<unsigned>(Factor);
      return Inner;
    }
    if (auto *QL = dyn_cast<QubitLiteralExpr>(Inner.get())) {
      auto Out = std::make_unique<QubitLiteralExpr>();
      Out->setLoc(E.loc());
      for (int64_t I = 0; I < Factor; ++I)
        Out->Symbols.insert(Out->Symbols.end(), QL->Symbols.begin(),
                            QL->Symbols.end());
      if (QL->HasPhase) {
        Out->HasPhase = true;
        Out->PhaseDegrees = QL->PhaseDegrees * static_cast<double>(Factor);
      }
      if (B->HasOuterPhase) {
        Out->HasPhase = true;
        Out->PhaseDegrees += B->OuterPhaseDegrees;
      }
      return Out;
    }
    if (Factor == 1)
      return Inner;
    ExprPtr Chain = Inner->clone();
    for (int64_t I = 1; I < Factor; ++I) {
      auto T = std::make_unique<TensorExpr>();
      T->setLoc(E.loc());
      T->Lhs = std::move(Chain);
      T->Rhs = Inner->clone();
      Chain = std::move(T);
    }
    return Chain;
  }

  case Expr::Kind::ClassicalRepeat: {
    const auto *R = cast<ClassicalRepeatExpr>(&E);
    int64_t Factor = 0;
    if (!R->Factor->evaluate(DimVars, Factor) || Factor <= 0) {
      Diags.error(E.loc(), "cannot resolve repeat factor");
      return nullptr;
    }
    auto Out = std::make_unique<ClassicalRepeatExpr>();
    Out->setLoc(E.loc());
    Out->Operand = expandExpr(*R->Operand, Captures);
    if (!Out->Operand)
      return nullptr;
    Out->Factor = DimExpr::constant(Factor);
    return Out;
  }

  case Expr::Kind::FloatBinary: {
    // Fold angle arithmetic to a constant (§4.2 float constant folding).
    double Value = 0.0;
    if (!evalFloat(E, Value))
      return nullptr;
    auto Out = std::make_unique<FloatLiteralExpr>();
    Out->Value = Value;
    Out->setLoc(E.loc());
    return Out;
  }

  default:
    break;
  }

  // Structural recursion for the remaining node kinds.
  ExprPtr C = E.clone();
  Expr *Node = C.get();
  auto Recurse = [&](ExprPtr &Child) -> bool {
    if (!Child)
      return true;
    Child = expandExpr(*Child, Captures);
    return Child != nullptr;
  };
  switch (Node->kind()) {
  case Expr::Kind::BasisLiteral: {
    auto *BL = cast<BasisLiteralExpr>(Node);
    for (ExprPtr &V : BL->Vectors) {
      if (!Recurse(V))
        return nullptr;
      if (auto *QL = dyn_cast<QubitLiteralExpr>(V.get())) {
        if (!foldPhase(*QL))
          return nullptr;
      }
    }
    return C;
  }
  case Expr::Kind::Tensor: {
    auto *T = cast<TensorExpr>(Node);
    if (!Recurse(T->Lhs) || !Recurse(T->Rhs))
      return nullptr;
    return C;
  }
  case Expr::Kind::BasisTranslation: {
    auto *BT = cast<BasisTranslationExpr>(Node);
    if (!Recurse(BT->InBasis) || !Recurse(BT->OutBasis))
      return nullptr;
    return C;
  }
  case Expr::Kind::Pipe: {
    auto *P = cast<PipeExpr>(Node);
    if (!Recurse(P->Value) || !Recurse(P->Func))
      return nullptr;
    return C;
  }
  case Expr::Kind::Adjoint: {
    auto *A = cast<AdjointExpr>(Node);
    if (!Recurse(A->Func))
      return nullptr;
    return C;
  }
  case Expr::Kind::Predicated: {
    auto *P = cast<PredicatedExpr>(Node);
    if (!Recurse(P->PredBasis) || !Recurse(P->Func))
      return nullptr;
    return C;
  }
  case Expr::Kind::Measure: {
    auto *M = cast<MeasureExpr>(Node);
    if (!Recurse(M->BasisOperand))
      return nullptr;
    return C;
  }
  case Expr::Kind::Flip: {
    auto *FE = cast<FlipExpr>(Node);
    if (!Recurse(FE->BasisOperand))
      return nullptr;
    return C;
  }
  case Expr::Kind::Rotate: {
    auto *R = cast<RotateExpr>(Node);
    if (!Recurse(R->BasisOperand))
      return nullptr;
    // Fold the angle to either a literal (degrees) or a single linear
    // $param reference with folded coefficients.
    LinAngle A;
    if (!evalAngle(*R->Angle, A))
      return nullptr;
    SourceLoc AngleLoc = R->Angle->loc();
    if (!A.isSymbolic()) {
      auto Lit = std::make_unique<FloatLiteralExpr>();
      Lit->Value = A.Offset;
      Lit->setLoc(AngleLoc);
      R->Angle = std::move(Lit);
    } else {
      auto P = std::make_unique<FloatParamExpr>();
      P->Name = A.Name;
      P->Index = A.Index;
      P->Scale = A.Scale;
      P->Offset = A.Offset;
      P->setLoc(AngleLoc);
      R->Angle = std::move(P);
    }
    return C;
  }
  case Expr::Kind::EmbedXor: {
    auto *X = cast<EmbedXorExpr>(Node);
    if (!Recurse(X->Func))
      return nullptr;
    return C;
  }
  case Expr::Kind::EmbedSign: {
    auto *SG = cast<EmbedSignExpr>(Node);
    if (!Recurse(SG->Func))
      return nullptr;
    return C;
  }
  case Expr::Kind::Conditional: {
    auto *Cond = cast<ConditionalExpr>(Node);
    if (!Recurse(Cond->ThenExpr) || !Recurse(Cond->Cond) ||
        !Recurse(Cond->ElseExpr))
      return nullptr;
    return C;
  }
  case Expr::Kind::ClassicalBinary: {
    auto *CB = cast<ClassicalBinaryExpr>(Node);
    if (!Recurse(CB->Lhs) || !Recurse(CB->Rhs))
      return nullptr;
    return C;
  }
  case Expr::Kind::ClassicalNot: {
    auto *CN = cast<ClassicalNotExpr>(Node);
    if (!Recurse(CN->Operand))
      return nullptr;
    return C;
  }
  case Expr::Kind::ClassicalReduce: {
    auto *CR = cast<ClassicalReduceExpr>(Node);
    if (!Recurse(CR->Operand))
      return nullptr;
    return C;
  }
  default:
    return C;
  }
}

} // namespace

std::unique_ptr<Program> asdf::expandProgram(const Program &Prog,
                                             const ProgramBindings &Bindings,
                                             DiagnosticEngine &Diags) {
  Expander E(Prog, Bindings, Diags);
  std::unique_ptr<Program> Out = E.run();
  if (Diags.hadError())
    return nullptr;
  return Out;
}
