//===- TypeChecker.cpp - Qwerty AST type checking (§4) --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/TypeChecker.h"

#include "basis/SpanCheck.h"

#include <map>

using namespace asdf;

namespace {

/// Per-variable state for linear type checking.
struct VarInfo {
  Type Ty;
  bool Used = false;
  SourceLoc DefLoc;
};

class Checker {
public:
  Checker(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  Program &Prog;
  DiagnosticEngine &Diags;
  /// Signatures of already-checked functions (definition order).
  std::map<std::string, Type> GlobalTypes;
  std::map<std::string, VarInfo> Env;
  FunctionDef *CurFunc = nullptr;

  bool checkQpuFunction(FunctionDef &F);
  bool checkClassicalFunction(FunctionDef &F);

  Type checkExpr(Expr &E);
  Type checkClassicalExpr(Expr &E);
  /// Validates a basis-position expression; returns its dimension or 0 on
  /// error. Sets E.Ty to basis[N].
  unsigned checkBasis(Expr &E);

  Type error(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    return Type::invalid();
  }
};

bool Checker::run() {
  for (auto &F : Prog.Functions) {
    Env.clear();
    CurFunc = F.get();
    bool Ok = F->isClassical() ? checkClassicalFunction(*F)
                               : checkQpuFunction(*F);
    if (!Ok)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Basis validation and evaluation
//===----------------------------------------------------------------------===//

unsigned Checker::checkBasis(Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::QubitLiteral: {
    // A qubit literal in basis position denotes the singleton basis {bv}.
    auto &QL = cast<QubitLiteralExpr>(E);
    if (!QL.uniformPrim()) {
      error(E.loc(), "basis vector '" + QL.str() +
                         "' mixes primitive bases; all positions must share "
                         "one primitive basis");
      return 0;
    }
    if (QL.dim() > MaxLiteralDim) {
      error(E.loc(), "basis vector wider than 64 qubits");
      return 0;
    }
    E.Ty = Type::basis(QL.dim());
    return QL.dim();
  }
  case Expr::Kind::BasisLiteral: {
    auto &BL = cast<BasisLiteralExpr>(E);
    if (BL.Vectors.empty()) {
      error(E.loc(), "basis literal must contain at least one vector");
      return 0;
    }
    unsigned Dim = 0;
    PrimitiveBasis Prim = PrimitiveBasis::Std;
    std::vector<BasisVector> Vecs;
    for (unsigned I = 0; I < BL.Vectors.size(); ++I) {
      auto *QL = dyn_cast<QubitLiteralExpr>(BL.Vectors[I].get());
      if (!QL) {
        error(E.loc(), "basis literal vectors must be qubit literals");
        return 0;
      }
      if (!QL->uniformPrim()) {
        error(QL->loc(), "basis vector '" + QL->str() +
                             "' mixes primitive bases");
        return 0;
      }
      if (QL->dim() > MaxLiteralDim) {
        error(QL->loc(), "basis vector wider than 64 qubits");
        return 0;
      }
      BasisVector V = QL->toBasisVector();
      if (I == 0) {
        Dim = V.Dim;
        Prim = V.Prim;
      } else {
        // Well-typedness (§2.2): all vector dimensions must be equal and
        // all positions must share the same primitive basis.
        if (V.Dim != Dim) {
          error(QL->loc(), "basis literal vectors must have equal "
                           "dimensions");
          return 0;
        }
        if (V.Prim != Prim) {
          error(QL->loc(), "basis literal vectors must share one primitive "
                           "basis");
          return 0;
        }
      }
      QL->Ty = Type::basis(V.Dim);
      Vecs.push_back(V);
    }
    // Well-typedness (§2.2): all eigenbits must be distinct.
    BasisLiteral Lit(std::move(Vecs));
    if (!Lit.eigenbitsDistinct()) {
      error(E.loc(), "basis literal vectors must be orthogonal (distinct "
                     "eigenbits)");
      return 0;
    }
    E.Ty = Type::basis(Dim);
    return Dim;
  }
  case Expr::Kind::BuiltinBasis: {
    auto &BB = cast<BuiltinBasisExpr>(E);
    E.Ty = Type::basis(BB.Dim);
    return BB.Dim;
  }
  case Expr::Kind::Tensor: {
    auto &T = cast<TensorExpr>(E);
    unsigned L = checkBasis(*T.Lhs);
    if (!L)
      return 0;
    unsigned R = checkBasis(*T.Rhs);
    if (!R)
      return 0;
    E.Ty = Type::basis(L + R);
    return L + R;
  }
  default:
    error(E.loc(), "expected a basis expression here");
    return 0;
  }
}

//===----------------------------------------------------------------------===//
// Quantum expression checking
//===----------------------------------------------------------------------===//

Type Checker::checkExpr(Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::QubitLiteral: {
    auto &QL = cast<QubitLiteralExpr>(E);
    // As a value, a qubit literal is a state preparation; mixed primitive
    // bases are fine here ('p0' prepares |+>|0>).
    return E.Ty = Type::qubit(QL.dim());
  }
  case Expr::Kind::BitLiteral:
    return E.Ty = Type::bit(cast<BitLiteralExpr>(E).Bits.size());

  case Expr::Kind::BuiltinBasis:
  case Expr::Kind::BasisLiteral:
    return error(E.loc(), "a basis is not a first-class value; use it in a "
                          "basis translation, predication, or measurement");

  case Expr::Kind::Tensor: {
    auto &T = cast<TensorExpr>(E);
    Type L = checkExpr(*T.Lhs);
    if (L.isInvalid())
      return L;
    Type R = checkExpr(*T.Rhs);
    if (R.isInvalid())
      return R;
    if (L.isQubit() && R.isQubit())
      return E.Ty = Type::qubit(L.dim() + R.dim());
    if (L.isBit() && R.isBit())
      return E.Ty = Type::bit(L.dim() + R.dim());
    if (L.isFunc() && R.isFunc()) {
      // §5.1: functions are tensored by generating a lambda that splits the
      // input and calls both. Only qubit->qubit functions are tensorable.
      if (L.funcInKind() != Type::DataKind::Qubit ||
          R.funcInKind() != Type::DataKind::Qubit)
        return error(E.loc(), "only qubit functions can be tensored");
      Type::DataKind OutK = L.funcOutKind();
      if (OutK != R.funcOutKind())
        return error(E.loc(), "cannot tensor functions with mismatched "
                              "output kinds");
      return E.Ty = Type::func(
                 Type::DataKind::Qubit, L.funcInDim() + R.funcInDim(), OutK,
                 L.funcOutDim() + R.funcOutDim(),
                 L.isReversibleFunc() && R.isReversibleFunc());
    }
    return error(E.loc(), "cannot tensor " + L.str() + " with " + R.str());
  }

  case Expr::Kind::BasisTranslation: {
    auto &BT = cast<BasisTranslationExpr>(E);
    unsigned L = checkBasis(*BT.InBasis);
    if (!L)
      return Type::invalid();
    unsigned R = checkBasis(*BT.OutBasis);
    if (!R)
      return Type::invalid();
    if (L != R)
      return error(E.loc(), "basis translation dimensions differ: " +
                                std::to_string(L) + " vs " +
                                std::to_string(R));
    // §4.1: span equivalence checking.
    Basis BIn = evalBasis(*BT.InBasis);
    Basis BOut = evalBasis(*BT.OutBasis);
    if (!spansEquivalent(BIn, BOut))
      return error(E.loc(), "basis translation sides span different "
                            "subspaces: span(" +
                                BIn.str() + ") != span(" + BOut.str() + ")");
    return E.Ty = Type::revFunc(L);
  }

  case Expr::Kind::Pipe: {
    auto &P = cast<PipeExpr>(E);
    Type VT = checkExpr(*P.Value);
    if (VT.isInvalid())
      return VT;
    Type FT = checkExpr(*P.Func);
    if (FT.isInvalid())
      return FT;
    if (!FT.isFunc())
      return error(P.Func->loc(), "right side of '|' must be a function, "
                                  "got " +
                                      FT.str());
    Type::DataKind WantK = FT.funcInKind();
    unsigned WantDim = FT.funcInDim();
    bool KindOk = (WantK == Type::DataKind::Qubit && VT.isQubit()) ||
                  (WantK == Type::DataKind::Bit && VT.isBit()) ||
                  (WantK == Type::DataKind::Unit && VT.isUnit());
    if (!KindOk || (WantK != Type::DataKind::Unit && VT.dim() != WantDim))
      return error(E.loc(), "cannot pipe " + VT.str() + " into " + FT.str());
    switch (FT.funcOutKind()) {
    case Type::DataKind::Qubit:
      return E.Ty = Type::qubit(FT.funcOutDim());
    case Type::DataKind::Bit:
      return E.Ty = Type::bit(FT.funcOutDim());
    case Type::DataKind::Unit:
      return E.Ty = Type::unit();
    }
    return Type::invalid();
  }

  case Expr::Kind::Adjoint: {
    auto &A = cast<AdjointExpr>(E);
    Type FT = checkExpr(*A.Func);
    if (FT.isInvalid())
      return FT;
    // §4: ~f requires f to be reversible.
    if (!FT.isReversibleFunc())
      return error(E.loc(), "'~' requires a reversible function, got " +
                                FT.str());
    return E.Ty = FT;
  }

  case Expr::Kind::Predicated: {
    auto &P = cast<PredicatedExpr>(E);
    unsigned M = checkBasis(*P.PredBasis);
    if (!M)
      return Type::invalid();
    Type FT = checkExpr(*P.Func);
    if (FT.isInvalid())
      return FT;
    if (!FT.isReversibleFunc())
      return error(E.loc(), "'&' requires a reversible function, got " +
                                FT.str());
    return E.Ty = Type::revFunc(M + FT.funcInDim());
  }

  case Expr::Kind::Measure: {
    auto &M = cast<MeasureExpr>(E);
    unsigned N = checkBasis(*M.BasisOperand);
    if (!N)
      return Type::invalid();
    // Measurement must be complete: a partial-span basis would leave some
    // states with no outcome.
    if (!evalBasis(*M.BasisOperand).fullySpans())
      return error(E.loc(), ".measure requires a fully spanning basis");
    return E.Ty = Type::func(Type::DataKind::Qubit, N, Type::DataKind::Bit,
                             N, /*Reversible=*/false);
  }

  case Expr::Kind::Flip: {
    auto &F = cast<FlipExpr>(E);
    unsigned N = checkBasis(*F.BasisOperand);
    if (!N)
      return Type::invalid();
    Basis B = evalBasis(*F.BasisOperand);
    bool Ok = false;
    if (B.size() == 1) {
      const BasisElement &El = B.elements().front();
      if (El.isBuiltin() && El.dim() == 1 &&
          El.prim() != PrimitiveBasis::Fourier)
        Ok = true;
      else if (El.isLiteral() && El.literalValue().size() == 2)
        Ok = true;
    }
    if (!Ok)
      return error(E.loc(), ".flip requires a single-qubit primitive basis "
                            "or a two-vector basis literal");
    return E.Ty = Type::revFunc(N);
  }

  case Expr::Kind::EmbedXor:
  case Expr::Kind::EmbedSign: {
    bool IsXor = E.kind() == Expr::Kind::EmbedXor;
    Expr *FuncExpr = IsXor ? cast<EmbedXorExpr>(E).Func.get()
                           : cast<EmbedSignExpr>(E).Func.get();
    auto *Var = dyn_cast<VariableExpr>(FuncExpr);
    if (!Var)
      return error(E.loc(), ".xor/.sign require a named classical function");
    FunctionDef *Callee = Prog.lookup(Var->Name);
    if (!Callee || !Callee->isClassical())
      return error(E.loc(), "'" + Var->Name +
                                "' is not a classical function");
    auto It = GlobalTypes.find(Var->Name);
    if (It == GlobalTypes.end())
      return error(E.loc(), "classical function '" + Var->Name +
                                "' must be defined before use");
    Type CT = It->second;
    Var->Ty = CT;
    if (IsXor)
      return E.Ty = Type::revFunc(CT.funcInDim() + CT.funcOutDim());
    if (CT.funcOutDim() != 1)
      return error(E.loc(), ".sign requires a classical function returning "
                            "bit[1]");
    return E.Ty = Type::revFunc(CT.funcInDim());
  }

  case Expr::Kind::Identity:
    return E.Ty = Type::revFunc(cast<IdentityExpr>(E).Dim);

  case Expr::Kind::Discard:
    return E.Ty = Type::func(Type::DataKind::Qubit,
                             cast<DiscardExpr>(E).Dim,
                             Type::DataKind::Unit, 0, /*Reversible=*/false);

  case Expr::Kind::Variable: {
    auto &Var = cast<VariableExpr>(E);
    auto It = Env.find(Var.Name);
    if (It != Env.end()) {
      VarInfo &Info = It->second;
      if (Info.Ty.isLinear()) {
        // Linear types (§4): any quantum value must be used exactly once.
        if (Info.Used)
          return error(E.loc(), "qubit variable '" + Var.Name +
                                    "' used more than once");
        Info.Used = true;
      }
      return E.Ty = Info.Ty;
    }
    auto GIt = GlobalTypes.find(Var.Name);
    if (GIt != GlobalTypes.end()) {
      if (GIt->second.isCFunc())
        return error(E.loc(), "classical function '" + Var.Name +
                                  "' must be embedded with .xor or .sign");
      return E.Ty = GIt->second;
    }
    return error(E.loc(), "unknown variable '" + Var.Name + "'");
  }

  case Expr::Kind::Conditional: {
    auto &C = cast<ConditionalExpr>(E);
    Type CT = checkExpr(*C.Cond);
    if (CT.isInvalid())
      return CT;
    if (!CT.isBit() || CT.dim() != 1)
      return error(C.Cond->loc(), "conditional requires a bit[1] condition, "
                                  "got " +
                                      CT.str());
    Type TT = checkExpr(*C.ThenExpr);
    if (TT.isInvalid())
      return TT;
    Type ET = checkExpr(*C.ElseExpr);
    if (ET.isInvalid())
      return ET;
    if (!TT.isFunc() || !ET.isFunc())
      return error(E.loc(), "conditional branches must be function values");
    if (TT.funcInKind() != ET.funcInKind() ||
        TT.funcInDim() != ET.funcInDim() ||
        TT.funcOutKind() != ET.funcOutKind() ||
        TT.funcOutDim() != ET.funcOutDim())
      return error(E.loc(), "conditional branches have mismatched types: " +
                                TT.str() + " vs " + ET.str());
    // A classically-conditioned function is not reversible as a whole (§4).
    return E.Ty = Type::func(TT.funcInKind(), TT.funcInDim(),
                             TT.funcOutKind(), TT.funcOutDim(),
                             /*Reversible=*/false);
  }

  case Expr::Kind::FloatLiteral:
  case Expr::Kind::FloatBinary:
    return error(E.loc(), "angle expression is not a value");

  case Expr::Kind::Broadcast:
    return error(E.loc(), "broadcast should have been expanded; was "
                          "expandProgram run?");

  case Expr::Kind::ClassicalBinary:
  case Expr::Kind::ClassicalNot:
  case Expr::Kind::ClassicalReduce:
  case Expr::Kind::ClassicalRepeat:
    return error(E.loc(), "classical bit expression is only allowed inside "
                          "a 'classical' function");
  case Expr::Kind::Rotate: {
    auto &R = cast<RotateExpr>(E);
    unsigned N = checkBasis(*R.BasisOperand);
    if (!N)
      return Type::invalid();
    Basis B = evalBasis(*R.BasisOperand);
    for (const BasisElement &El : B.elements())
      if (!El.isBuiltin() || El.prim() == PrimitiveBasis::Fourier)
        return error(E.loc(),
                     ".rotate requires a built-in std/pm/ij basis");
    if (!isa<FloatLiteralExpr>(R.Angle.get()) &&
        !isa<FloatParamExpr>(R.Angle.get()))
      return error(R.Angle->loc(),
                   ".rotate angle must fold to a constant or to a linear "
                   "expression in one '$' parameter");
    return E.Ty = Type::revFunc(N);
  }

  case Expr::Kind::FloatParam:
    return error(E.loc(), "angle expression is not a value");

  case Expr::Kind::Project:
    return error(E.loc(), "unsupported expression");
  }
  return Type::invalid();
}

//===----------------------------------------------------------------------===//
// Classical expression checking
//===----------------------------------------------------------------------===//

Type Checker::checkClassicalExpr(Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Variable: {
    auto &Var = cast<VariableExpr>(E);
    auto It = Env.find(Var.Name);
    if (It == Env.end())
      return error(E.loc(), "unknown variable '" + Var.Name + "'");
    return E.Ty = It->second.Ty;
  }
  case Expr::Kind::BitLiteral:
    return E.Ty = Type::bit(cast<BitLiteralExpr>(E).Bits.size());
  case Expr::Kind::ClassicalBinary: {
    auto &B = cast<ClassicalBinaryExpr>(E);
    Type L = checkClassicalExpr(*B.Lhs);
    if (L.isInvalid())
      return L;
    Type R = checkClassicalExpr(*B.Rhs);
    if (R.isInvalid())
      return R;
    if (!L.isBit() || !R.isBit() || L.dim() != R.dim())
      return error(E.loc(), "bitwise operands must be bit values of equal "
                            "width: " +
                                L.str() + " vs " + R.str());
    return E.Ty = L;
  }
  case Expr::Kind::ClassicalNot: {
    auto &N = cast<ClassicalNotExpr>(E);
    Type T = checkClassicalExpr(*N.Operand);
    if (T.isInvalid())
      return T;
    if (!T.isBit())
      return error(E.loc(), "'~' requires a bit value");
    return E.Ty = T;
  }
  case Expr::Kind::ClassicalReduce: {
    auto &R = cast<ClassicalReduceExpr>(E);
    Type T = checkClassicalExpr(*R.Operand);
    if (T.isInvalid())
      return T;
    if (!T.isBit())
      return error(E.loc(), "reduce requires a bit value");
    return E.Ty = Type::bit(1);
  }
  case Expr::Kind::ClassicalRepeat: {
    auto &R = cast<ClassicalRepeatExpr>(E);
    Type T = checkClassicalExpr(*R.Operand);
    if (T.isInvalid())
      return T;
    if (!T.isBit() || T.dim() != 1)
      return error(E.loc(), ".repeat requires a bit[1] value");
    return E.Ty = Type::bit(R.Factor->constValue());
  }
  default:
    return error(E.loc(), "expression not allowed in a classical function");
  }
}

//===----------------------------------------------------------------------===//
// Function checking
//===----------------------------------------------------------------------===//

bool Checker::checkClassicalFunction(FunctionDef &F) {
  for (const Param &P : F.Params) {
    if (!P.Ty.isBit()) {
      Diags.error(P.Loc, "classical function parameters must be bit[N]");
      return false;
    }
    Env[P.Name] = {P.Ty, false, P.Loc};
  }
  if (!F.ReturnTy.isBit()) {
    Diags.error(F.Loc, "classical function must return bit[N]");
    return false;
  }
  bool SawReturn = false;
  for (StmtPtr &S : F.Body) {
    if (SawReturn) {
      Diags.error(S->loc(), "statement after return");
      return false;
    }
    if (auto *Ret = dyn_cast<ReturnStmt>(S.get())) {
      Type T = checkClassicalExpr(*Ret->Value);
      if (T.isInvalid())
        return false;
      if (T != F.ReturnTy) {
        Diags.error(Ret->loc(), "return type mismatch: expected " +
                                    F.ReturnTy.str() + ", got " + T.str());
        return false;
      }
      SawReturn = true;
      continue;
    }
    auto *Assign = cast<AssignStmt>(S.get());
    if (Assign->Names.size() != 1) {
      Diags.error(Assign->loc(), "classical assignments bind one name");
      return false;
    }
    Type T = checkClassicalExpr(*Assign->Value);
    if (T.isInvalid())
      return false;
    Env[Assign->Names[0]] = {T, false, Assign->loc()};
  }
  if (!SawReturn) {
    Diags.error(F.Loc, "classical function must return a value");
    return false;
  }
  GlobalTypes[F.Name] = Type::cfunc(
      [&] {
        unsigned Total = 0;
        for (const Param &P : F.Params)
          Total += P.Ty.dim();
        return Total;
      }(),
      F.ReturnTy.dim());
  return true;
}

bool Checker::checkQpuFunction(FunctionDef &F) {
  unsigned QubitParams = 0;
  for (const Param &P : F.Params) {
    Env[P.Name] = {P.Ty, false, P.Loc};
    if (P.Ty.isQubit())
      ++QubitParams;
  }
  if (F.ReturnTy.isInvalid()) {
    Diags.error(F.Loc, "qpu kernel must declare a return type");
    return false;
  }

  bool SawReturn = false;
  for (StmtPtr &S : F.Body) {
    if (SawReturn) {
      Diags.error(S->loc(), "statement after return");
      return false;
    }
    if (auto *Ret = dyn_cast<ReturnStmt>(S.get())) {
      Type T = checkExpr(*Ret->Value);
      if (T.isInvalid())
        return false;
      if (T != F.ReturnTy) {
        Diags.error(Ret->loc(), "return type mismatch: expected " +
                                    F.ReturnTy.str() + ", got " + T.str());
        return false;
      }
      SawReturn = true;
      continue;
    }
    auto *Assign = cast<AssignStmt>(S.get());
    Type T = checkExpr(*Assign->Value);
    if (T.isInvalid())
      return false;
    unsigned K = Assign->Names.size();
    for (const std::string &Name : Assign->Names) {
      if (Env.count(Name)) {
        Diags.error(Assign->loc(), "redefinition of variable '" + Name +
                                       "'");
        return false;
      }
    }
    if (K == 1) {
      Env[Assign->Names[0]] = {T, false, Assign->loc()};
      continue;
    }
    // Destructuring splits a qubit/bit tuple evenly (e.g. the teleport
    // example's `alice, bob = ...`).
    if (!T.isQubit() && !T.isBit()) {
      Diags.error(Assign->loc(), "only qubit/bit tuples can be "
                                 "destructured, got " +
                                     T.str());
      return false;
    }
    if (T.dim() % K != 0) {
      Diags.error(Assign->loc(), "cannot split " + T.str() + " evenly into " +
                                     std::to_string(K) + " parts");
      return false;
    }
    unsigned Part = T.dim() / K;
    for (const std::string &Name : Assign->Names)
      Env[Name] = {T.isQubit() ? Type::qubit(Part) : Type::bit(Part), false,
                   Assign->loc()};
  }
  if (!SawReturn) {
    Diags.error(F.Loc, "qpu kernel must return a value");
    return false;
  }

  // Linearity: every qubit variable (including parameters) must be consumed.
  for (const auto &[Name, Info] : Env) {
    if (Info.Ty.isLinear() && !Info.Used) {
      Diags.error(Info.DefLoc, "qubit variable '" + Name +
                                   "' is never used; quantum values must be "
                                   "used exactly once");
      return false;
    }
  }

  // Register this kernel's value type for later functions. Only kernels of
  // shape qubit[N] -> qubit[M]/bit[M] or unit -> ... can be function values.
  Type::DataKind InK = Type::DataKind::Unit;
  unsigned InDim = 0;
  if (QubitParams == 1 && F.Params.size() == 1) {
    InK = Type::DataKind::Qubit;
    InDim = F.Params[0].Ty.dim();
  } else if (!F.Params.empty()) {
    // Not referenceable as a value; still callable as an entry point.
    return true;
  }
  Type::DataKind OutK = F.ReturnTy.isQubit() ? Type::DataKind::Qubit
                        : F.ReturnTy.isBit() ? Type::DataKind::Bit
                                             : Type::DataKind::Unit;
  unsigned OutDim =
      (F.ReturnTy.isQubit() || F.ReturnTy.isBit()) ? F.ReturnTy.dim() : 0;
  bool Rev = isReversibleFunction(F, Prog) &&
             InK == Type::DataKind::Qubit &&
             OutK == Type::DataKind::Qubit && InDim == OutDim;
  GlobalTypes[F.Name] = Type::func(InK, InDim, OutK, OutDim, Rev);
  return true;
}

/// Recursively scans for irreversible constructs.
bool containsIrreversible(const Expr &E, const Program &Prog) {
  switch (E.kind()) {
  case Expr::Kind::Measure:
  case Expr::Kind::Discard:
  case Expr::Kind::Conditional:
    return true;
  case Expr::Kind::Variable: {
    const auto &Var = cast<VariableExpr>(E);
    if (const FunctionDef *F = Prog.lookup(Var.Name))
      if (F->isQpu() && !isReversibleFunction(*F, Prog))
        return true;
    return false;
  }
  case Expr::Kind::Tensor: {
    const auto &T = cast<TensorExpr>(E);
    return containsIrreversible(*T.Lhs, Prog) ||
           containsIrreversible(*T.Rhs, Prog);
  }
  case Expr::Kind::Pipe: {
    const auto &P = cast<PipeExpr>(E);
    return containsIrreversible(*P.Value, Prog) ||
           containsIrreversible(*P.Func, Prog);
  }
  case Expr::Kind::Adjoint:
    return containsIrreversible(*cast<AdjointExpr>(E).Func, Prog);
  case Expr::Kind::Predicated:
    return containsIrreversible(*cast<PredicatedExpr>(E).Func, Prog);
  default:
    return false;
  }
}

} // namespace

bool asdf::isReversibleFunction(const FunctionDef &F, const Program &Prog) {
  if (!F.isQpu())
    return false;
  for (const StmtPtr &S : F.Body) {
    const Expr *Value = nullptr;
    if (const auto *Ret = dyn_cast<ReturnStmt>(S.get()))
      Value = Ret->Value.get();
    else
      Value = cast<AssignStmt>(S.get())->Value.get();
    if (Value && containsIrreversible(*Value, Prog))
      return false;
  }
  return true;
}

Basis asdf::evalBasis(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::QubitLiteral: {
    const auto &QL = cast<QubitLiteralExpr>(E);
    return Basis::literal(BasisLiteral({QL.toBasisVector()}));
  }
  case Expr::Kind::BasisLiteral: {
    const auto &BL = cast<BasisLiteralExpr>(E);
    std::vector<BasisVector> Vecs;
    for (const ExprPtr &V : BL.Vectors)
      Vecs.push_back(cast<QubitLiteralExpr>(V.get())->toBasisVector());
    return Basis::literal(BasisLiteral(std::move(Vecs)));
  }
  case Expr::Kind::BuiltinBasis: {
    const auto &BB = cast<BuiltinBasisExpr>(E);
    return Basis::builtin(BB.Prim, BB.Dim);
  }
  case Expr::Kind::Tensor: {
    const auto &T = cast<TensorExpr>(E);
    return evalBasis(*T.Lhs).tensor(evalBasis(*T.Rhs));
  }
  default:
    assert(false && "evalBasis on a non-basis expression");
    return Basis();
  }
}

bool asdf::typeCheckProgram(Program &Prog, DiagnosticEngine &Diags) {
  Checker C(Prog, Diags);
  return C.run() && !Diags.hadError();
}
