//===- Lexer.h - Tokenizer for the Qwerty DSL -----------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual Qwerty DSL. Python-style: newlines terminate
/// statements (a trailing backslash continues a line), and `#` or `//` start
/// comments.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_LEXER_H
#define ASDF_AST_LEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace asdf {

/// One lexed token.
struct Token {
  enum class Kind {
    Eof,
    Newline,
    Identifier,
    Integer,
    Float,
    QubitLit, ///< Contents between single quotes, e.g. p0.
    KwQpu,
    KwClassical,
    KwReturn,
    KwIf,
    KwElse,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Arrow,  ///< ->
    Pipe,   ///< |
    Shift,  ///< >>
    Plus,
    Minus,
    Amp,    ///< &
    Caret,  ///< ^
    Tilde,  ///< ~
    At,     ///< @
    Dot,
    Equals,
    Star,
    Slash,
    Param,  ///< $name float-parameter placeholder.
  };

  Kind TheKind = Kind::Eof;
  std::string Text;     ///< Identifier/qubit-literal spelling.
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  SourceLoc Loc;

  bool is(Kind K) const { return TheKind == K; }
  /// Human-readable token description for diagnostics.
  std::string describe() const;
};

/// Tokenizes an entire source buffer up front.
class Lexer {
public:
  Lexer(const std::string &Source, DiagnosticEngine &Diags);

  /// All tokens, ending with Eof. Consecutive newlines are collapsed.
  const std::vector<Token> &tokens() const { return Tokens; }

private:
  void lex(const std::string &Source, DiagnosticEngine &Diags);

  std::vector<Token> Tokens;
};

} // namespace asdf

#endif // ASDF_AST_LEXER_H
