//===- Parser.h - Recursive-descent parser for the Qwerty DSL -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual Qwerty DSL into the untyped AST (dimension variables
/// still symbolic). Operator precedence, loosest to tightest:
///
///   e if c else e   conditional
///   |               pipe (function application)
///   &               predication (or bitwise AND in classical functions)
///   >>              basis translation
///   +               tensor product
///   ~  -            unary adjoint / phase negation
///   e[N]  e.attr    broadcast, attribute access
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_PARSER_H
#define ASDF_AST_PARSER_H

#include "ast/AST.h"
#include "ast/Lexer.h"

#include <memory>

namespace asdf {

/// Parses \p Source into a Program. Returns null (with diagnostics) on any
/// syntax error.
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      DiagnosticEngine &Diags);

} // namespace asdf

#endif // ASDF_AST_PARSER_H
