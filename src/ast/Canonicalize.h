//===- Canonicalize.h - AST canonicalization (§4.2) -----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-level rewrites performed after type checking (§4.2):
///   - ~~f               ->  f
///   - ~(b1 >> b2)       ->  b2 >> b1
///   - std[N] & f        ->  id[N] + f        (fully-spanning predicates)
///   - b3 & (b1 >> b2)   ->  b3 + b1 >> b3 + b2
///   - b.flip            ->  the equivalent two-vector basis translation
///   - ~(b & f)          ->  b & ~f
///   - adjoints of self-adjoint values (flip, f.xor, f.sign, id) dropped
///
/// Doing these at the AST level takes ~5 lines each versus ~50 at the IR
/// level, as the paper observes.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_CANONICALIZE_H
#define ASDF_AST_CANONICALIZE_H

#include "ast/AST.h"

namespace asdf {

/// Canonicalizes a checked program in place. Types remain valid.
void canonicalizeProgram(Program &Prog);

/// Canonicalizes one expression tree; returns the replacement root.
ExprPtr canonicalizeExpr(ExprPtr E);

} // namespace asdf

#endif // ASDF_AST_CANONICALIZE_H
