//===- Canonicalize.cpp - AST canonicalization (§4.2) ---------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Canonicalize.h"

#include "ast/TypeChecker.h"

#include "basis/SpanCheck.h"

#include <cmath>

using namespace asdf;

namespace {

/// Builds a BasisLiteralExpr AST node from a (single-literal) Basis value.
ExprPtr basisToExpr(const Basis &B, SourceLoc Loc) {
  ExprPtr Result;
  for (const BasisElement &El : B.elements()) {
    ExprPtr Piece;
    if (El.isBuiltin()) {
      auto BB = std::make_unique<BuiltinBasisExpr>();
      BB->Prim = El.prim();
      BB->Dim = El.dim();
      BB->Ty = Type::basis(El.dim());
      BB->setLoc(Loc);
      Piece = std::move(BB);
    } else {
      auto BL = std::make_unique<BasisLiteralExpr>();
      BL->Ty = Type::basis(El.dim());
      BL->setLoc(Loc);
      for (const BasisVector &V : El.literalValue().Vectors) {
        auto QL = std::make_unique<QubitLiteralExpr>();
        QL->setLoc(Loc);
        for (unsigned I = 0; I < V.Dim; ++I)
          QL->Symbols.push_back(
              symbolFor(V.Prim, bitAt(V.Eigenbits, V.Dim, I)));
        if (V.HasPhase) {
          QL->HasPhase = true;
          QL->PhaseDegrees = V.Phase * 180.0 / M_PI;
        }
        QL->Ty = Type::basis(V.Dim);
        BL->Vectors.push_back(std::move(QL));
      }
      Piece = std::move(BL);
    }
    if (!Result) {
      Result = std::move(Piece);
      continue;
    }
    auto T = std::make_unique<TensorExpr>();
    T->setLoc(Loc);
    unsigned Dim = Result->Ty.dim() + Piece->Ty.dim();
    T->Lhs = std::move(Result);
    T->Rhs = std::move(Piece);
    T->Ty = Type::basis(Dim);
    Result = std::move(T);
  }
  return Result;
}

/// True for function values that are their own adjoint, letting us drop '~'.
bool isSelfAdjoint(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Identity:
  case Expr::Kind::EmbedXor:  // U_f: XOR into target twice cancels.
  case Expr::Kind::EmbedSign: // Diagonal +-1 matrix.
    return true;
  default:
    return false;
  }
}

ExprPtr canonicalize(ExprPtr E);

/// Recursion helper: canonicalizes every child in place.
void canonicalizeChildren(Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Tensor: {
    auto &T = cast<TensorExpr>(E);
    T.Lhs = canonicalize(std::move(T.Lhs));
    T.Rhs = canonicalize(std::move(T.Rhs));
    return;
  }
  case Expr::Kind::Pipe: {
    auto &P = cast<PipeExpr>(E);
    P.Value = canonicalize(std::move(P.Value));
    P.Func = canonicalize(std::move(P.Func));
    return;
  }
  case Expr::Kind::Adjoint: {
    auto &A = cast<AdjointExpr>(E);
    A.Func = canonicalize(std::move(A.Func));
    return;
  }
  case Expr::Kind::Predicated: {
    auto &P = cast<PredicatedExpr>(E);
    P.Func = canonicalize(std::move(P.Func));
    return;
  }
  case Expr::Kind::Conditional: {
    auto &C = cast<ConditionalExpr>(E);
    C.ThenExpr = canonicalize(std::move(C.ThenExpr));
    C.ElseExpr = canonicalize(std::move(C.ElseExpr));
    return;
  }
  default:
    return;
  }
}

ExprPtr canonicalize(ExprPtr E) {
  canonicalizeChildren(*E);

  switch (E->kind()) {
  case Expr::Kind::Adjoint: {
    auto *A = cast<AdjointExpr>(E.get());
    // ~~f -> f.
    if (auto *Inner = dyn_cast<AdjointExpr>(A->Func.get()))
      return std::move(Inner->Func);
    // ~(b1 >> b2) -> b2 >> b1.
    if (auto *BT = dyn_cast<BasisTranslationExpr>(A->Func.get())) {
      std::swap(BT->InBasis, BT->OutBasis);
      return std::move(A->Func);
    }
    // ~(b & f) -> b & ~f (predication and adjoint commute).
    if (isa<PredicatedExpr>(A->Func.get())) {
      ExprPtr Pred = std::move(A->Func);
      auto *P = cast<PredicatedExpr>(Pred.get());
      auto NewAdj = std::make_unique<AdjointExpr>();
      NewAdj->setLoc(E->loc());
      NewAdj->Ty = P->Func->Ty;
      NewAdj->Func = std::move(P->Func);
      P->Func = canonicalize(std::move(NewAdj));
      return Pred;
    }
    // Adjoint of a self-adjoint function drops the '~'.
    if (isSelfAdjoint(*A->Func))
      return std::move(A->Func);
    return E;
  }

  case Expr::Kind::Flip: {
    // b.flip -> two-vector basis translation {v1,v2} >> {v2,v1}.
    auto *F = cast<FlipExpr>(E.get());
    Basis B = evalBasis(*F->BasisOperand);
    assert(B.size() == 1 && "flip operand must be a single element");
    const BasisElement &El = B.elements().front();
    BasisLiteral Lit = El.isLiteral()
                           ? El.literalValue()
                           : builtinToLiteral(El.prim(), El.dim());
    assert(Lit.Vectors.size() == 2 && "flip needs exactly two vectors");
    BasisLiteral Swapped = Lit;
    std::swap(Swapped.Vectors[0], Swapped.Vectors[1]);
    auto BT = std::make_unique<BasisTranslationExpr>();
    BT->setLoc(E->loc());
    BT->InBasis = basisToExpr(Basis::literal(Lit), E->loc());
    BT->OutBasis = basisToExpr(Basis::literal(Swapped), E->loc());
    BT->Ty = Type::revFunc(Lit.Dim);
    return BT;
  }

  case Expr::Kind::Predicated: {
    auto *P = cast<PredicatedExpr>(E.get());
    Basis PredBasis = evalBasis(*P->PredBasis);
    // std[N] & f -> id[N] + f (because std[N] fully spans).
    if (PredBasis.fullySpans()) {
      auto Id = std::make_unique<IdentityExpr>();
      Id->Dim = PredBasis.dim();
      Id->Ty = Type::revFunc(PredBasis.dim());
      Id->setLoc(E->loc());
      auto T = std::make_unique<TensorExpr>();
      T->setLoc(E->loc());
      T->Ty = E->Ty;
      T->Lhs = std::move(Id);
      T->Rhs = std::move(P->Func);
      return T;
    }
    // b3 & (b1 >> b2) -> b3 + b1 >> b3 + b2.
    if (auto *BT = dyn_cast<BasisTranslationExpr>(P->Func.get())) {
      auto NewBT = std::make_unique<BasisTranslationExpr>();
      NewBT->setLoc(E->loc());
      NewBT->Ty = E->Ty;
      auto MakeSide = [&](ExprPtr Side) {
        auto T = std::make_unique<TensorExpr>();
        T->setLoc(E->loc());
        unsigned Dim = PredBasis.dim() + Side->Ty.dim();
        T->Lhs = basisToExpr(PredBasis, E->loc());
        T->Rhs = std::move(Side);
        T->Ty = Type::basis(Dim);
        return T;
      };
      NewBT->InBasis = MakeSide(std::move(BT->InBasis));
      NewBT->OutBasis = MakeSide(std::move(BT->OutBasis));
      return NewBT;
    }
    return E;
  }

  default:
    return E;
  }
}

} // namespace

ExprPtr asdf::canonicalizeExpr(ExprPtr E) { return canonicalize(std::move(E)); }

void asdf::canonicalizeProgram(Program &Prog) {
  for (auto &F : Prog.Functions) {
    if (!F->isQpu())
      continue;
    for (StmtPtr &S : F->Body) {
      if (auto *Ret = dyn_cast<ReturnStmt>(S.get()))
        Ret->Value = canonicalize(std::move(Ret->Value));
      else if (auto *Assign = dyn_cast<AssignStmt>(S.get()))
        Assign->Value = canonicalize(std::move(Assign->Value));
    }
  }
}
