//===- Expand.h - Dimension variable inference and AST expansion ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST expansion (§4): infers dimension variables from captures when
/// possible, substitutes constants for all dimension-variable expressions,
/// folds phase arithmetic, collapses broadcasts (expr[N]), and splices
/// capture values (classical bit strings and classical-function references)
/// into the AST. After expansion the AST contains only concrete dimensions.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_EXPAND_H
#define ASDF_AST_EXPAND_H

#include "ast/AST.h"

#include <map>
#include <string>
#include <vector>

namespace asdf {

/// A compile-time capture value bound to a function parameter, standing in
/// for the Python closure captures of the original Qwerty embedding.
struct CaptureValue {
  enum class Kind { Bits, ClassicalFunc };
  Kind TheKind = Kind::Bits;
  std::vector<bool> Bits;   ///< For Kind::Bits.
  std::string FuncName;     ///< For Kind::ClassicalFunc.

  static CaptureValue bits(std::vector<bool> B) {
    CaptureValue V;
    V.TheKind = Kind::Bits;
    V.Bits = std::move(B);
    return V;
  }
  static CaptureValue bitsFromString(const std::string &S) {
    std::vector<bool> B;
    B.reserve(S.size());
    for (char C : S)
      B.push_back(C == '1');
    return bits(std::move(B));
  }
  static CaptureValue classicalFunc(std::string Name) {
    CaptureValue V;
    V.TheKind = Kind::ClassicalFunc;
    V.FuncName = std::move(Name);
    return V;
  }
};

/// Driver-provided bindings for one compilation: explicit dimension-variable
/// values plus per-function capture values (function name -> param name ->
/// capture).
struct ProgramBindings {
  std::map<std::string, int64_t> DimVars;
  std::map<std::string, std::map<std::string, CaptureValue>> Captures;
};

/// Expands \p Prog under \p Bindings. Dimension variables not explicitly
/// bound are inferred from bit-string captures (a bit[N] parameter bound to
/// an L-bit capture infers N = L). Returns null on failure.
std::unique_ptr<Program> expandProgram(const Program &Prog,
                                       const ProgramBindings &Bindings,
                                       DiagnosticEngine &Diags);

} // namespace asdf

#endif // ASDF_AST_EXPAND_H
