//===- Parser.cpp - Recursive-descent parser for the Qwerty DSL -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

using namespace asdf;

namespace {

using TK = Token::Kind;

class Parser {
public:
  Parser(const std::vector<Token> &Tokens, DiagnosticEngine &Diags)
      : Tokens(Tokens), Diags(Diags) {}

  std::unique_ptr<Program> parseProgram();

private:
  const std::vector<Token> &Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  /// True while parsing a `classical` function body: &, |, ^, ~ become
  /// bitwise operators instead of predication/pipe/adjoint.
  bool InClassical = false;
  /// $param names in first-occurrence order (copied into the Program).
  std::vector<std::string> FloatParams;

  /// Interns a $param name, returning its stable index.
  int paramIndex(const std::string &Name) {
    for (size_t I = 0; I < FloatParams.size(); ++I)
      if (FloatParams[I] == Name)
        return static_cast<int>(I);
    FloatParams.push_back(Name);
    return static_cast<int>(FloatParams.size() - 1);
  }

  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TK K) const { return peek().is(K); }
  bool match(TK K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TK K, const char *What) {
    if (match(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + What + ", found " +
                                peek().describe());
    return false;
  }
  void skipNewlines() {
    while (match(TK::Newline))
      ;
  }

  std::unique_ptr<FunctionDef> parseFunction();
  bool parseParam(Param &P);
  bool parseTypeAnnot(TypeAnnot &A);
  std::unique_ptr<DimExpr> parseDimExpr();
  std::unique_ptr<DimExpr> parseDimTerm();
  std::unique_ptr<DimExpr> parseDimAtom();
  StmtPtr parseStmt();

  // Quantum expression grammar.
  ExprPtr parseExpr();
  ExprPtr parseConditional();
  ExprPtr parsePipe();
  ExprPtr parsePredication();
  ExprPtr parseTranslation();
  ExprPtr parseTensor();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseBasisLiteral();
  ExprPtr parseQubitLiteral();
  ExprPtr parseAttribute(ExprPtr Base, SourceLoc Loc);
  ExprPtr parseFloatExpr();
  ExprPtr parseFloatTerm();
  ExprPtr parseFloatAtom();
};

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  skipNewlines();
  while (!check(TK::Eof)) {
    std::unique_ptr<FunctionDef> F = parseFunction();
    if (!F)
      return nullptr;
    if (Prog->lookup(F->Name)) {
      Diags.error(F->Loc, "redefinition of function '" + F->Name + "'");
      return nullptr;
    }
    Prog->Functions.push_back(std::move(F));
    skipNewlines();
  }
  Prog->FloatParams = std::move(FloatParams);
  return Prog;
}

std::unique_ptr<FunctionDef> Parser::parseFunction() {
  auto F = std::make_unique<FunctionDef>();
  F->Loc = peek().Loc;
  if (match(TK::KwQpu)) {
    F->TheKind = FunctionDef::Kind::Qpu;
  } else if (match(TK::KwClassical)) {
    F->TheKind = FunctionDef::Kind::Classical;
  } else {
    Diags.error(peek().Loc, "expected 'qpu' or 'classical' function, found " +
                                peek().describe());
    return nullptr;
  }
  InClassical = F->isClassical();

  if (!check(TK::Identifier)) {
    Diags.error(peek().Loc, "expected function name");
    return nullptr;
  }
  F->Name = advance().Text;

  // Dimension variables: name[N, M].
  if (match(TK::LBracket)) {
    do {
      if (!check(TK::Identifier)) {
        Diags.error(peek().Loc, "expected dimension variable name");
        return nullptr;
      }
      F->DimVars.push_back(advance().Text);
    } while (match(TK::Comma));
    if (!expect(TK::RBracket, "']'"))
      return nullptr;
  }

  if (!expect(TK::LParen, "'('"))
    return nullptr;
  if (!check(TK::RParen)) {
    do {
      Param P;
      if (!parseParam(P))
        return nullptr;
      F->Params.push_back(std::move(P));
    } while (match(TK::Comma));
  }
  if (!expect(TK::RParen, "')'"))
    return nullptr;

  if (match(TK::Arrow)) {
    if (!parseTypeAnnot(F->ReturnAnnot))
      return nullptr;
  }

  if (!expect(TK::LBrace, "'{'"))
    return nullptr;
  skipNewlines();
  while (!check(TK::RBrace)) {
    if (check(TK::Eof)) {
      Diags.error(peek().Loc, "unexpected end of input inside function body");
      return nullptr;
    }
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    F->Body.push_back(std::move(S));
    skipNewlines();
  }
  advance(); // consume '}'
  return F;
}

bool Parser::parseParam(Param &P) {
  if (!check(TK::Identifier)) {
    Diags.error(peek().Loc, "expected parameter name");
    return false;
  }
  P.Loc = peek().Loc;
  P.Name = advance().Text;
  if (!expect(TK::Colon, "':' after parameter name"))
    return false;
  return parseTypeAnnot(P.Annot);
}

bool Parser::parseTypeAnnot(TypeAnnot &A) {
  if (!check(TK::Identifier)) {
    Diags.error(peek().Loc, "expected type");
    return false;
  }
  std::string Name = advance().Text;
  if (Name == "qubit")
    A.TheKind = TypeAnnot::Kind::Qubit;
  else if (Name == "bit")
    A.TheKind = TypeAnnot::Kind::Bit;
  else if (Name == "cfunc")
    A.TheKind = TypeAnnot::Kind::CFunc;
  else if (Name == "rev_func")
    A.TheKind = TypeAnnot::Kind::RevFunc;
  else {
    Diags.error(peek().Loc, "unknown type '" + Name + "'");
    return false;
  }
  A.Dim = DimExpr::constant(1);
  if (match(TK::LBracket)) {
    A.Dim = parseDimExpr();
    if (!A.Dim)
      return false;
    if (A.TheKind == TypeAnnot::Kind::CFunc) {
      if (!expect(TK::Comma, "',' in cfunc[N, M]"))
        return false;
      A.Dim2 = parseDimExpr();
      if (!A.Dim2)
        return false;
    }
    if (!expect(TK::RBracket, "']'"))
      return false;
  } else if (A.TheKind == TypeAnnot::Kind::CFunc) {
    Diags.error(peek().Loc, "cfunc requires dimensions: cfunc[N, M]");
    return false;
  }
  if (!A.Dim2)
    A.Dim2 = DimExpr::constant(1);
  return true;
}

std::unique_ptr<DimExpr> Parser::parseDimExpr() {
  std::unique_ptr<DimExpr> Lhs = parseDimTerm();
  if (!Lhs)
    return nullptr;
  while (check(TK::Plus) || check(TK::Minus)) {
    DimExpr::Kind K = advance().is(TK::Plus) ? DimExpr::Kind::Add
                                             : DimExpr::Kind::Sub;
    std::unique_ptr<DimExpr> Rhs = parseDimTerm();
    if (!Rhs)
      return nullptr;
    Lhs = DimExpr::binary(K, std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

std::unique_ptr<DimExpr> Parser::parseDimTerm() {
  std::unique_ptr<DimExpr> Lhs = parseDimAtom();
  if (!Lhs)
    return nullptr;
  while (match(TK::Star)) {
    std::unique_ptr<DimExpr> Rhs = parseDimAtom();
    if (!Rhs)
      return nullptr;
    Lhs = DimExpr::binary(DimExpr::Kind::Mul, std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

std::unique_ptr<DimExpr> Parser::parseDimAtom() {
  if (check(TK::Integer))
    return DimExpr::constant(advance().IntValue);
  if (check(TK::Identifier))
    return DimExpr::var(advance().Text);
  if (match(TK::LParen)) {
    std::unique_ptr<DimExpr> E = parseDimExpr();
    if (!E || !expect(TK::RParen, "')'"))
      return nullptr;
    return E;
  }
  Diags.error(peek().Loc, "expected dimension expression, found " +
                              peek().describe());
  return nullptr;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;
  if (match(TK::KwReturn)) {
    auto S = std::make_unique<ReturnStmt>();
    S->setLoc(Loc);
    S->Value = parseExpr();
    if (!S->Value)
      return nullptr;
    if (!check(TK::RBrace) && !expect(TK::Newline, "end of statement"))
      return nullptr;
    return S;
  }
  // Assignment: name (, name)* = expr.
  auto S = std::make_unique<AssignStmt>();
  S->setLoc(Loc);
  do {
    if (!check(TK::Identifier)) {
      Diags.error(peek().Loc, "expected variable name, found " +
                                  peek().describe());
      return nullptr;
    }
    S->Names.push_back(advance().Text);
  } while (match(TK::Comma));
  if (!expect(TK::Equals, "'=' in assignment"))
    return nullptr;
  S->Value = parseExpr();
  if (!S->Value)
    return nullptr;
  if (!check(TK::RBrace) && !expect(TK::Newline, "end of statement"))
    return nullptr;
  return S;
}

ExprPtr Parser::parseExpr() { return parseConditional(); }

ExprPtr Parser::parseConditional() {
  ExprPtr Then = parsePipe();
  if (!Then)
    return nullptr;
  if (!check(TK::KwIf))
    return Then;
  SourceLoc Loc = advance().Loc;
  auto E = std::make_unique<ConditionalExpr>();
  E->setLoc(Loc);
  E->ThenExpr = std::move(Then);
  E->Cond = parsePipe();
  if (!E->Cond)
    return nullptr;
  if (!expect(TK::KwElse, "'else' in conditional expression"))
    return nullptr;
  E->ElseExpr = parseConditional();
  if (!E->ElseExpr)
    return nullptr;
  return E;
}

ExprPtr Parser::parsePipe() {
  ExprPtr Lhs = parsePredication();
  if (!Lhs)
    return nullptr;
  while (check(TK::Pipe)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parsePredication();
    if (!Rhs)
      return nullptr;
    if (InClassical) {
      auto E = std::make_unique<ClassicalBinaryExpr>();
      E->Op = ClassicalBinaryExpr::OpKind::Or;
      E->Lhs = std::move(Lhs);
      E->Rhs = std::move(Rhs);
      E->setLoc(Loc);
      Lhs = std::move(E);
    } else {
      auto E = std::make_unique<PipeExpr>();
      E->Value = std::move(Lhs);
      E->Func = std::move(Rhs);
      E->setLoc(Loc);
      Lhs = std::move(E);
    }
  }
  return Lhs;
}

ExprPtr Parser::parsePredication() {
  ExprPtr Lhs = InClassical ? parseTensor() : parseTranslation();
  if (!Lhs)
    return nullptr;
  while (check(TK::Amp) || (InClassical && check(TK::Caret))) {
    bool IsXor = check(TK::Caret);
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = InClassical ? parseTensor() : parseTranslation();
    if (!Rhs)
      return nullptr;
    if (InClassical) {
      auto E = std::make_unique<ClassicalBinaryExpr>();
      E->Op = IsXor ? ClassicalBinaryExpr::OpKind::Xor
                    : ClassicalBinaryExpr::OpKind::And;
      E->Lhs = std::move(Lhs);
      E->Rhs = std::move(Rhs);
      E->setLoc(Loc);
      Lhs = std::move(E);
    } else {
      auto E = std::make_unique<PredicatedExpr>();
      E->PredBasis = std::move(Lhs);
      E->Func = std::move(Rhs);
      E->setLoc(Loc);
      Lhs = std::move(E);
    }
  }
  return Lhs;
}

ExprPtr Parser::parseTranslation() {
  ExprPtr Lhs = parseTensor();
  if (!Lhs)
    return nullptr;
  if (!check(TK::Shift))
    return Lhs;
  SourceLoc Loc = advance().Loc;
  auto E = std::make_unique<BasisTranslationExpr>();
  E->setLoc(Loc);
  E->InBasis = std::move(Lhs);
  E->OutBasis = parseTensor();
  if (!E->OutBasis)
    return nullptr;
  return E;
}

ExprPtr Parser::parseTensor() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (check(TK::Plus)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<TensorExpr>();
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    E->setLoc(Loc);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseUnary() {
  if (check(TK::Tilde)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    if (InClassical) {
      auto E = std::make_unique<ClassicalNotExpr>();
      E->Operand = std::move(Operand);
      E->setLoc(Loc);
      return E;
    }
    auto E = std::make_unique<AdjointExpr>();
    E->Func = std::move(Operand);
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Minus)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    // -'p' adds a phase of pi (180 degrees) to a qubit literal.
    if (auto *QL = dyn_cast<QubitLiteralExpr>(Operand.get())) {
      QL->HasPhase = true;
      QL->PhaseDegrees += 180.0;
      return Operand;
    }
    if (auto *FL = dyn_cast<FloatLiteralExpr>(Operand.get())) {
      FL->Value = -FL->Value;
      return Operand;
    }
    auto E = std::make_unique<FloatBinaryExpr>();
    E->Op = FloatBinaryExpr::OpKind::Sub;
    E->Lhs = std::make_unique<FloatLiteralExpr>();
    E->Rhs = std::move(Operand);
    E->setLoc(Loc);
    return E;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    if (check(TK::LBracket)) {
      SourceLoc Loc = advance().Loc;
      std::unique_ptr<DimExpr> Factor = parseDimExpr();
      if (!Factor || !expect(TK::RBracket, "']'"))
        return nullptr;
      // pm[4] on a 1-qubit builtin basis is a dimension, not a broadcast of
      // elements, but the two coincide for primitive bases; expansion
      // collapses Broadcast(BuiltinBasis) into a wider BuiltinBasis.
      auto B = std::make_unique<BroadcastExpr>();
      B->Operand = std::move(E);
      B->Factor = std::move(Factor);
      B->setLoc(Loc);
      E = std::move(B);
      continue;
    }
    if (check(TK::Dot)) {
      SourceLoc Loc = advance().Loc;
      E = parseAttribute(std::move(E), Loc);
      if (!E)
        return nullptr;
      continue;
    }
    if (check(TK::At)) {
      // Phase on a qubit literal: '1'@45 or '1'@(360/2).
      SourceLoc Loc = advance().Loc;
      auto *QL = dyn_cast<QubitLiteralExpr>(E.get());
      if (!QL) {
        Diags.error(Loc, "'@' phase is only valid on a qubit literal");
        return nullptr;
      }
      ExprPtr Phase = parseFloatAtom();
      if (!Phase)
        return nullptr;
      if (auto *FL = dyn_cast<FloatLiteralExpr>(Phase.get())) {
        QL->HasPhase = true;
        QL->PhaseDegrees += FL->Value;
      } else {
        QL->HasPhase = true;
        QL->PhaseExpr = std::move(Phase);
      }
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parseAttribute(ExprPtr Base, SourceLoc Loc) {
  if (!check(TK::Identifier)) {
    Diags.error(peek().Loc, "expected attribute name after '.'");
    return nullptr;
  }
  std::string Name = advance().Text;
  auto TakesCall = [&](bool Required) -> bool {
    if (match(TK::LParen))
      return expect(TK::RParen, "')'");
    if (Required) {
      Diags.error(peek().Loc, "expected '()' after ." + Name);
      return false;
    }
    return true;
  };

  if (Name == "measure") {
    auto E = std::make_unique<MeasureExpr>();
    E->BasisOperand = std::move(Base);
    E->setLoc(Loc);
    return E;
  }
  if (Name == "flip") {
    auto E = std::make_unique<FlipExpr>();
    E->BasisOperand = std::move(Base);
    E->setLoc(Loc);
    return E;
  }
  if (Name == "rotate") {
    if (!expect(TK::LParen, "'(' after .rotate"))
      return nullptr;
    auto E = std::make_unique<RotateExpr>();
    E->BasisOperand = std::move(Base);
    E->Angle = parseFloatExpr();
    if (!E->Angle || !expect(TK::RParen, "')'"))
      return nullptr;
    E->setLoc(Loc);
    return E;
  }
  if (Name == "sign") {
    auto E = std::make_unique<EmbedSignExpr>();
    E->Func = std::move(Base);
    E->setLoc(Loc);
    return E;
  }
  if (Name == "xor") {
    auto E = std::make_unique<EmbedXorExpr>();
    E->Func = std::move(Base);
    E->setLoc(Loc);
    return E;
  }
  if (Name == "xor_reduce" || Name == "and_reduce" || Name == "or_reduce") {
    if (!TakesCall(/*Required=*/true))
      return nullptr;
    auto E = std::make_unique<ClassicalReduceExpr>();
    E->Op = Name == "xor_reduce"   ? ClassicalReduceExpr::OpKind::Xor
            : Name == "and_reduce" ? ClassicalReduceExpr::OpKind::And
                                   : ClassicalReduceExpr::OpKind::Or;
    E->Operand = std::move(Base);
    E->setLoc(Loc);
    return E;
  }
  if (Name == "repeat") {
    if (!expect(TK::LParen, "'(' after .repeat"))
      return nullptr;
    auto E = std::make_unique<ClassicalRepeatExpr>();
    E->Operand = std::move(Base);
    E->Factor = parseDimExpr();
    if (!E->Factor || !expect(TK::RParen, "')'"))
      return nullptr;
    E->setLoc(Loc);
    return E;
  }
  Diags.error(Loc, "unknown attribute '." + Name + "'");
  return nullptr;
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TK::QubitLit))
    return parseQubitLiteral();
  if (check(TK::LBrace))
    return parseBasisLiteral();
  if (match(TK::LParen)) {
    ExprPtr E = parseExpr();
    if (!E || !expect(TK::RParen, "')'"))
      return nullptr;
    return E;
  }
  if (check(TK::Integer)) {
    auto E = std::make_unique<FloatLiteralExpr>();
    E->Value = static_cast<double>(advance().IntValue);
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Float)) {
    auto E = std::make_unique<FloatLiteralExpr>();
    E->Value = advance().FloatValue;
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Identifier)) {
    std::string Name = peek().Text;
    if (Name == "std" || Name == "pm" || Name == "ij" || Name == "fourier") {
      advance();
      auto E = std::make_unique<BuiltinBasisExpr>();
      E->Prim = Name == "std"  ? PrimitiveBasis::Std
                : Name == "pm" ? PrimitiveBasis::Pm
                : Name == "ij" ? PrimitiveBasis::Ij
                               : PrimitiveBasis::Fourier;
      E->setLoc(Loc);
      return E;
    }
    if (Name == "id") {
      advance();
      auto E = std::make_unique<IdentityExpr>();
      E->setLoc(Loc);
      return E;
    }
    if (Name == "discard") {
      advance();
      auto E = std::make_unique<DiscardExpr>();
      E->setLoc(Loc);
      return E;
    }
    advance();
    auto E = std::make_unique<VariableExpr>();
    E->Name = std::move(Name);
    E->setLoc(Loc);
    return E;
  }
  Diags.error(Loc, "expected expression, found " + peek().describe());
  return nullptr;
}

ExprPtr Parser::parseQubitLiteral() {
  const Token &T = advance();
  auto E = std::make_unique<QubitLiteralExpr>();
  E->setLoc(T.Loc);
  for (char C : T.Text) {
    switch (C) {
    case '0':
      E->Symbols.push_back(QubitSymbol::Zero);
      break;
    case '1':
      E->Symbols.push_back(QubitSymbol::One);
      break;
    case 'p':
      E->Symbols.push_back(QubitSymbol::Plus);
      break;
    case 'm':
      E->Symbols.push_back(QubitSymbol::Minus);
      break;
    case 'i':
      E->Symbols.push_back(QubitSymbol::ImagI);
      break;
    case 'j':
      E->Symbols.push_back(QubitSymbol::ImagJ);
      break;
    default:
      Diags.error(T.Loc, std::string("invalid qubit literal character '") +
                             C + "'");
      return nullptr;
    }
  }
  if (E->Symbols.empty()) {
    Diags.error(T.Loc, "empty qubit literal");
    return nullptr;
  }
  return E;
}

ExprPtr Parser::parseBasisLiteral() {
  SourceLoc Loc = advance().Loc; // consume '{'
  auto E = std::make_unique<BasisLiteralExpr>();
  E->setLoc(Loc);
  do {
    skipNewlines();
    bool Negated = match(TK::Minus);
    if (!check(TK::QubitLit)) {
      Diags.error(peek().Loc, "expected qubit literal in basis literal");
      return nullptr;
    }
    ExprPtr V = parseQubitLiteral();
    if (!V)
      return nullptr;
    auto *QL = cast<QubitLiteralExpr>(V.get());
    // Optional broadcast: {'p'[N]} (Fig. 8 syntax). A leading '-' or a
    // trailing @phase applies to the broadcast result as a whole.
    BroadcastExpr *BC = nullptr;
    if (match(TK::LBracket)) {
      auto NewBC = std::make_unique<BroadcastExpr>();
      NewBC->setLoc(V->loc());
      NewBC->Factor = parseDimExpr();
      if (!NewBC->Factor || !expect(TK::RBracket, "']'"))
        return nullptr;
      NewBC->Operand = std::move(V);
      BC = NewBC.get();
      V = std::move(NewBC);
    }
    auto AddPhase = [&](double Degrees) {
      if (BC) {
        BC->HasOuterPhase = true;
        BC->OuterPhaseDegrees += Degrees;
      } else {
        QL->HasPhase = true;
        QL->PhaseDegrees += Degrees;
      }
    };
    if (Negated)
      AddPhase(180.0);
    // Optional @phase.
    if (match(TK::At)) {
      ExprPtr Phase = parseFloatAtom();
      if (!Phase)
        return nullptr;
      if (auto *FL = dyn_cast<FloatLiteralExpr>(Phase.get())) {
        AddPhase(FL->Value);
      } else if (!BC) {
        QL->HasPhase = true;
        QL->PhaseExpr = std::move(Phase);
      } else {
        Diags.error(peek().Loc,
                    "symbolic phases on broadcast vectors are unsupported");
        return nullptr;
      }
    }
    E->Vectors.push_back(std::move(V));
    skipNewlines();
  } while (match(TK::Comma));
  if (!expect(TK::RBrace, "'}'"))
    return nullptr;
  return E;
}

ExprPtr Parser::parseFloatExpr() {
  ExprPtr Lhs = parseFloatTerm();
  if (!Lhs)
    return nullptr;
  while (check(TK::Plus) || check(TK::Minus)) {
    bool IsAdd = advance().is(TK::Plus);
    ExprPtr Rhs = parseFloatTerm();
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<FloatBinaryExpr>();
    E->Op = IsAdd ? FloatBinaryExpr::OpKind::Add
                  : FloatBinaryExpr::OpKind::Sub;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseFloatTerm() {
  ExprPtr Lhs = parseFloatAtom();
  if (!Lhs)
    return nullptr;
  while (check(TK::Star) || check(TK::Slash)) {
    bool IsMul = advance().is(TK::Star);
    ExprPtr Rhs = parseFloatAtom();
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<FloatBinaryExpr>();
    E->Op = IsMul ? FloatBinaryExpr::OpKind::Mul
                  : FloatBinaryExpr::OpKind::Div;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseFloatAtom() {
  SourceLoc Loc = peek().Loc;
  if (check(TK::Integer)) {
    auto E = std::make_unique<FloatLiteralExpr>();
    E->Value = static_cast<double>(advance().IntValue);
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Float)) {
    auto E = std::make_unique<FloatLiteralExpr>();
    E->Value = advance().FloatValue;
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Minus)) {
    advance();
    ExprPtr Inner = parseFloatAtom();
    if (!Inner)
      return nullptr;
    auto E = std::make_unique<FloatBinaryExpr>();
    E->Op = FloatBinaryExpr::OpKind::Sub;
    auto Zero = std::make_unique<FloatLiteralExpr>();
    E->Lhs = std::move(Zero);
    E->Rhs = std::move(Inner);
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Identifier)) {
    // A dimension variable used in a phase expression, e.g. 360/2*K.
    auto E = std::make_unique<VariableExpr>();
    E->Name = advance().Text;
    E->setLoc(Loc);
    return E;
  }
  if (check(TK::Param)) {
    auto E = std::make_unique<FloatParamExpr>();
    E->Name = advance().Text;
    E->Index = paramIndex(E->Name);
    E->setLoc(Loc);
    return E;
  }
  if (match(TK::LParen)) {
    ExprPtr E = parseFloatExpr();
    if (!E || !expect(TK::RParen, "')'"))
      return nullptr;
    return E;
  }
  Diags.error(Loc, "expected angle expression, found " + peek().describe());
  return nullptr;
}

} // namespace

std::unique_ptr<Program> asdf::parseProgram(const std::string &Source,
                                            DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  if (Diags.hadError())
    return nullptr;
  Parser P(Lex.tokens(), Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hadError())
    return nullptr;
  return Prog;
}
