//===- AST.cpp - Typed Qwerty abstract syntax tree ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

#include <cmath>
#include <sstream>

using namespace asdf;

std::string Type::str() const {
  std::ostringstream OS;
  switch (TheKind) {
  case Kind::Invalid:
    return "<invalid>";
  case Kind::Unit:
    return "unit";
  case Kind::Qubit:
    OS << "qubit[" << InDim << ']';
    return OS.str();
  case Kind::Bit:
    OS << "bit[" << InDim << ']';
    return OS.str();
  case Kind::Basis:
    OS << "basis[" << InDim << ']';
    return OS.str();
  case Kind::Func: {
    auto Part = [&](DataKind K, unsigned Dim) {
      switch (K) {
      case DataKind::Unit:
        OS << "unit";
        break;
      case DataKind::Qubit:
        OS << "qubit[" << Dim << ']';
        break;
      case DataKind::Bit:
        OS << "bit[" << Dim << ']';
        break;
      }
    };
    Part(InKind, InDim);
    OS << (Rev ? " rev-> " : " -> ");
    Part(OutKind, OutDim);
    return OS.str();
  }
  case Kind::CFunc:
    OS << "cfunc[" << InDim << ',' << OutDim << ']';
    return OS.str();
  }
  return "<invalid>";
}

//===----------------------------------------------------------------------===//
// DimExpr
//===----------------------------------------------------------------------===//

bool DimExpr::evaluate(const std::map<std::string, int64_t> &Bindings,
                       int64_t &Result) const {
  switch (TheKind) {
  case Kind::Const:
    Result = Value;
    return true;
  case Kind::Var: {
    auto It = Bindings.find(Name);
    if (It == Bindings.end())
      return false;
    Result = It->second;
    return true;
  }
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul: {
    int64_t L, R;
    if (!Lhs->evaluate(Bindings, L) || !Rhs->evaluate(Bindings, R))
      return false;
    Result = TheKind == Kind::Add   ? L + R
             : TheKind == Kind::Sub ? L - R
                                    : L * R;
    return true;
  }
  }
  return false;
}

std::unique_ptr<DimExpr> DimExpr::clone() const {
  auto E = std::make_unique<DimExpr>();
  E->TheKind = TheKind;
  E->Value = Value;
  E->Name = Name;
  if (Lhs)
    E->Lhs = Lhs->clone();
  if (Rhs)
    E->Rhs = Rhs->clone();
  return E;
}

std::string DimExpr::str() const {
  switch (TheKind) {
  case Kind::Const:
    return std::to_string(Value);
  case Kind::Var:
    return Name;
  case Kind::Add:
    return "(" + Lhs->str() + "+" + Rhs->str() + ")";
  case Kind::Sub:
    return "(" + Lhs->str() + "-" + Rhs->str() + ")";
  case Kind::Mul:
    return "(" + Lhs->str() + "*" + Rhs->str() + ")";
  }
  return "?";
}

TypeAnnot TypeAnnot::clone() const {
  TypeAnnot A;
  A.TheKind = TheKind;
  if (Dim)
    A.Dim = Dim->clone();
  if (Dim2)
    A.Dim2 = Dim2->clone();
  return A;
}

Type TypeAnnot::resolve(const std::map<std::string, int64_t> &Bindings,
                        DiagnosticEngine &Diags, SourceLoc Loc) const {
  int64_t D = 1, D2 = 1;
  if (Dim && !Dim->evaluate(Bindings, D)) {
    Diags.error(Loc, "cannot resolve dimension variable in '" + Dim->str() +
                         "'; provide a binding or a capture to infer it from");
    return Type::invalid();
  }
  if (Dim2 && !Dim2->evaluate(Bindings, D2)) {
    Diags.error(Loc, "cannot resolve dimension variable in '" + Dim2->str() +
                         "'");
    return Type::invalid();
  }
  if (D <= 0 || D2 <= 0) {
    Diags.error(Loc, "dimension must be positive");
    return Type::invalid();
  }
  switch (TheKind) {
  case Kind::Qubit:
    return Type::qubit(D);
  case Kind::Bit:
    return Type::bit(D);
  case Kind::CFunc:
    return Type::cfunc(D, D2);
  case Kind::RevFunc:
    return Type::revFunc(D);
  }
  return Type::invalid();
}

//===----------------------------------------------------------------------===//
// Expr clone/str
//===----------------------------------------------------------------------===//

namespace {

/// Copies the base-class state (location and type) onto a cloned node.
template <typename T> ExprPtr finishClone(std::unique_ptr<T> New,
                                          const Expr &Old) {
  New->setLoc(Old.loc());
  New->Ty = Old.Ty;
  return New;
}

} // namespace

bool QubitLiteralExpr::uniformPrim() const {
  if (Symbols.empty())
    return false;
  PrimitiveBasis Prim = symbolPrimitiveBasis(Symbols.front());
  for (QubitSymbol Sym : Symbols)
    if (symbolPrimitiveBasis(Sym) != Prim)
      return false;
  return true;
}

BasisVector QubitLiteralExpr::toBasisVector() const {
  assert(uniformPrim() && "basis vector requires a uniform primitive basis");
  BasisVector V;
  V.Prim = symbolPrimitiveBasis(Symbols.front());
  V.Dim = Symbols.size();
  for (unsigned I = 0; I < Symbols.size(); ++I)
    V.Eigenbits = setBitAt(V.Eigenbits, V.Dim, I,
                           symbolIsMinusEigenstate(Symbols[I]));
  if (HasPhase) {
    V.HasPhase = true;
    V.Phase = PhaseDegrees * M_PI / 180.0;
  }
  return V;
}

ExprPtr QubitLiteralExpr::clone() const {
  auto E = std::make_unique<QubitLiteralExpr>();
  E->Symbols = Symbols;
  E->PhaseDegrees = PhaseDegrees;
  E->HasPhase = HasPhase;
  if (PhaseExpr)
    E->PhaseExpr = PhaseExpr->clone();
  return finishClone(std::move(E), *this);
}

std::string QubitLiteralExpr::str() const {
  std::ostringstream OS;
  OS << '\'';
  for (QubitSymbol Sym : Symbols) {
    switch (Sym) {
    case QubitSymbol::Zero:
      OS << '0';
      break;
    case QubitSymbol::One:
      OS << '1';
      break;
    case QubitSymbol::Plus:
      OS << 'p';
      break;
    case QubitSymbol::Minus:
      OS << 'm';
      break;
    case QubitSymbol::ImagI:
      OS << 'i';
      break;
    case QubitSymbol::ImagJ:
      OS << 'j';
      break;
    }
  }
  OS << '\'';
  if (PhaseExpr)
    OS << '@' << PhaseExpr->str();
  else if (HasPhase)
    OS << '@' << PhaseDegrees;
  return OS.str();
}

ExprPtr BuiltinBasisExpr::clone() const {
  auto E = std::make_unique<BuiltinBasisExpr>();
  E->Prim = Prim;
  E->Dim = Dim;
  return finishClone(std::move(E), *this);
}

std::string BuiltinBasisExpr::str() const {
  std::ostringstream OS;
  OS << primitiveBasisName(Prim);
  if (Dim != 1)
    OS << '[' << Dim << ']';
  return OS.str();
}

ExprPtr BasisLiteralExpr::clone() const {
  auto E = std::make_unique<BasisLiteralExpr>();
  for (const ExprPtr &V : Vectors)
    E->Vectors.push_back(V->clone());
  return finishClone(std::move(E), *this);
}

std::string BasisLiteralExpr::str() const {
  std::ostringstream OS;
  OS << '{';
  for (unsigned I = 0; I < Vectors.size(); ++I) {
    if (I)
      OS << ',';
    OS << Vectors[I]->str();
  }
  OS << '}';
  return OS.str();
}

ExprPtr TensorExpr::clone() const {
  auto E = std::make_unique<TensorExpr>();
  E->Lhs = Lhs->clone();
  E->Rhs = Rhs->clone();
  return finishClone(std::move(E), *this);
}

std::string TensorExpr::str() const {
  return "(" + Lhs->str() + " + " + Rhs->str() + ")";
}

ExprPtr BroadcastExpr::clone() const {
  auto E = std::make_unique<BroadcastExpr>();
  E->Operand = Operand->clone();
  E->Factor = Factor->clone();
  E->OuterPhaseDegrees = OuterPhaseDegrees;
  E->HasOuterPhase = HasOuterPhase;
  return finishClone(std::move(E), *this);
}

std::string BroadcastExpr::str() const {
  return Operand->str() + "[" + Factor->str() + "]";
}

ExprPtr BasisTranslationExpr::clone() const {
  auto E = std::make_unique<BasisTranslationExpr>();
  E->InBasis = InBasis->clone();
  E->OutBasis = OutBasis->clone();
  return finishClone(std::move(E), *this);
}

std::string BasisTranslationExpr::str() const {
  return "(" + InBasis->str() + " >> " + OutBasis->str() + ")";
}

ExprPtr PipeExpr::clone() const {
  auto E = std::make_unique<PipeExpr>();
  E->Value = Value->clone();
  E->Func = Func->clone();
  return finishClone(std::move(E), *this);
}

std::string PipeExpr::str() const {
  return "(" + Value->str() + " | " + Func->str() + ")";
}

ExprPtr AdjointExpr::clone() const {
  auto E = std::make_unique<AdjointExpr>();
  E->Func = Func->clone();
  return finishClone(std::move(E), *this);
}

std::string AdjointExpr::str() const { return "~" + Func->str(); }

ExprPtr PredicatedExpr::clone() const {
  auto E = std::make_unique<PredicatedExpr>();
  E->PredBasis = PredBasis->clone();
  E->Func = Func->clone();
  return finishClone(std::move(E), *this);
}

std::string PredicatedExpr::str() const {
  return "(" + PredBasis->str() + " & " + Func->str() + ")";
}

ExprPtr MeasureExpr::clone() const {
  auto E = std::make_unique<MeasureExpr>();
  E->BasisOperand = BasisOperand->clone();
  return finishClone(std::move(E), *this);
}

std::string MeasureExpr::str() const {
  return BasisOperand->str() + ".measure";
}

ExprPtr RotateExpr::clone() const {
  auto E = std::make_unique<RotateExpr>();
  E->BasisOperand = BasisOperand->clone();
  E->Angle = Angle->clone();
  return finishClone(std::move(E), *this);
}

std::string RotateExpr::str() const {
  return BasisOperand->str() + ".rotate(" + Angle->str() + ")";
}

ExprPtr FlipExpr::clone() const {
  auto E = std::make_unique<FlipExpr>();
  E->BasisOperand = BasisOperand->clone();
  return finishClone(std::move(E), *this);
}

std::string FlipExpr::str() const { return BasisOperand->str() + ".flip"; }

ExprPtr EmbedXorExpr::clone() const {
  auto E = std::make_unique<EmbedXorExpr>();
  E->Func = Func->clone();
  return finishClone(std::move(E), *this);
}

std::string EmbedXorExpr::str() const { return Func->str() + ".xor"; }

ExprPtr EmbedSignExpr::clone() const {
  auto E = std::make_unique<EmbedSignExpr>();
  E->Func = Func->clone();
  return finishClone(std::move(E), *this);
}

std::string EmbedSignExpr::str() const { return Func->str() + ".sign"; }

ExprPtr IdentityExpr::clone() const {
  auto E = std::make_unique<IdentityExpr>();
  E->Dim = Dim;
  return finishClone(std::move(E), *this);
}

std::string IdentityExpr::str() const {
  if (Dim == 1)
    return "id";
  return "id[" + std::to_string(Dim) + "]";
}

ExprPtr DiscardExpr::clone() const {
  auto E = std::make_unique<DiscardExpr>();
  E->Dim = Dim;
  return finishClone(std::move(E), *this);
}

std::string DiscardExpr::str() const {
  if (Dim == 1)
    return "discard";
  return "discard[" + std::to_string(Dim) + "]";
}

ExprPtr VariableExpr::clone() const {
  auto E = std::make_unique<VariableExpr>();
  E->Name = Name;
  return finishClone(std::move(E), *this);
}

std::string VariableExpr::str() const { return Name; }

ExprPtr ConditionalExpr::clone() const {
  auto E = std::make_unique<ConditionalExpr>();
  E->ThenExpr = ThenExpr->clone();
  E->Cond = Cond->clone();
  E->ElseExpr = ElseExpr->clone();
  return finishClone(std::move(E), *this);
}

std::string ConditionalExpr::str() const {
  return "(" + ThenExpr->str() + " if " + Cond->str() + " else " +
         ElseExpr->str() + ")";
}

ExprPtr BitLiteralExpr::clone() const {
  auto E = std::make_unique<BitLiteralExpr>();
  E->Bits = Bits;
  return finishClone(std::move(E), *this);
}

std::string BitLiteralExpr::str() const {
  std::string S = "0b";
  for (bool B : Bits)
    S.push_back(B ? '1' : '0');
  return S;
}

ExprPtr FloatLiteralExpr::clone() const {
  auto E = std::make_unique<FloatLiteralExpr>();
  E->Value = Value;
  return finishClone(std::move(E), *this);
}

std::string FloatLiteralExpr::str() const { return std::to_string(Value); }

ExprPtr FloatParamExpr::clone() const {
  auto E = std::make_unique<FloatParamExpr>();
  E->Name = Name;
  E->Index = Index;
  E->Scale = Scale;
  E->Offset = Offset;
  return finishClone(std::move(E), *this);
}

std::string FloatParamExpr::str() const {
  if (Scale == 1.0 && Offset == 0.0)
    return "$" + Name;
  return "(" + std::to_string(Scale) + "*$" + Name + "+" +
         std::to_string(Offset) + ")";
}

ExprPtr FloatBinaryExpr::clone() const {
  auto E = std::make_unique<FloatBinaryExpr>();
  E->Op = Op;
  E->Lhs = Lhs->clone();
  E->Rhs = Rhs->clone();
  return finishClone(std::move(E), *this);
}

std::string FloatBinaryExpr::str() const {
  const char *OpStr = Op == OpKind::Add   ? "+"
                      : Op == OpKind::Sub ? "-"
                      : Op == OpKind::Mul ? "*"
                                          : "/";
  return "(" + Lhs->str() + OpStr + Rhs->str() + ")";
}

ExprPtr ClassicalBinaryExpr::clone() const {
  auto E = std::make_unique<ClassicalBinaryExpr>();
  E->Op = Op;
  E->Lhs = Lhs->clone();
  E->Rhs = Rhs->clone();
  return finishClone(std::move(E), *this);
}

std::string ClassicalBinaryExpr::str() const {
  const char *OpStr = Op == OpKind::And ? " & "
                      : Op == OpKind::Or ? " | "
                                         : " ^ ";
  return "(" + Lhs->str() + OpStr + Rhs->str() + ")";
}

ExprPtr ClassicalNotExpr::clone() const {
  auto E = std::make_unique<ClassicalNotExpr>();
  E->Operand = Operand->clone();
  return finishClone(std::move(E), *this);
}

std::string ClassicalNotExpr::str() const { return "~" + Operand->str(); }

ExprPtr ClassicalReduceExpr::clone() const {
  auto E = std::make_unique<ClassicalReduceExpr>();
  E->Op = Op;
  E->Operand = Operand->clone();
  return finishClone(std::move(E), *this);
}

std::string ClassicalReduceExpr::str() const {
  const char *Name = Op == OpKind::Xor   ? "xor_reduce"
                     : Op == OpKind::And ? "and_reduce"
                                         : "or_reduce";
  return Operand->str() + "." + Name + "()";
}

ExprPtr ClassicalRepeatExpr::clone() const {
  auto E = std::make_unique<ClassicalRepeatExpr>();
  E->Operand = Operand->clone();
  E->Factor = Factor->clone();
  return finishClone(std::move(E), *this);
}

std::string ClassicalRepeatExpr::str() const {
  return Operand->str() + ".repeat(" + Factor->str() + ")";
}

//===----------------------------------------------------------------------===//
// Statements / functions
//===----------------------------------------------------------------------===//

StmtPtr AssignStmt::clone() const {
  auto S = std::make_unique<AssignStmt>();
  S->Names = Names;
  S->Value = Value->clone();
  S->setLoc(loc());
  return S;
}

std::string AssignStmt::str() const {
  std::ostringstream OS;
  for (unsigned I = 0; I < Names.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Names[I];
  }
  OS << " = " << Value->str();
  return OS.str();
}

StmtPtr ReturnStmt::clone() const {
  auto S = std::make_unique<ReturnStmt>();
  S->Value = Value->clone();
  S->setLoc(loc());
  return S;
}

std::string ReturnStmt::str() const { return "return " + Value->str(); }

std::unique_ptr<FunctionDef> FunctionDef::clone() const {
  auto F = std::make_unique<FunctionDef>();
  F->TheKind = TheKind;
  F->Name = Name;
  F->DimVars = DimVars;
  for (const Param &P : Params)
    F->Params.push_back({P.Name, P.Annot.clone(), P.Loc, P.Ty});
  F->ReturnAnnot = ReturnAnnot.clone();
  F->ReturnTy = ReturnTy;
  for (const StmtPtr &S : Body)
    F->Body.push_back(S->clone());
  F->Loc = Loc;
  return F;
}

std::string FunctionDef::str() const {
  std::ostringstream OS;
  OS << (isQpu() ? "qpu " : "classical ") << Name;
  if (!DimVars.empty()) {
    OS << '[';
    for (unsigned I = 0; I < DimVars.size(); ++I) {
      if (I)
        OS << ',';
      OS << DimVars[I];
    }
    OS << ']';
  }
  OS << '(';
  for (unsigned I = 0; I < Params.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Params[I].Name;
    if (!Params[I].Ty.isInvalid())
      OS << ": " << Params[I].Ty.str();
  }
  OS << ") {\n";
  for (const StmtPtr &S : Body)
    OS << "    " << S->str() << '\n';
  OS << "}";
  return OS.str();
}

FunctionDef *Program::lookup(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

std::string Program::str() const {
  std::ostringstream OS;
  for (const auto &F : Functions)
    OS << F->str() << "\n\n";
  return OS.str();
}
