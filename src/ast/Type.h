//===- Type.h - Qwerty type system ----------------------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Qwerty type system (§4). Types are small value objects: qubit[N] and
/// bit[N] tuples, bases (compile-time only), and function types. Function
/// types carry a reversibility flag: `qubit[N] rev-> qubit[N]` functions may
/// be adjointed (~f) or predicated (b & f).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_AST_TYPE_H
#define ASDF_AST_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace asdf {

/// A Qwerty type, encoded flat: function types in Qwerty only ever map a
/// qubit/bit tuple to a qubit/bit tuple, so nesting is unnecessary.
class Type {
public:
  enum class Kind {
    Invalid,
    Unit,   ///< No value (kernel with no arguments).
    Qubit,  ///< qubit[Dim]; linear.
    Bit,    ///< bit[Dim]; classical, copyable.
    Basis,  ///< A basis of Dim qubits; compile-time only.
    Func,   ///< InKind[InDim] -> OutKind[OutDim], maybe reversible.
    CFunc,  ///< Classical function bit[InDim] -> bit[OutDim] (\@classical).
  };

  /// What a Func consumes or produces.
  enum class DataKind { Unit, Qubit, Bit };

  Type() = default;

  static Type invalid() { return Type(); }
  static Type unit() {
    Type T;
    T.TheKind = Kind::Unit;
    return T;
  }
  static Type qubit(unsigned Dim) {
    Type T;
    T.TheKind = Kind::Qubit;
    T.InDim = Dim;
    return T;
  }
  static Type bit(unsigned Dim) {
    Type T;
    T.TheKind = Kind::Bit;
    T.InDim = Dim;
    return T;
  }
  static Type basis(unsigned Dim) {
    Type T;
    T.TheKind = Kind::Basis;
    T.InDim = Dim;
    return T;
  }
  static Type func(DataKind InK, unsigned InDim, DataKind OutK,
                   unsigned OutDim, bool Reversible) {
    Type T;
    T.TheKind = Kind::Func;
    T.InKind = InK;
    T.InDim = InDim;
    T.OutKind = OutK;
    T.OutDim = OutDim;
    T.Rev = Reversible;
    return T;
  }
  /// The common reversible qubit[N] -> qubit[N] function type.
  static Type revFunc(unsigned Dim) {
    return func(DataKind::Qubit, Dim, DataKind::Qubit, Dim,
                /*Reversible=*/true);
  }
  static Type cfunc(unsigned InDim, unsigned OutDim) {
    Type T;
    T.TheKind = Kind::CFunc;
    T.InDim = InDim;
    T.OutDim = OutDim;
    return T;
  }

  Kind kind() const { return TheKind; }
  bool isInvalid() const { return TheKind == Kind::Invalid; }
  bool isUnit() const { return TheKind == Kind::Unit; }
  bool isQubit() const { return TheKind == Kind::Qubit; }
  bool isBit() const { return TheKind == Kind::Bit; }
  bool isBasis() const { return TheKind == Kind::Basis; }
  bool isFunc() const { return TheKind == Kind::Func; }
  bool isCFunc() const { return TheKind == Kind::CFunc; }

  /// Dimension of a qubit/bit/basis type.
  unsigned dim() const {
    assert((isQubit() || isBit() || isBasis()) && "type has no dimension");
    return InDim;
  }

  DataKind funcInKind() const {
    assert(isFunc());
    return InKind;
  }
  unsigned funcInDim() const {
    assert(isFunc() || isCFunc());
    return InDim;
  }
  DataKind funcOutKind() const {
    assert(isFunc());
    return OutKind;
  }
  unsigned funcOutDim() const {
    assert(isFunc() || isCFunc());
    return OutDim;
  }
  bool isReversibleFunc() const { return isFunc() && Rev; }

  /// True for values that obey the linear typing discipline (§4): qubits
  /// must be used exactly once.
  bool isLinear() const { return isQubit(); }

  bool operator==(const Type &Other) const {
    if (TheKind != Other.TheKind)
      return false;
    switch (TheKind) {
    case Kind::Invalid:
    case Kind::Unit:
      return true;
    case Kind::Qubit:
    case Kind::Bit:
    case Kind::Basis:
      return InDim == Other.InDim;
    case Kind::Func:
      return InKind == Other.InKind && InDim == Other.InDim &&
             OutKind == Other.OutKind && OutDim == Other.OutDim &&
             Rev == Other.Rev;
    case Kind::CFunc:
      return InDim == Other.InDim && OutDim == Other.OutDim;
    }
    return false;
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  std::string str() const;

private:
  Kind TheKind = Kind::Invalid;
  DataKind InKind = DataKind::Unit;
  DataKind OutKind = DataKind::Unit;
  unsigned InDim = 0;
  unsigned OutDim = 0;
  bool Rev = false;
};

} // namespace asdf

#endif // ASDF_AST_TYPE_H
