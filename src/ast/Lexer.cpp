//===- Lexer.cpp - Tokenizer for the Qwerty DSL ---------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

using namespace asdf;

std::string Token::describe() const {
  switch (TheKind) {
  case Kind::Eof:
    return "end of input";
  case Kind::Newline:
    return "end of line";
  case Kind::Identifier:
    return "identifier '" + Text + "'";
  case Kind::Integer:
    return "integer";
  case Kind::Float:
    return "float";
  case Kind::QubitLit:
    return "qubit literal '" + Text + "'";
  case Kind::KwQpu:
    return "'qpu'";
  case Kind::KwClassical:
    return "'classical'";
  case Kind::KwReturn:
    return "'return'";
  case Kind::KwIf:
    return "'if'";
  case Kind::KwElse:
    return "'else'";
  case Kind::LBrace:
    return "'{'";
  case Kind::RBrace:
    return "'}'";
  case Kind::LParen:
    return "'('";
  case Kind::RParen:
    return "')'";
  case Kind::LBracket:
    return "'['";
  case Kind::RBracket:
    return "']'";
  case Kind::Comma:
    return "','";
  case Kind::Colon:
    return "':'";
  case Kind::Arrow:
    return "'->'";
  case Kind::Pipe:
    return "'|'";
  case Kind::Shift:
    return "'>>'";
  case Kind::Plus:
    return "'+'";
  case Kind::Minus:
    return "'-'";
  case Kind::Amp:
    return "'&'";
  case Kind::Caret:
    return "'^'";
  case Kind::Tilde:
    return "'~'";
  case Kind::At:
    return "'@'";
  case Kind::Dot:
    return "'.'";
  case Kind::Equals:
    return "'='";
  case Kind::Star:
    return "'*'";
  case Kind::Slash:
    return "'/'";
  case Kind::Param:
    return "parameter '$" + Text + "'";
  }
  return "<token>";
}

Lexer::Lexer(const std::string &Source, DiagnosticEngine &Diags) {
  lex(Source, Diags);
}

void Lexer::lex(const std::string &Source, DiagnosticEngine &Diags) {
  unsigned Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto Push = [&](Token::Kind K, SourceLoc Loc) -> Token & {
    Token T;
    T.TheKind = K;
    T.Loc = Loc;
    Tokens.push_back(std::move(T));
    return Tokens.back();
  };
  auto Advance = [&]() {
    if (Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };

  while (I < N) {
    char C = Source[I];
    SourceLoc Loc(Line, Col);

    // Whitespace (not newlines).
    if (C == ' ' || C == '\t' || C == '\r') {
      Advance();
      continue;
    }
    // Line continuation.
    if (C == '\\') {
      Advance();
      while (I < N && (Source[I] == ' ' || Source[I] == '\t' ||
                       Source[I] == '\r'))
        Advance();
      if (I < N && Source[I] == '\n')
        Advance();
      continue;
    }
    // Comments.
    if (C == '#' || (C == '/' && I + 1 < N && Source[I + 1] == '/')) {
      while (I < N && Source[I] != '\n')
        Advance();
      continue;
    }
    if (C == '\n') {
      if (!Tokens.empty() && !Tokens.back().is(Token::Kind::Newline))
        Push(Token::Kind::Newline, Loc);
      Advance();
      continue;
    }
    // Qubit literal.
    if (C == '\'') {
      Advance();
      std::string Text;
      while (I < N && Source[I] != '\'' && Source[I] != '\n') {
        Text.push_back(Source[I]);
        Advance();
      }
      if (I >= N || Source[I] != '\'') {
        Diags.error(Loc, "unterminated qubit literal");
        return;
      }
      Advance();
      Push(Token::Kind::QubitLit, Loc).Text = std::move(Text);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Num;
      bool IsFloat = false;
      while (I < N &&
             (std::isdigit(static_cast<unsigned char>(Source[I])) ||
              Source[I] == '.')) {
        // Don't swallow attribute access like 2.repeat — only treat '.' as
        // part of the number when followed by a digit.
        if (Source[I] == '.') {
          if (I + 1 >= N ||
              !std::isdigit(static_cast<unsigned char>(Source[I + 1])))
            break;
          IsFloat = true;
        }
        Num.push_back(Source[I]);
        Advance();
      }
      if (IsFloat) {
        // from_chars, not strtod: strtod obeys LC_NUMERIC, and under a
        // comma-decimal locale it stops at the '.' of "45.5", silently
        // truncating every float literal in the program.
        double D = 0.0;
        std::from_chars(Num.c_str(), Num.c_str() + Num.size(), D);
        Push(Token::Kind::Float, Loc).FloatValue = D;
      } else {
        Push(Token::Kind::Integer, Loc).IntValue =
            std::strtoll(Num.c_str(), nullptr, 10);
      }
      continue;
    }
    // Float-parameter placeholder: $name.
    if (C == '$') {
      Advance();
      std::string Name;
      while (I < N &&
             (std::isalnum(static_cast<unsigned char>(Source[I])) ||
              Source[I] == '_')) {
        Name.push_back(Source[I]);
        Advance();
      }
      if (Name.empty() ||
          std::isdigit(static_cast<unsigned char>(Name[0]))) {
        Diags.error(Loc, "expected parameter name after '$'");
        return;
      }
      Push(Token::Kind::Param, Loc).Text = std::move(Name);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Ident;
      while (I < N &&
             (std::isalnum(static_cast<unsigned char>(Source[I])) ||
              Source[I] == '_')) {
        Ident.push_back(Source[I]);
        Advance();
      }
      Token::Kind K = Token::Kind::Identifier;
      if (Ident == "qpu")
        K = Token::Kind::KwQpu;
      else if (Ident == "classical")
        K = Token::Kind::KwClassical;
      else if (Ident == "return")
        K = Token::Kind::KwReturn;
      else if (Ident == "if")
        K = Token::Kind::KwIf;
      else if (Ident == "else")
        K = Token::Kind::KwElse;
      Push(K, Loc).Text = std::move(Ident);
      continue;
    }

    // Punctuation.
    switch (C) {
    case '{':
      Push(Token::Kind::LBrace, Loc);
      Advance();
      continue;
    case '}':
      Push(Token::Kind::RBrace, Loc);
      Advance();
      continue;
    case '(':
      Push(Token::Kind::LParen, Loc);
      Advance();
      continue;
    case ')':
      Push(Token::Kind::RParen, Loc);
      Advance();
      continue;
    case '[':
      Push(Token::Kind::LBracket, Loc);
      Advance();
      continue;
    case ']':
      Push(Token::Kind::RBracket, Loc);
      Advance();
      continue;
    case ',':
      Push(Token::Kind::Comma, Loc);
      Advance();
      continue;
    case ':':
      Push(Token::Kind::Colon, Loc);
      Advance();
      continue;
    case '|':
      Push(Token::Kind::Pipe, Loc);
      Advance();
      continue;
    case '+':
      Push(Token::Kind::Plus, Loc);
      Advance();
      continue;
    case '&':
      Push(Token::Kind::Amp, Loc);
      Advance();
      continue;
    case '^':
      Push(Token::Kind::Caret, Loc);
      Advance();
      continue;
    case '~':
      Push(Token::Kind::Tilde, Loc);
      Advance();
      continue;
    case '@':
      Push(Token::Kind::At, Loc);
      Advance();
      continue;
    case '.':
      Push(Token::Kind::Dot, Loc);
      Advance();
      continue;
    case '=':
      Push(Token::Kind::Equals, Loc);
      Advance();
      continue;
    case '*':
      Push(Token::Kind::Star, Loc);
      Advance();
      continue;
    case '/':
      Push(Token::Kind::Slash, Loc);
      Advance();
      continue;
    case '-':
      Advance();
      if (I < N && Source[I] == '>') {
        Advance();
        Push(Token::Kind::Arrow, Loc);
      } else {
        Push(Token::Kind::Minus, Loc);
      }
      continue;
    case '>':
      Advance();
      if (I < N && Source[I] == '>') {
        Advance();
        Push(Token::Kind::Shift, Loc);
        continue;
      }
      Diags.error(Loc, "expected '>>'");
      return;
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      return;
    }
  }

  Token Eof;
  Eof.TheKind = Token::Kind::Eof;
  Eof.Loc = SourceLoc(Line, Col);
  // Ensure a trailing newline before EOF so statement parsing is uniform.
  if (!Tokens.empty() && !Tokens.back().is(Token::Kind::Newline)) {
    Token NL;
    NL.TheKind = Token::Kind::Newline;
    NL.Loc = Eof.Loc;
    Tokens.push_back(std::move(NL));
  }
  Tokens.push_back(std::move(Eof));
}
