//===- SpanCheck.cpp - Span equivalence checking (§4.1, Appendix B) -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "basis/SpanCheck.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace asdf;

/// Collects the sorted, deduplicated list of \p Len-bit prefixes across the
/// vectors of \p Lit.
static std::vector<EigenBits> distinctPrefixes(const BasisLiteral &Lit,
                                              unsigned Len) {
  std::vector<EigenBits> Prefixes;
  Prefixes.reserve(Lit.Vectors.size());
  for (const BasisVector &V : Lit.Vectors)
    Prefixes.push_back(bitPrefix(V.Eigenbits, Lit.Dim, Len));
  std::sort(Prefixes.begin(), Prefixes.end());
  Prefixes.erase(std::unique(Prefixes.begin(), Prefixes.end()),
                 Prefixes.end());
  return Prefixes;
}

/// Counts occurrences of each (Lit.Dim - PrefixLen)-bit suffix across the
/// vectors of \p Lit. The resulting map is ordered, which keeps remainder
/// literals deterministic (sorted by eigenbits).
static std::map<EigenBits, unsigned> suffixCounts(const BasisLiteral &Lit,
                                                 unsigned PrefixLen) {
  std::map<EigenBits, unsigned> Counts;
  unsigned SuffixLen = Lit.Dim - PrefixLen;
  for (const BasisVector &V : Lit.Vectors)
    ++Counts[bitSuffix(V.Eigenbits, SuffixLen)];
  return Counts;
}

/// Builds a phase-free literal over \p Dim qubits from sorted eigenbit keys.
static BasisLiteral literalFromBits(PrimitiveBasis Prim, unsigned Dim,
                                    const std::map<EigenBits, unsigned> &Bits) {
  std::vector<BasisVector> Vecs;
  Vecs.reserve(Bits.size());
  for (const auto &[Eigenbits, Count] : Bits) {
    (void)Count;
    Vecs.push_back(BasisVector(Prim, Dim, Eigenbits));
  }
  return BasisLiteral(std::move(Vecs));
}

std::optional<BasisLiteral>
asdf::factorFullSpanPrefix(const BasisLiteral &Lit, unsigned PrefixDim) {
  assert(PrefixDim > 0 && PrefixDim < Lit.Dim && "bad prefix dimension");
  uint64_t M = Lit.Vectors.size();
  // Corollary B.4: 2^n must divide m. PrefixDim >= 64 can never be satisfied
  // by a literal small enough to build in memory.
  if (PrefixDim >= MaxLiteralDim)
    return std::nullopt;
  uint64_t PrefixCount = uint64_t(1) << PrefixDim;
  if (M % PrefixCount != 0)
    return std::nullopt;

  // Line 3-5 of Algorithm B3: there must be exactly 2^n distinct prefixes.
  if (distinctPrefixes(Lit, PrefixDim).size() != PrefixCount)
    return std::nullopt;

  // Line 6-8: every suffix must appear exactly 2^n times (>= per the paper;
  // the prefix-distinctness of vectors makes > impossible).
  std::map<EigenBits, unsigned> Suffixes = suffixCounts(Lit, PrefixDim);
  for (const auto &[Suffix, Count] : Suffixes) {
    (void)Suffix;
    if (Count != PrefixCount)
      return std::nullopt;
  }
  if (Suffixes.size() * PrefixCount != M)
    return std::nullopt;

  return literalFromBits(Lit.Prim, Lit.Dim - PrefixDim, Suffixes);
}

std::optional<BasisLiteral>
asdf::factorLiteralPrefix(const BasisLiteral &Big, const BasisLiteral &Small) {
  // Line 1-2 of Algorithm B4: primitive bases must match.
  if (Big.Prim != Small.Prim)
    return std::nullopt;
  assert(Big.Dim > Small.Dim && "factorLiteralPrefix requires a bigger lhs");
  uint64_t M = Big.Vectors.size();
  uint64_t MPrime = Small.Vectors.size();
  // Line 3-4: m must be divisible by m'.
  if (M % MPrime != 0)
    return std::nullopt;

  unsigned N = Small.Dim;
  // Line 6-8: the distinct prefixes must be exactly Small's vectors.
  std::vector<EigenBits> Prefixes = distinctPrefixes(Big, N);
  if (Prefixes.size() != MPrime)
    return std::nullopt;
  std::vector<EigenBits> SmallBits;
  SmallBits.reserve(MPrime);
  for (const BasisVector &V : Small.Vectors)
    SmallBits.push_back(V.Eigenbits);
  std::sort(SmallBits.begin(), SmallBits.end());
  if (Prefixes != SmallBits)
    return std::nullopt;

  // Line 9-11: every suffix must appear exactly m' times.
  std::map<EigenBits, unsigned> Suffixes = suffixCounts(Big, N);
  for (const auto &[Suffix, Count] : Suffixes) {
    (void)Suffix;
    if (Count != MPrime)
      return std::nullopt;
  }
  if (Suffixes.size() * MPrime != M)
    return std::nullopt;

  return literalFromBits(Big.Prim, Big.Dim - N, Suffixes);
}

std::optional<std::pair<BasisLiteral, BasisLiteral>>
asdf::factorLiteralAt(const BasisLiteral &Lit, unsigned PrefixDim) {
  assert(PrefixDim > 0 && PrefixDim < Lit.Dim && "bad prefix dimension");
  uint64_t M = Lit.Vectors.size();
  std::vector<EigenBits> Prefixes = distinctPrefixes(Lit, PrefixDim);
  std::map<EigenBits, unsigned> Suffixes = suffixCounts(Lit, PrefixDim);
  if (Prefixes.size() * Suffixes.size() != M)
    return std::nullopt;
  // Every (prefix, suffix) pair must be present; given the counts above it
  // suffices that every suffix appears |Prefixes| times.
  for (const auto &[Suffix, Count] : Suffixes) {
    (void)Suffix;
    if (Count != Prefixes.size())
      return std::nullopt;
  }

  std::vector<BasisVector> PrefixVecs;
  PrefixVecs.reserve(Prefixes.size());
  for (EigenBits Bits : Prefixes)
    PrefixVecs.push_back(BasisVector(Lit.Prim, PrefixDim, Bits));
  BasisLiteral Prefix(std::move(PrefixVecs));
  BasisLiteral Suffix =
      literalFromBits(Lit.Prim, Lit.Dim - PrefixDim, Suffixes);
  return std::make_pair(std::move(Prefix), std::move(Suffix));
}

BasisLiteral asdf::builtinToLiteral(PrimitiveBasis Prim, unsigned Dim) {
  assert(Prim != PrimitiveBasis::Fourier &&
         "fourier is inseparable; it cannot be expanded into a literal");
  assert(Dim > 0 && Dim < 20 && "builtinToLiteral dimension too large");
  std::vector<BasisVector> Vecs;
  Vecs.reserve(uint64_t(1) << Dim);
  for (EigenBits Bits = 0; Bits < (EigenBits(1) << Dim); ++Bits)
    Vecs.push_back(BasisVector(Prim, Dim, Bits));
  return BasisLiteral(std::move(Vecs));
}

BasisLiteral asdf::mergeElements(const BasisElement &Lhs,
                                 const BasisElement &Rhs) {
  assert(!Lhs.isPadding() && !Rhs.isPadding() && "cannot merge padding");
  BasisLiteral L = Lhs.isLiteral() ? Lhs.literalValue()
                                   : builtinToLiteral(Lhs.prim(), Lhs.dim());
  BasisLiteral R = Rhs.isLiteral() ? Rhs.literalValue()
                                   : builtinToLiteral(Rhs.prim(), Rhs.dim());
  assert(L.Prim == R.Prim && "merging literals of mixed primitive bases");
  std::vector<BasisVector> Vecs;
  Vecs.reserve(uint64_t(L.Vectors.size()) * R.Vectors.size());
  for (const BasisVector &A : L.Vectors)
    for (const BasisVector &B : R.Vectors) {
      BasisVector V(L.Prim, L.Dim + R.Dim,
                    bitConcat(A.Eigenbits, B.Eigenbits, R.Dim));
      if (A.HasPhase || B.HasPhase) {
        V.HasPhase = true;
        V.Phase = (A.HasPhase ? A.Phase : 0.0) + (B.HasPhase ? B.Phase : 0.0);
      }
      Vecs.push_back(V);
    }
  return BasisLiteral(std::move(Vecs));
}

bool asdf::spansEquivalent(const Basis &BIn, const Basis &BOut) {
  // Line 1-2 of Algorithm B1: normalize each element into the two deques.
  std::deque<BasisElement> LDeque, RDeque;
  for (const BasisElement &E : BIn.elements())
    LDeque.push_back(E.normalized());
  for (const BasisElement &E : BOut.elements())
    RDeque.push_back(E.normalized());

  while (!LDeque.empty() && !RDeque.empty()) {
    BasisElement L = std::move(LDeque.front());
    LDeque.pop_front();
    BasisElement R = std::move(RDeque.front());
    RDeque.pop_front();

    if (L.dim() == R.dim()) {
      // Line 7: equal (post-normalization) or both fully spanning.
      if (L == R || (L.fullySpans() && R.fullySpans()))
        continue;
      return false;
    }

    // Line 11-17: factor the smaller element out of the bigger one
    // (Algorithm B2), pushing the remainder back for the next iteration.
    bool LeftIsBig = L.dim() > R.dim();
    BasisElement &Big = LeftIsBig ? L : R;
    BasisElement &Small = LeftIsBig ? R : L;
    std::deque<BasisElement> &BigDeque = LeftIsBig ? LDeque : RDeque;
    unsigned Delta = Big.dim() - Small.dim();

    if (Big.fullySpans() && Small.fullySpans()) {
      // Lines 1-5 of Algorithm B2 (Lemmas B.1 and B.2).
      BigDeque.push_front(BasisElement::builtin(Big.prim(), Delta));
      continue;
    }
    if (Small.fullySpans() && Big.isLiteral()) {
      // Lines 6-9 of Algorithm B2, via Algorithm B3.
      std::optional<BasisLiteral> Remainder =
          factorFullSpanPrefix(Big.literalValue(), Small.dim());
      if (!Remainder)
        return false;
      BigDeque.push_front(BasisElement::literal(std::move(*Remainder)));
      continue;
    }
    if (Big.isLiteral() && Small.isLiteral()) {
      // Lines 10-13 of Algorithm B2, via Algorithm B4.
      std::optional<BasisLiteral> Remainder =
          factorLiteralPrefix(Big.literalValue(), Small.literalValue());
      if (!Remainder)
        return false;
      BigDeque.push_front(BasisElement::literal(std::move(*Remainder)));
      continue;
    }
    // Line 14 of Algorithm B2: no factoring case applies.
    return false;
  }

  // Line 18-19 of Algorithm B1: leftover elements mean a dimension mismatch.
  return LDeque.empty() && RDeque.empty();
}
