//===- Basis.h - Qwerty basis data structures -----------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data structures for Qwerty bases (§2.2 of the paper): primitive bases,
/// basis vectors, basis literals, built-in bases, and canon-form bases
/// (sequences of basis elements). These types are shared by the AST, the
/// Qwerty IR attributes, and circuit synthesis.
///
/// Conventions:
///  - Eigenbits are stored in a uint64_t with the leftmost qubit in the most
///    significant used bit, so that the eigenbits of '1010' read as 0b1010.
///  - A basis literal has a single primitive basis shared by all positions of
///    all vectors, matching the BasisVector/BasisLiteral attributes of §5.
///  - Vector phases are stored in radians.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_BASIS_BASIS_H
#define ASDF_BASIS_BASIS_H

#include "support/BitUtils.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace asdf {

/// The four primitive bases of Qwerty (§2.2).
enum class PrimitiveBasis { Std, Pm, Ij, Fourier };

/// Returns the surface-syntax name of a primitive basis.
const char *primitiveBasisName(PrimitiveBasis Prim);

/// A single symbol of a qubit literal: p, m, i, j, 0, or 1.
enum class QubitSymbol { Zero, One, Plus, Minus, ImagI, ImagJ };

/// The primitive basis a qubit symbol belongs to.
PrimitiveBasis symbolPrimitiveBasis(QubitSymbol Sym);

/// True if the symbol is the minus eigenstate of its primitive basis
/// (1, m, or j).
bool symbolIsMinusEigenstate(QubitSymbol Sym);

/// The qubit symbol for the given primitive basis and eigenstate. Fourier
/// has no per-qubit symbols.
QubitSymbol symbolFor(PrimitiveBasis Prim, bool Minus);

/// One vector of a basis literal: a uniform-primitive-basis qubit literal
/// with an optional phase factor (written bv@theta in Qwerty).
struct BasisVector {
  PrimitiveBasis Prim = PrimitiveBasis::Std;
  unsigned Dim = 0;
  EigenBits Eigenbits = 0;
  double Phase = 0.0; ///< Radians; meaningful only if HasPhase.
  bool HasPhase = false;

  BasisVector() = default;
  BasisVector(PrimitiveBasis Prim, unsigned Dim, EigenBits Eigenbits)
      : Prim(Prim), Dim(Dim), Eigenbits(Eigenbits) {}
  BasisVector(PrimitiveBasis Prim, unsigned Dim, EigenBits Eigenbits,
              double Phase)
      : Prim(Prim), Dim(Dim), Eigenbits(Eigenbits), Phase(Phase),
        HasPhase(true) {}

  /// Builds a vector from a string of '0'/'1'/'p'/'m'/'i'/'j' characters.
  /// Asserts that all characters share one primitive basis.
  static BasisVector fromString(const std::string &Symbols);

  /// Strips the phase factor.
  BasisVector withoutPhase() const {
    BasisVector V = *this;
    V.Phase = 0.0;
    V.HasPhase = false;
    return V;
  }

  /// Compares eigenbits only (phases and primitive basis ignored); used for
  /// the lexicographic sort during normalization.
  bool eigenbitsLess(const BasisVector &Other) const {
    return Eigenbits < Other.Eigenbits;
  }

  bool operator==(const BasisVector &Other) const {
    return Prim == Other.Prim && Dim == Other.Dim &&
           Eigenbits == Other.Eigenbits && HasPhase == Other.HasPhase &&
           (!HasPhase || Phase == Other.Phase);
  }

  std::string str() const;
};

/// A basis literal {bv1, bv2, ..., bvm} (§2.2). All vectors share the
/// literal's primitive basis and dimension.
struct BasisLiteral {
  PrimitiveBasis Prim = PrimitiveBasis::Std;
  unsigned Dim = 0;
  std::vector<BasisVector> Vectors;

  BasisLiteral() = default;
  explicit BasisLiteral(std::vector<BasisVector> Vecs);

  unsigned size() const { return Vectors.size(); }

  /// True if the literal contains all 2^Dim vectors, i.e. spans the whole
  /// 2^Dim-dimensional space.
  bool fullySpans() const {
    return Dim < 63 && Vectors.size() == (uint64_t(1) << Dim);
  }

  /// True if any vector carries a phase factor.
  bool hasPhases() const;

  /// Returns a phase-free literal with vectors sorted lexicographically by
  /// eigenbits — the normal form used by span checking (§4.1).
  BasisLiteral normalized() const;

  /// True if eigenbits are pairwise distinct (a well-typedness condition).
  bool eigenbitsDistinct() const;

  bool operator==(const BasisLiteral &Other) const {
    return Prim == Other.Prim && Dim == Other.Dim && Vectors == Other.Vectors;
  }

  std::string str() const;
};

/// Discriminator for BasisElement.
enum class BasisElementKind {
  Builtin, ///< An N-qubit primitive basis, e.g. pm[4].
  Literal, ///< A basis literal, e.g. {'10','01'}.
  Padding, ///< Internal: placeholder for qubits consumed by an inseparable
           ///< element on the other side (Algorithm E6 only).
};

/// One element of a canon-form basis: a built-in basis, a basis literal, or
/// (inside the standardization algorithm only) padding.
class BasisElement {
public:
  static BasisElement builtin(PrimitiveBasis Prim, unsigned Dim) {
    BasisElement E;
    E.TheKind = BasisElementKind::Builtin;
    E.Prim = Prim;
    E.Dim = Dim;
    return E;
  }
  static BasisElement literal(BasisLiteral Lit) {
    BasisElement E;
    E.TheKind = BasisElementKind::Literal;
    E.Prim = Lit.Prim;
    E.Dim = Lit.Dim;
    E.Lit = std::move(Lit);
    return E;
  }
  static BasisElement padding(unsigned Dim) {
    BasisElement E;
    E.TheKind = BasisElementKind::Padding;
    E.Dim = Dim;
    return E;
  }

  BasisElementKind kind() const { return TheKind; }
  bool isBuiltin() const { return TheKind == BasisElementKind::Builtin; }
  bool isLiteral() const { return TheKind == BasisElementKind::Literal; }
  bool isPadding() const { return TheKind == BasisElementKind::Padding; }

  unsigned dim() const { return Dim; }
  PrimitiveBasis prim() const {
    assert(!isPadding() && "padding has no primitive basis");
    return Prim;
  }
  const BasisLiteral &literalValue() const {
    assert(isLiteral() && "not a literal element");
    return Lit;
  }
  BasisLiteral &literalValue() {
    assert(isLiteral() && "not a literal element");
    return Lit;
  }

  /// True if this element spans the full 2^dim space: built-in bases always
  /// do; literals do when they contain all 2^dim vectors. Padding never does.
  bool fullySpans() const {
    if (isBuiltin())
      return true;
    if (isLiteral())
      return Lit.fullySpans();
    return false;
  }

  /// Normal form for span checking: literals get phases stripped and vectors
  /// sorted.
  BasisElement normalized() const {
    if (isLiteral())
      return literal(Lit.normalized());
    return *this;
  }

  bool operator==(const BasisElement &Other) const {
    if (TheKind != Other.TheKind || Dim != Other.Dim)
      return false;
    if (isPadding())
      return true;
    if (Prim != Other.Prim)
      return false;
    return !isLiteral() || Lit == Other.Lit;
  }

  std::string str() const;

private:
  BasisElementKind TheKind = BasisElementKind::Builtin;
  PrimitiveBasis Prim = PrimitiveBasis::Std;
  unsigned Dim = 0;
  BasisLiteral Lit;
};

/// A canon-form basis: a tensor product (sequence) of basis elements (§2.2).
class Basis {
public:
  Basis() = default;
  explicit Basis(std::vector<BasisElement> Elements)
      : Elements(std::move(Elements)) {}

  static Basis builtin(PrimitiveBasis Prim, unsigned Dim) {
    return Basis({BasisElement::builtin(Prim, Dim)});
  }
  static Basis literal(BasisLiteral Lit) {
    return Basis({BasisElement::literal(std::move(Lit))});
  }

  const std::vector<BasisElement> &elements() const { return Elements; }
  std::vector<BasisElement> &elements() { return Elements; }
  bool empty() const { return Elements.empty(); }
  unsigned size() const { return Elements.size(); }

  /// Total number of qubits across all elements.
  unsigned dim() const;

  /// True if every element fully spans.
  bool fullySpans() const;

  /// True if any literal vector anywhere carries a phase.
  bool hasPhases() const;

  /// Tensor product: concatenation of element lists (§5.1).
  Basis tensor(const Basis &Other) const;

  /// N-fold tensor power (the b[N] surface syntax).
  Basis power(unsigned N) const;

  bool operator==(const Basis &Other) const {
    return Elements == Other.Elements;
  }

  std::string str() const;

private:
  std::vector<BasisElement> Elements;
};

} // namespace asdf

#endif // ASDF_BASIS_BASIS_H
