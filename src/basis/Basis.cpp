//===- Basis.cpp - Qwerty basis data structures ---------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "basis/Basis.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace asdf;

const char *asdf::primitiveBasisName(PrimitiveBasis Prim) {
  switch (Prim) {
  case PrimitiveBasis::Std:
    return "std";
  case PrimitiveBasis::Pm:
    return "pm";
  case PrimitiveBasis::Ij:
    return "ij";
  case PrimitiveBasis::Fourier:
    return "fourier";
  }
  return "<invalid>";
}

PrimitiveBasis asdf::symbolPrimitiveBasis(QubitSymbol Sym) {
  switch (Sym) {
  case QubitSymbol::Zero:
  case QubitSymbol::One:
    return PrimitiveBasis::Std;
  case QubitSymbol::Plus:
  case QubitSymbol::Minus:
    return PrimitiveBasis::Pm;
  case QubitSymbol::ImagI:
  case QubitSymbol::ImagJ:
    return PrimitiveBasis::Ij;
  }
  return PrimitiveBasis::Std;
}

bool asdf::symbolIsMinusEigenstate(QubitSymbol Sym) {
  switch (Sym) {
  case QubitSymbol::Zero:
  case QubitSymbol::Plus:
  case QubitSymbol::ImagI:
    return false;
  case QubitSymbol::One:
  case QubitSymbol::Minus:
  case QubitSymbol::ImagJ:
    return true;
  }
  return false;
}

QubitSymbol asdf::symbolFor(PrimitiveBasis Prim, bool Minus) {
  switch (Prim) {
  case PrimitiveBasis::Std:
    return Minus ? QubitSymbol::One : QubitSymbol::Zero;
  case PrimitiveBasis::Pm:
    return Minus ? QubitSymbol::Minus : QubitSymbol::Plus;
  case PrimitiveBasis::Ij:
    return Minus ? QubitSymbol::ImagJ : QubitSymbol::ImagI;
  case PrimitiveBasis::Fourier:
    break;
  }
  assert(false && "fourier basis has no per-qubit symbols");
  return QubitSymbol::Zero;
}

static char symbolChar(QubitSymbol Sym) {
  switch (Sym) {
  case QubitSymbol::Zero:
    return '0';
  case QubitSymbol::One:
    return '1';
  case QubitSymbol::Plus:
    return 'p';
  case QubitSymbol::Minus:
    return 'm';
  case QubitSymbol::ImagI:
    return 'i';
  case QubitSymbol::ImagJ:
    return 'j';
  }
  return '?';
}

BasisVector BasisVector::fromString(const std::string &Symbols) {
  assert(!Symbols.empty() && Symbols.size() <= MaxLiteralDim &&
         "bad qubit literal length");
  BasisVector V;
  V.Dim = Symbols.size();
  bool First = true;
  for (unsigned I = 0; I < Symbols.size(); ++I) {
    QubitSymbol Sym;
    switch (Symbols[I]) {
    case '0':
      Sym = QubitSymbol::Zero;
      break;
    case '1':
      Sym = QubitSymbol::One;
      break;
    case 'p':
      Sym = QubitSymbol::Plus;
      break;
    case 'm':
      Sym = QubitSymbol::Minus;
      break;
    case 'i':
      Sym = QubitSymbol::ImagI;
      break;
    case 'j':
      Sym = QubitSymbol::ImagJ;
      break;
    default:
      assert(false && "invalid qubit literal character");
      Sym = QubitSymbol::Zero;
      break;
    }
    PrimitiveBasis Prim = symbolPrimitiveBasis(Sym);
    if (First) {
      V.Prim = Prim;
      First = false;
    } else {
      assert(V.Prim == Prim && "mixed primitive bases in basis vector");
    }
    V.Eigenbits =
        setBitAt(V.Eigenbits, V.Dim, I, symbolIsMinusEigenstate(Sym));
  }
  return V;
}

std::string BasisVector::str() const {
  std::ostringstream OS;
  OS << '\'';
  for (unsigned I = 0; I < Dim; ++I)
    OS << symbolChar(symbolFor(Prim, bitAt(Eigenbits, Dim, I)));
  OS << '\'';
  if (HasPhase)
    OS << '@' << (Phase * 180.0 / M_PI);
  return OS.str();
}

BasisLiteral::BasisLiteral(std::vector<BasisVector> Vecs)
    : Vectors(std::move(Vecs)) {
  assert(!Vectors.empty() && "basis literal must have at least one vector");
  Prim = Vectors.front().Prim;
  Dim = Vectors.front().Dim;
#ifndef NDEBUG
  for (const BasisVector &V : Vectors)
    assert(V.Prim == Prim && V.Dim == Dim &&
           "basis literal vectors must agree on primitive basis and dim");
#endif
}

bool BasisLiteral::hasPhases() const {
  return std::any_of(Vectors.begin(), Vectors.end(),
                     [](const BasisVector &V) { return V.HasPhase; });
}

BasisLiteral BasisLiteral::normalized() const {
  BasisLiteral L = *this;
  for (BasisVector &V : L.Vectors)
    V = V.withoutPhase();
  std::sort(L.Vectors.begin(), L.Vectors.end(),
            [](const BasisVector &A, const BasisVector &B) {
              return A.eigenbitsLess(B);
            });
  return L;
}

bool BasisLiteral::eigenbitsDistinct() const {
  std::vector<EigenBits> Bits;
  Bits.reserve(Vectors.size());
  for (const BasisVector &V : Vectors)
    Bits.push_back(V.Eigenbits);
  std::sort(Bits.begin(), Bits.end());
  return std::adjacent_find(Bits.begin(), Bits.end()) == Bits.end();
}

std::string BasisLiteral::str() const {
  std::ostringstream OS;
  OS << '{';
  for (unsigned I = 0; I < Vectors.size(); ++I) {
    if (I)
      OS << ',';
    OS << Vectors[I].str();
  }
  OS << '}';
  return OS.str();
}

std::string BasisElement::str() const {
  switch (TheKind) {
  case BasisElementKind::Builtin: {
    std::ostringstream OS;
    OS << primitiveBasisName(Prim);
    if (Dim != 1)
      OS << '[' << Dim << ']';
    return OS.str();
  }
  case BasisElementKind::Literal:
    return Lit.str();
  case BasisElementKind::Padding: {
    std::ostringstream OS;
    OS << "pad[" << Dim << ']';
    return OS.str();
  }
  }
  return "<invalid>";
}

unsigned Basis::dim() const {
  unsigned Total = 0;
  for (const BasisElement &E : Elements)
    Total += E.dim();
  return Total;
}

bool Basis::fullySpans() const {
  return std::all_of(Elements.begin(), Elements.end(),
                     [](const BasisElement &E) { return E.fullySpans(); });
}

bool Basis::hasPhases() const {
  return std::any_of(Elements.begin(), Elements.end(),
                     [](const BasisElement &E) {
                       return E.isLiteral() && E.literalValue().hasPhases();
                     });
}

Basis Basis::tensor(const Basis &Other) const {
  std::vector<BasisElement> Combined = Elements;
  Combined.insert(Combined.end(), Other.Elements.begin(),
                  Other.Elements.end());
  return Basis(std::move(Combined));
}

Basis Basis::power(unsigned N) const {
  std::vector<BasisElement> Combined;
  Combined.reserve(Elements.size() * N);
  for (unsigned I = 0; I < N; ++I)
    Combined.insert(Combined.end(), Elements.begin(), Elements.end());
  return Basis(std::move(Combined));
}

std::string Basis::str() const {
  if (Elements.empty())
    return "<empty>";
  std::ostringstream OS;
  for (unsigned I = 0; I < Elements.size(); ++I) {
    if (I)
      OS << " + ";
    OS << Elements[I].str();
  }
  return OS.str();
}
