//===- SpanCheck.h - Span equivalence checking (§4.1, Appendix B) ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Efficient span-equivalence checking for basis translations. A basis
/// translation b_in >> b_out is well-typed only if span(b_in) = span(b_out);
/// checking this naively can take exponential time (e.g. {'0','1'}[64]), so
/// Asdf factors basis elements instead, running in O(k^2 log k) for k AST
/// nodes (Algorithms B1-B4 and Theorem B.6 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_BASIS_SPANCHECK_H
#define ASDF_BASIS_SPANCHECK_H

#include "basis/Basis.h"

#include <optional>
#include <utility>

namespace asdf {

/// Tries to factor a fully-spanning prefix of \p PrefixDim qubits from the
/// (normalized) basis literal \p Lit (Algorithm B3). On success, returns the
/// remainder literal over the trailing (Lit.Dim - PrefixDim) qubits such that
/// span(Lit) = H2^PrefixDim (x) span(remainder). Returns std::nullopt if no
/// such factoring exists.
std::optional<BasisLiteral> factorFullSpanPrefix(const BasisLiteral &Lit,
                                                 unsigned PrefixDim);

/// Tries to factor the (normalized) literal \p Small from the front of the
/// (normalized) literal \p Big (Algorithm B4): succeeds iff
/// span(Big) = span(Small) (x) span(remainder) with the prefix vectors being
/// exactly Small's vectors. Returns the remainder on success.
std::optional<BasisLiteral> factorLiteralPrefix(const BasisLiteral &Big,
                                                const BasisLiteral &Small);

/// General prefix factoring used by basis alignment (Appendix F): attempts to
/// write \p Lit as Prefix (x) Suffix where Prefix has \p PrefixDim qubits.
/// Unlike Algorithm B4, the prefix is discovered rather than given. Phases
/// are preserved only when they can be attributed entirely to the prefix or
/// entirely to the suffix; otherwise factoring fails so the caller falls back
/// to merging.
std::optional<std::pair<BasisLiteral, BasisLiteral>>
factorLiteralAt(const BasisLiteral &Lit, unsigned PrefixDim);

/// Merges two adjacent basis elements into one literal (the fallback of
/// Algorithm E7 when factoring is impossible). Built-in elements are
/// expanded into fully-spanning std-eigenbit literals of their primitive
/// basis; the result has Lhs.dim() + Rhs.dim() qubits and
/// |Lhs| * |Rhs| vectors. Requires matching primitive bases for literals.
BasisLiteral mergeElements(const BasisElement &Lhs, const BasisElement &Rhs);

/// Expands a built-in basis element into the equivalent basis literal
/// ({'0','1'}-style, in that primitive basis). Asserts dim is small enough
/// to enumerate (used only during alignment/merging of narrow elements).
BasisLiteral builtinToLiteral(PrimitiveBasis Prim, unsigned Dim);

/// Checks span(b_in) = span(b_out) in O(k^2 log k) time (Algorithm B1).
/// Inputs need not be normalized; phases are ignored as in the paper.
bool spansEquivalent(const Basis &BIn, const Basis &BOut);

} // namespace asdf

#endif // ASDF_BASIS_SPANCHECK_H
