//===- Server.cpp - NDJSON-over-unix-socket server for asdfd --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "obs/Trace.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace asdf;

namespace {

/// Per-connection shared state: the fd, a write lock serializing response
/// lines, and an outstanding-request count the reader waits on before
/// closing — a response callback may fire on a worker thread after the
/// client half-closed.
struct ConnState {
  explicit ConnState(int Fd) : Fd(Fd) {}

  void begin() {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Outstanding;
  }
  void done() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Outstanding;
    }
    Cv.notify_all();
  }
  void waitDrained() {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [this] { return Outstanding == 0; });
  }

  /// Writes one NDJSON line; short writes are continued, EPIPE (client
  /// gone) is swallowed — the request still ran, there is just no one to
  /// tell.
  void writeLine(const std::string &Json) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    std::string Line = Json + "\n";
    if (fault::shouldFail("wire.torn-write")) {
      // Deliver half the line, then kill the connection: the client must
      // classify this as connection-lost, not as malformed JSON.
      size_t Half = Line.size() / 2;
      size_t Sent = 0;
      while (Sent < Half) {
        ssize_t N = ::send(Fd, Line.data() + Sent, Half - Sent,
                           MSG_NOSIGNAL);
        if (N <= 0)
          break;
        Sent += static_cast<size_t>(N);
      }
      ::shutdown(Fd, SHUT_RDWR);
      return;
    }
    size_t Off = 0;
    while (Off < Line.size()) {
      ssize_t N = ::send(Fd, Line.data() + Off, Line.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return;
      }
      Off += static_cast<size_t>(N);
    }
  }

  int Fd;
  std::mutex WriteMu;
  std::mutex Mu;
  std::condition_variable Cv;
  unsigned Outstanding = 0;
};

} // namespace

Server::Server(ServerOptions Options)
    : Options(std::move(Options)), Service(this->Options.Service) {}

Server::~Server() {
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (int End : WakePipe)
    if (End >= 0)
      ::close(End);
}

bool Server::start(std::string &Error) {
  const std::string &Path = Options.SocketPath;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long (" + std::to_string(Path.size()) +
            " bytes; the unix-socket limit is " +
            std::to_string(sizeof(Addr.sun_path) - 1) + ")";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  if (::pipe(WakePipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    if (errno != EADDRINUSE) {
      Error = std::string("bind ") + Path + ": " + std::strerror(errno);
      return false;
    }
    // A socket file exists. If a daemon answers, refuse; otherwise it is
    // a stale file from an unclean exit — reclaim it.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool Live = Probe >= 0 &&
                ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Live) {
      Error = "another daemon is already serving " + Path;
      return false;
    }
    ::unlink(Path.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      Error = std::string("bind ") + Path + ": " + std::strerror(errno);
      return false;
    }
  }
  if (::listen(ListenFd, 64) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void Server::requestShutdown() {
  // Async-signal-safe: set the flag and poke the accept loop.
  Shutdown.store(true);
  char Byte = 1;
  [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &Byte, 1);
}

int Server::serve() {
  while (!Shutdown.load()) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int Ready = ::poll(Fds, 2, -1);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "asdfd: poll: %s\n", std::strerror(errno));
      break;
    }
    if (Fds[1].revents)
      break; // Woken for shutdown.
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "asdfd: accept: %s\n", std::strerror(errno));
      continue;
    }
    if (Options.Verbose)
      std::fprintf(stderr, "asdfd: connection fd=%d\n", Conn);
    Connections.emplace_back([this, Conn] { connectionMain(Conn); });
  }

  // Graceful drain: no new connections, wake blocked readers, let every
  // accepted request finish and its response flush, then remove the
  // socket so the path is immediately reusable.
  ::close(ListenFd);
  ListenFd = -1;
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (int Fd : LiveConnFds)
      ::shutdown(Fd, SHUT_RD); // Readers see EOF and finish up.
  }
  for (std::thread &T : Connections)
    if (T.joinable())
      T.join();
  Service.drain();
  ::unlink(Options.SocketPath.c_str());
  if (Options.Verbose)
    std::fprintf(stderr, "asdfd: drained, exiting\n");
  return 0;
}

void Server::connectionMain(int Fd) {
  auto State = std::make_shared<ConnState>(Fd);
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    LiveConnFds.insert(Fd);
  }
  std::string Buffer;
  char Chunk[4096];
  bool Open = true;
  while (Open) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break; // EOF (client done, or drain woke us via SHUT_RD).
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl = Buffer.find('\n', Start); Nl != std::string::npos;
         Nl = Buffer.find('\n', Start)) {
      std::string Line = Buffer.substr(Start, Nl - Start);
      Start = Nl + 1;
      if (Line.empty())
        continue;
      ServiceRequest Req;
      uint64_t Id = 0;
      std::string Error;
      // The trace id lives inside the line being decoded, so the decode
      // span is emitted retroactively once the parse has produced it.
      uint64_t DecodeT0 = obs::traceEnabled() ? obs::nowNs() : 0;
      if (!parseRequestLine(Line, Req, Id, Error)) {
        State->writeLine(ServiceResponse::failure(Id, "bad-request", Error)
                             .toJson()
                             .write());
        continue;
      }
      if (DecodeT0) {
        uint64_t Now = obs::nowNs();
        obs::emitSpan("wire.decode", "wire", DecodeT0,
                      Now > DecodeT0 ? Now - DecodeT0 : 0, Req.Trace);
      }
      if (Options.Verbose)
        std::fprintf(stderr, "asdfd: fd=%d request id=%llu\n", Fd,
                     static_cast<unsigned long long>(Id));
      if (Req.TheKind == ServiceRequest::Kind::Shutdown) {
        // Answer before pulling the plug so the client sees the ack.
        State->writeLine(Service.handle(Req).toJson().write());
        requestShutdown();
        continue;
      }
      if (Service.shuttingDown()) {
        State->writeLine(ServiceResponse::failure(
                             Id, "shutting-down",
                             "daemon is draining; resubmit elsewhere")
                             .toJson()
                             .write());
        continue;
      }
      State->begin();
      // The fd keys the queue's per-client fairness: a pipelining
      // connection rotates with everyone else instead of starving them.
      JobQueue::Submit Outcome = Service.submit(
          Req,
          [State](ServiceResponse Resp) {
            State->writeLine(Resp.toJson().write());
            State->done();
          },
          static_cast<uint64_t>(Fd));
      if (Outcome != JobQueue::Submit::Accepted) {
        State->writeLine(
            (Outcome == JobQueue::Submit::Overloaded
                 ? Service.overloadedResponse(Id)
                 : ServiceResponse::failure(
                       Id, "shutting-down",
                       "daemon is draining; resubmit elsewhere"))
                .toJson()
                .write());
        State->done();
      }
    }
    Buffer.erase(0, Start);
  }
  // Every submitted request must answer before the fd closes.
  State->waitDrained();
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    LiveConnFds.erase(Fd);
  }
  ::close(Fd);
}
