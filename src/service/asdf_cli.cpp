//===- asdf_cli.cpp - Thin client for the asdfd daemon --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin command-line client for asdfd. It builds the same
/// `ServiceRequest` struct asdfc-equivalent flags would describe, sends it
/// over the unix socket, and prints results in asdfc's format — so
/// `asdf-cli run prog.qw --shots 100 --seed 7` writes bit-for-bit the
/// stdout of `asdfc prog.qw --emit run --shots 100 --seed 7`, just served
/// from a warm daemon instead of a cold process.
///
///   asdf-cli --socket /run/asdf.sock compile prog.qw --emit qasm
///   asdf-cli --socket /run/asdf.sock run prog.qw --shots 100 --seed 7
///   asdf-cli --socket /run/asdf.sock stats
///   asdf-cli --socket /run/asdf.sock shutdown
///
/// Exit codes follow the toolchain convention: 0 success, 1 runtime or
/// daemon-reported errors, 2 command-line errors.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "support/BuildInfo.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace asdf;

namespace {

void usage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: asdf-cli [--socket <path>] <command> [options]\n"
      "commands:\n"
      "  compile <file.qw>   compile remotely and print the artifact\n"
      "  run <file.qw>       simulate remotely; prints one output bit\n"
      "                      string per shot, identical to asdfc\n"
      "  bind-run <file.qw>  parameter sweep: the daemon compiles the\n"
      "                      program once (literal rotation angles are\n"
      "                      lifted, so programs differing only in angles\n"
      "                      share a cached circuit), re-binds per point,\n"
      "                      and runs each point's shots\n"
      "  stats               print daemon statistics (JSON)\n"
      "  shutdown            ask the daemon to drain and exit\n"
      "global options:\n"
      "  -h, --help          print this help and exit\n"
      "  --version           print version, build identity, and the cache\n"
      "                      fingerprint, then exit\n"
      "  --socket <path>     daemon socket (default: $ASDF_SOCKET, else\n"
      "                      /tmp/asdfd.sock)\n"
      "  --timeout <secs>    per-request timeout, also bounding the wait\n"
      "                      for the response (default: none)\n"
      "compile/run options (same meaning as asdfc):\n"
      "  --entry <name>      entry kernel (default: kernel)\n"
      "  --bind <Var>=<int>  bind a dimension variable\n"
      "  --capture <fn>.<param>=<bits|@name>  bind a capture\n"
      "  --pipeline <plan>   pipeline preset or stage:pass spec\n"
      "  --emit qasm|qir|qir-base|qwerty-ir|circuit   (compile only)\n"
      "run options:\n"
      "  --shots <n>         shots (default 1)\n"
      "  --seed <n>          base RNG seed (default 0); results are\n"
      "                      bit-identical to asdfc for the same seed\n"
      "  --backend auto|sv|stab\n"
      "  --jobs <n>          daemon-side worker threads for this run\n"
      "                      (default 1; results identical for any value)\n"
      "bind-run options:\n"
      "  --params <a,b,...>  names of the $-parameters the sweep varies,\n"
      "                      defining the value order within each point\n"
      "  --sweep <spec>      sweep points: semicolon-separated, each a\n"
      "                      comma-separated value list in --params order\n"
      "                      (e.g. --params theta --sweep \"0;45;90\")\n");
}

[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "asdf-cli: %s\n", Message.c_str());
  std::fprintf(stderr, "run 'asdf-cli --help' for usage\n");
  std::exit(2);
}

bool splitEq(const std::string &Arg, std::string &Key, std::string &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos)
    return false;
  Key = Arg.substr(0, Eq);
  Value = Arg.substr(Eq + 1);
  return true;
}

/// Splits \p Spec on \p Sep, keeping empty pieces (so a malformed spec
/// fails loudly downstream instead of silently shrinking).
std::vector<std::string> splitOn(const std::string &Spec, char Sep) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    size_t Next = Spec.find(Sep, Pos);
    Parts.push_back(Spec.substr(
        Pos, Next == std::string::npos ? std::string::npos : Next - Pos));
    if (Next == std::string::npos)
      return Parts;
    Pos = Next + 1;
  }
}

/// Locale-independent whole-string double parse (strtod honors LC_NUMERIC).
bool parseDoubleArg(const std::string &S, double &Out) {
  // Tolerate surrounding whitespace: sweep specs read naturally as
  // "0; 45.5; 90". from_chars itself is locale-independent and exact.
  const char *B = S.c_str();
  const char *E = B + S.size();
  while (B != E && std::isspace(static_cast<unsigned char>(*B)))
    ++B;
  while (E != B && std::isspace(static_cast<unsigned char>(E[-1])))
    --E;
  if (B == E)
    return false;
  std::from_chars_result R = std::from_chars(B, E, Out);
  return R.ec == std::errc() && R.ptr == E;
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket;
  if (const char *Env = std::getenv("ASDF_SOCKET"))
    Socket = Env;
  if (Socket.empty())
    Socket = "/tmp/asdfd.sock";

  ServiceRequest Req;
  Req.Id = 1;
  std::string Command;
  std::string File;
  double Timeout = 0.0;
  bool EmitSet = false;
  std::string ParamsArg, SweepArg;
  bool ParamsSet = false, SweepSet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usageError("option '" + Arg + "' expects a value");
      return argv[++I];
    };
    if (Arg == "-h" || Arg == "--help") {
      usage(stdout);
      return 0;
    } else if (Arg == "--version") {
      printVersion("asdf-cli");
      return 0;
    } else if (Arg == "--socket") {
      Socket = Next();
    } else if (Arg == "--timeout") {
      Timeout = std::atof(Next());
      if (Timeout <= 0)
        usageError("--timeout expects a positive number of seconds");
    } else if (Arg == "--entry") {
      Req.Entry = Next();
    } else if (Arg == "--pipeline") {
      Req.Pipeline = Next();
    } else if (Arg == "--emit") {
      Req.Emit = Next();
      EmitSet = true;
    } else if (Arg == "--bind") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--bind expects <Var>=<int>");
      if (!Req.Bindings.DimVars.emplace(Key, std::atoll(Value.c_str()))
               .second)
        usageError("duplicate --bind for dimension variable '" + Key +
                   "'");
    } else if (Arg == "--capture") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--capture expects <function>.<param>=<value>");
      size_t Dot = Key.find('.');
      if (Dot == std::string::npos)
        usageError("capture key '" + Key + "' must be <function>.<param>");
      std::string Func = Key.substr(0, Dot);
      std::string Param = Key.substr(Dot + 1);
      if (Req.Bindings.Captures[Func].count(Param))
        usageError("duplicate --capture for '" + Key + "'");
      if (!Value.empty() && Value[0] == '@')
        Req.Bindings.Captures[Func][Param] =
            CaptureValue::classicalFunc(Value.substr(1));
      else
        Req.Bindings.Captures[Func][Param] =
            CaptureValue::bitsFromString(Value);
    } else if (Arg == "--shots") {
      Req.Shots = static_cast<unsigned>(std::atoi(Next()));
    } else if (Arg == "--seed") {
      Req.Seed = std::strtoull(Next(), nullptr, 0);
    } else if (Arg == "--backend") {
      Req.Backend = Next();
    } else if (Arg == "--jobs") {
      Req.Jobs = static_cast<unsigned>(std::atoi(Next()));
    } else if (Arg == "--params") {
      ParamsArg = Next();
      ParamsSet = true;
    } else if (Arg == "--sweep") {
      SweepArg = Next();
      SweepSet = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usageError("unknown option '" + Arg + "'");
    } else if (Command.empty()) {
      Command = Arg;
    } else if (File.empty()) {
      File = Arg;
    } else {
      usageError("unexpected argument '" + Arg + "'");
    }
  }

  if (Command.empty())
    usageError("expected a command (compile, run, bind-run, stats, or "
               "shutdown)");
  if (Command == "compile") {
    Req.TheKind = ServiceRequest::Kind::Compile;
  } else if (Command == "run") {
    Req.TheKind = ServiceRequest::Kind::Run;
    if (EmitSet)
      usageError("--emit applies only to the compile command");
  } else if (Command == "bind-run") {
    Req.TheKind = ServiceRequest::Kind::BindRun;
    if (EmitSet)
      usageError("--emit applies only to the compile command");
    if (!SweepSet)
      usageError("bind-run needs --sweep (the points to run)");
    if (ParamsSet && !ParamsArg.empty())
      for (const std::string &Name : splitOn(ParamsArg, ',')) {
        if (Name.empty())
          usageError("--params has an empty name");
        Req.SweepParams.push_back(Name);
      }
    for (const std::string &PointSpec : splitOn(SweepArg, ';')) {
      std::vector<double> Point;
      if (!PointSpec.empty())
        for (const std::string &Val : splitOn(PointSpec, ',')) {
          double D;
          if (!parseDoubleArg(Val, D))
            usageError("--sweep value '" + Val + "' is not a number");
          Point.push_back(D);
        }
      if (Point.size() != Req.SweepParams.size())
        usageError("--sweep point " + std::to_string(Req.Points.size()) +
                   " has " + std::to_string(Point.size()) +
                   " value(s) but --params names " +
                   std::to_string(Req.SweepParams.size()));
      Req.Points.push_back(std::move(Point));
    }
  } else if (Command == "stats") {
    Req.TheKind = ServiceRequest::Kind::Stats;
  } else if (Command == "shutdown") {
    Req.TheKind = ServiceRequest::Kind::Shutdown;
  } else {
    usageError("unknown command '" + Command +
               "' (expected compile, run, bind-run, stats, or shutdown)");
  }
  if ((ParamsSet || SweepSet) &&
      Req.TheKind != ServiceRequest::Kind::BindRun)
    usageError("--params/--sweep apply only to the bind-run command");

  if (Req.TheKind == ServiceRequest::Kind::Compile ||
      Req.TheKind == ServiceRequest::Kind::Run ||
      Req.TheKind == ServiceRequest::Kind::BindRun) {
    if (File.empty())
      usageError(Command + " expects a .qw file argument");
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "asdf-cli: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Req.Source = Buf.str();
  } else if (!File.empty()) {
    usageError(Command + " takes no file argument");
  }
  Req.TimeoutSecs = Timeout;

  ServiceClient Client;
  std::string Error;
  if (!Client.connect(Socket, Error)) {
    std::fprintf(stderr, "asdf-cli: %s\n", Error.c_str());
    return 1;
  }
  ServiceResponse Resp;
  // Give the daemon a little slack past the request's own deadline before
  // declaring the transport dead.
  if (!Client.call(Req, Resp, Error, Timeout > 0 ? Timeout + 5.0 : 0.0)) {
    std::fprintf(stderr, "asdf-cli: %s\n", Error.c_str());
    return 1;
  }
  if (!Resp.Ok) {
    std::fprintf(stderr, "asdf-cli: %s: %s\n", Resp.Error.Kind.c_str(),
                 Resp.Error.Message.c_str());
    return 1;
  }

  switch (Req.TheKind) {
  case ServiceRequest::Kind::Compile:
    std::fprintf(stderr, "asdf-cli: cache %s (key %s, compile %.1f ms)\n",
                 Resp.CacheHit ? "hit" : "miss", Resp.Key.c_str(),
                 Resp.CompileSecs * 1e3);
    std::fputs(Resp.Artifact.c_str(), stdout);
    break;
  case ServiceRequest::Kind::Run:
    std::fprintf(stderr, "asdf-cli: cache %s (key %s, compile %.1f ms)\n",
                 Resp.CacheHit ? "hit" : "miss", Resp.Key.c_str(),
                 Resp.CompileSecs * 1e3);
    for (const std::string &Bits : Resp.Results)
      std::printf("%s\n", Bits.c_str());
    break;
  case ServiceRequest::Kind::BindRun: {
    std::fprintf(stderr, "asdf-cli: cache %s (key %s, compile %.1f ms)\n",
                 Resp.CacheHit ? "hit" : "miss", Resp.Key.c_str(),
                 Resp.CompileSecs * 1e3);
    for (size_t P = 0; P < Resp.PointResults.size(); ++P) {
      std::string Header = "# point " + std::to_string(P);
      for (size_t K = 0; K < Req.SweepParams.size(); ++K) {
        char Buf[64];
        std::to_chars_result R =
            std::to_chars(Buf, Buf + sizeof(Buf), Req.Points[P][K]);
        Header += (K ? ", " : ": ") + Req.SweepParams[K] + "=" +
                  std::string(Buf, R.ptr);
      }
      std::printf("%s\n", Header.c_str());
      for (const std::string &Bits : Resp.PointResults[P])
        std::printf("%s\n", Bits.c_str());
    }
    break;
  }
  case ServiceRequest::Kind::Stats:
    std::printf("%s\n", Resp.StatsBody.write().c_str());
    break;
  case ServiceRequest::Kind::Shutdown:
    std::fprintf(stderr, "asdf-cli: daemon draining\n");
    break;
  }
  return 0;
}
