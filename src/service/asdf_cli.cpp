//===- asdf_cli.cpp - Thin client for the asdfd daemon --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin command-line client for asdfd. It builds the same
/// `ServiceRequest` struct asdfc-equivalent flags would describe, sends it
/// over the unix socket, and prints results in asdfc's format — so
/// `asdf-cli run prog.qw --shots 100 --seed 7` writes bit-for-bit the
/// stdout of `asdfc prog.qw --emit run --shots 100 --seed 7`, just served
/// from a warm daemon instead of a cold process.
///
///   asdf-cli --socket /run/asdf.sock compile prog.qw --emit qasm
///   asdf-cli --socket /run/asdf.sock run prog.qw --shots 100 --seed 7
///   asdf-cli --socket /run/asdf.sock stats
///   asdf-cli --socket /run/asdf.sock shutdown
///
/// Exit codes follow the toolchain convention: 0 success, 1 runtime or
/// daemon-reported errors, 2 command-line errors.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "service/Client.h"
#include "support/BuildInfo.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace asdf;

namespace {

void usage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: asdf-cli [--socket <path>] <command> [options]\n"
      "commands:\n"
      "  compile <file.qw>   compile remotely and print the artifact\n"
      "  run <file.qw>       simulate remotely; prints one output bit\n"
      "                      string per shot, identical to asdfc\n"
      "  bind-run <file.qw>  parameter sweep: the daemon compiles the\n"
      "                      program once (literal rotation angles are\n"
      "                      lifted, so programs differing only in angles\n"
      "                      share a cached circuit), re-binds per point,\n"
      "                      and runs each point's shots\n"
      "  stats               print a summary of daemon statistics (cache\n"
      "                      hit rate, request counts, per-op latency\n"
      "                      quantiles); --json prints the raw payload\n"
      "  metrics             print the daemon's metrics in Prometheus\n"
      "                      text exposition format\n"
      "  shutdown            ask the daemon to drain and exit\n"
      "global options:\n"
      "  -h, --help          print this help and exit\n"
      "  --version           print version, build identity, and the cache\n"
      "                      fingerprint, then exit\n"
      "  --socket <path>     daemon socket (default: $ASDF_SOCKET, else\n"
      "                      /tmp/asdfd.sock)\n"
      "  --timeout <secs>    per-request timeout, also bounding the wait\n"
      "                      for the response (default: none)\n"
      "  --retries <n>       retry a lost connection or an overloaded /\n"
      "                      resource-exhausted / shutting-down answer up\n"
      "                      to n times, reconnecting with exponential\n"
      "                      backoff and honoring the daemon's\n"
      "                      retry_after_ms hint (default 0)\n"
      "  --retry-budget-ms <n>\n"
      "                      total time allowed across retries (default\n"
      "                      10000)\n"
      "  --trace-id <n>      tag the request with a 64-bit trace id; a\n"
      "                      daemon running with --trace records all of\n"
      "                      this request's spans under that id\n"
      "  --json              stats: print the raw JSON payload\n"
      "compile/run options (same meaning as asdfc):\n"
      "  --entry <name>      entry kernel (default: kernel)\n"
      "  --bind <Var>=<int>  bind a dimension variable\n"
      "  --capture <fn>.<param>=<bits|@name>  bind a capture\n"
      "  --pipeline <plan>   pipeline preset or stage:pass spec\n"
      "  --emit qasm|qir|qir-base|qwerty-ir|circuit   (compile only)\n"
      "run options:\n"
      "  --shots <n>         shots (default 1)\n"
      "  --seed <n>          base RNG seed (default 0); results are\n"
      "                      bit-identical to asdfc for the same seed\n"
      "  --backend auto|sv|stab|mps\n"
      "  --jobs <n>          daemon-side worker threads for this run\n"
      "                      (default 1; results identical for any value)\n"
      "bind-run options:\n"
      "  --params <a,b,...>  names of the $-parameters the sweep varies,\n"
      "                      defining the value order within each point\n"
      "  --sweep <spec>      sweep points: semicolon-separated, each a\n"
      "                      comma-separated value list in --params order\n"
      "                      (e.g. --params theta --sweep \"0;45;90\")\n");
}

[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "asdf-cli: %s\n", Message.c_str());
  std::fprintf(stderr, "run 'asdf-cli --help' for usage\n");
  std::exit(2);
}

bool splitEq(const std::string &Arg, std::string &Key, std::string &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos)
    return false;
  Key = Arg.substr(0, Eq);
  Value = Arg.substr(Eq + 1);
  return true;
}

/// Splits \p Spec on \p Sep, keeping empty pieces (so a malformed spec
/// fails loudly downstream instead of silently shrinking).
std::vector<std::string> splitOn(const std::string &Spec, char Sep) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    size_t Next = Spec.find(Sep, Pos);
    Parts.push_back(Spec.substr(
        Pos, Next == std::string::npos ? std::string::npos : Next - Pos));
    if (Next == std::string::npos)
      return Parts;
    Pos = Next + 1;
  }
}

/// Locale-independent whole-string double parse (strtod honors LC_NUMERIC).
bool parseDoubleArg(const std::string &S, double &Out) {
  // Tolerate surrounding whitespace: sweep specs read naturally as
  // "0; 45.5; 90". from_chars itself is locale-independent and exact.
  const char *B = S.c_str();
  const char *E = B + S.size();
  while (B != E && std::isspace(static_cast<unsigned char>(*B)))
    ++B;
  while (E != B && std::isspace(static_cast<unsigned char>(E[-1])))
    --E;
  if (B == E)
    return false;
  std::from_chars_result R = std::from_chars(B, E, Out);
  return R.ec == std::errc() && R.ptr == E;
}


/// Renders the enriched stats payload as a human summary: cache hit
/// rate, request mix, and per-op latency quantiles re-derived from the
/// reported bucket counts with the shared Histogram math.
void printStatsSummary(const json::Value &S) {
  auto U64 = [](const json::Value *Obj, const char *Key) -> uint64_t {
    if (!Obj)
      return 0;
    const json::Value *V = Obj->get(Key);
    return V ? V->asU64() : 0;
  };
  const json::Value *Cache = S.get("cache");
  const json::Value *Req = S.get("requests");
  const json::Value *Queue = S.get("queue");
  const json::Value *Lat = S.get("latency");

  std::printf("daemon %s (fingerprint %s)\n",
              S.get("version") ? S.get("version")->asString().c_str() : "?",
              S.get("fingerprint")
                  ? S.get("fingerprint")->asString().c_str()
                  : "?");
  std::printf("uptime: %.1f s, %llu worker(s)\n",
              S.get("uptime_secs") ? S.get("uptime_secs")->asDouble() : 0.0,
              (unsigned long long)U64(&S, "workers"));

  uint64_t Hits = U64(Cache, "hits"), Misses = U64(Cache, "misses");
  double HitRate =
      Hits + Misses ? 100.0 * double(Hits) / double(Hits + Misses) : 0.0;
  std::printf("cache: %llu hit(s), %llu miss(es) (%.1f%% hit rate), "
              "%llu entr%s, %llu / %llu bytes\n",
              (unsigned long long)Hits, (unsigned long long)Misses, HitRate,
              (unsigned long long)U64(Cache, "entries"),
              U64(Cache, "entries") == 1 ? "y" : "ies",
              (unsigned long long)U64(Cache, "bytes_used"),
              (unsigned long long)U64(Cache, "byte_budget"));
  std::printf("requests: %llu compile, %llu run, %llu bind-run, "
              "%llu stats; %llu error(s), %llu timeout(s)\n",
              (unsigned long long)U64(Req, "compile"),
              (unsigned long long)U64(Req, "run"),
              (unsigned long long)U64(Req, "bind_run"),
              (unsigned long long)U64(Req, "stats"),
              (unsigned long long)U64(Req, "errors"),
              (unsigned long long)U64(Req, "timeouts"));
  std::printf("work: %llu shot(s), %llu compiled, %llu coalesced\n",
              (unsigned long long)U64(Req, "shots"),
              (unsigned long long)U64(Req, "compiled"),
              (unsigned long long)U64(Req, "coalesced"));
  std::printf("queue: %llu submitted, %llu executed, %llu rejected, "
              "%llu shed, %llu pending\n",
              (unsigned long long)U64(Queue, "submitted"),
              (unsigned long long)U64(Queue, "executed"),
              (unsigned long long)U64(Queue, "rejected"),
              (unsigned long long)U64(Queue, "shed"),
              (unsigned long long)U64(Queue, "pending"));
  uint64_t ShedTotal = U64(Req, "shed_overloaded") +
                       U64(Req, "shed_memory") + U64(Req, "shed_expired");
  if (ShedTotal)
    std::printf("shed: %llu overloaded, %llu memory, %llu expired\n",
                (unsigned long long)U64(Req, "shed_overloaded"),
                (unsigned long long)U64(Req, "shed_memory"),
                (unsigned long long)U64(Req, "shed_expired"));
  if (const json::Value *Disk = S.get("disk")) {
    uint64_t DHits = U64(Disk, "hits"), DMisses = U64(Disk, "misses");
    double DRate = DHits + DMisses
                       ? 100.0 * double(DHits) / double(DHits + DMisses)
                       : 0.0;
    std::printf("disk: %llu hit(s), %llu miss(es) (%.1f%% hit rate), "
                "%llu entr%s, %llu / %llu bytes, %llu warmed, "
                "%llu quarantined, %llu write failure(s)\n",
                (unsigned long long)DHits, (unsigned long long)DMisses,
                DRate, (unsigned long long)U64(Disk, "entries"),
                U64(Disk, "entries") == 1 ? "y" : "ies",
                (unsigned long long)U64(Disk, "bytes_used"),
                (unsigned long long)U64(Disk, "byte_budget"),
                (unsigned long long)U64(Disk, "warmed"),
                (unsigned long long)U64(Disk, "quarantined"),
                (unsigned long long)U64(Disk, "write_failures"));
  }
  if (!Lat)
    return;
  std::printf("latency: %-10s %8s %10s %10s %10s\n", "op", "count",
              "p50-ms", "p90-ms", "p99-ms");
  for (const char *Op : {"compile", "run", "bind_run", "stats"}) {
    const json::Value *H = Lat->get(Op);
    if (!H)
      continue;
    // Rebuild from the bucket counts: the numbers printed here come from
    // the same Histogram::quantile code the daemon used, so they match
    // the reported p50/p90/p99 exactly.
    obs::Histogram Rebuilt;
    if (!obs::Histogram::fromJson(*H, Rebuilt))
      continue;
    std::printf("         %-10s %8llu %10.3f %10.3f %10.3f\n", Op,
                (unsigned long long)Rebuilt.count(),
                1e3 * Rebuilt.quantile(0.50), 1e3 * Rebuilt.quantile(0.90),
                1e3 * Rebuilt.quantile(0.99));
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket;
  if (const char *Env = std::getenv("ASDF_SOCKET"))
    Socket = Env;
  if (Socket.empty())
    Socket = "/tmp/asdfd.sock";

  ServiceRequest Req;
  Req.Id = 1;
  std::string Command;
  std::string File;
  double Timeout = 0.0;
  ServiceClient::RetryPolicy Retry;
  bool EmitSet = false;
  bool RawJson = false;
  std::string ParamsArg, SweepArg;
  bool ParamsSet = false, SweepSet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usageError("option '" + Arg + "' expects a value");
      return argv[++I];
    };
    if (Arg == "-h" || Arg == "--help") {
      usage(stdout);
      return 0;
    } else if (Arg == "--version") {
      printVersion("asdf-cli");
      return 0;
    } else if (Arg == "--socket") {
      Socket = Next();
    } else if (Arg == "--timeout") {
      Timeout = std::atof(Next());
      if (Timeout <= 0)
        usageError("--timeout expects a positive number of seconds");
    } else if (Arg == "--retries") {
      long long N = std::atoll(Next());
      if (N < 0)
        usageError("--retries expects a non-negative count");
      Retry.MaxRetries = static_cast<unsigned>(N);
    } else if (Arg == "--retry-budget-ms") {
      long long N = std::atoll(Next());
      if (N <= 0)
        usageError("--retry-budget-ms expects a positive count");
      Retry.BudgetMs = static_cast<uint64_t>(N);
    } else if (Arg == "--entry") {
      Req.Entry = Next();
    } else if (Arg == "--pipeline") {
      Req.Pipeline = Next();
    } else if (Arg == "--emit") {
      Req.Emit = Next();
      EmitSet = true;
    } else if (Arg == "--bind") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--bind expects <Var>=<int>");
      if (!Req.Bindings.DimVars.emplace(Key, std::atoll(Value.c_str()))
               .second)
        usageError("duplicate --bind for dimension variable '" + Key +
                   "'");
    } else if (Arg == "--capture") {
      std::string Key, Value;
      if (!splitEq(Next(), Key, Value))
        usageError("--capture expects <function>.<param>=<value>");
      size_t Dot = Key.find('.');
      if (Dot == std::string::npos)
        usageError("capture key '" + Key + "' must be <function>.<param>");
      std::string Func = Key.substr(0, Dot);
      std::string Param = Key.substr(Dot + 1);
      if (Req.Bindings.Captures[Func].count(Param))
        usageError("duplicate --capture for '" + Key + "'");
      if (!Value.empty() && Value[0] == '@')
        Req.Bindings.Captures[Func][Param] =
            CaptureValue::classicalFunc(Value.substr(1));
      else
        Req.Bindings.Captures[Func][Param] =
            CaptureValue::bitsFromString(Value);
    } else if (Arg == "--shots") {
      Req.Shots = static_cast<unsigned>(std::atoi(Next()));
    } else if (Arg == "--seed") {
      Req.Seed = std::strtoull(Next(), nullptr, 0);
    } else if (Arg == "--backend") {
      Req.Backend = Next();
    } else if (Arg == "--jobs") {
      Req.Jobs = static_cast<unsigned>(std::atoi(Next()));
    } else if (Arg == "--params") {
      ParamsArg = Next();
      ParamsSet = true;
    } else if (Arg == "--sweep") {
      SweepArg = Next();
      SweepSet = true;
    } else if (Arg == "--trace-id") {
      Req.Trace = std::strtoull(Next(), nullptr, 0);
    } else if (Arg == "--json") {
      RawJson = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usageError("unknown option '" + Arg + "'");
    } else if (Command.empty()) {
      Command = Arg;
    } else if (File.empty()) {
      File = Arg;
    } else {
      usageError("unexpected argument '" + Arg + "'");
    }
  }

  if (Command.empty())
    usageError("expected a command (compile, run, bind-run, stats, "
               "metrics, or shutdown)");
  if (Command == "compile") {
    Req.TheKind = ServiceRequest::Kind::Compile;
  } else if (Command == "run") {
    Req.TheKind = ServiceRequest::Kind::Run;
    if (EmitSet)
      usageError("--emit applies only to the compile command");
  } else if (Command == "bind-run") {
    Req.TheKind = ServiceRequest::Kind::BindRun;
    if (EmitSet)
      usageError("--emit applies only to the compile command");
    if (!SweepSet)
      usageError("bind-run needs --sweep (the points to run)");
    if (ParamsSet && !ParamsArg.empty())
      for (const std::string &Name : splitOn(ParamsArg, ',')) {
        if (Name.empty())
          usageError("--params has an empty name");
        Req.SweepParams.push_back(Name);
      }
    for (const std::string &PointSpec : splitOn(SweepArg, ';')) {
      std::vector<double> Point;
      if (!PointSpec.empty())
        for (const std::string &Val : splitOn(PointSpec, ',')) {
          double D;
          if (!parseDoubleArg(Val, D))
            usageError("--sweep value '" + Val + "' is not a number");
          Point.push_back(D);
        }
      if (Point.size() != Req.SweepParams.size())
        usageError("--sweep point " + std::to_string(Req.Points.size()) +
                   " has " + std::to_string(Point.size()) +
                   " value(s) but --params names " +
                   std::to_string(Req.SweepParams.size()));
      Req.Points.push_back(std::move(Point));
    }
  } else if (Command == "stats") {
    Req.TheKind = ServiceRequest::Kind::Stats;
  } else if (Command == "metrics") {
    Req.TheKind = ServiceRequest::Kind::Metrics;
  } else if (Command == "shutdown") {
    Req.TheKind = ServiceRequest::Kind::Shutdown;
  } else {
    usageError("unknown command '" + Command +
               "' (expected compile, run, bind-run, stats, metrics, or "
               "shutdown)");
  }
  if (RawJson && Req.TheKind != ServiceRequest::Kind::Stats)
    usageError("--json applies only to the stats command");
  if ((ParamsSet || SweepSet) &&
      Req.TheKind != ServiceRequest::Kind::BindRun)
    usageError("--params/--sweep apply only to the bind-run command");

  if (Req.TheKind == ServiceRequest::Kind::Compile ||
      Req.TheKind == ServiceRequest::Kind::Run ||
      Req.TheKind == ServiceRequest::Kind::BindRun) {
    if (File.empty())
      usageError(Command + " expects a .qw file argument");
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "asdf-cli: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Req.Source = Buf.str();
  } else if (!File.empty()) {
    usageError(Command + " takes no file argument");
  }
  Req.TimeoutSecs = Timeout;

  ServiceClient Client;
  std::string Error;
  if (!Client.connect(Socket, Error) && Retry.MaxRetries == 0) {
    std::fprintf(stderr, "asdf-cli: %s\n", Error.c_str());
    return 1;
  }
  ServiceResponse Resp;
  unsigned RetriesUsed = 0;
  // Give the daemon a little slack past the request's own deadline before
  // declaring the transport dead. callWithRetry reconnects and replays —
  // safe because requests are deterministic and content-keyed.
  if (!Client.callWithRetry(Req, Resp, Error, Retry,
                            Timeout > 0 ? Timeout + 5.0 : 0.0,
                            &RetriesUsed)) {
    std::fprintf(stderr, "asdf-cli: %s\n", Error.c_str());
    return 1;
  }
  if (RetriesUsed)
    std::fprintf(stderr, "asdf-cli: succeeded after %u retr%s\n",
                 RetriesUsed, RetriesUsed == 1 ? "y" : "ies");
  if (!Resp.Ok) {
    std::fprintf(stderr, "asdf-cli: %s: %s\n", Resp.Error.Kind.c_str(),
                 Resp.Error.Message.c_str());
    return 1;
  }

  switch (Req.TheKind) {
  case ServiceRequest::Kind::Compile:
    std::fprintf(stderr, "asdf-cli: cache %s (key %s, compile %.1f ms)\n",
                 Resp.CacheHit ? "hit" : "miss", Resp.Key.c_str(),
                 Resp.CompileSecs * 1e3);
    std::fputs(Resp.Artifact.c_str(), stdout);
    break;
  case ServiceRequest::Kind::Run:
    std::fprintf(stderr, "asdf-cli: cache %s (key %s, compile %.1f ms)\n",
                 Resp.CacheHit ? "hit" : "miss", Resp.Key.c_str(),
                 Resp.CompileSecs * 1e3);
    for (const std::string &Bits : Resp.Results)
      std::printf("%s\n", Bits.c_str());
    break;
  case ServiceRequest::Kind::BindRun: {
    std::fprintf(stderr, "asdf-cli: cache %s (key %s, compile %.1f ms)\n",
                 Resp.CacheHit ? "hit" : "miss", Resp.Key.c_str(),
                 Resp.CompileSecs * 1e3);
    for (size_t P = 0; P < Resp.PointResults.size(); ++P) {
      std::string Header = "# point " + std::to_string(P);
      for (size_t K = 0; K < Req.SweepParams.size(); ++K) {
        char Buf[64];
        std::to_chars_result R =
            std::to_chars(Buf, Buf + sizeof(Buf), Req.Points[P][K]);
        Header += (K ? ", " : ": ") + Req.SweepParams[K] + "=" +
                  std::string(Buf, R.ptr);
      }
      std::printf("%s\n", Header.c_str());
      for (const std::string &Bits : Resp.PointResults[P])
        std::printf("%s\n", Bits.c_str());
    }
    break;
  }
  case ServiceRequest::Kind::Stats:
    if (RawJson)
      std::printf("%s\n", Resp.StatsBody.write().c_str());
    else
      printStatsSummary(Resp.StatsBody);
    break;
  case ServiceRequest::Kind::Metrics:
    std::fputs(Resp.MetricsText.c_str(), stdout);
    break;
  case ServiceRequest::Kind::Shutdown:
    std::fprintf(stderr, "asdf-cli: daemon draining\n");
    break;
  }
  return 0;
}
