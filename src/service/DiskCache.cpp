//===- DiskCache.cpp - Crash-safe on-disk artifact cache tier -------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include "obs/Trace.h"
#include "support/BuildInfo.h"
#include "support/FaultInject.h"
#include "support/Hash.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace asdf;

//===----------------------------------------------------------------------===//
// Entry codec
//===----------------------------------------------------------------------===//
//
// File layout (all integers little-endian):
//   8 bytes   magic "ASDFART" + format version byte
//   u64       payload length
//   u64 x2    ContentHasher digest of the payload
//   payload   fingerprint, kind, text, optional flat circuit
//
// The fingerprint lives *inside* the checksummed payload, so a corrupt
// fingerprint reads as Corrupt, not as a clean mismatch.

namespace {

constexpr char Magic[8] = {'A', 'S', 'D', 'F', 'A', 'R', 'T', 1};
constexpr size_t HeaderBytes = 8 + 8 + 16;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>(V >> (8 * I)));
}

void putF64(std::string &Out, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8); // Raw bit pattern: round trips are bit-exact.
  putU64(Out, Bits);
}

void putStr(std::string &Out, const std::string &S) {
  putU64(Out, S.size());
  Out.append(S);
}

/// Bounds-checked little-endian reader; any overrun latches Fail.
struct Cursor {
  const std::string &Buf;
  size_t Pos = 0;
  bool Fail = false;

  explicit Cursor(const std::string &Buf) : Buf(Buf) {}

  uint32_t u32() { return static_cast<uint32_t>(fixed(4)); }
  uint64_t u64() { return fixed(8); }
  double f64() {
    uint64_t Bits = fixed(8);
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
  std::string str() {
    uint64_t N = u64();
    if (Fail || N > Buf.size() - Pos) {
      Fail = true;
      return std::string();
    }
    std::string S = Buf.substr(Pos, N);
    Pos += N;
    return S;
  }
  bool done() const { return !Fail && Pos == Buf.size(); }

private:
  uint64_t fixed(int N) {
    if (Fail || static_cast<size_t>(N) > Buf.size() - Pos) {
      Fail = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < N; ++I)
      V |= static_cast<uint64_t>(
               static_cast<unsigned char>(Buf[Pos + I]))
           << (8 * I);
    Pos += N;
    return V;
  }
};

void encodeCircuit(std::string &Out, const Circuit &C) {
  putU32(Out, C.NumQubits);
  putU32(Out, C.NumBits);
  putU64(Out, C.Instrs.size());
  for (const CircuitInstr &I : C.Instrs) {
    Out.push_back(static_cast<char>(I.TheKind));
    Out.push_back(static_cast<char>(I.Gate));
    putF64(Out, I.Param);
    putU32(Out, static_cast<uint32_t>(I.ParamIdx));
    putF64(Out, I.ParamScale);
    putF64(Out, I.ParamOfs);
    putU32(Out, static_cast<uint32_t>(I.Controls.size()));
    for (unsigned Q : I.Controls)
      putU32(Out, Q);
    putU32(Out, static_cast<uint32_t>(I.Targets.size()));
    for (unsigned Q : I.Targets)
      putU32(Out, Q);
    putU32(Out, static_cast<uint32_t>(I.Cbit));
    putU32(Out, static_cast<uint32_t>(I.CondBit));
    Out.push_back(I.CondVal ? 1 : 0);
  }
  putU64(Out, C.OutputQubits.size());
  for (unsigned Q : C.OutputQubits)
    putU32(Out, Q);
  putU64(Out, C.OutputBits.size());
  for (int B : C.OutputBits)
    putU32(Out, static_cast<uint32_t>(B));
  putU64(Out, C.ParamNames.size());
  for (const std::string &Name : C.ParamNames)
    putStr(Out, Name);
}

} // namespace

std::string DiskCache::encode(const CachedArtifact &Art,
                              const std::string &Fingerprint) {
  std::string Payload;
  putStr(Payload, Fingerprint.empty() ? buildFingerprint() : Fingerprint);
  putStr(Payload, Art.Kind);
  putStr(Payload, Art.Text);
  Payload.push_back(Art.Flat ? 1 : 0);
  if (Art.Flat)
    encodeCircuit(Payload, *Art.Flat);

  ContentHasher H;
  H.bytes(Payload.data(), Payload.size());
  auto D = H.digest();

  std::string Out;
  Out.reserve(HeaderBytes + Payload.size());
  Out.append(Magic, sizeof(Magic));
  putU64(Out, Payload.size());
  putU64(Out, D[0]);
  putU64(Out, D[1]);
  Out.append(Payload);
  return Out;
}

DiskCache::DecodeResult DiskCache::decode(const std::string &Bytes,
                                          CachedArtifact &Out,
                                          std::string &Fingerprint,
                                          const std::string &Expect) {
  if (Bytes.size() < HeaderBytes ||
      std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return DecodeResult::Corrupt;
  Cursor Hdr(Bytes);
  Hdr.Pos = sizeof(Magic);
  uint64_t PayloadLen = Hdr.u64();
  uint64_t CheckHi = Hdr.u64(), CheckLo = Hdr.u64();
  if (Hdr.Fail || Bytes.size() - HeaderBytes != PayloadLen)
    return DecodeResult::Corrupt; // Truncated (or padded) file.
  ContentHasher H;
  H.bytes(Bytes.data() + HeaderBytes, PayloadLen);
  auto D = H.digest();
  if (D[0] != CheckHi || D[1] != CheckLo)
    return DecodeResult::Corrupt;

  std::string Payload = Bytes.substr(HeaderBytes);
  Cursor In(Payload);
  Fingerprint = In.str();
  CachedArtifact Art;
  Art.Kind = In.str();
  Art.Text = In.str();
  uint64_t HasFlat = In.Fail || In.Pos >= Payload.size()
                         ? (In.Fail = true, 0)
                         : static_cast<unsigned char>(Payload[In.Pos++]);
  if (HasFlat > 1)
    return DecodeResult::Corrupt;
  if (HasFlat) {
    auto C = std::make_shared<Circuit>();
    C->NumQubits = In.u32();
    C->NumBits = In.u32();
    uint64_t NumInstrs = In.u64();
    // A checksummed payload cannot lie about counts, but decode must stay
    // total anyway: validate enums and sizes as if the bytes were hostile.
    if (In.Fail || NumInstrs > Payload.size())
      return DecodeResult::Corrupt;
    C->Instrs.reserve(NumInstrs);
    for (uint64_t N = 0; N < NumInstrs && !In.Fail; ++N) {
      CircuitInstr I;
      unsigned char Kind =
          In.Pos < Payload.size()
              ? static_cast<unsigned char>(Payload[In.Pos++])
              : (In.Fail = true, 0);
      unsigned char Gate =
          In.Pos < Payload.size()
              ? static_cast<unsigned char>(Payload[In.Pos++])
              : (In.Fail = true, 0);
      if (Kind > static_cast<unsigned char>(CircuitInstr::Kind::Reset) ||
          Gate > static_cast<unsigned char>(GateKind::Swap))
        return DecodeResult::Corrupt;
      I.TheKind = static_cast<CircuitInstr::Kind>(Kind);
      I.Gate = static_cast<GateKind>(Gate);
      I.Param = In.f64();
      I.ParamIdx = static_cast<int>(In.u32());
      I.ParamScale = In.f64();
      I.ParamOfs = In.f64();
      uint32_t NumControls = In.u32();
      if (In.Fail || NumControls > Payload.size())
        return DecodeResult::Corrupt;
      I.Controls.reserve(NumControls);
      for (uint32_t Q = 0; Q < NumControls; ++Q)
        I.Controls.push_back(In.u32());
      uint32_t NumTargets = In.u32();
      if (In.Fail || NumTargets > Payload.size())
        return DecodeResult::Corrupt;
      I.Targets.reserve(NumTargets);
      for (uint32_t Q = 0; Q < NumTargets; ++Q)
        I.Targets.push_back(In.u32());
      I.Cbit = static_cast<int>(In.u32());
      I.CondBit = static_cast<int>(In.u32());
      I.CondVal = In.Pos < Payload.size()
                      ? Payload[In.Pos++] != 0
                      : (In.Fail = true, false);
      C->Instrs.push_back(std::move(I));
    }
    uint64_t NumOutQ = In.u64();
    if (In.Fail || NumOutQ > Payload.size())
      return DecodeResult::Corrupt;
    for (uint64_t Q = 0; Q < NumOutQ; ++Q)
      C->OutputQubits.push_back(In.u32());
    uint64_t NumOutB = In.u64();
    if (In.Fail || NumOutB > Payload.size())
      return DecodeResult::Corrupt;
    for (uint64_t B = 0; B < NumOutB; ++B)
      C->OutputBits.push_back(static_cast<int>(In.u32()));
    uint64_t NumNames = In.u64();
    if (In.Fail || NumNames > Payload.size())
      return DecodeResult::Corrupt;
    for (uint64_t P = 0; P < NumNames; ++P)
      C->ParamNames.push_back(In.str());
    Art.Flat = std::move(C);
  }
  if (!In.done())
    return DecodeResult::Corrupt;
  const std::string &Want = Expect.empty() ? buildFingerprint() : Expect;
  if (Fingerprint != Want)
    return DecodeResult::FingerprintMismatch;
  Out = std::move(Art);
  return DecodeResult::Ok;
}

//===----------------------------------------------------------------------===//
// Filesystem tier
//===----------------------------------------------------------------------===//

namespace {

bool ensureDir(const std::string &Path, std::string &Error) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
    return true;
  Error = "cannot create " + Path + ": " + std::strerror(errno);
  return false;
}

bool readFile(const std::string &Path, std::string &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  Out.clear();
  char Chunk[1 << 16];
  ssize_t N;
  while ((N = ::read(Fd, Chunk, sizeof(Chunk))) > 0)
    Out.append(Chunk, static_cast<size_t>(N));
  ::close(Fd);
  return N == 0;
}

/// 32 lowercase hex digits -> CacheKey; false on any other spelling.
bool parseKeyHex(const std::string &Hex, CacheKey &Out) {
  if (Hex.size() != 32)
    return false;
  uint64_t Parts[2] = {0, 0};
  for (int Half = 0; Half < 2; ++Half)
    for (int I = 0; I < 16; ++I) {
      char C = Hex[Half * 16 + I];
      uint64_t D;
      if (C >= '0' && C <= '9')
        D = static_cast<uint64_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<uint64_t>(C - 'a' + 10);
      else
        return false;
      Parts[Half] = Parts[Half] << 4 | D;
    }
  Out.Hi = Parts[0];
  Out.Lo = Parts[1];
  return true;
}

} // namespace

DiskCache::DiskCache(std::string Dir, size_t ByteBudget)
    : Dir(std::move(Dir)), Budget(ByteBudget) {
  S.ByteBudget = ByteBudget;
}

std::string DiskCache::objectPath(const std::string &KeyHex) const {
  return Dir + "/objects/" + KeyHex + ".art";
}

bool DiskCache::open(std::string &Error) {
  if (!ensureDir(Dir, Error) || !ensureDir(Dir + "/objects", Error) ||
      !ensureDir(Dir + "/quarantine", Error) ||
      !ensureDir(Dir + "/tmp", Error))
    return false;

  std::lock_guard<std::mutex> Lock(M);

  // A crash mid-put leaves its partial write in tmp/ — never visible as
  // an entry, and swept here.
  if (DIR *D = ::opendir((Dir + "/tmp").c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::unlink((Dir + "/tmp/" + Name).c_str());
    }
    ::closedir(D);
  }

  // Validate every entry up front: a daemon must discover rot at startup,
  // not mid-request, and the index doubles as the warm-hit set.
  struct Found {
    CacheKey Key;
    size_t Bytes;
    struct timespec MTime;
    std::string Hex;
  };
  std::vector<Found> Valid;
  if (DIR *D = ::opendir((Dir + "/objects").c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name == "." || Name == "..")
        continue;
      std::string KeyHex =
          Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".art") == 0
              ? Name.substr(0, Name.size() - 4)
              : std::string();
      CacheKey Key;
      std::string Bytes, Fingerprint;
      CachedArtifact Art;
      DecodeResult R = DecodeResult::Corrupt;
      if (parseKeyHex(KeyHex, Key) &&
          readFile(Dir + "/objects/" + Name, Bytes))
        R = decode(Bytes, Art, Fingerprint);
      if (R != DecodeResult::Ok) {
        ++S.Corrupt;
        const char *Reason =
            R == DecodeResult::FingerprintMismatch ? "fingerprint"
                                                   : "corrupt";
        std::string From = Dir + "/objects/" + Name;
        std::string To = Dir + "/quarantine/" + Name + "." + Reason;
        if (::rename(From.c_str(), To.c_str()) == 0)
          ++S.Quarantined;
        else
          ::unlink(From.c_str());
        continue;
      }
      struct stat St{};
      if (::stat((Dir + "/objects/" + Name).c_str(), &St) != 0)
        continue;
      Valid.push_back(
          Found{Key, static_cast<size_t>(St.st_size), St.st_mtim, KeyHex});
    }
    ::closedir(D);
  }

  // Newest first: mtime is the persisted recency signal (ties broken by
  // name so the order is deterministic).
  std::sort(Valid.begin(), Valid.end(), [](const Found &A, const Found &B) {
    if (A.MTime.tv_sec != B.MTime.tv_sec)
      return A.MTime.tv_sec > B.MTime.tv_sec;
    if (A.MTime.tv_nsec != B.MTime.tv_nsec)
      return A.MTime.tv_nsec > B.MTime.tv_nsec;
    return A.Hex < B.Hex;
  });
  Lru.clear();
  Index.clear();
  S.BytesUsed = 0;
  for (const Found &F : Valid) {
    Lru.push_back(F.Key);
    Index.emplace(F.Key, Slot{F.Bytes, std::prev(Lru.end())});
    S.BytesUsed += F.Bytes;
  }
  S.WarmedEntries = Valid.size();
  evictOverBudgetLocked(); // The budget may have shrunk since last run.
  Opened = true;
  return true;
}

std::shared_ptr<const CachedArtifact> DiskCache::get(const CacheKey &K) {
  obs::Span Sp("disk.probe", "cache");
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++S.Misses;
    return nullptr;
  }
  std::string KeyHex = K.hex();
  std::string Bytes;
  if (!readFile(objectPath(KeyHex), Bytes)) {
    // The file vanished or is unreadable under our index: drop it.
    ++S.Misses;
    ++S.Corrupt;
    S.BytesUsed -= It->second.Bytes;
    Lru.erase(It->second.LruIt);
    Index.erase(It);
    return nullptr;
  }
  if (fault::shouldFail("disk.read-corrupt") && !Bytes.empty())
    Bytes[Bytes.size() / 2] ^= 0x40; // Bit rot under the checksum.
  auto Art = std::make_shared<CachedArtifact>();
  std::string Fingerprint;
  if (decode(Bytes, *Art, Fingerprint) != DecodeResult::Ok) {
    ++S.Misses;
    quarantineLocked(KeyHex, "corrupt");
    return nullptr;
  }
  ++S.Hits;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  // Touch: recency must survive the next restart, and mtime is the only
  // thing that does.
  ::utimensat(AT_FDCWD, objectPath(KeyHex).c_str(), nullptr, 0);
  return Art;
}

bool DiskCache::writeEntryFile(const std::string &KeyHex,
                               const std::string &Bytes) {
  std::string Tmp =
      Dir + "/tmp/" + KeyHex + "." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Len = Bytes.size();
  if (fault::shouldFail("disk.write")) {
    // A clean filesystem failure (ENOSPC, EIO): nothing becomes visible.
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  bool Torn = fault::shouldFail("disk.torn-write");
  if (Torn)
    Len /= 2; // Half the entry reaches the disk, then "the power goes".
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  // fsync before rename: the entry's bytes must be durable before its
  // name is, or a crash could leave a complete-looking file of zeros.
  if (!Torn && ::fsync(Fd) != 0) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), objectPath(KeyHex).c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

void DiskCache::put(const CacheKey &K, const CachedArtifact &Art) {
  if (!Opened)
    return;
  obs::Span Sp("disk.write", "cache");
  std::string KeyHex = K.hex();
  std::string Bytes = encode(Art);
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(K);
  if (It != Index.end()) {
    // Same key, same content by construction: refresh recency only.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    ::utimensat(AT_FDCWD, objectPath(KeyHex).c_str(), nullptr, 0);
    return;
  }
  if (Bytes.size() > Budget)
    return; // Would evict the whole tier and still not fit.
  if (!writeEntryFile(KeyHex, Bytes)) {
    ++S.WriteFailures;
    return;
  }
  ++S.Insertions;
  indexInsertLocked(K, Bytes.size());
  evictOverBudgetLocked();
}

void DiskCache::indexInsertLocked(const CacheKey &K, size_t Bytes) {
  Lru.push_front(K);
  Index.emplace(K, Slot{Bytes, Lru.begin()});
  S.BytesUsed += Bytes;
}

void DiskCache::quarantineLocked(const std::string &KeyHex,
                                 const char *Reason) {
  ++S.Corrupt;
  std::string From = objectPath(KeyHex);
  std::string To =
      Dir + "/quarantine/" + KeyHex + ".art." + Reason;
  if (::rename(From.c_str(), To.c_str()) == 0)
    ++S.Quarantined;
  else
    ::unlink(From.c_str());
  CacheKey K;
  if (parseKeyHex(KeyHex, K)) {
    auto It = Index.find(K);
    if (It != Index.end()) {
      S.BytesUsed -= It->second.Bytes;
      Lru.erase(It->second.LruIt);
      Index.erase(It);
    }
  }
}

void DiskCache::evictOverBudgetLocked() {
  while (S.BytesUsed > Budget && !Lru.empty()) {
    const CacheKey &Victim = Lru.back();
    auto It = Index.find(Victim);
    ::unlink(objectPath(Victim.hex()).c_str());
    S.BytesUsed -= It->second.Bytes;
    Index.erase(It);
    Lru.pop_back();
    ++S.Evictions;
  }
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  DiskCacheStats Out = S;
  Out.Entries = Index.size();
  Out.ByteBudget = Budget;
  return Out;
}
