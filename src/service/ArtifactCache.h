//===- ArtifactCache.h - Content-hashed LRU artifact cache ----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's memory: compiled artifacts keyed by a 128-bit content hash
/// of everything that determines them — source text (byte-exact, not
/// semantic: whitespace changes are different keys by design), entry
/// kernel, canonical pipeline plan, bindings, the build fingerprint (so
/// artifacts never cross incompatible builds), and the artifact kind. Two
/// requests that agree on all of those get the same artifact, so the
/// second one is a hash lookup instead of a compile — the O(compile) ->
/// O(1) amortization the service exists for.
///
/// Entries are immutable and handed out as shared_ptr, so a reader keeps
/// its artifact alive even if the entry is evicted mid-request. Eviction
/// is strict LRU under a byte budget; hits, misses, evictions, and bytes
/// are counted for the stats op and the throughput bench. One mutex
/// guards the map+LRU list — lookups are microseconds against
/// milliseconds of compile, so a sharded design would be complexity
/// without a measurable win at the current request rates.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_ARTIFACTCACHE_H
#define ASDF_SERVICE_ARTIFACTCACHE_H

#include "qcirc/Circuit.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace asdf {

struct ServiceRequest;
struct PipelinePlan;

/// A 128-bit content-hash cache key.
struct CacheKey {
  uint64_t Hi = 0, Lo = 0;

  bool operator==(const CacheKey &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  /// 32 hex digits, the form shown in protocol responses.
  std::string hex() const;
};

struct CacheKeyHasher {
  size_t operator()(const CacheKey &K) const {
    return static_cast<size_t>(K.Hi ^ K.Lo);
  }
};

/// Computes the cache key for \p R's compilation under this build: the
/// compiler's own identity encoding (CompileSession::hashIdentity over
/// source, entry, \p Plan, bindings) prefixed with the build fingerprint
/// and \p ArtifactKind. The kind discriminates what the entry holds: an
/// emit target ("qasm", "qir", ...) for compile requests, "flat-circuit"
/// for the compiled circuit object run requests execute. \p Plan is the
/// parsed pipeline, so equivalent spellings (a preset name vs. its
/// explicit stage:pass spec) share a key. \p BuildFingerprint defaults to
/// this binary's buildFingerprint().
CacheKey computeCacheKey(const ServiceRequest &R, const PipelinePlan &Plan,
                         const std::string &ArtifactKind,
                         const std::string &BuildFingerprint = std::string());

/// One immutable cached artifact: rendered text for compile requests, the
/// flat circuit object for run requests.
struct CachedArtifact {
  std::string Kind;                    ///< Emit target or "flat-circuit".
  std::string Text;                    ///< Rendered artifact ("" for
                                       ///< flat-circuit entries).
  std::shared_ptr<const Circuit> Flat; ///< For flat-circuit entries.

  /// Approximate resident size, the unit of the cache's byte budget.
  size_t bytes() const;
};

struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Insertions = 0;
  uint64_t Entries = 0;
  size_t BytesUsed = 0;
  size_t ByteBudget = 0;
};

class DiskCache;

/// Thread-safe LRU cache of CachedArtifacts under a byte budget,
/// optionally backed by a DiskCache tier: a memory miss probes the disk,
/// a disk hit is promoted back into memory, and inserts write through —
/// so a restarted daemon re-serves everything the previous one compiled.
class ArtifactCache {
public:
  explicit ArtifactCache(size_t ByteBudget = DefaultByteBudget);

  /// Attaches the persistence tier (not owned; may be null to detach).
  /// The caller keeps \p D alive for this cache's lifetime.
  void attachDisk(DiskCache *D) { Disk = D; }
  DiskCache *disk() const { return Disk; }

  /// Looks up \p K, bumping it to most-recently-used. Counts a hit or a
  /// miss; on a memory miss the disk tier (if attached) is probed and a
  /// disk hit is promoted into memory. Null only when both tiers miss.
  std::shared_ptr<const CachedArtifact> get(const CacheKey &K);

  /// Inserts \p Art under \p K (replacing any existing entry without
  /// counting an eviction), then evicts least-recently-used entries until
  /// the budget holds. An artifact larger than the whole budget is not
  /// cached at all — it would only evict everything and then miss anyway.
  /// Writes through to the disk tier when one is attached.
  void put(const CacheKey &K, std::shared_ptr<const CachedArtifact> Art);

  CacheStats stats() const;

  /// Adjusts the budget, evicting immediately if the new budget is
  /// exceeded.
  void setByteBudget(size_t Bytes);

  static constexpr size_t DefaultByteBudget = 256u << 20; // 256 MiB

private:
  void putInMemory(const CacheKey &K,
                   std::shared_ptr<const CachedArtifact> Art);
  void evictOverBudgetLocked();

  mutable std::mutex M;
  size_t Budget;
  /// Front = most recently used.
  std::list<CacheKey> Lru;
  struct Slot {
    std::shared_ptr<const CachedArtifact> Art;
    std::list<CacheKey>::iterator LruIt;
  };
  std::unordered_map<CacheKey, Slot, CacheKeyHasher> Map;
  CacheStats S;
  /// The persistence tier; null when the daemon runs memory-only.
  DiskCache *Disk = nullptr;
};

} // namespace asdf

#endif // ASDF_SERVICE_ARTIFACTCACHE_H
