//===- Client.cpp - Blocking NDJSON client for asdfd ----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace asdf;

namespace {

/// splitmix64: the repo's standard cheap deterministic stream (Rng.h uses
/// the same finalizer). Jitter must not consume the process-global RNG.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Buffer.clear();
}

bool ServiceClient::connect(const std::string &SocketPath,
                            std::string &Error) {
  Path = SocketPath;
  return reconnect(Error);
}

bool ServiceClient::reconnect(std::string &Error) {
  close();
  LastFail = FailKind::None;
  if (Path.empty()) {
    LastFail = FailKind::ConnectFailed;
    Error = "no socket path to reconnect to";
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    LastFail = FailKind::ConnectFailed;
    Error = "socket path too long";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    LastFail = FailKind::ConnectFailed;
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    LastFail = FailKind::ConnectFailed;
    Error = "cannot connect to daemon at " + Path + ": " +
            std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool ServiceClient::call(const ServiceRequest &R, ServiceResponse &Out,
                         std::string &Error, double RecvTimeoutSecs) {
  LastFail = FailKind::None;
  if (Fd < 0) {
    LastFail = FailKind::ConnectFailed;
    Error = "not connected";
    return false;
  }
  std::string Line = R.toJson().write() + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N =
        ::send(Fd, Line.data() + Off, Line.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        // The daemon went away between our connect and this send (killed,
        // restarted): retryable, and distinct from a protocol error.
        LastFail = FailKind::ConnectionLost;
        Error = std::string("connection-lost: send failed (") +
                std::strerror(errno) + ")";
        return false;
      }
      LastFail = FailKind::ConnectFailed;
      Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  // Read until the matching id: a pipelined peer may interleave other
  // responses first.
  while (true) {
    std::string RespLine;
    if (!readLine(RespLine, Error, RecvTimeoutSecs))
      return false;
    json::Value V;
    if (!json::parse(RespLine, V, Error)) {
      LastFail = FailKind::Malformed;
      Error = "malformed response: " + Error;
      return false;
    }
    ServiceResponse Resp;
    if (!ServiceResponse::fromJson(V, Resp, Error)) {
      LastFail = FailKind::Malformed;
      return false;
    }
    if (Resp.Id == R.Id) {
      Out = std::move(Resp);
      return true;
    }
  }
}

bool ServiceClient::callWithRetry(const ServiceRequest &R,
                                  ServiceResponse &Out, std::string &Error,
                                  const RetryPolicy &Policy,
                                  double RecvTimeoutSecs,
                                  unsigned *RetriesUsed) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  uint64_t Seed = Policy.JitterSeed ? Policy.JitterSeed : R.Id + 1;
  if (RetriesUsed)
    *RetriesUsed = 0;
  for (unsigned Attempt = 0;; ++Attempt) {
    bool TransportOk = connected() || reconnect(Error);
    uint64_t HintMs = 0;
    if (TransportOk) {
      if (call(R, Out, Error, RecvTimeoutSecs)) {
        // A daemon-side refusal that promises capacity later is retried
        // like a transport failure; every other error is final.
        bool RetryableErr =
            !Out.Ok && (Out.Error.Kind == "overloaded" ||
                        Out.Error.Kind == "resource-exhausted" ||
                        Out.Error.Kind == "shutting-down");
        if (!RetryableErr)
          return true;
        HintMs = Out.Error.RetryAfterMs;
        Error = Out.Error.Kind + ": " + Out.Error.Message;
      } else if (LastFail != FailKind::ConnectionLost &&
                 LastFail != FailKind::ConnectFailed) {
        return false; // Timeout/malformed: replaying will not help.
      } else {
        close(); // Half-dead socket; the next attempt re-dials.
      }
    }
    if (Attempt >= Policy.MaxRetries)
      return false;
    // Exponential backoff with full jitter, floored by the server hint.
    uint64_t Step = Policy.BaseDelayMs << std::min<unsigned>(Attempt, 20);
    Step = std::min(std::max(Step, Policy.BaseDelayMs), Policy.MaxDelayMs);
    uint64_t Delay = Step / 2 + mix64(Seed + Attempt) % (Step / 2 + 1);
    Delay = std::max(Delay, HintMs);
    if (Policy.BudgetMs) {
      uint64_t ElapsedMs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - Start)
              .count());
      if (ElapsedMs + Delay > Policy.BudgetMs) {
        Error += " (retry budget of " + std::to_string(Policy.BudgetMs) +
                 " ms exhausted after " + std::to_string(Attempt + 1) +
                 " attempt(s))";
        return false;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    if (RetriesUsed)
      ++*RetriesUsed;
  }
}

bool ServiceClient::readLine(std::string &Line, std::string &Error,
                             double TimeoutSecs) {
  while (true) {
    size_t Nl = Buffer.find('\n');
    if (Nl != std::string::npos) {
      Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      return true;
    }
    if (TimeoutSecs > 0) {
      pollfd P{Fd, POLLIN, 0};
      int Ready = ::poll(&P, 1, static_cast<int>(TimeoutSecs * 1000));
      if (Ready == 0) {
        LastFail = FailKind::Timeout;
        Error = "timed out waiting for the daemon's response";
        return false;
      }
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        LastFail = FailKind::ConnectFailed;
        Error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == ECONNRESET) {
        LastFail = FailKind::ConnectionLost;
        Error = "connection-lost: connection reset by the daemon";
        return false;
      }
      LastFail = FailKind::ConnectFailed;
      Error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      // EOF mid-request — torn write or a killed daemon. This is a
      // transport death, NOT a malformed response: the buffered partial
      // line (if any) must not be fed to the JSON parser and misreported.
      LastFail = FailKind::ConnectionLost;
      Error = Buffer.empty()
                  ? "connection-lost: daemon closed the connection before "
                    "a full response"
                  : "connection-lost: daemon closed the connection mid-"
                    "response (" +
                        std::to_string(Buffer.size()) +
                        " partial byte(s) discarded)";
      Buffer.clear();
      return false;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}
