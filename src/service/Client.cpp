//===- Client.cpp - Blocking NDJSON client for asdfd ----------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace asdf;

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Buffer.clear();
}

bool ServiceClient::connect(const std::string &SocketPath,
                            std::string &Error) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Error = "cannot connect to daemon at " + SocketPath + ": " +
            std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool ServiceClient::call(const ServiceRequest &R, ServiceResponse &Out,
                         std::string &Error, double RecvTimeoutSecs) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  std::string Line = R.toJson().write() + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N =
        ::send(Fd, Line.data() + Off, Line.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  // Read until the matching id: a pipelined peer may interleave other
  // responses first.
  while (true) {
    std::string RespLine;
    if (!readLine(RespLine, Error, RecvTimeoutSecs))
      return false;
    json::Value V;
    if (!json::parse(RespLine, V, Error)) {
      Error = "malformed response: " + Error;
      return false;
    }
    ServiceResponse Resp;
    if (!ServiceResponse::fromJson(V, Resp, Error))
      return false;
    if (Resp.Id == R.Id) {
      Out = std::move(Resp);
      return true;
    }
  }
}

bool ServiceClient::readLine(std::string &Line, std::string &Error,
                             double TimeoutSecs) {
  while (true) {
    size_t Nl = Buffer.find('\n');
    if (Nl != std::string::npos) {
      Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      return true;
    }
    if (TimeoutSecs > 0) {
      pollfd P{Fd, POLLIN, 0};
      int Ready = ::poll(&P, 1, static_cast<int>(TimeoutSecs * 1000));
      if (Ready == 0) {
        Error = "timed out waiting for the daemon's response";
        return false;
      }
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        Error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Error = "daemon closed the connection";
      return false;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}
