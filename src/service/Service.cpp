//===- Service.cpp - The compile-and-run service engine -------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/CompileSession.h"
#include "obs/Trace.h"
#include "service/DiskCache.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "support/BuildInfo.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>

using namespace asdf;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

bool validServiceEmit(const std::string &E) {
  return E == "qasm" || E == "qir" || E == "qir-base" || E == "qwerty-ir" ||
         E == "circuit";
}

/// Static span name per op (the Span ctor copies, but a switch avoids
/// formatting on the hot path).
const char *opSpanName(ServiceRequest::Kind K) {
  switch (K) {
  case ServiceRequest::Kind::Compile:
    return "request.compile";
  case ServiceRequest::Kind::Run:
    return "request.run";
  case ServiceRequest::Kind::BindRun:
    return "request.bind-run";
  case ServiceRequest::Kind::Stats:
    return "request.stats";
  case ServiceRequest::Kind::Shutdown:
    return "request.shutdown";
  case ServiceRequest::Kind::Metrics:
    return "request.metrics";
  }
  return "request";
}

} // namespace

AsdfService::AsdfService(ServiceOptions Options)
    : Cache(Options.CacheBytes),
      Queue(Options.Workers, Options.MaxQueueDepth),
      RunMemoryBudget(Options.RunMemoryBytes), Start(Clock::now()) {
  if (!Options.DiskCacheDir.empty()) {
    Disk = std::make_unique<DiskCache>(
        Options.DiskCacheDir, Options.DiskCacheBytes != 0
                                  ? Options.DiskCacheBytes
                                  : DiskCache::DefaultByteBudget);
    if (Disk->open(DiskError)) {
      Cache.attachDisk(Disk.get());
    } else {
      // Degrade to memory-only; asdfd checks diskCacheError() and refuses
      // to start, but an in-process service keeps serving.
      Disk.reset();
    }
  }
  // One metric surface over every layer's counters: the histograms live
  // here; the counter/gauge views read the existing storage at render
  // time, so nothing is double-counted.
  LatCompile =
      &Reg.histogram("asdf_compile_seconds", "Latency of compile requests");
  LatRun = &Reg.histogram("asdf_run_seconds", "Latency of run requests");
  LatBindRun = &Reg.histogram("asdf_bind_run_seconds",
                              "Latency of bind-run requests");
  LatStats =
      &Reg.histogram("asdf_stats_seconds", "Latency of stats requests");
  auto Count = [](const std::atomic<uint64_t> &C) {
    return [&C] { return C.load(std::memory_order_relaxed); };
  };
  Reg.counterFn("asdf_requests_compile_total", "Compile requests handled",
                Count(NumCompile));
  Reg.counterFn("asdf_requests_run_total", "Run requests handled",
                Count(NumRun));
  Reg.counterFn("asdf_requests_bind_run_total", "Bind-run requests handled",
                Count(NumBindRun));
  Reg.counterFn("asdf_requests_stats_total", "Stats requests handled",
                Count(NumStats));
  Reg.counterFn("asdf_requests_errors_total", "Requests answered with an "
                                              "error",
                Count(NumErrors));
  Reg.counterFn("asdf_requests_timeouts_total", "Requests that hit their "
                                                "deadline",
                Count(NumTimeouts));
  Reg.counterFn("asdf_shots_total", "Simulation shots executed",
                Count(NumShots));
  Reg.counterFn("asdf_compilations_total", "Compilations actually executed "
                                           "(cache misses minus coalesced)",
                Count(NumCompiled));
  Reg.counterFn("asdf_coalesced_total", "Requests served by another "
                                        "request's in-flight compile",
                Count(NumCoalesced));
  Reg.counterFn("asdf_cache_hits_total", "Artifact-cache hits",
                [this] { return Cache.stats().Hits; });
  Reg.counterFn("asdf_cache_misses_total", "Artifact-cache misses",
                [this] { return Cache.stats().Misses; });
  Reg.counterFn("asdf_cache_evictions_total", "Artifact-cache evictions",
                [this] { return Cache.stats().Evictions; });
  Reg.counterFn("asdf_cache_insertions_total", "Artifact-cache insertions",
                [this] { return Cache.stats().Insertions; });
  Reg.gaugeFn("asdf_cache_entries", "Artifact-cache resident entries",
              [this] { return double(Cache.stats().Entries); });
  Reg.gaugeFn("asdf_cache_bytes_used", "Artifact-cache resident bytes",
              [this] { return double(Cache.stats().BytesUsed); });
  Reg.counterFn("asdf_queue_submitted_total", "Jobs accepted by the queue",
                [this] { return Queue.counters().Submitted; });
  Reg.counterFn("asdf_queue_executed_total", "Jobs executed by the queue",
                [this] { return Queue.counters().Executed; });
  Reg.counterFn("asdf_queue_rejected_total", "Jobs rejected while draining",
                [this] { return Queue.counters().Rejected; });
  Reg.counterFn("asdf_queue_shed_total", "Jobs shed by the depth bound",
                [this] { return Queue.counters().Shed; });
  Reg.gaugeFn("asdf_queue_pending", "Jobs waiting for a worker",
              [this] { return double(Queue.counters().Pending); });
  Reg.gaugeFn("asdf_workers", "Worker threads in the pool",
              [this] { return double(Queue.workers()); });
  Reg.counterFn("asdf_shed_overloaded_total",
                "Requests refused with `overloaded`",
                Count(NumShedOverloaded));
  Reg.counterFn("asdf_shed_memory_total",
                "Requests refused with `resource-exhausted`",
                Count(NumShedMemory));
  Reg.counterFn("asdf_shed_expired_total",
                "Requests whose deadline expired before pickup",
                Count(NumShedExpired));
  if (Disk) {
    Reg.counterFn("asdf_disk_hits_total", "Disk-tier hits",
                  [this] { return Disk->stats().Hits; });
    Reg.counterFn("asdf_disk_misses_total", "Disk-tier misses",
                  [this] { return Disk->stats().Misses; });
    Reg.counterFn("asdf_disk_insertions_total", "Disk-tier insertions",
                  [this] { return Disk->stats().Insertions; });
    Reg.counterFn("asdf_disk_evictions_total", "Disk-tier evictions",
                  [this] { return Disk->stats().Evictions; });
    Reg.counterFn("asdf_disk_corrupt_total",
                  "Disk entries that failed validation",
                  [this] { return Disk->stats().Corrupt; });
    Reg.counterFn("asdf_disk_quarantined_total",
                  "Invalid disk entries moved to quarantine",
                  [this] { return Disk->stats().Quarantined; });
    Reg.counterFn("asdf_disk_write_failures_total",
                  "Disk-tier writes that failed",
                  [this] { return Disk->stats().WriteFailures; });
    Reg.gaugeFn("asdf_disk_entries", "Disk-tier resident entries",
                [this] { return double(Disk->stats().Entries); });
    Reg.gaugeFn("asdf_disk_bytes_used", "Disk-tier resident bytes",
                [this] { return double(Disk->stats().BytesUsed); });
  }
}

AsdfService::~AsdfService() { drain(); }

void AsdfService::drain() {
  ShuttingDown.store(true);
  Queue.drain();
}

ServiceResponse AsdfService::handle(const ServiceRequest &R) {
  Clock::time_point Deadline; // Epoch = none.
  if (R.TimeoutSecs > 0)
    Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(R.TimeoutSecs));
  return handle(R, Deadline);
}

ServiceResponse AsdfService::handle(const ServiceRequest &R,
                                    Clock::time_point Deadline) {
  // Every span below this frame — cache probe, compiler passes, fusion,
  // simulator workers — inherits the request's trace id; a request
  // without one keeps whatever context the caller established.
  obs::TraceContext TC(R.Trace ? R.Trace : obs::currentTraceId());
  obs::Span Sp(opSpanName(R.TheKind), "service");
  Clock::time_point T0 = Clock::now();
  auto Dispatch = [&] {
    if (expired(Deadline)) {
      // Reject-at-pickup: the deadline passed while the request waited,
      // so running it now would only burn a worker on a dead answer.
      NumTimeouts.fetch_add(1, std::memory_order_relaxed);
      NumShedExpired.fetch_add(1, std::memory_order_relaxed);
      return ServiceResponse::failure(
          R.Id, "timeout", "request deadline passed before execution");
    }
    if (!R.Fault.empty()) {
      std::string FaultError;
      if (!fault::arm(R.Fault, FaultError))
        return ServiceResponse::failure(R.Id, "bad-request", FaultError);
    }
    switch (R.TheKind) {
    case ServiceRequest::Kind::Compile:
      NumCompile.fetch_add(1, std::memory_order_relaxed);
      return handleCompile(R, Deadline);
    case ServiceRequest::Kind::Run:
      NumRun.fetch_add(1, std::memory_order_relaxed);
      return handleRun(R, Deadline);
    case ServiceRequest::Kind::BindRun:
      NumBindRun.fetch_add(1, std::memory_order_relaxed);
      return handleBindRun(R, Deadline);
    case ServiceRequest::Kind::Stats:
      NumStats.fetch_add(1, std::memory_order_relaxed);
      return handleStats(R);
    case ServiceRequest::Kind::Metrics:
      NumMetrics.fetch_add(1, std::memory_order_relaxed);
      return handleMetrics(R);
    case ServiceRequest::Kind::Shutdown:
      return handleShutdown(R);
    }
    return ServiceResponse::failure(R.Id, "internal", "unreachable");
  };
  // No handler failure may kill a worker thread: an allocation failure
  // becomes a retryable resource-exhausted answer, anything else an
  // internal error, and the daemon keeps serving everyone else.
  ServiceResponse Resp;
  try {
    Resp = Dispatch();
  } catch (const std::bad_alloc &) {
    NumShedMemory.fetch_add(1, std::memory_order_relaxed);
    Resp = ServiceResponse::failure(
        R.Id, "resource-exhausted",
        "out of memory while handling the request; retry when load drops",
        retryAfterMsHint());
  } catch (const std::exception &E) {
    Resp = ServiceResponse::failure(
        R.Id, "internal",
        std::string("request handler failed: ") + E.what());
  } catch (...) {
    Resp = ServiceResponse::failure(R.Id, "internal",
                                    "request handler failed");
  }
  if (!Resp.Ok)
    NumErrors.fetch_add(1, std::memory_order_relaxed);
  if (obs::Histogram *H = latencyFor(R.TheKind))
    H->observe(secondsSince(T0));
  return Resp;
}

obs::Histogram *AsdfService::latencyFor(ServiceRequest::Kind K) {
  switch (K) {
  case ServiceRequest::Kind::Compile:
    return LatCompile;
  case ServiceRequest::Kind::Run:
    return LatRun;
  case ServiceRequest::Kind::BindRun:
    return LatBindRun;
  case ServiceRequest::Kind::Stats:
    return LatStats;
  default:
    return nullptr;
  }
}

const obs::Histogram *AsdfService::opLatency(ServiceRequest::Kind K) const {
  return const_cast<AsdfService *>(this)->latencyFor(K);
}

JobQueue::Submit AsdfService::submit(
    ServiceRequest R, std::function<void(ServiceResponse)> Done,
    uint64_t Client) {
  Clock::time_point Deadline;
  if (R.TimeoutSecs > 0)
    Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(R.TimeoutSecs));
  // Queue wait is only measurable retroactively: the duration is known
  // when a worker picks the job up, so the span is emitted there with the
  // enqueue timestamp captured here.
  uint64_t EnqueuedNs = obs::traceEnabled() ? obs::nowNs() : 0;
  JobQueue::Submit Outcome = Queue.submit(
      [this, R = std::move(R), Done = std::move(Done), Deadline,
       EnqueuedNs] {
        if (EnqueuedNs) {
          uint64_t Now = obs::nowNs();
          obs::emitSpan("queue.wait", "service", EnqueuedNs,
                        Now > EnqueuedNs ? Now - EnqueuedNs : 0, R.Trace);
        }
        Done(handle(R, Deadline));
      },
      Client);
  if (Outcome == JobQueue::Submit::Overloaded) {
    NumShedOverloaded.fetch_add(1, std::memory_order_relaxed);
    NumErrors.fetch_add(1, std::memory_order_relaxed);
  }
  return Outcome;
}

uint64_t AsdfService::retryAfterMsHint() const {
  JobQueue::Counters C = Queue.counters();
  unsigned W = std::max(1u, Queue.workers());
  // ~25 ms of work per queued request per worker: crude, but monotone in
  // the backlog, which is what a backoff hint needs to be.
  uint64_t Hint = 25 * (C.Pending / W + 1);
  return std::min<uint64_t>(std::max<uint64_t>(Hint, 25), 2000);
}

ServiceResponse AsdfService::overloadedResponse(uint64_t Id) const {
  return ServiceResponse::failure(
      Id, "overloaded",
      "request queue is full; back off and retry", retryAfterMsHint());
}

bool AsdfService::admitRunMemory(const ServiceRequest &R,
                                 unsigned NumQubits, size_t &Reserved,
                                 ServiceResponse &Failure) {
  Reserved = 0;
  if (RunMemoryBudget == 0)
    return true;
  // The floor of what a dense run allocates: one 16-byte amplitude per
  // basis state. Shot-parallel worker forks can multiply it, but bounding
  // the floor already refuses every state that cannot fit at all.
  size_t Need = NumQubits >= 8 * sizeof(size_t) - 4
                    ? std::numeric_limits<size_t>::max()
                    : size_t(16) << NumQubits;
  if (Need > RunMemoryBudget) {
    NumShedMemory.fetch_add(1, std::memory_order_relaxed);
    Failure = ServiceResponse::failure(
        R.Id, "resource-exhausted",
        "dense statevector for " + std::to_string(NumQubits) +
            " qubit(s) needs " + std::to_string(Need) +
            " bytes against a run-memory budget of " +
            std::to_string(RunMemoryBudget) +
            " (use a smaller circuit, the stab/mps backend, or a larger "
            "--run-mem-mb)");
    return false;
  }
  size_t Cur = RunMemoryInFlight.load();
  while (true) {
    if (Cur + Need > RunMemoryBudget) {
      // Fits alone but not beside the runs in flight: retryable.
      NumShedMemory.fetch_add(1, std::memory_order_relaxed);
      Failure = ServiceResponse::failure(
          R.Id, "resource-exhausted",
          "run-memory budget is held by in-flight runs; retry shortly",
          std::max<uint64_t>(retryAfterMsHint(), 50));
      return false;
    }
    if (RunMemoryInFlight.compare_exchange_weak(Cur, Cur + Need))
      break;
  }
  Reserved = Need;
  return true;
}

void AsdfService::releaseRunMemory(size_t Bytes) {
  if (Bytes)
    RunMemoryInFlight.fetch_sub(Bytes);
}

std::shared_ptr<const CachedArtifact> AsdfService::coalesceCompile(
    const CacheKey &Key, bool &WasHit, double &CompileSecs,
    ServiceResponse &Failure,
    const std::function<std::shared_ptr<const CachedArtifact>(
        ServiceResponse &, double &)> &Compute) {
  CompileSecs = 0.0;
  if (std::shared_ptr<const CachedArtifact> Hit = Cache.get(Key)) {
    WasHit = true;
    return Hit;
  }
  WasHit = false;
  std::string KeyHex = Key.hex();
  std::shared_ptr<Flight> F;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(FlightsM);
    auto It = Flights.find(KeyHex);
    if (It != Flights.end()) {
      F = It->second;
    } else {
      F = std::make_shared<Flight>();
      Flights.emplace(KeyHex, F);
      Leader = true;
    }
  }
  if (!Leader) {
    // Another request is compiling exactly this key right now: wait for
    // its result instead of compiling the same thing again (the classic
    // cache stampede — both requests miss, both compile, one insert wins).
    NumCoalesced.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> Lock(F->M);
    F->CV.wait(Lock, [&] { return F->Done; });
    if (F->Art) {
      WasHit = true; // Served without compiling, exactly like a hit.
      return F->Art;
    }
    Failure = F->Failure;
    return nullptr;
  }
  NumCompiled.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const CachedArtifact> Art;
  auto Publish = [&] {
    {
      std::lock_guard<std::mutex> Lock(FlightsM);
      Flights.erase(KeyHex);
    }
    {
      std::lock_guard<std::mutex> Lock(F->M);
      F->Art = Art;
      F->Failure = Failure;
      F->Done = true;
    }
    F->CV.notify_all();
  };
  try {
    Art = Compute(Failure, CompileSecs);
  } catch (...) {
    // Never strand waiters: publish an internal failure, then rethrow.
    Failure = ServiceResponse::failure(0, "internal",
                                       "compilation terminated abnormally");
    Publish();
    throw;
  }
  if (Art)
    Cache.put(Key, Art); // Insert before waking waiters: no re-miss window.
  Publish();
  return Art;
}

std::shared_ptr<const Circuit> AsdfService::flatCircuitFor(
    const ServiceRequest &R, const PipelinePlan &Plan, bool &WasHit,
    std::string &KeyHex, double &CompileSecs, ServiceResponse &Failure) {
  CacheKey Key = computeCacheKey(R, Plan, "flat-circuit");
  KeyHex = Key.hex();
  std::shared_ptr<const CachedArtifact> Art = coalesceCompile(
      Key, WasHit, CompileSecs, Failure,
      [&](ServiceResponse &Fail,
          double &Secs) -> std::shared_ptr<const CachedArtifact> {
        if (fault::shouldFail("compile.bad-alloc"))
          throw std::bad_alloc();
        Clock::time_point T0 = Clock::now();
        SessionOptions Opts;
        Opts.Entry = R.Entry;
        Opts.Plan = Plan;
        CompileSession Session(R.Source, R.Bindings, Opts);
        Circuit *Flat = Session.flatCircuit();
        Secs = secondsSince(T0);
        if (!Flat) {
          Fail = ServiceResponse::failure(R.Id, "compile-error",
                                          Session.errorMessage());
          return nullptr;
        }
        auto Entry = std::make_shared<CachedArtifact>();
        Entry->Kind = "flat-circuit";
        Entry->Flat = std::make_shared<Circuit>(std::move(*Flat));
        return Entry;
      });
  if (!Art) {
    Failure.Id = R.Id; // A coalesced failure carries the leader's id.
    return nullptr;
  }
  return Art->Flat;
}

ServiceResponse
AsdfService::handleCompile(const ServiceRequest &R,
                           Clock::time_point Deadline) {
  if (!validServiceEmit(R.Emit))
    return ServiceResponse::failure(
        R.Id, "bad-request",
        "unknown emit '" + R.Emit +
            "' (expected qasm, qir, qir-base, qwerty-ir, or circuit)");
  PipelinePlan Plan;
  std::string Error;
  if (!parsePipelinePlan(R.Pipeline, Plan, Error))
    return ServiceResponse::failure(R.Id, "bad-request", Error);
  if (!Plan.producesFlatCircuit() && R.Emit != "qir" &&
      R.Emit != "qwerty-ir")
    return ServiceResponse::failure(
        R.Id, "unsupported",
        "a non-inlining pipeline supports only emit qir/qwerty-ir");

  ServiceResponse Resp;
  Resp.Id = R.Id;
  CacheKey Key = computeCacheKey(R, Plan, R.Emit);
  Resp.Key = Key.hex();
  ServiceResponse Failure;
  std::shared_ptr<const CachedArtifact> Art = coalesceCompile(
      Key, Resp.CacheHit, Resp.CompileSecs, Failure,
      [&](ServiceResponse &Fail,
          double &Secs) -> std::shared_ptr<const CachedArtifact> {
        if (expired(Deadline)) {
          NumTimeouts.fetch_add(1, std::memory_order_relaxed);
          Fail = ServiceResponse::failure(
              R.Id, "timeout", "request deadline passed before compile");
          return nullptr;
        }
        if (fault::shouldFail("compile.bad-alloc"))
          throw std::bad_alloc();
        Clock::time_point T0 = Clock::now();
        SessionOptions Opts;
        Opts.Entry = R.Entry;
        Opts.Plan = Plan;
        CompileSession Session(R.Source, R.Bindings, Opts);
        std::string Text;
        if (R.Emit == "qwerty-ir") {
          Module *QW = Session.qwertyIR();
          if (!QW) {
            Fail = ServiceResponse::failure(R.Id, "compile-error",
                                            Session.errorMessage());
            return nullptr;
          }
          Text = QW->str();
        } else if (R.Emit == "qir") {
          Module *QC = Session.qcircIR();
          if (!QC) {
            Fail = ServiceResponse::failure(R.Id, "compile-error",
                                            Session.errorMessage());
            return nullptr;
          }
          Text = emitQirUnrestricted(*QC);
        } else {
          Circuit *Flat = Session.flatCircuit();
          if (!Flat) {
            Fail = ServiceResponse::failure(R.Id, "compile-error",
                                            Session.errorMessage());
            return nullptr;
          }
          if (R.Emit == "qasm") {
            Text = emitOpenQasm3(*Flat);
          } else if (R.Emit == "circuit") {
            Text = Flat->str();
          } else { // qir-base
            std::optional<std::string> Qir = emitQirBaseProfile(*Flat);
            if (!Qir) {
              Fail = ServiceResponse::failure(
                  R.Id, "unsupported",
                  "circuit needs features outside the Base Profile "
                  "(dynamic conditions or unbound parameters)");
              return nullptr;
            }
            Text = std::move(*Qir);
          }
        }
        Secs = secondsSince(T0);
        auto Entry = std::make_shared<CachedArtifact>();
        Entry->Kind = R.Emit;
        Entry->Text = std::move(Text);
        return Entry;
      });
  if (!Art) {
    Failure.Id = R.Id; // A coalesced failure carries the leader's id.
    return Failure;
  }
  Resp.Ok = true;
  Resp.Artifact = Art->Text;
  return Resp;
}

ServiceResponse AsdfService::handleRun(const ServiceRequest &R,
                                       Clock::time_point Deadline) {
  PipelinePlan Plan;
  std::string Error;
  if (!parsePipelinePlan(R.Pipeline, Plan, Error))
    return ServiceResponse::failure(R.Id, "bad-request", Error);
  if (!Plan.producesFlatCircuit())
    return ServiceResponse::failure(
        R.Id, "unsupported",
        "run requests need a fully inlining pipeline (the plan keeps "
        "callables, which only the QIR path can emit)");
  BackendKind Kind;
  if (!parseBackendKind(R.Backend, Kind))
    return ServiceResponse::failure(
        R.Id, "bad-request",
        "unknown backend '" + R.Backend +
            "' (expected auto, sv, stab, or mps)");

  ServiceResponse Resp;
  Resp.Id = R.Id;
  ServiceResponse Failure;
  std::shared_ptr<const Circuit> Flat = flatCircuitFor(
      R, Plan, Resp.CacheHit, Resp.Key, Resp.CompileSecs, Failure);
  if (!Flat)
    return Failure;
  if (expired(Deadline)) {
    NumTimeouts.fetch_add(1, std::memory_order_relaxed);
    return ServiceResponse::failure(R.Id, "timeout",
                                    "request deadline passed before run");
  }

  // Identical pre-run checks to the asdfc driver: a backend is only handed
  // circuits it supports, with the dense cap derived from this request's
  // options.
  RunOptions RunOpts;
  RunOpts.Jobs = R.Jobs;
  // Cooperative cancellation: the engines re-check this between shots, so
  // a long multi-shot run cannot overshoot its deadline by more than one
  // shot (an in-flight kernel is never preempted).
  RunOpts.Deadline = Deadline;
  CircuitProfile Profile = analyzeCircuit(*Flat);
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      *Flat, Kind, RunOpts, &Profile, nullptr);
  SimBackend &B = *Sel.Chosen;
  if (!Sel.Supported)
    return ServiceResponse::failure(
        R.Id, "unsupported",
        std::string("backend '") + B.name() +
            "' cannot simulate this circuit (" + Sel.CostSummary +
            "); candidates: " + Sel.rejectionSummary());

  // Admission: a dense run reserves its state bytes against the budget
  // before touching the simulator, so an oversized request is refused
  // (retryably) instead of thrashing or OOM-killing the daemon.
  size_t Reserved = 0;
  if (std::strcmp(B.name(), "sv") == 0) {
    ServiceResponse MemFailure;
    if (!admitRunMemory(R, Flat->NumQubits, Reserved, MemFailure))
      return MemFailure;
  }
  std::vector<ShotResult> Batch;
  try {
    Batch = B.runBatch(*Flat, R.Shots, R.Seed, RunOpts);
  } catch (const DeadlineExceeded &) {
    releaseRunMemory(Reserved);
    NumTimeouts.fetch_add(1, std::memory_order_relaxed);
    return ServiceResponse::failure(R.Id, "timeout",
                                    "run deadline exceeded between shots");
  } catch (...) {
    releaseRunMemory(Reserved);
    throw;
  }
  releaseRunMemory(Reserved);
  NumShots.fetch_add(R.Shots, std::memory_order_relaxed);
  Resp.Results.reserve(Batch.size());
  for (const ShotResult &Shot : Batch) {
    Resp.Results.push_back(formatShotBits(*Flat, Shot));
    ++Resp.Counts[Resp.Results.back()];
  }
  Resp.Ok = true;
  return Resp;
}

ServiceResponse AsdfService::handleBindRun(const ServiceRequest &R,
                                           Clock::time_point Deadline) {
  PipelinePlan Plan;
  std::string Error;
  if (!parsePipelinePlan(R.Pipeline, Plan, Error))
    return ServiceResponse::failure(R.Id, "bad-request", Error);
  if (!Plan.producesFlatCircuit())
    return ServiceResponse::failure(
        R.Id, "unsupported",
        "bind-run requests need a fully inlining pipeline (the plan keeps "
        "callables, which only the QIR path can emit)");
  BackendKind Kind;
  if (!parseBackendKind(R.Backend, Kind))
    return ServiceResponse::failure(
        R.Id, "bad-request",
        "unknown backend '" + R.Backend +
            "' (expected auto, sv, stab, or mps)");
  if (R.Points.empty())
    return ServiceResponse::failure(R.Id, "bad-request",
                                    "bind-run needs at least one point");
  for (size_t P = 0; P < R.Points.size(); ++P)
    if (R.Points[P].size() != R.SweepParams.size())
      return ServiceResponse::failure(
          R.Id, "bad-request",
          "point " + std::to_string(P) + " has " +
              std::to_string(R.Points[P].size()) +
              " value(s) but \"params\" names " +
              std::to_string(R.SweepParams.size()));
  {
    std::set<std::string> Seen;
    for (const std::string &Name : R.SweepParams)
      if (!Seen.insert(Name).second)
        return ServiceResponse::failure(
            R.Id, "bad-request",
            "duplicate sweep parameter '" + Name + "'");
  }

  // Canonicalize the source: lift literal rotation angles into fresh
  // $__aK parameters so requests differing only in angle values share one
  // compiled (and cached) parametric circuit — the compile-once,
  // re-bind-forever path. The structure hash (the cache key) is computed
  // over the lifted source, which by construction excludes angle values.
  ServiceRequest Canon = R;
  std::optional<ParameterizedSource> PS = parameterizeSource(R.Source);
  if (PS)
    Canon.Source = PS->Source;

  ServiceResponse Resp;
  Resp.Id = R.Id;
  ServiceResponse Failure;
  std::shared_ptr<const Circuit> Flat = flatCircuitFor(
      Canon, Plan, Resp.CacheHit, Resp.Key, Resp.CompileSecs, Failure);
  if (!Flat)
    return Failure;
  if (expired(Deadline)) {
    NumTimeouts.fetch_add(1, std::memory_order_relaxed);
    return ServiceResponse::failure(R.Id, "timeout",
                                    "request deadline passed before run");
  }

  // Resolve every circuit parameter: lifted angles bind to the values
  // they were lifted from, everything else must come from the request's
  // sweep values by name.
  const std::vector<std::string> &Names = Flat->ParamNames;
  std::map<std::string, double> Lifted;
  if (PS)
    for (size_t K = 0; K < PS->LiftedNames.size(); ++K)
      Lifted[PS->LiftedNames[K]] = PS->LiftedValues[K];
  for (const std::string &Name : R.SweepParams) {
    if (Name.rfind("__a", 0) == 0)
      return ServiceResponse::failure(
          R.Id, "bad-request",
          "sweep parameter '" + Name +
              "' uses the internally lifted angle namespace (the __a "
              "prefix is reserved)");
    if (std::find(Names.begin(), Names.end(), Name) == Names.end())
      return ServiceResponse::failure(
          R.Id, "bad-request",
          "unknown sweep parameter '" + Name +
              "' (the program declares no such $-parameter)");
  }
  std::vector<int> SweepIdx(Names.size(), -1);
  std::vector<double> FixedVal(Names.size(), 0.0);
  for (size_t I = 0; I < Names.size(); ++I) {
    auto SIt =
        std::find(R.SweepParams.begin(), R.SweepParams.end(), Names[I]);
    if (SIt != R.SweepParams.end()) {
      SweepIdx[I] = static_cast<int>(SIt - R.SweepParams.begin());
      continue;
    }
    auto LIt = Lifted.find(Names[I]);
    if (LIt == Lifted.end())
      return ServiceResponse::failure(
          R.Id, "bad-request",
          "parameter '$" + Names[I] +
              "' is not covered by \"params\" and has no literal value to "
              "lift");
    FixedVal[I] = LIt->second;
  }
  std::vector<std::vector<double>> FullPoints(R.Points.size());
  for (size_t P = 0; P < R.Points.size(); ++P) {
    FullPoints[P].resize(Names.size());
    for (size_t I = 0; I < Names.size(); ++I)
      FullPoints[P][I] =
          SweepIdx[I] >= 0 ? R.Points[P][SweepIdx[I]] : FixedVal[I];
  }

  RunOptions RunOpts;
  RunOpts.Jobs = R.Jobs;
  RunOpts.Deadline = Deadline; // Checked between shots and between points.
  CircuitProfile Profile = analyzeCircuit(*Flat);
  BackendSelection Sel = BackendRegistry::instance().selectWithReasons(
      *Flat, Kind, RunOpts, &Profile, nullptr);
  SimBackend &B = *Sel.Chosen;
  if (!Sel.Supported)
    return ServiceResponse::failure(
        R.Id, "unsupported",
        std::string("backend '") + B.name() +
            "' cannot simulate this circuit (" + Sel.CostSummary +
            "); candidates: " + Sel.rejectionSummary());

  size_t Reserved = 0;
  if (std::strcmp(B.name(), "sv") == 0) {
    ServiceResponse MemFailure;
    if (!admitRunMemory(R, Flat->NumQubits, Reserved, MemFailure))
      return MemFailure;
  }
  std::vector<std::vector<ShotResult>> Sweep;
  try {
    Sweep = B.runSweep(*Flat, FullPoints, R.Shots, R.Seed, RunOpts);
  } catch (const DeadlineExceeded &) {
    releaseRunMemory(Reserved);
    NumTimeouts.fetch_add(1, std::memory_order_relaxed);
    return ServiceResponse::failure(R.Id, "timeout",
                                    "run deadline exceeded during sweep");
  } catch (...) {
    releaseRunMemory(Reserved);
    throw;
  }
  releaseRunMemory(Reserved);
  NumShots.fetch_add(static_cast<uint64_t>(R.Shots) * FullPoints.size(),
                     std::memory_order_relaxed);
  Resp.PointResults.resize(Sweep.size());
  for (size_t P = 0; P < Sweep.size(); ++P) {
    Resp.PointResults[P].reserve(Sweep[P].size());
    for (const ShotResult &Shot : Sweep[P])
      Resp.PointResults[P].push_back(formatShotBits(*Flat, Shot));
  }
  Resp.Ok = true;
  return Resp;
}

ServiceResponse AsdfService::handleStats(const ServiceRequest &R) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Ok = true;
  Resp.StatsBody = statsJson();
  return Resp;
}

ServiceResponse AsdfService::handleShutdown(const ServiceRequest &R) {
  ShuttingDown.store(true);
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Ok = true;
  return Resp;
}

ServiceResponse AsdfService::handleMetrics(const ServiceRequest &R) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Ok = true;
  Resp.MetricsText = metricsText();
  return Resp;
}

json::Value AsdfService::statsJson() const {
  json::Value O = json::Value::object();
  O.set("version", json::Value::str(buildInfo().Version));
  O.set("fingerprint", json::Value::str(buildFingerprint()));
  O.set("uptime_secs", json::Value::number(secondsSince(Start)));
  O.set("workers", json::Value::integer(
                       static_cast<uint64_t>(Queue.workers())));

  CacheStats CS = Cache.stats();
  json::Value C = json::Value::object();
  C.set("hits", json::Value::integer(CS.Hits));
  C.set("misses", json::Value::integer(CS.Misses));
  C.set("evictions", json::Value::integer(CS.Evictions));
  C.set("insertions", json::Value::integer(CS.Insertions));
  C.set("entries", json::Value::integer(CS.Entries));
  C.set("bytes_used", json::Value::integer(
                          static_cast<uint64_t>(CS.BytesUsed)));
  C.set("byte_budget", json::Value::integer(
                           static_cast<uint64_t>(CS.ByteBudget)));
  O.set("cache", std::move(C));

  json::Value Req = json::Value::object();
  Req.set("compile", json::Value::integer(NumCompile.load()));
  Req.set("run", json::Value::integer(NumRun.load()));
  Req.set("bind_run", json::Value::integer(NumBindRun.load()));
  Req.set("stats", json::Value::integer(NumStats.load()));
  Req.set("metrics", json::Value::integer(NumMetrics.load()));
  Req.set("errors", json::Value::integer(NumErrors.load()));
  Req.set("timeouts", json::Value::integer(NumTimeouts.load()));
  Req.set("shots", json::Value::integer(NumShots.load()));
  Req.set("compiled", json::Value::integer(NumCompiled.load()));
  Req.set("coalesced", json::Value::integer(NumCoalesced.load()));
  Req.set("shed_overloaded", json::Value::integer(NumShedOverloaded.load()));
  Req.set("shed_memory", json::Value::integer(NumShedMemory.load()));
  Req.set("shed_expired", json::Value::integer(NumShedExpired.load()));
  O.set("requests", std::move(Req));

  JobQueue::Counters QC = Queue.counters();
  json::Value Q = json::Value::object();
  Q.set("submitted", json::Value::integer(QC.Submitted));
  Q.set("executed", json::Value::integer(QC.Executed));
  Q.set("rejected", json::Value::integer(QC.Rejected));
  Q.set("shed", json::Value::integer(QC.Shed));
  Q.set("pending", json::Value::integer(QC.Pending));
  O.set("queue", std::move(Q));

  if (Disk) {
    DiskCacheStats DS = Disk->stats();
    json::Value D = json::Value::object();
    D.set("dir", json::Value::str(Disk->dir()));
    D.set("hits", json::Value::integer(DS.Hits));
    D.set("misses", json::Value::integer(DS.Misses));
    D.set("insertions", json::Value::integer(DS.Insertions));
    D.set("evictions", json::Value::integer(DS.Evictions));
    D.set("corrupt", json::Value::integer(DS.Corrupt));
    D.set("quarantined", json::Value::integer(DS.Quarantined));
    D.set("write_failures", json::Value::integer(DS.WriteFailures));
    D.set("warmed", json::Value::integer(DS.WarmedEntries));
    D.set("entries", json::Value::integer(DS.Entries));
    D.set("bytes_used",
          json::Value::integer(static_cast<uint64_t>(DS.BytesUsed)));
    D.set("byte_budget",
          json::Value::integer(static_cast<uint64_t>(DS.ByteBudget)));
    O.set("disk", std::move(D));
  }

  // Per-op latency histograms, in the shared fixed-bucket encoding: a
  // client can rebuild each histogram from the bucket counts and derive
  // the byte-identical p50/p90/p99 (Histogram::fromJson + quantile).
  json::Value Lat = json::Value::object();
  Lat.set("compile", LatCompile->toJson());
  Lat.set("run", LatRun->toJson());
  Lat.set("bind_run", LatBindRun->toJson());
  Lat.set("stats", LatStats->toJson());
  O.set("latency", std::move(Lat));
  return O;
}
