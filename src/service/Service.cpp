//===- Service.cpp - The compile-and-run service engine -------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "codegen/QasmEmitter.h"
#include "codegen/QirEmitter.h"
#include "compiler/CompileSession.h"
#include "sim/CircuitAnalysis.h"
#include "sim/Simulator.h"
#include "support/BuildInfo.h"

#include <cstring>

using namespace asdf;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

bool validServiceEmit(const std::string &E) {
  return E == "qasm" || E == "qir" || E == "qir-base" || E == "qwerty-ir" ||
         E == "circuit";
}

} // namespace

AsdfService::AsdfService(ServiceOptions Options)
    : Cache(Options.CacheBytes), Queue(Options.Workers),
      Start(Clock::now()) {}

AsdfService::~AsdfService() { drain(); }

void AsdfService::drain() {
  ShuttingDown.store(true);
  Queue.drain();
}

ServiceResponse AsdfService::handle(const ServiceRequest &R) {
  Clock::time_point Deadline; // Epoch = none.
  if (R.TimeoutSecs > 0)
    Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(R.TimeoutSecs));
  return handle(R, Deadline);
}

ServiceResponse AsdfService::handle(const ServiceRequest &R,
                                    Clock::time_point Deadline) {
  ServiceResponse Resp = [&] {
    if (expired(Deadline)) {
      NumTimeouts.fetch_add(1, std::memory_order_relaxed);
      return ServiceResponse::failure(
          R.Id, "timeout", "request deadline passed before execution");
    }
    switch (R.TheKind) {
    case ServiceRequest::Kind::Compile:
      NumCompile.fetch_add(1, std::memory_order_relaxed);
      return handleCompile(R, Deadline);
    case ServiceRequest::Kind::Run:
      NumRun.fetch_add(1, std::memory_order_relaxed);
      return handleRun(R, Deadline);
    case ServiceRequest::Kind::Stats:
      NumStats.fetch_add(1, std::memory_order_relaxed);
      return handleStats(R);
    case ServiceRequest::Kind::Shutdown:
      return handleShutdown(R);
    }
    return ServiceResponse::failure(R.Id, "internal", "unreachable");
  }();
  if (!Resp.Ok)
    NumErrors.fetch_add(1, std::memory_order_relaxed);
  return Resp;
}

bool AsdfService::submit(ServiceRequest R,
                         std::function<void(ServiceResponse)> Done) {
  Clock::time_point Deadline;
  if (R.TimeoutSecs > 0)
    Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(R.TimeoutSecs));
  return Queue.submit(
      [this, R = std::move(R), Done = std::move(Done), Deadline] {
        Done(handle(R, Deadline));
      });
}

std::shared_ptr<const Circuit> AsdfService::flatCircuitFor(
    const ServiceRequest &R, const PipelinePlan &Plan, bool &WasHit,
    std::string &KeyHex, double &CompileSecs, ServiceResponse &Failure) {
  CacheKey Key = computeCacheKey(R, Plan, "flat-circuit");
  KeyHex = Key.hex();
  if (std::shared_ptr<const CachedArtifact> Hit = Cache.get(Key)) {
    WasHit = true;
    return Hit->Flat;
  }
  WasHit = false;
  Clock::time_point T0 = Clock::now();
  SessionOptions Opts;
  Opts.Entry = R.Entry;
  Opts.Plan = Plan;
  CompileSession Session(R.Source, R.Bindings, Opts);
  Circuit *Flat = Session.flatCircuit();
  CompileSecs = secondsSince(T0);
  if (!Flat) {
    Failure = ServiceResponse::failure(R.Id, "compile-error",
                                       Session.errorMessage());
    return nullptr;
  }
  auto Shared = std::make_shared<Circuit>(std::move(*Flat));
  auto Entry = std::make_shared<CachedArtifact>();
  Entry->Kind = "flat-circuit";
  Entry->Flat = Shared;
  Cache.put(Key, std::move(Entry));
  return Shared;
}

ServiceResponse
AsdfService::handleCompile(const ServiceRequest &R,
                           Clock::time_point Deadline) {
  if (!validServiceEmit(R.Emit))
    return ServiceResponse::failure(
        R.Id, "bad-request",
        "unknown emit '" + R.Emit +
            "' (expected qasm, qir, qir-base, qwerty-ir, or circuit)");
  PipelinePlan Plan;
  std::string Error;
  if (!parsePipelinePlan(R.Pipeline, Plan, Error))
    return ServiceResponse::failure(R.Id, "bad-request", Error);
  if (!Plan.producesFlatCircuit() && R.Emit != "qir" &&
      R.Emit != "qwerty-ir")
    return ServiceResponse::failure(
        R.Id, "unsupported",
        "a non-inlining pipeline supports only emit qir/qwerty-ir");

  ServiceResponse Resp;
  Resp.Id = R.Id;
  CacheKey Key = computeCacheKey(R, Plan, R.Emit);
  Resp.Key = Key.hex();
  if (std::shared_ptr<const CachedArtifact> Hit = Cache.get(Key)) {
    Resp.Ok = true;
    Resp.CacheHit = true;
    Resp.Artifact = Hit->Text;
    return Resp;
  }
  if (expired(Deadline)) {
    NumTimeouts.fetch_add(1, std::memory_order_relaxed);
    return ServiceResponse::failure(R.Id, "timeout",
                                    "request deadline passed before compile");
  }

  Clock::time_point T0 = Clock::now();
  SessionOptions Opts;
  Opts.Entry = R.Entry;
  Opts.Plan = Plan;
  CompileSession Session(R.Source, R.Bindings, Opts);
  std::string Text;
  if (R.Emit == "qwerty-ir") {
    Module *QW = Session.qwertyIR();
    if (!QW)
      return ServiceResponse::failure(R.Id, "compile-error",
                                      Session.errorMessage());
    Text = QW->str();
  } else if (R.Emit == "qir") {
    Module *QC = Session.qcircIR();
    if (!QC)
      return ServiceResponse::failure(R.Id, "compile-error",
                                      Session.errorMessage());
    Text = emitQirUnrestricted(*QC);
  } else {
    Circuit *Flat = Session.flatCircuit();
    if (!Flat)
      return ServiceResponse::failure(R.Id, "compile-error",
                                      Session.errorMessage());
    if (R.Emit == "qasm") {
      Text = emitOpenQasm3(*Flat);
    } else if (R.Emit == "circuit") {
      Text = Flat->str();
    } else { // qir-base
      std::optional<std::string> Qir = emitQirBaseProfile(*Flat);
      if (!Qir)
        return ServiceResponse::failure(
            R.Id, "unsupported",
            "circuit needs features outside the Base Profile (dynamic "
            "conditions)");
      Text = std::move(*Qir);
    }
  }
  Resp.CompileSecs = secondsSince(T0);
  Resp.Ok = true;
  Resp.CacheHit = false;
  Resp.Artifact = Text;
  auto Entry = std::make_shared<CachedArtifact>();
  Entry->Kind = R.Emit;
  Entry->Text = std::move(Text);
  Cache.put(Key, std::move(Entry));
  return Resp;
}

ServiceResponse AsdfService::handleRun(const ServiceRequest &R,
                                       Clock::time_point Deadline) {
  PipelinePlan Plan;
  std::string Error;
  if (!parsePipelinePlan(R.Pipeline, Plan, Error))
    return ServiceResponse::failure(R.Id, "bad-request", Error);
  if (!Plan.producesFlatCircuit())
    return ServiceResponse::failure(
        R.Id, "unsupported",
        "run requests need a fully inlining pipeline (the plan keeps "
        "callables, which only the QIR path can emit)");
  BackendKind Kind;
  if (!parseBackendKind(R.Backend, Kind))
    return ServiceResponse::failure(
        R.Id, "bad-request",
        "unknown backend '" + R.Backend + "' (expected auto, sv, or stab)");

  ServiceResponse Resp;
  Resp.Id = R.Id;
  ServiceResponse Failure;
  std::shared_ptr<const Circuit> Flat = flatCircuitFor(
      R, Plan, Resp.CacheHit, Resp.Key, Resp.CompileSecs, Failure);
  if (!Flat)
    return Failure;
  if (expired(Deadline)) {
    NumTimeouts.fetch_add(1, std::memory_order_relaxed);
    return ServiceResponse::failure(R.Id, "timeout",
                                    "request deadline passed before run");
  }

  // Identical pre-run checks to the asdfc driver: a backend is only handed
  // circuits it supports, with the dense cap derived from this request's
  // options.
  RunOptions RunOpts;
  RunOpts.Jobs = R.Jobs;
  CircuitProfile Profile = analyzeCircuit(*Flat);
  SimBackend &B =
      BackendRegistry::instance().select(*Flat, Kind, &Profile, nullptr);
  bool Supported = B.supports(*Flat, Profile);
  if (std::strcmp(B.name(), "sv") == 0)
    Supported = Flat->NumQubits <= StatevectorBackend::maxQubits(RunOpts);
  if (!Supported)
    return ServiceResponse::failure(
        R.Id, "unsupported",
        std::string("backend '") + B.name() +
            "' cannot simulate this circuit (" +
            std::to_string(Flat->NumQubits) + " qubits, " +
            (Profile.CliffordOnly ? "Clifford" : "non-Clifford") + ")");

  std::vector<ShotResult> Batch = B.runBatch(*Flat, R.Shots, R.Seed, RunOpts);
  NumShots.fetch_add(R.Shots, std::memory_order_relaxed);
  Resp.Results.reserve(Batch.size());
  for (const ShotResult &Shot : Batch) {
    Resp.Results.push_back(formatShotBits(*Flat, Shot));
    ++Resp.Counts[Resp.Results.back()];
  }
  Resp.Ok = true;
  return Resp;
}

ServiceResponse AsdfService::handleStats(const ServiceRequest &R) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Ok = true;
  Resp.StatsBody = statsJson();
  return Resp;
}

ServiceResponse AsdfService::handleShutdown(const ServiceRequest &R) {
  ShuttingDown.store(true);
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Ok = true;
  return Resp;
}

json::Value AsdfService::statsJson() const {
  json::Value O = json::Value::object();
  O.set("version", json::Value::str(buildInfo().Version));
  O.set("fingerprint", json::Value::str(buildFingerprint()));
  O.set("uptime_secs", json::Value::number(secondsSince(Start)));
  O.set("workers", json::Value::integer(
                       static_cast<uint64_t>(Queue.workers())));

  CacheStats CS = Cache.stats();
  json::Value C = json::Value::object();
  C.set("hits", json::Value::integer(CS.Hits));
  C.set("misses", json::Value::integer(CS.Misses));
  C.set("evictions", json::Value::integer(CS.Evictions));
  C.set("insertions", json::Value::integer(CS.Insertions));
  C.set("entries", json::Value::integer(CS.Entries));
  C.set("bytes_used", json::Value::integer(
                          static_cast<uint64_t>(CS.BytesUsed)));
  C.set("byte_budget", json::Value::integer(
                           static_cast<uint64_t>(CS.ByteBudget)));
  O.set("cache", std::move(C));

  json::Value Req = json::Value::object();
  Req.set("compile", json::Value::integer(NumCompile.load()));
  Req.set("run", json::Value::integer(NumRun.load()));
  Req.set("stats", json::Value::integer(NumStats.load()));
  Req.set("errors", json::Value::integer(NumErrors.load()));
  Req.set("timeouts", json::Value::integer(NumTimeouts.load()));
  Req.set("shots", json::Value::integer(NumShots.load()));
  O.set("requests", std::move(Req));

  JobQueue::Counters QC = Queue.counters();
  json::Value Q = json::Value::object();
  Q.set("submitted", json::Value::integer(QC.Submitted));
  Q.set("executed", json::Value::integer(QC.Executed));
  Q.set("rejected", json::Value::integer(QC.Rejected));
  Q.set("pending", json::Value::integer(QC.Pending));
  O.set("queue", std::move(Q));
  return O;
}
