//===- ArtifactCache.cpp - Content-hashed LRU artifact cache --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ArtifactCache.h"

#include "compiler/CompileSession.h"
#include "obs/Trace.h"
#include "service/DiskCache.h"
#include "service/Request.h"
#include "support/BuildInfo.h"

#include <cstdio>

using namespace asdf;

std::string CacheKey::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

CacheKey asdf::computeCacheKey(const ServiceRequest &R,
                               const PipelinePlan &Plan,
                               const std::string &ArtifactKind,
                               const std::string &BuildFingerprint) {
  ContentHasher H;
  // The compiler owns the encoding of its own inputs (CompileSession's
  // hashing hook); the service layers the build fingerprint and the
  // artifact discriminator on top.
  H.str("fingerprint");
  H.str(BuildFingerprint.empty() ? buildFingerprint() : BuildFingerprint);
  H.str("artifact");
  H.str(ArtifactKind);
  CompileSession::hashIdentity(H, R.Source, R.Entry, Plan, R.Bindings);
  auto D = H.digest();
  return CacheKey{D[0], D[1]};
}

size_t CachedArtifact::bytes() const {
  size_t N = sizeof(CachedArtifact) + Kind.size() + Text.size();
  if (Flat) {
    N += sizeof(Circuit) + Flat->Instrs.size() * sizeof(CircuitInstr) +
         Flat->OutputQubits.size() * sizeof(unsigned) +
         Flat->OutputBits.size() * sizeof(int);
    for (const CircuitInstr &I : Flat->Instrs)
      N += (I.Controls.size() + I.Targets.size()) * sizeof(unsigned);
  }
  return N;
}

ArtifactCache::ArtifactCache(size_t ByteBudget) : Budget(ByteBudget) {
  S.ByteBudget = ByteBudget;
}

std::shared_ptr<const CachedArtifact> ArtifactCache::get(const CacheKey &K) {
  obs::Span Sp("cache.probe", "cache");
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(K);
    if (It != Map.end()) {
      ++S.Hits;
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      return It->second.Art;
    }
    ++S.Misses;
  }
  if (!Disk)
    return nullptr;
  // Memory miss, disk probe (outside the memory lock: disk I/O must not
  // stall concurrent memory hits). A disk hit is promoted so the next
  // probe is a pure memory hit — without a second disk write.
  std::shared_ptr<const CachedArtifact> FromDisk = Disk->get(K);
  if (FromDisk)
    putInMemory(K, FromDisk);
  return FromDisk;
}

void ArtifactCache::put(const CacheKey &K,
                        std::shared_ptr<const CachedArtifact> Art) {
  if (Disk)
    Disk->put(K, *Art);
  putInMemory(K, std::move(Art));
}

void ArtifactCache::putInMemory(const CacheKey &K,
                                std::shared_ptr<const CachedArtifact> Art) {
  size_t Bytes = Art->bytes();
  std::lock_guard<std::mutex> Lock(M);
  if (Bytes > Budget)
    return;
  auto It = Map.find(K);
  if (It != Map.end()) {
    // Concurrent compilers can race to fill the same key; keep the
    // incumbent (identical content) and just refresh recency.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(K);
  Map.emplace(K, Slot{std::move(Art), Lru.begin()});
  ++S.Insertions;
  S.BytesUsed += Bytes;
  evictOverBudgetLocked();
}

void ArtifactCache::evictOverBudgetLocked() {
  while (S.BytesUsed > Budget && !Lru.empty()) {
    const CacheKey &Victim = Lru.back();
    auto It = Map.find(Victim);
    S.BytesUsed -= It->second.Art->bytes();
    Map.erase(It);
    Lru.pop_back();
    ++S.Evictions;
  }
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  CacheStats Out = S;
  Out.Entries = Map.size();
  Out.ByteBudget = Budget;
  return Out;
}

void ArtifactCache::setByteBudget(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(M);
  Budget = Bytes;
  S.ByteBudget = Bytes;
  evictOverBudgetLocked();
}
