//===- Request.cpp - The shared request/job abstraction -------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Request.h"

#include "support/FaultInject.h"

#include <set>

using namespace asdf;

const char *asdf::requestKindName(ServiceRequest::Kind K) {
  switch (K) {
  case ServiceRequest::Kind::Compile:
    return "compile";
  case ServiceRequest::Kind::Run:
    return "run";
  case ServiceRequest::Kind::BindRun:
    return "bind-run";
  case ServiceRequest::Kind::Stats:
    return "stats";
  case ServiceRequest::Kind::Shutdown:
    return "shutdown";
  case ServiceRequest::Kind::Metrics:
    return "metrics";
  }
  return "?";
}

namespace {

const char *kindName(ServiceRequest::Kind K) { return requestKindName(K); }

bool parseKind(const std::string &Name, ServiceRequest::Kind &Out) {
  if (Name == "compile")
    Out = ServiceRequest::Kind::Compile;
  else if (Name == "run")
    Out = ServiceRequest::Kind::Run;
  else if (Name == "bind-run")
    Out = ServiceRequest::Kind::BindRun;
  else if (Name == "stats")
    Out = ServiceRequest::Kind::Stats;
  else if (Name == "shutdown")
    Out = ServiceRequest::Kind::Shutdown;
  else if (Name == "metrics")
    Out = ServiceRequest::Kind::Metrics;
  else
    return false;
  return true;
}

} // namespace

json::Value ServiceRequest::toJson() const {
  json::Value O = json::Value::object();
  O.set("id", json::Value::integer(Id));
  O.set("op", json::Value::str(kindName(TheKind)));
  if (Trace != 0)
    O.set("trace", json::Value::integer(Trace));
  if (!Fault.empty())
    O.set("fault", json::Value::str(Fault));
  if (TheKind == Kind::Stats || TheKind == Kind::Shutdown ||
      TheKind == Kind::Metrics)
    return O;
  O.set("source", json::Value::str(Source));
  if (Entry != "kernel")
    O.set("entry", json::Value::str(Entry));
  if (Pipeline != "default")
    O.set("pipeline", json::Value::str(Pipeline));
  if (!Bindings.DimVars.empty()) {
    json::Value Bind = json::Value::object();
    for (const auto &[Name, Value] : Bindings.DimVars)
      Bind.set(Name, json::Value::integer(static_cast<int64_t>(Value)));
    O.set("bind", std::move(Bind));
  }
  if (!Bindings.Captures.empty()) {
    // Same key syntax as the asdfc flag: "<function>.<param>", with
    // classical-function captures spelled "@name".
    json::Value Cap = json::Value::object();
    for (const auto &[Func, Params] : Bindings.Captures)
      for (const auto &[Param, Capture] : Params) {
        std::string Value;
        if (Capture.TheKind == CaptureValue::Kind::ClassicalFunc) {
          Value = "@" + Capture.FuncName;
        } else {
          Value.reserve(Capture.Bits.size());
          for (bool B : Capture.Bits)
            Value.push_back(B ? '1' : '0');
        }
        Cap.set(Func + "." + Param, json::Value::str(Value));
      }
    O.set("capture", std::move(Cap));
  }
  if (TheKind == Kind::Compile) {
    O.set("emit", json::Value::str(Emit));
  } else {
    O.set("shots", json::Value::integer(static_cast<uint64_t>(Shots)));
    O.set("seed", json::Value::integer(Seed));
    if (Backend != "auto")
      O.set("backend", json::Value::str(Backend));
    if (Jobs != 1)
      O.set("jobs", json::Value::integer(static_cast<uint64_t>(Jobs)));
    if (TheKind == Kind::BindRun) {
      json::Value Params = json::Value::array();
      for (const std::string &Name : SweepParams)
        Params.push(json::Value::str(Name));
      O.set("params", std::move(Params));
      json::Value Pts = json::Value::array();
      for (const std::vector<double> &Point : Points) {
        json::Value P = json::Value::array();
        for (double D : Point)
          P.push(json::Value::number(D));
        Pts.push(std::move(P));
      }
      O.set("points", std::move(Pts));
    }
  }
  if (TimeoutSecs > 0)
    O.set("timeout", json::Value::number(TimeoutSecs));
  return O;
}

bool ServiceRequest::fromJson(const json::Value &V, ServiceRequest &Out,
                              std::string &Error) {
  if (!V.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  const json::Value *Op = V.get("op");
  if (!Op || !Op->isString()) {
    Error = "request needs a string \"op\" field";
    return false;
  }
  Out = ServiceRequest();
  if (!parseKind(Op->asString(), Out.TheKind)) {
    Error = "unknown op '" + Op->asString() +
            "' (expected compile, run, bind-run, stats, metrics, or "
            "shutdown)";
    return false;
  }

  static const std::set<std::string> Known = {
      "id",   "op",      "source", "entry",   "pipeline", "bind",
      "capture", "emit", "shots",  "seed",    "backend",  "jobs",
      "timeout", "params", "points", "trace", "fault"};
  for (const auto &[Key, Member] : V.members()) {
    (void)Member;
    if (!Known.count(Key)) {
      Error = "unknown request field \"" + Key + "\"";
      return false;
    }
  }
  if (Out.TheKind != Kind::BindRun && (V.get("params") || V.get("points"))) {
    Error = "\"params\"/\"points\" are only valid for op \"bind-run\"";
    return false;
  }

  if (const json::Value *Id = V.get("id")) {
    if (!Id->isNumber()) {
      Error = "\"id\" must be a number";
      return false;
    }
    Out.Id = Id->asU64();
  }
  if (const json::Value *T = V.get("timeout")) {
    if (!T->isNumber()) {
      Error = "\"timeout\" must be a number (seconds)";
      return false;
    }
    Out.TimeoutSecs = T->asDouble();
  }
  if (const json::Value *T = V.get("trace")) {
    if (!T->isNumber()) {
      Error = "\"trace\" must be a number";
      return false;
    }
    Out.Trace = T->asU64();
  }
  if (const json::Value *F = V.get("fault")) {
    if (!fault::Compiled) {
      Error = "\"fault\" needs a fault-injection build "
              "(-DASDF_FAULT_INJECTION=ON)";
      return false;
    }
    if (!F->isString()) {
      Error = "\"fault\" must be a string fault spec";
      return false;
    }
    Out.Fault = F->asString();
  }
  if (Out.TheKind == Kind::Stats || Out.TheKind == Kind::Shutdown ||
      Out.TheKind == Kind::Metrics)
    return true;

  const json::Value *Source = V.get("source");
  if (!Source || !Source->isString()) {
    Error = std::string(kindName(Out.TheKind)) +
            " request needs a string \"source\" field";
    return false;
  }
  Out.Source = Source->asString();
  if (const json::Value *E = V.get("entry")) {
    if (!E->isString()) {
      Error = "\"entry\" must be a string";
      return false;
    }
    Out.Entry = E->asString();
  }
  if (const json::Value *P = V.get("pipeline")) {
    if (!P->isString()) {
      Error = "\"pipeline\" must be a string";
      return false;
    }
    Out.Pipeline = P->asString();
  }
  if (const json::Value *Bind = V.get("bind")) {
    if (!Bind->isObject()) {
      Error = "\"bind\" must be an object of {var: int}";
      return false;
    }
    for (const auto &[Name, Member] : Bind->members()) {
      if (!Member.isNumber()) {
        Error = "bind value for '" + Name + "' must be an integer";
        return false;
      }
      Out.Bindings.DimVars[Name] = Member.asI64();
    }
  }
  if (const json::Value *Cap = V.get("capture")) {
    if (!Cap->isObject()) {
      Error = "\"capture\" must be an object of {\"fn.param\": value}";
      return false;
    }
    for (const auto &[Key, Member] : Cap->members()) {
      size_t Dot = Key.find('.');
      if (Dot == std::string::npos) {
        Error = "capture key '" + Key + "' must be <function>.<param>";
        return false;
      }
      if (!Member.isString()) {
        Error = "capture value for '" + Key + "' must be a string";
        return false;
      }
      const std::string &Value = Member.asString();
      CaptureValue CV;
      if (!Value.empty() && Value[0] == '@') {
        CV = CaptureValue::classicalFunc(Value.substr(1));
      } else {
        for (char C : Value)
          if (C != '0' && C != '1') {
            Error = "capture value for '" + Key +
                    "' must be a bit string or @function";
            return false;
          }
        CV = CaptureValue::bitsFromString(Value);
      }
      Out.Bindings.Captures[Key.substr(0, Dot)][Key.substr(Dot + 1)] =
          std::move(CV);
    }
  }
  if (Out.TheKind == Kind::Compile) {
    if (const json::Value *E = V.get("emit")) {
      if (!E->isString()) {
        Error = "\"emit\" must be a string";
        return false;
      }
      Out.Emit = E->asString();
    }
    return true;
  }
  // Run.
  if (const json::Value *S = V.get("shots")) {
    if (!S->isNumber()) {
      Error = "\"shots\" must be a number";
      return false;
    }
    Out.Shots = static_cast<unsigned>(S->asU64());
  }
  if (const json::Value *S = V.get("seed")) {
    if (!S->isNumber()) {
      Error = "\"seed\" must be a number";
      return false;
    }
    Out.Seed = S->asU64();
  }
  if (const json::Value *B = V.get("backend")) {
    if (!B->isString()) {
      Error = "\"backend\" must be a string";
      return false;
    }
    Out.Backend = B->asString();
  }
  if (const json::Value *J = V.get("jobs")) {
    if (!J->isNumber()) {
      Error = "\"jobs\" must be a number";
      return false;
    }
    Out.Jobs = static_cast<unsigned>(J->asU64());
  }
  if (Out.TheKind != Kind::BindRun)
    return true;
  const json::Value *Params = V.get("params");
  const json::Value *Points = V.get("points");
  if (Params) {
    if (!Params->isArray()) {
      Error = "\"params\" must be an array of parameter names";
      return false;
    }
    for (const json::Value &E : Params->elements()) {
      if (!E.isString()) {
        Error = "\"params\" entries must be strings";
        return false;
      }
      Out.SweepParams.push_back(E.asString());
    }
  }
  if (!Points || !Points->isArray()) {
    Error = "bind-run request needs an array \"points\" field";
    return false;
  }
  for (const json::Value &P : Points->elements()) {
    if (!P.isArray()) {
      Error = "\"points\" entries must be arrays of numbers";
      return false;
    }
    std::vector<double> Point;
    for (const json::Value &D : P.elements()) {
      if (!D.isNumber()) {
        Error = "\"points\" values must be numbers";
        return false;
      }
      Point.push_back(D.asDouble());
    }
    Out.Points.push_back(std::move(Point));
  }
  return true;
}

json::Value ServiceResponse::toJson() const {
  json::Value O = json::Value::object();
  O.set("id", json::Value::integer(Id));
  O.set("ok", json::Value::boolean(Ok));
  if (!Ok) {
    json::Value E = json::Value::object();
    E.set("kind", json::Value::str(Error.Kind));
    E.set("message", json::Value::str(Error.Message));
    if (Error.RetryAfterMs != 0)
      E.set("retry_after_ms", json::Value::integer(Error.RetryAfterMs));
    O.set("error", std::move(E));
    return O;
  }
  if (!StatsBody.isNull()) {
    O.set("stats", StatsBody);
    return O;
  }
  if (!MetricsText.empty()) {
    O.set("metrics", json::Value::str(MetricsText));
    return O;
  }
  if (!Key.empty()) {
    O.set("cache", json::Value::str(CacheHit ? "hit" : "miss"));
    O.set("key", json::Value::str(Key));
    O.set("compile_secs", json::Value::number(CompileSecs));
  }
  if (!Artifact.empty())
    O.set("artifact", json::Value::str(Artifact));
  if (!Results.empty()) {
    json::Value R = json::Value::array();
    for (const std::string &S : Results)
      R.push(json::Value::str(S));
    O.set("results", std::move(R));
    json::Value C = json::Value::object();
    for (const auto &[Bits, N] : Counts)
      C.set(Bits, json::Value::integer(static_cast<uint64_t>(N)));
    O.set("counts", std::move(C));
  }
  if (!PointResults.empty()) {
    json::Value Pts = json::Value::array();
    for (const std::vector<std::string> &Point : PointResults) {
      json::Value P = json::Value::array();
      for (const std::string &S : Point)
        P.push(json::Value::str(S));
      Pts.push(std::move(P));
    }
    O.set("point_results", std::move(Pts));
  }
  return O;
}

bool ServiceResponse::fromJson(const json::Value &V, ServiceResponse &Out,
                               std::string &Error) {
  if (!V.isObject()) {
    Error = "response must be a JSON object";
    return false;
  }
  Out = ServiceResponse();
  if (const json::Value *Id = V.get("id"))
    Out.Id = Id->asU64();
  const json::Value *Ok = V.get("ok");
  if (!Ok || !Ok->isBool()) {
    Error = "response needs a boolean \"ok\" field";
    return false;
  }
  Out.Ok = Ok->asBool();
  if (!Out.Ok) {
    if (const json::Value *E = V.get("error")) {
      if (const json::Value *K = E->get("kind"))
        Out.Error.Kind = K->asString();
      if (const json::Value *M = E->get("message"))
        Out.Error.Message = M->asString();
      if (const json::Value *R = E->get("retry_after_ms"))
        Out.Error.RetryAfterMs = R->asU64();
    }
    if (Out.Error.Kind.empty())
      Out.Error.Kind = "internal";
    return true;
  }
  if (const json::Value *A = V.get("artifact"))
    Out.Artifact = A->asString();
  if (const json::Value *C = V.get("cache"))
    Out.CacheHit = C->asString() == "hit";
  if (const json::Value *K = V.get("key"))
    Out.Key = K->asString();
  if (const json::Value *S = V.get("compile_secs"))
    Out.CompileSecs = S->asDouble();
  if (const json::Value *R = V.get("results"))
    for (const json::Value &E : R->elements())
      Out.Results.push_back(E.asString());
  if (const json::Value *C = V.get("counts"))
    for (const auto &[Bits, N] : C->members())
      Out.Counts[Bits] = static_cast<unsigned>(N.asU64());
  if (const json::Value *P = V.get("point_results"))
    for (const json::Value &Point : P->elements()) {
      std::vector<std::string> Shots;
      for (const json::Value &S : Point.elements())
        Shots.push_back(S.asString());
      Out.PointResults.push_back(std::move(Shots));
    }
  if (const json::Value *S = V.get("stats"))
    Out.StatsBody = *S;
  if (const json::Value *M = V.get("metrics"))
    Out.MetricsText = M->asString();
  return true;
}

ServiceResponse ServiceResponse::failure(uint64_t Id, std::string Kind,
                                         std::string Message,
                                         uint64_t RetryAfterMs) {
  ServiceResponse R;
  R.Id = Id;
  R.Ok = false;
  R.Error.Kind = std::move(Kind);
  R.Error.Message = std::move(Message);
  R.Error.RetryAfterMs = RetryAfterMs;
  return R;
}

bool asdf::parseRequestLine(const std::string &Line, ServiceRequest &Out,
                            uint64_t &IdOut, std::string &Error) {
  IdOut = 0;
  json::Value V;
  if (!json::parse(Line, V, Error))
    return false;
  if (V.isObject())
    if (const json::Value *Id = V.get("id"))
      IdOut = Id->asU64();
  return ServiceRequest::fromJson(V, Out, Error);
}
