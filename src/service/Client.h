//===- Client.h - Blocking NDJSON client for asdfd ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal synchronous client for the asdfd protocol: connect to the
/// unix socket, write one request line, read response lines until the one
/// whose `id` matches. asdf-cli is a thin shell around this class, and the
/// integration tests use it to talk to a freshly spawned daemon.
///
/// Transport failures are classified, not just stringified: an EOF or a
/// reset mid-response is `FailKind::ConnectionLost` (the daemon died, was
/// killed, or tore the write) — distinct from a response that parsed but
/// carried an error, and from a response that never parsed. On top of
/// that, `callWithRetry` implements the standard recovery loop: reconnect
/// and replay with exponential backoff plus deterministic jitter, honoring
/// the daemon's `retry_after_ms` hint on overloaded / resource-exhausted
/// errors. Replaying is safe because requests are deterministic and
/// content-keyed — a replay either hits the cache or recomputes the exact
/// same bits (the service determinism contract).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_CLIENT_H
#define ASDF_SERVICE_CLIENT_H

#include "service/Request.h"

#include <string>

namespace asdf {

class ServiceClient {
public:
  /// Why a call() failed at the transport layer (valid when call()
  /// returned false).
  enum class FailKind {
    None,           ///< The last call succeeded.
    ConnectFailed,  ///< No daemon at the socket (refused / missing path).
    ConnectionLost, ///< EOF, reset, or broken pipe mid-request — the
                    ///< daemon died or restarted under us. Retryable.
    Timeout,        ///< RecvTimeoutSecs elapsed with no response line.
    Malformed,      ///< A full line arrived but was not a valid response.
  };

  /// Knobs for callWithRetry. Defaults retry nothing (MaxRetries 0).
  struct RetryPolicy {
    unsigned MaxRetries = 0;   ///< Retries after the first attempt.
    uint64_t BudgetMs = 10000; ///< Total time across retries; 0 = none.
    uint64_t BaseDelayMs = 25; ///< First backoff step.
    uint64_t MaxDelayMs = 1000;
    uint64_t JitterSeed = 0;   ///< Deterministic jitter stream (tests pin
                               ///< it; 0 derives from the request id).
  };

  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects to the daemon at \p SocketPath. False + \p Error on failure
  /// (no daemon, permission, path too long). The path is remembered for
  /// reconnect().
  bool connect(const std::string &SocketPath, std::string &Error);

  /// Re-dials the last connect()ed path (after a lost connection).
  bool reconnect(std::string &Error);

  /// Sends \p R and blocks until the response with the same id arrives.
  /// \p RecvTimeoutSecs bounds the wait for *each* response line
  /// (<= 0: wait forever). False + \p Error on transport failure — a
  /// request the daemon answered with ok=false still returns true here,
  /// with the error in \p Out.Error. On false, failKind() says why; a
  /// ConnectionLost error string is prefixed "connection-lost:" and names
  /// the errno and any partial bytes, never "malformed response".
  bool call(const ServiceRequest &R, ServiceResponse &Out,
            std::string &Error, double RecvTimeoutSecs = 0.0);

  /// call() plus recovery: on ConnectionLost/ConnectFailed, and on daemon
  /// errors with kind overloaded / resource-exhausted / shutting-down,
  /// reconnects and replays up to Policy.MaxRetries times within
  /// Policy.BudgetMs, sleeping max(backoff, server retry_after_ms) with
  /// deterministic jitter between attempts. \p RetriesUsed (optional)
  /// reports how many retries ran. Returns like call(); a final failed
  /// attempt's error/failKind is reported verbatim.
  bool callWithRetry(const ServiceRequest &R, ServiceResponse &Out,
                     std::string &Error, const RetryPolicy &Policy,
                     double RecvTimeoutSecs = 0.0,
                     unsigned *RetriesUsed = nullptr);

  FailKind failKind() const { return LastFail; }
  bool connected() const { return Fd >= 0; }
  void close();

private:
  bool readLine(std::string &Line, std::string &Error,
                double TimeoutSecs);

  int Fd = -1;
  std::string Buffer;
  std::string Path;
  FailKind LastFail = FailKind::None;
};

} // namespace asdf

#endif // ASDF_SERVICE_CLIENT_H
