//===- Client.h - Blocking NDJSON client for asdfd ------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal synchronous client for the asdfd protocol: connect to the
/// unix socket, write one request line, read response lines until the one
/// whose `id` matches. asdf-cli is a thin shell around this class, and the
/// integration tests use it to talk to a freshly spawned daemon.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_CLIENT_H
#define ASDF_SERVICE_CLIENT_H

#include "service/Request.h"

#include <string>

namespace asdf {

class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects to the daemon at \p SocketPath. False + \p Error on failure
  /// (no daemon, permission, path too long).
  bool connect(const std::string &SocketPath, std::string &Error);

  /// Sends \p R and blocks until the response with the same id arrives.
  /// \p RecvTimeoutSecs bounds the wait for *each* response line
  /// (<= 0: wait forever). False + \p Error on transport failure — a
  /// request the daemon answered with ok=false still returns true here,
  /// with the error in \p Out.Error.
  bool call(const ServiceRequest &R, ServiceResponse &Out,
            std::string &Error, double RecvTimeoutSecs = 0.0);

  bool connected() const { return Fd >= 0; }
  void close();

private:
  bool readLine(std::string &Line, std::string &Error,
                double TimeoutSecs);

  int Fd = -1;
  std::string Buffer;
};

} // namespace asdf

#endif // ASDF_SERVICE_CLIENT_H
