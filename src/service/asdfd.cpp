//===- asdfd.cpp - The persistent compile-and-run daemon ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asdf daemon: a long-lived compile-and-run service over a unix
/// socket, speaking newline-delimited JSON (docs/protocol.md). Repeated
/// submissions of the same (source, pipeline, bindings) pay compile cost
/// once — artifacts are served from a content-hashed LRU cache — and run
/// requests execute on the shared simulation engine with per-request
/// seeds, bit-identical to `asdfc --emit run` on the same request.
///
///   asdfd --socket /run/asdf.sock --workers 8 --cache-mb 256
///
/// SIGTERM/SIGINT drain gracefully: in-flight requests finish, responses
/// flush, the socket file is removed, exit code 0.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "service/DiskCache.h"
#include "service/Server.h"
#include "support/BuildInfo.h"
#include "support/FaultInject.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace asdf;

namespace {

Server *ActiveServer = nullptr;

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestShutdown(); // Async-signal-safe (pipe write).
}

void usage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: asdfd --socket <path> [options]\n"
      "  -h, --help          print this help and exit\n"
      "  --version           print version, build identity, and the cache\n"
      "                      fingerprint, then exit\n"
      "  --socket <path>     unix socket to listen on (required)\n"
      "  --workers <n>       request worker threads (default 0 = one per\n"
      "                      hardware core)\n"
      "  --cache-mb <n>      artifact-cache byte budget in MiB (default\n"
      "                      256)\n"
      "  --disk-cache <dir>  crash-safe on-disk cache tier: artifacts\n"
      "                      survive restarts (warmed and validated on\n"
      "                      startup; corrupt entries are quarantined)\n"
      "  --disk-cache-mb <n> disk-tier byte budget in MiB (default 1024)\n"
      "  --max-queue <n>     pending-request bound; beyond it requests are\n"
      "                      shed with an 'overloaded' error and a\n"
      "                      retry_after_ms hint (default 0 = unbounded)\n"
      "  --run-mem-mb <n>    dense-statevector memory admission budget in\n"
      "                      MiB across in-flight runs; oversized runs get\n"
      "                      'resource-exhausted' (default 0 = unlimited)\n"
      "  --verbose           log connections and requests to stderr\n"
      "  --trace <path>      record spans for every request and write one\n"
      "                      Chrome trace JSON (Perfetto-loadable) to\n"
      "                      <path> after the drain\n"
      "  --metrics-dump <path>\n"
      "                      write the Prometheus metrics exposition to\n"
      "                      <path> after the drain\n"
      "\n"
      "Protocol: newline-delimited JSON over the socket; ops compile,\n"
      "run, bind-run, stats, metrics, shutdown. See docs/protocol.md.\n"
      "SIGTERM drains gracefully.\n");
}

[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "asdfd: %s\n", Message.c_str());
  std::fprintf(stderr, "run 'asdfd --help' for usage\n");
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Options;
  std::string TracePath, MetricsPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usageError("option '" + Arg + "' expects a value");
      return argv[++I];
    };
    if (Arg == "-h" || Arg == "--help") {
      usage(stdout);
      return 0;
    } else if (Arg == "--version") {
      printVersion("asdfd");
      return 0;
    } else if (Arg == "--socket") {
      Options.SocketPath = Next();
    } else if (Arg == "--workers") {
      Options.Service.Workers = static_cast<unsigned>(std::atoi(Next()));
    } else if (Arg == "--cache-mb") {
      long long Mb = std::atoll(Next());
      if (Mb <= 0)
        usageError("--cache-mb expects a positive number of MiB");
      Options.Service.CacheBytes =
          static_cast<size_t>(Mb) * (1 << 20);
    } else if (Arg == "--disk-cache") {
      Options.Service.DiskCacheDir = Next();
    } else if (Arg == "--disk-cache-mb") {
      long long Mb = std::atoll(Next());
      if (Mb <= 0)
        usageError("--disk-cache-mb expects a positive number of MiB");
      Options.Service.DiskCacheBytes =
          static_cast<size_t>(Mb) * (1 << 20);
    } else if (Arg == "--max-queue") {
      long long N = std::atoll(Next());
      if (N < 0)
        usageError("--max-queue expects a non-negative count");
      Options.Service.MaxQueueDepth = static_cast<size_t>(N);
    } else if (Arg == "--run-mem-mb") {
      long long Mb = std::atoll(Next());
      if (Mb < 0)
        usageError("--run-mem-mb expects a non-negative number of MiB");
      Options.Service.RunMemoryBytes =
          static_cast<size_t>(Mb) * (1 << 20);
    } else if (Arg == "--verbose") {
      Options.Verbose = true;
    } else if (Arg == "--trace") {
      TracePath = Next();
    } else if (Arg == "--metrics-dump") {
      MetricsPath = Next();
    } else {
      usageError("unknown option '" + Arg + "'");
    }
  }
  if (Options.SocketPath.empty())
    usageError("--socket <path> is required");

  if (!TracePath.empty())
    obs::enableTracing();

  // Fault-injection builds arm named failure points from $ASDF_FAULTS;
  // production builds compile this to a no-op.
  fault::armFromEnv();

  Server Daemon(Options);
  // A configured disk cache that cannot open is a deployment error — the
  // operator asked for durability they would silently not get.
  if (!Daemon.service().diskCacheError().empty()) {
    std::fprintf(stderr, "asdfd: --disk-cache %s: %s\n",
                 Options.Service.DiskCacheDir.c_str(),
                 Daemon.service().diskCacheError().c_str());
    return 1;
  }
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "asdfd: %s\n", Error.c_str());
    return 1;
  }

  ActiveServer = &Daemon;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "asdfd %s listening on %s (%u worker(s), cache %zu MiB)\n",
               ASDF_VERSION_STRING, Options.SocketPath.c_str(),
               Daemon.service().workers(),
               Options.Service.CacheBytes >> 20);
  if (DiskCache *Disk = Daemon.service().diskCache()) {
    DiskCacheStats DS = Disk->stats();
    std::fprintf(stderr,
                 "asdfd: disk cache %s: warmed %llu entrie(s) (%llu "
                 "byte(s)), quarantined %llu\n",
                 Disk->dir().c_str(),
                 static_cast<unsigned long long>(DS.WarmedEntries),
                 static_cast<unsigned long long>(DS.BytesUsed),
                 static_cast<unsigned long long>(DS.Quarantined));
  }
  int Code = Daemon.serve();
  ActiveServer = nullptr;
  // serve() returns after the drain: connection threads and queue workers
  // have joined, so the rings are quiescent — safe to export.
  if (!TracePath.empty()) {
    if (obs::writeChromeTrace(TracePath))
      std::fprintf(stderr, "asdfd: wrote trace to %s\n", TracePath.c_str());
    else
      std::fprintf(stderr, "asdfd: failed to write trace to %s\n",
                   TracePath.c_str());
  }
  if (!MetricsPath.empty()) {
    std::string Text = Daemon.service().metricsText();
    if (std::FILE *F = std::fopen(MetricsPath.c_str(), "w")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
      std::fprintf(stderr, "asdfd: wrote metrics to %s\n",
                   MetricsPath.c_str());
    } else {
      std::fprintf(stderr, "asdfd: failed to write metrics to %s\n",
                   MetricsPath.c_str());
    }
  }
  return Code;
}
