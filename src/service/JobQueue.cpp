//===- JobQueue.cpp - Persistent worker pool for service requests ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/JobQueue.h"

using namespace asdf;

JobQueue::JobQueue(unsigned Workers) {
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I) {
    try {
      Threads.emplace_back([this] { workerMain(); });
    } catch (const std::system_error &) {
      break; // Degrade to fewer workers, same policy as parallelIndexLoop.
    }
  }
  if (Threads.empty())
    Threads.emplace_back([this] { workerMain(); }); // Must not be zero.
}

JobQueue::~JobQueue() { drain(); }

bool JobQueue::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining) {
      ++Rejected;
      return false;
    }
    Queue.push_back(std::move(Job));
    ++Submitted;
  }
  CV.notify_one();
  return true;
}

void JobQueue::drain() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining && Threads.empty())
      return;
    Draining = true;
  }
  CV.notify_all();
  // Joining outside the lock; workers exit once the queue is empty.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(M);
    ToJoin.swap(Threads);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
}

JobQueue::Counters JobQueue::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  Counters C;
  C.Submitted = Submitted;
  C.Executed = Executed;
  C.Rejected = Rejected;
  C.Pending = Queue.size();
  return C;
}

void JobQueue::workerMain() {
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [this] { return Draining || !Queue.empty(); });
      if (Queue.empty())
        return; // Draining and nothing left.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job(); // Jobs are noexcept by contract (Service wraps handler errors).
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Executed;
    }
  }
}
