//===- JobQueue.cpp - Persistent worker pool for service requests ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/JobQueue.h"

#include "support/FaultInject.h"

#include <chrono>

using namespace asdf;

JobQueue::JobQueue(unsigned Workers, size_t MaxPending)
    : MaxPending(MaxPending) {
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I) {
    try {
      Threads.emplace_back([this] { workerMain(); });
    } catch (const std::system_error &) {
      break; // Degrade to fewer workers, same policy as parallelIndexLoop.
    }
  }
  if (Threads.empty())
    Threads.emplace_back([this] { workerMain(); }); // Must not be zero.
}

JobQueue::~JobQueue() { drain(); }

JobQueue::Submit JobQueue::submit(std::function<void()> Job,
                                  uint64_t Client) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining) {
      ++Rejected;
      return Submit::Draining;
    }
    if (MaxPending != 0 && NumPending >= MaxPending) {
      ++Shed;
      return Submit::Overloaded;
    }
    std::deque<std::function<void()>> &Q = PerClient[Client];
    if (Q.empty())
      Rotation.push_back(Client); // First pending job: join the rotation.
    Q.push_back(std::move(Job));
    ++NumPending;
    ++Submitted;
  }
  CV.notify_one();
  return Submit::Accepted;
}

void JobQueue::drain() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining && Threads.empty())
      return;
    Draining = true;
    Paused = false; // A paused pool must still drain.
  }
  CV.notify_all();
  // Joining outside the lock; workers exit once the queue is empty.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(M);
    ToJoin.swap(Threads);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
}

void JobQueue::pause() {
  std::lock_guard<std::mutex> Lock(M);
  Paused = true;
}

void JobQueue::resume() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Paused = false;
  }
  CV.notify_all();
}

JobQueue::Counters JobQueue::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  Counters C;
  C.Submitted = Submitted;
  C.Executed = Executed;
  C.Rejected = Rejected;
  C.Shed = Shed;
  C.Pending = NumPending;
  return C;
}

void JobQueue::workerMain() {
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [this] {
        return Draining || (!Paused && NumPending > 0);
      });
      if (NumPending == 0)
        return; // Draining and nothing left.
      // Round-robin: serve the front client's oldest job, then rotate the
      // client behind everyone else who is waiting.
      uint64_t Client = Rotation.front();
      Rotation.pop_front();
      std::deque<std::function<void()>> &Q = PerClient[Client];
      Job = std::move(Q.front());
      Q.pop_front();
      --NumPending;
      if (Q.empty())
        PerClient.erase(Client);
      else
        Rotation.push_back(Client);
    }
    if (fault::shouldFail("worker.stall"))
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Job(); // Jobs are noexcept by contract (Service wraps handler errors).
    {
      std::lock_guard<std::mutex> Lock(M);
      ++Executed;
    }
  }
}
