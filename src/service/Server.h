//===- Server.h - NDJSON-over-unix-socket server for asdfd ----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of asdfd: a SOCK_STREAM unix-domain listener whose
/// wire format is newline-delimited JSON (docs/protocol.md). Each accepted
/// connection gets a reader thread; every complete line becomes a
/// `ServiceRequest` submitted to the shared `AsdfService` worker pool, and
/// the response line is written back under a per-connection mutex — so
/// one client can pipeline many requests and responses come back as each
/// finishes (correlated by `id`), while requests from all connections
/// share the daemon's workers and one artifact cache.
///
/// Shutdown is graceful from either direction: a client `shutdown` op or
/// a SIGTERM/SIGINT (via `requestShutdown`, which is async-signal-safe:
/// one write to a self-pipe). Both paths stop the accept loop, let
/// in-flight requests finish and their responses flush, then remove the
/// socket file and return 0 from serve().
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_SERVER_H
#define ASDF_SERVICE_SERVER_H

#include "service/Service.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace asdf {

struct ServerOptions {
  std::string SocketPath;
  ServiceOptions Service;
  /// Log one line per connection and request to stderr.
  bool Verbose = false;
};

class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  /// Binds and listens on the socket path. A stale socket file (no daemon
  /// answering) is replaced; a live one is an error — two daemons must
  /// not fight over one path. Returns false with \p Error filled.
  bool start(std::string &Error);

  /// Runs the accept loop until a shutdown is requested, then drains:
  /// stops accepting, joins connection readers, completes queued
  /// requests, flushes responses, unlinks the socket. Returns the process
  /// exit code (0 on a clean drain).
  int serve();

  /// Triggers a graceful drain. Async-signal-safe (one byte to a pipe);
  /// the signal handlers of asdfd call this.
  void requestShutdown();

  const std::string &socketPath() const { return Options.SocketPath; }
  AsdfService &service() { return Service; }

private:
  void connectionMain(int Fd);

  ServerOptions Options;
  AsdfService Service;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  std::atomic<bool> Shutdown{false};

  std::vector<std::thread> Connections;
  /// Live connection fds, so drain can wake readers blocked in recv.
  std::mutex ConnsMu;
  std::set<int> LiveConnFds;
};

} // namespace asdf

#endif // ASDF_SERVICE_SERVER_H
