//===- Request.h - The shared request/job abstraction ---------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One `ServiceRequest` describes one unit of work — a compilation, a
/// simulation run, a stats query, or a shutdown — and one `ServiceResponse`
/// its outcome. Everything that submits work constructs the same structs:
/// asdf-cli builds one from its argv, asdfd parses one per NDJSON line,
/// the service bench synthesizes thousands in-process, and the tests build
/// the serial reference from the identical object. That sharing is the
/// point (ROADMAP: "a request/job abstraction shared by the CLI, benches,
/// and the daemon"): there is exactly one mapping from request fields to
/// compiler/simulator inputs, so "daemon-served results are bit-identical
/// to asdfc" reduces to both paths calling the same code on the same
/// struct.
///
/// The JSON encoding (docs/protocol.md) is the wire format of asdfd;
/// parse/serialize round-trips exactly, including 64-bit seeds.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_REQUEST_H
#define ASDF_SERVICE_REQUEST_H

#include "ast/Expand.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asdf {

/// One unit of service work.
struct ServiceRequest {
  enum class Kind { Compile, Run, BindRun, Stats, Shutdown, Metrics };

  Kind TheKind = Kind::Compile;
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t Id = 0;
  /// Optional 64-bit trace id ("trace" on the wire; 0 = none). When the
  /// daemon runs with tracing enabled, every span this request produces —
  /// wire decode, queue wait, cache probe, compiler passes, fusion,
  /// simulator workers — carries this id, so one client-chosen value
  /// correlates the whole request in the exported Chrome trace.
  uint64_t Trace = 0;

  //===--- Compile and Run fields ---===//

  /// Qwerty source text.
  std::string Source;
  /// Entry kernel name.
  std::string Entry = "kernel";
  /// Pipeline preset name or "stage:pass,..." spec (PassRegistry.h).
  std::string Pipeline = "default";
  /// Dimension-variable and capture bindings.
  ProgramBindings Bindings;
  /// Compile only: which artifact to return — qasm, qir, qir-base,
  /// qwerty-ir, or circuit.
  std::string Emit = "qasm";

  //===--- Run fields ---===//

  unsigned Shots = 1;
  /// Per-request base RNG seed: shot S of this request runs with
  /// deriveShotSeed(Seed, S) exactly as `asdfc --seed` does, so the same
  /// request produces the same bits whether served by the daemon (any
  /// worker count, any interleaving with other requests) or by asdfc.
  uint64_t Seed = 0;
  /// Backend name for BackendRegistry: auto, sv, stab, or mps.
  std::string Backend = "auto";
  /// Worker threads for this run's simulation (RunOptions::Jobs; 0 = one
  /// per hardware core). Results are identical for any value.
  unsigned Jobs = 1;

  //===--- BindRun fields ---===//

  /// Names of the program's $-parameters the sweep varies, defining the
  /// value order within each point ("params" on the wire). Parameters the
  /// service lifts from literal rotation angles are bound internally and
  /// must not appear here.
  std::vector<std::string> SweepParams;
  /// The sweep points ("points"): one value list per point, each in
  /// SweepParams order. Point P runs Shots shots with the sweep-derived
  /// seed for P, so results are bit-identical to running each bound
  /// circuit as its own run request with that seed.
  std::vector<std::vector<double>> Points;

  //===--- Scheduling ---===//

  /// Per-request timeout in seconds; <= 0 means none. Enforced
  /// cooperatively: a request whose deadline has passed when a worker
  /// picks it up (or between its compile and run halves) fails with a
  /// "timeout" error. An in-flight compiler pass is not preempted.
  double TimeoutSecs = 0.0;

  //===--- Testing ---===//

  /// Test-only fault-arming spec ("fault" on the wire; FaultInject.h
  /// grammar). Accepted only by ASDF_FAULT_INJECTION builds — production
  /// daemons reject the field — and applied before the request runs.
  std::string Fault;

  /// Serializes to the wire object ({"id": ..., "op": ...}).
  json::Value toJson() const;

  /// Parses a wire object. Returns false and fills \p Error on malformed
  /// or unknown fields/ops; unknown keys are rejected so typos fail loudly
  /// instead of silently running defaults.
  static bool fromJson(const json::Value &V, ServiceRequest &Out,
                       std::string &Error);
};

/// Machine-readable error classification of a failed request.
struct ServiceError {
  /// One of: bad-request, compile-error, unsupported, timeout,
  /// shutting-down, overloaded, resource-exhausted, internal — plus the
  /// client-side-only connection-lost (never sent by the daemon; the
  /// client synthesizes it when the transport dies mid-call).
  std::string Kind;
  /// Human-readable detail; for compile-error this is the CompileSession
  /// message naming the failing stage:pass and entry.
  std::string Message;
  /// Server backoff hint in milliseconds ("retry_after_ms" on the wire;
  /// 0 = no hint). Set on overloaded/resource-exhausted: retrying sooner
  /// than this is unlikely to be admitted.
  uint64_t RetryAfterMs = 0;
};

/// The outcome of one request.
struct ServiceResponse {
  uint64_t Id = 0;
  bool Ok = false;
  ServiceError Error; ///< Valid when !Ok.

  //===--- Compile (and Run: the compile half) ---===//

  /// Compile only: the rendered artifact text.
  std::string Artifact;
  /// Whether the artifact/circuit came from the cache.
  bool CacheHit = false;
  /// Hex cache key of the request (compile and run).
  std::string Key;
  /// Seconds spent compiling (0 on a hit).
  double CompileSecs = 0.0;

  //===--- Run ---===//

  /// Per-shot output bit strings in shot order — exactly the stdout lines
  /// of `asdfc --emit run` on the same request.
  std::vector<std::string> Results;
  /// Aggregated outcome frequencies (sorted by bit string).
  std::map<std::string, unsigned> Counts;

  //===--- BindRun ---===//

  /// Per-point per-shot bit strings ("point_results"): PointResults[P][S]
  /// is shot S of sweep point P.
  std::vector<std::vector<std::string>> PointResults;

  //===--- Stats ---===//

  /// Stats payload, pre-encoded (Service.cpp fills it).
  json::Value StatsBody;

  //===--- Metrics ---===//

  /// Prometheus text exposition ("metrics" on the wire).
  std::string MetricsText;

  json::Value toJson() const;
  static bool fromJson(const json::Value &V, ServiceResponse &Out,
                       std::string &Error);

  static ServiceResponse failure(uint64_t Id, std::string Kind,
                                 std::string Message,
                                 uint64_t RetryAfterMs = 0);
};

/// Parses one NDJSON request line (text -> JSON -> struct). On failure the
/// caller should answer with a bad-request error echoing the id when one
/// could be recovered (\p IdOut is filled best-effort).
bool parseRequestLine(const std::string &Line, ServiceRequest &Out,
                      uint64_t &IdOut, std::string &Error);

/// The wire name of \p K ("compile", "run", "bind_run", ...): the span
/// and metric label for per-op instrumentation.
const char *requestKindName(ServiceRequest::Kind K);

} // namespace asdf

#endif // ASDF_SERVICE_REQUEST_H
