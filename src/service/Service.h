//===- Service.h - The compile-and-run service engine ---------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `AsdfService` is asdfd with the sockets stripped away: an artifact
/// cache, a worker pool, and a request handler mapping `ServiceRequest` ->
/// `ServiceResponse`. The daemon feeds it NDJSON lines; the throughput
/// bench and the concurrency tests drive `handle`/`submit` in-process
/// against the very same code path, which is how "daemon-served results
/// are bit-identical to asdfc" is tested without flaky socket plumbing.
///
/// Request handling is synchronous-per-request (`handle`, safe from any
/// number of threads) with an async wrapper (`submit`) that runs the
/// handler on the JobQueue and invokes a completion callback. Compile
/// requests are served from the ArtifactCache when the content hash
/// matches; run requests cache the compiled flat circuit under the same
/// key scheme and then execute through the ordinary backend registry, so
/// one daemon amortizes compilation across every client while the
/// simulation engine's determinism contract (same request, same seed ->
/// same bits, any worker count) carries over unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_SERVICE_H
#define ASDF_SERVICE_SERVICE_H

#include "obs/Metrics.h"
#include "service/ArtifactCache.h"
#include "service/JobQueue.h"
#include "service/Request.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace asdf {

class DiskCache;

struct ServiceOptions {
  /// Worker threads executing requests (JobQueue; 0 = one per core).
  unsigned Workers = 0;
  /// Artifact-cache byte budget.
  size_t CacheBytes = ArtifactCache::DefaultByteBudget;
  /// Directory of the crash-safe on-disk cache tier; empty = memory-only.
  std::string DiskCacheDir;
  /// Disk-tier byte budget (used only with DiskCacheDir).
  size_t DiskCacheBytes = 0; ///< 0 = DiskCache::DefaultByteBudget.
  /// Submitted requests allowed to wait for a worker before new ones are
  /// shed with an `overloaded` error (0 = unbounded, the old behavior).
  size_t MaxQueueDepth = 0;
  /// Admission budget for dense statevector run memory across in-flight
  /// requests (0 = unlimited). A run whose 16·2^n state would exceed it
  /// is refused with `resource-exhausted` instead of thrashing the box.
  size_t RunMemoryBytes = 0;
};

class AsdfService {
public:
  explicit AsdfService(ServiceOptions Options = ServiceOptions());
  ~AsdfService();

  /// Executes one request to completion on the calling thread. Thread-safe
  /// and non-blocking with respect to other requests (compilation runs
  /// outside the cache lock). The deadline, if any, is derived from
  /// R.TimeoutSecs at entry.
  ServiceResponse handle(const ServiceRequest &R);

  /// As above with an explicit deadline (already-expired deadlines fail
  /// with a "timeout" error before any work). Epoch means none.
  ServiceResponse
  handle(const ServiceRequest &R,
         std::chrono::steady_clock::time_point Deadline);

  /// Enqueues \p R on the worker pool; \p Done fires exactly once, on a
  /// worker thread, with the response. Returns Draining or Overloaded
  /// (without calling \p Done) when the request is refused; the server
  /// maps those to shutting-down / overloaded errors. \p Client keys the
  /// queue's round-robin fairness (the server passes the connection fd).
  /// The request's timeout starts now — time spent queued counts
  /// against it.
  JobQueue::Submit submit(ServiceRequest R,
                          std::function<void(ServiceResponse)> Done,
                          uint64_t Client = 0);

  /// The error response for a submit() that returned Overloaded: kind
  /// `overloaded` with a retry_after_ms hint scaled to the backlog.
  ServiceResponse overloadedResponse(uint64_t Id) const;

  /// The backoff hint attached to overloaded/resource-exhausted errors:
  /// roughly how long the current backlog needs to clear one queue slot,
  /// clamped to [25 ms, 2 s].
  uint64_t retryAfterMsHint() const;

  /// True once a shutdown request has been handled (or drain() called);
  /// the server layer polls this to stop accepting.
  bool shuttingDown() const { return ShuttingDown.load(); }

  /// Stops admission and completes all in-flight/queued requests.
  void drain();

  ArtifactCache &cache() { return Cache; }
  /// The disk tier, or null when running memory-only (not configured, or
  /// the directory failed to open — see diskCacheError()).
  DiskCache *diskCache() { return Disk.get(); }
  /// Non-empty when DiskCacheDir was configured but could not be opened;
  /// the service degrades to memory-only and asdfd refuses to start.
  const std::string &diskCacheError() const { return DiskError; }
  JobQueue &queue() { return Queue; }
  unsigned workers() const { return Queue.workers(); }

  /// The stats payload of the "stats" op (also used by --version-style
  /// reporting in the bench): cache counters, request counters, queue
  /// state, per-op latency histograms, fingerprint, uptime.
  json::Value statsJson() const;

  /// This service's metric registry (per-instance, so tests and the bench
  /// see only their own traffic): request/cache/queue counters and per-op
  /// latency histograms, always collected.
  obs::MetricsRegistry &metrics() { return Reg; }

  /// Prometheus text exposition of metrics() — the `metrics` op payload
  /// and asdfd --metrics-dump body.
  std::string metricsText() const { return Reg.renderPrometheus(); }

  /// The latency histogram the service observes for \p K requests (null
  /// for shutdown). Benches read these to assert their client-side
  /// quantile math agrees with the service's.
  const obs::Histogram *opLatency(ServiceRequest::Kind K) const;

private:
  ServiceResponse handleCompile(
      const ServiceRequest &R,
      std::chrono::steady_clock::time_point Deadline);
  ServiceResponse handleRun(const ServiceRequest &R,
                            std::chrono::steady_clock::time_point Deadline);
  ServiceResponse
  handleBindRun(const ServiceRequest &R,
                std::chrono::steady_clock::time_point Deadline);
  ServiceResponse handleStats(const ServiceRequest &R);
  ServiceResponse handleShutdown(const ServiceRequest &R);
  ServiceResponse handleMetrics(const ServiceRequest &R);
  obs::Histogram *latencyFor(ServiceRequest::Kind K);

  /// Memory-budget admission for a dense statevector run: reserves the
  /// 16·2^NumQubits state bytes against RunMemoryBytes. True (with
  /// \p Reserved to release after the run) when admitted — including
  /// trivially, with Reserved 0, when no budget is configured. False with
  /// \p Failure filled (resource-exhausted) when refused.
  bool admitRunMemory(const ServiceRequest &R, unsigned NumQubits,
                      size_t &Reserved, ServiceResponse &Failure);
  void releaseRunMemory(size_t Bytes);

  /// One in-flight compilation other requests with the same key wait on
  /// instead of compiling the same thing concurrently (single-flight).
  struct Flight {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    std::shared_ptr<const CachedArtifact> Art; ///< Null when the compile
                                               ///< failed.
    ServiceResponse Failure;                   ///< Valid when Art is null.
  };

  /// Cache lookup with single-flight miss coalescing: on a miss, exactly
  /// one caller per key runs \p Compute (which compiles, fills
  /// \p CompileSecs, and on failure fills \p Failure and returns null);
  /// concurrent callers with the same key block until it finishes and
  /// share its artifact (reported as a hit — they did not compile) or its
  /// failure (the caller must overwrite Failure's response id with its
  /// own). The artifact is inserted into the cache before waiters wake.
  std::shared_ptr<const CachedArtifact> coalesceCompile(
      const CacheKey &Key, bool &WasHit, double &CompileSecs,
      ServiceResponse &Failure,
      const std::function<std::shared_ptr<const CachedArtifact>(
          ServiceResponse &, double &)> &Compute);

  /// Returns the compiled flat circuit for \p R, from cache or by
  /// compiling now (single-flight); null with \p Failure filled on
  /// compile errors.
  std::shared_ptr<const Circuit>
  flatCircuitFor(const ServiceRequest &R, const PipelinePlan &Plan,
                 bool &WasHit, std::string &KeyHex, double &CompileSecs,
                 ServiceResponse &Failure);

  static bool expired(std::chrono::steady_clock::time_point Deadline) {
    return Deadline != std::chrono::steady_clock::time_point() &&
           std::chrono::steady_clock::now() >= Deadline;
  }

  /// Declared before Cache: the cache holds a raw pointer to the disk
  /// tier, so the tier must outlive it.
  std::unique_ptr<DiskCache> Disk;
  std::string DiskError;
  ArtifactCache Cache;
  JobQueue Queue;
  /// Memory-admission state (0 budget = unlimited).
  size_t RunMemoryBudget = 0;
  std::atomic<size_t> RunMemoryInFlight{0};
  std::atomic<bool> ShuttingDown{false};
  std::chrono::steady_clock::time_point Start;

  std::mutex FlightsM;
  std::unordered_map<std::string, std::shared_ptr<Flight>> Flights;

  // Request counters (stats op). Relaxed: they are monotonic telemetry.
  // NumCompiled counts compilations actually executed; NumCoalesced counts
  // requests that waited on another request's identical compile — the
  // stampede test pins {Compiled: 1, Coalesced: N-1} for N concurrent
  // identical cold requests.
  std::atomic<uint64_t> NumCompile{0}, NumRun{0}, NumBindRun{0},
      NumStats{0}, NumMetrics{0}, NumErrors{0}, NumTimeouts{0},
      NumShots{0}, NumCompiled{0}, NumCoalesced{0};
  // Load-shedding counters: requests refused at the queue bound, refused
  // by the run-memory budget, and expired before pickup (a subset of
  // NumTimeouts — the deadline passed while the request waited).
  std::atomic<uint64_t> NumShedOverloaded{0}, NumShedMemory{0},
      NumShedExpired{0};

  // The observability spine's metric surface: per-op latency histograms
  // plus read-time views over the counters above (registered in the
  // constructor). Reg outlives the queue, so render-time callbacks into
  // `this` are safe for the service's whole life.
  obs::MetricsRegistry Reg;
  obs::Histogram *LatCompile = nullptr, *LatRun = nullptr,
                 *LatBindRun = nullptr, *LatStats = nullptr;
};

} // namespace asdf

#endif // ASDF_SERVICE_SERVICE_H
