//===- DiskCache.h - Crash-safe on-disk artifact cache tier ---------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence tier under ArtifactCache: each artifact is one
/// content-keyed file (`objects/<32-hex-key>.art`) so a daemon restart
/// keeps every compile it ever paid for. Correctness over crashes comes
/// from three properties:
///
///  - **Atomic visibility.** Writes go to `tmp/`, are fsync'd, then
///    renamed into `objects/` — a reader (including a restarted daemon)
///    sees either the complete entry or no entry, never a half write. A
///    crash mid-write leaves only a `tmp/` file, swept on the next open.
///
///  - **Self-verifying entries.** Every file carries a magic+version
///    header, a 128-bit ContentHasher checksum of the payload, and the
///    producing build's fingerprint inside the checksummed payload. A
///    truncated, bit-rotted, or wrong-build entry fails validation and is
///    *quarantined* (moved to `quarantine/` with a reason suffix for
///    postmortems), never served and never fatal.
///
///  - **Bit-exact round trips.** Text artifacts are stored verbatim;
///    flat circuits use a little-endian binary codec that preserves every
///    field including raw double bit patterns, so a disk hit rehydrates a
///    circuit that simulates bit-identically to the freshly compiled one.
///
/// Recency is the file mtime (touched on hit), so LRU order survives a
/// restart; eviction under the byte budget unlinks the oldest files.
/// One coarse mutex serializes operations — disk I/O is milliseconds
/// against tens of milliseconds of compile, and the memory tier absorbs
/// the hot keys anyway.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_DISKCACHE_H
#define ASDF_SERVICE_DISKCACHE_H

#include "service/ArtifactCache.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace asdf {

struct DiskCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  /// Entries that failed validation (truncated/corrupt/bad fingerprint),
  /// at open or at get.
  uint64_t Corrupt = 0;
  /// Invalid entries moved aside into quarantine/ (== Corrupt unless the
  /// move itself failed and the file was unlinked instead).
  uint64_t Quarantined = 0;
  /// put() attempts that failed at the filesystem (ENOSPC, EIO, injected).
  uint64_t WriteFailures = 0;
  /// Valid entries indexed by the last open().
  uint64_t WarmedEntries = 0;
  uint64_t Entries = 0;
  size_t BytesUsed = 0;
  size_t ByteBudget = 0;
};

/// The on-disk artifact tier. Thread-safe. Construct, then open() once
/// before use; a DiskCache that failed to open (or was never opened)
/// serves misses and drops puts.
class DiskCache {
public:
  DiskCache(std::string Dir, size_t ByteBudget = DefaultByteBudget);

  /// Creates the directory layout, sweeps stale tmp files, validates
  /// every existing entry (quarantining invalid ones), and builds the
  /// mtime-ordered LRU index. False + \p Error only if the directories
  /// cannot be created — invalid *entries* are never an open failure.
  bool open(std::string &Error);

  /// Reads, validates, and decodes the entry for \p K. Null on miss; an
  /// entry that fails validation is quarantined and reported as a miss.
  /// A hit refreshes the file mtime so recency survives restarts.
  std::shared_ptr<const CachedArtifact> get(const CacheKey &K);

  /// Persists \p Art under \p K atomically (tmp + fsync + rename), then
  /// evicts oldest entries over the byte budget. A key already on disk is
  /// only touched (same content by construction). Failures are counted
  /// and swallowed: the disk tier degrades, the service keeps answering.
  void put(const CacheKey &K, const CachedArtifact &Art);

  DiskCacheStats stats() const;
  const std::string &dir() const { return Dir; }
  bool opened() const { return Opened; }

  static constexpr size_t DefaultByteBudget = 1024u << 20; // 1 GiB

  //===--- Entry codec (exposed for tests) ---===//

  enum class DecodeResult { Ok, Corrupt, FingerprintMismatch };

  /// Serializes \p Art into the on-disk entry format, stamped with
  /// \p Fingerprint (empty = this build's buildFingerprint()).
  static std::string encode(const CachedArtifact &Art,
                            const std::string &Fingerprint = std::string());

  /// Validates and decodes \p Bytes. On Ok fills \p Out and
  /// \p Fingerprint; Corrupt covers truncation, checksum mismatch, and
  /// malformed payloads; FingerprintMismatch means a structurally valid
  /// entry from an incompatible build (checked against \p Expect, empty =
  /// this build).
  static DecodeResult decode(const std::string &Bytes, CachedArtifact &Out,
                             std::string &Fingerprint,
                             const std::string &Expect = std::string());

private:
  std::string objectPath(const std::string &KeyHex) const;
  bool writeEntryFile(const std::string &KeyHex, const std::string &Bytes);
  /// Moves objects/<KeyHex>.art into quarantine/ (unlinks if the move
  /// fails) and drops it from the index if present. Reason is the file
  /// suffix: "corrupt" or "fingerprint".
  void quarantineLocked(const std::string &KeyHex, const char *Reason);
  void evictOverBudgetLocked();
  void indexInsertLocked(const CacheKey &K, size_t Bytes);

  std::string Dir;
  size_t Budget;
  bool Opened = false;

  mutable std::mutex M;
  /// Front = most recently used; mirrors file mtimes.
  std::list<CacheKey> Lru;
  struct Slot {
    size_t Bytes = 0;
    std::list<CacheKey>::iterator LruIt;
  };
  std::unordered_map<CacheKey, Slot, CacheKeyHasher> Index;
  DiskCacheStats S;
};

} // namespace asdf

#endif // ASDF_SERVICE_DISKCACHE_H
