//===- JobQueue.h - Persistent worker pool for service requests -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's request executor: a fixed pool of worker threads draining
/// per-client job queues. This is deliberately a different animal from
/// `parallelIndexLoop` (Backend.h), which is a run-to-completion loop for
/// one bounded batch — the daemon needs workers that outlive any one
/// request. The two compose: the JobQueue provides request-level
/// concurrency (M requests in flight on N workers), and each simulation
/// request's runBatch call *reuses* parallelIndexLoop internally for its
/// shot/amplitude parallelism, with the request's own Jobs knob deciding
/// how many threads that inner loop spends.
///
/// Two robustness policies live here:
///
///  - **Fairness.** Jobs are keyed by a client id and dispatched
///    round-robin across clients with pending work, so a connection that
///    pipelines a thousand requests cannot starve the client that sent
///    one. Within a client, order stays FIFO.
///
///  - **Bounded depth.** With MaxPending set, submissions beyond the
///    bound are rejected with `Submit::Overloaded` — the service turns
///    that into an `overloaded` error with a retry hint instead of
///    buffering unbounded work it may never finish in time.
///
/// Shutdown is graceful by default: `drain()` stops admission, lets every
/// queued job finish, and joins the workers — the SIGTERM story of asdfd.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_JOBQUEUE_H
#define ASDF_SERVICE_JOBQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace asdf {

class JobQueue {
public:
  /// The outcome of a submit: exactly one of accepted, rejected because
  /// the queue is draining, or shed because the pending bound is full.
  enum class Submit { Accepted, Draining, Overloaded };

  /// Spawns \p Workers threads (0 = one per hardware core, minimum 1).
  /// \p MaxPending bounds jobs waiting for a worker (0 = unbounded);
  /// jobs already executing do not count against it.
  explicit JobQueue(unsigned Workers = 0, size_t MaxPending = 0);
  /// Drains and joins.
  ~JobQueue();

  JobQueue(const JobQueue &) = delete;
  JobQueue &operator=(const JobQueue &) = delete;

  /// Enqueues \p Job under \p Client (an opaque id — the server uses the
  /// connection fd; in-process callers can leave it 0). The job is not
  /// run on Draining/Overloaded.
  Submit submit(std::function<void()> Job, uint64_t Client = 0);

  /// Stops admission, runs every already-queued job to completion, and
  /// joins the workers. Idempotent; safe to call from any non-worker
  /// thread.
  void drain();

  /// Test hook: workers stop picking up new jobs until resume(). Lets a
  /// test fill the queue deterministically (overload, fairness ordering)
  /// without racing the pool.
  void pause();
  void resume();

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  struct Counters {
    uint64_t Submitted = 0;
    uint64_t Executed = 0;
    uint64_t Rejected = 0; ///< Refused while draining.
    uint64_t Shed = 0;     ///< Refused by the pending bound.
    uint64_t Pending = 0;
  };
  Counters counters() const;

private:
  void workerMain();

  mutable std::mutex M;
  std::condition_variable CV;
  /// Per-client FIFOs plus a rotation of clients with pending work: the
  /// worker takes the front client's front job, then moves that client to
  /// the back of the rotation.
  std::unordered_map<uint64_t, std::deque<std::function<void()>>> PerClient;
  std::deque<uint64_t> Rotation;
  size_t NumPending = 0;
  size_t MaxPending;
  std::vector<std::thread> Threads;
  bool Draining = false;
  bool Paused = false;
  uint64_t Submitted = 0, Executed = 0, Rejected = 0, Shed = 0;
};

} // namespace asdf

#endif // ASDF_SERVICE_JOBQUEUE_H
