//===- JobQueue.h - Persistent worker pool for service requests -----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's request executor: a fixed pool of worker threads draining
/// a FIFO of jobs. This is deliberately a different animal from
/// `parallelIndexLoop` (Backend.h), which is a run-to-completion loop for
/// one bounded batch — the daemon needs workers that outlive any one
/// request. The two compose: the JobQueue provides request-level
/// concurrency (M requests in flight on N workers), and each simulation
/// request's runBatch call *reuses* parallelIndexLoop internally for its
/// shot/amplitude parallelism, with the request's own Jobs knob deciding
/// how many threads that inner loop spends.
///
/// Shutdown is graceful by default: `drain()` stops admission, lets every
/// queued job finish, and joins the workers — the SIGTERM story of asdfd.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SERVICE_JOBQUEUE_H
#define ASDF_SERVICE_JOBQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asdf {

class JobQueue {
public:
  /// Spawns \p Workers threads (0 = one per hardware core, minimum 1).
  explicit JobQueue(unsigned Workers = 0);
  /// Drains and joins.
  ~JobQueue();

  JobQueue(const JobQueue &) = delete;
  JobQueue &operator=(const JobQueue &) = delete;

  /// Enqueues \p Job. Returns false (without running it) once drain() has
  /// started — callers translate that into a shutting-down error.
  bool submit(std::function<void()> Job);

  /// Stops admission, runs every already-queued job to completion, and
  /// joins the workers. Idempotent; safe to call from any non-worker
  /// thread.
  void drain();

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  struct Counters {
    uint64_t Submitted = 0;
    uint64_t Executed = 0;
    uint64_t Rejected = 0;
    uint64_t Pending = 0;
  };
  Counters counters() const;

private:
  void workerMain();

  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  bool Draining = false;
  uint64_t Submitted = 0, Executed = 0, Rejected = 0;
};

} // namespace asdf

#endif // ASDF_SERVICE_JOBQUEUE_H
