//===- ResourceEstimator.h - Fault-tolerant resource estimation (§8.3) ----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A surface-code resource model standing in for the Azure Quantum Resource
/// Estimator with the paper's default parameters: a [[338, 1, 13]] surface
/// code (2 d^2 = 338 physical qubits per logical qubit at distance d = 13)
/// with a 5.2 us logical cycle time (§8.1).
///
/// The model follows the standard Litinski/Azure layout accounting:
///   - algorithmic logical qubits M = 2 Q + ceil(sqrt(8 Q)) + 1 (routing),
///   - runtime = logical cycles x logical cycle time, where logical cycles
///     are bounded below by gate depth, T depth, and the serialization of
///     two-qubit operations through the routing spine,
///   - 15-to-1 T factories sized so production keeps pace with consumption.
///
/// Absolute numbers differ from the Azure estimator's (its factory and
/// synthesis models are far more detailed); the comparison *shape* across
/// compilers — driven by T counts, depths, and qubit counts — is what the
/// evaluation reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_ESTIMATE_RESOURCEESTIMATOR_H
#define ASDF_ESTIMATE_RESOURCEESTIMATOR_H

#include "qcirc/Circuit.h"

#include <cstdint>
#include <string>

namespace asdf {

/// Surface-code model parameters (defaults = the paper's setup).
struct SurfaceCodeParams {
  unsigned CodeDistance = 13;
  unsigned PhysPerLogical = 338; ///< 2 d^2 for d = 13.
  double LogicalCycleSeconds = 5.2e-6;
  /// Physical qubits of one 15-to-1 magic state factory at this distance.
  unsigned FactoryPhysQubits = 5760;
  /// Logical cycles for one factory round (15-to-1 distillation).
  unsigned FactoryCycles = 11;
  /// Cap on concurrently running factories.
  unsigned MaxFactories = 16;
};

/// Estimated fault-tolerant cost of one circuit.
struct ResourceEstimate {
  uint64_t LogicalQubits = 0;    ///< Including routing overhead.
  uint64_t PhysicalQubits = 0;   ///< Logical tiles + factories.
  uint64_t TCount = 0;
  uint64_t LogicalDepth = 0;     ///< In logical cycles.
  unsigned Factories = 0;
  double RuntimeSeconds = 0.0;

  std::string str() const;
};

/// Estimates \p C under \p Params.
ResourceEstimate estimateResources(const Circuit &C,
                                   const SurfaceCodeParams &Params =
                                       SurfaceCodeParams());

/// Estimate from precomputed stats and a width (used by sweeps that avoid
/// materializing gigantic circuits).
ResourceEstimate estimateResources(const CircuitStats &Stats, unsigned Width,
                                   const SurfaceCodeParams &Params =
                                       SurfaceCodeParams());

} // namespace asdf

#endif // ASDF_ESTIMATE_RESOURCEESTIMATOR_H
