//===- ResourceEstimator.cpp - Fault-tolerant resource estimation ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "estimate/ResourceEstimator.h"

#include <cmath>
#include <sstream>

using namespace asdf;

std::string ResourceEstimate::str() const {
  std::ostringstream OS;
  OS << "logical=" << LogicalQubits << " physical=" << PhysicalQubits
     << " T=" << TCount << " depth=" << LogicalDepth
     << " factories=" << Factories << " runtime=" << RuntimeSeconds << "s";
  return OS.str();
}

ResourceEstimate asdf::estimateResources(const CircuitStats &Stats,
                                         unsigned Width,
                                         const SurfaceCodeParams &Params) {
  ResourceEstimate E;
  E.TCount = Stats.TCount;

  // Litinski-style layout: 2 Q tiles for computation plus a routing spine.
  uint64_t Q = Width ? Width : 1;
  E.LogicalQubits =
      2 * Q + static_cast<uint64_t>(std::ceil(std::sqrt(8.0 * Q))) + 1;

  // Each logical layer costs one cycle; each T layer additionally consumes
  // a magic state; and two-qubit operations serialize through the lattice
  // surgery routing spine (one per cycle in this model) — the term that
  // makes Clifford-only circuits like Simon's scale with input size.
  E.LogicalDepth = std::max<uint64_t>(
      std::max<uint64_t>(Stats.Depth, Stats.TDepth), Stats.TwoQubitCount);
  if (E.LogicalDepth == 0)
    E.LogicalDepth = 1;

  // Factories: produce TCount states in roughly LogicalDepth cycles.
  double Needed = 0.0;
  if (Stats.TCount)
    Needed = double(Stats.TCount) * Params.FactoryCycles /
             double(E.LogicalDepth);
  E.Factories = Stats.TCount == 0
                    ? 0
                    : std::min<uint64_t>(
                          Params.MaxFactories,
                          std::max<uint64_t>(
                              1, static_cast<uint64_t>(std::ceil(Needed))));
  // If factories are capped, production throttles the runtime instead.
  uint64_t FactoryBoundCycles =
      E.Factories ? static_cast<uint64_t>(
                        std::ceil(double(Stats.TCount) *
                                  Params.FactoryCycles / E.Factories))
                  : 0;
  uint64_t Cycles = std::max(E.LogicalDepth, FactoryBoundCycles);

  E.PhysicalQubits = E.LogicalQubits * Params.PhysPerLogical +
                     uint64_t(E.Factories) * Params.FactoryPhysQubits;
  E.RuntimeSeconds = double(Cycles) * Params.LogicalCycleSeconds;
  return E;
}

ResourceEstimate asdf::estimateResources(const Circuit &C,
                                         const SurfaceCodeParams &Params) {
  return estimateResources(C.stats(), C.NumQubits, Params);
}
