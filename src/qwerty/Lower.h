//===- Lower.h - Lowering the Qwerty AST to Qwerty IR (§5.1) --------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a checked, canonicalized Qwerty AST into Qwerty IR. As in the
/// paper, function-typed expressions (basis translations, measurements,
/// embeddings) are wrapped in lambdas, so the initial IR contains only
/// call_indirect ops; lambda lifting, canonicalization, and inlining
/// (§5.4) subsequently linearize everything.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_QWERTY_LOWER_H
#define ASDF_QWERTY_LOWER_H

#include "ast/AST.h"
#include "ir/IR.h"

#include <memory>

namespace asdf {

/// Lowers every qpu function of \p Prog into a fresh module. Classical
/// functions are referenced by name from embed_classical ops and synthesized
/// during QCircuit conversion. Returns null (with diagnostics) on failure.
std::unique_ptr<Module> lowerToQwertyIR(const Program &Prog,
                                        DiagnosticEngine &Diags);

/// Converts an AST type to the corresponding IR type.
IRType convertType(const Type &T);

} // namespace asdf

#endif // ASDF_QWERTY_LOWER_H
