//===- Lower.cpp - Lowering the Qwerty AST to Qwerty IR (§5.1) ------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "qwerty/Lower.h"

#include "ast/TypeChecker.h"

#include "basis/SpanCheck.h"

#include <map>

using namespace asdf;

IRType asdf::convertType(const Type &T) {
  switch (T.kind()) {
  case Type::Kind::Qubit:
    return IRType::qbundle(T.dim());
  case Type::Kind::Bit:
    return IRType::bitbundle(T.dim());
  case Type::Kind::Func: {
    auto Conv = [](Type::DataKind K) {
      switch (K) {
      case Type::DataKind::Unit:
        return IRType::Data::Unit;
      case Type::DataKind::Qubit:
        return IRType::Data::QBundle;
      case Type::DataKind::Bit:
        return IRType::Data::BitBundle;
      }
      return IRType::Data::Unit;
    };
    return IRType::func(Conv(T.funcInKind()), T.funcInDim(),
                        Conv(T.funcOutKind()), T.funcOutDim(),
                        T.isReversibleFunc());
  }
  default:
    return IRType();
  }
}

namespace {

class Lowering {
public:
  Lowering(const Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  std::unique_ptr<Module> run();

private:
  const Program &Prog;
  DiagnosticEngine &Diags;
  std::unique_ptr<Module> M;
  std::map<std::string, Value *> Vars;

  bool lowerFunction(const FunctionDef &F, IRFunction &IRF);
  Value *lowerValue(Builder &B, const Expr &E);
  Value *lowerFunc(Builder &B, const Expr &E);
  Value *lowerQubitLiteral(Builder &B, const QubitLiteralExpr &QL);
};

std::unique_ptr<Module> Lowering::run() {
  M = std::make_unique<Module>();
  M->FloatParams = Prog.FloatParams;
  // First pass: declare all qpu functions so func_const can reference them.
  for (const auto &F : Prog.Functions) {
    if (!F->isQpu())
      continue;
    IRFunction *IRF = M->create(F->Name);
    IRF->Loc = F->Loc;
    for (const Param &P : F->Params)
      IRF->Body.addArg(convertType(P.Ty));
    if (!F->ReturnTy.isUnit() && !F->ReturnTy.isInvalid())
      IRF->ResultTypes.push_back(convertType(F->ReturnTy));
  }
  // Second pass: lower bodies.
  for (const auto &F : Prog.Functions) {
    if (!F->isQpu())
      continue;
    IRFunction *IRF = M->lookup(F->Name);
    if (!lowerFunction(*F, *IRF))
      return nullptr;
  }
  return std::move(M);
}

bool Lowering::lowerFunction(const FunctionDef &F, IRFunction &IRF) {
  Vars.clear();
  for (unsigned I = 0; I < F.Params.size(); ++I)
    Vars[F.Params[I].Name] = IRF.Body.arg(I);

  Builder B(&IRF.Body);
  for (const StmtPtr &S : F.Body) {
    if (const auto *Ret = dyn_cast<ReturnStmt>(S.get())) {
      Value *V = lowerValue(B, *Ret->Value);
      if (!V && !Ret->Value->Ty.isUnit())
        return false;
      B.ret(V ? std::vector<Value *>{V} : std::vector<Value *>{});
      return true;
    }
    const auto *Assign = cast<AssignStmt>(S.get());
    Value *V = lowerValue(B, *Assign->Value);
    if (!V)
      return false;
    if (Assign->Names.size() == 1) {
      Vars[Assign->Names[0]] = V;
      continue;
    }
    // Destructure evenly: unpack then regroup.
    unsigned K = Assign->Names.size();
    bool IsQubit = V->Ty.isQBundle();
    unsigned Total = V->Ty.dim();
    unsigned Part = Total / K;
    std::vector<Value *> Elems =
        IsQubit ? B.qbunpack(V) : B.bitunpack(V);
    for (unsigned I = 0; I < K; ++I) {
      std::vector<Value *> Piece(Elems.begin() + I * Part,
                                 Elems.begin() + (I + 1) * Part);
      Vars[Assign->Names[I]] = IsQubit ? B.qbpack(Piece) : B.bitpack(Piece);
    }
  }
  Diags.error(F.Loc, "function has no return statement");
  return false;
}

Value *Lowering::lowerQubitLiteral(Builder &B, const QubitLiteralExpr &QL) {
  // Split the literal into maximal runs of one (primitive basis, eigenstate)
  // pair, each of which becomes one qbprep op (§5).
  std::vector<Value *> Bundles;
  unsigned I = 0;
  while (I < QL.Symbols.size()) {
    PrimitiveBasis Prim = symbolPrimitiveBasis(QL.Symbols[I]);
    bool Minus = symbolIsMinusEigenstate(QL.Symbols[I]);
    unsigned J = I + 1;
    while (J < QL.Symbols.size() &&
           symbolPrimitiveBasis(QL.Symbols[J]) == Prim &&
           symbolIsMinusEigenstate(QL.Symbols[J]) == Minus)
      ++J;
    Bundles.push_back(B.qbprep(Prim, Minus, J - I));
    I = J;
  }
  // A phase on a freshly prepared product state is a global phase, which is
  // unobservable and safely dropped here.
  if (Bundles.size() == 1)
    return Bundles.front();
  std::vector<Value *> Qubits;
  for (Value *Bundle : Bundles) {
    std::vector<Value *> Unpacked = B.qbunpack(Bundle);
    Qubits.insert(Qubits.end(), Unpacked.begin(), Unpacked.end());
  }
  return B.qbpack(Qubits);
}

Value *Lowering::lowerValue(Builder &B, const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::QubitLiteral:
    return lowerQubitLiteral(B, cast<QubitLiteralExpr>(E));

  case Expr::Kind::BitLiteral:
    return B.bitconst(cast<BitLiteralExpr>(E).Bits);

  case Expr::Kind::Variable: {
    const auto &Var = cast<VariableExpr>(E);
    auto It = Vars.find(Var.Name);
    if (It != Vars.end())
      return It->second;
    // A reference to another kernel as a function value.
    if (M->lookup(Var.Name))
      return B.funcConst(Var.Name, convertType(E.Ty));
    Diags.error(E.loc(), "unknown variable '" + Var.Name + "' in lowering");
    return nullptr;
  }

  case Expr::Kind::Tensor: {
    const auto &T = cast<TensorExpr>(E);
    if (E.Ty.isFunc())
      return lowerFunc(B, E);
    Value *L = lowerValue(B, *T.Lhs);
    if (!L)
      return nullptr;
    Value *R = lowerValue(B, *T.Rhs);
    if (!R)
      return nullptr;
    // §5.1: qbundles are unpacked and repacked into a combined qbundle.
    if (L->Ty.isQBundle()) {
      std::vector<Value *> Qs = B.qbunpack(L);
      std::vector<Value *> Rs = B.qbunpack(R);
      Qs.insert(Qs.end(), Rs.begin(), Rs.end());
      return B.qbpack(Qs);
    }
    std::vector<Value *> Bs = B.bitunpack(L);
    std::vector<Value *> R2 = B.bitunpack(R);
    Bs.insert(Bs.end(), R2.begin(), R2.end());
    return B.bitpack(Bs);
  }

  case Expr::Kind::Pipe: {
    const auto &P = cast<PipeExpr>(E);
    Value *V = lowerValue(B, *P.Value);
    if (!V)
      return nullptr;
    Value *F = lowerFunc(B, *P.Func);
    if (!F)
      return nullptr;
    std::vector<Value *> Results = B.callIndirect(F, {V});
    return Results.empty() ? nullptr : Results.front();
  }

  default:
    // Function-typed values (translations, adjoints, ...) used as values.
    if (E.Ty.isFunc())
      return lowerFunc(B, E);
    Diags.error(E.loc(), "cannot lower this expression as a value");
    return nullptr;
  }
}

Value *Lowering::lowerFunc(Builder &B, const Expr &E) {
  IRType FuncTy = convertType(E.Ty);
  switch (E.kind()) {
  case Expr::Kind::BasisTranslation: {
    // §5.1: b1 >> b2 is a function value; wrap the qbtrans op in a lambda.
    const auto &BT = cast<BasisTranslationExpr>(E);
    Basis In = evalBasis(*BT.InBasis);
    Basis Out = evalBasis(*BT.OutBasis);
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(In.dim()));
    Builder Inner(Body);
    Value *Res = Inner.qbtrans(Arg, std::move(In), std::move(Out));
    Inner.yield({Res});
    return L->result();
  }

  case Expr::Kind::Measure: {
    const auto &ME = cast<MeasureExpr>(E);
    Basis BasisVal = evalBasis(*ME.BasisOperand);
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(BasisVal.dim()));
    Builder Inner(Body);
    Value *Res = Inner.qbmeas(Arg, std::move(BasisVal));
    Inner.yield({Res});
    return L->result();
  }

  case Expr::Kind::Discard: {
    const auto &D = cast<DiscardExpr>(E);
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(D.Dim));
    Builder Inner(Body);
    Inner.qbdiscard(Arg);
    Inner.yield({});
    return L->result();
  }

  case Expr::Kind::Identity: {
    const auto &Id = cast<IdentityExpr>(E);
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(Id.Dim));
    Builder Inner(Body);
    Inner.yield({Arg});
    return L->result();
  }

  case Expr::Kind::EmbedXor:
  case Expr::Kind::EmbedSign: {
    bool IsXor = E.kind() == Expr::Kind::EmbedXor;
    const Expr *FuncExpr = IsXor ? cast<EmbedXorExpr>(E).Func.get()
                                 : cast<EmbedSignExpr>(E).Func.get();
    const auto *Var = cast<VariableExpr>(FuncExpr);
    unsigned Dim = FuncTy.funcInDim();
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(Dim));
    Builder Inner(Body);
    Value *Res = Inner.embedClassical(
        Arg, Var->Name, IsXor ? EmbedKind::Xor : EmbedKind::Sign);
    Inner.yield({Res});
    return L->result();
  }

  case Expr::Kind::Rotate: {
    // b.rotate(theta): per-qubit rotation about each basis element's axis
    // (std -> RZ, pm -> RX, ij -> RY). These are the only Gate ops emitted
    // at the Qwerty level; adjoint negates the (possibly symbolic) angle
    // and predication adds controls, both handled by the generic Gate
    // machinery in AdjointPred.
    const auto &R = cast<RotateExpr>(E);
    Basis Bv = evalBasis(*R.BasisOperand);
    GateParam Param;
    if (const auto *FP = dyn_cast<FloatParamExpr>(R.Angle.get())) {
      Param = GateParam::symbolic(FP->Index, FP->Scale, FP->Offset);
    } else {
      const auto *Lit = cast<FloatLiteralExpr>(R.Angle.get());
      Param = GateParam(degreesToRadians(Lit->Value));
    }
    unsigned N = Bv.dim();
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(N));
    Builder Inner(Body);
    std::vector<Value *> Qs = Inner.qbunpack(Arg);
    unsigned QI = 0;
    for (const BasisElement &El : Bv.elements()) {
      assert(El.isBuiltin() && "type checker admits only built-in bases");
      GateKind K = El.prim() == PrimitiveBasis::Std  ? GateKind::RZ
                   : El.prim() == PrimitiveBasis::Pm ? GateKind::RX
                                                     : GateKind::RY;
      for (unsigned I = 0; I < El.dim(); ++I, ++QI)
        Qs[QI] = Inner.gate(K, {}, {Qs[QI]}, Param).front();
    }
    Value *Res = Inner.qbpack(Qs);
    Inner.yield({Res});
    return L->result();
  }

  case Expr::Kind::Flip: {
    // b.flip is sugar for {v1,v2} >> {v2,v1}; AST canonicalization usually
    // desugars it, but handle it natively so the pipeline works without
    // that pass too.
    const auto &F = cast<FlipExpr>(E);
    Basis Bv = evalBasis(*F.BasisOperand);
    const BasisElement &El = Bv.elements().front();
    BasisLiteral Lit = El.isLiteral()
                           ? El.literalValue()
                           : builtinToLiteral(El.prim(), El.dim());
    assert(Lit.Vectors.size() == 2 && "flip needs exactly two vectors");
    BasisLiteral Swapped = Lit;
    std::swap(Swapped.Vectors[0], Swapped.Vectors[1]);
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(Lit.Dim));
    Builder Inner(Body);
    Value *Res = Inner.qbtrans(Arg, Basis::literal(Lit),
                               Basis::literal(Swapped));
    Inner.yield({Res});
    return L->result();
  }

  case Expr::Kind::Adjoint: {
    Value *F = lowerFunc(B, *cast<AdjointExpr>(E).Func);
    return F ? B.funcAdj(F) : nullptr;
  }

  case Expr::Kind::Predicated: {
    const auto &P = cast<PredicatedExpr>(E);
    Value *F = lowerFunc(B, *P.Func);
    if (!F)
      return nullptr;
    return B.funcPred(F, evalBasis(*P.PredBasis));
  }

  case Expr::Kind::Variable: {
    const auto &Var = cast<VariableExpr>(E);
    auto It = Vars.find(Var.Name);
    if (It != Vars.end())
      return It->second;
    if (M->lookup(Var.Name))
      return B.funcConst(Var.Name, FuncTy);
    Diags.error(E.loc(), "unknown function '" + Var.Name + "'");
    return nullptr;
  }

  case Expr::Kind::Tensor: {
    // §5.1: tensoring functions generates a lambda that unpacks the input
    // qbundle, calls both functions on repacked halves, and repacks the
    // combined result.
    const auto &T = cast<TensorExpr>(E);
    unsigned LIn = T.Lhs->Ty.funcInDim();
    unsigned RIn = T.Rhs->Ty.funcInDim();
    Op *L = B.lambda(FuncTy);
    Block *Body = L->Regions[0].get();
    Value *Arg = Body->addArg(IRType::qbundle(LIn + RIn));
    Builder Inner(Body);
    // Lower the component function values *inside* the lambda so it stays
    // capture-free.
    Value *F1 = lowerFunc(Inner, *T.Lhs);
    Value *F2 = lowerFunc(Inner, *T.Rhs);
    if (!F1 || !F2)
      return nullptr;
    std::vector<Value *> Qs = Inner.qbunpack(Arg);
    Value *Left = Inner.qbpack({Qs.begin(), Qs.begin() + LIn});
    Value *Right = Inner.qbpack({Qs.begin() + LIn, Qs.end()});
    std::vector<Value *> R1 = Inner.callIndirect(F1, {Left});
    std::vector<Value *> R2 = Inner.callIndirect(F2, {Right});
    if (R1.size() != 1 || R2.size() != 1) {
      Diags.error(E.loc(), "cannot tensor functions without results");
      return nullptr;
    }
    bool IsQ = R1.front()->Ty.isQBundle();
    std::vector<Value *> Parts =
        IsQ ? Inner.qbunpack(R1.front()) : Inner.bitunpack(R1.front());
    std::vector<Value *> Parts2 =
        IsQ ? Inner.qbunpack(R2.front()) : Inner.bitunpack(R2.front());
    Parts.insert(Parts.end(), Parts2.begin(), Parts2.end());
    Value *Combined = IsQ ? Inner.qbpack(Parts) : Inner.bitpack(Parts);
    Inner.yield({Combined});
    return L->result();
  }

  case Expr::Kind::Conditional: {
    const auto &C = cast<ConditionalExpr>(E);
    Value *CondBits = lowerValue(B, *C.Cond);
    if (!CondBits)
      return nullptr;
    Value *CondI1 = B.bitunpack(CondBits).front();
    Op *If = B.ifOp(CondI1, {FuncTy});
    {
      Builder Then(If->Regions[0].get());
      Value *F = lowerFunc(Then, *C.ThenExpr);
      if (!F)
        return nullptr;
      Then.yield({F});
    }
    {
      Builder Else(If->Regions[1].get());
      Value *F = lowerFunc(Else, *C.ElseExpr);
      if (!F)
        return nullptr;
      Else.yield({F});
    }
    return If->result();
  }

  default:
    Diags.error(E.loc(), "cannot lower this expression as a function value");
    return nullptr;
  }
}

} // namespace

std::unique_ptr<Module> asdf::lowerToQwertyIR(const Program &Prog,
                                              DiagnosticEngine &Diags) {
  Lowering L(Prog, Diags);
  std::unique_ptr<Module> M = L.run();
  if (Diags.hadError())
    return nullptr;
  return M;
}
