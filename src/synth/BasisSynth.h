//===- BasisSynth.h - Basis translation circuit synthesis (§6.3) ----------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes quantum circuits for basis translations — the most novel part
/// of Asdf. The structure follows Fig. 6:
///
///   unconditional standardize | left vector phases | permutation of std
///   vectors | right vector phases | unconditional destandardize
///
/// with conditional (de)standardizations controlled on predicate qubits
/// (Algorithm E6), the permutation step driven by pairing-preserving basis
/// alignment (Appendix F / Algorithm E7), and permutations synthesized with
/// the multidirectional transformation-based algorithm of Miller–Maslov–
/// Dueck (the Tweedledum substitute).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SYNTH_BASISSYNTH_H
#define ASDF_SYNTH_BASISSYNTH_H

#include "basis/Basis.h"
#include "synth/GateEmitter.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace asdf {

//===----------------------------------------------------------------------===//
// Algorithm E6: standardization determination
//===----------------------------------------------------------------------===//

/// One required (de)standardization: translate `Dim` qubits starting at
/// `Offset` between primitive basis `Prim` and std.
struct Standardization {
  PrimitiveBasis Prim = PrimitiveBasis::Std;
  unsigned Offset = 0;
  unsigned Dim = 0;
  bool Conditional = false;
};

/// Algorithm E6: determines the standardizations (for b_in) and
/// destandardizations (for b_out), handling inseparable fourier elements
/// with padding.
void determineStandardizations(const Basis &BIn, const Basis &BOut,
                               std::vector<Standardization> &LStd,
                               std::vector<Standardization> &RStd);

//===----------------------------------------------------------------------===//
// Alignment (Appendix F)
//===----------------------------------------------------------------------===//

/// An aligned pair of basis literals over the same qubit range, with vector
/// order preserved so that vector i of In maps to vector i of Out.
struct AlignedPair {
  unsigned Offset = 0;
  BasisLiteral In, Out;
  bool Identical = false; ///< Equal literals: a predicate or a no-op.
};

/// Aligns the (standardized, phase-free) bases of a translation into
/// elementwise literal pairs (Algorithm E7). Factoring is attempted first
/// (preserving the vector pairing); merging is the fallback. Fully-spanning
/// identical pairs are dropped.
std::vector<AlignedPair> alignTranslation(const Basis &In, const Basis &Out);

/// Rewrites every element to the std primitive basis with phases stripped
/// (the "standardize a basis element" operation of Appendix F).
Basis standardizedBasis(const Basis &B);

//===----------------------------------------------------------------------===//
// Reversible permutation synthesis (Miller–Maslov–Dueck)
//===----------------------------------------------------------------------===//

/// A synthesized multi-controlled X over n wires: apply X to `Target` when
/// all wires in `ControlMask` are 1. Bit k of masks refers to wire k
/// (wire 0 = leftmost qubit).
struct McxGate {
  uint64_t ControlMask = 0;
  unsigned Target = 0;
};

/// Transformation-based synthesis: returns MCX gates realizing the
/// permutation \p Perm over \p NumBits wires (Perm[x] = image of x, indexed
/// by eigenbits). Gates are returned in circuit order.
std::vector<McxGate> synthesizePermutation(const std::vector<uint64_t> &Perm,
                                           unsigned NumBits);

//===----------------------------------------------------------------------===//
// Gate-level emission
//===----------------------------------------------------------------------===//

/// Emits gates translating qubits [Offset, Offset+Dim) from \p Prim to std
/// (\p ToStd) or back, controlled on \p Controls. fourier uses the (I)QFT.
void emitStandardizePrim(GateEmitter &E, PrimitiveBasis Prim, unsigned Offset,
                         unsigned Dim, bool ToStd,
                         const std::vector<ControlSpec> &Controls);

/// Emits the quantum Fourier transform (or its inverse) on qubits
/// [Offset, Offset+Dim), controlled on \p Controls.
void emitQFT(GateEmitter &E, unsigned Offset, unsigned Dim, bool Inverse,
             const std::vector<ControlSpec> &Controls);

/// Emits a phase e^{i Theta} on the computational subspace |Eigenbits> of
/// qubits [Offset, Offset+Dim), with extra \p Controls (an X-conjugated
/// multi-controlled P, §6.3 "Vector Phases").
void emitPhaseOnPattern(GateEmitter &E, unsigned Offset, unsigned Dim,
                        EigenBits Eigenbits, double Theta,
                        const std::vector<ControlSpec> &Controls);

/// Synthesizes the full circuit for the basis translation In >> Out on
/// wires [0, dim) of \p E (Fig. 6). Returns false if the translation is
/// malformed (should not happen for type-checked programs).
bool synthesizeTranslation(GateEmitter &E, const Basis &In, const Basis &Out);

} // namespace asdf

#endif // ASDF_SYNTH_BASISSYNTH_H
