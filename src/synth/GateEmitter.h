//===- GateEmitter.h - SSA-threading gate emission helper -----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesis routines think in terms of *wires* (stable indices), while
/// QCircuit IR threads qubit SSA values through gates. GateEmitter bridges
/// the two: it owns the current Value* of every wire and rebuilds the map
/// after each emitted gate. It also manages ancilla wires (qalloc/qfreez).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_SYNTH_GATEEMITTER_H
#define ASDF_SYNTH_GATEEMITTER_H

#include "ir/IR.h"

#include <cassert>
#include <vector>

namespace asdf {

/// A control with polarity: Negative means control on |0> (synthesis
/// X-conjugates such controls).
struct ControlSpec {
  unsigned Wire = 0;
  bool Negative = false;

  ControlSpec() = default;
  ControlSpec(unsigned Wire, bool Negative = false)
      : Wire(Wire), Negative(Negative) {}
};

/// Emits gates through a Builder while tracking wire -> Value bindings.
class GateEmitter {
public:
  GateEmitter(Builder &B, std::vector<Value *> Initial)
      : B(B), Wires(std::move(Initial)) {}

  unsigned numWires() const { return Wires.size(); }
  Value *wire(unsigned I) const {
    assert(I < Wires.size() && Wires[I] && "dead wire");
    return Wires[I];
  }

  /// Emits gate G with positive controls \p Controls on \p Targets.
  void gate(GateKind G, const std::vector<unsigned> &Controls,
            const std::vector<unsigned> &Targets,
            GateParam Param = GateParam()) {
    std::vector<Value *> CV, TV;
    for (unsigned C : Controls)
      CV.push_back(wire(C));
    for (unsigned T : Targets)
      TV.push_back(wire(T));
    std::vector<Value *> Out = B.gate(G, CV, TV, Param);
    for (unsigned I = 0; I < Controls.size(); ++I)
      Wires[Controls[I]] = Out[I];
    for (unsigned I = 0; I < Targets.size(); ++I)
      Wires[Targets[I]] = Out[Controls.size() + I];
  }

  /// Emits gate G honoring control polarities (X-conjugating negatives).
  void gateCtl(GateKind G, const std::vector<ControlSpec> &Controls,
               const std::vector<unsigned> &Targets,
               GateParam Param = GateParam()) {
    for (const ControlSpec &C : Controls)
      if (C.Negative)
        gate(GateKind::X, {}, {C.Wire});
    std::vector<unsigned> CW;
    for (const ControlSpec &C : Controls)
      CW.push_back(C.Wire);
    gate(G, CW, Targets, Param);
    for (const ControlSpec &C : Controls)
      if (C.Negative)
        gate(GateKind::X, {}, {C.Wire});
  }

  /// Allocates an ancilla wire (|0>); returns its wire index.
  unsigned allocAncilla() {
    Wires.push_back(B.qalloc());
    return Wires.size() - 1;
  }

  /// Frees an ancilla assumed restored to |0>.
  void freeAncillaZ(unsigned I) {
    B.qfreez(wire(I));
    Wires[I] = nullptr;
  }

  Builder &builder() { return B; }

  /// Final values of the first \p Count wires.
  std::vector<Value *> take(unsigned Count) const {
    std::vector<Value *> Out;
    for (unsigned I = 0; I < Count; ++I)
      Out.push_back(wire(I));
    return Out;
  }

private:
  Builder &B;
  std::vector<Value *> Wires;
};

} // namespace asdf

#endif // ASDF_SYNTH_GATEEMITTER_H
