//===- BasisSynth.cpp - Basis translation circuit synthesis (§6.3) --------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/BasisSynth.h"

#include "basis/SpanCheck.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

using namespace asdf;

//===----------------------------------------------------------------------===//
// Algorithm E6: standardization determination
//===----------------------------------------------------------------------===//

namespace {

/// Deque entry for Algorithm E6: a (possibly padding) primitive-basis run.
struct E6Elt {
  bool Padding = false;
  PrimitiveBasis Prim = PrimitiveBasis::Std;
  unsigned Dim = 0;
};

std::deque<E6Elt> e6Deque(const Basis &B) {
  std::deque<E6Elt> D;
  for (const BasisElement &El : B.elements()) {
    E6Elt E;
    E.Padding = El.isPadding();
    if (!E.Padding)
      E.Prim = El.prim();
    E.Dim = El.dim();
    D.push_back(E);
  }
  return D;
}

} // namespace

void asdf::determineStandardizations(const Basis &BIn, const Basis &BOut,
                                     std::vector<Standardization> &LStd,
                                     std::vector<Standardization> &RStd) {
  LStd.clear();
  RStd.clear();
  std::deque<E6Elt> LDeque = e6Deque(BIn);
  std::deque<E6Elt> RDeque = e6Deque(BOut);
  unsigned LOff = 0, ROff = 0;

  auto Append = [](std::vector<Standardization> &List, unsigned &Off,
                   PrimitiveBasis Prim, unsigned Dim, bool Cond) {
    List.push_back({Prim, Off, Dim, Cond});
    Off += Dim;
  };

  while (!LDeque.empty() && !RDeque.empty()) {
    E6Elt L = LDeque.front();
    LDeque.pop_front();
    E6Elt R = RDeque.front();
    RDeque.pop_front();

    // Lines 7-10: conditionality.
    bool Cond = L.Padding || R.Padding || L.Prim != R.Prim;

    if (L.Dim == R.Dim) {
      // Lines 11-15.
      if (!L.Padding)
        Append(LStd, LOff, L.Prim, L.Dim, Cond);
      if (!R.Padding)
        Append(RStd, ROff, R.Prim, R.Dim, Cond);
      continue;
    }

    // Lines 16-30: split the bigger element.
    bool LeftIsBig = L.Dim > R.Dim;
    E6Elt &Big = LeftIsBig ? L : R;
    E6Elt &Small = LeftIsBig ? R : L;
    std::vector<Standardization> &BigStd = LeftIsBig ? LStd : RStd;
    std::vector<Standardization> &SmallStd = LeftIsBig ? RStd : LStd;
    unsigned &BigOff = LeftIsBig ? LOff : ROff;
    unsigned &SmallOff = LeftIsBig ? ROff : LOff;
    std::deque<E6Elt> &BigDeque = LeftIsBig ? LDeque : RDeque;
    unsigned Delta = Big.Dim - Small.Dim;

    bool BigSeparable =
        !Big.Padding && Big.Prim != PrimitiveBasis::Fourier;
    if (BigSeparable || Big.Padding) {
      // Lines 20-24 (padding splits freely too).
      if (!Small.Padding)
        Append(SmallStd, SmallOff, Small.Prim, Small.Dim, Cond);
      if (!Big.Padding)
        Append(BigStd, BigOff, Big.Prim, Small.Dim, Cond);
      E6Elt Rest = Big;
      Rest.Dim = Delta;
      BigDeque.push_front(Rest);
      continue;
    }
    // Lines 25-30: the bigger element is an inseparable fourier basis.
    if (!Small.Padding)
      Append(SmallStd, SmallOff, Small.Prim, Small.Dim,
             /*Cond=*/true);
    Append(BigStd, BigOff, Big.Prim, Big.Dim, /*Cond=*/true);
    E6Elt Pad;
    Pad.Padding = true;
    Pad.Dim = Delta;
    BigDeque.push_front(Pad);
  }
  assert(LDeque.empty() && RDeque.empty() &&
         "dimension mismatch in well-typed translation");
}

//===----------------------------------------------------------------------===//
// Alignment (Appendix F)
//===----------------------------------------------------------------------===//

Basis asdf::standardizedBasis(const Basis &B) {
  std::vector<BasisElement> Out;
  for (const BasisElement &El : B.elements()) {
    if (El.isBuiltin()) {
      Out.push_back(BasisElement::builtin(PrimitiveBasis::Std, El.dim()));
      continue;
    }
    BasisLiteral Lit = El.literalValue();
    Lit.Prim = PrimitiveBasis::Std;
    for (BasisVector &V : Lit.Vectors) {
      V.Prim = PrimitiveBasis::Std;
      V = V.withoutPhase();
    }
    Out.push_back(BasisElement::literal(std::move(Lit)));
  }
  return Basis(std::move(Out));
}

namespace {

/// Converts a std builtin element to its literal with vectors in canonical
/// ascending order (the order convention for built-in bases).
BasisLiteral orderedLiteral(const BasisElement &El) {
  if (El.isLiteral())
    return El.literalValue();
  return builtinToLiteral(PrimitiveBasis::Std, El.dim());
}

/// Pairing-preserving factoring: tries to split \p Lit into Prefix (x)
/// Suffix with |Prefix| vectors of PrefixDim qubits such that
/// Lit[i] == Prefix[i / |Suffix|] + Suffix[i % |Suffix|] (vector order
/// respected, unlike the span-only factorLiteralAt).
std::optional<std::pair<BasisLiteral, BasisLiteral>>
factorOrdered(const BasisLiteral &Lit, unsigned PrefixDim) {
  unsigned SuffixDim = Lit.Dim - PrefixDim;
  // Discover prefix order (first appearance) and suffix order (within the
  // first prefix group).
  std::vector<EigenBits> Prefixes, Suffixes;
  for (const BasisVector &V : Lit.Vectors) {
    EigenBits P = bitPrefix(V.Eigenbits, Lit.Dim, PrefixDim);
    if (Prefixes.empty() || Prefixes.back() != P) {
      if (std::find(Prefixes.begin(), Prefixes.end(), P) != Prefixes.end())
        return std::nullopt; // Prefix groups must be contiguous.
      Prefixes.push_back(P);
    }
    if (Prefixes.size() == 1)
      Suffixes.push_back(bitSuffix(V.Eigenbits, SuffixDim));
  }
  uint64_t S = Suffixes.size();
  if (S == 0 || Prefixes.size() * S != Lit.Vectors.size())
    return std::nullopt;
  for (unsigned I = 0; I < Lit.Vectors.size(); ++I) {
    EigenBits Expect =
        bitConcat(Prefixes[I / S], Suffixes[I % S], SuffixDim);
    if (Lit.Vectors[I].Eigenbits != Expect)
      return std::nullopt;
  }
  std::vector<BasisVector> PV, SV;
  for (EigenBits P : Prefixes)
    PV.push_back(BasisVector(Lit.Prim, PrefixDim, P));
  for (EigenBits SBits : Suffixes)
    SV.push_back(BasisVector(Lit.Prim, SuffixDim, SBits));
  return std::make_pair(BasisLiteral(std::move(PV)),
                        BasisLiteral(std::move(SV)));
}

} // namespace

std::vector<AlignedPair> asdf::alignTranslation(const Basis &In,
                                                const Basis &Out) {
  std::deque<BasisElement> LDeque(In.elements().begin(), In.elements().end());
  std::deque<BasisElement> RDeque(Out.elements().begin(),
                                  Out.elements().end());
  std::vector<AlignedPair> Pairs;
  unsigned Offset = 0;

  while (!LDeque.empty() && !RDeque.empty()) {
    BasisElement L = LDeque.front();
    LDeque.pop_front();
    BasisElement R = RDeque.front();
    RDeque.pop_front();

    if (L.dim() == R.dim()) {
      // Lines 7-13 of Algorithm E7.
      if (L.isBuiltin() && R.isBuiltin()) {
        // std[N] >> std[N]: identity; skip.
        Offset += L.dim();
        continue;
      }
      AlignedPair P;
      P.Offset = Offset;
      P.In = orderedLiteral(L);
      P.Out = orderedLiteral(R);
      P.Identical = P.In == P.Out;
      if (!(P.Identical && P.In.fullySpans()))
        Pairs.push_back(std::move(P));
      Offset += L.dim();
      continue;
    }

    bool LeftIsBig = L.dim() > R.dim();
    BasisElement &Big = LeftIsBig ? L : R;
    BasisElement &Small = LeftIsBig ? R : L;
    std::deque<BasisElement> &BigDeque = LeftIsBig ? LDeque : RDeque;
    std::deque<BasisElement> &SmallDeque = LeftIsBig ? RDeque : LDeque;
    unsigned Delta = Big.dim() - Small.dim();

    if (Big.isBuiltin()) {
      // Lines 17-24: peel std[dim small] off the builtin (the product
      // order of a builtin makes this pairing-safe).
      BasisElement Factor =
          BasisElement::builtin(PrimitiveBasis::Std, Small.dim());
      BigDeque.push_front(
          BasisElement::builtin(PrimitiveBasis::Std, Delta));
      AlignedPair P;
      P.Offset = Offset;
      P.In = orderedLiteral(LeftIsBig ? Factor : Small);
      P.Out = orderedLiteral(LeftIsBig ? Small : Factor);
      P.Identical = P.In == P.Out;
      if (!(P.Identical && P.In.fullySpans()))
        Pairs.push_back(std::move(P));
      Offset += Small.dim();
      continue;
    }

    // Lines 25-30: try to factor a small-dim prefix off the big literal,
    // preserving the vector pairing.
    std::optional<std::pair<BasisLiteral, BasisLiteral>> Fac =
        factorOrdered(Big.literalValue(), Small.dim());
    if (Fac) {
      BigDeque.push_front(BasisElement::literal(Fac->second));
      AlignedPair P;
      P.Offset = Offset;
      BasisLiteral SmallLit = orderedLiteral(Small);
      P.In = LeftIsBig ? Fac->first : SmallLit;
      P.Out = LeftIsBig ? SmallLit : Fac->first;
      P.Identical = P.In == P.Out;
      if (!(P.Identical && P.In.fullySpans()))
        Pairs.push_back(std::move(P));
      Offset += Small.dim();
      continue;
    }

    // Lines 31-34: merge until dimensions line up (merging preserves the
    // written tensor-product vector order).
    assert(!SmallDeque.empty() && "translation dims disagree");
    BasisElement Next = SmallDeque.front();
    SmallDeque.pop_front();
    BasisElement Merged = BasisElement::literal(mergeElements(Small, Next));
    SmallDeque.push_front(Merged);
    BigDeque.push_front(Big);
  }
  assert(LDeque.empty() && RDeque.empty());
  return Pairs;
}

//===----------------------------------------------------------------------===//
// Transformation-based synthesis (Miller–Maslov–Dueck)
//===----------------------------------------------------------------------===//

std::vector<McxGate> asdf::synthesizePermutation(
    const std::vector<uint64_t> &Perm, unsigned NumBits) {
  assert(NumBits <= 24 && "permutation synthesis width limit");
  uint64_t Size = uint64_t(1) << NumBits;
  assert(Perm.size() == Size && "permutation table size mismatch");
  std::vector<uint64_t> F = Perm;
  std::vector<McxGate> Collected;

  // Applies an MCX to the *output* side of F.
  auto Apply = [&](uint64_t ControlMask, unsigned TargetBit) {
    Collected.push_back({ControlMask, TargetBit});
    uint64_t Bit = uint64_t(1) << TargetBit;
    for (uint64_t X = 0; X < Size; ++X)
      if ((F[X] & ControlMask) == ControlMask)
        F[X] ^= Bit;
  };

  for (uint64_t I = 0; I < Size; ++I) {
    uint64_t Y = F[I];
    if (Y == I)
      continue;
    // (a) Set the bits of I missing from Y; controls are the 1-bits of the
    // current image (all >= I, so earlier rows are untouched).
    uint64_t P = I & ~Y;
    for (unsigned K = 0; K < NumBits; ++K)
      if (P & (uint64_t(1) << K)) {
        Apply(F[I], K);
      }
    // (b) Clear the bits of the image not present in I; controls are the
    // 1-bits of I.
    uint64_t Q = F[I] & ~I;
    for (unsigned K = 0; K < NumBits; ++K)
      if (Q & (uint64_t(1) << K))
        Apply(I, K);
    assert(F[I] == I && "MMD row not fixed");
  }

  // F = g_1 o g_2 o ... o g_m, so the circuit applies them in reverse
  // collection order.
  std::reverse(Collected.begin(), Collected.end());
  return Collected;
}

//===----------------------------------------------------------------------===//
// Gate-level emission
//===----------------------------------------------------------------------===//

void asdf::emitQFT(GateEmitter &E, unsigned Offset, unsigned Dim,
                   bool Inverse, const std::vector<ControlSpec> &Controls) {
  // Forward QFT gate list (applied in order); inverse reverses it with
  // negated angles.
  struct Step {
    enum class K { H, CP, Swap } Kind;
    unsigned A = 0, B = 0;
    double Theta = 0.0;
  };
  std::vector<Step> Steps;
  for (unsigned J = 0; J < Dim; ++J) {
    Steps.push_back({Step::K::H, Offset + J, 0, 0.0});
    for (unsigned K = J + 1; K < Dim; ++K)
      Steps.push_back({Step::K::CP, Offset + K, Offset + J,
                       M_PI / double(uint64_t(1) << (K - J))});
  }
  for (unsigned I = 0; I < Dim / 2; ++I)
    Steps.push_back({Step::K::Swap, Offset + I, Offset + Dim - 1 - I, 0.0});

  if (Inverse)
    std::reverse(Steps.begin(), Steps.end());
  for (const Step &S : Steps) {
    switch (S.Kind) {
    case Step::K::H:
      E.gateCtl(GateKind::H, Controls, {S.A});
      break;
    case Step::K::CP: {
      std::vector<ControlSpec> C = Controls;
      C.push_back(ControlSpec(S.A));
      E.gateCtl(GateKind::P, C, {S.B}, Inverse ? -S.Theta : S.Theta);
      break;
    }
    case Step::K::Swap:
      E.gateCtl(GateKind::Swap, Controls, {S.A, S.B});
      break;
    }
  }
}

void asdf::emitStandardizePrim(GateEmitter &E, PrimitiveBasis Prim,
                               unsigned Offset, unsigned Dim, bool ToStd,
                               const std::vector<ControlSpec> &Controls) {
  switch (Prim) {
  case PrimitiveBasis::Std:
    return;
  case PrimitiveBasis::Pm:
    // |+>/|-> <-> |0>/|1> via H.
    for (unsigned I = 0; I < Dim; ++I)
      E.gateCtl(GateKind::H, Controls, {Offset + I});
    return;
  case PrimitiveBasis::Ij:
    // |i> = S H |0>, so ij->std is H Sdg (Sdg first), std->ij is H then S.
    for (unsigned I = 0; I < Dim; ++I) {
      if (ToStd) {
        E.gateCtl(GateKind::Sdg, Controls, {Offset + I});
        E.gateCtl(GateKind::H, Controls, {Offset + I});
      } else {
        E.gateCtl(GateKind::H, Controls, {Offset + I});
        E.gateCtl(GateKind::S, Controls, {Offset + I});
      }
    }
    return;
  case PrimitiveBasis::Fourier:
    // fourier->std is the inverse QFT (§6.3).
    emitQFT(E, Offset, Dim, /*Inverse=*/ToStd, Controls);
    return;
  }
}

void asdf::emitPhaseOnPattern(GateEmitter &E, unsigned Offset, unsigned Dim,
                              EigenBits Eigenbits, double Theta,
                              const std::vector<ControlSpec> &Controls) {
  if (std::abs(Theta) < 1e-12)
    return;
  // The last qubit of the pattern is the P target; the rest are controls
  // with polarity from the eigenbits. A 0-bit target is X-conjugated.
  std::vector<ControlSpec> C = Controls;
  for (unsigned I = 0; I + 1 < Dim; ++I)
    C.push_back(ControlSpec(Offset + I, !bitAt(Eigenbits, Dim, I)));
  unsigned Target = Offset + Dim - 1;
  bool TargetOne = bitAt(Eigenbits, Dim, Dim - 1);
  if (!TargetOne)
    E.gate(GateKind::X, {}, {Target});
  E.gateCtl(GateKind::P, C, {Target}, Theta);
  if (!TargetOne)
    E.gate(GateKind::X, {}, {Target});
}

//===----------------------------------------------------------------------===//
// Full translation synthesis (Fig. 6)
//===----------------------------------------------------------------------===//

namespace {

/// A vector phase occurrence: (element index, offset, dim, eigenbits, theta).
struct PhaseEntry {
  unsigned ElementIndex;
  unsigned Offset;
  unsigned Dim;
  EigenBits Eigenbits;
  double Theta;
};

std::vector<PhaseEntry> collectPhases(const Basis &B) {
  std::vector<PhaseEntry> Out;
  unsigned Offset = 0;
  for (unsigned EI = 0; EI < B.elements().size(); ++EI) {
    const BasisElement &El = B.elements()[EI];
    if (El.isLiteral())
      for (const BasisVector &V : El.literalValue().Vectors)
        if (V.HasPhase && std::abs(V.Phase) > 1e-12)
          Out.push_back({EI, Offset, El.dim(), V.Eigenbits, V.Phase});
    Offset += El.dim();
  }
  return Out;
}

/// A predicate control group derived from one identical aligned pair.
struct PredGroup {
  unsigned Offset;
  unsigned Dim;
  std::vector<ControlSpec> Controls;
  /// Indicator ancilla bookkeeping for multi-vector predicates.
  bool HasIndicator = false;
  unsigned IndicatorWire = 0;
  BasisLiteral Literal;
};

} // namespace

bool asdf::synthesizeTranslation(GateEmitter &E, const Basis &In,
                                 const Basis &Out) {
  assert(In.dim() == Out.dim() && "translation dimension mismatch");

  // Nothing to do for a literally identical translation.
  if (In == Out)
    return true;

  // Algorithm E6: which qubits need (de)standardization, and whether each
  // run must be conditioned on the predicates.
  std::vector<Standardization> LStd, RStd;
  determineStandardizations(In, Out, LStd, RStd);

  // Appendix F: align the standardized bases into literal pairs.
  std::vector<AlignedPair> Pairs =
      alignTranslation(standardizedBasis(In), standardizedBasis(Out));

  std::vector<PhaseEntry> LeftPhases = collectPhases(In);
  std::vector<PhaseEntry> RightPhases = collectPhases(Out);

  bool AnyCondStd =
      std::any_of(LStd.begin(), LStd.end(),
                  [](const Standardization &S) {
                    return S.Conditional && S.Prim != PrimitiveBasis::Std;
                  }) ||
      std::any_of(RStd.begin(), RStd.end(), [](const Standardization &S) {
        return S.Conditional && S.Prim != PrimitiveBasis::Std;
      });
  bool AnyActive = std::any_of(
      Pairs.begin(), Pairs.end(),
      [](const AlignedPair &P) { return !P.Identical; });
  bool NeedPredicates =
      AnyCondStd || AnyActive || !LeftPhases.empty() || !RightPhases.empty();

  // 1. Unconditional standardizations.
  for (const Standardization &S : LStd)
    if (!S.Conditional)
      emitStandardizePrim(E, S.Prim, S.Offset, S.Dim, /*ToStd=*/true, {});

  // 2. Predicate controls (identical aligned pairs). Singleton predicates
  // control directly on their qubits; multi-vector predicates compute a
  // span-membership indicator ancilla.
  std::vector<PredGroup> Preds;
  std::vector<ControlSpec> AllPredControls;
  std::map<unsigned, unsigned> PredOffsets; // offset -> index in Preds
  if (NeedPredicates) {
    for (const AlignedPair &P : Pairs) {
      if (!P.Identical)
        continue;
      PredGroup G;
      G.Offset = P.Offset;
      G.Dim = P.In.Dim;
      G.Literal = P.In;
      if (P.In.Vectors.size() == 1) {
        EigenBits Bits = P.In.Vectors.front().Eigenbits;
        for (unsigned I = 0; I < P.In.Dim; ++I)
          G.Controls.push_back(
              ControlSpec(P.Offset + I, !bitAt(Bits, P.In.Dim, I)));
      } else {
        // Indicator = OR over orthogonal vector patterns (at most one can
        // match, so XOR accumulation is exact).
        G.HasIndicator = true;
        G.IndicatorWire = E.allocAncilla();
        for (const BasisVector &V : P.In.Vectors) {
          std::vector<ControlSpec> C;
          for (unsigned I = 0; I < P.In.Dim; ++I)
            C.push_back(
                ControlSpec(P.Offset + I, !bitAt(V.Eigenbits, P.In.Dim, I)));
          E.gateCtl(GateKind::X, C, {G.IndicatorWire});
        }
        G.Controls.push_back(ControlSpec(G.IndicatorWire));
      }
      AllPredControls.insert(AllPredControls.end(), G.Controls.begin(),
                             G.Controls.end());
      PredOffsets[G.Offset] = Preds.size();
      Preds.push_back(std::move(G));
    }
  }

  /// Controls for an emission belonging to element range [Offset,
  /// Offset+Dim): all predicate controls except a predicate group covering
  /// that very range (a predicate's own phases are not self-controlled).
  auto ControlsExcluding = [&](unsigned Offset) {
    std::vector<ControlSpec> C;
    for (const PredGroup &G : Preds)
      if (G.Offset != Offset)
        C.insert(C.end(), G.Controls.begin(), G.Controls.end());
    return C;
  };

  // 3. Conditional standardizations, controlled on the predicates.
  for (const Standardization &S : LStd)
    if (S.Conditional)
      emitStandardizePrim(E, S.Prim, S.Offset, S.Dim, /*ToStd=*/true,
                          AllPredControls);

  // 4. Left vector phases: translate std-with-phases to plain std.
  for (const PhaseEntry &P : LeftPhases)
    emitPhaseOnPattern(E, P.Offset, P.Dim, P.Eigenbits, -P.Theta,
                       ControlsExcluding(P.Offset));

  // 5. Permutation of std basis vectors, per aligned pair (Fig. 9).
  //
  // Element-wise synthesis is only faithful to the §2.2 semantics (identity
  // on the orthogonal complement of span(b_in)) when at most one active
  // pair is partial-span, or every active pair fully spans. Otherwise the
  // active pairs are synthesized *jointly* over the union of their qubits.
  // (The paper's Fig. 9 synthesizes element-wise regardless, which acts
  // nontrivially on the complement; we keep the stricter semantics.)
  std::vector<const AlignedPair *> Active;
  unsigned PartialActive = 0;
  for (const AlignedPair &P : Pairs) {
    if (P.Identical)
      continue;
    Active.push_back(&P);
    if (!P.In.fullySpans())
      ++PartialActive;
  }

  // Emits one permutation over an explicit wire list (wire 0 = leftmost).
  auto EmitPerm = [&](const std::vector<uint64_t> &Perm,
                      const std::vector<unsigned> &Wires,
                      const std::vector<ControlSpec> &Extra) {
    unsigned D = Wires.size();
    std::vector<McxGate> Gates = synthesizePermutation(Perm, D);
    for (const McxGate &G : Gates) {
      std::vector<ControlSpec> C = Extra;
      for (unsigned K = 0; K < D; ++K)
        if (G.ControlMask & (uint64_t(1) << K))
          C.push_back(ControlSpec(Wires[D - 1 - K]));
      E.gateCtl(GateKind::X, C, {Wires[D - 1 - G.Target]});
    }
  };

  if (Active.size() <= 1 || PartialActive == 0) {
    for (const AlignedPair *P : Active) {
      unsigned D = P->In.Dim;
      if (D > 24)
        return false;
      uint64_t Size = uint64_t(1) << D;
      std::vector<uint64_t> Perm(Size);
      for (uint64_t X = 0; X < Size; ++X)
        Perm[X] = X;
      for (unsigned I = 0; I < P->In.Vectors.size(); ++I)
        Perm[uint64_t(P->In.Vectors[I].Eigenbits)] =
            uint64_t(P->Out.Vectors[I].Eigenbits);
      std::vector<unsigned> Wires;
      for (unsigned I = 0; I < D; ++I)
        Wires.push_back(P->Offset + I);
      EmitPerm(Perm, Wires, ControlsExcluding(P->Offset));
    }
  } else {
    // Joint synthesis: enumerate the product of the active pairs' vector
    // lists (element-major) over the concatenation of their qubit ranges.
    unsigned TotalDim = 0;
    uint64_t Count = 1;
    std::vector<unsigned> Wires;
    for (const AlignedPair *P : Active) {
      TotalDim += P->In.Dim;
      Count *= P->In.Vectors.size();
      for (unsigned I = 0; I < P->In.Dim; ++I)
        Wires.push_back(P->Offset + I);
    }
    if (TotalDim > 24)
      return false;
    uint64_t Size = uint64_t(1) << TotalDim;
    std::vector<uint64_t> Perm(Size);
    for (uint64_t X = 0; X < Size; ++X)
      Perm[X] = X;
    // Strides for element-major enumeration (first pair varies slowest) and
    // left-to-right bit placement.
    std::vector<uint64_t> Stride(Active.size(), 1);
    std::vector<unsigned> Shift(Active.size(), 0);
    {
      uint64_t S = 1;
      for (unsigned K = Active.size(); K-- > 0;) {
        Stride[K] = S;
        S *= Active[K]->In.Vectors.size();
      }
      unsigned Used = 0;
      for (unsigned K = 0; K < Active.size(); ++K) {
        Used += Active[K]->In.Dim;
        Shift[K] = TotalDim - Used;
      }
    }
    for (uint64_t J = 0; J < Count; ++J) {
      uint64_t InBits = 0, OutBits = 0;
      for (unsigned K = 0; K < Active.size(); ++K) {
        uint64_t Idx = (J / Stride[K]) % Active[K]->In.Vectors.size();
        InBits |= uint64_t(Active[K]->In.Vectors[Idx].Eigenbits) << Shift[K];
        OutBits |= uint64_t(Active[K]->Out.Vectors[Idx].Eigenbits) << Shift[K];
      }
      Perm[InBits] = OutBits;
    }
    EmitPerm(Perm, Wires, {});
  }

  // 6. Right vector phases: reintroduce the output phases.
  for (const PhaseEntry &P : RightPhases)
    emitPhaseOnPattern(E, P.Offset, P.Dim, P.Eigenbits, P.Theta,
                       ControlsExcluding(P.Offset));

  // 7. Conditional destandardizations.
  for (const Standardization &S : RStd)
    if (S.Conditional)
      emitStandardizePrim(E, S.Prim, S.Offset, S.Dim, /*ToStd=*/false,
                          AllPredControls);

  // 8. Uncompute predicate indicator ancillas (reverse order).
  for (auto It = Preds.rbegin(); It != Preds.rend(); ++It) {
    if (!It->HasIndicator)
      continue;
    for (const BasisVector &V : It->Literal.Vectors) {
      std::vector<ControlSpec> C;
      for (unsigned I = 0; I < It->Dim; ++I)
        C.push_back(
            ControlSpec(It->Offset + I, !bitAt(V.Eigenbits, It->Dim, I)));
      E.gateCtl(GateKind::X, C, {It->IndicatorWire});
    }
    E.freeAncillaZ(It->IndicatorWire);
  }

  // 9. Unconditional destandardizations.
  for (const Standardization &S : RStd)
    if (!S.Conditional)
      emitStandardizePrim(E, S.Prim, S.Offset, S.Dim, /*ToStd=*/false, {});

  return true;
}
