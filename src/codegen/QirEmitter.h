//===- QirEmitter.h - QIR (LLVM IR) code generation (§7) ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits textual QIR, the LLVM-IR-based quantum IR:
///
///  - **Base Profile**: a straight-line sequence of gate intrinsic calls
///    over statically indexed qubits (`inttoptr` casts standing in for
///    qallocs, as QSSA's reg2mem does), from a flat circuit. Requires no
///    dynamic allocation and no conditional execution.
///
///  - **Unrestricted Profile**: one LLVM function per module function, with
///    dynamic qubit allocation and the QIR callables API
///    (__quantum__rt__callable_create / _invoke / _make_adjoint /
///    _make_controlled) for the function values that survive when inlining
///    is disabled — the subject of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_CODEGEN_QIREMITTER_H
#define ASDF_CODEGEN_QIREMITTER_H

#include "ir/IR.h"
#include "qcirc/Circuit.h"

#include <optional>
#include <string>

namespace asdf {

/// Counts of QIR callable intrinsic invocations in emitted code (the
/// metrics of Table 1).
struct QirCallableStats {
  unsigned Creates = 0; ///< __quantum__rt__callable_create calls.
  unsigned Invokes = 0; ///< __quantum__rt__callable_invoke calls.
};

/// Emits Base Profile QIR from a flat circuit. Returns std::nullopt if the
/// circuit needs features the Base Profile forbids (classical conditions).
std::optional<std::string> emitQirBaseProfile(const Circuit &C);

/// Emits Unrestricted Profile QIR from a (converted, QCircuit-level)
/// module. \p Stats, if non-null, receives the callable intrinsic counts.
std::string emitQirUnrestricted(const Module &M,
                                QirCallableStats *Stats = nullptr);

} // namespace asdf

#endif // ASDF_CODEGEN_QIREMITTER_H
