//===- QasmEmitter.cpp - OpenQASM 3 code generation (§7) ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/QasmEmitter.h"

#include <sstream>

using namespace asdf;

namespace {

const char *qasmGateName(GateKind K) {
  switch (K) {
  case GateKind::X:
    return "x";
  case GateKind::Y:
    return "y";
  case GateKind::Z:
    return "z";
  case GateKind::H:
    return "h";
  case GateKind::S:
    return "s";
  case GateKind::Sdg:
    return "sdg";
  case GateKind::T:
    return "t";
  case GateKind::Tdg:
    return "tdg";
  case GateKind::P:
    return "p";
  case GateKind::RX:
    return "rx";
  case GateKind::RY:
    return "ry";
  case GateKind::RZ:
    return "rz";
  case GateKind::Swap:
    return "swap";
  }
  return "id";
}

bool isParamGate(GateKind K) {
  return K == GateKind::P || K == GateKind::RX || K == GateKind::RY ||
         K == GateKind::RZ;
}

void emitGate(std::ostringstream &OS, const CircuitInstr &I,
              const Circuit &C) {
  unsigned NC = I.Controls.size();
  std::string Name = qasmGateName(I.Gate);
  // Prefer the named controlled forms of stdgates.inc, falling back to the
  // ctrl @ modifier for higher control counts.
  if (NC == 1 && I.Gate == GateKind::X)
    Name = "cx";
  else if (NC == 1 && I.Gate == GateKind::Z)
    Name = "cz";
  else if (NC == 1 && I.Gate == GateKind::Y)
    Name = "cy";
  else if (NC == 1 && I.Gate == GateKind::H)
    Name = "ch";
  else if (NC == 1 && I.Gate == GateKind::P)
    Name = "cp";
  else if (NC == 1 && I.Gate == GateKind::Swap)
    Name = "cswap";
  else if (NC == 2 && I.Gate == GateKind::X)
    Name = "ccx";
  else if (NC >= 1)
    Name = "ctrl(" + std::to_string(NC) + ") @ " + Name;
  OS << Name;
  if (isParamGate(I.Gate)) {
    if (I.isSymbolic())
      // Symbolic angle over an `input` parameter (declared in degrees).
      OS << "((" << I.ParamScale << " * " << C.ParamNames[I.ParamIdx]
         << " + " << I.ParamOfs << ") * pi / 180)";
    else
      OS << '(' << I.Param << ')';
  }
  OS << ' ';
  bool First = true;
  for (unsigned Q : I.Controls) {
    OS << (First ? "" : ", ") << "q[" << Q << ']';
    First = false;
  }
  for (unsigned Q : I.Targets) {
    OS << (First ? "" : ", ") << "q[" << Q << ']';
    First = false;
  }
  OS << ';';
}

} // namespace

std::string asdf::emitOpenQasm3(const Circuit &C) {
  std::ostringstream OS;
  OS << "OPENQASM 3.0;\n";
  OS << "include \"stdgates.inc\";\n";
  if (C.NumQubits)
    OS << "qubit[" << C.NumQubits << "] q;\n";
  if (C.NumBits)
    OS << "bit[" << C.NumBits << "] c;\n";
  for (const std::string &P : C.ParamNames)
    OS << "input float[64] " << P << ";\n";
  for (const CircuitInstr &I : C.Instrs) {
    if (I.CondBit >= 0)
      OS << "if (c[" << I.CondBit << "] == " << (I.CondVal ? 1 : 0)
         << ") { ";
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate:
      emitGate(OS, I, C);
      break;
    case CircuitInstr::Kind::Measure:
      OS << "c[" << I.Cbit << "] = measure q[" << I.Targets[0] << "];";
      break;
    case CircuitInstr::Kind::Reset:
      OS << "reset q[" << I.Targets[0] << "];";
      break;
    }
    if (I.CondBit >= 0)
      OS << " }";
    OS << '\n';
  }
  return OS.str();
}
