//===- QirEmitter.cpp - QIR (LLVM IR) code generation (§7) ----------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/QirEmitter.h"

#include <functional>
#include <map>
#include <set>
#include <sstream>

using namespace asdf;

namespace {

/// QIS intrinsic base name for a gate.
std::string qisName(GateKind K, unsigned NumControls) {
  std::string Base;
  switch (K) {
  case GateKind::X:
    Base = "x";
    break;
  case GateKind::Y:
    Base = "y";
    break;
  case GateKind::Z:
    Base = "z";
    break;
  case GateKind::H:
    Base = "h";
    break;
  case GateKind::S:
    Base = "s";
    break;
  case GateKind::Sdg:
    Base = "s__adj";
    break;
  case GateKind::T:
    Base = "t";
    break;
  case GateKind::Tdg:
    Base = "t__adj";
    break;
  case GateKind::P:
    Base = "rz"; // P differs from RZ by global phase; QIR exposes rz.
    break;
  case GateKind::RX:
    Base = "rx";
    break;
  case GateKind::RY:
    Base = "ry";
    break;
  case GateKind::RZ:
    Base = "rz";
    break;
  case GateKind::Swap:
    Base = "swap";
    break;
  }
  if (NumControls == 1 && (K == GateKind::X || K == GateKind::Z ||
                           K == GateKind::Y))
    return "c" + Base;
  if (NumControls == 2 && K == GateKind::X)
    return "ccx";
  return Base;
}

bool isParamGate(GateKind K) {
  return K == GateKind::P || K == GateKind::RX || K == GateKind::RY ||
         K == GateKind::RZ;
}

} // namespace

//===----------------------------------------------------------------------===//
// Base profile
//===----------------------------------------------------------------------===//

std::optional<std::string> asdf::emitQirBaseProfile(const Circuit &C) {
  if (C.isParametric())
    return std::nullopt; // No symbolic angles in the Base Profile.
  std::ostringstream OS;
  std::set<std::string> Decls;
  std::ostringstream Body;

  auto Qubit = [](unsigned Q) {
    return "%Qubit* inttoptr (i64 " + std::to_string(Q) + " to %Qubit*)";
  };
  auto Result = [](unsigned R) {
    return "%Result* inttoptr (i64 " + std::to_string(R) +
           " to %Result*)";
  };

  for (const CircuitInstr &I : C.Instrs) {
    if (I.CondBit >= 0)
      return std::nullopt; // Forward unconditional branching only.
    switch (I.TheKind) {
    case CircuitInstr::Kind::Gate: {
      if (I.Controls.size() > 2 ||
          (I.Controls.size() >= 1 &&
           !(I.Gate == GateKind::X || I.Gate == GateKind::Z ||
             I.Gate == GateKind::Y)))
        return std::nullopt; // Decompose multi-controls first.
      std::string Name =
          "__quantum__qis__" + qisName(I.Gate, I.Controls.size()) +
          "__body";
      std::ostringstream Args;
      bool First = true;
      if (isParamGate(I.Gate)) {
        Args << "double " << I.Param;
        First = false;
      }
      for (unsigned Q : I.Controls) {
        Args << (First ? "" : ", ") << Qubit(Q);
        First = false;
      }
      for (unsigned Q : I.Targets) {
        Args << (First ? "" : ", ") << Qubit(Q);
        First = false;
      }
      Body << "  call void @" << Name << '(' << Args.str() << ")\n";
      std::ostringstream ProtoArgs;
      First = true;
      if (isParamGate(I.Gate)) {
        ProtoArgs << "double";
        First = false;
      }
      for (unsigned K = 0; K < I.Controls.size() + I.Targets.size(); ++K) {
        ProtoArgs << (First ? "" : ", ") << "%Qubit*";
        First = false;
      }
      Decls.insert("declare void @" + Name + "(" + ProtoArgs.str() + ")");
      break;
    }
    case CircuitInstr::Kind::Measure:
      Body << "  call void @__quantum__qis__mz__body(" << Qubit(I.Targets[0])
           << ", " << Result(static_cast<unsigned>(I.Cbit)) << ")\n";
      Decls.insert("declare void @__quantum__qis__mz__body(%Qubit*, "
                   "%Result*)");
      break;
    case CircuitInstr::Kind::Reset:
      Body << "  call void @__quantum__qis__reset__body("
           << Qubit(I.Targets[0]) << ")\n";
      Decls.insert("declare void @__quantum__qis__reset__body(%Qubit*)");
      break;
    }
  }
  for (int Bit : C.OutputBits)
    if (Bit >= 0) {
      Body << "  call void @__quantum__rt__result_record_output("
           << Result(static_cast<unsigned>(Bit)) << ", i8* null)\n";
      Decls.insert("declare void @__quantum__rt__result_record_output("
                   "%Result*, i8*)");
    }

  OS << "; Asdf reproduction: QIR Base Profile\n";
  OS << "%Qubit = type opaque\n%Result = type opaque\n\n";
  OS << "define void @main() #0 {\nentry:\n"
     << Body.str() << "  ret void\n}\n\n";
  for (const std::string &D : Decls)
    OS << D << '\n';
  OS << "\nattributes #0 = { \"entry_point\" \"qir_profiles\"=\"base_"
        "profile\" \"required_num_qubits\"=\""
     << C.NumQubits << "\" \"required_num_results\"=\"" << C.NumBits
     << "\" }\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Unrestricted profile
//===----------------------------------------------------------------------===//

namespace {

class UnrestrictedEmitter {
public:
  UnrestrictedEmitter(const Module &M, QirCallableStats *Stats)
      : M(M), Stats(Stats) {}

  std::string run();

private:
  const Module &M;
  QirCallableStats *Stats;
  std::ostringstream OS;
  std::set<std::string> Decls;
  std::map<const Value *, std::string> Names;
  unsigned NextId = 0;

  std::string typeOf(const IRType &T) {
    switch (T.kind()) {
    case IRType::Kind::Qubit:
      return "%Qubit*";
    case IRType::Kind::QBundle:
    case IRType::Kind::BitBundle:
      return "%Array*";
    case IRType::Kind::I1:
      return "%Result*";
    case IRType::Kind::F64:
      return "double";
    case IRType::Kind::Func:
      return "%Callable*";
    case IRType::Kind::Invalid:
      break;
    }
    return "i8*";
  }

  std::string name(const Value *V) {
    auto [It, Inserted] = Names.insert({V, "%v" + std::to_string(NextId)});
    if (Inserted)
      ++NextId;
    return It->second;
  }

  void declare(const std::string &Proto) { Decls.insert(Proto); }
  void emitFunction(const IRFunction &F);
  void emitOp(const Op &O);
};

void UnrestrictedEmitter::emitOp(const Op &O) {
  auto Call = [&](const std::string &Ret, const std::string &Fn,
                  const std::string &Args, const std::string &Proto,
                  const Value *ResultVal) {
    if (ResultVal)
      OS << "  " << name(ResultVal) << " = call " << Ret << " @" << Fn
         << '(' << Args << ")\n";
    else
      OS << "  call " << Ret << " @" << Fn << '(' << Args << ")\n";
    declare("declare " + Ret + " @" + Fn + "(" + Proto + ")");
  };

  switch (O.Kind) {
  case OpKind::QAlloc:
    Call("%Qubit*", "__quantum__rt__qubit_allocate", "", "",
         &O.Results[0]);
    return;
  case OpKind::QFree:
  case OpKind::QFreeZ:
    Call("void", "__quantum__rt__qubit_release",
         "%Qubit* " + name(O.Operands[0]), "%Qubit*", nullptr);
    return;
  case OpKind::Gate: {
    std::string Fn =
        "__quantum__qis__" + qisName(O.GateAttr, O.NumControls) + "__body";
    std::ostringstream Args, Proto;
    bool First = true;
    if (isParamGate(O.GateAttr)) {
      Args << "double " << O.ParamAttr.concrete();
      Proto << "double";
      First = false;
    }
    for (const Value *V : O.Operands) {
      Args << (First ? "" : ", ") << "%Qubit* " << name(V);
      Proto << (First ? "" : ", ") << "%Qubit*";
      First = false;
    }
    OS << "  call void @" << Fn << '(' << Args.str() << ")\n";
    declare("declare void @" + Fn + "(" + Proto.str() + ")");
    // Results are the same qubits; alias names.
    for (unsigned I = 0; I < O.Results.size(); ++I)
      Names[&O.Results[I]] = name(O.Operands[I]);
    return;
  }
  case OpKind::Measure1: {
    Call("%Result*", "__quantum__qis__m__body",
         "%Qubit* " + name(O.Operands[0]), "%Qubit*", &O.Results[1]);
    Names[&O.Results[0]] = name(O.Operands[0]);
    return;
  }
  case OpKind::QbPack:
  case OpKind::BitPack: {
    // Arrays are modeled with __quantum__rt__array_create_1d plus stores;
    // we compress this into one synthetic call for readability.
    std::ostringstream Args, Proto;
    Args << "i64 " << O.Operands.size();
    Proto << "i64";
    for (const Value *V : O.Operands) {
      Args << ", " << typeOf(V->Ty) << ' ' << name(V);
      Proto << ", " << typeOf(V->Ty);
    }
    Call("%Array*", "__quantum__rt__array_create_1d", Args.str(),
         Proto.str(), &O.Results[0]);
    return;
  }
  case OpKind::QbUnpack:
  case OpKind::BitUnpack: {
    for (unsigned I = 0; I < O.Results.size(); ++I) {
      Call(typeOf(O.Results[I].Ty),
           "__quantum__rt__array_get_element_ptr_1d",
           "%Array* " + name(O.Operands[0]) + ", i64 " + std::to_string(I),
           "%Array*, i64", &O.Results[I]);
    }
    return;
  }
  case OpKind::BitConst: {
    std::string Bits;
    for (bool B : O.BitsAttr)
      Bits += B ? '1' : '0';
    Call("%Array*", "__quantum__rt__array_from_bits",
         "i64 " + std::to_string(O.BitsAttr.size()), "i64",
         &O.Results[0]);
    OS << "  ; constant bits " << Bits << '\n';
    return;
  }
  case OpKind::ConstF:
    OS << "  " << name(&O.Results[0]) << " = fadd double 0.0, "
       << O.FloatAttr << '\n';
    return;
  case OpKind::CallableCreate: {
    if (Stats)
      ++Stats->Creates;
    Call("%Callable*", "__quantum__rt__callable_create",
         "[4 x void (%Tuple*, %Tuple*, %Tuple*)*]* @" + O.SymbolAttr +
             "__FunctionTable, [2 x void (%Tuple*, i32)*]* null, %Tuple* "
             "null",
         "[4 x void (%Tuple*, %Tuple*, %Tuple*)*]*, [2 x void (%Tuple*, "
         "i32)*]*, %Tuple*",
         &O.Results[0]);
    return;
  }
  case OpKind::CallableAdj: {
    Call("%Callable*", "__quantum__rt__callable_copy",
         "%Callable* " + name(O.Operands[0]) + ", i1 true",
         "%Callable*, i1", &O.Results[0]);
    OS << "  call void @__quantum__rt__callable_make_adjoint(%Callable* "
       << name(&O.Results[0]) << ")\n";
    declare("declare void @__quantum__rt__callable_make_adjoint("
            "%Callable*)");
    return;
  }
  case OpKind::CallableCtl: {
    Call("%Callable*", "__quantum__rt__callable_copy",
         "%Callable* " + name(O.Operands[0]) + ", i1 true",
         "%Callable*, i1", &O.Results[0]);
    OS << "  call void @__quantum__rt__callable_make_controlled("
          "%Callable* "
       << name(&O.Results[0]) << ")\n";
    declare("declare void @__quantum__rt__callable_make_controlled("
            "%Callable*)");
    return;
  }
  case OpKind::CallableInvoke: {
    if (Stats)
      ++Stats->Invokes;
    std::ostringstream Args;
    Args << "%Callable* " << name(O.Operands[0]);
    for (unsigned I = 1; I < O.Operands.size(); ++I)
      Args << ", " << typeOf(O.Operands[I]->Ty) << ' '
           << name(O.Operands[I]);
    // Arguments and results travel in tuples; this emitter passes them
    // directly (the runtime tweak of Appendix G: no argument mangling).
    std::string ResultName;
    if (!O.Results.empty()) {
      OS << "  " << name(&O.Results[0])
         << " = call %Array* @__quantum__rt__callable_invoke("
         << Args.str() << ")\n";
    } else {
      OS << "  call %Array* @__quantum__rt__callable_invoke(" << Args.str()
         << ")\n";
    }
    declare("declare %Array* @__quantum__rt__callable_invoke(...)");
    return;
  }
  case OpKind::Call: {
    std::ostringstream Args;
    bool First = true;
    for (const Value *V : O.Operands) {
      Args << (First ? "" : ", ") << typeOf(V->Ty) << ' ' << name(V);
      First = false;
    }
    if (!O.Results.empty())
      OS << "  " << name(&O.Results[0]) << " = call "
         << typeOf(O.Results[0].Ty) << " @" << O.SymbolAttr << '('
         << Args.str() << ")\n";
    else
      OS << "  call void @" << O.SymbolAttr << '(' << Args.str() << ")\n";
    return;
  }
  case OpKind::If: {
    // Unrestricted profile permits full control flow; emit a compact
    // select-style comment plus both region bodies guarded by branches.
    OS << "  ; if " << name(O.Operands[0]) << " (structured control flow "
          "lowered to br in full LLVM)\n";
    for (const auto &R : O.Regions)
      for (const auto &Inner : R->Ops)
        emitOp(*Inner);
    if (!O.Results.empty() && !O.Regions.empty()) {
      Op *Yield = O.Regions[0]->Ops.back().get();
      for (unsigned I = 0;
           I < O.Results.size() && I < Yield->Operands.size(); ++I)
        Names[&O.Results[I]] = name(Yield->Operands[I]);
    }
    return;
  }
  case OpKind::Yield:
    return;
  case OpKind::Ret: {
    if (O.Operands.empty())
      OS << "  ret void\n";
    else
      OS << "  ret " << typeOf(O.Operands[0]->Ty) << ' '
         << name(O.Operands[0]) << '\n';
    return;
  }
  default:
    OS << "  ; unhandled op " << opKindName(O.Kind) << '\n';
    return;
  }
}

void UnrestrictedEmitter::emitFunction(const IRFunction &F) {
  std::string RetTy =
      F.ResultTypes.empty() ? "void" : typeOf(F.ResultTypes[0]);
  OS << "define " << RetTy << " @" << F.Name << '(';
  for (unsigned I = 0; I < F.Body.Args.size(); ++I) {
    if (I)
      OS << ", ";
    OS << typeOf(F.Body.Args[I].Ty) << ' '
       << name(&const_cast<IRFunction &>(F).Body.Args[I]);
  }
  OS << ") {\nentry:\n";
  for (const auto &O : F.Body.Ops)
    emitOp(*O);
  if (F.Body.Ops.empty() || F.Body.Ops.back()->Kind != OpKind::Ret)
    OS << "  ret void\n";
  OS << "}\n\n";
}

std::string UnrestrictedEmitter::run() {
  OS << "; Asdf reproduction: QIR Unrestricted Profile\n";
  OS << "%Qubit = type opaque\n%Result = type opaque\n%Array = type "
        "opaque\n%Callable = type opaque\n%Tuple = type opaque\n\n";
  // Callable function tables (one per function referenced by a
  // callable_create): [body, adj, ctl, adj_ctl], with null entries when the
  // specialization was not generated (§6.2).
  std::set<std::string> Tables;
  for (const auto &F : M.Functions) {
    std::function<void(const Block &)> Walk = [&](const Block &B) {
      for (const auto &O : B.Ops) {
        if (O->Kind == OpKind::CallableCreate)
          Tables.insert(O->SymbolAttr);
        for (const auto &R : O->Regions)
          if (R)
            Walk(*R);
      }
    };
    Walk(F->Body);
  }
  for (const std::string &T : Tables) {
    auto Entry = [&](const std::string &Suffix) {
      return M.lookup(T + Suffix)
                 ? "void (%Tuple*, %Tuple*, %Tuple*)* @" + T + Suffix +
                       "__wrapper"
                 : std::string(
                       "void (%Tuple*, %Tuple*, %Tuple*)* null");
    };
    OS << "@" << T
       << "__FunctionTable = internal constant [4 x void (%Tuple*, "
          "%Tuple*, %Tuple*)*] ["
       << "void (%Tuple*, %Tuple*, %Tuple*)* @" << T << "__wrapper, "
       << Entry("__adj") << ", " << Entry("__ctl1") << ", "
       << Entry("__adj__ctl1") << "]\n";
  }
  OS << '\n';
  for (const auto &F : M.Functions)
    emitFunction(*F);
  for (const std::string &D : Decls)
    OS << D << '\n';
  return OS.str();
}

} // namespace

std::string asdf::emitQirUnrestricted(const Module &M,
                                      QirCallableStats *Stats) {
  UnrestrictedEmitter E(M, Stats);
  return E.run();
}
