//===- QasmEmitter.h - OpenQASM 3 code generation (§7) --------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits OpenQASM 3 from a flat circuit (the reg2mem result): SSA values
/// have already become register accesses, so emission is a direct walk.
/// Classically-conditioned instructions become `if (c[k] == v)` statements
/// (dynamic circuits, as used by teleportation).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_CODEGEN_QASMEMITTER_H
#define ASDF_CODEGEN_QASMEMITTER_H

#include "qcirc/Circuit.h"

#include <string>

namespace asdf {

/// Renders \p C as an OpenQASM 3 program.
std::string emitOpenQasm3(const Circuit &C);

} // namespace asdf

#endif // ASDF_CODEGEN_QASMEMITTER_H
