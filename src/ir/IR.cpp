//===- IR.cpp - SSA IR infrastructure -------------------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>
#include <sstream>

using namespace asdf;

//===----------------------------------------------------------------------===//
// Types and attribute helpers
//===----------------------------------------------------------------------===//

std::string IRType::str() const {
  std::ostringstream OS;
  switch (TheKind) {
  case Kind::Invalid:
    return "<invalid>";
  case Kind::QBundle:
    OS << "qbundle[" << Dim << ']';
    return OS.str();
  case Kind::BitBundle:
    OS << "bitbundle[" << Dim << ']';
    return OS.str();
  case Kind::Qubit:
    return "qubit";
  case Kind::I1:
    return "i1";
  case Kind::F64:
    return "f64";
  case Kind::Func: {
    auto Part = [&](Data D, unsigned N) {
      switch (D) {
      case Data::Unit:
        OS << "()";
        break;
      case Data::QBundle:
        OS << "qbundle[" << N << ']';
        break;
      case Data::BitBundle:
        OS << "bitbundle[" << N << ']';
        break;
      }
    };
    Part(In, InDim);
    OS << (Rev ? " rev-> " : " -> ");
    Part(Out, OutDim);
    return OS.str();
  }
  }
  return "<invalid>";
}

const char *asdf::gateKindName(GateKind K) {
  switch (K) {
  case GateKind::X:
    return "X";
  case GateKind::Y:
    return "Y";
  case GateKind::Z:
    return "Z";
  case GateKind::H:
    return "H";
  case GateKind::S:
    return "S";
  case GateKind::Sdg:
    return "Sdg";
  case GateKind::T:
    return "T";
  case GateKind::Tdg:
    return "Tdg";
  case GateKind::P:
    return "P";
  case GateKind::RX:
    return "RX";
  case GateKind::RY:
    return "RY";
  case GateKind::RZ:
    return "RZ";
  case GateKind::Swap:
    return "SWAP";
  }
  return "?";
}

GateKind asdf::adjointGateKind(GateKind K) {
  switch (K) {
  case GateKind::S:
    return GateKind::Sdg;
  case GateKind::Sdg:
    return GateKind::S;
  case GateKind::T:
    return GateKind::Tdg;
  case GateKind::Tdg:
    return GateKind::T;
  default:
    // X/Y/Z/H/Swap are Hermitian; P/RX/RY/RZ negate their parameter, which
    // the caller handles.
    return K;
  }
}

bool asdf::isHermitianGate(GateKind K) {
  switch (K) {
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
  case GateKind::H:
  case GateKind::Swap:
    return true;
  default:
    return false;
  }
}

const char *asdf::opKindName(OpKind K) {
  switch (K) {
  case OpKind::QbPrep:
    return "qbprep";
  case OpKind::QbPack:
    return "qbpack";
  case OpKind::QbUnpack:
    return "qbunpack";
  case OpKind::QbTrans:
    return "qbtrans";
  case OpKind::QbMeas:
    return "qbmeas";
  case OpKind::QbDiscard:
    return "qbdiscard";
  case OpKind::QbDiscardZ:
    return "qbdiscardz";
  case OpKind::QbId:
    return "qbid";
  case OpKind::BitPack:
    return "bitpack";
  case OpKind::BitUnpack:
    return "bitunpack";
  case OpKind::BitConst:
    return "bitconst";
  case OpKind::ConstF:
    return "constf";
  case OpKind::EmbedClassical:
    return "embed_classical";
  case OpKind::FuncConst:
    return "func_const";
  case OpKind::FuncAdj:
    return "func_adj";
  case OpKind::FuncPred:
    return "func_pred";
  case OpKind::Call:
    return "call";
  case OpKind::CallIndirect:
    return "call_indirect";
  case OpKind::Lambda:
    return "lambda";
  case OpKind::If:
    return "if";
  case OpKind::Ret:
    return "return";
  case OpKind::Yield:
    return "yield";
  case OpKind::QAlloc:
    return "qalloc";
  case OpKind::QFree:
    return "qfree";
  case OpKind::QFreeZ:
    return "qfreez";
  case OpKind::Gate:
    return "gate";
  case OpKind::Measure1:
    return "measure";
  case OpKind::CallableCreate:
    return "callable_create";
  case OpKind::CallableAdj:
    return "callable_adj";
  case OpKind::CallableCtl:
    return "callable_ctl";
  case OpKind::CallableInvoke:
    return "callable_invoke";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Values and ops
//===----------------------------------------------------------------------===//

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  // setOperand mutates Uses; iterate over a copy.
  std::vector<std::pair<Op *, unsigned>> Copy = Uses;
  for (auto [User, Idx] : Copy)
    User->setOperand(Idx, New);
}

Op::~Op() { assert(Operands.empty() && "op destroyed with live operands"); }

std::unique_ptr<Op> Op::create(OpKind Kind,
                               const std::vector<Value *> &Operands,
                               const std::vector<IRType> &ResultTypes) {
  std::unique_ptr<Op> NewOp(new Op());
  NewOp->Kind = Kind;
  for (Value *V : Operands)
    NewOp->addOperand(V);
  for (unsigned I = 0; I < ResultTypes.size(); ++I) {
    NewOp->Results.emplace_back();
    Value &R = NewOp->Results.back();
    R.Ty = ResultTypes[I];
    R.DefOp = NewOp.get();
    R.Index = I;
  }
  return NewOp;
}

void Op::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size());
  Value *Old = Operands[I];
  if (Old == V)
    return;
  auto &Uses = Old->Uses;
  auto It = std::find(Uses.begin(), Uses.end(),
                      std::make_pair(this, I));
  assert(It != Uses.end() && "use list out of sync");
  Uses.erase(It);
  Operands[I] = V;
  V->Uses.push_back({this, I});
}

void Op::addOperand(Value *V) {
  Operands.push_back(V);
  V->Uses.push_back({this, static_cast<unsigned>(Operands.size() - 1)});
}

void Op::dropOperands() {
  for (unsigned I = 0; I < Operands.size(); ++I) {
    auto &Uses = Operands[I]->Uses;
    auto It = std::find(Uses.begin(), Uses.end(), std::make_pair(this, I));
    assert(It != Uses.end() && "use list out of sync");
    Uses.erase(It);
  }
  Operands.clear();
}

void Op::erase() {
#ifndef NDEBUG
  for (Value &R : Results)
    assert(R.Uses.empty() && "erasing op with live uses");
#endif
  // Region ops must drop their own operand links first.
  for (auto &R : Regions)
    while (!R->Ops.empty()) {
      Op *Last = R->Ops.back().get();
      Last->dropOperands();
      Last->Regions.clear();
      R->Ops.pop_back();
    }
  dropOperands();
  assert(ParentBlock && "erasing detached op");
  ParentBlock->Ops.erase(Iter);
}

bool Op::isPure() const {
  switch (Kind) {
  case OpKind::ConstF:
  case OpKind::BitConst:
  case OpKind::FuncConst:
  case OpKind::FuncAdj:
  case OpKind::FuncPred:
  case OpKind::Lambda:
  case OpKind::BitPack:
  case OpKind::BitUnpack:
  case OpKind::CallableCreate:
  case OpKind::CallableAdj:
  case OpKind::CallableCtl:
    return true;
  default:
    return false;
  }
}

bool Op::isStationary() const {
  // §5.2/§5.3: classical ops stay in place when the quantum portion of the
  // DAG is inverted or predicated around them.
  switch (Kind) {
  case OpKind::ConstF:
  case OpKind::BitConst:
  case OpKind::BitPack:
  case OpKind::BitUnpack:
  case OpKind::FuncConst:
  case OpKind::FuncAdj:
  case OpKind::FuncPred:
  case OpKind::CallableCreate:
  case OpKind::CallableAdj:
  case OpKind::CallableCtl:
    return true;
  default:
    return false;
  }
}

Op *Block::insert(std::unique_ptr<Op> NewOp, Op *Before) {
  Op *Raw = NewOp.get();
  Raw->ParentBlock = this;
  auto Pos = Before ? Before->Iter : Ops.end();
  Raw->Iter = Ops.insert(Pos, std::move(NewOp));
  return Raw;
}

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

IRType IRFunction::type() const {
  auto DataOf = [](const IRType &T, unsigned &Dim) {
    if (T.isQBundle()) {
      Dim = T.dim();
      return IRType::Data::QBundle;
    }
    if (T.isBitBundle()) {
      Dim = T.dim();
      return IRType::Data::BitBundle;
    }
    Dim = 0;
    return IRType::Data::Unit;
  };
  unsigned InDim = 0, OutDim = 0;
  IRType::Data In = IRType::Data::Unit, Out = IRType::Data::Unit;
  if (!Body.Args.empty())
    In = DataOf(Body.Args.front().Ty, InDim);
  if (!ResultTypes.empty())
    Out = DataOf(ResultTypes.front(), OutDim);
  // Reversibility of the signature is refined by analysis; default false.
  return IRType::func(In, InDim, Out, OutDim, /*Rev=*/false);
}

IRFunction *Module::createUnique(const std::string &Base) {
  std::string Name = Base;
  unsigned Suffix = 0;
  while (lookup(Name))
    Name = Base + "_" + std::to_string(Suffix++);
  return create(Name);
}

//===----------------------------------------------------------------------===//
// Builder helpers
//===----------------------------------------------------------------------===//

Value *Builder::qbprep(PrimitiveBasis Prim, bool Minus, unsigned Dim) {
  Op *O = createOp(OpKind::QbPrep, {}, {IRType::qbundle(Dim)});
  O->PrimAttr = Prim;
  O->MinusAttr = Minus;
  O->DimAttr = Dim;
  return O->result();
}

Value *Builder::qbpack(const std::vector<Value *> &Qubits) {
  Op *O = createOp(OpKind::QbPack, Qubits,
                   {IRType::qbundle(Qubits.size())});
  return O->result();
}

std::vector<Value *> Builder::qbunpack(Value *Bundle) {
  unsigned N = Bundle->Ty.dim();
  std::vector<IRType> Types(N, IRType::qubit());
  Op *O = createOp(OpKind::QbUnpack, {Bundle}, Types);
  std::vector<Value *> Out;
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(O->result(I));
  return Out;
}

Value *Builder::qbtrans(Value *Bundle, Basis In, Basis Out) {
  Op *O = createOp(OpKind::QbTrans, {Bundle}, {Bundle->Ty});
  O->BasisAttr = std::move(In);
  O->BasisAttr2 = std::move(Out);
  return O->result();
}

Value *Builder::qbmeas(Value *Bundle, Basis B) {
  Op *O = createOp(OpKind::QbMeas, {Bundle},
                   {IRType::bitbundle(Bundle->Ty.dim())});
  O->BasisAttr = std::move(B);
  return O->result();
}

void Builder::qbdiscard(Value *Bundle) {
  createOp(OpKind::QbDiscard, {Bundle}, {});
}

void Builder::qbdiscardz(Value *Bundle) {
  createOp(OpKind::QbDiscardZ, {Bundle}, {});
}

Value *Builder::qbid(Value *Bundle) {
  Op *O = createOp(OpKind::QbId, {Bundle}, {Bundle->Ty});
  O->DimAttr = Bundle->Ty.dim();
  return O->result();
}

Value *Builder::bitpack(const std::vector<Value *> &Bits) {
  Op *O = createOp(OpKind::BitPack, Bits,
                   {IRType::bitbundle(Bits.size())});
  return O->result();
}

std::vector<Value *> Builder::bitunpack(Value *Bundle) {
  unsigned N = Bundle->Ty.dim();
  std::vector<IRType> Types(N, IRType::i1());
  Op *O = createOp(OpKind::BitUnpack, {Bundle}, Types);
  std::vector<Value *> Out;
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(O->result(I));
  return Out;
}

Value *Builder::bitconst(const std::vector<bool> &Bits) {
  Op *O = createOp(OpKind::BitConst, {},
                   {IRType::bitbundle(Bits.size())});
  O->BitsAttr = Bits;
  return O->result();
}

Value *Builder::constf(double V) {
  Op *O = createOp(OpKind::ConstF, {}, {IRType::f64()});
  O->FloatAttr = V;
  return O->result();
}

Value *Builder::embedClassical(Value *Bundle, const std::string &Func,
                               EmbedKind Kind) {
  Op *O = createOp(OpKind::EmbedClassical, {Bundle}, {Bundle->Ty});
  O->SymbolAttr = Func;
  O->EmbedAttr = Kind;
  return O->result();
}

Value *Builder::funcConst(const std::string &Symbol, IRType FuncTy) {
  Op *O = createOp(OpKind::FuncConst, {}, {FuncTy});
  O->SymbolAttr = Symbol;
  return O->result();
}

Value *Builder::funcAdj(Value *Func) {
  Op *O = createOp(OpKind::FuncAdj, {Func}, {Func->Ty});
  return O->result();
}

Value *Builder::funcPred(Value *Func, Basis Pred) {
  IRType FT = Func->Ty;
  unsigned M = Pred.dim();
  IRType NewTy = IRType::func(FT.funcIn(), FT.funcInDim() + M, FT.funcOut(),
                              FT.funcOutDim() + M, FT.isRevFunc());
  Op *O = createOp(OpKind::FuncPred, {Func}, {NewTy});
  O->BasisAttr = std::move(Pred);
  return O->result();
}

std::vector<Value *> Builder::call(IRFunction *Callee,
                                   const std::vector<Value *> &Args,
                                   bool Adj, Basis Pred) {
  std::vector<IRType> ResultTypes = Callee->ResultTypes;
  unsigned M = Pred.dim();
  if (M) {
    // Predicated call: argument and result bundles widen by dim(Pred).
    for (IRType &T : ResultTypes)
      if (T.isQBundle())
        T = IRType::qbundle(T.dim() + M);
  }
  Op *O = createOp(OpKind::Call, Args, ResultTypes);
  O->SymbolAttr = Callee->Name;
  O->AdjFlag = Adj;
  O->BasisAttr = std::move(Pred);
  std::vector<Value *> Out;
  for (unsigned I = 0; I < O->numResults(); ++I)
    Out.push_back(O->result(I));
  return Out;
}

std::vector<Value *> Builder::callIndirect(Value *Func,
                                           const std::vector<Value *> &Args) {
  IRType FT = Func->Ty;
  std::vector<IRType> ResultTypes;
  switch (FT.funcOut()) {
  case IRType::Data::Unit:
    break;
  case IRType::Data::QBundle:
    ResultTypes.push_back(IRType::qbundle(FT.funcOutDim()));
    break;
  case IRType::Data::BitBundle:
    ResultTypes.push_back(IRType::bitbundle(FT.funcOutDim()));
    break;
  }
  std::vector<Value *> Operands = {Func};
  Operands.insert(Operands.end(), Args.begin(), Args.end());
  Op *O = createOp(OpKind::CallIndirect, Operands, ResultTypes);
  std::vector<Value *> Out;
  for (unsigned I = 0; I < O->numResults(); ++I)
    Out.push_back(O->result(I));
  return Out;
}

Op *Builder::lambda(IRType FuncTy) {
  Op *O = createOp(OpKind::Lambda, {}, {FuncTy});
  O->Regions.push_back(std::make_unique<Block>());
  O->Regions[0]->ParentOp = O;
  return O;
}

Op *Builder::ifOp(Value *Cond, const std::vector<IRType> &ResultTypes) {
  Op *O = createOp(OpKind::If, {Cond}, ResultTypes);
  O->Regions.push_back(std::make_unique<Block>());
  O->Regions.push_back(std::make_unique<Block>());
  O->Regions[0]->ParentOp = O;
  O->Regions[1]->ParentOp = O;
  return O;
}

void Builder::ret(const std::vector<Value *> &Values) {
  createOp(OpKind::Ret, Values, {});
}

void Builder::yield(const std::vector<Value *> &Values) {
  createOp(OpKind::Yield, Values, {});
}

Value *Builder::qalloc() {
  return createOp(OpKind::QAlloc, {}, {IRType::qubit()})->result();
}

void Builder::qfree(Value *Q) { createOp(OpKind::QFree, {Q}, {}); }

void Builder::qfreez(Value *Q) { createOp(OpKind::QFreeZ, {Q}, {}); }

std::vector<Value *> Builder::gate(GateKind G,
                                   const std::vector<Value *> &Controls,
                                   const std::vector<Value *> &Targets,
                                   GateParam Param) {
  std::vector<Value *> Operands = Controls;
  Operands.insert(Operands.end(), Targets.begin(), Targets.end());
  std::vector<IRType> Types(Operands.size(), IRType::qubit());
  Op *O = createOp(OpKind::Gate, Operands, Types);
  O->GateAttr = G;
  O->ParamAttr = Param;
  O->NumControls = Controls.size();
  std::vector<Value *> Out;
  for (unsigned I = 0; I < O->numResults(); ++I)
    Out.push_back(O->result(I));
  return Out;
}

std::pair<Value *, Value *> Builder::measure1(Value *Q) {
  Op *O = createOp(OpKind::Measure1, {Q}, {IRType::qubit(), IRType::i1()});
  return {O->result(0), O->result(1)};
}

Value *Builder::callableCreate(const std::string &Symbol, IRType FuncTy) {
  Op *O = createOp(OpKind::CallableCreate, {}, {FuncTy});
  O->SymbolAttr = Symbol;
  return O->result();
}

Value *Builder::callableAdj(Value *C) {
  return createOp(OpKind::CallableAdj, {C}, {C->Ty})->result();
}

Value *Builder::callableCtl(Value *C, Basis Pred) {
  IRType FT = C->Ty;
  unsigned M = Pred.dim();
  IRType NewTy = IRType::func(FT.funcIn(), FT.funcInDim() + M, FT.funcOut(),
                              FT.funcOutDim() + M, FT.isRevFunc());
  Op *O = createOp(OpKind::CallableCtl, {C}, {NewTy});
  O->BasisAttr = std::move(Pred);
  O->NumControls = M;
  return O->result();
}

std::vector<Value *> Builder::callableInvoke(
    Value *C, const std::vector<Value *> &Args) {
  IRType FT = C->Ty;
  std::vector<IRType> ResultTypes;
  switch (FT.funcOut()) {
  case IRType::Data::Unit:
    break;
  case IRType::Data::QBundle:
    ResultTypes.push_back(IRType::qbundle(FT.funcOutDim()));
    break;
  case IRType::Data::BitBundle:
    ResultTypes.push_back(IRType::bitbundle(FT.funcOutDim()));
    break;
  }
  std::vector<Value *> Operands = {C};
  Operands.insert(Operands.end(), Args.begin(), Args.end());
  Op *O = createOp(OpKind::CallableInvoke, Operands, ResultTypes);
  std::vector<Value *> Out;
  for (unsigned I = 0; I < O->numResults(); ++I)
    Out.push_back(O->result(I));
  return Out;
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

Op *asdf::cloneOp(Builder &B, Op *Source, ValueMap &Map) {
  std::vector<Value *> NewOperands;
  NewOperands.reserve(Source->numOperands());
  for (Value *V : Source->Operands) {
    auto It = Map.find(V);
    NewOperands.push_back(It != Map.end() ? It->second : V);
  }
  std::vector<IRType> ResultTypes;
  for (Value &R : Source->Results)
    ResultTypes.push_back(R.Ty);
  Op *NewOp = B.createOp(Source->Kind, NewOperands, ResultTypes);
  // Copy attributes wholesale.
  NewOp->BasisAttr = Source->BasisAttr;
  NewOp->BasisAttr2 = Source->BasisAttr2;
  NewOp->PrimAttr = Source->PrimAttr;
  NewOp->MinusAttr = Source->MinusAttr;
  NewOp->DimAttr = Source->DimAttr;
  NewOp->GateAttr = Source->GateAttr;
  NewOp->FloatAttr = Source->FloatAttr;
  NewOp->ParamAttr = Source->ParamAttr;
  NewOp->NumControls = Source->NumControls;
  NewOp->SymbolAttr = Source->SymbolAttr;
  NewOp->AdjFlag = Source->AdjFlag;
  NewOp->EmbedAttr = Source->EmbedAttr;
  NewOp->BitsAttr = Source->BitsAttr;
  // Clone regions.
  for (auto &R : Source->Regions) {
    auto NewBlock = std::make_unique<Block>();
    NewBlock->ParentOp = NewOp;
    for (Value &Arg : R->Args)
      Map[&Arg] = NewBlock->addArg(Arg.Ty);
    Builder Inner(NewBlock.get());
    cloneBlockBody(Inner, *R, Map, /*SkipTerminator=*/false);
    NewOp->Regions.push_back(std::move(NewBlock));
  }
  for (unsigned I = 0; I < Source->numResults(); ++I)
    Map[Source->result(I)] = NewOp->result(I);
  return NewOp;
}

void asdf::cloneBlockBody(Builder &B, Block &Source, ValueMap &Map,
                          bool SkipTerminator) {
  for (auto &OpPtr : Source.Ops) {
    if (SkipTerminator && OpPtr.get() == Source.Ops.back().get() &&
        (OpPtr->Kind == OpKind::Ret || OpPtr->Kind == OpKind::Yield))
      break;
    cloneOp(B, OpPtr.get(), Map);
  }
}

std::unique_ptr<Module> asdf::cloneModule(const Module &M) {
  auto Out = std::make_unique<Module>();
  Out->FloatParams = M.FloatParams;
  for (const auto &F : M.Functions) {
    IRFunction *NF = Out->create(F->Name);
    NF->ResultTypes = F->ResultTypes;
    NF->IsLambdaLifted = F->IsLambdaLifted;
    NF->IsSpecialization = F->IsSpecialization;
    NF->Loc = F->Loc;
    ValueMap Map;
    Block &Body = const_cast<IRFunction &>(*F).Body;
    for (Value &A : Body.Args)
      Map[&A] = NF->Body.addArg(A.Ty);
    Builder B(&NF->Body);
    cloneBlockBody(B, Body, Map, /*SkipTerminator=*/false);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

class Printer {
public:
  std::ostringstream OS;
  std::map<const Value *, unsigned> Ids;
  unsigned NextId = 0;

  std::string name(const Value *V) {
    auto [It, Inserted] = Ids.insert({V, NextId});
    if (Inserted)
      ++NextId;
    return "%" + std::to_string(It->second);
  }

  void printBlock(const Block &B, unsigned Indent);
  void printOp(const Op &O, unsigned Indent);
};

void Printer::printOp(const Op &O, unsigned Indent) {
  OS << std::string(Indent, ' ');
  if (!O.Results.empty()) {
    for (unsigned I = 0; I < O.Results.size(); ++I) {
      if (I)
        OS << ", ";
      OS << name(&O.Results[I]);
    }
    OS << " = ";
  }
  OS << opKindName(O.Kind);
  switch (O.Kind) {
  case OpKind::QbPrep:
    OS << ' ' << primitiveBasisName(O.PrimAttr) << '<'
       << (O.MinusAttr ? "MINUS" : "PLUS") << ">[" << O.DimAttr << ']';
    break;
  case OpKind::QbTrans:
    OS << " by " << O.BasisAttr.str() << " >> " << O.BasisAttr2.str();
    break;
  case OpKind::QbMeas:
    OS << " in " << O.BasisAttr.str();
    break;
  case OpKind::Gate:
    OS << ' ' << gateKindName(O.GateAttr);
    if (O.GateAttr == GateKind::P || O.GateAttr == GateKind::RX ||
        O.GateAttr == GateKind::RY || O.GateAttr == GateKind::RZ) {
      if (O.ParamAttr.isSymbolic())
        OS << "($" << O.ParamAttr.Index << " * " << O.ParamAttr.Scale
           << " + " << O.ParamAttr.Offset << " deg)";
      else
        OS << '(' << O.ParamAttr.concrete() << ')';
    }
    break;
  case OpKind::ConstF:
    OS << ' ' << O.FloatAttr;
    break;
  case OpKind::BitConst: {
    OS << " 0b";
    for (bool Bit : O.BitsAttr)
      OS << (Bit ? '1' : '0');
    break;
  }
  case OpKind::FuncConst:
  case OpKind::CallableCreate:
    OS << " @" << O.SymbolAttr;
    break;
  case OpKind::EmbedClassical:
    OS << " @" << O.SymbolAttr
       << (O.EmbedAttr == EmbedKind::Xor ? ".xor" : ".sign");
    break;
  case OpKind::Call:
    if (O.AdjFlag)
      OS << " adj";
    if (!O.BasisAttr.empty())
      OS << " pred(" << O.BasisAttr.str() << ')';
    OS << " @" << O.SymbolAttr;
    break;
  case OpKind::FuncPred:
  case OpKind::CallableCtl:
    OS << " pred(" << O.BasisAttr.str() << ')';
    break;
  default:
    break;
  }
  if (!O.Operands.empty()) {
    OS << '(';
    for (unsigned I = 0; I < O.Operands.size(); ++I) {
      if (I)
        OS << ", ";
      if (O.Kind == OpKind::Gate && I == O.NumControls && O.NumControls)
        OS << "| ";
      OS << name(O.Operands[I]);
    }
    OS << ')';
  }
  if (!O.Results.empty()) {
    OS << " : ";
    for (unsigned I = 0; I < O.Results.size(); ++I) {
      if (I)
        OS << ", ";
      OS << O.Results[I].Ty.str();
    }
  }
  OS << '\n';
  for (const auto &R : O.Regions)
    printBlock(*R, Indent + 2);
}

void Printer::printBlock(const Block &B, unsigned Indent) {
  OS << std::string(Indent, ' ') << '(';
  for (unsigned I = 0; I < B.Args.size(); ++I) {
    if (I)
      OS << ", ";
    OS << name(&B.Args[I]) << ": " << B.Args[I].Ty.str();
  }
  OS << ") {\n";
  for (const auto &O : B.Ops)
    printOp(*O, Indent + 2);
  OS << std::string(Indent, ' ') << "}\n";
}

} // namespace

std::string Op::str() const {
  Printer P;
  P.printOp(*this, 0);
  return P.OS.str();
}

std::string IRFunction::str() const {
  Printer P;
  P.OS << "func @" << Name << " ";
  P.printBlock(Body, 0);
  return P.OS.str();
}

std::string Module::str() const {
  std::string S;
  for (const auto &F : Functions)
    S += F->str() + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

namespace {

class Verifier {
public:
  Verifier(DiagnosticEngine &Diags) : Diags(Diags) {}

  bool verify(const IRFunction &F) {
    FuncName = F.Name;
    FuncLoc = F.Loc;
    return verifyBlock(F.Body, OpKind::Ret);
  }

private:
  DiagnosticEngine &Diags;
  std::string FuncName;
  SourceLoc FuncLoc;

  bool fail(const std::string &Msg) {
    Diags.error(FuncLoc, "in function '" + FuncName + "': " + Msg);
    return false;
  }

  bool verifyBlock(const Block &B, OpKind ExpectedTerm) {
    if (B.Ops.empty())
      return fail("empty block");
    bool Ok = true;
    for (const auto &O : B.Ops) {
      bool IsLast = O.get() == B.Ops.back().get();
      bool IsTerm = O->Kind == OpKind::Ret || O->Kind == OpKind::Yield;
      if (IsTerm && !IsLast)
        Ok = fail("terminator in the middle of a block") && Ok;
      if (IsLast && O->Kind != ExpectedTerm)
        Ok = fail(std::string("expected block to end with ") +
                  opKindName(ExpectedTerm)) &&
             Ok;
      Ok = verifyOp(*O) && Ok;
    }
    // Linearity: every qubit-typed value defined in this block (or its args)
    // must be used exactly once *per execution path*. Uses inside different
    // regions of one scf.if are mutually exclusive and together count as a
    // single use (this arises from the Appendix C push-down pattern).
    auto RegionPath = [&](Op *User) {
      // Rebundling ops (qbpack/qbid) forward their operand without quantum
      // effect; when such an op's single bundle is consumed exactly once,
      // the *consumer's* region decides exclusivity. (The canonicalizer
      // hoists packs above scf.if forks, leaving the pack at top level
      // while each branch consumes the bundle — Appendix C.)
      unsigned Hops = 0;
      while ((User->Kind == OpKind::QbPack || User->Kind == OpKind::QbId) &&
             User->numResults() == 1 && User->result(0)->hasOneUse() &&
             Hops++ < 1000)
        User = User->result(0)->singleUser();
      // Chain of (region-op, region index) from outermost to the user.
      std::vector<std::pair<const Op *, unsigned>> Path;
      Block *Cur = User->ParentBlock;
      while (Cur && Cur->ParentOp) {
        Op *Parent = Cur->ParentOp;
        unsigned Idx = 0;
        for (unsigned I = 0; I < Parent->Regions.size(); ++I)
          if (Parent->Regions[I].get() == Cur)
            Idx = I;
        Path.push_back({Parent, Idx});
        Cur = Parent->ParentBlock;
      }
      std::reverse(Path.begin(), Path.end());
      return Path;
    };
    auto CheckLinear = [&](const Value &V) {
      if (!V.Ty.isLinear())
        return true;
      if (V.Uses.size() == 1)
        return true;
      if (V.Uses.empty())
        return fail("linear value is never used");
      // Multiple uses: every pair must diverge at different regions of a
      // common ancestor op (exclusive branches).
      std::vector<std::vector<std::pair<const Op *, unsigned>>> Paths;
      for (auto [User, Idx] : V.Uses) {
        (void)Idx;
        Paths.push_back(RegionPath(User));
      }
      for (unsigned A = 0; A < Paths.size(); ++A)
        for (unsigned C = A + 1; C < Paths.size(); ++C) {
          const auto &PA = Paths[A];
          const auto &PC = Paths[C];
          bool Exclusive = false;
          for (unsigned D = 0; D < std::min(PA.size(), PC.size()); ++D) {
            if (PA[D].first != PC[D].first)
              break;
            if (PA[D].second != PC[D].second) {
              Exclusive = true;
              break;
            }
          }
          if (!Exclusive)
            return fail("linear value has multiple non-exclusive uses");
        }
      return true;
    };
    for (const Value &Arg : B.Args)
      Ok = CheckLinear(Arg) && Ok;
    for (const auto &O : B.Ops)
      for (const Value &R : O->Results)
        Ok = CheckLinear(R) && Ok;
    return Ok;
  }

  bool verifyOp(const Op &O) {
    bool Ok = true;
    switch (O.Kind) {
    case OpKind::QbTrans: {
      const Value *In = O.Operands.at(0);
      if (!In->Ty.isQBundle())
        return fail("qbtrans operand must be a qbundle");
      if (O.BasisAttr.dim() != In->Ty.dim() ||
          O.BasisAttr2.dim() != In->Ty.dim())
        return fail("qbtrans basis dimension mismatch");
      break;
    }
    case OpKind::QbMeas:
      if (O.BasisAttr.dim() != O.Operands.at(0)->Ty.dim())
        return fail("qbmeas basis dimension mismatch");
      break;
    case OpKind::QbPack:
      for (const Value *V : O.Operands)
        if (!V->Ty.isQubit())
          Ok = fail("qbpack operands must be qubits") && Ok;
      break;
    case OpKind::Gate: {
      for (const Value *V : O.Operands)
        if (!V->Ty.isQubit())
          Ok = fail("gate operands must be qubits") && Ok;
      unsigned Targets = O.Operands.size() - O.NumControls;
      unsigned Expected = O.GateAttr == GateKind::Swap ? 2 : 1;
      if (Targets != Expected)
        Ok = fail("gate has wrong target count") && Ok;
      break;
    }
    case OpKind::Lambda:
      if (O.Regions.size() != 1)
        return fail("lambda must have one region");
      Ok = verifyBlock(*O.Regions[0], OpKind::Yield) && Ok;
      break;
    case OpKind::If:
      if (O.Regions.size() != 2)
        return fail("if must have two regions");
      if (!O.Operands.at(0)->Ty.isI1())
        Ok = fail("if condition must be i1") && Ok;
      Ok = verifyBlock(*O.Regions[0], OpKind::Yield) && Ok;
      Ok = verifyBlock(*O.Regions[1], OpKind::Yield) && Ok;
      break;
    default:
      break;
    }
    return Ok;
  }
};

} // namespace

bool asdf::verifyFunction(const IRFunction &F, DiagnosticEngine &Diags) {
  Verifier V(Diags);
  return V.verify(F);
}

bool asdf::verifyModule(const Module &M, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const auto &F : M.Functions)
    Ok = verifyFunction(*F, Diags) && Ok;
  return Ok;
}
