//===- IR.h - SSA IR infrastructure for Qwerty IR and QCircuit IR ---------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact MLIR-like SSA IR shared by the two dialects of the paper:
///
///  - **Qwerty IR** (§5): qbundle/bitbundle types; qbprep, qbtrans, qbmeas,
///    qbdiscard[z], qb(un)pack, bit(un)pack ops; func_const/func_adj/
///    func_pred/call/call_indirect/lambda for the functional structure; and
///    an scf.if analog for classically-conditioned function values.
///
///  - **QCircuit IR** (§6): qubit type; qalloc/qfree/qfreez/gate/measure
///    ops; callable ops mirroring QIR's callable intrinsics.
///
/// Quantum instructions have no side effects: qubits flow through ops, so
/// dependencies are explicit and passes are DAG-to-DAG rewrites, exactly as
/// the paper describes. Values of qubit/qbundle type are linear (exactly one
/// use); the verifier enforces this.
///
/// For pragmatism, ops are a single class with an OpKind discriminator and a
/// union-of-attributes, rather than one subclass per op: the adjoint,
/// predication, cloning, and printing machinery all want uniform access.
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_IR_IR_H
#define ASDF_IR_IR_H

#include "basis/Basis.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace asdf {

class Op;
class Block;
class IRFunction;
class Module;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// A type in either dialect, encoded flat.
class IRType {
public:
  enum class Kind {
    Invalid,
    QBundle,   ///< Tuple of N qubits (Qwerty IR).
    BitBundle, ///< Tuple of N bits (Qwerty IR).
    Qubit,     ///< A single qubit (QCircuit IR).
    I1,        ///< A single classical bit (QCircuit / MLIR builtin).
    F64,       ///< Phase angle.
    Func,      ///< Function value (reversible or not).
  };
  /// Data kind of a Func's input/output.
  enum class Data { Unit, QBundle, BitBundle };

  IRType() = default;

  static IRType qbundle(unsigned Dim) { return IRType(Kind::QBundle, Dim); }
  static IRType bitbundle(unsigned Dim) {
    return IRType(Kind::BitBundle, Dim);
  }
  static IRType qubit() { return IRType(Kind::Qubit, 1); }
  static IRType i1() { return IRType(Kind::I1, 1); }
  static IRType f64() { return IRType(Kind::F64, 0); }
  static IRType func(Data In, unsigned InDim, Data Out, unsigned OutDim,
                     bool Rev) {
    IRType T(Kind::Func, 0);
    T.In = In;
    T.InDim = InDim;
    T.Out = Out;
    T.OutDim = OutDim;
    T.Rev = Rev;
    return T;
  }
  static IRType revFunc(unsigned Dim) {
    return func(Data::QBundle, Dim, Data::QBundle, Dim, /*Rev=*/true);
  }

  Kind kind() const { return TheKind; }
  bool isInvalid() const { return TheKind == Kind::Invalid; }
  bool isQBundle() const { return TheKind == Kind::QBundle; }
  bool isBitBundle() const { return TheKind == Kind::BitBundle; }
  bool isQubit() const { return TheKind == Kind::Qubit; }
  bool isI1() const { return TheKind == Kind::I1; }
  bool isF64() const { return TheKind == Kind::F64; }
  bool isFunc() const { return TheKind == Kind::Func; }

  /// Linear values must be consumed exactly once (qubits and qbundles).
  bool isLinear() const { return isQBundle() || isQubit(); }

  unsigned dim() const {
    assert((isQBundle() || isBitBundle()) && "type has no dimension");
    return Dim;
  }

  Data funcIn() const {
    assert(isFunc());
    return In;
  }
  Data funcOut() const {
    assert(isFunc());
    return Out;
  }
  unsigned funcInDim() const {
    assert(isFunc());
    return InDim;
  }
  unsigned funcOutDim() const {
    assert(isFunc());
    return OutDim;
  }
  bool isRevFunc() const { return isFunc() && Rev; }

  bool operator==(const IRType &O) const {
    if (TheKind != O.TheKind)
      return false;
    if (TheKind == Kind::Func)
      return In == O.In && InDim == O.InDim && Out == O.Out &&
             OutDim == O.OutDim && Rev == O.Rev;
    return Dim == O.Dim;
  }
  bool operator!=(const IRType &O) const { return !(*this == O); }

  std::string str() const;

private:
  IRType(Kind K, unsigned Dim) : TheKind(K), Dim(Dim) {}

  Kind TheKind = Kind::Invalid;
  unsigned Dim = 0;
  Data In = Data::Unit, Out = Data::Unit;
  unsigned InDim = 0, OutDim = 0;
  bool Rev = false;
};

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

/// An SSA value: either an op result or a block argument. Values have stable
/// addresses (owned in deques) so Value* is used everywhere.
class Value {
public:
  IRType Ty;
  Op *DefOp = nullptr;       ///< Defining op; null for block arguments.
  Block *DefBlock = nullptr; ///< Owning block for block arguments.
  unsigned Index = 0;        ///< Result/argument index.
  /// Uses of this value as (user op, operand index).
  std::vector<std::pair<Op *, unsigned>> Uses;

  bool isBlockArg() const { return DefOp == nullptr; }
  bool hasOneUse() const { return Uses.size() == 1; }
  unsigned numUses() const { return Uses.size(); }
  Op *singleUser() const {
    assert(hasOneUse());
    return Uses.front().first;
  }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);
};

//===----------------------------------------------------------------------===//
// Attributes
//===----------------------------------------------------------------------===//

/// Quantum gate kinds in QCircuit IR. Controls are expressed by the op's
/// NumControls operand split, not by separate gate kinds, matching
/// `gate G [%c...] %t...` in the paper.
enum class GateKind {
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  P,  ///< Relative phase shift P(theta) = diag(1, e^{i theta}).
  RX, ///< Rotation gates (parameterized).
  RY,
  RZ,
  Swap, ///< Two targets.
};

const char *gateKindName(GateKind K);

/// Returns the adjoint gate kind; P/R gates also negate their parameter.
GateKind adjointGateKind(GateKind K);

/// True if the gate is self-adjoint (Hermitian).
bool isHermitianGate(GateKind K);

/// Degrees -> radians for gate angles. Every path that converts a rotation
/// angle (literal lowering and symbolic bind alike) goes through this one
/// function, so bound results match recompiled results bitwise.
inline double degreesToRadians(double Deg) {
  return Deg * (M_PI / 180.0);
}

/// A gate rotation angle: either a concrete value in radians or a linear
/// function of one named module parameter (`Scale * param + Offset`).
///
/// Symbolic coefficients are kept in the *source* unit (degrees) and the
/// degrees->radians conversion happens as the final step of eval(). This
/// ordering exactly mirrors the non-parametric path — which folds the
/// linear expression over a literal angle in degrees and then converts —
/// so binding a parameter produces bit-identical doubles to recompiling
/// with the literal substituted.
struct GateParam {
  /// Concrete: the angle in radians. Symbolic: additive term in degrees.
  double Offset = 0.0;
  /// Symbolic: multiplier of the parameter value (degrees per unit).
  double Scale = 1.0;
  /// Parameter index into Module::FloatParams, or -1 for concrete.
  int Index = -1;

  GateParam() = default;
  /// Implicit from a concrete radians value (keeps `gate(..., theta)`
  /// call sites working unchanged).
  GateParam(double Radians) : Offset(Radians) {}
  static GateParam symbolic(int Index, double ScaleDeg, double OffsetDeg) {
    GateParam P;
    P.Index = Index;
    P.Scale = ScaleDeg;
    P.Offset = OffsetDeg;
    return P;
  }

  bool isSymbolic() const { return Index >= 0; }

  /// The concrete radians value; symbolic params must be bound first.
  double concrete() const {
    assert(!isSymbolic() && "unbound symbolic gate parameter");
    return Offset;
  }

  /// Evaluates against parameter values (degrees), returning radians.
  double eval(const std::vector<double> &Vals) const {
    if (!isSymbolic())
      return Offset;
    assert(static_cast<size_t>(Index) < Vals.size());
    return degreesToRadians(Scale * Vals[Index] + Offset);
  }

  /// The adjoint parameter. Negating both coefficients is exact in IEEE
  /// arithmetic, so adjoint-then-bind equals bind-then-negate bitwise.
  GateParam negated() const {
    GateParam P = *this;
    P.Offset = -P.Offset;
    P.Scale = -P.Scale;
    return P;
  }
};

/// Kind of classical-function embedding (§6.4).
enum class EmbedKind {
  Xor, ///< Bennett embedding U_f|x>|y> = |x>|y ^ f(x)>.
  Sign ///< Phase oracle U'_f|x> = (-1)^{f(x)}|x>.
};

//===----------------------------------------------------------------------===//
// Ops
//===----------------------------------------------------------------------===//

/// Every operation of both dialects.
enum class OpKind {
  // Qwerty IR (§5).
  QbPrep,     ///< Prepare a qbundle in a primitive-basis eigenstate.
  QbPack,     ///< N qubits -> qbundle[N].
  QbUnpack,   ///< qbundle[N] -> N qubits.
  QbTrans,    ///< Basis translation on a qbundle.
  QbMeas,     ///< Measure a qbundle in a basis.
  QbDiscard,  ///< Reset and free a qbundle.
  QbDiscardZ, ///< Free a qbundle assumed |0...0>.
  QbId,       ///< Identity on a qbundle (lowered away; kept for lambdas).
  BitPack,    ///< N i1 -> bitbundle[N].
  BitUnpack,  ///< bitbundle[N] -> N i1.
  BitConst,   ///< Constant bitbundle.
  ConstF,     ///< Constant f64 (stationary classical op, Fig. 4).
  EmbedClassical, ///< f.xor / f.sign placeholder until synthesis (§6.4).
  FuncConst,  ///< Reference to a symbol as a function value.
  FuncAdj,    ///< Adjointed function value.
  FuncPred,   ///< Predicated function value.
  Call,       ///< Direct call; may be marked adj and/or pred (§5).
  CallIndirect, ///< Call of a function value.
  Lambda,     ///< Anonymous function (region); lifted to a func (§5.4).
  If,         ///< scf.if analog: i1 cond, two regions yielding values.
  Ret,        ///< Function terminator.
  Yield,      ///< Region terminator.
  // QCircuit IR (§6).
  QAlloc,   ///< Allocate a qubit.
  QFree,    ///< Reset and free.
  QFreeZ,   ///< Free, assuming |0>.
  Gate,     ///< gate G [controls] targets.
  Measure1, ///< Measure one qubit: (qubit) -> (qubit, i1).
  // QIR callable support (§6, §7).
  CallableCreate, ///< Make a callable value from a symbol.
  CallableAdj,    ///< Callable with adjoint flag toggled.
  CallableCtl,    ///< Callable with controls added.
  CallableInvoke, ///< Invoke a callable value.
};

const char *opKindName(OpKind K);

/// One operation. Operands refer to Values; results are owned here.
class Op {
public:
  OpKind Kind;

  //===--- Attributes (meaning depends on Kind) ---===//
  Basis BasisAttr;   ///< QbTrans in-basis; QbMeas/FuncPred/Call pred basis.
  Basis BasisAttr2;  ///< QbTrans out-basis.
  PrimitiveBasis PrimAttr = PrimitiveBasis::Std; ///< QbPrep.
  bool MinusAttr = false;                        ///< QbPrep eigenstate.
  unsigned DimAttr = 0;      ///< QbPrep/QbId dim.
  GateKind GateAttr = GateKind::X;
  double FloatAttr = 0.0;    ///< ConstF value.
  GateParam ParamAttr;       ///< Gate parameter (concrete or symbolic).
  unsigned NumControls = 0;  ///< Gate/CallableCtl control count.
  std::string SymbolAttr;    ///< FuncConst/Call/CallableCreate symbol;
                             ///< EmbedClassical classical function name.
  bool AdjFlag = false;      ///< Call: adjoint call; EmbedClassical unused.
  EmbedKind EmbedAttr = EmbedKind::Xor;
  std::vector<bool> BitsAttr; ///< BitConst bits.

  //===--- Structure ---===//
  std::vector<Value *> Operands;
  std::deque<Value> Results;
  std::vector<std::unique_ptr<Block>> Regions; ///< Lambda: 1; If: 2.

  Block *ParentBlock = nullptr;
  std::list<std::unique_ptr<Op>>::iterator Iter; ///< Position in parent.

  ~Op();

  /// Creates a detached op (no parent); the builder inserts it.
  static std::unique_ptr<Op> create(OpKind Kind,
                                    const std::vector<Value *> &Operands,
                                    const std::vector<IRType> &ResultTypes);

  Value *result(unsigned I = 0) {
    assert(I < Results.size());
    return &Results[I];
  }
  unsigned numResults() const { return Results.size(); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size());
    return Operands[I];
  }
  unsigned numOperands() const { return Operands.size(); }

  /// Replaces operand \p I, maintaining use lists.
  void setOperand(unsigned I, Value *V);
  /// Appends an operand, maintaining use lists.
  void addOperand(Value *V);
  /// Drops all operands (removing this op from their use lists).
  void dropOperands();

  /// Unlinks and destroys this op. All results must be unused.
  void erase();

  /// True for ops with no quantum or external effect whose results can be
  /// dead-code-eliminated when unused.
  bool isPure() const;

  /// True for "stationary" classical ops that stay in place when a block is
  /// adjointed or predicated (§5.2, §5.3).
  bool isStationary() const;

  std::string str() const;

private:
  Op() = default;
};

//===----------------------------------------------------------------------===//
// Blocks, functions, modules
//===----------------------------------------------------------------------===//

/// A single basic block (function bodies and op regions are single-block,
/// which Qwerty guarantees after AST lowering).
class Block {
public:
  std::deque<Value> Args;
  std::list<std::unique_ptr<Op>> Ops;
  Op *ParentOp = nullptr;           ///< For lambda/if regions.
  IRFunction *ParentFunc = nullptr; ///< For function bodies.

  Value *addArg(IRType Ty) {
    Args.emplace_back();
    Value &V = Args.back();
    V.Ty = Ty;
    V.DefBlock = this;
    V.Index = Args.size() - 1;
    return &V;
  }
  Value *arg(unsigned I) {
    assert(I < Args.size());
    return &Args[I];
  }
  unsigned numArgs() const { return Args.size(); }

  bool empty() const { return Ops.empty(); }
  Op *terminator() {
    assert(!Ops.empty() && "block has no terminator");
    return Ops.back().get();
  }

  /// Inserts \p NewOp before \p Before (or at the end if null).
  Op *insert(std::unique_ptr<Op> NewOp, Op *Before = nullptr);
};

/// A function in the module: a name, a signature, and a single-block body.
class IRFunction {
public:
  std::string Name;
  Block Body;
  std::vector<IRType> ResultTypes;
  /// True if the body contains only reversible ops (computed on demand).
  bool IsLambdaLifted = false;
  /// Classical-function defs referenced by EmbedClassical are not IR
  /// functions; this marks compiler-generated specializations (§6.2).
  bool IsSpecialization = false;
  /// Source location of the kernel this function was lowered from (or of
  /// the kernel a lifted lambda / generated specialization derives from),
  /// so mid-pipeline failures can point back at the offending source.
  SourceLoc Loc;

  IRFunction(std::string Name) : Name(std::move(Name)) {
    Body.ParentFunc = this;
  }

  IRType type() const;
  std::string str() const;
};

/// A module: an ordered list of functions plus a symbol table.
class Module {
public:
  std::vector<std::unique_ptr<IRFunction>> Functions;

  /// Names of the module's float parameters (`$name` placeholders), in
  /// first-occurrence order. Symbolic GateParam::Index values index here.
  /// Empty for non-parametric programs.
  std::vector<std::string> FloatParams;

  IRFunction *lookup(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
  IRFunction *create(const std::string &Name) {
    Functions.push_back(std::make_unique<IRFunction>(Name));
    return Functions.back().get();
  }
  /// Creates a function with a fresh name derived from \p Base.
  IRFunction *createUnique(const std::string &Base);

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

/// Creates ops at an insertion point, like mlir::OpBuilder.
class Builder {
public:
  explicit Builder(Block *B) : InsertBlock(B) {}
  Builder(Block *B, Op *Before) : InsertBlock(B), InsertBefore(Before) {}

  Block *block() const { return InsertBlock; }
  void setInsertionPoint(Block *B, Op *Before = nullptr) {
    InsertBlock = B;
    InsertBefore = Before;
  }

  Op *insert(std::unique_ptr<Op> NewOp) {
    return InsertBlock->insert(std::move(NewOp), InsertBefore);
  }
  Op *createOp(OpKind Kind, const std::vector<Value *> &Operands,
               const std::vector<IRType> &ResultTypes) {
    return insert(Op::create(Kind, Operands, ResultTypes));
  }

  //===--- Qwerty dialect helpers ---===//
  Value *qbprep(PrimitiveBasis Prim, bool Minus, unsigned Dim);
  Value *qbpack(const std::vector<Value *> &Qubits);
  std::vector<Value *> qbunpack(Value *Bundle);
  Value *qbtrans(Value *Bundle, Basis In, Basis Out);
  Value *qbmeas(Value *Bundle, Basis B);
  void qbdiscard(Value *Bundle);
  void qbdiscardz(Value *Bundle);
  Value *qbid(Value *Bundle);
  Value *bitpack(const std::vector<Value *> &Bits);
  std::vector<Value *> bitunpack(Value *Bundle);
  Value *bitconst(const std::vector<bool> &Bits);
  Value *constf(double V);
  Value *embedClassical(Value *Bundle, const std::string &Func,
                        EmbedKind Kind);
  Value *funcConst(const std::string &Symbol, IRType FuncTy);
  Value *funcAdj(Value *Func);
  Value *funcPred(Value *Func, Basis Pred);
  /// Direct call, optionally adjoint and/or predicated.
  std::vector<Value *> call(IRFunction *Callee, const std::vector<Value *> &
                                                    Args,
                            bool Adj = false, Basis Pred = Basis());
  std::vector<Value *> callIndirect(Value *Func,
                                    const std::vector<Value *> &Args);
  /// Creates a lambda op; the caller populates op->Regions[0].
  Op *lambda(IRType FuncTy);
  /// Creates an if op; the caller populates both regions.
  Op *ifOp(Value *Cond, const std::vector<IRType> &ResultTypes);
  void ret(const std::vector<Value *> &Values);
  void yield(const std::vector<Value *> &Values);

  //===--- QCircuit dialect helpers ---===//
  Value *qalloc();
  void qfree(Value *Q);
  void qfreez(Value *Q);
  /// gate G [controls] targets; returns new control+target values in order.
  std::vector<Value *> gate(GateKind G, const std::vector<Value *> &Controls,
                            const std::vector<Value *> &Targets,
                            GateParam Param = GateParam());
  /// Measure one qubit: returns (new qubit, i1 result).
  std::pair<Value *, Value *> measure1(Value *Q);
  Value *callableCreate(const std::string &Symbol, IRType FuncTy);
  Value *callableAdj(Value *C);
  Value *callableCtl(Value *C, Basis Pred);
  std::vector<Value *> callableInvoke(Value *C,
                                      const std::vector<Value *> &Args);

private:
  Block *InsertBlock;
  Op *InsertBefore = nullptr;
};

//===----------------------------------------------------------------------===//
// Cloning and verification
//===----------------------------------------------------------------------===//

/// Maps original values to replacement values while cloning.
using ValueMap = std::map<Value *, Value *>;

/// Clones \p Source (attributes and regions included), remapping operands
/// through \p Map, inserting via \p B. Results of the clone are recorded in
/// \p Map.
Op *cloneOp(Builder &B, Op *Source, ValueMap &Map);

/// Clones every op of \p Source into the insertion point of \p B, remapping
/// through \p Map (seed it with arg mappings). Stops before the terminator
/// if \p SkipTerminator.
void cloneBlockBody(Builder &B, Block &Source, ValueMap &Map,
                    bool SkipTerminator = true);

/// Deep-copies an entire module: functions, signatures, flags, bodies. The
/// artifact cache uses this to preserve the Qwerty IR while the destructive
/// QCircuit conversion runs on the copy.
std::unique_ptr<Module> cloneModule(const Module &M);

/// Verifies structural invariants: operand/result types, linear use of
/// qubit-typed values, terminator placement. Reports problems to \p Diags.
bool verifyModule(const Module &M, DiagnosticEngine &Diags);
bool verifyFunction(const IRFunction &F, DiagnosticEngine &Diags);

} // namespace asdf

#endif // ASDF_IR_IR_H
