//===- ReversibleSynth.h - Classical-to-reversible synthesis (§6.4) -------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes reversible circuits from logic networks — the tweedledum
/// substitute. XOR cones are computed in place with CNOT chains (no
/// ancillas, the property that makes Asdf's oracles cheaper than Quipper's
/// per §8.3); n-ary AND cones become multi-controlled X gates, with one
/// compute/uncompute ancilla per interior AND node.
///
/// Two embeddings are provided (§6.4):
///  - XOR (Bennett): U_f |x>|y> = |x>|y ^ f(x)>
///  - sign: U'_f |x> = (-1)^{f(x)} |x>, built by feeding a |-> ancilla to
///    the XOR embedding (which the relaxed peephole of Fig. 10 later turns
///    into a multi-controlled Z).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_CLASSICAL_REVERSIBLESYNTH_H
#define ASDF_CLASSICAL_REVERSIBLESYNTH_H

#include "classical/LogicNetwork.h"
#include "synth/GateEmitter.h"

#include <vector>

namespace asdf {

/// Emits the Bennett embedding of \p Net: inputs live on wires \p InWires,
/// outputs are XORed onto wires \p OutWires. Every emitted write to an
/// output wire is additionally controlled on \p PredControls (ancilla
/// compute/uncompute stays unconditional, as it cancels outside the
/// predicate span). Returns false on malformed networks.
bool emitXorEmbedding(GateEmitter &E, const LogicNetwork &Net,
                      const std::vector<unsigned> &InWires,
                      const std::vector<unsigned> &OutWires,
                      const std::vector<ControlSpec> &PredControls);

/// Emits the sign form U'_f for a single-output network on \p InWires.
bool emitSignEmbedding(GateEmitter &E, const LogicNetwork &Net,
                       const std::vector<unsigned> &InWires,
                       const std::vector<ControlSpec> &PredControls);

} // namespace asdf

#endif // ASDF_CLASSICAL_REVERSIBLESYNTH_H
