//===- ReversibleSynth.cpp - Classical-to-reversible synthesis (§6.4) -----===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classical/ReversibleSynth.h"

#include <map>

using namespace asdf;

namespace {

/// A recorded compute-phase gate, replayed in reverse to uncompute.
struct LoggedGate {
  std::vector<ControlSpec> Controls;
  unsigned Target;
};

class Synthesizer {
public:
  Synthesizer(GateEmitter &E, const LogicNetwork &Net,
              const std::vector<unsigned> &InWires,
              const std::vector<ControlSpec> &PredControls)
      : E(E), Net(Net), InWires(InWires), PredControls(PredControls) {}

  bool run(const std::vector<unsigned> &OutWires);

private:
  GateEmitter &E;
  const LogicNetwork &Net;
  const std::vector<unsigned> &InWires;
  const std::vector<ControlSpec> &PredControls;

  /// Wires holding computed interior node values.
  std::map<uint32_t, unsigned> NodeWire;
  /// Scratch wires computed for XOR-combination fanins (node -> wire).
  std::vector<LoggedGate> ComputeLog;
  std::vector<unsigned> Ancillas;

  void logGate(const std::vector<ControlSpec> &Controls, unsigned Target) {
    E.gateCtl(GateKind::X, Controls, {Target});
    ComputeLog.push_back({Controls, Target});
  }

  /// Flattens a signal into XOR leaves (PI or And nodes) plus a constant
  /// parity.
  void flattenXor(Signal S, std::vector<uint32_t> &Leaves, bool &Parity) {
    if (S.Inverted)
      Parity = !Parity;
    const LogicNode &N = Net.node(S.Node);
    if (N.TheKind == LogicNode::Kind::ConstFalse)
      return;
    if (N.TheKind == LogicNode::Kind::Xor) {
      flattenXor(N.Fanins[0], Leaves, Parity);
      flattenXor(N.Fanins[1], Leaves, Parity);
      return;
    }
    Leaves.push_back(S.Node);
  }

  /// Ensures node \p Id's value is available on a wire; computes AND cones
  /// into ancillas on demand. Returns the wire.
  unsigned materializeNode(uint32_t Id) {
    const LogicNode &N = Net.node(Id);
    if (N.TheKind == LogicNode::Kind::PrimaryInput)
      return InWires[N.InputIndex];
    auto It = NodeWire.find(Id);
    if (It != NodeWire.end())
      return It->second;
    unsigned Wire = 0;
    if (N.TheKind == LogicNode::Kind::And) {
      Wire = computeInto(Id);
    } else {
      // An XOR node used as an AND fanin: compute the combination onto a
      // scratch ancilla with CNOTs.
      Wire = E.allocAncilla();
      Ancillas.push_back(Wire);
      std::vector<uint32_t> Leaves;
      bool Parity = false;
      flattenXor(Signal(Id, false), Leaves, Parity);
      for (uint32_t Leaf : Leaves)
        logGate({ControlSpec(materializeNode(Leaf))}, Wire);
      if (Parity)
        logGate({}, Wire);
    }
    NodeWire[Id] = Wire;
    return Wire;
  }

  /// Computes an AND node into a fresh ancilla via one MCX.
  unsigned computeInto(uint32_t Id) {
    const LogicNode &N = Net.node(Id);
    std::vector<ControlSpec> Controls;
    for (Signal Fanin : N.Fanins)
      Controls.push_back(
          ControlSpec(materializeNode(Fanin.Node), Fanin.Inverted));
    unsigned Wire = E.allocAncilla();
    Ancillas.push_back(Wire);
    logGate(Controls, Wire);
    return Wire;
  }

  /// Emits the (predicated) write of signal \p S onto output wire \p Out.
  bool emitOutput(Signal S, unsigned Out) {
    std::vector<uint32_t> Leaves;
    bool Parity = false;
    flattenXor(S, Leaves, Parity);

    // Ancilla-free fast path: a single AND leaf becomes one MCX straight
    // onto the output (the Grover/Deutsch-Jozsa oracle shape).
    if (Leaves.size() == 1 &&
        Net.node(Leaves[0]).TheKind == LogicNode::Kind::And &&
        !NodeWire.count(Leaves[0])) {
      const LogicNode &N = Net.node(Leaves[0]);
      bool Simple = true;
      for (Signal Fanin : N.Fanins)
        Simple = Simple && Net.node(Fanin.Node).TheKind ==
                               LogicNode::Kind::PrimaryInput;
      if (Simple) {
        std::vector<ControlSpec> Controls = PredControls;
        for (Signal Fanin : N.Fanins)
          Controls.push_back(ControlSpec(
              InWires[Net.node(Fanin.Node).InputIndex], Fanin.Inverted));
        E.gateCtl(GateKind::X, Controls, {Out});
        if (Parity)
          E.gateCtl(GateKind::X, PredControls, {Out});
        return true;
      }
    }

    for (uint32_t Leaf : Leaves) {
      std::vector<ControlSpec> Controls = PredControls;
      Controls.push_back(ControlSpec(materializeNode(Leaf)));
      E.gateCtl(GateKind::X, Controls, {Out});
    }
    if (Parity)
      E.gateCtl(GateKind::X, PredControls, {Out});
    return true;
  }
};

bool Synthesizer::run(const std::vector<unsigned> &OutWires) {
  if (OutWires.size() != Net.numOutputs())
    return false;
  for (unsigned I = 0; I < OutWires.size(); ++I)
    if (!emitOutput(Net.outputs()[I], OutWires[I]))
      return false;
  // Uncompute ancillas by replaying the compute log in reverse, then free.
  for (auto It = ComputeLog.rbegin(); It != ComputeLog.rend(); ++It)
    E.gateCtl(GateKind::X, It->Controls, {It->Target});
  for (auto It = Ancillas.rbegin(); It != Ancillas.rend(); ++It)
    E.freeAncillaZ(*It);
  return true;
}

} // namespace

bool asdf::emitXorEmbedding(GateEmitter &E, const LogicNetwork &Net,
                            const std::vector<unsigned> &InWires,
                            const std::vector<unsigned> &OutWires,
                            const std::vector<ControlSpec> &PredControls) {
  if (InWires.size() != Net.numInputs())
    return false;
  Synthesizer S(E, Net, InWires, PredControls);
  return S.run(OutWires);
}

bool asdf::emitSignEmbedding(GateEmitter &E, const LogicNetwork &Net,
                             const std::vector<unsigned> &InWires,
                             const std::vector<ControlSpec> &PredControls) {
  if (Net.numOutputs() != 1)
    return false;
  // Feed a |-> ancilla to the XOR embedding (§6.4); the relaxed peephole of
  // Fig. 10 later rewrites MCX-onto-|-> as a multi-controlled Z.
  unsigned Target = E.allocAncilla();
  E.gate(GateKind::X, {}, {Target});
  E.gate(GateKind::H, {}, {Target});
  bool Ok = emitXorEmbedding(E, Net, InWires, {Target}, PredControls);
  E.gate(GateKind::H, {}, {Target});
  E.gate(GateKind::X, {}, {Target});
  E.freeAncillaZ(Target);
  return Ok;
}
