//===- LogicNetwork.h - Classical logic network (mockturtle substitute) ---===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An XAG-style (XOR-AND graph) logic network standing in for mockturtle
/// (§6.4). `classical` function bodies are compiled into this network,
/// optimized (constant propagation, structural hashing, AND/XOR-tree
/// flattening), and then synthesized into reversible circuits by
/// ReversibleSynth (the tweedledum substitute).
///
/// Signals are node ids with a complement flag, so NOT is free. AND nodes
/// are n-ary (AND trees are flattened), which lets the synthesizer emit one
/// multi-controlled X per AND cone — the behavior that makes Tweedledum's
/// oracles ancilla-lean compared with Quipper's (§8.3).
///
//===----------------------------------------------------------------------===//

#ifndef ASDF_CLASSICAL_LOGICNETWORK_H
#define ASDF_CLASSICAL_LOGICNETWORK_H

#include "ast/AST.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace asdf {

/// A possibly-complemented reference to a logic node.
struct Signal {
  uint32_t Node = 0; ///< Node index; node 0 is constant false.
  bool Inverted = false;

  Signal() = default;
  Signal(uint32_t Node, bool Inverted) : Node(Node), Inverted(Inverted) {}

  Signal operator!() const { return Signal(Node, !Inverted); }
  bool operator==(const Signal &O) const {
    return Node == O.Node && Inverted == O.Inverted;
  }
  bool operator<(const Signal &O) const {
    return std::tie(Node, Inverted) < std::tie(O.Node, O.Inverted);
  }
};

/// One node of the network.
struct LogicNode {
  enum class Kind {
    ConstFalse, ///< Node 0 only.
    PrimaryInput,
    Xor, ///< Binary XOR of Fanins[0], Fanins[1].
    And, ///< N-ary AND of Fanins.
  };
  Kind TheKind = Kind::ConstFalse;
  std::vector<Signal> Fanins;
  unsigned InputIndex = 0; ///< For PrimaryInput.
};

/// The XOR-AND network.
class LogicNetwork {
public:
  LogicNetwork() {
    Nodes.push_back(LogicNode()); // node 0 = constant false
  }

  Signal constSignal(bool Value) { return Signal(0, Value); }
  Signal addInput() {
    LogicNode N;
    N.TheKind = LogicNode::Kind::PrimaryInput;
    N.InputIndex = NumInputs++;
    Nodes.push_back(std::move(N));
    return Signal(Nodes.size() - 1, false);
  }

  /// Builds XOR with constant folding and structural hashing.
  Signal makeXor(Signal A, Signal B);
  /// Builds binary AND (flattening nested ANDs into n-ary nodes) with
  /// constant folding and structural hashing.
  Signal makeAnd(Signal A, Signal B);
  Signal makeOr(Signal A, Signal B) { return !makeAnd(!A, !B); }
  Signal makeNot(Signal A) { return !A; }

  void addOutput(Signal S) { Outputs.push_back(S); }

  unsigned numInputs() const { return NumInputs; }
  unsigned numOutputs() const { return Outputs.size(); }
  const std::vector<Signal> &outputs() const { return Outputs; }
  const LogicNode &node(uint32_t Id) const { return Nodes[Id]; }
  unsigned numNodes() const { return Nodes.size(); }

  /// Counts AND nodes (the expensive ones quantumly: each needs Toffolis).
  unsigned numAndNodes() const;

  /// Evaluates the network on a concrete input (bit 0 = input 0).
  std::vector<bool> evaluate(const std::vector<bool> &Inputs) const;

  std::string str() const;

private:
  std::vector<LogicNode> Nodes;
  std::vector<Signal> Outputs;
  unsigned NumInputs = 0;
  /// Structural hashing tables.
  std::map<std::pair<Signal, Signal>, Signal> XorCache;
  std::map<std::vector<Signal>, Signal> AndCache;
};

/// Compiles a checked `classical` FunctionDef into a logic network. Inputs
/// are the function's (uncaptured, post-expansion) parameters concatenated
/// left to right. Returns std::nullopt on unsupported constructs.
std::optional<LogicNetwork> buildLogicNetwork(const FunctionDef &F,
                                              DiagnosticEngine &Diags);

} // namespace asdf

#endif // ASDF_CLASSICAL_LOGICNETWORK_H
