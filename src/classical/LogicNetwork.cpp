//===- LogicNetwork.cpp - Classical logic network --------------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classical/LogicNetwork.h"

#include <algorithm>
#include <sstream>

using namespace asdf;

Signal LogicNetwork::makeXor(Signal A, Signal B) {
  // Constant folding.
  if (A.Node == 0)
    return A.Inverted ? !B : B;
  if (B.Node == 0)
    return B.Inverted ? !A : A;
  if (A.Node == B.Node)
    return constSignal(A.Inverted != B.Inverted);
  // Normalize: propagate complements out (a ^ !b == !(a ^ b)), order fanins.
  bool Out = A.Inverted != B.Inverted;
  A.Inverted = false;
  B.Inverted = false;
  if (B < A)
    std::swap(A, B);
  auto Key = std::make_pair(A, B);
  auto It = XorCache.find(Key);
  if (It != XorCache.end())
    return Out ? !It->second : It->second;
  LogicNode N;
  N.TheKind = LogicNode::Kind::Xor;
  N.Fanins = {A, B};
  Nodes.push_back(std::move(N));
  Signal S(Nodes.size() - 1, false);
  XorCache[Key] = S;
  return Out ? !S : S;
}

Signal LogicNetwork::makeAnd(Signal A, Signal B) {
  // Constant folding.
  if (A.Node == 0)
    return A.Inverted ? B : constSignal(false);
  if (B.Node == 0)
    return B.Inverted ? A : constSignal(false);
  if (A == B)
    return A;
  if (A.Node == B.Node)
    return constSignal(false); // a & !a
  // Flatten AND trees into one n-ary node (non-inverted AND fanins merge).
  std::vector<Signal> Fanins;
  auto Absorb = [&](Signal S) {
    if (!S.Inverted && Nodes[S.Node].TheKind == LogicNode::Kind::And) {
      const auto &Sub = Nodes[S.Node].Fanins;
      Fanins.insert(Fanins.end(), Sub.begin(), Sub.end());
    } else {
      Fanins.push_back(S);
    }
  };
  Absorb(A);
  Absorb(B);
  std::sort(Fanins.begin(), Fanins.end());
  Fanins.erase(std::unique(Fanins.begin(), Fanins.end()), Fanins.end());
  // a & !a within the flattened set.
  for (unsigned I = 0; I + 1 < Fanins.size(); ++I)
    if (Fanins[I].Node == Fanins[I + 1].Node)
      return constSignal(false);
  if (Fanins.size() == 1)
    return Fanins.front();
  auto It = AndCache.find(Fanins);
  if (It != AndCache.end())
    return It->second;
  LogicNode N;
  N.TheKind = LogicNode::Kind::And;
  N.Fanins = Fanins;
  Nodes.push_back(std::move(N));
  Signal S(Nodes.size() - 1, false);
  AndCache[std::move(Fanins)] = S;
  return S;
}

unsigned LogicNetwork::numAndNodes() const {
  // Count only AND nodes reachable from the outputs; structural hashing can
  // leave dead intermediate nodes behind.
  std::vector<bool> Reached(Nodes.size(), false);
  std::vector<uint32_t> Stack;
  for (Signal S : Outputs)
    Stack.push_back(S.Node);
  while (!Stack.empty()) {
    uint32_t Id = Stack.back();
    Stack.pop_back();
    if (Reached[Id])
      continue;
    Reached[Id] = true;
    for (Signal F : Nodes[Id].Fanins)
      Stack.push_back(F.Node);
  }
  unsigned Count = 0;
  for (unsigned I = 0; I < Nodes.size(); ++I)
    if (Reached[I] && Nodes[I].TheKind == LogicNode::Kind::And)
      ++Count;
  return Count;
}

std::vector<bool> LogicNetwork::evaluate(
    const std::vector<bool> &Inputs) const {
  assert(Inputs.size() == NumInputs && "wrong input width");
  std::vector<bool> Values(Nodes.size(), false);
  auto Read = [&](Signal S) { return Values[S.Node] != S.Inverted; };
  for (unsigned I = 1; I < Nodes.size(); ++I) {
    const LogicNode &N = Nodes[I];
    switch (N.TheKind) {
    case LogicNode::Kind::ConstFalse:
      break;
    case LogicNode::Kind::PrimaryInput:
      Values[I] = Inputs[N.InputIndex];
      break;
    case LogicNode::Kind::Xor:
      Values[I] = Read(N.Fanins[0]) != Read(N.Fanins[1]);
      break;
    case LogicNode::Kind::And: {
      bool All = true;
      for (Signal S : N.Fanins)
        All = All && Read(S);
      Values[I] = All;
      break;
    }
    }
  }
  std::vector<bool> Out;
  for (Signal S : Outputs)
    Out.push_back(Read(S));
  return Out;
}

std::string LogicNetwork::str() const {
  std::ostringstream OS;
  auto Sig = [](Signal S) {
    return std::string(S.Inverted ? "!" : "") + "n" + std::to_string(S.Node);
  };
  for (unsigned I = 0; I < Nodes.size(); ++I) {
    const LogicNode &N = Nodes[I];
    OS << 'n' << I << " = ";
    switch (N.TheKind) {
    case LogicNode::Kind::ConstFalse:
      OS << "false";
      break;
    case LogicNode::Kind::PrimaryInput:
      OS << "input " << N.InputIndex;
      break;
    case LogicNode::Kind::Xor:
      OS << Sig(N.Fanins[0]) << " ^ " << Sig(N.Fanins[1]);
      break;
    case LogicNode::Kind::And:
      for (unsigned J = 0; J < N.Fanins.size(); ++J)
        OS << (J ? " & " : "") << Sig(N.Fanins[J]);
      break;
    }
    OS << '\n';
  }
  OS << "outputs:";
  for (Signal S : Outputs)
    OS << ' ' << Sig(S);
  OS << '\n';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Classical AST -> network
//===----------------------------------------------------------------------===//

namespace {

class NetworkBuilder {
public:
  NetworkBuilder(DiagnosticEngine &Diags) : Diags(Diags) {}

  std::optional<LogicNetwork> build(const FunctionDef &F);

private:
  DiagnosticEngine &Diags;
  LogicNetwork Net;
  std::map<std::string, std::vector<Signal>> Env;

  std::optional<std::vector<Signal>> eval(const Expr &E);
};

std::optional<std::vector<Signal>> NetworkBuilder::eval(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Variable: {
    const auto &Var = cast<VariableExpr>(E);
    auto It = Env.find(Var.Name);
    if (It == Env.end()) {
      Diags.error(E.loc(), "unknown variable '" + Var.Name +
                               "' in classical function");
      return std::nullopt;
    }
    return It->second;
  }
  case Expr::Kind::BitLiteral: {
    const auto &Lit = cast<BitLiteralExpr>(E);
    std::vector<Signal> Out;
    for (bool B : Lit.Bits)
      Out.push_back(Net.constSignal(B));
    return Out;
  }
  case Expr::Kind::ClassicalBinary: {
    const auto &Bin = cast<ClassicalBinaryExpr>(E);
    auto L = eval(*Bin.Lhs);
    auto R = eval(*Bin.Rhs);
    if (!L || !R)
      return std::nullopt;
    assert(L->size() == R->size() && "checked widths must match");
    std::vector<Signal> Out;
    for (unsigned I = 0; I < L->size(); ++I) {
      switch (Bin.Op) {
      case ClassicalBinaryExpr::OpKind::And:
        Out.push_back(Net.makeAnd((*L)[I], (*R)[I]));
        break;
      case ClassicalBinaryExpr::OpKind::Or:
        Out.push_back(Net.makeOr((*L)[I], (*R)[I]));
        break;
      case ClassicalBinaryExpr::OpKind::Xor:
        Out.push_back(Net.makeXor((*L)[I], (*R)[I]));
        break;
      }
    }
    return Out;
  }
  case Expr::Kind::ClassicalNot: {
    auto V = eval(*cast<ClassicalNotExpr>(E).Operand);
    if (!V)
      return std::nullopt;
    for (Signal &S : *V)
      S = !S;
    return V;
  }
  case Expr::Kind::ClassicalReduce: {
    const auto &R = cast<ClassicalReduceExpr>(E);
    auto V = eval(*R.Operand);
    if (!V || V->empty())
      return std::nullopt;
    Signal Acc = (*V)[0];
    for (unsigned I = 1; I < V->size(); ++I) {
      switch (R.Op) {
      case ClassicalReduceExpr::OpKind::Xor:
        Acc = Net.makeXor(Acc, (*V)[I]);
        break;
      case ClassicalReduceExpr::OpKind::And:
        Acc = Net.makeAnd(Acc, (*V)[I]);
        break;
      case ClassicalReduceExpr::OpKind::Or:
        Acc = Net.makeOr(Acc, (*V)[I]);
        break;
      }
    }
    return std::vector<Signal>{Acc};
  }
  case Expr::Kind::ClassicalRepeat: {
    const auto &R = cast<ClassicalRepeatExpr>(E);
    auto V = eval(*R.Operand);
    if (!V || V->size() != 1)
      return std::nullopt;
    return std::vector<Signal>(R.Factor->constValue(), (*V)[0]);
  }
  default:
    Diags.error(E.loc(), "unsupported expression in classical function");
    return std::nullopt;
  }
}

std::optional<LogicNetwork> NetworkBuilder::build(const FunctionDef &F) {
  for (const Param &P : F.Params) {
    std::vector<Signal> Bits;
    for (unsigned I = 0; I < P.Ty.dim(); ++I)
      Bits.push_back(Net.addInput());
    Env[P.Name] = std::move(Bits);
  }
  for (const StmtPtr &S : F.Body) {
    if (const auto *Ret = dyn_cast<ReturnStmt>(S.get())) {
      auto V = eval(*Ret->Value);
      if (!V)
        return std::nullopt;
      for (Signal Sig : *V)
        Net.addOutput(Sig);
      return std::move(Net);
    }
    const auto *Assign = cast<AssignStmt>(S.get());
    auto V = eval(*Assign->Value);
    if (!V)
      return std::nullopt;
    Env[Assign->Names[0]] = std::move(*V);
  }
  Diags.error(F.Loc, "classical function missing return");
  return std::nullopt;
}

} // namespace

std::optional<LogicNetwork> asdf::buildLogicNetwork(const FunctionDef &F,
                                                    DiagnosticEngine &Diags) {
  NetworkBuilder B(Diags);
  return B.build(F);
}
