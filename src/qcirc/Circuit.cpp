//===- Circuit.cpp - Flat quantum circuit representation ------------------===//
//
// Part of the Asdf reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "qcirc/Circuit.h"

#include <cmath>
#include <sstream>

using namespace asdf;

std::string CircuitInstr::str() const {
  std::ostringstream OS;
  if (CondBit >= 0)
    OS << "if c" << CondBit << "==" << (CondVal ? 1 : 0) << ": ";
  switch (TheKind) {
  case Kind::Gate: {
    OS << gateKindName(Gate);
    if (Gate == GateKind::P || Gate == GateKind::RX ||
        Gate == GateKind::RY || Gate == GateKind::RZ) {
      if (isSymbolic())
        OS << "($" << ParamIdx << " * " << ParamScale << " + " << ParamOfs
           << " deg)";
      else
        OS << '(' << Param << ')';
    }
    if (!Controls.empty()) {
      OS << " ctrl[";
      for (unsigned I = 0; I < Controls.size(); ++I)
        OS << (I ? "," : "") << Controls[I];
      OS << ']';
    }
    OS << ' ';
    for (unsigned I = 0; I < Targets.size(); ++I)
      OS << (I ? "," : "") << 'q' << Targets[I];
    return OS.str();
  }
  case Kind::Measure:
    OS << "measure q" << Targets[0] << " -> c" << Cbit;
    return OS.str();
  case Kind::Reset:
    OS << "reset q" << Targets[0];
    return OS.str();
  }
  return OS.str();
}

/// True if a parameterized rotation angle is (a multiple of) pi/2, i.e.
/// still Clifford.
static bool isCliffordAngle(double Theta) {
  double Ratio = Theta / (M_PI / 2.0);
  return std::abs(Ratio - std::round(Ratio)) < 1e-9;
}

/// True if the angle is an odd multiple of pi/4 (exactly one T-equivalent).
static bool isTAngle(double Theta) {
  double Ratio = Theta / (M_PI / 4.0);
  return std::abs(Ratio - std::round(Ratio)) < 1e-9 &&
         !isCliffordAngle(Theta);
}

CircuitStats Circuit::stats() const {
  CircuitStats S;
  std::vector<uint64_t> QubitDepth(NumQubits, 0);
  std::vector<uint64_t> QubitTDepth(NumQubits, 0);

  for (const CircuitInstr &I : Instrs) {
    if (I.TheKind == CircuitInstr::Kind::Measure) {
      ++S.MeasureCount;
      continue;
    }
    if (I.TheKind == CircuitInstr::Kind::Reset)
      continue;
    ++S.Total;
    bool IsT = false;
    switch (I.Gate) {
    case GateKind::T:
    case GateKind::Tdg:
      IsT = I.Controls.empty();
      break;
    case GateKind::P:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
      // Non-Clifford rotations cost magic states; count pi/4-family angles
      // as one T, and arbitrary angles as one T-equivalent layer as well
      // (the Azure estimator similarly charges rotations one synthesis
      // round; absolute constants don't change the comparison shape).
      // Symbolic angles are non-Clifford for any generic binding.
      IsT = I.isSymbolic() || !isCliffordAngle(I.Param) ||
            !I.Controls.empty();
      (void)isTAngle(I.Param);
      break;
    default:
      break;
    }
    if (!I.Controls.empty() &&
        !(I.Gate == GateKind::X && I.Controls.size() == 1) &&
        !(I.Gate == GateKind::Z && I.Controls.size() == 1) &&
        !(I.Gate == GateKind::Y && I.Controls.size() == 1))
      IsT = true; // Controlled non-Pauli / multi-controls are non-Clifford.
    if (I.Controls.size() >= 2)
      ++S.MultiControlled;
    if (I.Controls.size() + I.Targets.size() >= 2)
      ++S.TwoQubitCount;
    if (I.Gate == GateKind::X && I.Controls.size() == 1)
      ++S.CxCount;
    if (IsT)
      ++S.TCount;
    else
      ++S.CliffordCount;

    // Depth layering: the instruction lands one past the max depth of the
    // qubits it touches.
    uint64_t MaxD = 0, MaxTD = 0;
    auto Touch = [&](unsigned Q) {
      if (Q < NumQubits) {
        MaxD = std::max(MaxD, QubitDepth[Q]);
        MaxTD = std::max(MaxTD, QubitTDepth[Q]);
      }
    };
    for (unsigned Q : I.Controls)
      Touch(Q);
    for (unsigned Q : I.Targets)
      Touch(Q);
    uint64_t NewD = MaxD + 1;
    uint64_t NewTD = MaxTD + (IsT ? 1 : 0);
    auto Set = [&](unsigned Q) {
      if (Q < NumQubits) {
        QubitDepth[Q] = NewD;
        QubitTDepth[Q] = NewTD;
      }
    };
    for (unsigned Q : I.Controls)
      Set(Q);
    for (unsigned Q : I.Targets)
      Set(Q);
    S.Depth = std::max(S.Depth, NewD);
    S.TDepth = std::max(S.TDepth, NewTD);
  }
  return S;
}

std::string Circuit::str() const {
  std::ostringstream OS;
  OS << "circuit(" << NumQubits << " qubits, " << NumBits << " bits";
  for (const std::string &P : ParamNames)
    OS << ", $" << P;
  OS << ") {\n";
  for (const CircuitInstr &I : Instrs)
    OS << "  " << I.str() << '\n';
  OS << "}\n";
  return OS.str();
}

Circuit asdf::bindCircuit(const Circuit &C, const std::vector<double> &Vals) {
  assert(Vals.size() == C.ParamNames.size() &&
         "bindCircuit: wrong number of parameter values");
  Circuit Out = C;
  Out.ParamNames.clear();
  for (CircuitInstr &I : Out.Instrs) {
    if (I.TheKind != CircuitInstr::Kind::Gate || !I.isSymbolic())
      continue;
    I.Param = I.boundParam(Vals);
    I.ParamIdx = -1;
    I.ParamScale = 1.0;
    I.ParamOfs = 0.0;
  }
  return Out;
}
